module tempagg

go 1.22
