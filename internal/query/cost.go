package query

import (
	"fmt"

	"tempagg/internal/core"
	"tempagg/internal/obs"
	"tempagg/internal/relation"
)

// CostModel prices the two resources §6.3 trades off: "depending on the
// tradeoff between the cost of increased memory requirements and the cost
// of disk access. If memory is cheaper than disk I/O, then the aggregation
// tree is the best approach. On the other hand, if ... the disk access time
// necessary to sort the relation is less costly than the memory the
// aggregation tree requires, then the k-ordered aggregation tree is the
// best approach."
//
// Costs are unitless; only ratios matter. The zero value disables
// cost-based choice (the planner then uses the qualitative §6.3 rules).
type CostModel struct {
	// MemoryByte is the price of one byte of resident evaluation structure.
	MemoryByte float64
	// PageIO is the price of reading or writing one storage page.
	PageIO float64
	// CPUTuple is the price of processing one tuple once (scan + insert).
	CPUTuple float64
}

// Enabled reports whether the model carries any prices.
func (m CostModel) Enabled() bool {
	return m.MemoryByte > 0 || m.PageIO > 0 || m.CPUTuple > 0
}

// pages is the number of storage pages n tuples occupy.
func pages(n int) float64 {
	return float64((n + relation.RecordsPerPage - 1) / relation.RecordsPerPage)
}

// alternative is one costed execution strategy.
type alternative struct {
	plan Plan
	cost float64
}

// costAlternatives prices the §6.3 strategies for an instant-grouped query.
//
//   - aggregation tree: one scan, whole tree resident (≈4n nodes);
//   - sort + ktree(1): sorting costs two extra passes over the relation
//     (read + write, external merge sort at these scales is one extra
//     round trip), then one scan with a tiny resident tree;
//   - ktree(k): applicable without sorting only when a k bound is declared
//     — or sampled at plan time (RelationInfo.SampledK), in which case the
//     plan is marked for the executor's sort-and-retry escape; resident
//     state grows with k;
//   - columnar event sweep: the same single relation scan, then two
//     sequential passes over the ~2n events plus a few radix scatters —
//     about six column touches per tuple against the tree's log-depth
//     insert, priced at 6/16 of a tuple's CPU. Resident state (event
//     columns, radix scratch, emitted rows) is ~6 nodes per tuple. Only
//     decomposable aggregates qualify, and only unsorted input (sorted
//     input already has a cheaper plan);
//   - linked list: one scan, list resident (≈2n nodes), CPU-bound quadratic
//     walking — priced with a quadratic CPU term.
func costAlternatives(info RelationInfo, m CostModel, decomposable, indexable bool) []alternative {
	n := info.Tuples
	scan := m.PageIO * pages(n)
	cpu := m.CPUTuple * float64(n)

	var alts []alternative

	if indexable {
		// A resident interval index answers the query with O(log n) partial
		// merges per emitted row: no page I/O, no per-tuple CPU. Its memory
		// is charged to the catalog that built it, not the query, so the
		// only cost is the root-path walk.
		depth := 1
		for 1<<depth < 2*n+2 {
			depth++
		}
		alts = append(alts, alternative{
			plan: Plan{UseIndex: true,
				Reason: "cost-based: resident interval index, O(k + log n) partial merges"},
			cost: m.CPUTuple * float64(2*depth+16),
		})
	}

	treeBytes := float64(4*n+1) * core.NodeBytes
	alts = append(alts, alternative{
		plan: Plan{Spec: core.Spec{Algorithm: core.AggregationTree},
			Reason: "cost-based: aggregation tree"},
		cost: scan + cpu + m.MemoryByte*treeBytes,
	})

	// Sorting ≈ read + write of every page, then the evaluation scan.
	sortIO := 2 * scan
	ktreeBytes := float64(64) * core.NodeBytes // small resident window at k=1
	sortPlan := Plan{SortFirst: true,
		Spec:   core.Spec{Algorithm: core.KOrderedTree, K: 1},
		Reason: "cost-based: sort then k-ordered tree (k=1)"}
	if info.Sorted {
		sortIO = 0
		sortPlan.SortFirst = false
		sortPlan.Reason = "cost-based: k-ordered tree over sorted relation (k=1)"
	}
	alts = append(alts, alternative{
		plan: sortPlan,
		cost: sortIO + scan + cpu + m.MemoryByte*ktreeBytes,
	})

	if info.KBound > 0 && !info.Sorted {
		// Resident state scales with the declared disorder window.
		kBytes := float64(8*info.KBound+64) * core.NodeBytes
		alts = append(alts, alternative{
			plan: Plan{Spec: core.Spec{Algorithm: core.KOrderedTree, K: info.KBound},
				Reason: fmt.Sprintf("cost-based: k-ordered tree (declared k=%d), no sort", info.KBound)},
			cost: scan + cpu + m.MemoryByte*kBytes,
		})
	}

	if info.KBound < 0 && !info.Sorted && info.SampledK > 0 {
		// A sampled disorder bound prices like a declared one — no sort I/O,
		// resident state scaling with k — at the risk of rejection. The plan
		// is marked SampledK so the executor sorts and retries if the
		// estimate proves low (the estimator deliberately errs high).
		kBytes := float64(8*info.SampledK+64) * core.NodeBytes
		alts = append(alts, alternative{
			plan: Plan{
				SampledK: true,
				Spec:     core.Spec{Algorithm: core.KOrderedTree, K: info.SampledK},
				Reason:   fmt.Sprintf("cost-based: k-ordered tree (sampled k=%d), no sort", info.SampledK),
			},
			cost: scan + cpu + m.MemoryByte*kBytes,
		})
	}

	if decomposable && !info.Sorted {
		sweepBytes := float64(6*n+1) * core.NodeBytes
		alts = append(alts, alternative{
			plan: Plan{Spec: core.Spec{Algorithm: core.SweepEval},
				Reason: "cost-based: columnar event sweep"},
			cost: scan + cpu*6/16 + m.MemoryByte*sweepBytes,
		})
	}

	// The linked list walks half the live list per tuple on average; its
	// list has about 2n elements, so the CPU term is quadratic. With few
	// expected constant intervals the walk — and the memory — shrink to
	// that count instead.
	intervals := 2 * n
	if info.ExpectedConstantIntervals > 0 && info.ExpectedConstantIntervals < intervals {
		intervals = info.ExpectedConstantIntervals
	}
	listBytes := float64(intervals) * core.NodeBytes
	listCPU := m.CPUTuple * float64(n) * float64(intervals) / 4
	alts = append(alts, alternative{
		plan: Plan{Spec: core.Spec{Algorithm: core.LinkedList},
			Reason: "cost-based: linked list"},
		cost: scan + listCPU + m.MemoryByte*listBytes,
	})

	return alts
}

// PlanQueryCosted chooses the cheapest strategy under the cost model. With
// a disabled model it falls back to the qualitative PlanQuery rules. The
// chosen plan's Reason records the winning estimate, and its Alternatives
// record every estimate, so EXPLAIN can show the rejected strategies next
// to the chosen one.
func PlanQueryCosted(q *Query, info RelationInfo, m CostModel) (Plan, error) {
	if q.Using != "" || !m.Enabled() {
		return PlanQuery(q, info)
	}
	alts := costAlternatives(info, m, decomposableAggs(q), info.Index != nil && IndexEligible(q))
	best := alts[0]
	for _, a := range alts[1:] {
		if a.cost < best.cost {
			best = a
		}
	}
	best.plan.Reason = fmt.Sprintf("%s (estimated cost %.4g)", best.plan.Reason, best.cost)
	best.plan.Alternatives, best.plan.Prices = priceAlternatives(q, info, m, best.plan)
	return best.plan, nil
}

// explainModel is the display cost model EXPLAIN falls back to when the
// planner ran without one: memory priced per node, a page of I/O worth a
// few hundred node-bytes, a tuple of CPU worth one. Only the ratios matter
// — the model exists so qualitative plans still show a cost column.
var explainModel = CostModel{
	MemoryByte: 1.0 / core.NodeBytes,
	PageIO:     64,
	CPUTuple:   1,
}

// samePlanShape reports whether two plans name the same execution strategy
// (matching an alternative to the chosen plan; parameters like K may differ
// between a qualitative choice and the priced alternative).
func samePlanShape(a, b Plan) bool {
	return a.Spec.Algorithm == b.Spec.Algorithm &&
		a.SortFirst == b.SortFirst &&
		a.Tuma == b.Tuma && a.Snapshot == b.Snapshot &&
		a.Partitioned == b.Partitioned &&
		a.UseIndex == b.UseIndex && a.Cached == b.Cached
}

// priceAlternatives renders the planner's alternatives as trace-ready
// PlanCost records, marking the chosen plan. A disabled model is replaced
// by explainModel; the model actually used is returned so EXPLAIN ANALYZE
// can reprice it against measured counters.
func priceAlternatives(q *Query, info RelationInfo, m CostModel, chosen Plan) ([]obs.PlanCost, CostModel) {
	if !m.Enabled() {
		m = explainModel
	}
	alts := costAlternatives(info, m, decomposableAggs(q), info.Index != nil && IndexEligible(q))
	out := make([]obs.PlanCost, 0, len(alts)+1)
	matched := false
	for _, a := range alts {
		pc := obs.PlanCost{Algorithm: a.plan.Algorithm(), Detail: a.plan.Reason, Cost: a.cost}
		if !matched && samePlanShape(a.plan, chosen) {
			pc.Chosen, matched = true, true
		}
		out = append(out, pc)
	}
	if !matched {
		// Strategies outside the costed set (snapshot scan, Tuma, forced
		// partitioning) appear as the chosen entry without a price.
		out = append(out, obs.PlanCost{Algorithm: chosen.Algorithm(), Detail: chosen.Reason, Chosen: true})
	}
	return out, m
}

// ActualCost reprices the plan's cost formula with the counters a finished
// query actually measured — pages from tuples processed, CPU per tuple,
// resident memory from the peak node count — giving EXPLAIN ANALYZE its
// estimated-vs-actual delta. The sweep's CPU discount matches the estimate
// so the comparison isolates cardinality and memory misestimates.
func ActualCost(p Plan, m CostModel, tuples, peakNodes int) float64 {
	cpu := m.CPUTuple * float64(tuples)
	if p.Spec.Algorithm == core.SweepEval && !p.Tuma && !p.Snapshot {
		cpu = cpu * 6 / 16
	}
	return m.PageIO*pages(tuples) + cpu + m.MemoryByte*float64(peakNodes)*core.NodeBytes
}
