// Race/linearizability stress for the catalog's live-relation surface: N
// goroutines ingest through LiveIngest while M readers run SELECT ... LIVE
// through the observed query path, concurrently with HTTP scrapes of
// /metrics and /debug/queries over server.AdminMux — the full S36 stack
// under -race. External test package so the server import does not cycle.
package catalog_test

import (
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"tempagg/internal/aggregate"
	"tempagg/internal/catalog"
	"tempagg/internal/core"
	"tempagg/internal/interval"
	"tempagg/internal/obs"
	"tempagg/internal/relation"
	"tempagg/internal/server"
	"tempagg/internal/tuple"
)

func TestLiveRaceIngestQueryScrape(t *testing.T) {
	const (
		writers         = 3
		readers         = 3
		tuplesPerWriter = 150
	)
	cat, err := catalog.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	o := obs.NewObserver(64, nil)
	o.Queries = obs.NewQueryStats(obs.QueryStatsConfig{})
	cat.SetLiveMetrics(o.Metrics)
	if _, err := cat.RegisterLive("hot", core.LiveOptions{SegmentSize: 32}); err != nil {
		t.Fatal(err)
	}
	admin := httptest.NewServer(server.AdminMux(o))
	defer admin.Close()

	var writerWg, rest sync.WaitGroup
	var writersDone atomic.Bool
	for w := 0; w < writers; w++ {
		writerWg.Add(1)
		go func(w int) {
			defer writerWg.Done()
			for i := 0; i < tuplesPerWriter; i++ {
				tu := tuple.MustNew("e", int64(w*1000+i), 0, 10)
				if err := cat.LiveIngest("hot", []tuple.Tuple{tu}); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}

	// Readers: the LIVE query path end to end. COUNT at an instant every
	// tuple covers is the admitted-tuple count at the read's epoch, and
	// writers only add — so each reader's observed counts must be
	// monotone, a linearizability check on the whole catalog/query stack.
	for rd := 0; rd < readers; rd++ {
		rest.Add(1)
		go func(rd int) {
			defer rest.Done()
			var last int64 = -1
			for !writersDone.Load() {
				qr, err := cat.QueryObserved(
					"SELECT COUNT(Name) FROM hot LIVE AT 5", relation.ScanOptions{}, o)
				if err != nil {
					t.Errorf("reader %d: %v", rd, err)
					return
				}
				v, ok := qr.Groups[0].Result.At(5)
				if !ok {
					t.Errorf("reader %d: no row at instant 5", rd)
					return
				}
				if v.Int < last {
					t.Errorf("reader %d: count went backwards: %d after %d", rd, v.Int, last)
					return
				}
				last = v.Int
			}
		}(rd)
	}

	// Scrapers: admin endpoints race the gauge hook and reader refcounts.
	for _, ep := range []string{"/metrics", "/debug/queries"} {
		rest.Add(1)
		go func(url string) {
			defer rest.Done()
			for !writersDone.Load() {
				resp, err := http.Get(url)
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := io.ReadAll(resp.Body); err != nil {
					t.Error(err)
				}
				resp.Body.Close()
			}
		}(admin.URL + ep)
	}

	writerWg.Wait()
	writersDone.Store(true)
	rest.Wait()

	// Every lease must have been returned, and the final epoch must hold
	// every writer's tuples.
	n, err := cat.LiveReaders("hot")
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("outstanding snapshot leases after quiesce: %d", n)
	}
	snap, release, err := cat.AcquireLiveSnapshot("hot")
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	if got, want := snap.Seq(), int64(writers*tuplesPerWriter); got != want {
		t.Fatalf("final seq %d, want %d", got, want)
	}
	v, err := snap.At(aggregate.For(aggregate.Count), 5)
	if err != nil {
		t.Fatal(err)
	}
	if v.Int != int64(writers*tuplesPerWriter) {
		t.Fatalf("final count %d, want %d", v.Int, writers*tuplesPerWriter)
	}
	if _, err := snap.Range(aggregate.For(aggregate.Sum), interval.MustNew(0, 10)); err != nil {
		t.Fatal(err)
	}
}

// TestLiveRangeCacheRaceIngestQueryScrape is the S37 companion to the
// ingest/read stress above: readers issue range-restricted LIVE queries —
// the index-live-tail path over sealed-segment indexes plus the epoch-keyed
// result cache — while writers ingest and scrapers hit the admin surface.
// Each reader checks two monotonicity invariants: the window count never
// goes backwards (a cache hit must never resurrect an older epoch's
// answer), and snapshot seqnos acquired between queries never decrease.
func TestLiveRangeCacheRaceIngestQueryScrape(t *testing.T) {
	const (
		writers         = 3
		readers         = 3
		tuplesPerWriter = 120
	)
	cat, err := catalog.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()
	o := obs.NewObserver(64, nil)
	o.Queries = obs.NewQueryStats(obs.QueryStatsConfig{})
	cat.SetLiveMetrics(o.Metrics)
	cat.EnableResultCache(64)
	if _, err := cat.RegisterLive("hot", core.LiveOptions{SegmentSize: 32}); err != nil {
		t.Fatal(err)
	}
	admin := httptest.NewServer(server.AdminMux(o))
	defer admin.Close()

	var writerWg, rest sync.WaitGroup
	var writersDone atomic.Bool
	for w := 0; w < writers; w++ {
		writerWg.Add(1)
		go func(w int) {
			defer writerWg.Done()
			for i := 0; i < tuplesPerWriter; i++ {
				tu := tuple.MustNew("e", int64(w*1000+i), 0, 10)
				if err := cat.LiveIngest("hot", []tuple.Tuple{tu}); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}

	queries := []string{
		"SELECT COUNT(Name) FROM hot LIVE VALID OVERLAPS 2 8",
		"SELECT COUNT(Name) FROM hot LIVE AT 5",
	}
	for rd := 0; rd < readers; rd++ {
		rest.Add(1)
		go func(rd int) {
			defer rest.Done()
			var lastCount, lastSeq int64 = -1, -1
			for i := 0; !writersDone.Load(); i++ {
				qr, err := cat.QueryObserved(queries[i%len(queries)], relation.ScanOptions{}, o)
				if err != nil {
					t.Errorf("reader %d: %v", rd, err)
					return
				}
				v, ok := qr.Groups[0].Result.At(5)
				if !ok {
					t.Errorf("reader %d: no row at instant 5", rd)
					return
				}
				if v.Int < lastCount {
					t.Errorf("reader %d: count went backwards: %d after %d", rd, v.Int, lastCount)
					return
				}
				lastCount = v.Int
				snap, release, err := cat.AcquireLiveSnapshot("hot")
				if err != nil {
					t.Errorf("reader %d: %v", rd, err)
					return
				}
				seq := snap.Seq()
				release()
				if seq < lastSeq {
					t.Errorf("reader %d: epoch went backwards: %d after %d", rd, seq, lastSeq)
					return
				}
				lastSeq = seq
			}
		}(rd)
	}

	for _, ep := range []string{"/metrics", "/debug/queries"} {
		rest.Add(1)
		go func(url string) {
			defer rest.Done()
			for !writersDone.Load() {
				resp, err := http.Get(url)
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := io.ReadAll(resp.Body); err != nil {
					t.Error(err)
				}
				resp.Body.Close()
			}
		}(admin.URL + ep)
	}

	writerWg.Wait()
	writersDone.Store(true)
	rest.Wait()

	// Quiesced: the final epoch holds every tuple, a repeated range query is
	// a guaranteed cache hit at that epoch, and the cache saw real traffic.
	if n, err := cat.LiveReaders("hot"); err != nil || n != 0 {
		t.Fatalf("outstanding snapshot leases after quiesce: %d (%v)", n, err)
	}
	for i := 0; i < 2; i++ {
		qr, err := cat.QueryObserved(queries[0], relation.ScanOptions{}, o)
		if err != nil {
			t.Fatal(err)
		}
		v, ok := qr.Groups[0].Result.At(5)
		if !ok || v.Int != int64(writers*tuplesPerWriter) {
			t.Fatalf("final window count %d (ok=%v), want %d", v.Int, ok, writers*tuplesPerWriter)
		}
		if i == 1 && !qr.Plan.Cached {
			t.Fatalf("repeat of %q at a quiet epoch missed the cache: %+v", queries[0], qr.Plan)
		}
	}
	stats := cat.ResultCacheStats()
	if stats.Misses == 0 || stats.Hits == 0 {
		t.Fatalf("result cache saw no traffic under load: %+v", stats)
	}
}

// TestLiveLeaseAccounting: acquire/release must move the reader count and
// gauge exactly, and release must be idempotent.
func TestLiveLeaseAccounting(t *testing.T) {
	cat, err := catalog.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	m := obs.NewMetrics(reg)
	cat.SetLiveMetrics(m)
	if _, err := cat.RegisterLive("hot", core.LiveOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := cat.LiveIngest("hot", []tuple.Tuple{tuple.MustNew("a", 1, 0, 5)}); err != nil {
		t.Fatal(err)
	}
	_, rel1, err := cat.AcquireLiveSnapshot("hot")
	if err != nil {
		t.Fatal(err)
	}
	_, rel2, err := cat.AcquireLiveSnapshot("hot")
	if err != nil {
		t.Fatal(err)
	}
	readers := func() int64 {
		t.Helper()
		n, err := cat.LiveReaders("hot")
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	if n := readers(); n != 2 {
		t.Fatalf("readers = %d, want 2", n)
	}
	rel1()
	rel1() // idempotent: must not double-decrement
	if n := readers(); n != 1 {
		t.Fatalf("readers after one release = %d, want 1", n)
	}
	rel2()
	if n := readers(); n != 0 {
		t.Fatalf("readers after both releases = %d, want 0", n)
	}
}

// TestLiveRegistry covers the registry edges: name collisions, EnsureLive
// idempotence, and DropLive semantics.
func TestLiveRegistry(t *testing.T) {
	dir := t.TempDir()
	cat, err := catalog.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := cat.RegisterLive("hot", core.LiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cat.RegisterLive("hot", core.LiveOptions{}); err == nil {
		t.Fatal("duplicate registration succeeded")
	}
	got, err := cat.EnsureLive("hot", core.LiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got != ev {
		t.Fatal("EnsureLive returned a different evaluator for an existing name")
	}
	if _, err := cat.EnsureLive("warm", core.LiveOptions{}); err != nil {
		t.Fatal(err)
	}
	names := cat.LiveNames()
	if len(names) != 2 || names[0] != "hot" || names[1] != "warm" {
		t.Fatalf("LiveNames = %v", names)
	}
	if err := cat.DropLive("warm"); err != nil {
		t.Fatal(err)
	}
	if err := cat.DropLive("warm"); err == nil {
		t.Fatal("double drop succeeded")
	}
	if err := cat.LiveIngest("warm", nil); err == nil {
		t.Fatal("ingest into dropped relation succeeded")
	}
	// Dropping closed the evaluator: direct use fails too.
	if _, err := ev.Snapshot(); err != nil {
		t.Fatalf("surviving relation broken: %v", err)
	}
}
