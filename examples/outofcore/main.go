// Outofcore demonstrates the limited-main-memory evaluation of §5.1/§7:
// "it is simple to mark a parent as pointing to a subtree not currently in
// memory. Simply accumulate the tuples which would overlap this region of
// the tree and process them later." The time-line is cut into partitions;
// each partition's tuples are spilled to disk relation files and evaluated
// by an independent aggregation tree, so the largest resident tree — not
// the whole relation's — bounds memory. A parallel variant evaluates
// several partitions concurrently.
//
// Run with:
//
//	go run ./examples/outofcore
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"tempagg"
)

func main() {
	const n = 200_000
	rel, err := tempagg.Generate(tempagg.WorkloadConfig{Tuples: n, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	lifespan, err := tempagg.NewInterval(0, 999_999)
	if err != nil {
		log.Fatal(err)
	}

	// Baseline: the whole aggregation tree in memory.
	start := time.Now()
	whole, wholeStats, err := tempagg.ComputeByInstant(rel, tempagg.Count,
		tempagg.Spec{Algorithm: tempagg.AggregationTree})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("whole tree:            %8v  peak %8d bytes  (%d rows)\n",
		time.Since(start).Round(time.Millisecond), wholeStats.PeakBytes(), len(whole.Rows))

	spillDir, err := os.MkdirTemp("", "tempagg-outofcore")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(spillDir)

	for _, variant := range []struct {
		label    string
		parallel int
		spill    string
	}{
		{"partitioned (memory)", 1, ""},
		{"partitioned (spill)", 1, spillDir},
		{"partitioned (spill,4x)", 4, spillDir},
	} {
		start = time.Now()
		res, stats, err := tempagg.ComputePartitioned(rel, tempagg.Count,
			tempagg.PartitionOptions{
				Boundaries: tempagg.UniformBoundaries(lifespan, 32),
				SpillDir:   variant.spill,
				Parallel:   variant.parallel,
			})
		if err != nil {
			log.Fatal(err)
		}
		if !res.Equal(whole) {
			log.Fatal("partitioned result differs from the whole tree")
		}
		fmt.Printf("%-22s %8v  peak %8d bytes  (identical result)\n",
			variant.label, time.Since(start).Round(time.Millisecond), stats.PeakBytes())
	}

	fmt.Printf("\nmemory bound: the largest single-partition tree is ~1/32 of the whole tree,\n")
	fmt.Printf("so a fixed budget admits relations ~32x larger — the §7 idea, realized.\n")
}
