package relation

import (
	"bytes"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"testing/quick"

	"tempagg/internal/interval"
	"tempagg/internal/tuple"
)

func tempPath(t *testing.T, name string) string {
	t.Helper()
	return filepath.Join(t.TempDir(), name)
}

func TestRoundTripSmall(t *testing.T) {
	path := tempPath(t, "employed.rel")
	orig := Employed()
	if err := WriteFile(path, orig); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if got.Len() != orig.Len() {
		t.Fatalf("round trip lost tuples: %d != %d", got.Len(), orig.Len())
	}
	for i := range orig.Tuples {
		if got.Tuples[i] != orig.Tuples[i] {
			t.Fatalf("tuple %d: %v != %v", i, got.Tuples[i], orig.Tuples[i])
		}
	}
}

func randomRelation(r *rand.Rand, n int) *Relation {
	rel := New("random")
	for i := 0; i < n; i++ {
		start := r.Int63n(1000)
		end := start + r.Int63n(1000)
		if r.Intn(10) == 0 {
			end = interval.Forever
		}
		rel.Append(tuple.MustNew("n", r.Int63n(100000), start, end))
	}
	return rel
}

func TestRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	prop := func() bool {
		rel := randomRelation(r, r.Intn(200))
		path := tempPath(t, "prop.rel")
		if err := WriteFile(path, rel); err != nil {
			return false
		}
		got, err := ReadFile(path)
		if err != nil {
			return false
		}
		if got.Len() != rel.Len() {
			return false
		}
		for i := range rel.Tuples {
			if got.Tuples[i] != rel.Tuples[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripMultiplePages(t *testing.T) {
	// Exceed one page (64 records) to exercise page boundaries, including a
	// partial final page.
	rel := New("big")
	for i := 0; i < RecordsPerPage*3+17; i++ {
		rel.Append(tuple.MustNew("t", int64(i), int64(i), int64(i+10)))
	}
	path := tempPath(t, "big.rel")
	if err := WriteFile(path, rel); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if got.Len() != rel.Len() {
		t.Fatalf("got %d tuples, want %d", got.Len(), rel.Len())
	}
	for i := range rel.Tuples {
		if got.Tuples[i] != rel.Tuples[i] {
			t.Fatalf("tuple %d mismatch", i)
		}
	}
}

func TestSortedFlag(t *testing.T) {
	path := tempPath(t, "sorted.rel")
	rel := Employed()
	rel.SortByTime()
	if err := WriteFile(path, rel); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path, ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if !s.Sorted() {
		t.Fatal("sorted flag not set for sorted relation")
	}

	path2 := tempPath(t, "unsorted.rel")
	if err := WriteFile(path2, Employed()); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path2, ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Sorted() {
		t.Fatal("sorted flag set for unsorted relation")
	}
}

func TestScannerReset(t *testing.T) {
	path := tempPath(t, "reset.rel")
	if err := WriteFile(path, Employed()); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path, ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	count := func() int {
		n := 0
		for {
			_, ok, err := s.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				return n
			}
			n++
		}
	}
	if n := count(); n != 4 {
		t.Fatalf("first pass read %d tuples", n)
	}
	if err := s.Reset(); err != nil {
		t.Fatal(err)
	}
	if n := count(); n != 4 {
		t.Fatalf("second pass read %d tuples", n)
	}
	if s.Passes() != 2 {
		t.Fatalf("Passes() = %d, want 2", s.Passes())
	}
}

func TestRandomizedScanIsPermutation(t *testing.T) {
	rel := New("r")
	for i := 0; i < RecordsPerPage*4; i++ {
		rel.Append(tuple.MustNew("t", int64(i), int64(i), int64(i)))
	}
	path := tempPath(t, "rand.rel")
	if err := WriteFile(path, rel); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path, ScanOptions{RandomizePages: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var values []int64
	for {
		tu, ok, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		values = append(values, tu.Value)
	}
	if len(values) != rel.Len() {
		t.Fatalf("randomized scan read %d tuples, want %d", len(values), rel.Len())
	}
	inOrder := sort.SliceIsSorted(values, func(i, j int) bool { return values[i] < values[j] })
	if inOrder {
		t.Fatal("randomized scan returned tuples in sorted order")
	}
	sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
	for i, v := range values {
		if v != int64(i) {
			t.Fatalf("randomized scan is not a permutation: values[%d]=%d", i, v)
		}
	}
}

func TestOpenRejectsBadMagic(t *testing.T) {
	path := tempPath(t, "bad.rel")
	if err := os.WriteFile(path, bytes.Repeat([]byte{'x'}, 64), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, ScanOptions{}); err == nil {
		t.Fatal("expected error for bad magic")
	}
}

func TestOpenRejectsTruncatedFile(t *testing.T) {
	path := tempPath(t, "trunc.rel")
	rel := New("r")
	for i := 0; i < 10; i++ {
		rel.Append(tuple.MustNew("t", 1, 0, 1))
	}
	if err := WriteFile(path, rel); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-RecordSize], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, ScanOptions{}); err == nil {
		t.Fatal("expected error for truncated file")
	}
}

func TestOpenRejectsShortHeader(t *testing.T) {
	path := tempPath(t, "short.rel")
	if err := os.WriteFile(path, []byte("TAGG"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, ScanOptions{}); err == nil {
		t.Fatal("expected error for short header")
	}
}

func TestOpenRejectsUnknownVersion(t *testing.T) {
	path := tempPath(t, "ver.rel")
	h := header{version: 99, count: 0}
	if err := os.WriteFile(path, h.encode(), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, ScanOptions{}); err == nil {
		t.Fatal("expected error for unknown version")
	}
}

func TestWriteRejectsOversizedTimestamp(t *testing.T) {
	rel := New("r")
	// Forever-1 is too big for the 4-byte on-disk format but is not ∞.
	rel.Tuples = append(rel.Tuples, tuple.MustNew("t", 0, 0, interval.Forever-1))
	if err := Write(&bytes.Buffer{}, rel); err == nil {
		t.Fatal("expected error for timestamp exceeding 4-byte format")
	}
}

func TestWriteRejectsOversizedValue(t *testing.T) {
	rel := New("r")
	rel.Tuples = append(rel.Tuples, tuple.MustNew("t", math.MaxInt64, 0, 1))
	if err := Write(&bytes.Buffer{}, rel); err == nil {
		t.Fatal("expected error for value exceeding 4-byte format")
	}
}

func TestForeverSurvivesRoundTrip(t *testing.T) {
	path := tempPath(t, "forever.rel")
	rel := FromTuples("r", []tuple.Tuple{tuple.MustNew("t", 1, 0, interval.Forever)})
	if err := WriteFile(path, rel); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tuples[0].Valid.End != interval.Forever {
		t.Fatalf("∞ did not survive: %v", got.Tuples[0].Valid)
	}
}

func TestNegativeValueSurvivesRoundTrip(t *testing.T) {
	path := tempPath(t, "neg.rel")
	rel := FromTuples("r", []tuple.Tuple{tuple.MustNew("t", -12345, 3, 9)})
	if err := WriteFile(path, rel); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tuples[0].Value != -12345 {
		t.Fatalf("negative value did not survive: %d", got.Tuples[0].Value)
	}
}
