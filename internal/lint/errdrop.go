package lint

import (
	"go/ast"
	"go/types"
)

// ErrDrop flags discarded error returns from tempagg's own APIs: a bare
// call statement, a `go`/`defer` call, or an assignment that sends every
// error result to the blank identifier. Evaluator.Add and Finish report
// overflow and contract violations, the relation loaders report short
// reads and malformed records — dropping any of these is silent data
// loss, which in a goroutine body never surfaces at all. Errors from the
// standard library are out of scope (go vet and callers' judgment cover
// those), with one idiomatic carve-out here too: `defer x.Close()` on a
// read path is conventional and stays legal.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc: "flag discarded error results from tempagg APIs (bare calls, " +
		"go/defer calls, and _ assignments), goroutine bodies included",
	Run: runErrDrop,
}

func runErrDrop(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkDroppedCall(pass, call, "")
				}
			case *ast.GoStmt:
				checkDroppedCall(pass, n.Call, "go")
			case *ast.DeferStmt:
				checkDroppedCall(pass, n.Call, "defer")
			case *ast.AssignStmt:
				checkDroppedAssign(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkDroppedCall flags a statement-position call that returns an error.
func checkDroppedCall(pass *Pass, call *ast.CallExpr, keyword string) {
	fn := moduleCallee(pass, call)
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || len(errorResults(sig)) == 0 {
		return
	}
	if keyword == "defer" && fn.Name() == "Close" {
		return // conventional best-effort close on a read path
	}
	what := funcDisplayName(fn)
	switch keyword {
	case "":
		pass.Reportf(call.Pos(), "error result of %s is discarded", what)
	default:
		pass.Reportf(call.Pos(), "error result of %s is discarded by %s "+
			"(a dropped error in a %s statement is silent data loss)",
			what, keyword, keyword)
	}
}

// checkDroppedAssign flags x, _ := f() / _ = f() where every error result
// lands in the blank identifier.
func checkDroppedAssign(pass *Pass, assign *ast.AssignStmt) {
	if len(assign.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	fn := moduleCallee(pass, call)
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	errIdx := errorResults(sig)
	if len(errIdx) == 0 {
		return
	}
	if len(assign.Lhs) != sig.Results().Len() {
		return // single-value assignment of a multi-result call cannot parse
	}
	for _, i := range errIdx {
		if id, ok := assign.Lhs[i].(*ast.Ident); !ok || id.Name != "_" {
			return // at least one error result is captured
		}
	}
	pass.Reportf(assign.Pos(), "error result of %s is assigned to _ "+
		"(handle it or add a tempagglint:ignore directive with a reason)",
		funcDisplayName(fn))
}

// moduleCallee resolves the callee if it is declared in the tempagg module.
func moduleCallee(pass *Pass, call *ast.CallExpr) *types.Func {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil || !inModule(fn.Pkg()) {
		return nil
	}
	return fn
}
