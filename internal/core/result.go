// Package core implements the temporal-aggregation algorithms from Kline &
// Snodgrass, "Computing Temporal Aggregates" (ICDE 1995): the linked-list
// algorithm (§4.2), the aggregation tree (§5.1), the k-ordered aggregation
// tree with garbage collection (§5.3), and Tuma's two-pass baseline (§4.1),
// plus the paper's future-work extensions (balanced aggregation tree and
// grouping by span, §7).
//
// All algorithms compute, for an interval-stamped relation and an aggregate
// function, the sequence of constant intervals — maximal periods over which
// the aggregate value does not change — paired with their aggregate values.
package core

import (
	"fmt"
	"strings"

	"tempagg/internal/aggregate"
	"tempagg/internal/interval"
)

// Row is one constant interval and its (partial or final) aggregate state.
type Row struct {
	Interval interval.Interval
	State    aggregate.State
}

// Result is the outcome of a temporal aggregate grouped by instant: an
// ordered, gap-free sequence of constant intervals covering [0, ∞], each
// with the aggregate state over the tuples that overlap it.
type Result struct {
	// Func identifies the aggregate the rows were computed under.
	Func aggregate.Func
	// Rows are the constant intervals in time order.
	Rows []Row
}

// Value finalizes row i's aggregate state.
func (r *Result) Value(i int) aggregate.Value {
	return r.Func.Final(r.Rows[i].State)
}

// At returns the aggregate value at instant t using binary search.
func (r *Result) At(t interval.Time) (aggregate.Value, bool) {
	lo, hi := 0, len(r.Rows)-1
	for lo <= hi {
		mid := (lo + hi) / 2
		iv := r.Rows[mid].Interval
		switch {
		case iv.Contains(t):
			return r.Value(mid), true
		case t < iv.Start:
			hi = mid - 1
		default:
			lo = mid + 1
		}
	}
	return aggregate.Value{}, false
}

// Coalesce merges adjacent rows whose aggregate values are equal, in place,
// and returns r. This is TSQL2 result coalescing: "the result is coalesced by
// valid-time such that each interval in the result is a constant interval"
// (§5.1). Equality is the aggregate's exact value equality, so intervals
// induced by distinct tuple sets with identical values merge.
func (r *Result) Coalesce() *Result {
	if len(r.Rows) == 0 {
		return r
	}
	out := r.Rows[:1]
	for _, row := range r.Rows[1:] {
		last := &out[len(out)-1]
		if last.Interval.Meets(row.Interval) && r.Func.StateEqual(last.State, row.State) {
			last.Interval.End = row.Interval.End
			// Keep the state with the larger tuple count so Count() remains
			// an upper bound; the final value is identical by StateEqual.
			if row.State.Count() > last.State.Count() {
				last.State = row.State
			}
			continue
		}
		out = append(out, row)
	}
	r.Rows = out
	return r
}

// Clip restricts the result to the given window in place and returns r:
// rows outside the window are dropped and boundary rows are trimmed. The
// clipped result partitions the window (TSQL2's valid clause).
func (r *Result) Clip(window interval.Interval) *Result {
	out := r.Rows[:0]
	for _, row := range r.Rows {
		iv, ok := row.Interval.Intersect(window)
		if !ok {
			continue
		}
		row.Interval = iv
		out = append(out, row)
	}
	r.Rows = out
	return r
}

// ValidatePartition checks that the rows are a partition of [lo, hi]:
// ordered, contiguous, and exactly covering the range.
func (r *Result) ValidatePartition(lo, hi interval.Time) error {
	if len(r.Rows) == 0 {
		return fmt.Errorf("core: empty result cannot cover [%s,%s]",
			interval.FormatTime(lo), interval.FormatTime(hi))
	}
	if first := r.Rows[0].Interval.Start; first != lo {
		return fmt.Errorf("core: result starts at %s, want %s",
			interval.FormatTime(first), interval.FormatTime(lo))
	}
	for i, row := range r.Rows {
		if err := row.Interval.Validate(); err != nil {
			return fmt.Errorf("core: row %d: %w", i, err)
		}
		if i > 0 && !r.Rows[i-1].Interval.Meets(row.Interval) {
			return fmt.Errorf("core: rows %d and %d are not contiguous: %s then %s",
				i-1, i, r.Rows[i-1].Interval, row.Interval)
		}
	}
	if last := r.Rows[len(r.Rows)-1].Interval.End; last != hi {
		return fmt.Errorf("core: result ends at %s, want %s",
			interval.FormatTime(last), interval.FormatTime(hi))
	}
	return nil
}

// Validate checks that the rows partition the whole time-line [0, ∞] — the
// invariant every instant-grouped algorithm must establish.
func (r *Result) Validate() error {
	return r.ValidatePartition(interval.Origin, interval.Forever)
}

// Equal reports whether two results denote the same time-varying aggregate:
// identical values at every instant. Both are compared in coalesced form, so
// differing (but value-equivalent) constant-interval boundaries still
// compare equal.
func (r *Result) Equal(other *Result) bool {
	if r.Func.Kind() != other.Func.Kind() {
		return false
	}
	a := (&Result{Func: r.Func, Rows: append([]Row(nil), r.Rows...)}).Coalesce()
	b := (&Result{Func: other.Func, Rows: append([]Row(nil), other.Rows...)}).Coalesce()
	if len(a.Rows) != len(b.Rows) {
		return false
	}
	for i := range a.Rows {
		if a.Rows[i].Interval != b.Rows[i].Interval {
			return false
		}
		if !r.Func.StateEqual(a.Rows[i].State, b.Rows[i].State) {
			return false
		}
	}
	return true
}

// String renders the result as a table in the style of the paper's Table 1.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s | start | end\n", r.Func.Kind())
	for i, row := range r.Rows {
		fmt.Fprintf(&b, "%s | %s | %s\n",
			r.Value(i), interval.FormatTime(row.Interval.Start),
			interval.FormatTime(row.Interval.End))
	}
	return b.String()
}
