package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// UnlockPath flags sync.Mutex/RWMutex acquisitions with a return or panic
// path that skips the unlock.
//
// Hazard class: the catalog, server, registry, and trace buffer all use
// manual Lock/Unlock pairs on hot read paths where a deferred unlock
// would serialize the whole critical section's epilogue; one early return
// added between Lock and Unlock wedges every future caller. defer-only
// heuristics (go vet has none; lostcancel-style checks don't apply) miss
// exactly the manual pairing this code base relies on.
//
// Lattice: per mutex key, the powerset of path states
//
//	U  unheld
//	H  held, no deferred unlock registered   ← the leaky state
//	HD held, deferred unlock registered
//	D  unheld, deferred unlock registered
//
// joined by union along merging paths (absent key = {U}). Lock moves
// U→H and D→HD; Unlock moves H→U and HD→D; defer mu.Unlock() moves H→HD
// and U→D. A return, implicit return, or terminator reached with H in the
// key's state set leaks the lock on at least one path and is reported.
// TryLock acquires only on the true branch, which the solver's labeled
// edges express directly.
//
// Read and write locks are tracked as separate keys (mu/W and mu/R): an
// RUnlock does not release a Lock.
var UnlockPath = &Analyzer{
	Name: "unlockpath",
	Doc: "flag mutex Lock/RLock with a return or panic path that skips the " +
		"matching unlock (deferred unlocks on the path are honored)",
	Run: runUnlockPath,
}

const (
	lockU  uint8 = 1 << iota // unheld
	lockH                    // held, not deferred — leaks at exit
	lockHD                   // held, deferred unlock registered
	lockD                    // unheld, deferred unlock registered
)

// unlockFlow is the FlowAnalysis; one instance per function body so the
// side tables (lock sites, reported positions) reset per flow.
type unlockFlow struct {
	pass      *Pass
	reporting bool
	lockSite  map[string]token.Pos // key → a Lock position, for messages
	lockExpr  map[string]string    // key → rendered receiver
}

func runUnlockPath(pass *Pass) error {
	funcBodies(pass.Files, func(body *ast.BlockStmt) {
		g := BuildCFG(body)
		fl := &unlockFlow{
			pass:     pass,
			lockSite: map[string]token.Pos{},
			lockExpr: map[string]string{},
		}
		in := Forward[maskFact](g, fl)
		fl.reporting = true
		WalkFacts[maskFact](g, fl, in, func(n ast.Node, f maskFact) {
			fl.checkExit(n, f)
		})
	})
	return nil
}

func (fl *unlockFlow) Entry() maskFact             { return maskFact{} }
func (fl *unlockFlow) Join(a, b maskFact) maskFact { return joinMasks(a, b) }
func (fl *unlockFlow) Equal(a, b maskFact) bool    { return equalMasks(a, b) }

func (fl *unlockFlow) Transfer(n ast.Node, f maskFact) maskFact {
	switch n := n.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
			return fl.call(call, f)
		}
	case *ast.DeferStmt:
		return fl.deferred(n, f)
	}
	return f
}

// call applies a direct mutex operation.
func (fl *unlockFlow) call(call *ast.CallExpr, f maskFact) maskFact {
	key, op, ok := fl.mutexOp(call)
	if !ok {
		return f
	}
	switch op {
	case "Lock", "RLock":
		return fl.acquire(key, call.Pos(), f)
	case "Unlock", "RUnlock":
		return transition(f, key, func(s uint8) uint8 {
			var out uint8
			if s&(lockU|lockH) != 0 {
				out |= lockU
			}
			if s&(lockHD|lockD) != 0 {
				out |= lockD
			}
			return out
		})
	}
	return f
}

func (fl *unlockFlow) acquire(key string, pos token.Pos, f maskFact) maskFact {
	if !fl.reporting {
		fl.lockSite[key] = pos
	}
	return transition(f, key, func(s uint8) uint8 {
		var out uint8
		if s&(lockU|lockH) != 0 {
			out |= lockH
		}
		if s&(lockD|lockHD) != 0 {
			out |= lockHD
		}
		return out
	})
}

// deferred handles defer mu.Unlock() and defer func() { ... mu.Unlock() }.
func (fl *unlockFlow) deferred(d *ast.DeferStmt, f maskFact) maskFact {
	keys := fl.deferredUnlockKeys(d)
	for _, key := range keys {
		f = transition(f, key, func(s uint8) uint8 {
			var out uint8
			if s&(lockU|lockD) != 0 {
				out |= lockD
			}
			if s&(lockH|lockHD) != 0 {
				out |= lockHD
			}
			return out
		})
	}
	return f
}

// deferredUnlockKeys lists the mutex keys a defer statement will unlock:
// the direct defer mu.Unlock() form, or unlock calls syntactically inside
// a deferred function literal.
func (fl *unlockFlow) deferredUnlockKeys(d *ast.DeferStmt) []string {
	if key, op, ok := fl.mutexOp(d.Call); ok && (op == "Unlock" || op == "RUnlock") {
		return []string{key}
	}
	lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit)
	if !ok {
		return nil
	}
	var keys []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if key, op, ok := fl.mutexOp(call); ok && (op == "Unlock" || op == "RUnlock") {
				keys = append(keys, key)
			}
		}
		return true
	})
	return keys
}

// checkExit reports held-without-defer states at returns and terminators.
func (fl *unlockFlow) checkExit(n ast.Node, f maskFact) {
	var what string
	switch n.(type) {
	case *ast.ReturnStmt:
		what = "return"
	case *ImplicitReturn:
		what = "function end"
	default:
		if _, ok := isTerminator(n); ok {
			what = "abrupt exit"
		} else {
			return
		}
	}
	keys := make([]string, 0, len(f))
	for key := range f {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		if f[key]&lockH == 0 {
			continue
		}
		site := fl.pass.Fset.Position(fl.lockSite[key])
		fl.pass.Reportf(n.Pos(), "%s with %s still locked on at least one path "+
			"(acquired at line %d; unlock it or defer the unlock)",
			what, fl.lockExpr[key], site.Line)
	}
}

// Branch refines TryLock conditions: the lock is held only on the true
// edge of `if mu.TryLock() { ... }`.
func (fl *unlockFlow) Branch(cond ast.Expr, taken bool, f maskFact) maskFact {
	call, ok := ast.Unparen(cond).(*ast.CallExpr)
	if !ok {
		return f
	}
	key, op, ok := fl.mutexOp(call)
	if !ok || (op != "TryLock" && op != "TryRLock") {
		return f
	}
	if taken {
		return fl.acquire(key, call.Pos(), f)
	}
	return f
}

// mutexOp resolves call as a sync.Mutex/RWMutex method call and returns
// the receiver key (suffixed /W or /R so read and write locks are
// independent) and the method name.
func (fl *unlockFlow) mutexOp(call *ast.CallExpr) (key, op string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn := calleeFunc(fl.pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", "", false
	}
	rn := namedType(recv.Type())
	if rn == nil || (rn.Obj().Name() != "Mutex" && rn.Obj().Name() != "RWMutex") {
		return "", "", false
	}
	op = fn.Name()
	base, ok := receiverKey(fl.pass, sel.X)
	if !ok {
		return "", "", false
	}
	mode := "/W"
	if op == "RLock" || op == "RUnlock" || op == "TryRLock" {
		mode = "/R"
	}
	key = base + mode
	if !fl.reporting {
		fl.lockExpr[key] = exprString(sel.X)
	}
	return key, op, true
}

// transition rewrites one key's state set; an absent key starts at {U}.
func transition(f maskFact, key string, step func(uint8) uint8) maskFact {
	s, ok := f[key]
	if !ok {
		s = lockU
	}
	out := f.clone()
	out[key] = step(s)
	return out
}
