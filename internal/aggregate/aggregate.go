// Package aggregate implements the aggregate state machines used by the
// temporal-aggregation algorithms: COUNT, SUM, AVG, MIN, and MAX.
//
// Each aggregate is modelled as a small value-type State with three
// operations: Add absorbs one tuple's attribute value, Merge combines two
// partial states, and Final produces the scalar result. Merge is commutative
// and associative with Zero as identity, which is exactly the property the
// aggregation tree exploits: every tuple covering a leaf's constant interval
// contributes at precisely one node on the leaf's root path, so merging the
// states down that path yields the leaf's aggregate (Kline & Snodgrass §5.1).
//
// Space use mirrors the paper's accounting (§6): COUNT needs one word; SUM,
// MIN and MAX need a word plus an empty-marker bit; AVG needs a sum and a
// count.
package aggregate

import "fmt"

// Kind selects an aggregate function.
type Kind int

const (
	// Count counts qualifying tuples. The count of an empty group is 0, not
	// null.
	Count Kind = iota
	// Sum adds attribute values; null over an empty group.
	Sum
	// Avg is the mean attribute value; null over an empty group.
	Avg
	// Min selects the least attribute value; null over an empty group.
	Min
	// Max selects the greatest attribute value; null over an empty group.
	Max
)

// Kinds lists every supported aggregate, in declaration order.
func Kinds() []Kind {
	return []Kind{Count, Sum, Avg, Min, Max}
}

// Decomposable reports whether the aggregate can be maintained under
// retraction from a running (count, sum) pair alone: COUNT, SUM, and AVG.
// These are the aggregates the columnar event sweep evaluates with signed
// deltas; MIN and MAX lose information on retraction and need the wedge (or
// tree) machinery instead.
func (k Kind) Decomposable() bool {
	return k == Count || k == Sum || k == Avg
}

// ParseKind maps a (case-sensitive, upper-case) SQL aggregate name to a Kind.
func ParseKind(name string) (Kind, error) {
	switch name {
	case "COUNT":
		return Count, nil
	case "SUM":
		return Sum, nil
	case "AVG":
		return Avg, nil
	case "MIN":
		return Min, nil
	case "MAX":
		return Max, nil
	}
	return 0, fmt.Errorf("aggregate: unknown function %q", name)
}

// String returns the SQL name of the aggregate.
func (k Kind) String() string {
	switch k {
	case Count:
		return "COUNT"
	case Sum:
		return "SUM"
	case Avg:
		return "AVG"
	case Min:
		return "MIN"
	case Max:
		return "MAX"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// State is a partial aggregate. The zero State is the identity for every
// kind (no tuples absorbed). States are plain values: copy freely.
type State struct {
	count int64
	sum   int64
	ext   int64 // running min or max; meaningful only when count > 0
}

// Empty reports whether no tuple has been absorbed into the state.
func (s State) Empty() bool { return s.count == 0 }

// Count returns the number of tuples absorbed.
func (s State) Count() int64 { return s.count }

// Counters exposes the state's raw counters — tuples absorbed, their value
// sum, and the running extremum — for evaluators that externalize partial
// states (serialization, index nodes). FromCounters is the inverse: for any
// state s, FromCounters(s.Counters()) == s.
func (s State) Counters() (count, sum, ext int64) {
	return s.count, s.sum, s.ext
}

// Func evaluates one aggregate kind over States.
type Func struct {
	kind Kind
}

// For returns the evaluator for kind.
func For(kind Kind) Func { return Func{kind: kind} }

// Kind reports which aggregate this Func evaluates.
func (f Func) Kind() Kind { return f.kind }

// Zero is the identity state: Merge(Zero, s) == s for all s.
func (f Func) Zero() State { return State{} }

// Add absorbs one attribute value into the state.
func (f Func) Add(s State, v int64) State {
	if s.count == 0 {
		return State{count: 1, sum: v, ext: v}
	}
	s.count++
	s.sum += v
	switch f.kind {
	case Min:
		if v < s.ext {
			s.ext = v
		}
	case Max:
		if v > s.ext {
			s.ext = v
		}
	}
	return s
}

// FromCounters reconstitutes a partial state from externally maintained
// counters: count tuples absorbed, their value sum, and the running extremum
// (meaningful for MIN/MAX only; ignored by the other kinds' finalizers).
// It exists for evaluators like the columnar sweep that track the aggregate
// as scalar counters instead of chaining Add calls; the result is
// indistinguishable from count Add calls absorbing values that sum to sum
// with extremum ext. count = 0 yields the Zero state regardless of the
// other arguments.
func (f Func) FromCounters(count, sum, ext int64) State {
	if count <= 0 {
		return State{}
	}
	return State{count: count, sum: sum, ext: ext}
}

// Merge combines two partial states. It is commutative and associative, with
// Zero as identity.
func (f Func) Merge(a, b State) State {
	if a.count == 0 {
		return b
	}
	if b.count == 0 {
		return a
	}
	out := State{count: a.count + b.count, sum: a.sum + b.sum, ext: a.ext}
	switch f.kind {
	case Min:
		if b.ext < out.ext {
			out.ext = b.ext
		}
	case Max:
		if b.ext > out.ext {
			out.ext = b.ext
		}
	}
	return out
}

// StateEqual reports whether two states produce the same final value for
// this aggregate. It is exact (AVG compares cross-multiplied rationals, not
// floats) and is the equality used when coalescing adjacent constant
// intervals.
func (f Func) StateEqual(a, b State) bool {
	switch f.kind {
	case Count:
		return a.count == b.count
	case Sum:
		if a.count == 0 || b.count == 0 {
			return a.count == 0 && b.count == 0
		}
		return a.sum == b.sum
	case Min, Max:
		if a.count == 0 || b.count == 0 {
			return a.count == 0 && b.count == 0
		}
		return a.ext == b.ext
	case Avg:
		if a.count == 0 || b.count == 0 {
			return a.count == 0 && b.count == 0
		}
		return a.sum*b.count == b.sum*a.count
	}
	return false
}

// Value is a finalized aggregate result.
type Value struct {
	// Null is true when the aggregate is undefined over an empty group
	// (every kind except COUNT).
	Null bool
	// Int holds the exact result for COUNT, SUM, MIN, and MAX. For AVG it is
	// the truncated integer quotient.
	Int int64
	// Float holds the result as a float64; for AVG this is the exact mean.
	Float float64
}

// Final produces the scalar result of the aggregate from a state.
func (f Func) Final(s State) Value {
	if s.count == 0 {
		if f.kind == Count {
			return Value{Int: 0, Float: 0}
		}
		return Value{Null: true}
	}
	switch f.kind {
	case Count:
		return Value{Int: s.count, Float: float64(s.count)}
	case Sum:
		return Value{Int: s.sum, Float: float64(s.sum)}
	case Avg:
		return Value{Int: s.sum / s.count, Float: float64(s.sum) / float64(s.count)}
	case Min, Max:
		return Value{Int: s.ext, Float: float64(s.ext)}
	}
	return Value{Null: true}
}

// String renders the value; null prints as "-" following the paper's result
// tables.
func (v Value) String() string {
	if v.Null {
		return "-"
	}
	if v.Float == float64(v.Int) {
		return fmt.Sprintf("%d", v.Int)
	}
	return fmt.Sprintf("%.4g", v.Float)
}
