// Fixture for finishonce under -strict-stats: Stats after Finish is
// flagged too; Stats before Finish stays clean.
package fixture

import (
	"tempagg/internal/core"
)

func statsAfterFinish(ev core.Evaluator) core.Stats {
	_, _ = ev.Finish()
	return ev.Stats() // want `Stats called on ev after Finish`
}

func statsBeforeFinish(ev core.Evaluator) core.Stats {
	st := ev.Stats() // ok: snapshot before Finish
	_, _ = ev.Finish()
	return st
}

func liveStatsAfterClose(ev *core.LiveEvaluator) core.Stats {
	_ = ev.Close()
	return ev.Stats() // want `Stats called on ev after Close`
}

func liveStatsBeforeClose(ev *core.LiveEvaluator) core.Stats {
	st := ev.Stats() // ok: snapshot before Close
	_ = ev.Close()
	return st
}

func cacheStatsAfterClose(rc *core.ResultCache) core.CacheStats {
	_ = rc.Close()
	return rc.Stats() // want `Stats called on rc after Close`
}

func cacheStatsBeforeClose(rc *core.ResultCache) core.CacheStats {
	st := rc.Stats() // ok: snapshot before Close
	_ = rc.Close()
	return st
}
