package core

import (
	"strings"
	"testing"

	"tempagg/internal/aggregate"
	"tempagg/internal/interval"
	"tempagg/internal/obs"
)

// sumWorkerLiveNodes walks one scan span and totals the §6 node counts its
// scan-worker children recorded, returning the worker count alongside.
func sumWorkerLiveNodes(t *testing.T, scan *obs.Span) (workers, nodes int) {
	t.Helper()
	for _, w := range scan.Children {
		if w.Name != "scan-worker" {
			continue
		}
		workers++
		if w.Counters == nil {
			t.Fatalf("scan-worker %q carries no counter snapshot", w.Attrs["worker"])
		}
		nodes += w.Counters.LiveNodes
	}
	return workers, nodes
}

// TestTracedParallelSweepSpanTree pins the acceptance identity of the trace
// tree: a traced Parallel=2 sweep must record two radix-sort spans, a
// chunked scan span with one scan-worker child per chunk, and the workers'
// LiveNodes counters must sum to the query-level §6 node total exactly —
// chunks partition the event columns and each event is one node, so nothing
// may be dropped or double-counted at chunk boundaries.
func TestTracedParallelSweepSpanTree(t *testing.T) {
	ts := raceTuples(4200) // distinct starts, finite ends: 8400 events
	// Reverse the ingest order so both event columns need their radix sorts
	// (sorted input skips them, and with them their spans).
	for i, j := 0, len(ts)-1; i < j; i, j = i+1, j-1 {
		ts[i], ts[j] = ts[j], ts[i]
	}
	tr := obs.NewQueryTrace("traced parallel sweep")

	ev := NewSweepOptions(aggregate.For(aggregate.Count), SweepOptions{Parallel: 2, Trace: tr.Context()})
	if err := ev.AddBatch(ts); err != nil {
		t.Fatal(err)
	}
	if _, err := ev.Finish(); err != nil {
		t.Fatal(err)
	}
	st := ev.Stats()

	var scan *obs.Span
	radix := 0
	for _, sp := range tr.SpanTree() {
		switch sp.Name {
		case "radix-sort":
			radix++
		case "scan":
			scan = sp
		}
	}
	if radix != 2 { // arrivals column + departures column
		t.Errorf("radix-sort spans = %d, want 2", radix)
	}
	if scan == nil {
		t.Fatal("no scan span recorded")
	}
	if got := scan.Attrs["mode"]; got != "chunked" {
		t.Errorf("scan mode = %q, want chunked", got)
	}
	workers, nodes := sumWorkerLiveNodes(t, scan)
	if workers != 2 {
		t.Errorf("scan-worker spans = %d, want 2", workers)
	}
	if nodes != st.LiveNodes {
		t.Errorf("worker span node sum = %d, query LiveNodes = %d; per-worker counters must partition the query total", nodes, st.LiveNodes)
	}
	if nodes != 2*len(ts) {
		t.Errorf("worker span node sum = %d, want %d (two events per tuple)", nodes, 2*len(ts))
	}
	if scan.Duration <= 0 {
		t.Errorf("scan span duration not stamped: %v", scan.Duration)
	}
}

// TestTracedSweepGroupSpanTree: a traced shared SweepGroup records one
// scan span in mode=shared whose children include the per-worker scans and
// one group-query span per registered query, each stamped with its row
// count.
func TestTracedSweepGroupSpanTree(t *testing.T) {
	ts := raceTuples(4200)
	tr := obs.NewQueryTrace("traced sweep group")

	g := NewSweepGroup(SweepOptions{Parallel: 2})
	g.SetTrace(tr.Context())
	for _, kind := range []aggregate.Kind{aggregate.Count, aggregate.Sum, aggregate.Avg} {
		if _, err := g.Register(GroupQuery{Func: aggregate.For(kind)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddBatch(ts); err != nil {
		t.Fatal(err)
	}
	results, err := g.Finish()
	if err != nil {
		t.Fatal(err)
	}

	var scan *obs.Span
	for _, sp := range tr.SpanTree() {
		if sp.Name == "scan" {
			scan = sp
		}
	}
	if scan == nil {
		t.Fatal("no scan span recorded")
	}
	if got := scan.Attrs["mode"]; got != "shared" {
		t.Errorf("scan mode = %q, want shared", got)
	}
	workers, nodes := sumWorkerLiveNodes(t, scan)
	if workers < 1 {
		t.Error("no scan-worker spans under the shared scan")
	}
	if nodes != 2*len(ts) {
		t.Errorf("worker span node sum = %d, want %d", nodes, 2*len(ts))
	}
	queries := 0
	for _, c := range scan.Children {
		if c.Name != "group-query" {
			continue
		}
		queries++
		if c.Attrs["rows"] == "" || c.Attrs["query"] == "" {
			t.Errorf("group-query span missing query/rows attrs: %v", c.Attrs)
		}
	}
	if queries != len(results) {
		t.Errorf("group-query spans = %d, want %d", queries, len(results))
	}
}

// TestTracedPartitionShardSpans: a traced partitioned evaluation records one
// shard span per partition, each tagged with its index and covered span and
// carrying the shard's own counter snapshot; sweep shards nest their sort
// and scan children underneath.
func TestTracedPartitionShardSpans(t *testing.T) {
	ts := raceTuples(2000)
	tr := obs.NewQueryTrace("traced partition")

	res, _, err := EvaluatePartitionedTuples(aggregate.For(aggregate.Count), ts,
		PartitionOptions{
			Boundaries: UniformBoundaries(interval.MustNew(0, 2010), 4),
			Sweep:      true,
			Trace:      tr.Context(),
		})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}

	shards := 0
	for _, sp := range tr.SpanTree() {
		if sp.Name != "shard" {
			continue
		}
		shards++
		if sp.Attrs["partition"] == "" || !strings.HasPrefix(sp.Attrs["span"], "[") {
			t.Errorf("shard span missing partition/span attrs: %v", sp.Attrs)
		}
		if sp.Counters == nil || sp.Counters.Tuples == 0 {
			t.Errorf("shard span %v carries no counter snapshot", sp.Attrs)
		}
		nested := false
		for _, c := range sp.Children {
			if c.Name == "radix-sort" || c.Name == "scan" {
				nested = true
			}
		}
		if !nested {
			t.Errorf("shard %v has no nested sweep spans", sp.Attrs["partition"])
		}
	}
	if shards != 4 {
		t.Errorf("shard spans = %d, want 4", shards)
	}
}

// TestZeroTraceContextIsFree: evaluators run with a zero TraceContext must
// record nothing and behave identically to an untraced run — the disabled
// path is a pointer compare, never an allocation.
func TestZeroTraceContextIsFree(t *testing.T) {
	ts := raceTuples(1000)
	ev := NewSweepOptions(aggregate.For(aggregate.Count), SweepOptions{Parallel: 2})
	if err := ev.AddBatch(ts); err != nil {
		t.Fatal(err)
	}
	res, err := ev.Finish()
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewQueryTrace("traced twin")
	ev2 := NewSweepOptions(aggregate.For(aggregate.Count), SweepOptions{Parallel: 2, Trace: tr.Context()})
	if err := ev2.AddBatch(ts); err != nil {
		t.Fatal(err)
	}
	res2, err := ev2.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(res2.Rows) {
		t.Fatalf("traced run changed results: %d rows vs %d", len(res.Rows), len(res2.Rows))
	}
}

// TestWorkerHistogramExactScrape is the exact-value scrape contract for the
// worker-count histogram that replaced the last-write-wins gauge: three runs
// at 2, 4, and 4 workers must land one observation in the le=2 bucket and
// two more by le=4, with sum 10 and count 3 — values a gauge could never
// report once scans overlap.
func TestWorkerHistogramExactScrape(t *testing.T) {
	ts := raceTuples(4200)
	m := obs.NewMetrics(obs.NewRegistry())

	for _, workers := range []int{2, 4, 4} {
		ev, err := NewObserved(Spec{Algorithm: SweepEval, Parallel: workers}, aggregate.For(aggregate.Count), m)
		if err != nil {
			t.Fatal(err)
		}
		if err := ev.AddBatch(ts); err != nil {
			t.Fatal(err)
		}
		if _, err := ev.Finish(); err != nil {
			t.Fatal(err)
		}
	}

	var b strings.Builder
	if err := m.Registry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for series, want := range map[string]string{
		obs.MetricSweepWorkers + `_bucket{algorithm="sweep",le="1"}`:    "0",
		obs.MetricSweepWorkers + `_bucket{algorithm="sweep",le="2"}`:    "1",
		obs.MetricSweepWorkers + `_bucket{algorithm="sweep",le="4"}`:    "3",
		obs.MetricSweepWorkers + `_bucket{algorithm="sweep",le="+Inf"}`: "3",
		obs.MetricSweepWorkers + `_sum{algorithm="sweep"}`:              "10",
		obs.MetricSweepWorkers + `_count{algorithm="sweep"}`:            "3",
	} {
		line := series + " " + want
		if !strings.Contains(out, line) {
			t.Errorf("exposition missing %q", line)
		}
	}
}
