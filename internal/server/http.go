package server

import (
	"net/http"
	"net/http/pprof"

	"tempagg/internal/obs"
)

// AdminMux builds the operator-facing HTTP surface for an observer:
//
//	/metrics        Prometheus text exposition of every pipeline counter
//	/debug/traces   JSON ring buffer of the last N query traces
//	/debug/queries  rolling per-stage latency window: histograms with
//	                quantiles, exemplar trace IDs, and the burn-rate-ranked
//	                slow-stage view
//	/debug/pprof/*  the standard Go profiling endpoints
//
// The pprof handlers are registered explicitly rather than importing
// net/http/pprof for its DefaultServeMux side effect, so the daemon never
// exposes profiling on a mux it did not ask for. A nil observer still
// yields a working mux: pprof stays live while /metrics and the /debug
// query surfaces answer 404, which keeps the smoke test honest about what
// is wired.
func AdminMux(o *obs.Observer) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", obs.MetricsHandler(o.Registry()))
	mux.Handle("/debug/traces", obs.TracesHandler(o.TraceBuffer()))
	mux.Handle("/debug/queries", obs.QueriesHandler(o.QueryStatsWindow()))
	// pprof.Index dispatches the named profiles (heap, goroutine, block,
	// mutex, threadcreate, allocs) under /debug/pprof/<name>.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
