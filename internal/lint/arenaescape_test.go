package lint_test

import (
	"testing"

	"tempagg/internal/lint"
	"tempagg/internal/lint/linttest"
)

func TestArenaEscape(t *testing.T) {
	linttest.Run(t, lint.ArenaEscape, "arenaescape")
}
