// Fixture for the nodebytes analyzer: the literal 16 in memory-accounting
// arithmetic is flagged; core.NodeBytes and non-accounting 16s are clean.
package fixture

import "tempagg/internal/core"

func hardcodedPeak(stats core.Stats) int64 {
	return int64(stats.PeakNodes) * 16 // want `hardcoded 16 in memory accounting`
}

func hardcodedLive(stats core.Stats) int64 {
	return 16 * int64(stats.LiveNodes) // want `hardcoded 16 in memory accounting`
}

func hardcodedBudget(memBudget int64) int64 {
	return memBudget / 16 // want `hardcoded 16 in memory accounting`
}

func namedConstant(nodes int) int {
	nodeBytes := 16 // want `hardcoded 16 in memory accounting`
	return nodes * nodeBytes
}

func throughTheConstant(stats core.Stats) int64 {
	return int64(stats.PeakNodes) * core.NodeBytes // ok: the one owner of the constant
}

func unrelatedSixteens(n int) int {
	width := 16      // ok: not memory accounting
	limit := 1 << 16 // ok: a shift count, not a node size
	parts := n * 16  // ok: no accounting context on either side
	return width + limit + parts
}
