package workload_test

import (
	"fmt"

	"tempagg/internal/order"
	"tempagg/internal/workload"
)

// ExampleGenerate builds a Table 3 relation: 1M-instant lifespan, 40%
// long-lived tuples, perturbed to k=40 with k-ordered-percentage 0.08.
func ExampleGenerate() {
	rel, err := workload.Generate(workload.Config{
		Tuples:       2000,
		LongLivedPct: 40,
		Order:        workload.KOrdered,
		K:            40,
		KPct:         0.08,
		Seed:         1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("tuples:", rel.Len())
	fmt.Println("k-ordered for k=40:", order.IsKOrdered(rel.Tuples, 40))
	pct, err := order.KOrderedPercentage(rel.Tuples, 40)
	if err != nil {
		panic(err)
	}
	fmt.Printf("k-ordered-percentage: %.2f\n", pct)
	// Output:
	// tuples: 2000
	// k-ordered for k=40: true
	// k-ordered-percentage: 0.08
}

// ExampleGenerate_retroBounded builds the recording-delay model the paper
// approximates with k-ordered relations (§6).
func ExampleGenerate_retroBounded() {
	rel, err := workload.Generate(workload.Config{
		Tuples:   2000,
		Order:    workload.RetroBounded,
		MaxDelay: 1000,
		Seed:     2,
	})
	if err != nil {
		panic(err)
	}
	k := order.KOrderedness(rel.Tuples)
	fmt.Println("bounded recording delay yields a k-ordered stream:", k > 0 && k < 100)
	// Output:
	// bounded recording delay yields a k-ordered stream: true
}
