package main

import (
	"os"
	"path/filepath"
	"testing"

	"tempagg"
	"tempagg/internal/relation"
)

func TestConvertCSVToBinaryAndBack(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "emp.csv")
	relPath := filepath.Join(dir, "emp.rel")
	backPath := filepath.Join(dir, "back.csv")

	f, err := os.Create(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := relation.WriteCSV(f, tempagg.Employed()); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if err := run([]string{"-in", csvPath, "-out", relPath}); err != nil {
		t.Fatal(err)
	}
	rel, err := tempagg.ReadRelation(relPath)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 4 {
		t.Fatalf("%d tuples after conversion", rel.Len())
	}

	if err := run([]string{"-in", relPath, "-out", backPath}); err != nil {
		t.Fatal(err)
	}
	g, err := os.Open(backPath)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	back, err := relation.ReadCSV(g, "back")
	if err != nil {
		t.Fatal(err)
	}
	for i, tu := range tempagg.Employed().Tuples {
		if back.Tuples[i] != tu {
			t.Fatalf("tuple %d changed: %v != %v", i, back.Tuples[i], tu)
		}
	}
}

func TestConvertSortAndDedup(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.rel")
	out := filepath.Join(dir, "out.rel")
	rel := tempagg.Employed()
	rel.Append(rel.Tuples[0]) // duplicate
	if err := tempagg.WriteRelation(in, rel); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", in, "-out", out, "-sort", "-dedup"}); err != nil {
		t.Fatal(err)
	}
	got, err := tempagg.ReadRelation(out)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 4 {
		t.Fatalf("%d tuples, want 4 after dedup", got.Len())
	}
	if !got.IsSorted() {
		t.Fatal("output not sorted")
	}
}

func TestConvertErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing flags must fail")
	}
	if err := run([]string{"-in", "x.foo", "-out", "y.rel"}); err == nil {
		t.Error("unknown input format must fail")
	}
	dir := t.TempDir()
	in := filepath.Join(dir, "in.rel")
	if err := tempagg.WriteRelation(in, tempagg.Employed()); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", in, "-out", filepath.Join(dir, "x.foo")}); err == nil {
		t.Error("unknown output format must fail")
	}
	if err := run([]string{"-in", filepath.Join(dir, "missing.rel"), "-out", filepath.Join(dir, "o.rel")}); err == nil {
		t.Error("missing input must fail")
	}
}
