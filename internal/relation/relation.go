// Package relation provides the in-memory temporal relation model and a
// paged binary storage layer preserving the paper's physical layout: fixed
// 128-byte tuples (6-byte name, 4-byte value, two 4-byte timestamps, and 110
// bytes of attributes not examined by the aggregate), scanned one page at a
// time (Kline & Snodgrass §6).
package relation

import (
	"fmt"
	"sort"

	"tempagg/internal/interval"
	"tempagg/internal/tuple"
)

// Relation is an in-memory interval-stamped relation. Tuple order is
// significant: the algorithms' behaviour depends on how far the relation is
// from being totally ordered by time (§5.2).
type Relation struct {
	// Name labels the relation (e.g. "Employed").
	Name string
	// Tuples holds the rows in physical order.
	Tuples []tuple.Tuple
}

// New returns an empty relation with the given name.
func New(name string) *Relation {
	return &Relation{Name: name}
}

// FromTuples builds a relation over a copied tuple slice.
func FromTuples(name string, ts []tuple.Tuple) *Relation {
	r := &Relation{Name: name, Tuples: make([]tuple.Tuple, len(ts))}
	copy(r.Tuples, ts)
	return r
}

// Len is the number of tuples.
func (r *Relation) Len() int { return len(r.Tuples) }

// Append adds a tuple to the end of the relation.
func (r *Relation) Append(t tuple.Tuple) { r.Tuples = append(r.Tuples, t) }

// Clone returns a deep copy; mutating the copy's order leaves r untouched.
func (r *Relation) Clone() *Relation {
	return FromTuples(r.Name, r.Tuples)
}

// Validate checks every tuple.
func (r *Relation) Validate() error {
	for i, t := range r.Tuples {
		if err := t.Validate(); err != nil {
			return fmt.Errorf("relation %s: tuple %d: %w", r.Name, i, err)
		}
	}
	return nil
}

// SortByTime sorts the tuples "totally ordered by time": by start, ties
// broken by end (§5.2). The sort is stable so equal-interval tuples keep
// their relative order.
func (r *Relation) SortByTime() {
	sort.SliceStable(r.Tuples, func(i, j int) bool {
		return r.Tuples[i].Less(r.Tuples[j])
	})
}

// IsSorted reports whether the relation is already totally ordered by time
// (equivalently, 0-ordered).
func (r *Relation) IsSorted() bool {
	return sort.SliceIsSorted(r.Tuples, func(i, j int) bool {
		return r.Tuples[i].Less(r.Tuples[j])
	})
}

// Lifespan returns the smallest interval covering every tuple. ok is false
// for an empty relation.
func (r *Relation) Lifespan() (interval.Interval, bool) {
	if len(r.Tuples) == 0 {
		return interval.Interval{}, false
	}
	span := r.Tuples[0].Valid
	for _, t := range r.Tuples[1:] {
		if t.Valid.Start < span.Start {
			span.Start = t.Valid.Start
		}
		if t.Valid.End > span.End {
			span.End = t.Valid.End
		}
	}
	return span, true
}

// Employed returns the paper's running-example relation (Figure 1, as
// reconstructed from Figures 2–3 and Table 1):
//
//	Richard  40K  [18, ∞]
//	Karen    45K  [ 8, 20]
//	Nathan   35K  [ 7, 12]
//	Nathan   37K  [18, 21]
//
// Nathan is not employed during [13,17], and the relation is in no
// particular order.
func Employed() *Relation {
	return FromTuples("Employed", []tuple.Tuple{
		tuple.MustNew("Rich", 40, 18, interval.Forever),
		tuple.MustNew("Karen", 45, 8, 20),
		tuple.MustNew("Nathan", 35, 7, 12),
		tuple.MustNew("Nathan", 37, 18, 21),
	})
}
