package order

import (
	"testing"
)

// TestEstimateSorted: a sorted relation witnesses no inversion at any gap.
func TestEstimateSorted(t *testing.T) {
	ts := sortedTuples(4096)
	if k := EstimateKOrderedness(ts, 0, 1); k != 0 {
		t.Fatalf("sorted relation estimated k=%d, want 0", k)
	}
	if k := EstimateKOrderedness(nil, 0, 1); k != 0 {
		t.Fatalf("empty relation estimated k=%d, want 0", k)
	}
}

// TestEstimateSwapPairs: for the Table 2 swap-at-distance constructions the
// estimate must cover the true bound (never underestimate with full anchor
// coverage) while staying within the documented 4× ceiling.
func TestEstimateSwapPairs(t *testing.T) {
	const n = 4096
	base := sortedTuples(n)
	for _, d := range []int{1, 4, 16, 100, 500} {
		ts, err := SwapPairs(base, 8, d)
		if err != nil {
			t.Fatal(err)
		}
		trueK := KOrderedness(ts)
		if trueK != d {
			t.Fatalf("construction broken: SwapPairs distance %d gave k=%d", d, trueK)
		}
		got := EstimateKOrderedness(ts, n, 1) // full anchor coverage: deterministic
		if got < trueK || got > 4*trueK {
			t.Fatalf("distance %d: estimate %d outside [k, 4k] = [%d, %d]",
				d, got, trueK, 4*trueK)
		}
	}
}

// TestEstimateStaircase: the Table 2 staircase (10 tuples displaced by each
// of 1..100 positions) is bounded by its largest step.
func TestEstimateStaircase(t *testing.T) {
	const n = 8192
	ts, err := Staircase(sortedTuples(n), 10, 100)
	if err != nil {
		t.Fatal(err)
	}
	trueK := KOrderedness(ts)
	if trueK != 100 {
		t.Fatalf("construction broken: staircase gave k=%d", trueK)
	}
	got := EstimateKOrderedness(ts, n, 1)
	if got < trueK || got > 4*trueK {
		t.Fatalf("staircase: estimate %d outside [%d, %d]", got, trueK, 4*trueK)
	}
}

// TestEstimateShuffleLooksRandom: a full shuffle must estimate a bound deep
// into the relation — the planner then prices the k-ordered tree out, as it
// should for random input.
func TestEstimateShuffleLooksRandom(t *testing.T) {
	const n = 4096
	ts := Shuffle(sortedTuples(n), 7)
	got := EstimateKOrderedness(ts, 0, 1)
	if got < n/8 {
		t.Fatalf("shuffled relation estimated k=%d, want ≥ %d", got, n/8)
	}
	if got > n-1 {
		t.Fatalf("estimate %d exceeds the n-1 clamp", got)
	}
}

// TestEstimateSampledCoverage: the default reservoir (not full coverage)
// still covers the true bound for a construction with enough displaced
// tuples to sample, and is deterministic per seed.
func TestEstimateSampledCoverage(t *testing.T) {
	const n = 8192
	ts, err := SwapPairs(sortedTuples(n), 256, 64)
	if err != nil {
		t.Fatal(err)
	}
	a := EstimateKOrderedness(ts, 0, 42)
	b := EstimateKOrderedness(ts, 0, 42)
	if a != b {
		t.Fatalf("same seed gave %d then %d", a, b)
	}
	if truek := KOrderedness(ts); a < truek {
		t.Fatalf("sampled estimate %d below true bound %d", a, truek)
	}
}
