package query

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"tempagg/internal/obs"
)

// RenderExplain renders the EXPLAIN [ANALYZE] report for a planned (and,
// with a trace, executed) query. With tr == nil only the plan tree is
// rendered: the chosen strategy and every alternative the planner priced.
// With a finished trace the report adds the measured span tree — each stage
// and worker with wall/CPU time and its §6 counter snapshot — a worker-skew
// summary for the parallel scan, and the estimated-vs-actual cost delta.
//
// The same renderer serves the EXPLAIN statement, tempagg -explain, and the
// daemon, so their output is identical for identical queries.
func RenderExplain(qr *QueryResult, tr *obs.QueryTrace) string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan: %s\n", qr.Plan)
	if len(qr.Plan.Alternatives) > 0 {
		b.WriteString("alternatives:\n")
		for _, a := range qr.Plan.Alternatives {
			marker := "  "
			if a.Chosen {
				marker = "->"
			}
			if a.Cost > 0 {
				fmt.Fprintf(&b, "  %s %-28s cost=%.4g\n", marker, a.Algorithm, a.Cost)
			} else {
				fmt.Fprintf(&b, "  %s %-28s\n", marker, a.Algorithm)
			}
		}
	}
	if tr == nil {
		return b.String()
	}

	fmt.Fprintf(&b, "trace: %s\n", tr.TraceID)
	for _, sp := range tr.SpanTree() {
		renderSpan(&b, sp, 1)
	}
	st := traceCounters(tr)
	fmt.Fprintf(&b, "counters: tuples=%d live_nodes=%d peak_nodes=%d collected=%d\n",
		st.Tuples, st.LiveNodes, st.PeakNodes, st.Collected)
	renderWorkerSkew(&b, tr)
	renderCostDelta(&b, qr, st)
	return b.String()
}

// renderSpan writes one span line — name, attributes, timings, counters —
// then recurses into its children.
func renderSpan(b *strings.Builder, sp *obs.Span, depth int) {
	fmt.Fprintf(b, "%s%s", strings.Repeat("  ", depth), sp.Name)
	if len(sp.Attrs) > 0 {
		b.WriteString("[")
		for i, k := range sortedKeys(sp.Attrs) {
			if i > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(b, "%s=%s", k, sp.Attrs[k])
		}
		b.WriteString("]")
	}
	fmt.Fprintf(b, " %s", roundDuration(sp.Duration))
	if sp.CPUTime > 0 {
		fmt.Fprintf(b, " cpu=%s", roundDuration(sp.CPUTime))
	}
	if sp.AllocBytes > 0 {
		fmt.Fprintf(b, " alloc=%dB", sp.AllocBytes)
	}
	if c := sp.Counters; c != nil {
		fmt.Fprintf(b, " tuples=%d nodes=%d", c.Tuples, c.LiveNodes)
	}
	b.WriteString("\n")
	for _, child := range sp.Children {
		renderSpan(b, child, depth+1)
	}
}

// renderWorkerSkew summarizes the scan-worker spans: count, fastest,
// slowest, and the max/mean ratio — the signal that one chunk ran long and
// capped the parallel speedup.
func renderWorkerSkew(b *strings.Builder, tr *obs.QueryTrace) {
	var workers []*obs.Span
	var visit func(sp *obs.Span)
	visit = func(sp *obs.Span) {
		if sp.Name == "scan-worker" {
			workers = append(workers, sp)
		}
		for _, c := range sp.Children {
			visit(c)
		}
	}
	for _, sp := range tr.SpanTree() {
		visit(sp)
	}
	if len(workers) == 0 {
		return
	}
	minD, maxD, sum := workers[0].Duration, workers[0].Duration, time.Duration(0)
	for _, w := range workers {
		if w.Duration < minD {
			minD = w.Duration
		}
		if w.Duration > maxD {
			maxD = w.Duration
		}
		sum += w.Duration
	}
	mean := sum / time.Duration(len(workers))
	skew := math.NaN()
	if mean > 0 {
		skew = float64(maxD) / float64(mean)
	}
	fmt.Fprintf(b, "workers: %d spans, min=%s max=%s mean=%s skew(max/mean)=%.2f\n",
		len(workers), roundDuration(minD), roundDuration(maxD), roundDuration(mean), skew)
}

// renderCostDelta reprices the chosen plan's cost formula with the measured
// counters and reports the estimate's error.
func renderCostDelta(b *strings.Builder, qr *QueryResult, st obs.EvalCounters) {
	if !qr.Plan.Prices.Enabled() {
		return
	}
	var est float64
	for _, a := range qr.Plan.Alternatives {
		if a.Chosen {
			est = a.Cost
		}
	}
	if est <= 0 {
		return
	}
	actual := ActualCost(qr.Plan, qr.Plan.Prices, st.Tuples, st.PeakNodes)
	fmt.Fprintf(b, "cost: estimated=%.4g actual=%.4g delta=%+.1f%%\n",
		est, actual, (actual-est)/est*100)
}

// traceCounters reads the trace's counter snapshot under its lock.
func traceCounters(tr *obs.QueryTrace) obs.EvalCounters {
	// Stats is written via AddStats under tr.mu; the trace is finished when
	// rendered, so a plain read is safe here.
	return tr.Stats
}

// roundDuration trims a duration to three significant figures so reports
// stay readable without hiding the magnitude.
func roundDuration(d time.Duration) time.Duration {
	scale := time.Nanosecond
	for m := d; m >= 1000; m /= 10 {
		scale *= 10
	}
	return d.Round(scale)
}

// sortedKeys returns the map's keys in sorted order for stable rendering.
func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
