package catalog

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"tempagg/internal/core"
	"tempagg/internal/relation"
	"tempagg/internal/workload"
)

// newCatalogDir builds a directory with two relations.
func newCatalogDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	if err := relation.WriteFile(filepath.Join(dir, "Employed.rel"), relation.Employed()); err != nil {
		t.Fatal(err)
	}
	synth, err := workload.Generate(workload.Config{Tuples: 500, Order: workload.Sorted, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := relation.WriteFile(filepath.Join(dir, "Synth.rel"), synth); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestOpenDiscoversRelations(t *testing.T) {
	c, err := Open(newCatalogDir(t))
	if err != nil {
		t.Fatal(err)
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "Employed" || names[1] != "Synth" {
		t.Fatalf("names = %v", names)
	}
	e, err := c.Entry("Employed")
	if err != nil {
		t.Fatal(err)
	}
	if e.KBound != -1 {
		t.Fatalf("default KBound = %d, want -1", e.KBound)
	}
}

func TestDeclareAndPersist(t *testing.T) {
	dir := newCatalogDir(t)
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Declare("Employed", Entry{KBound: 4, Comment: "HR feed"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Save(); err != nil {
		t.Fatal(err)
	}

	again, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	e, err := again.Entry("Employed")
	if err != nil {
		t.Fatal(err)
	}
	if e.KBound != 4 || e.Comment != "HR feed" {
		t.Fatalf("persisted entry = %+v", e)
	}
	// The declaration reaches the optimizer.
	info, err := again.Info("Employed")
	if err != nil {
		t.Fatal(err)
	}
	if info.KBound != 4 || info.Tuples != 4 {
		t.Fatalf("info = %+v", info)
	}
}

func TestInfoUsesHeaderSortedFlag(t *testing.T) {
	c, err := Open(newCatalogDir(t))
	if err != nil {
		t.Fatal(err)
	}
	info, err := c.Info("Synth")
	if err != nil {
		t.Fatal(err)
	}
	if !info.Sorted || info.Tuples != 500 {
		t.Fatalf("info = %+v", info)
	}
}

func TestCatalogQuery(t *testing.T) {
	c, err := Open(newCatalogDir(t))
	if err != nil {
		t.Fatal(err)
	}
	qr, err := c.Query("SELECT COUNT(Name) FROM Employed", relation.ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(qr.Groups[0].Result.Rows) != 7 {
		t.Fatalf("%d rows", len(qr.Groups[0].Result.Rows))
	}
	// A sorted relation streams through ktree(1).
	qr, err = c.Query("SELECT AVG(Salary) FROM Synth", relation.ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if qr.Plan.Spec.Algorithm != core.KOrderedTree || qr.Plan.Spec.K != 1 {
		t.Fatalf("plan = %v", qr.Plan)
	}
}

func TestCatalogQueryUnknownRelation(t *testing.T) {
	c, err := Open(newCatalogDir(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query("SELECT COUNT(Name) FROM Nope", relation.ScanOptions{}); err == nil {
		t.Fatal("unknown relation must fail")
	}
	if err := c.Declare("Nope", Entry{}); err == nil {
		t.Fatal("declaring an unknown relation must fail")
	}
}

func TestOpenRejectsDanglingDeclaration(t *testing.T) {
	dir := newCatalogDir(t)
	meta := `{"Ghost":{"file":"Ghost.rel","kbound":3}}`
	if err := os.WriteFile(filepath.Join(dir, MetadataFile), []byte(meta), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("dangling declaration must be reported")
	}
}

func TestOpenRejectsBadMetadata(t *testing.T) {
	dir := newCatalogDir(t)
	if err := os.WriteFile(filepath.Join(dir, MetadataFile), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("bad metadata must be reported")
	}
}

func TestOpenMissingDir(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "nonexistent")); err == nil {
		t.Fatal("missing directory must fail")
	}
}

// TestConcurrentDeclareAndRead pins down the Catalog's concurrency
// contract: Declare's map write must not race with readers. Run under
// -race; before entries was guarded by an RWMutex this test failed.
func TestConcurrentDeclareAndRead(t *testing.T) {
	cat, err := Open(newCatalogDir(t))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				switch w % 4 {
				case 0:
					if err := cat.Declare("Synth", Entry{KBound: i}); err != nil {
						t.Error(err)
						return
					}
				case 1:
					if _, err := cat.Entry("Employed"); err != nil {
						t.Error(err)
						return
					}
				case 2:
					if len(cat.Names()) != 2 {
						t.Error("catalog lost a relation")
						return
					}
				case 3:
					if _, err := cat.Info("Synth"); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	e, err := cat.Entry("Synth")
	if err != nil {
		t.Fatal(err)
	}
	if e.File != "Synth.rel" {
		t.Fatalf("Declare must preserve the file binding, got %q", e.File)
	}
}

// TestQueryBatchMatchesIndividual: a batch mixing relations and shapes must
// return, per query, exactly what Query returns for it alone, with the
// sweep-eligible queries annotated as served by a shared pass.
func TestQueryBatchMatchesIndividual(t *testing.T) {
	dir := t.TempDir()
	if err := relation.WriteFile(filepath.Join(dir, "Employed.rel"), relation.Employed()); err != nil {
		t.Fatal(err)
	}
	synth, err := workload.Generate(workload.Config{Tuples: 400, LongLivedPct: 25, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := relation.WriteFile(filepath.Join(dir, "Synth.rel"), synth); err != nil {
		t.Fatal(err)
	}
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	sqls := []string{
		"SELECT COUNT(Name) FROM Synth",
		"SELECT SUM(Salary) FROM Synth WHERE Salary > 40000",
		"SELECT COUNT(Name) FROM Employed",
		"SELECT MIN(Salary) FROM Synth", // not decomposable: individual execution
		"SELECT COUNT(Name), AVG(Salary) FROM Synth",
	}
	results, err := c.QueryBatch(sqls, relation.ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(sqls) {
		t.Fatalf("%d results for %d queries", len(results), len(sqls))
	}
	for i, sql := range sqls {
		want, err := c.Query(sql, relation.ScanOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got := results[i]
		if len(got.Groups) != len(want.Groups) {
			t.Fatalf("%q: %d groups, want %d", sql, len(got.Groups), len(want.Groups))
		}
		for gi := range got.Groups {
			for ai, res := range got.Groups[gi].Results {
				if !res.Equal(want.Groups[gi].Results[ai]) {
					t.Errorf("%q group %d aggregate %d: batch result differs from Query", sql, gi, ai)
				}
			}
		}
	}
	if !strings.Contains(results[0].Plan.Reason, "shared pass") {
		t.Errorf("eligible query not served by the shared pass: %q", results[0].Plan.Reason)
	}
}

func TestQueryBatchUnknownRelation(t *testing.T) {
	c, err := Open(newCatalogDir(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.QueryBatch([]string{"SELECT COUNT(Name) FROM Nope"}, relation.ScanOptions{}); err == nil {
		t.Fatal("a batch naming a missing relation must fail")
	}
}
