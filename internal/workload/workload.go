// Package workload generates the synthetic temporal relations of the
// paper's empirical comparison (Kline & Snodgrass §6, Table 3).
//
// Relations have a lifespan of one million instants. Tuple start positions
// are drawn independently and uniformly (so timestamps are mostly unique,
// the paper's stated worst case for the tree algorithms). Short-lived tuples
// have a random length of 1 to 1000 instants; long-lived tuples have a
// length between 20% and 80% of the relation's lifespan. Tuples extending
// past the lifespan are discarded and redrawn. The relation is then left in
// random order, fully sorted, or perturbed to a target (k, k-ordered-
// percentage) pair.
package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"tempagg/internal/interval"
	"tempagg/internal/order"
	"tempagg/internal/relation"
	"tempagg/internal/tuple"
)

// Order selects the physical tuple order of a generated relation.
type Order int

const (
	// Random leaves the tuples in generation order — independent draws, so
	// effectively random by time. Used for Figure 6.
	Random Order = iota
	// Sorted totally orders the relation by time. Used for the "sorted
	// relation" series of Figures 7–9.
	Sorted
	// KOrdered sorts and then disorders the relation to a target k and
	// k-ordered-percentage. Used for the Ktree series of Figures 7–9.
	KOrdered
	// RetroBounded simulates a retroactively bounded relation (Jensen &
	// Snodgrass; §6): each fact is recorded within MaxDelay instants of
	// becoming valid, and the physical order is recording order. The paper
	// approximates these with k-ordered relations ("for a uniform arrival
	// rate, the two are identical"); this order generates the real thing so
	// the approximation can be checked.
	RetroBounded
)

// String names the order for harness output.
func (o Order) String() string {
	switch o {
	case Random:
		return "random"
	case Sorted:
		return "sorted"
	case KOrdered:
		return "k-ordered"
	case RetroBounded:
		return "retro-bounded"
	}
	return fmt.Sprintf("Order(%d)", int(o))
}

// Defaults from Table 3 and §6.
const (
	// DefaultLifespan is the relation lifespan: one million instants.
	DefaultLifespan interval.Time = 1_000_000
	// DefaultShortMax is the maximum short-lived tuple length.
	DefaultShortMax interval.Time = 1000
	// DefaultLongMinFrac and DefaultLongMaxFrac bound long-lived tuple
	// lengths as fractions of the lifespan (20%–80%, i.e. 200,000 to
	// 800,000 instants).
	DefaultLongMinFrac = 0.2
	DefaultLongMaxFrac = 0.8
)

// Config parameterizes relation generation; zero values take the paper's
// defaults where one exists.
type Config struct {
	// Tuples is the relation size (the paper sweeps 1K–64K).
	Tuples int
	// Lifespan is the relation lifespan; defaults to 1,000,000 instants.
	Lifespan interval.Time
	// LongLivedPct is the percentage (0–100) of long-lived tuples; the
	// paper tests 0, 40, and 80.
	LongLivedPct int
	// Order selects the physical order.
	Order Order
	// K and KPct configure the KOrdered order: the disorder bound and the
	// target k-ordered-percentage (the paper tests k ∈ {4, 40, 400} and
	// percentages {0.02, 0.08, 0.14}).
	K int
	// KPct is the target k-ordered-percentage for Order == KOrdered.
	KPct float64
	// MaxDelay is the recording delay bound for Order == RetroBounded:
	// every tuple is recorded within MaxDelay instants of its start time.
	MaxDelay interval.Time
	// EventPct is the percentage (0–100) of event tuples — instantaneous
	// facts whose interval is a single chronon (§2: "aggregates may also be
	// evaluated over event relations"). Events are drawn from the
	// short-lived quota.
	EventPct int
	// Seed makes generation deterministic.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Lifespan == 0 {
		c.Lifespan = DefaultLifespan
	}
	return c
}

func (c Config) validate() error {
	if c.Tuples < 0 {
		return fmt.Errorf("workload: negative tuple count %d", c.Tuples)
	}
	if c.Lifespan < 2 {
		return fmt.Errorf("workload: lifespan %d too small", c.Lifespan)
	}
	if c.LongLivedPct < 0 || c.LongLivedPct > 100 {
		return fmt.Errorf("workload: long-lived percentage %d outside [0,100]", c.LongLivedPct)
	}
	if c.Order == KOrdered && c.K <= 0 {
		return fmt.Errorf("workload: k-ordered relation requires K > 0, got %d", c.K)
	}
	if c.Order == RetroBounded && c.MaxDelay <= 0 {
		return fmt.Errorf("workload: retro-bounded relation requires MaxDelay > 0, got %d", c.MaxDelay)
	}
	if c.EventPct < 0 || c.EventPct > 100 {
		return fmt.Errorf("workload: event percentage %d outside [0,100]", c.EventPct)
	}
	if c.EventPct+c.LongLivedPct > 100 {
		return fmt.Errorf("workload: event (%d%%) and long-lived (%d%%) percentages exceed 100%%",
			c.EventPct, c.LongLivedPct)
	}
	return nil
}

// Generate builds a relation per the configuration.
func Generate(cfg Config) (*relation.Relation, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	rel := relation.New(fmt.Sprintf("synth-%d", cfg.Tuples))
	rel.Tuples = make([]tuple.Tuple, 0, cfg.Tuples)

	longMin := interval.Time(DefaultLongMinFrac * float64(cfg.Lifespan))
	longMax := interval.Time(DefaultLongMaxFrac * float64(cfg.Lifespan))
	shortMax := DefaultShortMax
	if shortMax > cfg.Lifespan {
		shortMax = cfg.Lifespan
	}

	// Fix the long-lived count up front so LongLivedPct is the share in the
	// final relation, then draw each tuple's kind in proportion to the
	// remaining quota (keeping generation order unbiased). Tuples that
	// extend past the lifespan are discarded and redrawn within their kind
	// (§6: "Generated tuples that extend past the relation's lifespan were
	// discarded").
	longLeft := cfg.Tuples * cfg.LongLivedPct / 100
	eventLeft := cfg.Tuples * cfg.EventPct / 100
	shortLeft := cfg.Tuples - longLeft - eventLeft
	for len(rel.Tuples) < cfg.Tuples {
		var length interval.Time
		kind := 2 // short-lived
		switch pick := r.Intn(longLeft + eventLeft + shortLeft); {
		case pick < longLeft:
			kind = 0
			length = longMin + r.Int63n(longMax-longMin+1)
		case pick < longLeft+eventLeft:
			kind = 1
			length = 1 // an event occupies a single chronon
		default:
			length = 1 + r.Int63n(shortMax)
		}
		start := r.Int63n(cfg.Lifespan)
		end := start + length - 1
		if end >= cfg.Lifespan {
			continue
		}
		switch kind {
		case 0:
			longLeft--
		case 1:
			eventLeft--
		default:
			shortLeft--
		}
		name := fmt.Sprintf("p%05d", len(rel.Tuples)%100000)
		value := 20_000 + r.Int63n(80_001) // salary-like values
		rel.Append(tuple.MustNew(name, value, start, end))
	}

	switch cfg.Order {
	case Random:
		// Independent draws are already randomly ordered.
	case Sorted:
		rel.SortByTime()
	case KOrdered:
		rel.SortByTime()
		perturbed, err := order.PerturbToPercentage(rel.Tuples, cfg.K, cfg.KPct, cfg.Seed+1)
		if err != nil {
			return nil, fmt.Errorf("workload: %w", err)
		}
		rel.Tuples = perturbed
	case RetroBounded:
		// Record each fact within MaxDelay instants of its start and order
		// physically by recording time (start-time ties broken stably).
		type recorded struct {
			at interval.Time
			t  tuple.Tuple
		}
		recs := make([]recorded, len(rel.Tuples))
		for i, t := range rel.Tuples {
			recs[i] = recorded{at: t.Valid.Start + r.Int63n(cfg.MaxDelay+1), t: t}
		}
		sort.SliceStable(recs, func(i, j int) bool { return recs[i].at < recs[j].at })
		for i, rec := range recs {
			rel.Tuples[i] = rec.t
		}
	default:
		return nil, fmt.Errorf("workload: unknown order %v", cfg.Order)
	}
	return rel, nil
}

// Table3Sizes are the relation sizes of the paper's sweep: 1K to 64K
// tuples, doubling.
func Table3Sizes() []int {
	return []int{1 << 10, 1 << 11, 1 << 12, 1 << 13, 1 << 14, 1 << 15, 1 << 16}
}

// Table3LongLivedPcts are the long-lived tuple percentages tested.
func Table3LongLivedPcts() []int { return []int{0, 40, 80} }

// Table3KValues are the k values tested for the k-ordered tree.
func Table3KValues() []int { return []int{4, 40, 400} }

// Table3KPcts are the k-ordered-percentages tested.
func Table3KPcts() []float64 { return []float64{0.02, 0.08, 0.14} }
