// Employed reproduces the paper's running example end to end: the Employed
// relation of Figure 1, the constant intervals of Figure 2, the Table 1
// result of SELECT COUNT(Name) FROM Employed, and a few follow-up queries
// through the TSQL2-flavoured query language.
//
// Run with:
//
//	go run ./examples/employed
package main

import (
	"fmt"
	"log"

	"tempagg"
)

func main() {
	rel := tempagg.Employed()
	fmt.Println("The Employed relation (Figure 1):")
	for _, t := range rel.Tuples {
		fmt.Printf("  %s\n", t)
	}

	// The paper's example query, grouped by instant (the TSQL2 default).
	// The result is Table 1: seven constant intervals induced by the six
	// unique timestamps.
	qr, err := tempagg.Query("SELECT COUNT(Name) FROM Employed", rel, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSELECT COUNT(Name) FROM Employed   (Table 1)")
	fmt.Print(qr.Groups[0].Result)

	// Average salary over time — a computed (not selected) aggregate.
	qr, err = tempagg.Query("SELECT AVG(Salary) FROM Employed", rel, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSELECT AVG(Salary) FROM Employed")
	fmt.Print(qr.Groups[0].Result)

	// Per-person salary history: attribute grouping on top of temporal
	// grouping. Nathan's history shows his gap during [13,17].
	qr, err = tempagg.Query("SELECT Name, MAX(Salary) FROM Employed GROUP BY Name", rel, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSELECT Name, MAX(Salary) FROM Employed GROUP BY Name")
	for _, g := range qr.Groups {
		fmt.Printf("-- %s\n", g.Key)
		fmt.Print(g.Result.Coalesce())
	}

	// The same COUNT evaluated by every algorithm — they agree exactly.
	fmt.Println("\nAll algorithms agree:")
	for _, using := range []string{"LIST", "TREE", "BTREE", "KTREE 4", "TUMA"} {
		qr, err := tempagg.Query("SELECT COUNT(Name) FROM Employed USING "+using, rel, nil)
		if err != nil {
			log.Fatal(err)
		}
		rows := qr.Groups[0].Result.Rows
		fmt.Printf("  %-22s -> %d constant intervals\n", qr.Plan, len(rows))
	}
}
