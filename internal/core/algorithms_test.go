package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tempagg/internal/aggregate"
	"tempagg/internal/interval"
	"tempagg/internal/tuple"
)

func mustTuple(t *testing.T, name string, v int64, s, e interval.Time) tuple.Tuple {
	t.Helper()
	tu, err := tuple.New(name, v, s, e)
	if err != nil {
		t.Fatal(err)
	}
	return tu
}

// randomTuples draws n tuples with start times in [0, horizon) and varied
// lengths, including occasional ∞-ended ones.
func randomTuples(r *rand.Rand, n int, horizon int64) []tuple.Tuple {
	ts := make([]tuple.Tuple, n)
	for i := range ts {
		s := r.Int63n(horizon)
		var e int64
		switch r.Intn(8) {
		case 0:
			e = interval.Forever
		case 1:
			e = s // single instant
		default:
			e = s + r.Int63n(horizon/2+1)
		}
		ts[i] = tuple.MustNew("t", r.Int63n(200)-100, s, e)
	}
	return ts
}

// sortTuples returns a time-ordered copy.
func sortTuples(ts []tuple.Tuple) []tuple.Tuple {
	out := append([]tuple.Tuple(nil), ts...)
	for i := 1; i < len(out); i++ { // insertion sort keeps the helper dependency-free
		for j := i; j > 0 && out[j].Less(out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// perturb displaces sorted tuples by at most k positions via random adjacent
// swaps bounded by k, yielding a k-ordered relation.
func perturb(r *rand.Rand, ts []tuple.Tuple, k int) []tuple.Tuple {
	out := append([]tuple.Tuple(nil), ts...)
	if k == 0 || len(out) < 2 {
		return out
	}
	// Swap disjoint pairs at distance <= k: positions i and i+d move exactly
	// d <= k places, so the result is k-ordered by construction.
	for i := 0; i < len(out)-1; {
		d := 1 + r.Intn(k)
		if i+d >= len(out) || r.Intn(2) == 0 {
			i++
			continue
		}
		out[i], out[i+d] = out[i+d], out[i]
		i += d + 1
	}
	return out
}

// resultsIdentical asserts the two results have identical constant-interval
// boundaries and equal values row by row. All algorithms induce boundaries
// at exactly the tuples' start and end+1 timestamps, so results must match
// even before coalescing.
func resultsIdentical(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("%s: %d rows, want %d\ngot:\n%swant:\n%s",
			label, len(got.Rows), len(want.Rows), got, want)
	}
	for i := range want.Rows {
		if got.Rows[i].Interval != want.Rows[i].Interval {
			t.Fatalf("%s: row %d interval %v, want %v",
				label, i, got.Rows[i].Interval, want.Rows[i].Interval)
		}
		if !want.Func.StateEqual(got.Rows[i].State, want.Rows[i].State) {
			t.Fatalf("%s: row %d %v: value %s, want %s",
				label, i, got.Rows[i].Interval, got.Value(i), want.Value(i))
		}
	}
}

// TestAllAlgorithmsMatchOracle is the central correctness property: for
// random relations and every aggregate kind, the linked list, aggregation
// tree, balanced tree, Tuma baseline, and (on k-ordered input) the k-ordered
// tree all produce exactly the oracle's constant intervals and values.
func TestAllAlgorithmsMatchOracle(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, kind := range aggregate.Kinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			f := aggregate.For(kind)
			prop := func() bool {
				ts := randomTuples(r, r.Intn(60), 200)
				want := Reference(f, ts)
				if err := want.Validate(); err != nil {
					t.Fatalf("oracle broken: %v", err)
				}
				for _, spec := range []Spec{
					{Algorithm: LinkedList},
					{Algorithm: AggregationTree},
					{Algorithm: BalancedTree},
				} {
					got, _, err := Run(spec, f, ts)
					if err != nil {
						t.Fatalf("%v: %v", spec.Algorithm, err)
					}
					resultsIdentical(t, spec.Algorithm.String(), got, want)
				}
				tumaRes, err := Tuma(NewSliceSource(ts), f)
				if err != nil {
					t.Fatalf("tuma: %v", err)
				}
				resultsIdentical(t, "tuma", tumaRes, want)

				// k-ordered tree over a k-perturbed sorted copy.
				k := r.Intn(5)
				kts := perturb(r, sortTuples(ts), k)
				got, _, err := Run(Spec{Algorithm: KOrderedTree, K: k}, f, kts)
				if err != nil {
					t.Fatalf("ktree k=%d: %v", k, err)
				}
				resultsIdentical(t, "ktree", got, want)
				return true
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestResultsArePartitions checks the structural invariant on every
// algorithm: rows are an ordered, contiguous, exact cover of [0, ∞].
func TestResultsArePartitions(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	f := aggregate.For(aggregate.Sum)
	prop := func() bool {
		ts := randomTuples(r, r.Intn(80), 500)
		for _, spec := range []Spec{
			{Algorithm: LinkedList},
			{Algorithm: AggregationTree},
			{Algorithm: BalancedTree},
			{Algorithm: KOrderedTree, K: len(ts)}, // k >= n never garbage collects wrongly
		} {
			input := ts
			res, _, err := Run(spec, f, input)
			if err != nil {
				t.Fatalf("%v: %v", spec.Algorithm, err)
			}
			if err := res.Validate(); err != nil {
				t.Fatalf("%v: %v", spec.Algorithm, err)
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestEmptyRelation: every algorithm must return the single constant
// interval [0, ∞] with the empty aggregate (Figure 2.a).
func TestEmptyRelation(t *testing.T) {
	for _, kind := range aggregate.Kinds() {
		f := aggregate.For(kind)
		for _, spec := range []Spec{
			{Algorithm: LinkedList},
			{Algorithm: AggregationTree},
			{Algorithm: BalancedTree},
			{Algorithm: KOrderedTree, K: 3},
		} {
			res, _, err := Run(spec, f, nil)
			if err != nil {
				t.Fatalf("%v/%v: %v", spec.Algorithm, kind, err)
			}
			if len(res.Rows) != 1 || res.Rows[0].Interval != interval.Universe() {
				t.Fatalf("%v/%v: rows = %v", spec.Algorithm, kind, res.Rows)
			}
			v := res.Value(0)
			if kind == aggregate.Count {
				if v.Int != 0 || v.Null {
					t.Fatalf("COUNT over empty relation = %v", v)
				}
			} else if !v.Null {
				t.Fatalf("%v over empty relation = %v, want null", kind, v)
			}
		}
	}
}

// TestSingleTupleCoveringUniverse exercises the degenerate case where no
// split is ever needed.
func TestSingleTupleCoveringUniverse(t *testing.T) {
	f := aggregate.For(aggregate.Count)
	tu := mustTuple(t, "t", 1, 0, interval.Forever)
	for _, spec := range []Spec{
		{Algorithm: LinkedList},
		{Algorithm: AggregationTree},
		{Algorithm: BalancedTree},
		{Algorithm: KOrderedTree, K: 0},
	} {
		res, stats, err := Run(spec, f, []tuple.Tuple{tu})
		if err != nil {
			t.Fatalf("%v: %v", spec.Algorithm, err)
		}
		if len(res.Rows) != 1 || res.Value(0).Int != 1 {
			t.Fatalf("%v: %v", spec.Algorithm, res.Rows)
		}
		if stats.PeakNodes != 1 {
			t.Errorf("%v: peak nodes %d, want 1", spec.Algorithm, stats.PeakNodes)
		}
	}
}

// TestDuplicateTimestamps: many tuples sharing boundaries must not create
// duplicate constant intervals.
func TestDuplicateTimestamps(t *testing.T) {
	f := aggregate.For(aggregate.Count)
	ts := []tuple.Tuple{
		mustTuple(t, "a", 1, 10, 20),
		mustTuple(t, "b", 1, 10, 20),
		mustTuple(t, "c", 1, 10, 20),
	}
	for _, spec := range []Spec{
		{Algorithm: LinkedList},
		{Algorithm: AggregationTree},
		{Algorithm: BalancedTree},
		{Algorithm: KOrderedTree, K: 0},
	} {
		res, _, err := Run(spec, f, ts)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 3 {
			t.Fatalf("%v: %d rows, want 3 ([0,9],[10,20],[21,∞])", spec.Algorithm, len(res.Rows))
		}
		if got := res.Value(1).Int; got != 3 {
			t.Fatalf("%v: count over [10,20] = %d, want 3", spec.Algorithm, got)
		}
	}
}

// TestAdjacentTuplesMeetButDoNotOverlap: [0,9] and [10,19] never both cover
// an instant.
func TestAdjacentTuplesMeetButDoNotOverlap(t *testing.T) {
	f := aggregate.For(aggregate.Count)
	ts := []tuple.Tuple{
		mustTuple(t, "a", 1, 0, 9),
		mustTuple(t, "b", 1, 10, 19),
	}
	res, _, err := Run(Spec{Algorithm: AggregationTree}, f, ts)
	if err != nil {
		t.Fatal(err)
	}
	for _, probe := range []struct {
		at   interval.Time
		want int64
	}{{0, 1}, {9, 1}, {10, 1}, {19, 1}, {20, 0}} {
		v, ok := res.At(probe.at)
		if !ok || v.Int != probe.want {
			t.Errorf("count at %d = %v, want %d", probe.at, v, probe.want)
		}
	}
}

// TestAddRejectsInvalidInterval exercises input validation on every
// evaluator.
func TestAddRejectsInvalidInterval(t *testing.T) {
	//tempagglint:ignore intervalbounds the test needs an invalid interval to exercise Add's rejection
	bad := tuple.Tuple{Name: "x", Valid: interval.Interval{Start: 9, End: 2}}
	f := aggregate.For(aggregate.Count)
	for _, spec := range []Spec{
		{Algorithm: LinkedList},
		{Algorithm: AggregationTree},
		{Algorithm: BalancedTree},
		{Algorithm: KOrderedTree, K: 1},
	} {
		ev, err := New(spec, f)
		if err != nil {
			t.Fatal(err)
		}
		if err := ev.Add(bad); err == nil {
			t.Errorf("%v: Add accepted an invalid interval", spec.Algorithm)
		}
	}
}

func TestNewRejectsUnknownAlgorithm(t *testing.T) {
	if _, err := New(Spec{Algorithm: Algorithm(42)}, aggregate.For(aggregate.Count)); err == nil {
		t.Fatal("expected error for unknown algorithm")
	}
}

func TestAlgorithmString(t *testing.T) {
	names := map[Algorithm]string{
		LinkedList:      "linked-list",
		AggregationTree: "aggregation-tree",
		KOrderedTree:    "k-ordered-tree",
		BalancedTree:    "balanced-tree",
		Algorithm(9):    "Algorithm(9)",
	}
	for a, want := range names {
		if a.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(a), a.String(), want)
		}
	}
}

// TestValuesOutsideLifespanAreEmpty: instants before the first tuple and
// after the last end (when finite) carry the empty aggregate.
func TestValuesOutsideLifespanAreEmpty(t *testing.T) {
	f := aggregate.For(aggregate.Min)
	ts := []tuple.Tuple{mustTuple(t, "a", 5, 100, 200)}
	res, _, err := Run(Spec{Algorithm: LinkedList}, f, ts)
	if err != nil {
		t.Fatal(err)
	}
	for _, at := range []interval.Time{0, 99, 201, interval.Forever} {
		v, ok := res.At(at)
		if !ok || !v.Null {
			t.Errorf("MIN at %d = %v, want null", at, v)
		}
	}
	if v, _ := res.At(150); v.Null || v.Int != 5 {
		t.Errorf("MIN at 150 = %v, want 5", v)
	}
}
