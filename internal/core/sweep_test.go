package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"testing"

	"tempagg/internal/aggregate"
	"tempagg/internal/interval"
	"tempagg/internal/obs"
	"tempagg/internal/tuple"
)

// TestSweepEmpty: the empty relation yields the single universe row with the
// identity state (Figure 2.a), same as every other evaluator.
func TestSweepEmpty(t *testing.T) {
	for _, kind := range aggregate.Kinds() {
		f := aggregate.For(kind)
		res, err := NewSweep(f).Finish()
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 1 || res.Rows[0].Interval != interval.Universe() {
			t.Fatalf("%v: got %v", kind, res.Rows)
		}
		if !res.Rows[0].State.Empty() {
			t.Fatalf("%v: universe row not the identity state", kind)
		}
	}
}

// TestSweepPaperRelation: the sweep reproduces the paper's running example
// (Table 1 relation) for every aggregate, checked against the oracle.
func TestSweepPaperRelation(t *testing.T) {
	ts := []tuple.Tuple{
		tuple.MustNew("Rich", 55000, 10, 14),
		tuple.MustNew("Eric", 60000, 6, 11),
		tuple.MustNew("Nathan", 70000, 5, 8),
	}
	for _, kind := range aggregate.Kinds() {
		f := aggregate.For(kind)
		res, _, err := Run(Spec{Algorithm: SweepEval}, f, ts)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Validate(); err != nil {
			t.Fatal(err)
		}
		if !res.Equal(Reference(f, ts)) {
			t.Fatalf("%v: sweep differs from oracle\n%s", kind, res)
		}
	}
}

// TestSweepSortedFastPath: feeding time-sorted tuples must skip the arrival
// sort entirely — zero radix passes — and still match the oracle.
func TestSweepSortedFastPath(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	ts := randomTuples(r, 2000, 50000)
	sort.SliceStable(ts, func(i, j int) bool { return ts[i].Less(ts[j]) })
	f := aggregate.For(aggregate.Count)

	reg := obs.NewRegistry()
	m := obs.NewMetrics(reg)
	res, _, err := RunObserved(Spec{Algorithm: SweepEval}, f, ts, m)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equal(Reference(f, ts)) {
		t.Fatal("sorted sweep differs from oracle")
	}
	// Arrivals were pre-sorted; only the departure column may need sorting.
	// COUNT's arrival column is never radix-sorted here, so the pass count
	// is at most the departure sort's (≤ 8) and the event total is exact.
	events := metricValue(t, reg, obs.MetricSweepEvents, "sweep")
	if want := countSweepEvents(ts); events != want {
		t.Fatalf("%s = %d, want %d", obs.MetricSweepEvents, events, want)
	}
	if falls := metricValue(t, reg, obs.MetricSweepFallbacks, "sweep"); falls != 0 {
		t.Fatalf("%s = %d, want 0", obs.MetricSweepFallbacks, falls)
	}
}

// countSweepEvents is the expected tempagg_sweep_events_total for a COUNT
// run over the universe span: one arrival per tuple plus one departure per
// tuple not reaching Forever.
func countSweepEvents(ts []tuple.Tuple) int64 {
	n := int64(0)
	for _, tu := range ts {
		n++
		if tu.Valid.End != interval.Forever {
			n++
		}
	}
	return n
}

// metricValue reads one labelled counter value from a registry scrape;
// an absent series reads as zero.
func metricValue(t *testing.T, reg *obs.Registry, name, algorithm string) int64 {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	series := fmt.Sprintf("%s{algorithm=%q} ", name, algorithm)
	for _, line := range strings.Split(buf.String(), "\n") {
		if rest, ok := strings.CutPrefix(line, series); ok {
			v, err := strconv.ParseInt(rest, 10, 64)
			if err != nil {
				t.Fatalf("series %s: bad value %q", series, rest)
			}
			return v
		}
	}
	return 0
}

// TestSweepRadixPath: random-order input takes the radix sort (pass count
// > 0 at this size) and matches the oracle for every aggregate.
func TestSweepRadixPath(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	ts := randomTuples(r, 1500, 40000)
	for _, kind := range aggregate.Kinds() {
		f := aggregate.For(kind)
		reg := obs.NewRegistry()
		m := obs.NewMetrics(reg)
		res, _, err := RunObserved(Spec{Algorithm: SweepEval}, f, ts, m)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Equal(Reference(f, ts)) {
			t.Fatalf("%v: random-order sweep differs from oracle", kind)
		}
		if passes := metricValue(t, reg, obs.MetricSweepRadix, "sweep"); passes == 0 {
			t.Fatalf("%v: random input above radixMinSize reported zero radix passes", kind)
		}
	}
}

// TestSweepWedgeFallback: a MIN run whose wedge exceeds WedgeBound must take
// the aggregation-tree fallback, report it on the sink, and still match the
// oracle bit for bit.
func TestSweepWedgeFallback(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	ts := randomTuples(r, 600, 2000) // dense overlap: wedge far above 4
	f := aggregate.For(aggregate.Min)

	reg := obs.NewRegistry()
	m := obs.NewMetrics(reg)
	ev, err := NewObserved(Spec{Algorithm: SweepEval}, f, m)
	if err != nil {
		t.Fatal(err)
	}
	ev.(*Sweep).WedgeBound = 4
	if err := ev.AddBatch(ts); err != nil {
		t.Fatal(err)
	}
	res, err := ev.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equal(Reference(f, ts)) {
		t.Fatal("fallback result differs from oracle")
	}
	if falls := metricValue(t, reg, obs.MetricSweepFallbacks, "sweep"); falls != 1 {
		t.Fatalf("%s = %d, want 1", obs.MetricSweepFallbacks, falls)
	}
	// The fallback tree publishes its own node traffic under its own label.
	if n := metricValue(t, reg, obs.MetricNodesAllocated, "aggregation-tree"); n == 0 {
		t.Fatal("fallback tree published no node allocations")
	}
}

// TestSweepRange: the range-limited constructor clips tuples to its span and
// produces a partition of exactly that span — the contract the partitioned
// evaluator relies on per shard.
func TestSweepRange(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	ts := randomTuples(r, 300, 3000)
	span := interval.MustNew(500, 2200)
	for _, kind := range []aggregate.Kind{aggregate.Sum, aggregate.Max} {
		f := aggregate.For(kind)
		ev := NewSweepRange(f, span)
		for _, tu := range ts {
			if err := ev.Add(tu); err != nil {
				t.Fatal(err)
			}
		}
		res, err := ev.Finish()
		if err != nil {
			t.Fatal(err)
		}
		if err := res.ValidatePartition(span.Start, span.End); err != nil {
			t.Fatal(err)
		}
		want := Reference(f, ts).Clip(span)
		if !res.Equal(want) {
			t.Fatalf("%v: range sweep differs from clipped oracle", kind)
		}
	}
}

// TestSweepStatsAndNodeModel: tuple counting matches the input and the node
// charge follows the documented model — one node per materialized event for
// decomposable aggregates, two per buffered MIN/MAX tuple.
func TestSweepStatsAndNodeModel(t *testing.T) {
	ts := []tuple.Tuple{
		tuple.MustNew("a", 1, 0, 9),
		tuple.MustNew("b", 2, 5, interval.Forever), // no departure event
		tuple.MustNew("c", 3, 7, 7),
	}
	count := NewSweep(aggregate.For(aggregate.Count))
	for _, tu := range ts {
		if err := count.Add(tu); err != nil {
			t.Fatal(err)
		}
	}
	if got := count.Stats(); got.Tuples != 3 || got.LiveNodes != 5 || got.PeakNodes != 5 {
		t.Fatalf("COUNT stats = %+v, want 3 tuples / 5 nodes (2+1+2 events)", got)
	}
	if _, err := count.Finish(); err != nil {
		t.Fatal(err)
	}

	minEv := NewSweep(aggregate.For(aggregate.Min))
	if err := minEv.AddBatch(ts); err != nil {
		t.Fatal(err)
	}
	if got := minEv.Stats(); got.Tuples != 3 || got.LiveNodes != 6 {
		t.Fatalf("MIN stats = %+v, want 3 tuples / 6 nodes (2 per buffered tuple)", got)
	}
	if _, err := minEv.Finish(); err != nil {
		t.Fatal(err)
	}
}

// TestRadixSortInt64 pins the sorter itself: keys land ascending, payload
// columns follow the same permutation, the pre-sorted check is consistent,
// and pass counts reflect trivial-pass skipping.
func TestRadixSortInt64(t *testing.T) {
	r := rand.New(rand.NewSource(15))
	var ar colArena

	// Large random input: must sort and must skip the all-zero high bytes.
	n := 5000
	keys := make([]int64, n)
	pay := make([]int64, n)
	for i := range keys {
		keys[i] = int64(r.Intn(1 << 20))
		pay[i] = keys[i] * 3
	}
	passes := radixSortInt64(&ar, keys, pay)
	if !sortedInt64(keys) {
		t.Fatal("keys not sorted")
	}
	if passes < 1 || passes > 3 {
		t.Fatalf("keys below 1<<20 need 1–3 non-trivial passes, got %d", passes)
	}
	for i := range keys {
		if pay[i] != keys[i]*3 {
			t.Fatalf("payload desynchronized at %d: key %d payload %d", i, keys[i], pay[i])
		}
	}

	// Small input: the pdqsort fallback, zero radix passes.
	small := []int64{9, 3, 7, 3, 1}
	smallPay := []int64{90, 30, 70, 31, 10}
	if passes := radixSortInt64(&ar, small, smallPay); passes != 0 {
		t.Fatalf("small input reported %d radix passes, want 0", passes)
	}
	if !sortedInt64(small) {
		t.Fatal("small input not sorted")
	}
	for i := range small {
		if smallPay[i]/10 != small[i] {
			t.Fatalf("small payload desynchronized at %d", i)
		}
	}

	// Forever-scale keys exercise every digit position.
	big := []int64{interval.Forever, 0, interval.Forever - 1, 1 << 40}
	wide := make([]int64, radixMinSize)
	for i := range wide {
		v := big[i%len(big)]
		if v > 0 {
			v -= int64(i % 2) // keys must stay non-negative (timestamps)
		}
		wide[i] = v
	}
	radixSortInt64(&ar, wide)
	if !sortedInt64(wide) {
		t.Fatal("wide-range keys not sorted")
	}
}

// TestColArenaReuse: released columns come back from the shared pool and the
// counters record the reuse; a too-small pooled buffer is not handed out.
func TestColArenaReuse(t *testing.T) {
	var ar colArena
	c := ar.acquire(colMinCap)
	ar.release(c)
	c2 := ar.acquire(colMinCap)
	ar.release(c2)
	cols, reused := ar.counters()
	if cols != 2 {
		t.Fatalf("acquired = %d, want 2", cols)
	}
	if reused == 0 {
		t.Fatal("release/acquire round-trip recorded no pool reuse")
	}
	// push grows through the pool and preserves contents.
	var ar2 colArena
	var col []int64
	for i := 0; i < 3*colMinCap; i++ {
		col = ar2.push(col, int64(i))
	}
	for i := range col {
		if col[i] != int64(i) {
			t.Fatalf("grown column lost element %d", i)
		}
	}
}
