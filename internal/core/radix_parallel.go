package core

import "sync"

// The parallel variant of the sweep's event sort. The LSD radix sort
// parallelizes cleanly because each scatter pass is a stable permutation
// determined entirely by per-digit counts: split the keys into per-worker
// chunks, count each chunk's digit occupancy concurrently, lay the chunks'
// runs out bucket-major/worker-minor with a serial prefix sum, and let every
// worker scatter its own chunk into the disjoint destination ranges the
// prefix assigned. Bucket b's region holds worker 0's bucket-b keys, then
// worker 1's, and so on — exactly the order the serial sort's left-to-right
// scatter produces — so the output permutation, and therefore every payload
// column, is bit-identical to radixSortInt64 (TestParallelRadixBitIdentical
// diffs the two on shared inputs).

// parallelSortMinSize is the input size below which forking workers costs
// more than the scatter they split; smaller inputs take the serial sort.
const parallelSortMinSize = 1 << 15

// parallelSortMinChunk bounds how finely an input is split: a worker chunk
// smaller than this spends its time on goroutine handoff, not sorting.
const parallelSortMinChunk = 1 << 13

// radixSortInt64Parallel is radixSortInt64 with the histogram and scatter
// phases split across at most workers goroutines. Output (keys, payloads,
// and the reported pass count) is bit-identical to the serial sort; inputs
// below parallelSortMinSize or a resolved worker count of one fall through
// to it. Scratch comes from ar, acquired and released on the calling
// goroutine only — workers index into shared slices but never touch the
// arena, whose single-owner contract stays intact.
func radixSortInt64Parallel(ar *colArena, workers int, keys []int64, payloads ...[]int64) int {
	n := len(keys)
	if w := n / parallelSortMinChunk; workers > w {
		workers = w
	}
	if workers <= 1 || n < parallelSortMinSize {
		return radixSortInt64(ar, keys, payloads...)
	}

	// Worker w owns srcK[bounds[w]:bounds[w+1]) on every pass.
	bounds := make([]int, workers+1)
	for w := 1; w < workers; w++ {
		bounds[w] = w * n / workers
	}
	bounds[workers] = n

	// One concurrent read of the keys builds all eight digit histograms,
	// merged into the same totals the serial sort derives. The digit
	// multiset is invariant across passes, so the serial skip condition —
	// every key shares the current digit — is decided here once per digit.
	var wg sync.WaitGroup
	partial := make([][8][256]int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := &partial[w]
			for _, k := range keys[bounds[w]:bounds[w+1]] {
				u := uint64(k)
				h[0][u&0xff]++
				h[1][(u>>8)&0xff]++
				h[2][(u>>16)&0xff]++
				h[3][(u>>24)&0xff]++
				h[4][(u>>32)&0xff]++
				h[5][(u>>40)&0xff]++
				h[6][(u>>48)&0xff]++
				h[7][(u>>56)&0xff]++
			}
		}(w)
	}
	wg.Wait()
	var hist [8][256]int
	for w := range partial {
		for d := 0; d < 8; d++ {
			for b := 0; b < 256; b++ {
				hist[d][b] += partial[w][d][b]
			}
		}
	}

	scratchK := ar.acquire(n)[:n]
	scratchP := make([][]int64, len(payloads))
	for i := range scratchP {
		scratchP[i] = ar.acquire(n)[:n]
	}
	srcK, dstK := keys, scratchK
	srcP, dstP := payloads, scratchP

	// counts doubles as the per-worker offset table: after the prefix sum
	// below, counts[w][b] is the next destination index for worker w's
	// bucket-b keys.
	counts := make([][256]int, workers)
	passes := 0
	for d := 0; d < 8; d++ {
		shift := uint(8 * d)
		if hist[d][(uint64(srcK[0])>>shift)&0xff] == n {
			continue
		}
		// Chunk contents change on every scatter, so each live pass recounts
		// the current src ordering before computing offsets.
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int, src []int64) {
				defer wg.Done()
				c := &counts[w]
				*c = [256]int{}
				for _, k := range src[bounds[w]:bounds[w+1]] {
					c[(uint64(k)>>shift)&0xff]++
				}
			}(w, srcK)
		}
		wg.Wait()
		// Bucket-major, worker-minor prefix sum: bucket b's destination
		// region starts after every smaller bucket, and within it the
		// workers' runs appear in chunk order — the serial sort's stable
		// left-to-right scatter, split at chunk boundaries.
		sum := 0
		for b := 0; b < 256; b++ {
			for w := 0; w < workers; w++ {
				c := counts[w][b]
				counts[w][b] = sum
				sum += c
			}
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int, src, dst []int64, srcP, dstP [][]int64) {
				defer wg.Done()
				offs := &counts[w]
				for i := bounds[w]; i < bounds[w+1]; i++ {
					k := src[i]
					b := (uint64(k) >> shift) & 0xff
					j := offs[b]
					offs[b]++
					dst[j] = k
					for p := range srcP {
						dstP[p][j] = srcP[p][i]
					}
				}
			}(w, srcK, dstK, srcP, dstP)
		}
		wg.Wait()
		srcK, dstK = dstK, srcK
		srcP, dstP = dstP, srcP
		passes++
	}

	if passes%2 == 1 {
		copy(keys, scratchK)
		for p := range payloads {
			copy(payloads[p], scratchP[p])
		}
	}
	ar.release(scratchK)
	for _, p := range scratchP {
		ar.release(p)
	}
	return passes
}
