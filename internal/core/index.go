// IntervalIndex: a materialized partial-state index answering
// range-restricted temporal aggregates without rescanning the relation
// (DESIGN.md S37).
//
// The index is a static segment tree over the relation's elementary
// intervals — the maximal runs between adjacent event timestamps (tuple
// starts and ends+1), the same boundaries the columnar sweep emits rows at.
// Each tuple [s, e] is assigned to the O(log n) canonical nodes whose leaf
// ranges tile [s, e], and every node holds one IndexPartial (partial.go)
// over the tuples assigned to it. A tuple covering a leaf's elementary
// interval therefore contributes at exactly one node on the leaf's root
// path — the aggregation-tree invariant of §5.1, materialized once instead
// of rebuilt per query — so the aggregate state over any elementary
// interval is the merge of the ≤ log n partials on its root path, for all
// five aggregate kinds at once (MIN/MAX need no retraction here: node
// assignment never removes a tuple).
//
// A point lookup (AT t) merges one root path: O(log n). A range lookup
// (VALID OVERLAPS a b) emits the window's k elementary intervals by
// depth-first descent with an accumulated root-path partial: O(k + log n)
// node visits, independent of relation size — against the sweep's
// O(n log n) re-sort and full O(n) scan per query.
package core

import (
	"errors"
	"sort"

	"tempagg/internal/aggregate"
	"tempagg/internal/interval"
	"tempagg/internal/obs"
	"tempagg/internal/tuple"
)

// IndexLookupAlg is the algorithm label index lookups publish under —
// the same name the planner gives index-served plans.
const IndexLookupAlg = "index-lookup"

// ErrIndexClosed is returned by lookups on a closed IntervalIndex.
var ErrIndexClosed = errors.New("core: interval index is closed")

// IntervalIndex is a static segment tree of partial states over one
// immutable tuple set. It is built once by NewIntervalIndex and read-only
// afterwards: concurrent lookups are safe with no locking. After Close the
// index must not be used (tempagglint's finishonce analyzer enforces this
// like the evaluators' Finish contract).
type IntervalIndex struct {
	noCopy noCopy

	// bounds holds the elementary intervals' left endpoints, ascending;
	// bounds[0] is the time origin. Leaf i covers [bounds[i], bounds[i+1]-1],
	// the last leaf [bounds[m-1], ∞].
	bounds []interval.Time
	// nodes is the 1-rooted heap-shaped tree over pow2 padded leaves; node
	// i's children are 2i and 2i+1. Padding leaves past len(bounds) stay
	// empty and are never descended into.
	nodes  []IndexPartial
	pow2   int
	tuples int
	closed bool

	es obs.EvalSink
}

// NewIntervalIndex builds the index over ts. Construction validates every
// tuple, sorts the O(n) endpoint boundaries, and inserts each tuple at its
// O(log n) canonical nodes: O(n log n) once, amortized over every lookup
// the index serves. The tuple slice is not retained.
func NewIntervalIndex(ts []tuple.Tuple) (*IntervalIndex, error) {
	bounds := make([]interval.Time, 0, 2*len(ts)+1)
	bounds = append(bounds, interval.Origin)
	for i := range ts {
		if err := ts[i].Validate(); err != nil {
			return nil, err
		}
		bounds = append(bounds, ts[i].Valid.Start)
		if ts[i].Valid.End < interval.Forever {
			bounds = append(bounds, ts[i].Valid.End+1)
		}
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	dedup := bounds[:1]
	for _, b := range bounds[1:] {
		if b != dedup[len(dedup)-1] {
			dedup = append(dedup, b)
		}
	}
	pow2 := 1
	for pow2 < len(dedup) {
		pow2 <<= 1
	}
	x := &IntervalIndex{
		bounds: dedup,
		nodes:  make([]IndexPartial, 2*pow2),
		pow2:   pow2,
		tuples: len(ts),
	}
	for i := range ts {
		lo := x.leafOf(ts[i].Valid.Start)
		hi := x.leafOf(ts[i].Valid.End)
		x.insert(1, 0, pow2-1, lo, hi, ts[i].Value)
	}
	return x, nil
}

// SetSink attaches an observability sink; lookups then publish under the
// "index-lookup" algorithm label, and the completed build is reported
// immediately. Safe only before the index is shared across goroutines.
func (x *IntervalIndex) SetSink(s obs.Sink) {
	if s == nil {
		return // nil Sink: instrumentation disabled (obs.Sink contract)
	}
	x.es = s.Evaluator(IndexLookupAlg)
	x.es.IndexBuild(len(x.nodes), x.tuples)
}

// Len reports the number of tuples indexed.
func (x *IntervalIndex) Len() int { return x.tuples }

// Nodes reports the materialized tree slots, each one IndexPartial.
func (x *IntervalIndex) Nodes() int { return len(x.nodes) }

// Leaves reports the elementary-interval count.
func (x *IntervalIndex) Leaves() int { return len(x.bounds) }

// Bytes reports the resident size of the node array in the paper's §6.2
// currency: one IndexPartial is four words, two 16-byte nodes.
func (x *IntervalIndex) Bytes() int64 { return int64(len(x.nodes)) * 2 * NodeBytes }

// leafOf returns the leaf whose elementary interval contains t: the last
// boundary at or below it.
func (x *IntervalIndex) leafOf(t interval.Time) int {
	return sort.Search(len(x.bounds), func(i int) bool { return x.bounds[i] > t }) - 1
}

// insert adds v to the canonical nodes tiling leaves [lo, hi].
func (x *IntervalIndex) insert(node, nodeLo, nodeHi, lo, hi int, v int64) {
	if hi < nodeLo || nodeHi < lo {
		return
	}
	if lo <= nodeLo && nodeHi <= hi {
		x.nodes[node].add(v)
		return
	}
	mid := (nodeLo + nodeHi) / 2
	x.insert(2*node, nodeLo, mid, lo, hi, v)
	x.insert(2*node+1, mid+1, nodeHi, lo, hi, v)
}

// Range answers the window-restricted aggregate for f: the window's
// constant intervals, clipped to it, each with the exact state over the
// tuples overlapping it — bit-identical to sweeping the relation and
// clipping (Result.Equal against Reference holds by construction). The
// returned result partitions the window and is the caller's to mutate.
func (x *IntervalIndex) Range(f aggregate.Func, window interval.Interval) (*Result, error) {
	if x.closed {
		return nil, ErrIndexClosed
	}
	if err := window.Validate(); err != nil {
		return nil, err
	}
	lo := x.leafOf(window.Start)
	hi := x.leafOf(window.End)
	res := &Result{Func: f, Rows: make([]Row, 0, hi-lo+1)}
	merges := x.walk(f, res, 1, 0, x.pow2-1, lo, hi, IndexPartial{}, window)
	if x.es != nil {
		x.es.IndexLookup(merges)
	}
	return res, nil
}

// At answers the point lookup for f at instant t: one [t, t] row whose
// state merges the O(log n) partials on t's leaf's root path.
func (x *IntervalIndex) At(f aggregate.Func, t interval.Time) (*Result, error) {
	return x.Range(f, interval.At(t))
}

// Result answers the full [0, ∞] constant-interval result for f.
func (x *IntervalIndex) Result(f aggregate.Func) (*Result, error) {
	return x.Range(f, interval.Universe())
}

// walk emits the rows for leaves [lo, hi] under node, carrying the merge
// of the partials on the path above it. It returns the number of non-empty
// partial merges performed, the lookup's §6 cost.
func (x *IntervalIndex) walk(f aggregate.Func, res *Result, node, nodeLo, nodeHi, lo, hi int, acc IndexPartial, window interval.Interval) int {
	if hi < nodeLo || nodeHi < lo {
		return 0
	}
	merges := 0
	if p := x.nodes[node]; p.Count != 0 {
		acc = MergePartials(acc, p)
		merges = 1
	}
	if nodeLo == nodeHi {
		start := max(x.bounds[nodeLo], window.Start)
		end := window.End
		if nodeLo+1 < len(x.bounds) && x.bounds[nodeLo+1]-1 < end {
			end = x.bounds[nodeLo+1] - 1
		}
		res.Rows = append(res.Rows, Row{
			Interval: interval.MustNew(start, end),
			State:    acc.State(f),
		})
		return merges
	}
	mid := (nodeLo + nodeHi) / 2
	merges += x.walk(f, res, 2*node, nodeLo, mid, lo, hi, acc, window)
	merges += x.walk(f, res, 2*node+1, mid+1, nodeHi, lo, hi, acc, window)
	return merges
}

// MarshalBinary serializes the index — boundaries as delta varints, node
// partials in their canonical encoding — for spill-to-disk or distributed
// scatter/gather. UnmarshalIntervalIndex is the inverse.
func (x *IntervalIndex) MarshalBinary() ([]byte, error) {
	if x.closed {
		return nil, ErrIndexClosed
	}
	out := make([]byte, 0, len(x.nodes)+8*len(x.bounds))
	out = append(out, indexMagic...)
	out = appendUvarint(out, uint64(x.tuples))
	out = appendUvarint(out, uint64(len(x.bounds)))
	prev := interval.Time(0)
	for _, b := range x.bounds {
		out = appendUvarint(out, uint64(b-prev))
		prev = b
	}
	for _, p := range x.nodes {
		out = p.AppendBinary(out)
	}
	return out, nil
}

// UnmarshalIntervalIndex reconstructs an index serialized by
// MarshalBinary, validating the canonical form of every node partial.
func UnmarshalIntervalIndex(data []byte) (*IntervalIndex, error) {
	if len(data) < len(indexMagic) || string(data[:len(indexMagic)]) != indexMagic {
		return nil, errors.New("core: interval index: bad magic")
	}
	off := len(indexMagic)
	tuples, n, err := decodeUvarint(data[off:])
	if err != nil {
		return nil, err
	}
	off += n
	leaves, n, err := decodeUvarint(data[off:])
	if err != nil {
		return nil, err
	}
	off += n
	if leaves == 0 {
		return nil, errors.New("core: interval index: no leaves")
	}
	bounds := make([]interval.Time, leaves)
	prev := interval.Time(0)
	for i := range bounds {
		d, n, err := decodeUvarint(data[off:])
		if err != nil {
			return nil, err
		}
		off += n
		prev += interval.Time(d)
		bounds[i] = prev
	}
	if bounds[0] != interval.Origin {
		return nil, errors.New("core: interval index: first boundary is not the origin")
	}
	pow2 := 1
	for pow2 < int(leaves) {
		pow2 <<= 1
	}
	nodes := make([]IndexPartial, 2*pow2)
	for i := range nodes {
		p, n, err := DecodeIndexPartial(data[off:])
		if err != nil {
			return nil, err
		}
		nodes[i] = p
		off += n
	}
	if off != len(data) {
		return nil, errors.New("core: interval index: trailing bytes")
	}
	return &IntervalIndex{bounds: bounds, nodes: nodes, pow2: pow2, tuples: int(tuples)}, nil
}

const indexMagic = "TAIX1"

// appendUvarint is binary.AppendUvarint without the import churn at every
// call site in this file's encoder.
func appendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// Close releases the node and boundary storage; subsequent lookups return
// ErrIndexClosed. The index must not be closed while lookups are in
// flight.
func (x *IntervalIndex) Close() error {
	x.bounds, x.nodes = nil, nil
	x.closed = true
	return nil
}
