GO ?= go
FUZZTIME ?= 10s

.PHONY: all build vet lint test race fuzz-smoke obs-smoke bench-smoke

all: build lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint = go vet plus the domain-aware tempagglint analyzers (see README,
# "Static analysis & CI"). CI runs exactly these targets.
lint: vet
	$(GO) run ./cmd/tempagglint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Boot tempaggd with its admin surface, run a query, and fail if /metrics
# or /debug/pprof/heap is broken or the pipeline counters stayed at zero.
obs-smoke:
	$(GO) test ./cmd/tempaggd -run TestObsSmoke -count=1 -v

# A short fuzz pass over the corpus-seeded targets (query layer plus the
# core GC/arena invariants); long campaigns use the same targets with a
# bigger FUZZTIME.
fuzz-smoke:
	$(GO) test ./internal/query -run '^$$' -fuzz FuzzParse -fuzztime $(FUZZTIME)
	$(GO) test ./internal/query -run '^$$' -fuzz FuzzExecute -fuzztime $(FUZZTIME)
	$(GO) test ./internal/core -run '^$$' -fuzz FuzzKTreeGCThreshold -fuzztime $(FUZZTIME)
	$(GO) test ./internal/core -run '^$$' -fuzz FuzzArenaReuse -fuzztime $(FUZZTIME)

# A fast machine-readable run of the hot-path baseline experiment; the JSON
# report is diffable against BENCH_PR4.json for before/after comparison and
# uploaded as a CI artifact.
bench-smoke:
	$(GO) run ./cmd/benchharness -exp baseline -max-size 4096 -seeds 1 -json > bench-smoke.json
	@head -c 400 bench-smoke.json; echo
