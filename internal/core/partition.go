package core

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"

	"tempagg/internal/aggregate"
	"tempagg/internal/interval"
	"tempagg/internal/obs"
	"tempagg/internal/relation"
	"tempagg/internal/tuple"
)

// TupleIterator is a forward-only tuple stream; TupleSource adds rescan.
type TupleIterator interface {
	Next() (t tuple.Tuple, ok bool, err error)
}

// PartitionOptions configures the limited-main-memory evaluation of §5.1/§7:
// "it is simple to mark a parent as pointing to a subtree not currently in
// memory. Simply accumulate the tuples which would overlap this region of
// the tree and process them later." The time-line is cut into regions; each
// region's tuples are buffered (in memory, or spilled to disk relation
// files) and evaluated by an independent aggregation tree, so only one
// region's tree — not the whole relation's — is ever resident.
type PartitionOptions struct {
	// Boundaries are ascending cut points: partition i covers
	// [Boundaries[i-1], Boundaries[i]-1], with implicit 0 before the first
	// and ∞ after the last. Empty means a single partition (the plain
	// aggregation tree). See UniformBoundaries.
	Boundaries []interval.Time
	// SpillDir, when non-empty, buffers each partition's tuples in a
	// temporary relation file under this directory instead of in memory —
	// the out-of-core mode. The directory must exist.
	SpillDir string
	// Parallel is the number of partitions evaluated concurrently; values
	// below 2 mean serial evaluation (a single worker). Peak memory scales
	// with the worker count. See partitionWorkers for the exact resolution.
	Parallel int
	// Sink, when non-nil, receives each partition tree's evaluator events
	// (tuple, allocation, and arena-release counters), so a partitioned or
	// streaming evaluation can be scraped mid-flight like any other run.
	Sink obs.Sink
	// Sweep evaluates each partition with the columnar event sweep
	// (NewSweepRange) instead of an aggregation tree. The planner sets it
	// for decomposable aggregates (COUNT/SUM/AVG); for MIN/MAX the shard
	// sweeps through the wedge and keeps its tree fallback.
	Sweep bool
	// Trace is the span-propagation context threaded into the partition
	// drain: when active, every shard records a child span carrying its
	// partition index, covered span, and §6 counter snapshot (and sweep
	// shards nest their own sort/scan spans under it). The zero value
	// disables span recording.
	Trace obs.TraceContext
}

// partitionWorkers resolves PartitionOptions.Parallel to a worker count.
// Values below 2 mean serial evaluation — exactly one worker — and the
// count never exceeds the number of partitions (extra workers would idle).
func partitionWorkers(parallel, partitions int) int {
	workers := 1
	if parallel >= 2 {
		workers = parallel
	}
	if workers > partitions {
		workers = partitions
	}
	return workers
}

// UniformBoundaries cuts the given finite lifespan into n equal-width
// partitions and returns the n-1 interior boundaries, for use in
// PartitionOptions. With n <= 1 or an open-ended lifespan it returns nil
// (a single partition).
func UniformBoundaries(lifespan interval.Interval, n int) []interval.Time {
	if n <= 1 || lifespan.End == interval.Forever {
		return nil
	}
	width := (lifespan.End - lifespan.Start + 1) / interval.Time(n)
	if width <= 0 {
		width = 1
	}
	var out []interval.Time
	for i := 1; i < n; i++ {
		b := lifespan.Start + interval.Time(i)*width
		if b > lifespan.End {
			break
		}
		out = append(out, b)
	}
	return out
}

// spans expands boundaries into the covered partition ranges.
func partitionSpans(boundaries []interval.Time) ([]interval.Interval, error) {
	prev := interval.Origin
	var spans []interval.Interval
	for i, b := range boundaries {
		if b <= prev {
			return nil, fmt.Errorf("core: partition boundary %d (%d) must exceed %d",
				i, b, prev)
		}
		spans = append(spans, interval.MustNew(prev, b-1))
		prev = b
	}
	spans = append(spans, interval.MustNew(prev, interval.Forever))
	return spans, nil
}

// StreamChunk is one partition's finished result: the partition's coalesced
// constant intervals, in time order. Chunks arrive on the stream in
// partition order (ascending Index), so concatenating Rows across chunks
// yields the same partition-of-the-timeline a non-streaming evaluation
// returns.
type StreamChunk struct {
	// Index is the partition's position, 0-based and dense.
	Index int
	// Span is the time range the partition covers.
	Span interval.Interval
	// Rows are the partition's coalesced constant intervals.
	Rows []Row
}

// PartitionStream is a running partitioned evaluation delivering per-
// partition results as they complete. Consume Chunks until it closes, then
// call Wait for the run's statistics and first error. Cancel abandons the
// evaluation early; Wait remains safe to call after it.
type PartitionStream struct {
	ch   chan StreamChunk
	stop chan struct{}
	once sync.Once
	done chan struct{}

	stats Stats
	err   error
}

// Chunks returns the ordered chunk channel. It is closed when every
// partition has been delivered, an evaluation error occurred, or the stream
// was canceled.
func (s *PartitionStream) Chunks() <-chan StreamChunk { return s.ch }

// Cancel abandons the evaluation: workers stop after their current
// partition and the chunk channel closes. Safe to call more than once and
// concurrently with consumption.
func (s *PartitionStream) Cancel() { s.once.Do(func() { close(s.stop) }) }

// Wait blocks until the evaluation has fully shut down and returns the
// run's statistics (total tuples routed, largest single-partition peak) and
// the first evaluation error. It drains any undelivered chunks, so it is
// safe to call with chunks outstanding.
func (s *PartitionStream) Wait() (Stats, error) {
	for range s.ch {
		// Drain whatever the consumer did not read so the emitter can exit.
	}
	<-s.done
	return s.stats, s.err
}

// EvaluatePartitionedStream computes the instant-grouped temporal aggregate
// with bounded memory, delivering each partition's coalesced constant
// intervals as soon as that partition finishes — there is no barrier
// between partition evaluation and result delivery. The routing pass runs
// synchronously (routing errors are returned here); the evaluation pass
// runs on partitionWorkers(opts.Parallel, …) goroutines behind a bounded
// channel, with a reorder buffer keeping delivery in partition order.
func EvaluatePartitionedStream(f aggregate.Func, it TupleIterator, opts PartitionOptions) (*PartitionStream, error) {
	spans, err := partitionSpans(opts.Boundaries)
	if err != nil {
		return nil, err
	}
	var bks buckets
	if opts.SpillDir != "" {
		bks, err = newSpillBuckets(opts.SpillDir, len(spans))
	} else {
		bks = newMemoryBuckets(len(spans))
	}
	if err != nil {
		return nil, err
	}

	// Route pass: each tuple goes to every partition it overlaps. Partition
	// starts are sorted, so the overlapped range is contiguous.
	total := 0
	for {
		t, ok, err := it.Next()
		if err != nil {
			bks.cleanup()
			return nil, fmt.Errorf("core: partition routing: %w", err)
		}
		if !ok {
			break
		}
		if err := t.Valid.Validate(); err != nil {
			bks.cleanup()
			return nil, err
		}
		total++
		for i := findSpan(spans, t.Valid.Start); i < len(spans) && spans[i].Start <= t.Valid.End; i++ {
			if err := bks.add(i, t); err != nil {
				bks.cleanup()
				return nil, err
			}
		}
	}
	if err := bks.sealed(); err != nil {
		bks.cleanup()
		return nil, err
	}

	workers := partitionWorkers(opts.Parallel, len(spans))
	st := &PartitionStream{
		ch:   make(chan StreamChunk, workers),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	st.stats.Tuples = total

	type partResult struct {
		i    int
		rows []Row
		peak int
		err  error
	}
	resCh := make(chan partResult, workers)
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				res, peak, err := evaluateBucket(f, spans[i], bks, i, opts)
				pr := partResult{i: i, peak: peak, err: err}
				if err == nil {
					pr.rows = res.Coalesce().Rows
				}
				select {
				case resCh <- pr:
				case <-st.stop:
					return
				}
			}
		}()
	}
	go func() {
		defer close(work)
		for i := range spans {
			select {
			case work <- i:
			case <-st.stop:
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(resCh)
	}()

	// Emitter: reorder worker completions into partition order and deliver
	// each chunk the moment its predecessors are out. A shard that finishes
	// early is held only until the partitions before it are done — never
	// until the whole evaluation is.
	go func() {
		pending := make(map[int][]Row, workers)
		next := 0
		for pr := range resCh {
			if pr.err != nil {
				if st.err == nil {
					st.err = pr.err
				}
				st.Cancel()
				continue
			}
			if pr.peak > st.stats.PeakNodes {
				st.stats.PeakNodes = pr.peak
			}
			pending[pr.i] = pr.rows
			for {
				rows, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				select {
				case st.ch <- StreamChunk{Index: next, Span: spans[next], Rows: rows}:
				case <-st.stop:
				}
				next++
			}
		}
		bks.cleanup()
		close(st.ch)
		close(st.done)
	}()
	return st, nil
}

// EvaluatePartitioned computes the instant-grouped temporal aggregate with
// bounded memory: tuples are routed (clipped) to time partitions in one
// scan, then each partition is evaluated by its own aggregation tree. It is
// the materializing consumer of EvaluatePartitionedStream. The returned
// Stats report the *largest single-partition* peak, which is the
// resident-memory bound when evaluation is serial.
//
// Constant intervals may be split at partition boundaries; Coalesce merges
// them back when values agree. The result still satisfies Validate and is
// value-equivalent (Equal) to the unpartitioned evaluation.
func EvaluatePartitioned(f aggregate.Func, it TupleIterator, opts PartitionOptions) (*Result, Stats, error) {
	st, err := EvaluatePartitionedStream(f, it, opts)
	if err != nil {
		return nil, Stats{}, err
	}
	out := &Result{Func: f}
	for chunk := range st.Chunks() {
		out.Rows = append(out.Rows, chunk.Rows...)
	}
	stats, err := st.Wait()
	if err != nil {
		return nil, Stats{}, err
	}
	return out, stats, nil
}

// EvaluatePartitionedTuples is EvaluatePartitioned over an in-memory slice.
func EvaluatePartitionedTuples(f aggregate.Func, ts []tuple.Tuple, opts PartitionOptions) (*Result, Stats, error) {
	return EvaluatePartitioned(f, NewSliceSource(ts), opts)
}

// findSpan returns the index of the partition containing t (binary search).
func findSpan(spans []interval.Interval, t interval.Time) int {
	lo, hi := 0, len(spans)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if spans[mid].End < t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func evaluateBucket(f aggregate.Func, span interval.Interval, b buckets, i int, opts PartitionOptions) (*Result, int, error) {
	sp := opts.Trace.StartChild("shard")
	sp.SetAttr("partition", strconv.Itoa(i))
	sp.SetAttr("span", fmt.Sprintf("[%d,%d]", span.Start, span.End))
	defer sp.End()
	var ev Evaluator
	if opts.Sweep {
		// A sweep shard nests its own radix/scan spans under the shard span.
		ev = NewSweepRangeOptions(f, span, SweepOptions{Trace: sp.Context()})
	} else {
		ev = NewAggregationTreeRange(f, span)
	}
	if opts.Sink != nil {
		ev.(sinkSetter).setSink(opts.Sink)
	}
	if err := b.drain(i, ev.AddBatch); err != nil {
		return nil, 0, err
	}
	res, err := ev.Finish()
	if err != nil {
		return nil, 0, err
	}
	st := ev.Stats()
	sp.AddCounters(st.Tuples, st.LiveNodes, st.PeakNodes, st.Collected)
	return res, st.PeakNodes, nil
}

// buckets abstracts the per-partition tuple buffers.
type buckets interface {
	add(i int, t tuple.Tuple) error
	// sealed flips from the routing pass to the evaluation pass.
	sealed() error
	// drain replays partition i's tuples in pages of at most BatchPage,
	// feeding the evaluator's batch-ingestion path; safe to call
	// concurrently for distinct i.
	drain(i int, fn func([]tuple.Tuple) error) error
	cleanup()
}

// memoryBuckets holds partition inputs in memory.
type memoryBuckets [][]tuple.Tuple

func newMemoryBuckets(n int) *memoryBuckets {
	b := make(memoryBuckets, n)
	return &b
}

func (b *memoryBuckets) add(i int, t tuple.Tuple) error {
	(*b)[i] = append((*b)[i], t)
	return nil
}

func (b *memoryBuckets) sealed() error { return nil }

func (b *memoryBuckets) drain(i int, fn func([]tuple.Tuple) error) error {
	ts := (*b)[i]
	for lo := 0; lo < len(ts); lo += BatchPage {
		hi := lo + BatchPage
		if hi > len(ts) {
			hi = len(ts)
		}
		if err := fn(ts[lo:hi]); err != nil {
			return err
		}
	}
	return nil
}

func (b *memoryBuckets) cleanup() {}

// spillBuckets buffers partition inputs in temporary relation files.
type spillBuckets struct {
	dir     string
	writers []*relation.FileWriter
	paths   []string
}

func newSpillBuckets(dir string, n int) (*spillBuckets, error) {
	tmp, err := os.MkdirTemp(dir, "tempagg-spill-")
	if err != nil {
		return nil, fmt.Errorf("core: spill: %w", err)
	}
	b := &spillBuckets{dir: tmp, writers: make([]*relation.FileWriter, n), paths: make([]string, n)}
	for i := range b.writers {
		b.paths[i] = filepath.Join(tmp, fmt.Sprintf("part-%04d.rel", i))
		w, err := relation.NewFileWriter(b.paths[i])
		if err != nil {
			b.cleanup()
			return nil, err
		}
		b.writers[i] = w
	}
	return b, nil
}

func (b *spillBuckets) add(i int, t tuple.Tuple) error {
	return b.writers[i].Append(t)
}

func (b *spillBuckets) sealed() error {
	for _, w := range b.writers {
		if err := w.Close(); err != nil {
			return err
		}
	}
	return nil
}

func (b *spillBuckets) drain(i int, fn func([]tuple.Tuple) error) error {
	sc, err := relation.Open(b.paths[i], relation.ScanOptions{})
	if err != nil {
		return err
	}
	defer sc.Close()
	page := make([]tuple.Tuple, 0, BatchPage)
	for {
		t, ok, err := sc.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		page = append(page, t)
		if len(page) == BatchPage {
			if err := fn(page); err != nil {
				return err
			}
			page = page[:0]
		}
	}
	if len(page) > 0 {
		return fn(page)
	}
	return nil
}

func (b *spillBuckets) cleanup() {
	for _, w := range b.writers {
		if w != nil {
			//tempagglint:ignore errdrop best-effort teardown: the bucket files are removed below
			w.Close()
		}
	}
	os.RemoveAll(b.dir)
}
