// Package lint implements tempagglint, a domain-aware static-analysis
// suite for the tempagg code base.
//
// The paper's algorithms rest on invariants the Go compiler cannot see:
// constant intervals must satisfy Start <= End (interval.Validate), an
// Evaluator must not be reused after Finish (internal/core/evaluator.go),
// memory accounting must go through core.NodeBytes rather than hardcoded
// 16s (§6.2 of Kline & Snodgrass), and the structures shared by concurrent
// callers must not have their locks copied. Each analyzer in this package
// machine-checks one of those invariants.
//
// The framework deliberately mirrors the golang.org/x/tools/go/analysis
// API (Analyzer, Pass, Diagnostic) so analyzers can be ported to the real
// multichecker verbatim, but it is self-contained: this repository builds
// offline, so the suite runs on the standard library's go/ast and go/types
// alone, with export data for dependencies supplied by `go list -export`
// (see load.go).
//
// Suppressing a finding: a comment of the form
//
//	//tempagglint:ignore <analyzer> <reason>
//
// on the flagged line, or alone on the line directly above it, silences
// that analyzer there. The reason is mandatory by convention — a
// suppression without a justification should not survive review.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and suppression
	// directives. It must be a valid Go identifier.
	Name string
	// Doc is the one-paragraph description shown by `tempagglint -list`.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Pass provides one analyzer with one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// A Diagnostic is one reported finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s",
		d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Config parameterizes the suite.
type Config struct {
	// StrictStats makes finishonce flag Stats calls after Finish as well.
	// The documented Evaluator contract permits Stats "at any point" —
	// reading the final PeakNodes after Finish is the blessed reporting
	// pattern — so this is off by default.
	StrictStats bool
}

// Analyzers returns the full suite under cfg: the five syntactic/type
// checks plus the five CFG/dataflow analyzers (cfg.go, dataflow.go).
func Analyzers(cfg Config) []*Analyzer {
	return []*Analyzer{
		IntervalBounds,
		NewFinishOnce(cfg.StrictStats),
		ErrDrop,
		NodeBytes,
		LockCopy,
		ArenaEscape,
		PoolBalance,
		AtomicMix,
		UnlockPath,
		SinkNil,
	}
}

// Run applies each analyzer to each package and returns the surviving
// diagnostics sorted by position, with suppressed findings removed.
func Run(prog *Program, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, _, err := RunWithAudit(prog, analyzers)
	return diags, err
}

// RunWithAudit is Run plus the suppression audit: every
// //tempagglint:ignore directive parsed from the analyzed packages, with
// its reason and whether it actually suppressed a finding. The driver
// uses the audit to reject reasonless directives, flag stale ones, and
// enforce the baseline's ignore-count budget.
func RunWithAudit(prog *Program, analyzers []*Analyzer) ([]Diagnostic, []Directive, error) {
	var diags []Diagnostic
	var directives []Directive
	for _, pkg := range prog.Packages {
		pkgDiags, pkgDirs, err := runPackage(prog, pkg, analyzers)
		if err != nil {
			return nil, nil, err
		}
		diags = append(diags, pkgDiags...)
		directives = append(directives, pkgDirs...)
	}
	sortDiagnostics(diags)
	sort.Slice(directives, func(i, j int) bool {
		a, b := directives[i].Pos, directives[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	return diags, directives, nil
}

// RunPackage applies each analyzer to one package (which need not be in
// prog.Packages — linttest checks fixture packages against the program's
// import graph) and returns its surviving diagnostics in position order.
func RunPackage(prog *Program, pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, _, err := runPackage(prog, pkg, analyzers)
	return diags, err
}

func runPackage(prog *Program, pkg *Package, analyzers []*Analyzer) ([]Diagnostic, []Directive, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      prog.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Pkg,
			TypesInfo: pkg.Info,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
	}
	var directives []Directive
	diags, directives = filterSuppressed(prog.Fset, pkg, diags)
	sortDiagnostics(diags)
	return diags, directives, nil
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// ignoreDirective is the comment prefix that suppresses a finding.
const ignoreDirective = "tempagglint:ignore"

// A Directive is one parsed //tempagglint:ignore comment. The driver
// audits these: a directive without a Reason is an error, and a
// directive that never suppressed anything (Used == false) is stale
// and must be removed.
type Directive struct {
	// Pos locates the directive comment itself.
	Pos token.Position
	// Analyzers lists the analyzer names the directive silences; the
	// special name "*" silences every analyzer.
	Analyzers []string
	// Reason is the justification text after the analyzer list. It is
	// mandatory: reasonless suppressions fail the driver.
	Reason string
	// Used reports whether the directive suppressed at least one
	// diagnostic in this run.
	Used bool
}

// suppressions maps file → line → the directives covering that line.
// Each entry points into the list so usage marks are shared between the
// directive's own line and the line below it.
type suppressions struct {
	byLine map[string]map[int][]*Directive
	list   []*Directive
}

func collectSuppressions(fset *token.FileSet, pkg *Package) *suppressions {
	sup := &suppressions{byLine: map[string]map[int][]*Directive{}}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, ignoreDirective) {
					continue
				}
				rest := strings.TrimPrefix(text, ignoreDirective)
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				d := &Directive{
					Pos:       pos,
					Analyzers: strings.Split(fields[0], ","),
					Reason:    strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), fields[0])),
				}
				sup.list = append(sup.list, d)
				byLine := sup.byLine[pos.Filename]
				if byLine == nil {
					byLine = map[int][]*Directive{}
					sup.byLine[pos.Filename] = byLine
				}
				// The directive covers its own line and the next, so a
				// comment directly above the flagged statement works.
				byLine[pos.Line] = append(byLine[pos.Line], d)
				byLine[pos.Line+1] = append(byLine[pos.Line+1], d)
			}
		}
	}
	return sup
}

func (d *Directive) matches(analyzer string) bool {
	for _, n := range d.Analyzers {
		if n == "*" || n == analyzer {
			return true
		}
	}
	return false
}

func filterSuppressed(fset *token.FileSet, pkg *Package, diags []Diagnostic) ([]Diagnostic, []Directive) {
	sup := collectSuppressions(fset, pkg)
	kept := diags[:0]
	for _, d := range diags {
		ignored := false
		for _, dir := range sup.byLine[d.Pos.Filename][d.Pos.Line] {
			if dir.matches(d.Analyzer) {
				dir.Used = true
				ignored = true
			}
		}
		if !ignored {
			kept = append(kept, d)
		}
	}
	out := make([]Directive, len(sup.list))
	for i, dir := range sup.list {
		out[i] = *dir
	}
	return kept, out
}

// ---- shared helpers used by several analyzers ----

const (
	intervalPkgPath = "tempagg/internal/interval"
	tuplePkgPath    = "tempagg/internal/tuple"
	corePkgPath     = "tempagg/internal/core"
	modulePath      = "tempagg"
)

// inModule reports whether pkg belongs to the tempagg module.
func inModule(pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	p := pkg.Path()
	return p == modulePath || strings.HasPrefix(p, modulePath+"/")
}

// namedType unwraps aliases and pointers down to a *types.Named, if any.
func namedType(t types.Type) *types.Named {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// isNamed reports whether t (or *t) is the named type pkgPath.name.
func isNamed(t types.Type, pkgPath, name string) bool {
	n := namedType(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == pkgPath && n.Obj().Name() == name
}

// calleeFunc resolves the called function or method, if statically known.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	case *ast.Ident:
		obj = info.Uses[fun]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// errorType is the predeclared error interface.
var errorType = types.Universe.Lookup("error").Type()

// errorResults returns the indices of error-typed results of sig.
func errorResults(sig *types.Signature) []int {
	var idx []int
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if types.Identical(res.At(i).Type(), errorType) {
			idx = append(idx, i)
		}
	}
	return idx
}

// funcDisplayName renders fn as pkg.Name or (pkg.Recv).Name for messages.
func funcDisplayName(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if n := namedType(t); n != nil {
			return fmt.Sprintf("(%s.%s).%s", n.Obj().Pkg().Name(), n.Obj().Name(), fn.Name())
		}
		return fmt.Sprintf("(%s).%s", types.TypeString(t, nil), fn.Name())
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}
