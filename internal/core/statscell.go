package core

import (
	"sync/atomic"

	"tempagg/internal/aggregate"
	"tempagg/internal/obs"
	"tempagg/internal/tuple"
)

// statsCell is the evaluators' internal form of Stats: every counter is an
// atomic so Stats can be snapshotted from another goroutine while an
// evaluation is in flight — the /metrics scrape path — without torn reads.
// Mutation stays single-writer (the evaluator's own goroutine); the atomics
// buy safe concurrent *readers*, not concurrent Add.
type statsCell struct {
	tuples    atomic.Int64
	liveNodes atomic.Int64
	peakNodes atomic.Int64
	collected atomic.Int64
}

// init seeds the live/peak counters with the structure's initial node count.
func (c *statsCell) init(nodes int) {
	c.liveNodes.Store(int64(nodes))
	c.peakNodes.Store(int64(nodes))
}

// addTuple counts one absorbed tuple.
func (c *statsCell) addTuple() { c.tuples.Add(1) }

// grow adds n live nodes and raises the peak high-water mark.
func (c *statsCell) grow(n int) {
	if n == 0 {
		return
	}
	live := c.liveNodes.Add(int64(n))
	for {
		peak := c.peakNodes.Load()
		if live <= peak || c.peakNodes.CompareAndSwap(peak, live) {
			return
		}
	}
}

// reclaim moves n nodes from live to collected (garbage collection).
func (c *statsCell) reclaim(n int) {
	c.liveNodes.Add(int64(-n))
	c.collected.Add(int64(n))
}

// snapshot assembles a Stats value from atomic loads. Counters are loaded
// individually, so a snapshot taken mid-Add may mix a just-incremented
// tuple count with a not-yet-raised peak; each individual counter is
// consistent, which is what the scrape path needs.
func (c *statsCell) snapshot() Stats {
	return Stats{
		Tuples:    int(c.tuples.Load()),
		LiveNodes: int(c.liveNodes.Load()),
		PeakNodes: int(c.peakNodes.Load()),
		Collected: int(c.collected.Load()),
	}
}

// sinkSetter is implemented by evaluators that can publish their counters
// to an observability sink; NewObserved uses it after construction.
type sinkSetter interface {
	setSink(s obs.Sink)
}

// traceSetter is implemented by evaluators that can attach a span-
// propagation context and record child spans under it (today the sweep
// family; tree evaluators run as one opaque span at the query layer).
type traceSetter interface {
	setTrace(ctx obs.TraceContext)
}

// SetTraceContext attaches a span-propagation context to ev when the
// evaluator supports one; a zero context or an unsupporting evaluator is a
// no-op. It is the exported hook the query executor uses to hang
// per-worker sweep spans under its execute span.
func SetTraceContext(ev Evaluator, ctx obs.TraceContext) {
	if ts, ok := ev.(traceSetter); ok {
		ts.setTrace(ctx)
	}
}

// NewObserved is New with an observability sink attached: the evaluator
// publishes tuple, node-allocation, garbage-collection, and peak-memory
// events to s as it runs (the counters behind the paper's §6 cost model).
// A nil s is equivalent to New.
func NewObserved(spec Spec, f aggregate.Func, s obs.Sink) (Evaluator, error) {
	ev, err := New(spec, f)
	if err != nil || s == nil {
		return ev, err
	}
	if ss, ok := ev.(sinkSetter); ok {
		ss.setSink(s)
	}
	return ev, nil
}

// RunObserved is Run with an observability sink attached; see NewObserved.
// Tuples are fed through the batch-ingestion path in pages of BatchPage.
func RunObserved(spec Spec, f aggregate.Func, tuples []tuple.Tuple, s obs.Sink) (*Result, Stats, error) {
	return RunTraced(spec, f, tuples, s, obs.TraceContext{})
}

// RunTraced is RunObserved with a span-propagation context attached: an
// evaluator that supports tracing (the sweep family) records its sort,
// per-worker scan, and emit stages as child spans of ctx. A zero ctx is
// exactly RunObserved.
func RunTraced(spec Spec, f aggregate.Func, tuples []tuple.Tuple, s obs.Sink, ctx obs.TraceContext) (*Result, Stats, error) {
	ev, err := NewObserved(spec, f, s)
	if err != nil {
		return nil, Stats{}, err
	}
	SetTraceContext(ev, ctx)
	for lo := 0; lo < len(tuples); lo += BatchPage {
		hi := lo + BatchPage
		if hi > len(tuples) {
			hi = len(tuples)
		}
		if err := ev.AddBatch(tuples[lo:hi]); err != nil {
			return nil, ev.Stats(), err
		}
	}
	res, err := ev.Finish()
	return res, ev.Stats(), err
}
