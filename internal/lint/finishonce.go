package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// NewFinishOnce returns the finishonce analyzer.
//
// The Evaluator contract (internal/core/evaluator.go) says "the evaluator
// must not be reused" after Finish: the aggregation tree has been walked
// and partially reclaimed, the k-ordered tree's collected prefix is gone,
// so a later Add would fold tuples into a structure that no longer
// represents the relation — silently wrong results, not a crash. The check
// is flow-insensitive: within one function body, a call to Add (or a
// second Finish) on the same evaluator value textually after a Finish call
// is flagged, unless the variable is reassigned in between.
//
// core.LiveEvaluator carries the same no-reuse contract with Close as its
// terminal call: Close drops the sealed segments and tail, so Add,
// AddBatch, or Snapshot after Close is a bug (they also fail dynamically
// with ErrLiveClosed; the analyzer surfaces it at build time). Deferred
// Close calls are exempt — `defer ev.Close()` runs at function exit, after
// every textually-later use, so the blessed lifecycle idiom stays clean.
//
// core.IntervalIndex and core.ResultCache (S37) follow the LiveEvaluator
// pattern: Close is terminal, so lookups (At/Range/Result/MarshalBinary on
// the index, Get/Put on the cache) after Close are flagged, as is a second
// Close. Both fail dynamically too (ErrIndexClosed; the cache goes inert),
// but an inert cache silently misses every Get — a performance bug no test
// asserts on, which is exactly what a static check is for.
//
// With strictStats, Stats calls after Finish/Close are flagged too. The
// default leaves them legal because the documented contract explicitly
// permits Stats "at any point" and reading the final PeakNodes after the
// terminal call is the blessed reporting pattern (core.Run, partition
// workers, the benchmarks).
func NewFinishOnce(strictStats bool) *Analyzer {
	return &Analyzer{
		Name: "finishonce",
		Doc: "flag Add/AddBatch (and with -strict-stats, Stats) calls on a " +
			"core.Evaluator after Finish, use of a core.LiveEvaluator, " +
			"core.IntervalIndex, or core.ResultCache after Close, and " +
			"double Finish/Close",
		Run: func(pass *Pass) error { return runFinishOnce(pass, strictStats) },
	}
}

// evEvent is one use of an evaluator value inside a function body.
type evEvent struct {
	pos    token.Pos
	method string // "Add", "Finish", "Stats", or "" for a reassignment
	expr   string // receiver rendering, for the message
}

// closable is one core type with a terminal Close and the methods that
// must not follow it.
type closable struct {
	typ      types.Type
	methods  map[string]bool // non-terminal methods tracked for this type
	contract string
}

func runFinishOnce(pass *Pass, strictStats bool) error {
	iface := evaluatorInterface(pass.Pkg)
	var closables []closable
	for _, spec := range []struct {
		name     string
		methods  []string
		contract string
	}{
		{"LiveEvaluator", []string{"Add", "AddBatch", "Snapshot", "Stats"},
			"live evaluator must not be used after Close"},
		{"IntervalIndex", []string{"At", "Range", "Result", "MarshalBinary"},
			"interval index must not be used after Close"},
		{"ResultCache", []string{"Get", "Put", "Stats"},
			"result cache must not be used after Close"},
	} {
		t := coreNamedType(pass.Pkg, spec.name)
		if t == nil {
			continue
		}
		ms := map[string]bool{}
		for _, m := range spec.methods {
			ms[m] = true
		}
		closables = append(closables, closable{typ: t, methods: ms, contract: spec.contract})
	}
	if iface == nil && len(closables) == 0 {
		return nil // package cannot name core evaluator values
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkFinishOnceBody(pass, iface, closables, fn.Body, strictStats)
				}
			case *ast.FuncLit:
				checkFinishOnceBody(pass, iface, closables, fn.Body, strictStats)
			}
			return true
		})
	}
	return nil
}

// evaluatorInterface finds core.Evaluator in pkg's import closure.
func evaluatorInterface(pkg *types.Package) *types.Interface {
	core := findImport(pkg, corePkgPath, map[*types.Package]bool{})
	if core == nil {
		return nil
	}
	obj := core.Scope().Lookup("Evaluator")
	if obj == nil {
		return nil
	}
	iface, _ := obj.Type().Underlying().(*types.Interface)
	return iface
}

// coreNamedType finds a named core type in pkg's import closure.
func coreNamedType(pkg *types.Package, name string) types.Type {
	core := findImport(pkg, corePkgPath, map[*types.Package]bool{})
	if core == nil {
		return nil
	}
	obj := core.Scope().Lookup(name)
	if obj == nil {
		return nil
	}
	return obj.Type()
}

func findImport(pkg *types.Package, path string, seen map[*types.Package]bool) *types.Package {
	if pkg == nil || seen[pkg] {
		return nil
	}
	seen[pkg] = true
	if pkg.Path() == path {
		return pkg
	}
	for _, imp := range pkg.Imports() {
		if found := findImport(imp, path, seen); found != nil {
			return found
		}
	}
	return nil
}

// checkFinishOnceBody analyzes one function body, not descending into
// nested function literals (each gets its own pass; a goroutine body is a
// separate flow).
func checkFinishOnceBody(pass *Pass, iface *types.Interface, closables []closable, body *ast.BlockStmt, strictStats bool) {
	events := map[string][]evEvent{} // receiver key → ordered Evaluator uses
	// closeEvents[i] tracks receivers of closables[i].
	closeEvents := make([]map[string][]evEvent, len(closables))
	for i := range closeEvents {
		closeEvents[i] = map[string][]evEvent{}
	}
	tainted := map[string]bool{}         // receiver key → address taken, skip
	deferred := map[*ast.CallExpr]bool{} // calls in defer statements, exempt

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			// A deferred terminal call runs at function exit, after every
			// textually-later use: ordering it by source position would
			// flag the blessed `defer ev.Close()` lifecycle idiom.
			deferred[n.Call] = true
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if key, ok := receiverKey(pass, n.X); ok {
					tainted[key] = true
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if key, ok := receiverKey(pass, lhs); ok {
					reset := evEvent{pos: lhs.Pos(), method: "", expr: exprString(lhs)}
					events[key] = append(events[key], reset)
					for i := range closeEvents {
						closeEvents[i][key] = append(closeEvents[i][key], reset)
					}
				}
			}
		case *ast.CallExpr:
			if deferred[n] {
				return true
			}
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			method := sel.Sel.Name
			tv, ok := pass.TypesInfo.Types[sel.X]
			if !ok {
				return true
			}
			key, ok := receiverKey(pass, sel.X)
			if !ok {
				return true
			}
			e := evEvent{pos: n.Pos(), method: method, expr: exprString(sel.X)}
			for i, c := range closables {
				if !isCoreNamedType(tv.Type, c.typ) {
					continue
				}
				if method == "Close" || c.methods[method] {
					closeEvents[i][key] = append(closeEvents[i][key], e)
				}
				return true
			}
			switch method {
			case "Add", "AddBatch", "Finish", "Stats":
				if isEvaluatorType(tv.Type, iface) {
					events[key] = append(events[key], e)
				}
			}
		}
		return true
	}
	ast.Inspect(body, walk)

	for key, evs := range events {
		if tainted[key] {
			continue // address escaped; the value may be swapped out
		}
		reportReuse(pass, evs, "Finish", "evaluator must not be reused after Finish", strictStats)
	}
	for i, c := range closables {
		for key, evs := range closeEvents[i] {
			if tainted[key] {
				continue
			}
			reportReuse(pass, evs, "Close", c.contract, strictStats)
		}
	}
}

// reportReuse walks one receiver's uses in source order and reports any use
// after the terminal call ("Finish" for Evaluator, "Close" for
// LiveEvaluator), plus a repeated terminal call.
func reportReuse(pass *Pass, evs []evEvent, terminal, contract string, strictStats bool) {
	sort.Slice(evs, func(i, j int) bool { return evs[i].pos < evs[j].pos })
	finished := false
	for _, e := range evs {
		switch e.method {
		case "":
			finished = false // reassigned: a fresh evaluator
		case terminal:
			if finished {
				pass.Reportf(e.pos, "%s called twice on %s (%s)", terminal, e.expr, contract)
			}
			finished = true
		case "Stats":
			if finished && strictStats {
				pass.Reportf(e.pos, "Stats called on %s after %s "+
					"(strict-stats: snapshot Stats before %s)", e.expr, terminal, terminal)
			}
		default:
			if finished {
				pass.Reportf(e.pos, "%s called on %s after %s (%s)",
					e.method, e.expr, terminal, contract)
			}
		}
	}
}

// isCoreNamedType reports whether t is the given named core type or a
// pointer to it.
func isCoreNamedType(t, want types.Type) bool {
	if t == nil || want == nil {
		return false
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	return types.Identical(t, want)
}

// isEvaluatorType reports whether a value of type t can be a
// core.Evaluator: the interface itself, or a concrete type whose (pointer)
// method set implements it.
func isEvaluatorType(t types.Type, iface *types.Interface) bool {
	if t == nil || iface == nil {
		return false
	}
	if types.AssignableTo(t, iface) {
		return true
	}
	if _, ok := types.Unalias(t).(*types.Pointer); !ok {
		return types.AssignableTo(types.NewPointer(t), iface)
	}
	return false
}

// receiverKey identifies the evaluator value a method is called on: the
// object for a plain variable, the rendered path for a field selection.
// Calls on arbitrary expressions (function results, index expressions)
// return ok=false — there is no stable identity to track.
func receiverKey(pass *Pass, e ast.Expr) (string, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[e]
		if obj == nil {
			obj = pass.TypesInfo.Defs[e]
		}
		if obj == nil {
			return "", false
		}
		return fmt.Sprintf("obj:%p", obj), true
	case *ast.SelectorExpr:
		if base, ok := receiverKey(pass, e.X); ok {
			return base + "." + e.Sel.Name, true
		}
	}
	return "", false
}

// exprString renders a receiver expression for diagnostics.
func exprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	}
	return "evaluator"
}
