package interval

import "testing"

func TestGranularityValues(t *testing.T) {
	cases := []struct {
		g    Granularity
		want Time
	}{
		{Second, 1},
		{Minute, 60},
		{Hour, 3600},
		{Day, 86400},
		{Week, 604800},
		{Month, 2592000},
		{Year, 31536000},
	}
	for _, tc := range cases {
		if Time(tc.g) != tc.want {
			t.Errorf("%s = %d chronons, want %d", tc.g, int64(tc.g), tc.want)
		}
	}
}

func TestParseGranularity(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Granularity
	}{
		{"year", Year}, {"YEARS", Year}, {"Year", Year},
		{"day", Day}, {"days", Day},
		{"second", Second}, {"instants", Second}, {"chronon", Second},
		{"week", Week}, {"month", Month}, {"hour", Hour}, {"minutes", Minute},
	} {
		got, err := ParseGranularity(tc.in)
		if err != nil {
			t.Errorf("ParseGranularity(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseGranularity(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	if _, err := ParseGranularity("fortnight"); err == nil {
		t.Error("unknown unit must fail")
	}
}

func TestGranularitySpan(t *testing.T) {
	if got := Day.Span(7); got != Time(Week) {
		t.Fatalf("7 days = %d, want a week", got)
	}
	if got := Year.Span(2); got != 2*31536000 {
		t.Fatalf("2 years = %d", got)
	}
}

func TestGranularityString(t *testing.T) {
	if Year.String() != "YEAR" || Second.String() != "SECOND" {
		t.Fatal("names wrong")
	}
	if Granularity(7).String() != "Granularity(7)" {
		t.Fatal("unknown name wrong")
	}
}
