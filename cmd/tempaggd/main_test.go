package main

import (
	"net"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"tempagg"
	"tempagg/internal/catalog"
	"tempagg/internal/server"
)

func TestClientModeAgainstServer(t *testing.T) {
	dir := t.TempDir()
	if err := tempagg.WriteRelation(filepath.Join(dir, "Employed.rel"), tempagg.Employed()); err != nil {
		t.Fatal(err)
	}
	cat, err := catalog.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(cat)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(lis) }()
	defer func() {
		if err := srv.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
		if err := <-serveErr; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()
	// Let the accept loop spin up.
	time.Sleep(10 * time.Millisecond)

	var b strings.Builder
	err = run([]string{"-connect", lis.Addr().String(),
		"-query", "SELECT COUNT(Name) FROM Employed"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"ok":true`) {
		t.Fatalf("client output:\n%s", b.String())
	}
}

func TestFlagValidation(t *testing.T) {
	var b strings.Builder
	if err := run(nil, &b); err == nil {
		t.Error("no mode must fail")
	}
	if err := run([]string{"-listen", ":0", "-connect", "x"}, &b); err == nil {
		t.Error("both modes must fail")
	}
	if err := run([]string{"-listen", ":0"}, &b); err == nil {
		t.Error("listen without -db must fail")
	}
	if err := run([]string{"-connect", "127.0.0.1:1"}, &b); err == nil {
		t.Error("connect without -query must fail")
	}
	if err := run([]string{"-connect", "127.0.0.1:1", "-query", "x"}, &b); err == nil {
		t.Error("unreachable server must fail")
	}
	if err := run([]string{"-listen", ":0", "-db", "/nonexistent"}, &b); err == nil {
		t.Error("missing catalog must fail")
	}
}
