// LiveSnapshot: the reader half of the live evaluator's epoch protocol.
// See live.go for the writer half and the sealing rules.
package core

import (
	"fmt"
	"sync"

	"tempagg/internal/aggregate"
	"tempagg/internal/interval"
	"tempagg/internal/tuple"
)

// LiveEpoch identifies one snapshot's position in the ingestion order.
type LiveEpoch struct {
	// Seq is the number of tuples admitted at the epoch — the snapshot
	// reads exactly the first Seq tuples ever ingested, in order.
	Seq int64 `json:"seq"`
	// Segments is the sealed-segment count at the epoch.
	Segments int `json:"segments"`
	// Tail is the tail watermark: tuples admitted but not yet sealed.
	Tail int `json:"tail"`
}

// String renders the epoch for spans and diagnostics.
func (ep LiveEpoch) String() string {
	return fmt.Sprintf("epoch %d (%d sealed + tail %d)", ep.Seq, ep.Segments, ep.Tail)
}

// LiveSnapshot is one consistent epoch of a LiveEvaluator: reads through
// it observe exactly the tuples admitted when Snapshot was called, however
// far ingestion has advanced since. A snapshot is immutable and safe for
// concurrent use; it stays valid after the evaluator is closed. Per-kind
// full results are memoized on the snapshot, so At and Range after a
// Result call are binary searches, not re-evaluations.
type LiveSnapshot struct {
	ev      *LiveEvaluator
	state   *liveState
	tailLen int64
	seq     int64

	mu   sync.Mutex
	memo map[aggregate.Kind]*Result
}

// Seq is the number of tuples admitted at the snapshot's epoch.
func (s *LiveSnapshot) Seq() int64 { return s.seq }

// Len is Seq as an int, for slice-shaped callers.
func (s *LiveSnapshot) Len() int { return int(s.seq) }

// Epoch describes the snapshot's position in the ingestion order.
func (s *LiveSnapshot) Epoch() LiveEpoch {
	return LiveEpoch{Seq: s.seq, Segments: len(s.state.segs), Tail: int(s.tailLen)}
}

// Tuples materializes the tuples admitted at the epoch, in ingestion
// order. It exists for the differential oracle (a batch Reference run over
// exactly this slice must match every snapshot read) and for prefix
// replay; production reads never need it.
func (s *LiveSnapshot) Tuples() []tuple.Tuple {
	out := make([]tuple.Tuple, 0, s.seq)
	for _, g := range s.state.segs {
		out = append(out, g.tuples()...)
	}
	t := s.state.tail
	for i := int64(0); i < s.tailLen; i++ {
		// The columns were validated at ingest, so MustNew cannot panic.
		out = append(out, tuple.MustNew(t.names[i], t.vals[i], t.starts[i], t.ends[i]))
	}
	return out
}

// Result computes the full constant-interval result for f at the epoch:
// the memoized sealed-segment partials merged with a fresh sweep of the
// tail prefix. The returned result partitions [0, ∞] and is the caller's
// to mutate (Clip, Coalesce); the snapshot keeps its own memoized copy.
func (s *LiveSnapshot) Result(f aggregate.Func) (*Result, error) {
	res, err := s.full(f)
	if err != nil {
		return nil, err
	}
	return &Result{Func: res.Func, Rows: append([]Row(nil), res.Rows...)}, nil
}

// At returns the aggregate value at instant t, evaluated at the epoch.
func (s *LiveSnapshot) At(f aggregate.Func, t interval.Time) (aggregate.Value, error) {
	res, err := s.full(f)
	if err != nil {
		return aggregate.Value{}, err
	}
	v, ok := res.At(t)
	if !ok {
		// full results partition [0, ∞]; a miss means t is out of range.
		return aggregate.Value{}, fmt.Errorf("core: live at %s: no row", interval.FormatTime(t))
	}
	return v, nil
}

// Range returns the constant intervals overlapping window, clipped to it,
// evaluated at the epoch.
func (s *LiveSnapshot) Range(f aggregate.Func, window interval.Interval) (*Result, error) {
	res, err := s.Result(f)
	if err != nil {
		return nil, err
	}
	return res.Clip(window), nil
}

// RangeIndexed is Range through the sealed segments' partial-state
// interval indexes: each sealed segment answers the window from its
// memoized index in O(k + log n) partial merges, the mutable tail prefix
// is swept clipped to the window, and the per-source window partitions
// are merged. The indexes are built once per segment and reused across
// every later epoch — only the tail is ever re-evaluated (S37). The rows
// are bit-identical to Range's.
func (s *LiveSnapshot) RangeIndexed(f aggregate.Func, window interval.Interval) (*Result, error) {
	if err := window.Validate(); err != nil {
		return nil, err
	}
	parts := make([]*Result, 0, len(s.state.segs)+1)
	for _, g := range s.state.segs {
		idx, err := g.index()
		if err != nil {
			return nil, err
		}
		r, err := idx.Range(f, window)
		if err != nil {
			return nil, err
		}
		parts = append(parts, r)
	}
	tail, err := s.tailRange(f, window)
	if err != nil {
		return nil, err
	}
	parts = append(parts, tail)
	return mergeAllSpan(f, parts, window), nil
}

// full returns the memoized epoch result for f, computing it on first use.
func (s *LiveSnapshot) full(f aggregate.Func) (*Result, error) {
	k := f.Kind()
	s.mu.Lock()
	defer s.mu.Unlock()
	if res, ok := s.memo[k]; ok {
		return res, nil
	}
	pre, err := s.ev.prefixResult(f, s.state.segs)
	if err != nil {
		return nil, err
	}
	tail, err := s.tailResult(f)
	if err != nil {
		return nil, err
	}
	res := mergeResults(f, pre, tail)
	if s.memo == nil {
		s.memo = map[aggregate.Kind]*Result{}
	}
	s.memo[k] = res
	return res, nil
}

// tailResult sweeps the snapshot's tail prefix — at most one segment's
// worth of tuples, so this is the only per-read evaluation work.
func (s *LiveSnapshot) tailResult(f aggregate.Func) (*Result, error) {
	return s.tailSpan(f, interval.Universe())
}

// tailRange sweeps the tail prefix clipped to window; the result
// partitions the window.
func (s *LiveSnapshot) tailRange(f aggregate.Func, window interval.Interval) (*Result, error) {
	return s.tailSpan(f, window)
}

func (s *LiveSnapshot) tailSpan(f aggregate.Func, span interval.Interval) (*Result, error) {
	if s.tailLen == 0 {
		return &Result{Func: f, Rows: []Row{{Interval: span, State: f.Zero()}}}, nil
	}
	ev := NewSweepRange(f, span)
	t := s.state.tail
	buf := make([]tuple.Tuple, 0, min(int(s.tailLen), BatchPage))
	for lo := int64(0); lo < s.tailLen; lo += int64(BatchPage) {
		hi := min(lo+int64(BatchPage), s.tailLen)
		buf = buf[:0]
		for i := lo; i < hi; i++ {
			buf = append(buf, tuple.MustNew(t.names[i], t.vals[i], t.starts[i], t.ends[i]))
		}
		if err := ev.AddBatch(buf); err != nil {
			return nil, err
		}
	}
	return ev.Finish()
}

// emptyResult is the zero-tuple result: one constant interval covering the
// whole time-line with the identity state.
func emptyResult(f aggregate.Func) *Result {
	return &Result{Func: f, Rows: []Row{{Interval: interval.Universe(), State: f.Zero()}}}
}

// mergeAll pairwise-merges full-timeline results into one, balanced like a
// tournament so that combining S segment results costs O(rows · log S)
// row visits instead of the left fold's O(rows · S). None of the inputs
// are mutated; with a single input it is returned as-is, so callers must
// treat the output as shared.
func mergeAll(f aggregate.Func, rs []*Result) *Result {
	return mergeAllSpan(f, rs, interval.Universe())
}

// mergeAllSpan is mergeAll over results that each partition span rather
// than the whole time-line; with no inputs the span carries the identity
// state.
func mergeAllSpan(f aggregate.Func, rs []*Result, span interval.Interval) *Result {
	switch len(rs) {
	case 0:
		return &Result{Func: f, Rows: []Row{{Interval: span, State: f.Zero()}}}
	case 1:
		return rs[0]
	}
	mid := len(rs) / 2
	return mergeResults(f, mergeAllSpan(f, rs[:mid], span), mergeAllSpan(f, rs[mid:], span))
}

// mergeResults combines two partitions of the same span into one: row
// boundaries are unioned and overlapping states merged with f.Merge, which
// is exact for disjoint tuple populations across all five aggregates
// (COUNT/SUM/AVG sum their counters; MIN/MAX take the extremum of the two
// sides' wedge-derived partials). Both inputs must partition the same
// range — [0, ∞] for full results, the query window for indexed range
// reads; the output partitions it too. Neither input is mutated.
func mergeResults(f aggregate.Func, a, b *Result) *Result {
	out := &Result{Func: f, Rows: make([]Row, 0, len(a.Rows)+len(b.Rows))}
	i, j := 0, 0
	cur := a.Rows[0].Interval.Start
	for i < len(a.Rows) && j < len(b.Rows) {
		ra, rb := a.Rows[i], b.Rows[j]
		end := min(ra.Interval.End, rb.Interval.End)
		out.Rows = append(out.Rows, Row{
			Interval: interval.MustNew(cur, end),
			State:    f.Merge(ra.State, rb.State),
		})
		if ra.Interval.End == end {
			i++
		}
		if rb.Interval.End == end {
			j++
		}
		if i >= len(a.Rows) || j >= len(b.Rows) {
			// Partitions of one span exhaust together; breaking here also
			// keeps the End+1 step from overflowing past ∞.
			break
		}
		cur = end + 1
	}
	return out
}
