// Package order quantifies and manipulates the sortedness of a temporal
// relation, implementing the two metrics of Kline & Snodgrass §5.2:
//
//   - k-orderedness: a relation is k-ordered when every tuple is at most k
//     positions from its position in the totally time-ordered relation
//     (sorted by start time, ties broken by end time). A totally ordered
//     relation is 0-ordered.
//
//   - k-ordered-percentage: Σᵢ i·nᵢ / (k·n), where nᵢ is the number of
//     tuples i positions out of order. 0 for a sorted relation; larger means
//     more disorder, up to 1 for maximal disorder at a given k.
//
// It also provides the controlled-disorder constructions used by the
// paper's experiments: pair swaps at a fixed distance (Table 2 rows 2–3),
// the staircase of displacements (Table 2 row 5), perturbation of a sorted
// relation to a target (k, percentage) pair (§6), and full shuffles.
package order

import (
	"fmt"
	"math/rand"
	"sort"

	"tempagg/internal/tuple"
)

// Displacements returns, for each tuple, how many positions it sits from its
// place in the totally time-ordered relation. Ties (identical intervals)
// keep their relative order, which assigns the minimal displacements.
func Displacements(ts []tuple.Tuple) []int {
	idx := make([]int, len(ts))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return ts[idx[a]].Less(ts[idx[b]])
	})
	disp := make([]int, len(ts))
	for rank, origin := range idx {
		d := rank - origin
		if d < 0 {
			d = -d
		}
		disp[origin] = d
	}
	return disp
}

// KOrderedness returns the minimal k for which the relation is k-ordered:
// the maximum displacement. A sorted (or empty) relation reports 0.
func KOrderedness(ts []tuple.Tuple) int {
	k := 0
	for _, d := range Displacements(ts) {
		if d > k {
			k = d
		}
	}
	return k
}

// IsKOrdered reports whether every tuple is at most k positions out of
// place.
func IsKOrdered(ts []tuple.Tuple, k int) bool {
	return KOrderedness(ts) <= k
}

// KOrderedPercentage computes the paper's disorder ratio for a given k:
// Σᵢ i·nᵢ / (k·n). It returns an error if k is not positive or if the
// relation is not actually k-ordered (some displacement exceeds k). An
// empty relation reports 0.
func KOrderedPercentage(ts []tuple.Tuple, k int) (float64, error) {
	if k <= 0 {
		return 0, fmt.Errorf("order: k must be positive, got %d", k)
	}
	if len(ts) == 0 {
		return 0, nil
	}
	sum := 0
	for i, d := range Displacements(ts) {
		if d > k {
			return 0, fmt.Errorf("order: relation is not %d-ordered: tuple %d is %d positions out of order", k, i, d)
		}
		sum += d
	}
	return float64(sum) / (float64(k) * float64(len(ts))), nil
}

// Shuffle returns a uniformly random permutation of ts (a copy; ts is not
// modified).
func Shuffle(ts []tuple.Tuple, seed int64) []tuple.Tuple {
	out := append([]tuple.Tuple(nil), ts...)
	r := rand.New(rand.NewSource(seed))
	r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// swapBlocks performs `count` disjoint swaps at exactly `distance` apart
// starting at position pos, in runs of at most `distance` adjacent swaps
// (a run of m ≤ distance swaps (c+j, c+j+distance) touches disjoint index
// sets). It returns the next free position.
func swapBlocks(out []tuple.Tuple, pos, count, distance int) (int, error) {
	for count > 0 {
		m := count
		if m > distance {
			m = distance
		}
		if pos+m+distance > len(out) {
			return 0, fmt.Errorf("order: ran out of tuples placing %d more swaps at distance %d (position %d of %d)",
				count, distance, pos, len(out))
		}
		for j := 0; j < m; j++ {
			out[pos+j], out[pos+j+distance] = out[pos+j+distance], out[pos+j]
		}
		pos += m + distance
		count -= m
	}
	return pos, nil
}

// SwapPairs swaps `pairs` disjoint pairs of tuples exactly `distance`
// positions apart, at deterministic locations, returning a copy. Applied to
// a sorted relation with unique intervals this displaces exactly 2·pairs
// tuples by `distance` each — the construction behind Table 2 rows 2–4.
func SwapPairs(ts []tuple.Tuple, pairs, distance int) ([]tuple.Tuple, error) {
	if distance <= 0 {
		return nil, fmt.Errorf("order: swap distance must be positive, got %d", distance)
	}
	if pairs < 0 {
		return nil, fmt.Errorf("order: pair count must be non-negative, got %d", pairs)
	}
	out := append([]tuple.Tuple(nil), ts...)
	if _, err := swapBlocks(out, 0, pairs, distance); err != nil {
		return nil, err
	}
	return out, nil
}

// Staircase displaces, for every d in 1..maxDistance, `perDistance` tuples
// by exactly d positions (perDistance must be even: displacements come from
// disjoint swaps). This is the construction of Table 2's final row: with
// perDistance=10 and maxDistance=100 over n=10000, 10 tuples are 1 place
// out of order, 10 are 2, …, 100 are 100 out of order.
func Staircase(ts []tuple.Tuple, perDistance, maxDistance int) ([]tuple.Tuple, error) {
	if perDistance <= 0 || perDistance%2 != 0 {
		return nil, fmt.Errorf("order: perDistance must be positive and even, got %d", perDistance)
	}
	if maxDistance <= 0 {
		return nil, fmt.Errorf("order: maxDistance must be positive, got %d", maxDistance)
	}
	swapsPer := perDistance / 2
	out := append([]tuple.Tuple(nil), ts...)
	c := 0
	for d := 1; d <= maxDistance; d++ {
		var err error
		c, err = swapBlocks(out, c, swapsPer, d)
		if err != nil {
			return nil, fmt.Errorf("order: staircase: %w", err)
		}
	}
	return out, nil
}

// PerturbToPercentage disorders a sorted relation to approximately the
// target k-ordered-percentage using disjoint swaps at distance exactly k,
// at pseudo-random positions — the paper's relation-generation step for the
// ordered-relation experiments (§6): "We generated a sorted relation, and
// then altered it according to various k-ordered and k-ordered-percentages."
//
// Each swap displaces two tuples by k, adding 2k to Σ i·nᵢ, so the achieved
// percentage is 2·swaps/n, quantized accordingly. The input must be sorted.
func PerturbToPercentage(ts []tuple.Tuple, k int, pct float64, seed int64) ([]tuple.Tuple, error) {
	if k <= 0 {
		return nil, fmt.Errorf("order: k must be positive, got %d", k)
	}
	if pct < 0 || pct > 1 {
		return nil, fmt.Errorf("order: percentage must be in [0,1], got %g", pct)
	}
	if !sort.SliceIsSorted(ts, func(i, j int) bool { return ts[i].Less(ts[j]) }) {
		return nil, fmt.Errorf("order: PerturbToPercentage requires a sorted relation")
	}
	out := append([]tuple.Tuple(nil), ts...)
	n := len(out)
	want := int(pct*float64(n)/2 + 0.5)
	if want == 0 {
		return out, nil
	}
	if k >= n {
		return nil, fmt.Errorf("order: k=%d is not smaller than the relation size %d", k, n)
	}
	r := rand.New(rand.NewSource(seed))
	used := make([]bool, n)
	candidates := r.Perm(n - k)
	done := 0
	for _, i := range candidates {
		if done == want {
			break
		}
		if used[i] || used[i+k] {
			continue
		}
		out[i], out[i+k] = out[i+k], out[i]
		used[i], used[i+k] = true, true
		done++
	}
	if done < want {
		return nil, fmt.Errorf("order: could only place %d of %d swaps at distance %d over %d tuples",
			done, want, k, n)
	}
	return out, nil
}
