// Fixture for atomicmix: fields touched by sync/atomic functions must not
// also be accessed with plain loads and stores.
package fixture

import "sync/atomic"

func bump(c *counters) {
	atomic.AddInt64(&c.hits, 1) // ok: the atomic access itself
	atomic.StoreUint32(&c.mode, 1)
}

func racyRead(c *counters) int64 {
	return c.hits // want `field hits is accessed atomically \(e\.g\. line \d+\) but read or written plainly here`
}

func racyWrite(c *counters) {
	c.hits = 0 // want `field hits is accessed atomically`
}

func racyModeRead(c *counters) uint32 {
	return c.mode // want `field mode is accessed atomically`
}

func cleanAtomicRead(c *counters) int64 {
	return atomic.LoadInt64(&c.hits) // ok: atomic access
}

func plainOnlyField(c *counters) int64 {
	c.total++ // ok: total is never accessed atomically anywhere
	return c.total
}

func newCounters() *counters {
	c := &counters{}
	c.hits = 42 // ok: c is a fresh local, unpublished — initialization idiom
	return c
}

func newCountersViaNew() *counters {
	c := new(counters)
	c.mode = 1 // ok: unpublished
	return c
}

func paramIsPublished(c *counters, published *counters) {
	published.hits = 1 // want `field hits is accessed atomically`
	_ = c
}

func publishTail(t *liveTail, v int64) {
	t.vals = append(t.vals, v) // ok: column data guarded by the watermark
	atomic.AddInt64(&t.n, 1)   // ok: the atomic publication itself
}

func snapshotWatermark(t *liveTail) int64 {
	return atomic.LoadInt64(&t.n) // ok: atomic access
}

func tornWatermarkRead(t *liveTail) int64 {
	return t.n // want `field n is accessed atomically`
}

func tornSealWrite(t *liveTail) {
	atomic.StoreUint32(&t.sealed, 1)
	t.sealed = 0 // want `field sealed is accessed atomically`
}
