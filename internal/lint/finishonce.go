package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// NewFinishOnce returns the finishonce analyzer.
//
// The Evaluator contract (internal/core/evaluator.go) says "the evaluator
// must not be reused" after Finish: the aggregation tree has been walked
// and partially reclaimed, the k-ordered tree's collected prefix is gone,
// so a later Add would fold tuples into a structure that no longer
// represents the relation — silently wrong results, not a crash. The check
// is flow-insensitive: within one function body, a call to Add (or a
// second Finish) on the same evaluator value textually after a Finish call
// is flagged, unless the variable is reassigned in between.
//
// With strictStats, Stats calls after Finish are flagged too. The default
// leaves them legal because the documented contract explicitly permits
// Stats "at any point" and reading the final PeakNodes after Finish is the
// blessed reporting pattern (core.Run, partition workers, the benchmarks).
func NewFinishOnce(strictStats bool) *Analyzer {
	return &Analyzer{
		Name: "finishonce",
		Doc: "flag Add/AddBatch (and with -strict-stats, Stats) calls on a " +
			"core.Evaluator after Finish in the same function, and double Finish",
		Run: func(pass *Pass) error { return runFinishOnce(pass, strictStats) },
	}
}

// evEvent is one use of an evaluator value inside a function body.
type evEvent struct {
	pos    token.Pos
	method string // "Add", "Finish", "Stats", or "" for a reassignment
	expr   string // receiver rendering, for the message
}

func runFinishOnce(pass *Pass, strictStats bool) error {
	iface := evaluatorInterface(pass.Pkg)
	if iface == nil {
		return nil // package cannot name core.Evaluator values
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkFinishOnceBody(pass, iface, fn.Body, strictStats)
				}
			case *ast.FuncLit:
				checkFinishOnceBody(pass, iface, fn.Body, strictStats)
			}
			return true
		})
	}
	return nil
}

// evaluatorInterface finds core.Evaluator in pkg's import closure.
func evaluatorInterface(pkg *types.Package) *types.Interface {
	core := findImport(pkg, corePkgPath, map[*types.Package]bool{})
	if core == nil {
		return nil
	}
	obj := core.Scope().Lookup("Evaluator")
	if obj == nil {
		return nil
	}
	iface, _ := obj.Type().Underlying().(*types.Interface)
	return iface
}

func findImport(pkg *types.Package, path string, seen map[*types.Package]bool) *types.Package {
	if pkg == nil || seen[pkg] {
		return nil
	}
	seen[pkg] = true
	if pkg.Path() == path {
		return pkg
	}
	for _, imp := range pkg.Imports() {
		if found := findImport(imp, path, seen); found != nil {
			return found
		}
	}
	return nil
}

// checkFinishOnceBody analyzes one function body, not descending into
// nested function literals (each gets its own pass; a goroutine body is a
// separate flow).
func checkFinishOnceBody(pass *Pass, iface *types.Interface, body *ast.BlockStmt, strictStats bool) {
	events := map[string][]evEvent{} // receiver key → ordered uses
	tainted := map[string]bool{}     // receiver key → address taken, skip

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if key, ok := receiverKey(pass, n.X); ok {
					tainted[key] = true
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if key, ok := receiverKey(pass, lhs); ok {
					events[key] = append(events[key],
						evEvent{pos: lhs.Pos(), method: "", expr: exprString(lhs)})
				}
			}
		case *ast.CallExpr:
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			method := sel.Sel.Name
			if method != "Add" && method != "AddBatch" && method != "Finish" && method != "Stats" {
				return true
			}
			tv, ok := pass.TypesInfo.Types[sel.X]
			if !ok || !isEvaluatorType(tv.Type, iface) {
				return true
			}
			key, ok := receiverKey(pass, sel.X)
			if !ok {
				return true
			}
			events[key] = append(events[key],
				evEvent{pos: n.Pos(), method: method, expr: exprString(sel.X)})
		}
		return true
	}
	ast.Inspect(body, walk)

	for key, evs := range events {
		if tainted[key] {
			continue // address escaped; the value may be swapped out
		}
		sort.Slice(evs, func(i, j int) bool { return evs[i].pos < evs[j].pos })
		finished := false
		for _, e := range evs {
			switch e.method {
			case "":
				finished = false // reassigned: a fresh evaluator
			case "Finish":
				if finished {
					pass.Reportf(e.pos, "Finish called twice on %s "+
						"(evaluator must not be reused after Finish)", e.expr)
				}
				finished = true
			case "Add", "AddBatch":
				if finished {
					pass.Reportf(e.pos, "%s called on %s after Finish "+
						"(evaluator must not be reused after Finish)", e.method, e.expr)
				}
			case "Stats":
				if finished && strictStats {
					pass.Reportf(e.pos, "Stats called on %s after Finish "+
						"(strict-stats: snapshot Stats before Finish)", e.expr)
				}
			}
		}
	}
}

// isEvaluatorType reports whether a value of type t can be a
// core.Evaluator: the interface itself, or a concrete type whose (pointer)
// method set implements it.
func isEvaluatorType(t types.Type, iface *types.Interface) bool {
	if t == nil {
		return false
	}
	if types.AssignableTo(t, iface) {
		return true
	}
	if _, ok := types.Unalias(t).(*types.Pointer); !ok {
		return types.AssignableTo(types.NewPointer(t), iface)
	}
	return false
}

// receiverKey identifies the evaluator value a method is called on: the
// object for a plain variable, the rendered path for a field selection.
// Calls on arbitrary expressions (function results, index expressions)
// return ok=false — there is no stable identity to track.
func receiverKey(pass *Pass, e ast.Expr) (string, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[e]
		if obj == nil {
			obj = pass.TypesInfo.Defs[e]
		}
		if obj == nil {
			return "", false
		}
		return fmt.Sprintf("obj:%p", obj), true
	case *ast.SelectorExpr:
		if base, ok := receiverKey(pass, e.X); ok {
			return base + "." + e.Sel.Name, true
		}
	}
	return "", false
}

// exprString renders a receiver expression for diagnostics.
func exprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	}
	return "evaluator"
}
