package core

import (
	"errors"
	"math/rand"
	"testing"

	"tempagg/internal/aggregate"
	"tempagg/internal/interval"
	"tempagg/internal/tuple"
)

// closeLive closes ev for tests that go on to exercise the closed state.
// Routing Close through a helper keeps finishonce's per-body analysis out
// of the intentional misuse these tests perform; production code calls
// Close directly and is checked.
func closeLive(ev *LiveEvaluator) {
	if err := ev.Close(); err != nil {
		panic(err)
	}
}

func TestLiveSealBoundaries(t *testing.T) {
	ev := NewLive(LiveOptions{SegmentSize: 8})
	defer closeLive(ev)
	r := rand.New(rand.NewSource(90))
	for i, tu := range randomTuples(r, 20, 1000) {
		if err := ev.Add(tu); err != nil {
			t.Fatal(err)
		}
		snap, err := ev.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if got, want := snap.Seq(), int64(i+1); got != want {
			t.Fatalf("after %d adds: seq %d, want %d", i+1, got, want)
		}
	}
	if got := ev.Seals(); got != 2 {
		t.Fatalf("Seals() = %d, want 2 (20 tuples / segment size 8)", got)
	}
	snap, err := ev.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	ep := snap.Epoch()
	if ep.Seq != 20 || ep.Segments != 2 || ep.Tail != 4 {
		t.Fatalf("epoch = %+v, want {Seq:20 Segments:2 Tail:4}", ep)
	}
	// A full tail seals immediately: no epoch ever shows Tail == SegmentSize.
	for i := 0; i < 4; i++ {
		if err := ev.Add(tuple.MustNew("x", 1, 0, 10)); err != nil {
			t.Fatal(err)
		}
	}
	snap, err = ev.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if ep := snap.Epoch(); ep.Segments != 3 || ep.Tail != 0 {
		t.Fatalf("after filling the tail: epoch = %+v, want 3 sealed and an empty tail", ep)
	}
}

// TestLiveSnapshotIsolation: a snapshot keeps answering for its epoch no
// matter how far ingestion advances past it.
func TestLiveSnapshotIsolation(t *testing.T) {
	r := rand.New(rand.NewSource(91))
	ts := randomTuples(r, 100, 2000)
	ev := NewLive(LiveOptions{SegmentSize: 16})
	defer closeLive(ev)
	if err := ev.AddBatch(ts[:40]); err != nil {
		t.Fatal(err)
	}
	snap, err := ev.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.AddBatch(ts[40:]); err != nil {
		t.Fatal(err)
	}
	for _, kind := range aggregate.Kinds() {
		f := aggregate.For(kind)
		got, err := snap.Result(f)
		if err != nil {
			t.Fatal(err)
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if want := Reference(f, ts[:40]); !got.Equal(want) {
			t.Fatalf("%v: snapshot drifted after later ingestion:\ngot:\n%s\nwant:\n%s", kind, got, want)
		}
	}
}

// TestLiveOldSnapshotAfterMemoAdvance: reading a newer snapshot first moves
// the shared prefix memo past an older snapshot's segment set; the older
// snapshot must then take the direct-merge path and still be exact.
func TestLiveOldSnapshotAfterMemoAdvance(t *testing.T) {
	r := rand.New(rand.NewSource(92))
	ts := randomTuples(r, 96, 2000)
	ev := NewLive(LiveOptions{SegmentSize: 8})
	defer closeLive(ev)
	if err := ev.AddBatch(ts[:30]); err != nil {
		t.Fatal(err)
	}
	old, err := ev.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.AddBatch(ts[30:]); err != nil {
		t.Fatal(err)
	}
	fresh, err := ev.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range aggregate.Kinds() {
		f := aggregate.For(kind)
		// Advance the memo to the full segment set first.
		got, err := fresh.Result(f)
		if err != nil {
			t.Fatal(err)
		}
		if want := Reference(f, ts); !got.Equal(want) {
			t.Fatalf("%v: fresh snapshot differs from oracle", kind)
		}
		got, err = old.Result(f)
		if err != nil {
			t.Fatal(err)
		}
		if want := Reference(f, ts[:30]); !got.Equal(want) {
			t.Fatalf("%v: old snapshot differs from oracle after memo advance:\ngot:\n%s\nwant:\n%s",
				kind, got, want)
		}
	}
}

// TestLiveAtRange: point and range reads agree with the snapshot's full
// result and with a direct Reference evaluation.
func TestLiveAtRange(t *testing.T) {
	r := rand.New(rand.NewSource(93))
	ts := randomTuples(r, 64, 1000)
	ev := NewLive(LiveOptions{SegmentSize: 16})
	defer closeLive(ev)
	if err := ev.AddBatch(ts); err != nil {
		t.Fatal(err)
	}
	snap, err := ev.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range aggregate.Kinds() {
		f := aggregate.For(kind)
		full, err := snap.Result(f)
		if err != nil {
			t.Fatal(err)
		}
		want := Reference(f, ts)
		for _, at := range []interval.Time{0, 1, 499, 1000, 1500} {
			got, err := snap.At(f, at)
			if err != nil {
				t.Fatal(err)
			}
			if wv, ok := want.At(at); !ok || got != wv {
				t.Fatalf("%v: At(%d) = %v, want %v", kind, at, got, wv)
			}
		}
		window := interval.MustNew(200, 800)
		ranged, err := snap.Range(f, window)
		if err != nil {
			t.Fatal(err)
		}
		if err := ranged.ValidatePartition(window.Start, window.End); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		clipped := &Result{Func: f, Rows: append([]Row(nil), want.Rows...)}
		if !ranged.Equal(clipped.Clip(window)) {
			t.Fatalf("%v: Range differs from clipped oracle", kind)
		}
		// Range must not have corrupted the memoized full result.
		again, err := snap.Result(f)
		if err != nil {
			t.Fatal(err)
		}
		if !again.Equal(full) {
			t.Fatalf("%v: Range mutated the snapshot's memoized result", kind)
		}
	}
}

func TestLiveCloseSemantics(t *testing.T) {
	ev := NewLive(LiveOptions{SegmentSize: 4})
	if err := ev.AddBatch([]tuple.Tuple{
		tuple.MustNew("a", 1, 0, 10),
		tuple.MustNew("b", 2, 5, 15),
	}); err != nil {
		t.Fatal(err)
	}
	snap, err := ev.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	closeLive(ev)
	closeLive(ev) // idempotent
	if err := ev.Add(tuple.MustNew("c", 3, 0, 1)); !errors.Is(err, ErrLiveClosed) {
		t.Fatalf("Add after Close: err = %v, want ErrLiveClosed", err)
	}
	if err := ev.AddBatch(nil); !errors.Is(err, ErrLiveClosed) {
		t.Fatalf("AddBatch after Close: err = %v, want ErrLiveClosed", err)
	}
	if _, err := ev.Snapshot(); !errors.Is(err, ErrLiveClosed) {
		t.Fatalf("Snapshot after Close: err = %v, want ErrLiveClosed", err)
	}
	// The pre-Close snapshot stays readable: it holds only immutable state.
	f := aggregate.For(aggregate.Sum)
	got, err := snap.Result(f)
	if err != nil {
		t.Fatal(err)
	}
	if want := Reference(f, []tuple.Tuple{
		tuple.MustNew("a", 1, 0, 10),
		tuple.MustNew("b", 2, 5, 15),
	}); !got.Equal(want) {
		t.Fatalf("snapshot after Close:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if live := ev.Stats().LiveNodes; live != 0 {
		t.Fatalf("LiveNodes after Close = %d, want 0", live)
	}
}

func TestLiveStats(t *testing.T) {
	ev := NewLive(LiveOptions{SegmentSize: 8})
	defer closeLive(ev)
	r := rand.New(rand.NewSource(94))
	ts := randomTuples(r, 25, 500)
	if err := ev.AddBatch(ts); err != nil {
		t.Fatal(err)
	}
	s := ev.Stats()
	if s.Tuples != 25 {
		t.Fatalf("Tuples = %d, want 25", s.Tuples)
	}
	// Cost model: one arrival and one departure event per resident tuple.
	if s.LiveNodes != 50 || s.PeakNodes != 50 {
		t.Fatalf("LiveNodes/PeakNodes = %d/%d, want 50/50", s.LiveNodes, s.PeakNodes)
	}
}

func TestLiveValidateError(t *testing.T) {
	ev := NewLive(LiveOptions{})
	defer closeLive(ev)
	bad := tuple.MustNew("x", 0, 3, 10)
	bad.Valid.Start, bad.Valid.End = 10, 3 // inverted on purpose: AddBatch must reject it
	err := ev.AddBatch([]tuple.Tuple{tuple.MustNew("ok", 1, 0, 5), bad})
	if err == nil {
		t.Fatal("AddBatch accepted an inverted interval")
	}
	snap, serr := ev.Snapshot()
	if serr != nil {
		t.Fatal(serr)
	}
	// The valid prefix before the failing tuple is admitted, as under Add.
	if snap.Seq() != 1 {
		t.Fatalf("seq after failed batch = %d, want 1", snap.Seq())
	}
}

func TestLiveGaugeHook(t *testing.T) {
	ev := NewLive(LiveOptions{SegmentSize: 4})
	defer closeLive(ev)
	var gauges []LiveGauges
	ev.SetGaugeHook(func(g LiveGauges) { gauges = append(gauges, g) })
	r := rand.New(rand.NewSource(95))
	for _, tu := range randomTuples(r, 10, 300) {
		if err := ev.Add(tu); err != nil {
			t.Fatal(err)
		}
	}
	if len(gauges) != 10 {
		t.Fatalf("hook ran %d times, want 10 (once per AddBatch)", len(gauges))
	}
	last := LiveGauges{}
	for i, g := range gauges {
		if g.Seq < last.Seq || g.Segments < last.Segments {
			t.Fatalf("gauge %d went backwards: %+v after %+v", i, g, last)
		}
		if g.Tail >= 4 {
			t.Fatalf("gauge %d: tail %d at segment size 4 (seal must precede publish)", i, g.Tail)
		}
		last = g
	}
	if last.Seq != 10 || last.Segments != 2 || last.Tail != 2 {
		t.Fatalf("final gauges = %+v, want {Seq:10 Segments:2 Tail:2}", last)
	}
}

// TestLiveSnapshotTuples: the oracle's entry point — Tuples must return
// exactly the admitted prefix, in ingestion order.
func TestLiveSnapshotTuples(t *testing.T) {
	r := rand.New(rand.NewSource(96))
	ts := randomTuples(r, 50, 800)
	ev := NewLive(LiveOptions{SegmentSize: 8})
	defer closeLive(ev)
	for i, tu := range ts {
		if err := ev.Add(tu); err != nil {
			t.Fatal(err)
		}
		snap, err := ev.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		got := snap.Tuples()
		if len(got) != i+1 {
			t.Fatalf("after %d adds: %d tuples", i+1, len(got))
		}
		for j, tu := range got {
			if tu != ts[j] {
				t.Fatalf("tuple %d = %v, want %v", j, tu, ts[j])
			}
		}
	}
}

func TestLiveEmpty(t *testing.T) {
	ev := NewLive(LiveOptions{})
	defer closeLive(ev)
	snap, err := ev.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Seq() != 0 {
		t.Fatalf("empty snapshot seq = %d", snap.Seq())
	}
	for _, kind := range aggregate.Kinds() {
		f := aggregate.For(kind)
		got, err := snap.Result(f)
		if err != nil {
			t.Fatal(err)
		}
		if want := Reference(f, nil); !got.Equal(want) {
			t.Fatalf("%v: empty snapshot differs from empty oracle", kind)
		}
	}
}
