package relation

import (
	"math/rand"
	"path/filepath"
	"testing"

	"tempagg/internal/tuple"
)

func TestExternalSortSmallMemory(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.rel")
	out := filepath.Join(dir, "out.rel")

	r := rand.New(rand.NewSource(61))
	rel := New("r")
	const n = 5000
	for i := 0; i < n; i++ {
		s := r.Int63n(1_000_000)
		rel.Append(tuple.MustNew("t", int64(i), s, s+r.Int63n(1000)))
	}
	if err := WriteFile(in, rel); err != nil {
		t.Fatal(err)
	}
	// 257 tuples per run forces ~20 runs and a real k-way merge.
	if err := ExternalSort(in, out, 257); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != n {
		t.Fatalf("sorted file has %d tuples, want %d", got.Len(), n)
	}
	if !got.IsSorted() {
		t.Fatal("output not sorted")
	}
	// Same multiset: the Value field is a unique id here.
	seen := make(map[int64]bool, n)
	for _, tu := range got.Tuples {
		if seen[tu.Value] {
			t.Fatalf("duplicate id %d after sort", tu.Value)
		}
		seen[tu.Value] = true
	}
	if len(seen) != n {
		t.Fatalf("lost tuples: %d ids", len(seen))
	}
	// The header must carry the sorted flag so later scans exploit it.
	sc, err := Open(out, ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	if !sc.Sorted() {
		t.Fatal("sorted flag missing")
	}
}

func TestExternalSortStable(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.rel")
	out := filepath.Join(dir, "out.rel")
	rel := New("r")
	// Equal intervals: input order must be preserved (stability) even
	// across run boundaries.
	for i := 0; i < 10; i++ {
		rel.Append(tuple.MustNew("t", int64(i), 5, 9))
	}
	if err := WriteFile(in, rel); err != nil {
		t.Fatal(err)
	}
	if err := ExternalSort(in, out, 3); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	for i, tu := range got.Tuples {
		if tu.Value != int64(i) {
			t.Fatalf("stability violated at %d: id %d", i, tu.Value)
		}
	}
}

func TestExternalSortEmptyAndSingleRun(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.rel")
	out := filepath.Join(dir, "out.rel")
	if err := WriteFile(in, New("empty")); err != nil {
		t.Fatal(err)
	}
	if err := ExternalSort(in, out, 100); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatalf("empty sort produced %d tuples", got.Len())
	}

	// Single run (memTuples > n), including the default budget.
	if err := WriteFile(in, Employed()); err != nil {
		t.Fatal(err)
	}
	if err := ExternalSort(in, out, 0); err != nil {
		t.Fatal(err)
	}
	got, err = ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsSorted() || got.Len() != 4 {
		t.Fatalf("single-run sort wrong: %d tuples, sorted=%t", got.Len(), got.IsSorted())
	}
}

func TestExternalSortMissingInput(t *testing.T) {
	dir := t.TempDir()
	if err := ExternalSort(filepath.Join(dir, "missing.rel"),
		filepath.Join(dir, "out.rel"), 10); err == nil {
		t.Fatal("missing input must fail")
	}
}
