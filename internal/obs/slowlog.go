package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// SlowLog writes one structured JSON line per query whose end-to-end
// duration reaches the threshold. Each line is a slowEntry: the timestamp,
// duration, query text, chosen algorithm, the evaluator-counter snapshot,
// and the error if the query failed. A nil *SlowLog is the disabled state.
type SlowLog struct {
	threshold time.Duration

	mu sync.Mutex
	w  io.Writer
}

// NewSlowLog returns a slow-query log writing to w for queries at or over
// threshold. A non-positive threshold logs every query (useful in tests and
// when diagnosing a live system).
func NewSlowLog(w io.Writer, threshold time.Duration) *SlowLog {
	return &SlowLog{w: w, threshold: threshold}
}

// Threshold reports the configured slow-query threshold.
func (l *SlowLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	return l.threshold
}

// slowEntry is the wire form of one slow-query log line.
type slowEntry struct {
	Time      time.Time     `json:"time"`
	Duration  time.Duration `json:"duration_ns"`
	Query     string        `json:"query"`
	Algorithm string        `json:"algorithm,omitempty"`
	Plan      string        `json:"plan,omitempty"`
	Stats     EvalCounters  `json:"stats"`
	Err       string        `json:"error,omitempty"`
}

// Record writes the log line for a finished trace if it is slow enough.
// It reports whether the trace crossed the threshold; when it did but the
// write failed, logged is still true and err carries the write failure —
// callers must not drop it (the errdrop analyzer enforces this).
func (l *SlowLog) Record(tr *QueryTrace) (logged bool, err error) {
	if l == nil || l.w == nil || tr == nil || tr.Duration < l.threshold {
		return false, nil
	}
	line, err := json.Marshal(slowEntry{
		Time:      tr.Start,
		Duration:  tr.Duration,
		Query:     tr.Query,
		Algorithm: tr.Algorithm,
		Plan:      tr.Plan,
		Stats:     tr.Stats,
		Err:       tr.Err,
	})
	if err != nil {
		return true, fmt.Errorf("obs: slow log: %w", err)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := l.w.Write(append(line, '\n')); err != nil {
		return true, fmt.Errorf("obs: slow log: %w", err)
	}
	return true, nil
}
