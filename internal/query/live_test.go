package query

import (
	"strings"
	"testing"

	"tempagg/internal/aggregate"
	"tempagg/internal/core"
	"tempagg/internal/interval"
	"tempagg/internal/obs"
	"tempagg/internal/relation"
	"tempagg/internal/tuple"
)

func TestParseLive(t *testing.T) {
	for _, sql := range []string{
		"SELECT COUNT(Name) FROM hot LIVE",
		"SELECT COUNT(Name), SUM(Salary) FROM hot LIVE",
		"SELECT MAX(Salary) FROM hot LIVE VALID OVERLAPS 10 200",
		"SELECT AVG(Salary) FROM hot LIVE AT 42",
		"select min(salary) from hot live",
	} {
		q, err := Parse(sql)
		if err != nil {
			t.Fatalf("%q: %v", sql, err)
		}
		if !q.Live {
			t.Fatalf("%q: Live not set", sql)
		}
		// Canonical form round-trips — the FuzzParse invariant.
		rt, err := Parse(q.String())
		if err != nil {
			t.Fatalf("%q → %q: %v", sql, q.String(), err)
		}
		if !rt.Live || rt.String() != q.String() {
			t.Fatalf("%q: round trip %q != %q", sql, rt.String(), q.String())
		}
	}
}

func TestParseLiveRejections(t *testing.T) {
	for _, tc := range []struct{ sql, wantErr string }{
		{"EXPLAIN SELECT COUNT(Name) FROM hot LIVE", "EXPLAIN is not supported"},
		{"EXPLAIN ANALYZE SELECT COUNT(Name) FROM hot LIVE", "EXPLAIN is not supported"},
		{"SELECT Name, COUNT(Name) FROM hot LIVE GROUP BY Name", "GROUP BY is not supported"},
		{"SELECT COUNT(Name) FROM hot LIVE WHERE Salary > 3", "WHERE is not supported"},
		{"SELECT COUNT(Name) FROM hot LIVE GROUP BY SPAN 10", "span grouping is not supported"},
		{"SELECT COUNT(Name) FROM hot LIVE USING SWEEP", "USING is not supported"},
		{"SELECT COUNT(DISTINCT Name) FROM hot LIVE", "DISTINCT is not supported"},
	} {
		_, err := Parse(tc.sql)
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%q: err = %v, want %q", tc.sql, err, tc.wantErr)
		}
	}
}

// TestExecuteRejectsLive: the static-relation path must refuse LIVE queries
// with a clear error instead of silently reading a file — also the
// FuzzExecute guard.
func TestExecuteRejectsLive(t *testing.T) {
	rel := relation.New("hot")
	rel.Append(tuple.MustNew("a", 1, 0, 5))
	q, err := Parse("SELECT COUNT(Name) FROM hot LIVE")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(q, rel, nil); err == nil || !strings.Contains(err.Error(), "not a live relation") {
		t.Fatalf("err = %v, want a not-a-live-relation error", err)
	}
}

func liveFixture(t *testing.T) (*core.LiveEvaluator, []tuple.Tuple) {
	t.Helper()
	ts := []tuple.Tuple{
		tuple.MustNew("a", 10, 0, 20),
		tuple.MustNew("b", 5, 10, 30),
		tuple.MustNew("c", -3, 15, interval.Forever),
		tuple.MustNew("d", 7, 25, 40),
	}
	ev := core.NewLive(core.LiveOptions{SegmentSize: 2})
	if err := ev.AddBatch(ts); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := ev.Close(); err != nil {
			t.Error(err)
		}
	})
	return ev, ts
}

func TestExecuteLive(t *testing.T) {
	ev, ts := liveFixture(t)
	snap, err := ev.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	q, err := Parse("SELECT COUNT(Name), SUM(Salary), AVG(Salary), MIN(Salary), MAX(Salary) FROM hot LIVE")
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewQueryTrace(q.String())
	qr, err := ExecuteLive(q, snap, tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(qr.Groups) != 1 || len(qr.Groups[0].Results) != 5 {
		t.Fatalf("groups/results = %d/%d", len(qr.Groups), len(qr.Groups[0].Results))
	}
	if !qr.Plan.Live || qr.Plan.Algorithm() != "live-snapshot" {
		t.Fatalf("plan = %+v", qr.Plan)
	}
	for i, kind := range aggregate.Kinds() {
		want := core.Reference(aggregate.For(kind), ts)
		if got := qr.Groups[0].Results[i]; !got.Equal(want) {
			t.Fatalf("%v:\ngot:\n%s\nwant:\n%s", kind, got, want)
		}
	}
	// The epoch's tuples are charged once, to the first stats slot.
	if qr.Groups[0].Stats.Tuples != len(ts) {
		t.Fatalf("Stats.Tuples = %d, want %d", qr.Groups[0].Stats.Tuples, len(ts))
	}
	// The snapshot read is a span with epoch attributes.
	var found bool
	for _, sp := range tr.Spans {
		if sp.Name == "live-snapshot-read" {
			found = true
			if sp.Attrs["epoch_seq"] != "4" {
				t.Fatalf("span attrs = %v", sp.Attrs)
			}
		}
	}
	if !found {
		t.Fatalf("no live-snapshot-read span in %+v", tr.Spans)
	}
	if tr.Algorithm != "live-snapshot" {
		t.Fatalf("trace algorithm = %q", tr.Algorithm)
	}
}

func TestExecuteLiveAtAndWindow(t *testing.T) {
	ev, ts := liveFixture(t)
	snap, err := ev.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	f := aggregate.For(aggregate.Sum)
	want := core.Reference(f, ts)

	q, err := Parse("SELECT SUM(Salary) FROM hot LIVE AT 12")
	if err != nil {
		t.Fatal(err)
	}
	qr, err := ExecuteLive(q, snap, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := qr.Groups[0].Result
	if len(res.Rows) != 1 || res.Rows[0].Interval != interval.At(12) {
		t.Fatalf("AT result shape: %s", res)
	}
	gotV, ok := res.At(12)
	wantV, _ := want.At(12)
	if !ok || gotV != wantV {
		t.Fatalf("AT 12 = %v, want %v", gotV, wantV)
	}

	q, err = Parse("SELECT SUM(Salary) FROM hot LIVE VALID OVERLAPS 12 28")
	if err != nil {
		t.Fatal(err)
	}
	qr, err = ExecuteLive(q, snap, nil)
	if err != nil {
		t.Fatal(err)
	}
	window := interval.MustNew(12, 28)
	if err := qr.Groups[0].Result.ValidatePartition(window.Start, window.End); err != nil {
		t.Fatal(err)
	}
	clipped := &core.Result{Func: f, Rows: append([]core.Row(nil), want.Rows...)}
	if !qr.Groups[0].Result.Equal(clipped.Clip(window)) {
		t.Fatal("windowed live read differs from clipped oracle")
	}
}

func TestExecuteLiveRequiresLiveQuery(t *testing.T) {
	ev, _ := liveFixture(t)
	snap, err := ev.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	q, err := Parse("SELECT COUNT(Name) FROM hot")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExecuteLive(q, snap, nil); err == nil {
		t.Fatal("ExecuteLive accepted a non-LIVE query")
	}
}
