package core

import (
	"fmt"

	"tempagg/internal/aggregate"
	"tempagg/internal/interval"
	"tempagg/internal/obs"
	"tempagg/internal/tuple"
)

// KTree implements the k-ordered aggregation tree (§5.3): the aggregation
// tree plus garbage collection of finished constant intervals, applicable
// when the relation is k-ordered (every tuple at most k positions from its
// place in the totally time-ordered relation) — including retroactively
// bounded relations, which are k-ordered for uniform arrival rates (§6).
//
// The evaluator keeps the start times of the last 2k+1 tuples. When tuple i
// arrives, the start time of tuple i−(2k+1) becomes the gc-threshold: every
// future tuple must start at or after it, so constant intervals ending
// before the threshold are finished. They are emitted to the result
// immediately and their nodes reclaimed — first whole left subtrees at the
// root (Figure 5.a), then leftmost leaves one at a time (Figure 5.b). GC
// only ever removes the earliest consecutive part of the tree, so no hole is
// created in the constant intervals and emission stays in time order.
type KTree struct {
	noCopy noCopy

	f aggregate.Func
	k int

	ar     arena[treeNode]
	root   *treeNode
	rootLo interval.Time // earliest instant still represented in the tree

	window []interval.Time // ring of the last 2k+1 tuple start times
	wpos   int

	emitted []Row
	es      obs.EvalSink
	stats   statsCell
}

var _ Evaluator = (*KTree)(nil)

// NewKOrderedTree returns a k-ordered aggregation-tree evaluator. k must be
// non-negative; the paper's headline strategy is sort-then-k=1, and k=0
// demands a totally ordered input.
func NewKOrderedTree(f aggregate.Func, k int) (*KTree, error) {
	if k < 0 {
		return nil, fmt.Errorf("core: k-ordered tree requires k >= 0, got %d", k)
	}
	t := &KTree{
		f:      f,
		k:      k,
		ar:     newArena[treeNode](treeSlabPool),
		rootLo: interval.Origin,
		window: make([]interval.Time, 0, 2*k+1),
	}
	t.root = t.ar.alloc()
	t.stats.init(1)
	return t, nil
}

func (t *KTree) setSink(s obs.Sink) {
	if s == nil {
		return // nil Sink: instrumentation disabled (obs.Sink contract)
	}
	t.es = s.Evaluator(KOrderedTree.String())
	t.es.NodesAllocated(1) // the initial universe leaf
}

// K reports the orderedness bound the evaluator was built with.
func (t *KTree) K() int { return t.k }

// Add inserts one tuple and garbage-collects finished constant intervals.
// It returns an error if the input violates the declared k-orderedness —
// i.e. the tuple overlaps a constant interval that was already emitted.
func (t *KTree) Add(tu tuple.Tuple) error {
	grown, err := t.addOne(tu)
	if err != nil {
		return err
	}
	if t.es != nil {
		t.es.TuplesProcessed(1)
		t.es.NodesAllocated(grown)
	}
	return nil
}

// AddBatch absorbs one page of tuples. Stats and garbage collection advance
// tuple by tuple exactly as under Add (so peak-node accounting is identical);
// only the sink's tuple/allocation counters are published once per page.
func (t *KTree) AddBatch(ts []tuple.Tuple) error {
	grown, added := 0, 0
	var err error
	for i := range ts {
		var g int
		if g, err = t.addOne(ts[i]); err != nil {
			break
		}
		grown += g
		added++
	}
	if t.es != nil {
		t.es.TuplesProcessed(added)
		t.es.NodesAllocated(grown)
	}
	return err
}

// addOne is the shared per-tuple path behind Add and AddBatch: insert,
// update stats, slide the window, collect. It returns the node growth so
// the caller can publish it to the sink at its own granularity.
func (t *KTree) addOne(tu tuple.Tuple) (int, error) {
	if err := tu.Valid.Validate(); err != nil {
		return 0, err
	}
	s, e := tu.Valid.Start, tu.Valid.End
	if s < t.rootLo {
		return 0, fmt.Errorf(
			"core: relation is not %d-ordered: tuple %v starts before already-emitted instant %s",
			t.k, tu, interval.FormatTime(t.rootLo))
	}
	grown := treeInsert(t.f, &t.ar, t.root, t.rootLo, interval.Forever, s, e, tu.Value)
	t.stats.grow(grown)
	t.stats.addTuple()

	// Slide the 2k+1 window; once it is full, the evicted start time is the
	// gc-threshold (the start of the tuple 2k+1 positions back).
	if len(t.window) < cap(t.window) {
		t.window = append(t.window, s)
		return grown, nil
	}
	threshold := t.window[t.wpos]
	t.window[t.wpos] = s
	t.wpos++
	if t.wpos == len(t.window) {
		t.wpos = 0
	}
	t.collect(threshold)
	return grown, nil
}

// collect reclaims every constant interval ending before threshold.
func (t *KTree) collect(threshold interval.Time) {
	if t.es != nil {
		t.es.GCThreshold(int64(threshold))
	}
	// Phase 1 (Figure 5.a): while the root's entire left half lies before
	// the threshold, emit it, fold the root's contribution into the right
	// child, and promote the right child. The emitted subtree and the old
	// root go back to the arena free list, so the next splits reuse them and
	// the resident footprint tracks LiveNodes, not nodes-ever-allocated.
	for !t.root.isLeaf() && t.root.split < threshold {
		before := len(t.emitted)
		sub := Result{Func: t.f}
		emitSubtree(t.f, t.root.left, t.rootLo, t.root.split, t.root.state, &sub)
		t.emitted = append(t.emitted, sub.Rows...)
		leaves := len(t.emitted) - before
		// A full binary subtree with L leaves has 2L-1 nodes; plus the root.
		t.reclaim(2*leaves - 1 + 1)
		old := t.root
		old.right.state = t.f.Merge(old.right.state, old.state)
		t.rootLo = old.split + 1
		t.root = old.right
		t.recycleSubtree(old.left)
		t.ar.recycle(old)
	}
	// Phase 2 (Figure 5.b): splice out leftmost leaves one at a time while
	// they end before the threshold. When only the earlier of a node's two
	// leaves is collected, the node is removed and replaced by the
	// remaining child (its contribution folded in).
	for !t.root.isLeaf() {
		link := &t.root
		acc := t.f.Zero()
		for !(*link).left.isLeaf() {
			acc = t.f.Merge(acc, (*link).state)
			link = &(*link).left
		}
		parent := *link
		if parent.split >= threshold {
			return // the earliest remaining constant interval is unfinished
		}
		leafState := t.f.Merge(t.f.Merge(acc, parent.state), parent.left.state)
		t.emitted = append(t.emitted, Row{
			Interval: interval.MustNew(t.rootLo, parent.split),
			State:    leafState,
		})
		parent.right.state = t.f.Merge(parent.right.state, parent.state)
		*link = parent.right
		t.rootLo = parent.split + 1
		t.reclaim(2)
		t.ar.recycle(parent.left)
		t.ar.recycle(parent)
	}
}

// recycleSubtree returns every node of the already-emitted subtree rooted at
// n to the arena free list. Recursion on left children mirrors emitSubtree:
// the right-spine chains that sorted input produces are walked iteratively.
func (t *KTree) recycleSubtree(n *treeNode) {
	for {
		left, right := n.left, n.right
		t.ar.recycle(n)
		if left == nil {
			return
		}
		t.recycleSubtree(left)
		n = right
	}
}

func (t *KTree) reclaim(n int) {
	t.stats.reclaim(n)
	if t.es != nil {
		t.es.NodesCollected(n)
	}
}

// Finish emits the remainder of the tree after the already garbage-collected
// prefix and returns the complete, time-ordered result.
func (t *KTree) Finish() (*Result, error) {
	res := &Result{Func: t.f, Rows: t.emitted}
	emitSubtree(t.f, t.root, t.rootLo, interval.Forever, t.f.Zero(), res)
	t.root = nil
	t.emitted = nil
	slabs, reused := t.ar.release()
	if t.es != nil {
		t.es.PeakNodes(int(t.stats.peakNodes.Load()))
		t.es.ArenaRelease(slabs, reused)
	}
	return res, nil
}

// Stats reports the evaluator's counters, including nodes reclaimed by GC.
func (t *KTree) Stats() Stats { return t.stats.snapshot() }
