package query

import (
	"path/filepath"
	"testing"

	"tempagg/internal/relation"
	"tempagg/internal/workload"
)

func writeRelation(t *testing.T, rel *relation.Relation) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "r.rel")
	if err := relation.WriteFile(path, rel); err != nil {
		t.Fatal(err)
	}
	return path
}

func runFile(t *testing.T, sql, path string) *QueryResult {
	t.Helper()
	qr, err := RunFile(sql, path, nil, relation.ScanOptions{})
	if err != nil {
		t.Fatalf("RunFile(%q): %v", sql, err)
	}
	return qr
}

func TestExecuteFileMatchesInMemory(t *testing.T) {
	rel, err := workload.Generate(workload.Config{Tuples: 600, LongLivedPct: 40, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	rel.Name = "R"
	path := writeRelation(t, rel)
	for _, sql := range []string{
		"SELECT COUNT(Name) FROM R",
		"SELECT SUM(Salary) FROM R WHERE Salary > 50000",
		"SELECT AVG(Salary) FROM R VALID OVERLAPS 100000 500000",
		"SELECT MAX(Salary) FROM R USING TUMA",
		"SELECT MIN(Salary) FROM R USING LIST",
	} {
		mem, err := Run(sql, rel, nil)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		file := runFile(t, sql, path)
		if len(mem.Groups) != len(file.Groups) {
			t.Fatalf("%s: group counts differ", sql)
		}
		for i := range mem.Groups {
			if !mem.Groups[i].Result.Equal(file.Groups[i].Result) {
				t.Errorf("%s: streamed result differs from in-memory", sql)
			}
		}
	}
}

func TestExecuteFileStreamsGroupBy(t *testing.T) {
	rel := relation.Employed()
	path := writeRelation(t, rel)
	qr := runFile(t, "SELECT Name, MAX(Salary) FROM Employed GROUP BY Name", path)
	if len(qr.Groups) != 3 {
		t.Fatalf("%d groups, want 3", len(qr.Groups))
	}
	if qr.Groups[0].Key != "Karen" {
		t.Fatalf("groups not sorted: %q first", qr.Groups[0].Key)
	}
	if v, ok := qr.Groups[1].Result.At(20); !ok || v.Int != 37 {
		t.Fatalf("Nathan MAX at 20 = %v", v)
	}
}

func TestExecuteFileUsesHeaderSortedFlag(t *testing.T) {
	rel := relation.Employed()
	rel.SortByTime()
	path := writeRelation(t, rel)
	qr := runFile(t, "SELECT COUNT(Name) FROM Employed", path)
	if qr.Plan.Spec.K != 1 || qr.Plan.SortFirst {
		t.Fatalf("sorted file should stream ktree k=1, got %v", qr.Plan)
	}
}

func TestExecuteFileRandomizedPagesNotSorted(t *testing.T) {
	// Enough tuples for multiple pages so randomization matters.
	rel, err := workload.Generate(workload.Config{Tuples: 500, Order: workload.Sorted, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	rel.Name = "R"
	path := writeRelation(t, rel)
	qr, err := RunFile("SELECT COUNT(Name) FROM R", path, nil,
		relation.ScanOptions{RandomizePages: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// A randomized scan must not be planned as sorted input.
	if qr.Plan.Spec.Algorithm == 0 && qr.Plan.Spec.K == 1 && !qr.Plan.SortFirst {
		t.Fatalf("randomized scan planned as sorted: %v", qr.Plan)
	}
	mem, err := Run("SELECT COUNT(Name) FROM R", rel, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !qr.Groups[0].Result.Equal(mem.Groups[0].Result) {
		t.Fatal("randomized scan changed the result")
	}
}

func TestExecuteFileTumaTwoScans(t *testing.T) {
	rel := relation.Employed()
	path := writeRelation(t, rel)
	sc, err := relation.Open(path, relation.ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	q := mustParse(t, "SELECT COUNT(Name) FROM Employed USING TUMA")
	if _, err := streamTuma(q, Plan{Tuma: true}, sc, nil); err != nil {
		t.Fatal(err)
	}
	if sc.Passes() != 2 {
		t.Fatalf("Tuma streamed %d passes, want 2", sc.Passes())
	}
}

func TestExecuteFileMaterializesWhenNeeded(t *testing.T) {
	rel, err := workload.Generate(workload.Config{Tuples: 300, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	rel.Name = "R"
	// Ensure a finite lifespan so span grouping works.
	path := writeRelation(t, rel)
	qr := runFile(t, "SELECT COUNT(Name) FROM R GROUP BY SPAN 100000", path)
	if err := qr.Groups[0].Result.ValidatePartition(0, qr.Groups[0].Result.Rows[len(qr.Groups[0].Result.Rows)-1].Interval.End); err != nil {
		t.Fatal(err)
	}

	// DISTINCT forces materialization but must still work.
	qr = runFile(t, "SELECT COUNT(DISTINCT Name) FROM R", path)
	if err := qr.Groups[0].Result.Validate(); err != nil {
		t.Fatal(err)
	}

	// Tuma + GROUP BY falls back to materialization.
	qr = runFile(t, "SELECT Name, COUNT(Name) FROM R GROUP BY Name USING TUMA", path)
	if len(qr.Groups) == 0 {
		t.Fatal("no groups")
	}
}

func TestExecuteFileEmptyFilteredStream(t *testing.T) {
	rel := relation.Employed()
	path := writeRelation(t, rel)
	qr := runFile(t, "SELECT COUNT(Name) FROM Employed WHERE Salary > 1000000", path)
	if len(qr.Groups) != 1 || len(qr.Groups[0].Result.Rows) != 1 {
		t.Fatalf("filtered-out stream: %+v", qr.Groups)
	}
	if v := qr.Groups[0].Result.Value(0); v.Int != 0 {
		t.Fatalf("count = %v, want 0", v)
	}
}

func TestExecuteFileErrors(t *testing.T) {
	if _, err := RunFile("SELECT COUNT(Name) FROM x", "/nonexistent.rel", nil,
		relation.ScanOptions{}); err == nil {
		t.Fatal("missing file must fail")
	}
	path := writeRelation(t, relation.Employed())
	if _, err := RunFile("SELEC", path, nil, relation.ScanOptions{}); err == nil {
		t.Fatal("parse error must propagate")
	}
}

func TestExecuteFileSortFirstUsesExternalSort(t *testing.T) {
	rel, err := workload.Generate(workload.Config{Tuples: 800, Seed: 66})
	if err != nil {
		t.Fatal(err)
	}
	rel.Name = "R"
	path := writeRelation(t, rel)
	// A tight memory budget forces the sort+ktree plan; execution must
	// still work end to end from the file and match in-memory results.
	info := &RelationInfo{Tuples: rel.Len(), Sorted: false, KBound: -1, MemoryBudget: 1024}
	qr, err := RunFile("SELECT SUM(Salary) FROM R", path, info, relation.ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !qr.Plan.SortFirst && qr.Plan.Spec.K != 1 {
		t.Fatalf("expected a sort+ktree plan, got %v", qr.Plan)
	}
	mem, err := Run("SELECT SUM(Salary) FROM R", rel, info)
	if err != nil {
		t.Fatal(err)
	}
	if !qr.Groups[0].Result.Equal(mem.Groups[0].Result) {
		t.Fatal("sort-first streaming differs from in-memory")
	}
	// The streamed evaluator's memory stayed tiny — the point of the plan.
	if qr.Groups[0].Stats.PeakBytes() > 64*1024 {
		t.Fatalf("peak memory %d exceeds the plan's point", qr.Groups[0].Stats.PeakBytes())
	}
}

func TestExecuteFileUsingKtree1OnUnsortedFile(t *testing.T) {
	rel, err := workload.Generate(workload.Config{Tuples: 500, Seed: 67})
	if err != nil {
		t.Fatal(err)
	}
	rel.Name = "R"
	path := writeRelation(t, rel)
	qr, err := RunFile("SELECT COUNT(Name) FROM R USING KTREE 1", path, nil, relation.ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mem, err := Run("SELECT COUNT(Name) FROM R USING KTREE 1", rel, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !qr.Groups[0].Result.Equal(mem.Groups[0].Result) {
		t.Fatal("USING KTREE 1 on unsorted file differs from in-memory")
	}
}
