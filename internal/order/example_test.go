package order_test

import (
	"fmt"

	"tempagg/internal/order"
	"tempagg/internal/tuple"
)

func sorted(n int) []tuple.Tuple {
	ts := make([]tuple.Tuple, n)
	for i := range ts {
		ts[i] = tuple.MustNew("t", int64(i), int64(i*2), int64(i*2+1))
	}
	return ts
}

// ExampleKOrderedness measures how far a relation is from totally ordered.
func ExampleKOrderedness() {
	ts := sorted(20)
	fmt.Println(order.KOrderedness(ts))
	ts[3], ts[10] = ts[10], ts[3]
	fmt.Println(order.KOrderedness(ts))
	// Output:
	// 0
	// 7
}

// ExampleKOrderedPercentage reproduces a Table 2 row: with n=10000 and
// k=100, swapping one pair of tuples 100 places apart yields 0.0002.
func ExampleKOrderedPercentage() {
	ts, err := order.SwapPairs(sorted(10000), 1, 100)
	if err != nil {
		panic(err)
	}
	pct, err := order.KOrderedPercentage(ts, 100)
	if err != nil {
		panic(err)
	}
	fmt.Println(pct)
	// Output:
	// 0.0002
}

// ExamplePerturbToPercentage disorders a sorted relation to a target
// (k, percentage) pair, as the paper's experiments do (§6).
func ExamplePerturbToPercentage() {
	ts, err := order.PerturbToPercentage(sorted(1000), 4, 0.10, 7)
	if err != nil {
		panic(err)
	}
	fmt.Println("k-ordered for k=4:", order.IsKOrdered(ts, 4))
	pct, err := order.KOrderedPercentage(ts, 4)
	if err != nil {
		panic(err)
	}
	fmt.Println("percentage:", pct)
	// Output:
	// k-ordered for k=4: true
	// percentage: 0.1
}
