package obs

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"
)

// EvalCounters is the trace-side snapshot of core.Stats (duplicated here
// rather than imported so obs stays below core in the dependency order).
// Sums are across every evaluator the query ran — one per attribute group
// and select-list aggregate — except PeakNodes, which is the maximum.
type EvalCounters struct {
	Tuples    int `json:"tuples"`
	LiveNodes int `json:"live_nodes"`
	PeakNodes int `json:"peak_nodes"`
	Collected int `json:"collected"`
}

// Span is one node of a query's trace tree. Top-level spans are the query's
// stages (parse, plan, sort, execute, finish); stages fan out into children
// — per-worker radix/scan/emit spans of the parallel sweep, per-partition
// shard spans, per-query spans inside a shared SweepGroup — each carrying
// its own §6 counter snapshot, wall/CPU time, and heap-allocation delta.
//
// A span becomes visible (attached to its parent, or to the trace when it
// has none) only when End is called, so readers of a finished trace never
// see half-built nodes. A nil *Span is the disabled state: every method,
// End included, is a no-op on it.
type Span struct {
	Name     string        `json:"name"`
	SpanID   string        `json:"span_id,omitempty"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	// CPUTime is the process CPU (user+system) consumed while the span was
	// open. Concurrent spans overlap in process CPU, so a worker span's
	// value is an upper bound; the wall/CPU ratio of the enclosing stage is
	// the parallelism-efficiency signal.
	CPUTime time.Duration `json:"cpu_ns,omitempty"`
	// AllocBytes is the process-wide heap-allocation delta over the span
	// (runtime/metrics /gc/heap/allocs:bytes), best-effort under overlap.
	AllocBytes int64             `json:"alloc_bytes,omitempty"`
	Counters   *EvalCounters     `json:"counters,omitempty"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Children   []*Span           `json:"children,omitempty"`

	tr     *QueryTrace
	parent *Span
	cpu0   time.Duration
	alloc0 uint64
}

func newSpan(tr *QueryTrace, parent *Span, name string) *Span {
	return &Span{
		Name:   name,
		SpanID: randHex64(),
		Start:  time.Now(),
		tr:     tr,
		parent: parent,
		cpu0:   processCPU(),
		alloc0: heapAllocBytes(),
	}
}

// StartChild opens a child span under s; close it with End. Safe to call
// concurrently from worker goroutines — children attach under the trace's
// lock when they End.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	return newSpan(s.tr, s, name)
}

// End closes the span: stamps wall/CPU time and the allocation delta, and
// attaches the span to its parent (or the trace's top level) so it becomes
// visible to trace readers.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.Duration = time.Since(s.Start)
	if cpu := processCPU(); cpu > s.cpu0 {
		s.CPUTime = cpu - s.cpu0
	}
	if alloc := heapAllocBytes(); alloc > s.alloc0 {
		s.AllocBytes = int64(alloc - s.alloc0)
	}
	tr := s.tr
	tr.mu.Lock()
	if s.parent != nil {
		s.parent.Children = append(s.parent.Children, s)
	} else {
		tr.Spans = append(tr.Spans, s)
	}
	tr.mu.Unlock()
}

// SetAttr records a key/value annotation on the span (worker index,
// partition span, chunk count, ...).
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if s.Attrs == nil {
		s.Attrs = map[string]string{}
	}
	s.Attrs[key] = value
	s.tr.mu.Unlock()
}

// AddCounters folds a §6 counter snapshot into the span's own node: sums
// for tuples, live, and collected nodes; maximum for the peak — the same
// fold QueryTrace.AddStats applies at query level.
func (s *Span) AddCounters(tuples, liveNodes, peakNodes, collected int) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if s.Counters == nil {
		s.Counters = &EvalCounters{}
	}
	s.Counters.Tuples += tuples
	s.Counters.LiveNodes += liveNodes
	s.Counters.Collected += collected
	if peakNodes > s.Counters.PeakNodes {
		s.Counters.PeakNodes = peakNodes
	}
	s.tr.mu.Unlock()
}

// Context returns the propagation context rooted at this span: child spans
// started through it attach under s. A nil span yields the inactive zero
// context.
func (s *Span) Context() TraceContext {
	if s == nil {
		return TraceContext{}
	}
	return TraceContext{TraceID: s.tr.TraceID, SpanID: s.SpanID, Sampled: true, span: s}
}

// TraceContext is the W3C-traceparent-shaped propagation handle threaded
// through core (SweepOptions, PartitionOptions, SweepGroup): 16-byte trace
// ID and 8-byte parent span ID, hex-encoded. In process it also carries the
// parent *Span so workers can attach children directly; over the wire only
// the IDs travel (TraceParent/ParseTraceParent), which is what a future
// distributed coordinator forwards to its shards.
//
// The zero TraceContext is the disabled state: Active reports false and
// StartChild returns a nil (no-op) span, so threading it unconditionally
// costs one pointer compare.
type TraceContext struct {
	TraceID string `json:"trace_id"`
	SpanID  string `json:"span_id"`
	Sampled bool   `json:"sampled"`

	span *Span
	tr   *QueryTrace
}

// Active reports whether the context can record spans in this process.
func (c TraceContext) Active() bool { return c.span != nil || c.tr != nil }

// StartChild opens a span under the context's parent span (or at the
// trace's top level for a trace-rooted context); nil-safe.
func (c TraceContext) StartChild(name string) *Span {
	if c.span != nil {
		return c.span.StartChild(name)
	}
	return c.tr.StartSpan(name)
}

// TraceParent renders the context in the W3C traceparent header form,
// version 00: "00-<trace-id>-<parent-id>-<flags>".
func (c TraceContext) TraceParent() string {
	trace, span := c.TraceID, c.SpanID
	if trace == "" {
		trace = "00000000000000000000000000000000"
	}
	if span == "" {
		span = "0000000000000000"
	}
	flags := "00"
	if c.Sampled {
		flags = "01"
	}
	return fmt.Sprintf("00-%s-%s-%s", trace, span, flags)
}

// ParseTraceParent parses a W3C traceparent header into a remote context:
// the IDs are preserved for correlation but the context carries no local
// span, so StartChild on it is a no-op until a local trace adopts it.
func ParseTraceParent(s string) (TraceContext, error) {
	var version, trace, span, flags string
	if n, err := fmt.Sscanf(s, "%2s-%32s-%16s-%2s", &version, &trace, &span, &flags); n != 4 || err != nil {
		return TraceContext{}, fmt.Errorf("obs: malformed traceparent %q", s)
	}
	if version != "00" || !isHex(trace, 32) || !isHex(span, 16) || !isHex(flags, 2) {
		return TraceContext{}, fmt.Errorf("obs: malformed traceparent %q", s)
	}
	return TraceContext{TraceID: trace, SpanID: span, Sampled: flags == "01"}, nil
}

func isHex(s string, n int) bool {
	if len(s) != n {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func randHex64() string { return fmt.Sprintf("%016x", rand.Uint64()|1) }

func randHex128() string { return fmt.Sprintf("%016x%016x", rand.Uint64()|1, rand.Uint64()|1) }

// QueryTrace is the per-query record: the text, the plan the optimizer
// chose (with every alternative it priced), the span tree, and the full
// evaluator-counter snapshot. The trace itself is the tree's root — its
// Start/Duration/Stats are the root span's — and Spans holds the top-level
// stage spans. A nil *QueryTrace is the disabled state; every method no-ops
// on it, so the query layer threads traces unconditionally.
type QueryTrace struct {
	ID        int64         `json:"id"`
	TraceID   string        `json:"trace_id,omitempty"`
	Query     string        `json:"query"`
	Start     time.Time     `json:"start"`
	Duration  time.Duration `json:"duration_ns"`
	Algorithm string        `json:"algorithm,omitempty"`
	K         int           `json:"k,omitempty"`
	Plan      string        `json:"plan,omitempty"`
	Costs     []PlanCost    `json:"plan_costs,omitempty"`
	Groups    int           `json:"groups,omitempty"`
	Stats     EvalCounters  `json:"stats"`
	Err       string        `json:"error,omitempty"`
	Spans     []*Span       `json:"spans,omitempty"`

	mu   sync.Mutex
	sink Sink
}

// PlanCost is one planner alternative's estimated cost, recorded on the
// trace next to the chosen plan so EXPLAIN ANALYZE (and the slow log) can
// report estimated-vs-actual deltas.
type PlanCost struct {
	Algorithm string  `json:"algorithm"`
	Detail    string  `json:"detail,omitempty"`
	Cost      float64 `json:"cost"`
	Chosen    bool    `json:"chosen,omitempty"`
}

// NewQueryTrace returns a standalone trace with a fresh trace ID and no
// sink — the form EXPLAIN ANALYZE uses when no observer is installed.
func NewQueryTrace(sql string) *QueryTrace {
	return &QueryTrace{Query: sql, TraceID: randHex128(), Start: time.Now()}
}

// StartSpan opens a top-level stage span; close it with End.
func (tr *QueryTrace) StartSpan(name string) *Span {
	if tr == nil {
		return nil
	}
	return newSpan(tr, nil, name)
}

// Context returns the trace-rooted propagation context: spans started
// through it attach at the trace's top level.
func (tr *QueryTrace) Context() TraceContext {
	if tr == nil {
		return TraceContext{}
	}
	return TraceContext{TraceID: tr.TraceID, Sampled: true, tr: tr}
}

// SetPlan records the optimizer's choice.
func (tr *QueryTrace) SetPlan(algorithm string, k int, plan string) {
	if tr == nil {
		return
	}
	tr.Algorithm, tr.K, tr.Plan = algorithm, k, plan
}

// SetPlanCosts records every alternative the planner priced.
func (tr *QueryTrace) SetPlanCosts(costs []PlanCost) {
	if tr == nil {
		return
	}
	tr.Costs = costs
}

// AddStats folds one evaluator's final counters into the trace snapshot:
// sums for tuples, live, and collected nodes; maximum for the peak.
func (tr *QueryTrace) AddStats(tuples, liveNodes, peakNodes, collected int) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	tr.Stats.Tuples += tuples
	tr.Stats.LiveNodes += liveNodes
	tr.Stats.Collected += collected
	if peakNodes > tr.Stats.PeakNodes {
		tr.Stats.PeakNodes = peakNodes
	}
	tr.mu.Unlock()
}

// SetGroups records how many result groups the query produced.
func (tr *QueryTrace) SetGroups(n int) {
	if tr == nil {
		return
	}
	tr.Groups = n
}

// Sink exposes the evaluator-event sink for the executing query, or nil
// when tracing is disabled.
func (tr *QueryTrace) Sink() Sink {
	if tr == nil {
		return nil
	}
	return tr.sink
}

// SpanTree returns the top-level spans of a finished trace (nil-safe).
func (tr *QueryTrace) SpanTree() []*Span {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return append([]*Span(nil), tr.Spans...)
}

// TraceBuffer is a fixed-capacity ring of the most recent query traces,
// served by /debug/traces.
type TraceBuffer struct {
	mu   sync.Mutex
	ring []*QueryTrace
	next int
	full bool
}

// NewTraceBuffer returns a ring keeping the last n traces (n < 1 keeps 1).
func NewTraceBuffer(n int) *TraceBuffer {
	if n < 1 {
		n = 1
	}
	return &TraceBuffer{ring: make([]*QueryTrace, n)}
}

// Push appends one finished trace, evicting the oldest when full.
func (b *TraceBuffer) Push(tr *QueryTrace) {
	if b == nil || tr == nil {
		return
	}
	b.mu.Lock()
	b.ring[b.next] = tr
	b.next++
	if b.next == len(b.ring) {
		b.next, b.full = 0, true
	}
	b.mu.Unlock()
}

// Snapshot returns the buffered traces, oldest first.
func (b *TraceBuffer) Snapshot() []*QueryTrace {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []*QueryTrace
	if b.full {
		out = append(out, b.ring[b.next:]...)
	}
	out = append(out, b.ring[:b.next]...)
	return out
}

// Observer bundles the pipeline's observability surfaces: metrics, the
// trace ring, the rolling per-stage latency window, and the slow-query
// log. A nil *Observer disables all four.
type Observer struct {
	Metrics *Metrics
	Traces  *TraceBuffer
	Queries *QueryStats
	Slow    *SlowLog

	nextID atomic.Int64
}

// NewObserver assembles an observer over a fresh registry with an n-entry
// trace ring and the given slow-query log (nil for none).
func NewObserver(traceCap int, slow *SlowLog) *Observer {
	return &Observer{
		Metrics: NewMetrics(NewRegistry()),
		Traces:  NewTraceBuffer(traceCap),
		Queries: NewQueryStats(QueryStatsConfig{}),
		Slow:    slow,
	}
}

// Registry returns the metrics registry, or nil when disabled.
func (o *Observer) Registry() *Registry {
	if o == nil || o.Metrics == nil {
		return nil
	}
	return o.Metrics.Registry()
}

// TraceBuffer returns the trace ring, or nil when disabled.
func (o *Observer) TraceBuffer() *TraceBuffer {
	if o == nil {
		return nil
	}
	return o.Traces
}

// QueryStatsWindow returns the rolling per-stage latency window, or nil
// when disabled.
func (o *Observer) QueryStatsWindow() *QueryStats {
	if o == nil {
		return nil
	}
	return o.Queries
}

// StartQuery opens a trace for one query. The returned trace (nil when o
// is nil) is threaded through the query layer and closed by FinishQuery.
func (o *Observer) StartQuery(sql string) *QueryTrace {
	if o == nil {
		return nil
	}
	tr := &QueryTrace{
		ID:      o.nextID.Add(1),
		TraceID: randHex128(),
		Query:   sql,
		Start:   time.Now(),
	}
	if o.Metrics != nil {
		tr.sink = o.Metrics
	}
	return tr
}

// FinishQuery closes the trace: stamps the duration and error, records the
// per-algorithm query counters and latency histogram, folds the stage spans
// into the rolling /debug/queries window, writes the slow-query log entry
// when over threshold (write failures become a counter, not a query
// failure), and pushes the trace onto the ring.
func (o *Observer) FinishQuery(tr *QueryTrace, err error) {
	if o == nil || tr == nil {
		return
	}
	tr.Duration = time.Since(tr.Start)
	if err != nil {
		tr.Err = err.Error()
	}
	alg := tr.Algorithm
	if alg == "" {
		// Parse and resolution failures never reach the planner.
		alg = "none"
	}
	o.Metrics.RecordQuery(alg, tr.Duration, err != nil)
	o.Queries.ObserveTrace(tr)
	if logged, werr := o.Slow.Record(tr); logged {
		o.Metrics.RecordSlow(werr)
	}
	o.Traces.Push(tr)
}
