package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// EvalCounters is the trace-side snapshot of core.Stats (duplicated here
// rather than imported so obs stays below core in the dependency order).
// Sums are across every evaluator the query ran — one per attribute group
// and select-list aggregate — except PeakNodes, which is the maximum.
type EvalCounters struct {
	Tuples    int `json:"tuples"`
	LiveNodes int `json:"live_nodes"`
	PeakNodes int `json:"peak_nodes"`
	Collected int `json:"collected"`
}

// Span is one timed stage of a query: parse, plan, execute, or finish.
type Span struct {
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`

	tr *QueryTrace
}

// End closes the span, recording its duration on the owning trace.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.Duration = time.Since(s.Start)
	s.tr.mu.Lock()
	s.tr.Spans = append(s.tr.Spans, *s)
	s.tr.mu.Unlock()
}

// QueryTrace is the per-query record: the text, the plan the optimizer
// chose, timed stages, and the full evaluator-counter snapshot. A nil
// *QueryTrace is the disabled state; every method no-ops on it, so the
// query layer threads traces unconditionally.
type QueryTrace struct {
	ID        int64         `json:"id"`
	Query     string        `json:"query"`
	Start     time.Time     `json:"start"`
	Duration  time.Duration `json:"duration_ns"`
	Algorithm string        `json:"algorithm,omitempty"`
	K         int           `json:"k,omitempty"`
	Plan      string        `json:"plan,omitempty"`
	Groups    int           `json:"groups,omitempty"`
	Stats     EvalCounters  `json:"stats"`
	Err       string        `json:"error,omitempty"`
	Spans     []Span        `json:"spans,omitempty"`

	mu   sync.Mutex
	sink Sink
}

// StartSpan opens a named stage; close it with End.
func (tr *QueryTrace) StartSpan(name string) *Span {
	if tr == nil {
		return nil
	}
	return &Span{Name: name, Start: time.Now(), tr: tr}
}

// SetPlan records the optimizer's choice.
func (tr *QueryTrace) SetPlan(algorithm string, k int, plan string) {
	if tr == nil {
		return
	}
	tr.Algorithm, tr.K, tr.Plan = algorithm, k, plan
}

// AddStats folds one evaluator's final counters into the trace snapshot:
// sums for tuples, live, and collected nodes; maximum for the peak.
func (tr *QueryTrace) AddStats(tuples, liveNodes, peakNodes, collected int) {
	if tr == nil {
		return
	}
	tr.Stats.Tuples += tuples
	tr.Stats.LiveNodes += liveNodes
	tr.Stats.Collected += collected
	if peakNodes > tr.Stats.PeakNodes {
		tr.Stats.PeakNodes = peakNodes
	}
}

// SetGroups records how many result groups the query produced.
func (tr *QueryTrace) SetGroups(n int) {
	if tr == nil {
		return
	}
	tr.Groups = n
}

// Sink exposes the evaluator-event sink for the executing query, or nil
// when tracing is disabled.
func (tr *QueryTrace) Sink() Sink {
	if tr == nil {
		return nil
	}
	return tr.sink
}

// TraceBuffer is a fixed-capacity ring of the most recent query traces,
// served by /debug/traces.
type TraceBuffer struct {
	mu   sync.Mutex
	ring []*QueryTrace
	next int
	full bool
}

// NewTraceBuffer returns a ring keeping the last n traces (n < 1 keeps 1).
func NewTraceBuffer(n int) *TraceBuffer {
	if n < 1 {
		n = 1
	}
	return &TraceBuffer{ring: make([]*QueryTrace, n)}
}

// Push appends one finished trace, evicting the oldest when full.
func (b *TraceBuffer) Push(tr *QueryTrace) {
	if b == nil || tr == nil {
		return
	}
	b.mu.Lock()
	b.ring[b.next] = tr
	b.next++
	if b.next == len(b.ring) {
		b.next, b.full = 0, true
	}
	b.mu.Unlock()
}

// Snapshot returns the buffered traces, oldest first.
func (b *TraceBuffer) Snapshot() []*QueryTrace {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []*QueryTrace
	if b.full {
		out = append(out, b.ring[b.next:]...)
	}
	out = append(out, b.ring[:b.next]...)
	return out
}

// Observer bundles the pipeline's observability surfaces: metrics, the
// trace ring, and the slow-query log. A nil *Observer disables all three.
type Observer struct {
	Metrics *Metrics
	Traces  *TraceBuffer
	Slow    *SlowLog

	nextID atomic.Int64
}

// NewObserver assembles an observer over a fresh registry with an n-entry
// trace ring and the given slow-query log (nil for none).
func NewObserver(traceCap int, slow *SlowLog) *Observer {
	return &Observer{
		Metrics: NewMetrics(NewRegistry()),
		Traces:  NewTraceBuffer(traceCap),
		Slow:    slow,
	}
}

// Registry returns the metrics registry, or nil when disabled.
func (o *Observer) Registry() *Registry {
	if o == nil || o.Metrics == nil {
		return nil
	}
	return o.Metrics.Registry()
}

// TraceBuffer returns the trace ring, or nil when disabled.
func (o *Observer) TraceBuffer() *TraceBuffer {
	if o == nil {
		return nil
	}
	return o.Traces
}

// StartQuery opens a trace for one query. The returned trace (nil when o
// is nil) is threaded through the query layer and closed by FinishQuery.
func (o *Observer) StartQuery(sql string) *QueryTrace {
	if o == nil {
		return nil
	}
	tr := &QueryTrace{
		ID:    o.nextID.Add(1),
		Query: sql,
		Start: time.Now(),
	}
	if o.Metrics != nil {
		tr.sink = o.Metrics
	}
	return tr
}

// FinishQuery closes the trace: stamps the duration and error, records the
// per-algorithm query counters and latency histogram, writes the slow-query
// log entry when over threshold (write failures become a counter, not a
// query failure), and pushes the trace onto the ring.
func (o *Observer) FinishQuery(tr *QueryTrace, err error) {
	if o == nil || tr == nil {
		return
	}
	tr.Duration = time.Since(tr.Start)
	if err != nil {
		tr.Err = err.Error()
	}
	alg := tr.Algorithm
	if alg == "" {
		// Parse and resolution failures never reach the planner.
		alg = "none"
	}
	o.Metrics.RecordQuery(alg, tr.Duration, err != nil)
	if logged, werr := o.Slow.Record(tr); logged {
		o.Metrics.RecordSlow(werr)
	}
	o.Traces.Push(tr)
}
