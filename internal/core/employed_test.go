package core

import (
	"strings"
	"testing"

	"tempagg/internal/aggregate"
	"tempagg/internal/interval"
	"tempagg/internal/relation"
)

// employedWant is Table 1 of the paper: COUNT(Name) over the Employed
// relation, grouped by instant.
var employedWant = []struct {
	count int64
	iv    interval.Interval
}{
	{0, interval.MustNew(0, 6)},
	{1, interval.MustNew(7, 7)},
	{2, interval.MustNew(8, 12)},
	{1, interval.MustNew(13, 17)},
	{3, interval.MustNew(18, 20)},
	{2, interval.MustNew(21, 21)},
	{1, interval.MustNew(22, interval.Forever)},
}

func checkEmployedCount(t *testing.T, res *Result) {
	t.Helper()
	if err := res.Validate(); err != nil {
		t.Fatalf("result is not a partition of [0,∞]: %v", err)
	}
	if len(res.Rows) != len(employedWant) {
		t.Fatalf("got %d constant intervals, want %d:\n%s",
			len(res.Rows), len(employedWant), res)
	}
	for i, want := range employedWant {
		row := res.Rows[i]
		if row.Interval != want.iv {
			t.Errorf("row %d: interval %v, want %v", i, row.Interval, want.iv)
		}
		if got := res.Value(i).Int; got != want.count {
			t.Errorf("row %d %v: count %d, want %d", i, row.Interval, got, want.count)
		}
	}
}

// TestEmployedTable1 reproduces Table 1 with every algorithm: the paper's
// example query SELECT COUNT(Name) FROM Employed, grouped by instant.
func TestEmployedTable1(t *testing.T) {
	f := aggregate.For(aggregate.Count)
	rel := relation.Employed()

	specs := map[string]Spec{
		"linked-list":      {Algorithm: LinkedList},
		"aggregation-tree": {Algorithm: AggregationTree},
		"ktree-k4":         {Algorithm: KOrderedTree, K: 4},
		"balanced-tree":    {Algorithm: BalancedTree},
	}
	for name, spec := range specs {
		t.Run(name, func(t *testing.T) {
			res, _, err := Run(spec, f, rel.Tuples)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			checkEmployedCount(t, res)
		})
	}
	t.Run("ktree-k1-sorted", func(t *testing.T) {
		sorted := rel.Clone()
		sorted.SortByTime()
		res, _, err := Run(Spec{Algorithm: KOrderedTree, K: 1}, f, sorted.Tuples)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		checkEmployedCount(t, res)
	})
	t.Run("tuma", func(t *testing.T) {
		res, err := Tuma(NewSliceSource(rel.Tuples), f)
		if err != nil {
			t.Fatalf("Tuma: %v", err)
		}
		checkEmployedCount(t, res)
	})
	t.Run("reference", func(t *testing.T) {
		checkEmployedCount(t, Reference(f, rel.Tuples))
	})
}

// TestFigure2ConstantIntervals checks the constant-interval induction of
// Figure 2: 6 unique timestamps plus the initial interval give 7 constant
// intervals, and each prefix of the construction has the right count.
func TestFigure2ConstantIntervals(t *testing.T) {
	f := aggregate.For(aggregate.Count)
	rel := relation.Employed()
	// After 0 tuples: 1 interval; after [18,∞]: 2; after [8,20]: 4; then 6; 7.
	wantCounts := []int{1, 2, 4, 6, 7}
	for n := 0; n <= rel.Len(); n++ {
		res, _, err := Run(Spec{Algorithm: AggregationTree}, f, rel.Tuples[:n])
		if err != nil {
			t.Fatal(err)
		}
		if got := len(res.Rows); got != wantCounts[n] {
			t.Errorf("after %d tuples: %d constant intervals, want %d", n, got, wantCounts[n])
		}
	}
}

// TestFigure3TreeShape follows the worked construction of Figure 3: adding
// [18,∞] splits the initial node once; adding [8,20] splits twice more; the
// final tree has 13 nodes (1 + 2 per unique timestamp) and the linked list
// 7 (1 per unique timestamp plus the initial interval), matching §7's space
// comparison.
func TestFigure3TreeShape(t *testing.T) {
	f := aggregate.For(aggregate.Count)
	rel := relation.Employed()

	tree := NewAggregationTree(f)
	wantNodes := []int{3, 7, 11, 13} // after each of the 4 tuples
	for i, tu := range rel.Tuples {
		if err := tree.Add(tu); err != nil {
			t.Fatal(err)
		}
		if got := tree.Stats().LiveNodes; got != wantNodes[i] {
			t.Errorf("after tuple %d (%v): %d tree nodes, want %d", i, tu, got, wantNodes[i])
		}
	}

	list := NewLinkedList(f)
	for _, tu := range rel.Tuples {
		if err := list.Add(tu); err != nil {
			t.Fatal(err)
		}
	}
	if got := list.Stats().LiveNodes; got != 7 {
		t.Errorf("linked list has %d nodes, want 7 (one per unique timestamp plus one)", got)
	}
}

// TestFigure3InternalShortcut reproduces the paper's worked example of the
// internal-node update: adding [5,50] to the final Employed tree updates the
// fully covered node [8,17] without descending to its leaves, and the counts
// at every instant rise by exactly one inside [5,50].
func TestFigure3InternalShortcut(t *testing.T) {
	f := aggregate.For(aggregate.Count)
	rel := relation.Employed()

	base, _, err := Run(Spec{Algorithm: AggregationTree}, f, rel.Tuples)
	if err != nil {
		t.Fatal(err)
	}
	extended := relation.Employed()
	extended.Append(mustTuple(t, "extra", 1, 5, 50))
	got, _, err := Run(Spec{Algorithm: AggregationTree}, f, extended.Tuples)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, probe := range []interval.Time{0, 4, 5, 7, 10, 17, 20, 50, 51, interval.Forever} {
		before, ok1 := base.At(probe)
		after, ok2 := got.At(probe)
		if !ok1 || !ok2 {
			t.Fatalf("At(%d) missing", probe)
		}
		delta := after.Int - before.Int
		want := int64(0)
		if probe >= 5 && probe <= 50 {
			want = 1
		}
		if delta != want {
			t.Errorf("instant %d: count rose by %d, want %d", probe, delta, want)
		}
	}
}

func TestEmployedResultString(t *testing.T) {
	f := aggregate.For(aggregate.Count)
	res, _, err := Run(Spec{Algorithm: AggregationTree}, f, relation.Employed().Tuples)
	if err != nil {
		t.Fatal(err)
	}
	s := res.String()
	for _, want := range []string{"COUNT", "3 | 18 | 20", "1 | 22 | ∞"} {
		if !strings.Contains(s, want) {
			t.Errorf("result table missing %q:\n%s", want, s)
		}
	}
}
