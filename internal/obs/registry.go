// Package obs is the observability layer for the tempagg pipeline: a
// zero-dependency metrics registry rendered in the Prometheus text
// exposition format, lightweight per-query trace spans, and a structured
// slow-query log.
//
// The paper's empirical study (§6) is entirely about measured cost — tuples
// scanned, structure nodes resident, nodes reclaimed by garbage collection,
// and the 16-bytes-per-node constant behind core.NodeBytes. This package
// makes the running system report those same quantities continuously: core
// evaluators publish node-level events through the narrow Sink interface,
// the query layer wraps each query in a QueryTrace, and the server exposes
// everything over /metrics and /debug/traces.
//
// Everything here is nil-safe by design: a nil *Observer, *QueryTrace,
// *Span, or *SlowLog is the disabled state, and every method on them is a
// cheap no-op, so instrumented code never needs an "is observability on"
// branch beyond the nil receiver check the calls already perform.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is a set of named metric families. It is safe for concurrent
// use; rendering takes a point-in-time snapshot of every series.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// family is one named metric with a fixed label schema and one series per
// distinct label-value combination.
type family struct {
	name    string
	help    string
	typ     string // "counter", "gauge", or "histogram"
	labels  []string
	buckets []float64 // histograms only

	mu     sync.RWMutex
	series map[string]metric // label-values key → series
}

// metric is one series of a family.
type metric interface {
	// write renders the series' sample lines. name is the family name and
	// labels the rendered {k="v",...} block ("" when the family has no
	// labels).
	write(w io.Writer, name, labels string) error
}

// seriesKey joins label values with a separator that cannot appear in a
// rendered label (label values are escaped before rendering, so the raw
// byte is safe as a map key separator).
func seriesKey(values []string) string { return strings.Join(values, "\x1f") }

func (r *Registry) lookup(name, help, typ string, labels []string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{
			name: name, help: help, typ: typ,
			labels: append([]string(nil), labels...),
			series: map[string]metric{},
		}
		if typ == "histogram" {
			f.buckets = append([]float64(nil), buckets...)
		}
		r.families[name] = f
		return f
	}
	if f.typ != typ || len(f.labels) != len(labels) {
		panic(fmt.Sprintf("obs: metric %q re-registered with a different schema", name))
	}
	return f
}

func (f *family) get(values []string, make func() metric) metric {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d",
			f.name, len(f.labels), len(values)))
	}
	key := seriesKey(values)
	f.mu.RLock()
	m, ok := f.series[key]
	f.mu.RUnlock()
	if ok {
		return m
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok = f.series[key]; ok {
		return m
	}
	m = make()
	f.series[key] = m
	return m
}

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter; negative deltas are ignored (a counter is
// monotone by contract).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value reports the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) write(w io.Writer, name, labels string) error {
	_, err := fmt.Fprintf(w, "%s%s %d\n", name, labels, c.v.Load())
	return err
}

// Gauge is an integer metric that can go up and down; SetMax gives it
// high-water-mark semantics for peaks.
type Gauge struct {
	v atomic.Int64
}

// Set stores the value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the value by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// SetMax raises the gauge to v if v is larger — the high-water-mark update
// used for peak node counts.
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value reports the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

func (g *Gauge) write(w io.Writer, name, labels string) error {
	_, err := fmt.Fprintf(w, "%s%s %d\n", name, labels, g.v.Load())
	return err
}

// Histogram is a fixed-bucket distribution. Buckets are upper bounds in
// ascending order; an implicit +Inf bucket is always present.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // one per bound, plus the +Inf overflow at the end
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count reports the number of samples observed.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reports the sum of all observed samples.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

func (h *Histogram) write(w io.Writer, name, labels string) error {
	// The text format renders cumulative bucket counts with an `le` label
	// appended to any family labels.
	joiner := "{"
	base := ""
	if labels != "" {
		base = strings.TrimSuffix(labels, "}")
		joiner = ","
	}
	cum := int64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		le := strconv.FormatFloat(bound, 'g', -1, 64)
		if _, err := fmt.Fprintf(w, "%s_bucket%s%sle=%q} %d\n", name, base, joiner, le, cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket%s%sle=\"+Inf\"} %d\n", name, base, joiner, cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", name, labels, h.Sum()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.count.Load())
	return err
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// Counter registers (or returns) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.lookup(name, help, "counter", nil, nil)
	return f.get(nil, func() metric { return &Counter{} }).(*Counter)
}

// Gauge registers (or returns) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.lookup(name, help, "gauge", nil, nil)
	return f.get(nil, func() metric { return &Gauge{} }).(*Gauge)
}

// Histogram registers (or returns) an unlabeled histogram with the given
// ascending bucket upper bounds.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.lookup(name, help, "histogram", nil, buckets)
	return f.get(nil, func() metric { return newHistogram(f.buckets) }).(*Histogram)
}

// CounterVec registers (or returns) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.lookup(name, help, "counter", labels, nil)}
}

// GaugeVec registers (or returns) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.lookup(name, help, "gauge", labels, nil)}
}

// HistogramVec registers (or returns) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.lookup(name, help, "histogram", labels, buckets)}
}

// With returns the series for the label values, creating it on first use.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.get(values, func() metric { return &Counter{} }).(*Counter)
}

// With returns the series for the label values, creating it on first use.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.get(values, func() metric { return &Gauge{} }).(*Gauge)
}

// With returns the series for the label values, creating it on first use.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.get(values, func() metric { return newHistogram(v.f.buckets) }).(*Histogram)
}

// escapeLabel escapes a label value per the text exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// renderLabels builds the {k="v",...} block for one series key.
func renderLabels(names []string, key string) string {
	if len(names) == 0 {
		return ""
	}
	values := strings.Split(key, "\x1f")
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus renders every family in the Prometheus text exposition
// format (version 0.0.4), families and series in deterministic order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.RUnlock()

	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
			f.name, f.help, f.name, f.typ); err != nil {
			return err
		}
		f.mu.RLock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		series := make([]metric, 0, len(keys))
		labels := make([]string, 0, len(keys))
		for _, k := range keys {
			series = append(series, f.series[k])
			labels = append(labels, renderLabels(f.labels, k))
		}
		f.mu.RUnlock()
		for i, m := range series {
			if err := m.write(w, f.name, labels[i]); err != nil {
				return err
			}
		}
	}
	return nil
}
