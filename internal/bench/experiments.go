package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"tempagg/internal/aggregate"
	"tempagg/internal/core"
	"tempagg/internal/interval"
	"tempagg/internal/order"
	"tempagg/internal/relation"
	"tempagg/internal/workload"
)

// KPct is the k-ordered-percentage used for the k-ordered series of
// Figures 7–9. The paper found its effect "outweighed greatly by the effect
// of the k value" (§6.1) and shows a single graph per k; we use the middle
// tested value.
const KPct = 0.08

func genRandom(longPct int) func(int, int64) (*relation.Relation, error) {
	return func(size int, seed int64) (*relation.Relation, error) {
		return workload.Generate(workload.Config{
			Tuples: size, LongLivedPct: longPct, Order: workload.Random, Seed: seed,
		})
	}
}

func genSorted(longPct int) func(int, int64) (*relation.Relation, error) {
	return func(size int, seed int64) (*relation.Relation, error) {
		return workload.Generate(workload.Config{
			Tuples: size, LongLivedPct: longPct, Order: workload.Sorted, Seed: seed,
		})
	}
}

func genKOrdered(longPct, k int) func(int, int64) (*relation.Relation, error) {
	return func(size int, seed int64) (*relation.Relation, error) {
		return workload.Generate(workload.Config{
			Tuples: size, LongLivedPct: longPct, Order: workload.KOrdered,
			K: k, KPct: KPct, Seed: seed,
		})
	}
}

type seriesSpec struct {
	name string
	spec core.Spec
	gen  func(int, int64) (*relation.Relation, error)
}

func buildFigure(id, title, metricName string, opts Options,
	metric func(measurement) float64, specs []seriesSpec) (Figure, error) {
	opts = opts.withDefaults()
	fig := Figure{ID: id, Title: title, Metric: metricName}
	for _, ss := range specs {
		s, err := sweep(opts, ss.spec, ss.gen, metric)
		if err != nil {
			return Figure{}, fmt.Errorf("bench: %s/%s: %w", id, ss.name, err)
		}
		s.Name = ss.name
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Figure6 reproduces the time comparison on unordered relations: the linked
// list versus the aggregation tree across sizes, with and without long-lived
// tuples. Expected shape: the tree wins by a growing factor (the paper
// reports ~300× at 64K), and neither algorithm is materially affected by the
// long-lived percentage.
func Figure6(opts Options) (Figure, error) {
	return buildFigure("figure-6", "Time Comparison on Unordered Relations",
		"seconds", opts, timeMetric, []seriesSpec{
			{"linked-list ll=0%", core.Spec{Algorithm: core.LinkedList}, genRandom(0)},
			{"linked-list ll=80%", core.Spec{Algorithm: core.LinkedList}, genRandom(80)},
			{"aggregation-tree ll=0%", core.Spec{Algorithm: core.AggregationTree}, genRandom(0)},
			{"aggregation-tree ll=40%", core.Spec{Algorithm: core.AggregationTree}, genRandom(40)},
			{"aggregation-tree ll=80%", core.Spec{Algorithm: core.AggregationTree}, genRandom(80)},
		})
}

// figure78 builds the ordered-relation time comparison at a given long-lived
// percentage (Figure 7 at 0%, Figure 8 at 80%).
func figure78(id, title string, longPct int, opts Options) (Figure, error) {
	return buildFigure(id, title, "seconds", opts, timeMetric, []seriesSpec{
		{"linked-list", core.Spec{Algorithm: core.LinkedList}, genSorted(longPct)},
		{"aggregation-tree (sorted)", core.Spec{Algorithm: core.AggregationTree}, genSorted(longPct)},
		{"ktree k=400", core.Spec{Algorithm: core.KOrderedTree, K: 400}, genKOrdered(longPct, 400)},
		{"ktree k=40", core.Spec{Algorithm: core.KOrderedTree, K: 40}, genKOrdered(longPct, 40)},
		{"ktree k=4", core.Spec{Algorithm: core.KOrderedTree, K: 4}, genKOrdered(longPct, 4)},
		{"ktree sorted k=1", core.Spec{Algorithm: core.KOrderedTree, K: 1}, genSorted(longPct)},
	})
}

// Figure7 reproduces the time comparison on ordered relations without
// long-lived tuples. Expected shape: smaller k is faster; the aggregation
// tree degenerates toward O(n²) on sorted input; the linked list is flat but
// slow; ktree k=1 over the sorted relation is best.
func Figure7(opts Options) (Figure, error) {
	return figure78("figure-7",
		"Time Comparison on Ordered Relations without Long-lived Tuples", 0, opts)
}

// Figure8 reproduces the same comparison with 80% long-lived tuples.
// Expected shape: the k-ordered trees slow down (larger resident state); the
// aggregation tree paradoxically improves (end-time insertions bush out its
// right flank); the linked list is unaffected.
func Figure8(opts Options) (Figure, error) {
	return figure78("figure-8",
		"Time Comparison on Ordered Relations with 80% Long-lived Tuples", 80, opts)
}

// Figure9 reproduces the main-memory comparison with no long-lived tuples,
// in bytes at 16 bytes per node (§6.2). Expected shape: the aggregation tree
// needs the most memory; the linked list about half (one node per unique
// timestamp versus two); the k-ordered trees collapse to small footprints,
// decreasing with k.
func Figure9(opts Options) (Figure, error) {
	return buildFigure("figure-9", "Memory Comparison with No Long-lived Tuples",
		"bytes", opts, spaceMetric, []seriesSpec{
			{"aggregation-tree", core.Spec{Algorithm: core.AggregationTree}, genRandom(0)},
			{"linked-list", core.Spec{Algorithm: core.LinkedList}, genRandom(0)},
			{"ktree k=400", core.Spec{Algorithm: core.KOrderedTree, K: 400}, genKOrdered(0, 400)},
			{"ktree k=40", core.Spec{Algorithm: core.KOrderedTree, K: 40}, genKOrdered(0, 40)},
			{"ktree k=4", core.Spec{Algorithm: core.KOrderedTree, K: 4}, genKOrdered(0, 4)},
			{"ktree sorted k=1", core.Spec{Algorithm: core.KOrderedTree, K: 1}, genSorted(0)},
		})
}

// MemoryLongLived reproduces the §6.2 finding reported in prose: with many
// long-lived tuples the k-ordered tree's memory is "much worse", while the
// linked list and aggregation tree are "totally unaffected".
func MemoryLongLived(opts Options) (Figure, error) {
	return buildFigure("memory-long-lived", "Memory Comparison with 80% Long-lived Tuples",
		"bytes", opts, spaceMetric, []seriesSpec{
			{"aggregation-tree", core.Spec{Algorithm: core.AggregationTree}, genRandom(80)},
			{"linked-list", core.Spec{Algorithm: core.LinkedList}, genRandom(80)},
			{"ktree k=4", core.Spec{Algorithm: core.KOrderedTree, K: 4}, genKOrdered(80, 4)},
			{"ktree sorted k=1", core.Spec{Algorithm: core.KOrderedTree, K: 1}, genSorted(80)},
		})
}

// AblationBalanced compares the paper's unbalanced aggregation tree, the
// future-work balanced variant (§7), and ktree k=1 on sorted input — the
// aggregation tree's worst case, which balancing repairs.
func AblationBalanced(opts Options) (Figure, error) {
	return buildFigure("ablation-balanced", "Balanced Aggregation Tree on Sorted Relations",
		"seconds", opts, timeMetric, []seriesSpec{
			{"aggregation-tree (sorted)", core.Spec{Algorithm: core.AggregationTree}, genSorted(0)},
			{"balanced-tree (sorted)", core.Spec{Algorithm: core.BalancedTree}, genSorted(0)},
			{"ktree sorted k=1", core.Spec{Algorithm: core.KOrderedTree, K: 1}, genSorted(0)},
			{"balanced-tree (random)", core.Spec{Algorithm: core.BalancedTree}, genRandom(0)},
			{"aggregation-tree (random)", core.Spec{Algorithm: core.AggregationTree}, genRandom(0)},
		})
}

// AblationPageRandomization evaluates the other future-work idea of §7:
// reading a *sorted* relation's pages in randomized order so the aggregation
// tree does not linearize. It measures scan+evaluate time over an on-disk
// relation, sequential versus page-randomized.
func AblationPageRandomization(opts Options) (Figure, error) {
	opts = opts.withDefaults()
	dir, err := os.MkdirTemp("", "tempagg-bench")
	if err != nil {
		return Figure{}, err
	}
	defer os.RemoveAll(dir)

	fig := Figure{
		ID:     "ablation-page-randomization",
		Title:  "Aggregation Tree over Sorted Files: Sequential vs Randomized Page Order",
		Metric: "seconds",
	}
	f := aggregate.For(opts.Agg)
	variants := []struct {
		name string
		opts relation.ScanOptions
	}{
		{"sequential scan", relation.ScanOptions{}},
		{"randomized pages", relation.ScanOptions{RandomizePages: true, Seed: 99}},
	}
	for _, v := range variants {
		s := Series{Name: v.name}
		for _, size := range opts.Sizes {
			var ms []measurement
			for _, seed := range opts.Seeds {
				rel, err := genSorted(0)(size, seed)
				if err != nil {
					return Figure{}, err
				}
				path := filepath.Join(dir, fmt.Sprintf("r-%d-%d.rel", size, seed))
				if err := relation.WriteFile(path, rel); err != nil {
					return Figure{}, err
				}
				m, err := timeScanEvaluate(path, v.opts, f)
				if err != nil {
					return Figure{}, err
				}
				ms = append(ms, m)
			}
			s.Points = append(s.Points, Point{Size: size, Value: timeMetric(median(ms))})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

func timeScanEvaluate(path string, sopts relation.ScanOptions, f aggregate.Func) (measurement, error) {
	start := time.Now()
	sc, err := relation.Open(path, sopts)
	if err != nil {
		return measurement{}, err
	}
	defer sc.Close()
	ev := core.NewAggregationTree(f)
	for {
		t, ok, err := sc.Next()
		if err != nil {
			return measurement{}, err
		}
		if !ok {
			break
		}
		if err := ev.Add(t); err != nil {
			return measurement{}, err
		}
	}
	res, err := ev.Finish()
	if err != nil {
		return measurement{}, err
	}
	if len(res.Rows) == 0 {
		return measurement{}, fmt.Errorf("bench: empty result")
	}
	return measurement{seconds: time.Since(start).Seconds(), peakBytes: ev.Stats().PeakBytes()}, nil
}

// AblationPartitioned evaluates the limited-main-memory strategy of §5.1/§7
// ("accumulate the tuples which would overlap this region of the tree and
// process them later"): the whole-relation aggregation tree versus the
// partitioned evaluation (16 time partitions), serial and parallel, over
// random input. Time in seconds; the peak-memory reduction is asserted in
// the core tests.
func AblationPartitioned(opts Options) (Figure, error) {
	opts = opts.withDefaults()
	fig := Figure{
		ID:     "ablation-partitioned",
		Title:  "Whole Tree vs Partitioned Evaluation (16 partitions, random input)",
		Metric: "seconds",
	}
	f := aggregate.For(opts.Agg)
	variants := []struct {
		name     string
		parallel int
	}{
		{"whole tree", -1},
		{"partitioned serial", 1},
		{"partitioned parallel=4", 4},
	}
	boundaries := core.UniformBoundaries(
		interval.MustNew(0, workload.DefaultLifespan-1), 16)
	for _, v := range variants {
		s := Series{Name: v.name}
		for _, size := range opts.Sizes {
			var ms []measurement
			for _, seed := range opts.Seeds {
				rel, err := genRandom(0)(size, seed)
				if err != nil {
					return Figure{}, err
				}
				start := time.Now()
				var peak int64
				if v.parallel < 0 {
					_, stats, err := core.Run(core.Spec{Algorithm: core.AggregationTree}, f, rel.Tuples)
					if err != nil {
						return Figure{}, err
					}
					peak = stats.PeakBytes()
				} else {
					_, stats, err := core.EvaluatePartitionedTuples(f, rel.Tuples,
						core.PartitionOptions{Boundaries: boundaries, Parallel: v.parallel})
					if err != nil {
						return Figure{}, err
					}
					peak = stats.PeakBytes()
				}
				ms = append(ms, measurement{seconds: time.Since(start).Seconds(), peakBytes: peak})
			}
			s.Points = append(s.Points, Point{Size: size, Value: timeMetric(median(ms))})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Baseline measures the production hot paths head to head over the Table 3
// sweep: the evaluators the optimizer actually picks (aggregation tree on
// random input, balanced tree on random input, sort-then-ktree on sorted
// input) plus the partitioned parallel evaluation. It exists for
// before/after performance comparison across PRs — run it with the
// harness's -json flag and diff the medians (see BENCH_PR4.json).
func Baseline(opts Options) (Figure, error) {
	opts = opts.withDefaults()
	fig, err := buildFigure("baseline", "Hot-Path Baseline (Table 3 sweep)",
		"seconds", opts, timeMetric, []seriesSpec{
			{"aggregation-tree random", core.Spec{Algorithm: core.AggregationTree}, genRandom(0)},
			{"balanced-tree random", core.Spec{Algorithm: core.BalancedTree}, genRandom(0)},
			{"ktree sorted k=1", core.Spec{Algorithm: core.KOrderedTree, K: 1}, genSorted(0)},
		})
	if err != nil {
		return Figure{}, err
	}
	f := aggregate.For(opts.Agg)
	boundaries := core.UniformBoundaries(
		interval.MustNew(0, workload.DefaultLifespan-1), 16)
	s := Series{Name: "partitioned parallel=4 random"}
	for _, size := range opts.Sizes {
		var ms []measurement
		for _, seed := range opts.Seeds {
			rel, err := genRandom(0)(size, seed)
			if err != nil {
				return Figure{}, err
			}
			start := time.Now()
			_, stats, err := core.EvaluatePartitionedTuples(f, rel.Tuples,
				core.PartitionOptions{Boundaries: boundaries, Parallel: 4})
			if err != nil {
				return Figure{}, err
			}
			ms = append(ms, measurement{
				seconds:   time.Since(start).Seconds(),
				peakBytes: stats.PeakBytes(),
			})
		}
		s.Points = append(s.Points, Point{Size: size, Value: timeMetric(median(ms))})
	}
	fig.Series = append(fig.Series, s)
	return fig, nil
}

// SweepFigure measures the PR 5 tentpole: the columnar event sweep against
// the aggregation tree on random-order input — the regime the planner now
// hands to the sweep for decomposable aggregates — plus the sweep's sorted
// fast path (arrival sort skipped) and its long-lived behaviour. The
// acceptance bar recorded in BENCH_PR5.json is a ≥3× median speedup over
// the tree at 64K random-order COUNT with GOMAXPROCS=1.
func SweepFigure(opts Options) (Figure, error) {
	return buildFigure("sweep", "Columnar Event Sweep vs Aggregation Tree",
		"seconds", opts, timeMetric, []seriesSpec{
			{"aggregation-tree random", core.Spec{Algorithm: core.AggregationTree}, genRandom(0)},
			{"sweep random", core.Spec{Algorithm: core.SweepEval}, genRandom(0)},
			{"sweep random ll=80%", core.Spec{Algorithm: core.SweepEval}, genRandom(80)},
			{"sweep sorted", core.Spec{Algorithm: core.SweepEval}, genSorted(0)},
		})
}

// SweepParallelFigure measures the PR 7 tentpole: the chunked parallel scan
// against the serial sweep on random-order input across worker counts, and
// the shared multi-query pass (one SweepGroup serving four aggregates)
// against the same four queries as dedicated sweeps. Worker speedups only
// materialize with GOMAXPROCS > 1 — the harness's JSON report records
// gomaxprocs so BENCH_PR7.json is honest about the machine it ran on; the
// shared-pass gain (one ingest+sort+scan instead of four) shows at any core
// count.
func SweepParallelFigure(opts Options) (Figure, error) {
	opts = opts.withDefaults()
	fig, err := buildFigure("sweep-parallel", "Parallel Sweep Scan and Shared Multi-Query Pass",
		"seconds", opts, timeMetric, []seriesSpec{
			{"sweep parallel=1 random", core.Spec{Algorithm: core.SweepEval, Parallel: 1}, genRandom(0)},
			{"sweep parallel=2 random", core.Spec{Algorithm: core.SweepEval, Parallel: 2}, genRandom(0)},
			{"sweep parallel=4 random", core.Spec{Algorithm: core.SweepEval, Parallel: 4}, genRandom(0)},
		})
	if err != nil {
		return Figure{}, err
	}
	// Shared-group comparison, serial scans on both sides so the measured
	// difference is the sharing itself, not chunking.
	kinds := []aggregate.Kind{aggregate.Count, aggregate.Sum, aggregate.Avg, aggregate.Count}
	shared := Series{Name: "shared group, 4 queries"}
	dedicated := Series{Name: "dedicated sweeps, 4 queries"}
	for _, size := range opts.Sizes {
		var msh, mde []measurement
		for _, seed := range opts.Seeds {
			rel, err := genRandom(0)(size, seed)
			if err != nil {
				return Figure{}, err
			}
			start := time.Now()
			g := core.NewSweepGroup(core.SweepOptions{Parallel: 1})
			for _, k := range kinds {
				if _, err := g.Register(core.GroupQuery{Func: aggregate.For(k)}); err != nil {
					return Figure{}, err
				}
			}
			if err := g.AddBatch(rel.Tuples); err != nil {
				return Figure{}, err
			}
			if _, err := g.Finish(); err != nil {
				return Figure{}, err
			}
			msh = append(msh, measurement{seconds: time.Since(start).Seconds()})

			start = time.Now()
			for _, k := range kinds {
				ev := core.NewSweepOptions(aggregate.For(k), core.SweepOptions{Parallel: 1})
				if err := ev.AddBatch(rel.Tuples); err != nil {
					return Figure{}, err
				}
				if _, err := ev.Finish(); err != nil {
					return Figure{}, err
				}
			}
			mde = append(mde, measurement{seconds: time.Since(start).Seconds()})
		}
		shared.Points = append(shared.Points, Point{Size: size, Value: timeMetric(median(msh))})
		dedicated.Points = append(dedicated.Points, Point{Size: size, Value: timeMetric(median(mde))})
	}
	fig.Series = append(fig.Series, shared, dedicated)
	return fig, nil
}

// LiveReadFigure measures the PR 9 tentpole: snapshot reads against a live
// evaluator mid-ingestion. The stream lands in 8 chunks; after each chunk a
// reader takes a snapshot and evaluates the full aggregate at that epoch. A
// live read pays one tail sweep plus a sealed-prefix merge (sealed-segment
// results are memoized across epochs, catch-up merges are tournament-
// balanced), where re-evaluating from scratch pays a fresh batch sweep
// over the whole prefix. The gap between those two series prices the epoch
// machinery against naive re-evaluation at this read rate — the live
// evaluator's actual win, reads that never block ingestion and cannot
// tear, is gated by the -race harness, not this figure. The single-read
// and no-read series bound the comparison: ingest+one-read is the live
// path's floor, the plain batch sweep is the cost of the answer itself.
func LiveReadFigure(opts Options) (Figure, error) {
	opts = opts.withDefaults()
	fig := Figure{
		ID:     "live-read",
		Title:  "Live Snapshot Reads During Ingestion vs Batch Re-evaluation",
		Metric: "seconds",
	}
	f := aggregate.For(opts.Agg)
	const readPoints = 8
	liveReads := Series{Name: "live: 8 snapshot reads mid-ingest"}
	reEval := Series{Name: "batch re-eval: 8 prefix sweeps"}
	liveOnce := Series{Name: "live: ingest + final read"}
	batch := Series{Name: "sweep batch (no mid-stream reads)"}
	for _, size := range opts.Sizes {
		var mLive, mRe, mOnce, mBatch []measurement
		for _, seed := range opts.Seeds {
			rel, err := genRandom(0)(size, seed)
			if err != nil {
				return Figure{}, err
			}
			ts := rel.Tuples
			chunk := (len(ts) + readPoints - 1) / readPoints

			start := time.Now()
			ev := core.NewLive(core.LiveOptions{})
			for lo := 0; lo < len(ts); lo += chunk {
				hi := min(lo+chunk, len(ts))
				if err := ev.AddBatch(ts[lo:hi]); err != nil {
					return Figure{}, err
				}
				snap, err := ev.Snapshot()
				if err != nil {
					return Figure{}, err
				}
				if _, err := snap.Result(f); err != nil {
					return Figure{}, err
				}
			}
			peak := ev.Stats().PeakBytes()
			if err := ev.Close(); err != nil {
				return Figure{}, err
			}
			mLive = append(mLive, measurement{seconds: time.Since(start).Seconds(), peakBytes: peak})

			start = time.Now()
			for lo := 0; lo < len(ts); lo += chunk {
				hi := min(lo+chunk, len(ts))
				sw := newPrefixSweep(f)
				if err := sw.AddBatch(ts[:hi]); err != nil {
					return Figure{}, err
				}
				if _, err := sw.Finish(); err != nil {
					return Figure{}, err
				}
			}
			mRe = append(mRe, measurement{seconds: time.Since(start).Seconds()})

			start = time.Now()
			once := core.NewLive(core.LiveOptions{})
			if err := once.AddBatch(ts); err != nil {
				return Figure{}, err
			}
			snap, err := once.Snapshot()
			if err != nil {
				return Figure{}, err
			}
			if _, err := snap.Result(f); err != nil {
				return Figure{}, err
			}
			if err := once.Close(); err != nil {
				return Figure{}, err
			}
			mOnce = append(mOnce, measurement{seconds: time.Since(start).Seconds()})

			start = time.Now()
			sw := newPrefixSweep(f)
			if err := sw.AddBatch(ts); err != nil {
				return Figure{}, err
			}
			if _, err := sw.Finish(); err != nil {
				return Figure{}, err
			}
			mBatch = append(mBatch, measurement{seconds: time.Since(start).Seconds()})
		}
		liveReads.Points = append(liveReads.Points, Point{Size: size, Value: timeMetric(median(mLive))})
		reEval.Points = append(reEval.Points, Point{Size: size, Value: timeMetric(median(mRe))})
		liveOnce.Points = append(liveOnce.Points, Point{Size: size, Value: timeMetric(median(mOnce))})
		batch.Points = append(batch.Points, Point{Size: size, Value: timeMetric(median(mBatch))})
	}
	fig.Series = []Series{liveReads, reEval, liveOnce, batch}
	return fig, nil
}

// newPrefixSweep is the from-scratch evaluator the live series is compared
// against: a serial columnar sweep, the fastest batch path on random input.
func newPrefixSweep(f aggregate.Func) core.Evaluator {
	return core.NewSweepOptions(f, core.SweepOptions{Parallel: 1})
}

// rangeQuerySizes picks the sweep sizes for RangeQueryFigure: the S37
// target range 64K–1M events when the caller asked for the full sweep,
// opts.Sizes untouched in smoke runs (-max-size below 64K).
func rangeQuerySizes(sizes []int) []int {
	for _, n := range sizes {
		if n >= 1<<16 {
			return []int{1 << 16, 1 << 18, 1 << 20}
		}
	}
	return sizes
}

// rangeWindows spreads n windows of the given selectivity across the
// relation lifespan, deterministically, so every strategy answers the
// exact same queries.
func rangeWindows(n int, frac float64) []interval.Interval {
	length := interval.Time(frac * float64(workload.DefaultLifespan))
	if length < 1 {
		length = 1
	}
	span := workload.DefaultLifespan - length
	ws := make([]interval.Interval, n)
	for i := range ws {
		lo := span * interval.Time(i) / interval.Time(n)
		ws[i] = interval.MustNew(lo, lo+length-1)
	}
	return ws
}

// RangeQueryFigure measures the S37 tentpole: range-restricted aggregates
// answered by O(k + log n) partial merges against a resident interval
// index, versus the full columnar sweep (which must absorb every tuple and
// clip), versus a warm result-cache read (the per-query floor: one LRU get
// plus a defensive row copy). Three selectivities bracket the window
// sizes; the one-time index build is its own series so the amortization
// point is visible rather than hidden inside the lookup medians.
func RangeQueryFigure(opts Options) (Figure, error) {
	opts = opts.withDefaults()
	sizes := rangeQuerySizes(opts.Sizes)
	fig := Figure{
		ID:     "range-query",
		Title:  "Range Queries: Interval Index vs Full Sweep vs Result Cache",
		Metric: "seconds",
	}
	f := aggregate.For(opts.Agg)
	const queries = 8
	sels := []struct {
		name string
		frac float64
	}{{"1%", 0.01}, {"10%", 0.10}, {"50%", 0.50}}

	build := Series{Name: "index build (one-time)"}
	idxSeries := make([]Series, len(sels))
	sweepSeries := make([]Series, len(sels))
	cacheSeries := make([]Series, len(sels))
	for i, sel := range sels {
		idxSeries[i] = Series{Name: "index lookup, " + sel.name + " selectivity"}
		sweepSeries[i] = Series{Name: "full sweep, " + sel.name + " selectivity"}
		cacheSeries[i] = Series{Name: "result cache hit, " + sel.name + " selectivity"}
	}
	for _, size := range sizes {
		mBuild := []measurement{}
		mIdx := make([][]measurement, len(sels))
		mSweep := make([][]measurement, len(sels))
		mCache := make([][]measurement, len(sels))
		for _, seed := range opts.Seeds {
			rel, err := genRandom(0)(size, seed)
			if err != nil {
				return Figure{}, err
			}
			ts := rel.Tuples

			// One seed's measurements live in a closure so a single
			// deferred Close covers every error path.
			if err := func() error {
				start := time.Now()
				idx, err := core.NewIntervalIndex(ts)
				if err != nil {
					return err
				}
				defer idx.Close()
				mBuild = append(mBuild, measurement{seconds: time.Since(start).Seconds()})

				for i, sel := range sels {
					ws := rangeWindows(queries, sel.frac)

					start = time.Now()
					for _, w := range ws {
						if _, err := idx.Range(f, w); err != nil {
							return err
						}
					}
					mIdx[i] = append(mIdx[i], measurement{seconds: time.Since(start).Seconds() / queries})

					// The sweep must absorb every tuple regardless of the
					// window, so one evaluation prices any of the queries.
					start = time.Now()
					sw := newPrefixSweep(f)
					if err := sw.AddBatch(ts); err != nil {
						return err
					}
					res, err := sw.Finish()
					if err != nil {
						return err
					}
					res.Clip(ws[0])
					mSweep[i] = append(mSweep[i], measurement{seconds: time.Since(start).Seconds()})

					m, err := cacheHitCost(f, idx, ws)
					if err != nil {
						return err
					}
					mCache[i] = append(mCache[i], m)
				}
				return nil
			}(); err != nil {
				return Figure{}, err
			}
		}
		build.Points = append(build.Points, Point{Size: size, Value: timeMetric(median(mBuild))})
		for i := range sels {
			idxSeries[i].Points = append(idxSeries[i].Points, Point{Size: size, Value: timeMetric(median(mIdx[i]))})
			sweepSeries[i].Points = append(sweepSeries[i].Points, Point{Size: size, Value: timeMetric(median(mSweep[i]))})
			cacheSeries[i].Points = append(cacheSeries[i].Points, Point{Size: size, Value: timeMetric(median(mCache[i]))})
		}
	}
	fig.Series = append(fig.Series, build)
	for i := range sels {
		fig.Series = append(fig.Series, idxSeries[i], sweepSeries[i], cacheSeries[i])
	}
	return fig, nil
}

// cacheHitCost primes a result cache with every window's answer, then times
// the warm Gets: the per-query floor once a result is resident (one LRU
// probe plus the defensive row copy).
func cacheHitCost(f aggregate.Func, idx *core.IntervalIndex, ws []interval.Interval) (measurement, error) {
	rc := core.NewResultCache(len(ws) * 2)
	defer rc.Close()
	for _, w := range ws {
		r, err := idx.Range(f, w)
		if err != nil {
			return measurement{}, err
		}
		rc.Put(core.CacheKey{Relation: "R", Version: "v", Kind: f.Kind(), Window: w}, r)
	}
	start := time.Now()
	for _, w := range ws {
		if _, ok := rc.Get(core.CacheKey{Relation: "R", Version: "v", Kind: f.Kind(), Window: w}); !ok {
			return measurement{}, fmt.Errorf("bench: range-query: primed cache missed")
		}
	}
	return measurement{seconds: time.Since(start).Seconds() / float64(len(ws))}, nil
}

// AblationSpan compares instant grouping against coarse span grouping
// (§7: with far fewer buckets, even simple strategies are fast).
func AblationSpan(opts Options) (Figure, error) {
	opts = opts.withDefaults()
	fig := Figure{
		ID:     "ablation-span",
		Title:  "Instant Grouping vs Span Grouping (1000 spans)",
		Metric: "seconds",
	}
	f := aggregate.For(opts.Agg)

	instant := Series{Name: "instant (ktree sorted k=1)"}
	span := Series{Name: "span grouping"}
	window := interval.MustNew(0, workload.DefaultLifespan-1)
	spanLen := workload.DefaultLifespan / 1000
	for _, size := range opts.Sizes {
		var mi, msp []measurement
		for _, seed := range opts.Seeds {
			rel, err := genSorted(0)(size, seed)
			if err != nil {
				return Figure{}, err
			}
			m, err := runOnce(core.Spec{Algorithm: core.KOrderedTree, K: 1}, f, rel, opts.Sink)
			if err != nil {
				return Figure{}, err
			}
			mi = append(mi, m)

			start := time.Now()
			if _, err := core.GroupBySpan(f, rel.Tuples, spanLen, window); err != nil {
				return Figure{}, err
			}
			msp = append(msp, measurement{seconds: time.Since(start).Seconds()})
		}
		instant.Points = append(instant.Points, Point{Size: size, Value: timeMetric(median(mi))})
		span.Points = append(span.Points, Point{Size: size, Value: timeMetric(median(msp))})
	}
	fig.Series = []Series{instant, span}
	return fig, nil
}

// Table1 renders the paper's Table 1: COUNT over the Employed relation.
func Table1() (string, error) {
	f := aggregate.For(aggregate.Count)
	res, _, err := core.Run(core.Spec{Algorithm: core.AggregationTree}, f,
		relation.Employed().Tuples)
	if err != nil {
		return "", err
	}
	return "== table-1: COUNT(Name) over Employed, grouped by instant\n" + res.String(), nil
}

// Table2 renders the paper's Table 2: k-ordered-percentage examples with
// n=10000 and k=100, rebuilt from the definitional constructions.
func Table2() (string, error) {
	const n, k = 10000, 100
	sorted, err := workload.Generate(workload.Config{
		Tuples: n, Order: workload.Sorted, Seed: 1,
	})
	if err != nil {
		return "", err
	}
	rows := []struct {
		desc  string
		build func() ([]float64, error)
	}{
		{"the tuples are sorted", func() ([]float64, error) {
			p, err := order.KOrderedPercentage(sorted.Tuples, k)
			return []float64{p}, err
		}},
		{"2 tuples 100 places apart are swapped", func() ([]float64, error) {
			ts, err := order.SwapPairs(sorted.Tuples, 1, 100)
			if err != nil {
				return nil, err
			}
			p, err := order.KOrderedPercentage(ts, k)
			return []float64{p}, err
		}},
		{"20 tuples are 100 places from being sorted", func() ([]float64, error) {
			ts, err := order.SwapPairs(sorted.Tuples, 10, 100)
			if err != nil {
				return nil, err
			}
			p, err := order.KOrderedPercentage(ts, k)
			return []float64{p}, err
		}},
		{"1000 tuples are 50 places out of order", func() ([]float64, error) {
			ts, err := order.SwapPairs(sorted.Tuples, 500, 50)
			if err != nil {
				return nil, err
			}
			p, err := order.KOrderedPercentage(ts, k)
			return []float64{p}, err
		}},
		{"10 tuples 1 place out of order, 10 are 2, ..., 10 are 100", func() ([]float64, error) {
			ts, err := order.Staircase(sorted.Tuples, 10, 100)
			if err != nil {
				return nil, err
			}
			p, err := order.KOrderedPercentage(ts, k)
			return []float64{p}, err
		}},
	}
	out := "== table-2: k-ordered-percentages (n=10000, k=100)\n"
	for _, r := range rows {
		ps, err := r.build()
		if err != nil {
			return "", fmt.Errorf("bench: table 2 (%s): %w", r.desc, err)
		}
		out += fmt.Sprintf("%-8.4g %s\n", ps[0], r.desc)
	}
	return out, nil
}
