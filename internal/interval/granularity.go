package interval

import (
	"fmt"
	"strings"
)

// Granularity is a calendar-defined span length in chronons, for temporal
// grouping by span (Kline & Snodgrass §2: "a calendar defined length of
// time, such as a year"). The library's convention — documented rather than
// imposed — is one chronon per second; applications using a different
// chronon duration should scale spans themselves.
type Granularity int64

// Calendar granularities, in chronons (seconds). Months and years are fixed
// 30- and 365-day spans: temporal grouping needs equal-width partitions, so
// calendar-irregular months are approximated, as TSQL2 calendars permit.
const (
	Second Granularity = 1
	Minute Granularity = 60 * Second
	Hour   Granularity = 60 * Minute
	Day    Granularity = 24 * Hour
	Week   Granularity = 7 * Day
	Month  Granularity = 30 * Day
	Year   Granularity = 365 * Day
)

// ParseGranularity resolves a unit name (singular or plural, any case) to a
// Granularity.
func ParseGranularity(name string) (Granularity, error) {
	switch strings.ToUpper(strings.TrimSuffix(strings.ToUpper(name), "S")) {
	case "SECOND", "INSTANT", "CHRONON":
		return Second, nil
	case "MINUTE":
		return Minute, nil
	case "HOUR":
		return Hour, nil
	case "DAY":
		return Day, nil
	case "WEEK":
		return Week, nil
	case "MONTH":
		return Month, nil
	case "YEAR":
		return Year, nil
	}
	return 0, fmt.Errorf("interval: unknown granularity %q", name)
}

// Span returns the length of n units in chronons.
func (g Granularity) Span(n int64) Time { return Time(g) * n }

// String names the granularity.
func (g Granularity) String() string {
	switch g {
	case Second:
		return "SECOND"
	case Minute:
		return "MINUTE"
	case Hour:
		return "HOUR"
	case Day:
		return "DAY"
	case Week:
		return "WEEK"
	case Month:
		return "MONTH"
	case Year:
		return "YEAR"
	}
	return fmt.Sprintf("Granularity(%d)", int64(g))
}
