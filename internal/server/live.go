// Live ingestion over the line protocol. Alongside SQL queries, a
// connection may send
//
//	INGEST <relation> <name> <value> <start> <end|FOREVER>
//
// which appends one tuple to the named live relation, auto-registering it
// on first use. Concurrent connections may ingest and SELECT ... LIVE the
// same relation: every read observes one consistent epoch of the shared
// evaluator, never a torn mid-batch state.
package server

import (
	"fmt"
	"strconv"
	"strings"

	"tempagg/internal/core"
	"tempagg/internal/interval"
	"tempagg/internal/tuple"
)

// ingestUsage is the error shown for malformed INGEST lines.
const ingestUsage = "usage: INGEST <relation> <name> <value> <start> <end|FOREVER>"

// executeIngest parses and applies one INGEST line (the part after the
// INGEST keyword).
func (s *Server) executeIngest(rest string) Response {
	fields := strings.Fields(rest)
	if len(fields) != 5 {
		return Response{OK: false, Error: "server: " + ingestUsage}
	}
	rel, name := fields[0], fields[1]
	value, err := strconv.ParseInt(fields[2], 10, 64)
	if err != nil {
		return Response{OK: false, Error: fmt.Sprintf("server: bad value %q: %s", fields[2], ingestUsage)}
	}
	start, err := strconv.ParseInt(fields[3], 10, 64)
	if err != nil {
		return Response{OK: false, Error: fmt.Sprintf("server: bad start %q: %s", fields[3], ingestUsage)}
	}
	var end interval.Time
	if strings.EqualFold(fields[4], "FOREVER") {
		end = interval.Forever
	} else if end, err = strconv.ParseInt(fields[4], 10, 64); err != nil {
		return Response{OK: false, Error: fmt.Sprintf("server: bad end %q: %s", fields[4], ingestUsage)}
	}
	t, err := tuple.New(name, value, start, end)
	if err != nil {
		return Response{OK: false, Error: "server: " + err.Error()}
	}
	if _, err := s.cat.EnsureLive(rel, core.LiveOptions{}); err != nil {
		return Response{OK: false, Error: err.Error()}
	}
	if err := s.cat.LiveIngest(rel, []tuple.Tuple{t}); err != nil {
		return Response{OK: false, Error: err.Error()}
	}
	return Response{OK: true}
}

// Ingest sends one INGEST line for t into the named live relation.
func (c *Client) Ingest(rel string, t tuple.Tuple) (Response, error) {
	end := "FOREVER"
	if t.Valid.End != interval.Forever {
		end = strconv.FormatInt(t.Valid.End, 10)
	}
	return c.Query(fmt.Sprintf("INGEST %s %s %d %d %s", rel, t.Name, t.Value, t.Valid.Start, end))
}
