package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// PoolBalance flags sync.Pool misuse along control-flow paths.
//
// Hazard class: the sweep evaluator's columns and the slab arena both
// cycle buffers through shared sync.Pools (internal/core/arena.go). A Get
// whose result is neither Put back nor handed off on some exit path makes
// the pool churn — steady-state traffic silently degrades to
// allocate-per-query, the exact regression the arena exists to prevent.
// Worse, a Put of a buffer that is then still used hands the same memory
// to a concurrent Get: use-after-recycle, the bug -race only catches when
// two goroutines collide inside the observation window.
//
// Per Get-result binding, the lattice is the powerset of path states
//
//	L  live: obtained from the pool, this function still owns it
//	E  escaped: returned, stored into longer-lived structure, or passed
//	   to a call — ownership left this flow, no balance required
//	P  put: returned to the pool
//	DP deferred put registered
//
// joined by union. Reports:
//
//   - Pool.Get whose result is discarded outright (an ExprStmt)
//   - a return/terminator reached while a binding is L without DP —
//     the buffer leaks on that path
//   - any use of a binding whose states include P — use after Put
//   - a second Put on a binding already P — double Put
//
// Rebinding a variable drops tracking; aliasing (q := v) transfers
// ownership to the alias and marks the original escaped.
var PoolBalance = &Analyzer{
	Name: "poolbalance",
	Doc: "flag sync.Pool.Get results that are neither Put back nor handed " +
		"off on every exit path, uses of a buffer after Put, and double Puts",
	Run: runPoolBalance,
}

const (
	poolL  uint8 = 1 << iota // live, owned here
	poolE                    // escaped: returned/stored/passed on
	poolP                    // put back
	poolDP                   // a deferred Put covers the exits
)

type poolFlow struct {
	pass      *Pass
	reporting bool
	bindExpr  map[string]string    // binding key → rendered variable
	bindSite  map[string]token.Pos // binding key → Get position
}

func runPoolBalance(pass *Pass) error {
	funcBodies(pass.Files, func(body *ast.BlockStmt) {
		g := BuildCFG(body)
		fl := &poolFlow{
			pass:     pass,
			bindExpr: map[string]string{},
			bindSite: map[string]token.Pos{},
		}
		in := Forward[maskFact](g, fl)
		fl.reporting = true
		WalkFacts[maskFact](g, fl, in, func(n ast.Node, f maskFact) {
			fl.report(n, f)
		})
	})
	return nil
}

func (fl *poolFlow) Entry() maskFact                                { return maskFact{} }
func (fl *poolFlow) Join(a, b maskFact) maskFact                    { return joinMasks(a, b) }
func (fl *poolFlow) Equal(a, b maskFact) bool                       { return equalMasks(a, b) }
func (fl *poolFlow) Branch(_ ast.Expr, _ bool, f maskFact) maskFact { return f }

func (fl *poolFlow) Transfer(n ast.Node, f maskFact) maskFact {
	switch n := n.(type) {
	case *ast.AssignStmt:
		return fl.assign(n, f)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Names) == len(vs.Values) {
					for i, name := range vs.Names {
						f = fl.bindOrEscape(name, vs.Values[i], f)
					}
				}
			}
		}
		return f
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
			return fl.call(call, f)
		}
		return fl.escapeUses(n.X, f, false)
	case *ast.DeferStmt:
		if arg, ok := fl.poolPutArg(n.Call); ok {
			if key, ok := fl.trackedKey(arg, f); ok {
				out := f.clone()
				out[key] |= poolDP
				return out
			}
			return f
		}
		// A deferred closure may Put: honor defer func() { p.Put(v) }().
		if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
			out := f
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if arg, ok := fl.poolPutArg(call); ok {
						if key, ok := fl.trackedKey(arg, out); ok {
							out = out.clone()
							out[key] |= poolDP
						}
					}
				}
				return true
			})
			return out
		}
		return fl.escapeUses(n.Call, f, false)
	case *ast.ReturnStmt:
		for _, res := range n.Results {
			f = fl.escapeUses(res, f, true)
		}
		return f
	case *ast.SendStmt:
		f = fl.escapeUses(n.Value, f, true)
		return f
	case *ast.GoStmt:
		// The goroutine (and anything it captures or receives) outlives
		// this flow's reasoning: everything it touches escapes.
		return fl.escapeUses(n.Call, f, true)
	case *ast.RangeStmt:
		return fl.escapeUses(n.X, f, false)
	case ast.Expr:
		// Branch conditions and case expressions: reads only.
		return fl.escapeUses(n, f, false)
	}
	return f
}

// assign handles bindings (v := pool.Get()), aliases, rebinds, and
// stores that escape a tracked value.
func (fl *poolFlow) assign(a *ast.AssignStmt, f maskFact) maskFact {
	// RHS first: uses and escapes happen before the LHS rebinds.
	if len(a.Lhs) == len(a.Rhs) {
		for i, rhs := range a.Rhs {
			if fl.isPoolGet(rhs) {
				continue // handled as a binding below
			}
			escape := !isLocalVar(fl.pass, a.Lhs[i])
			f = fl.escapeUses(rhs, f, escape)
		}
	} else {
		for _, rhs := range a.Rhs {
			if !fl.isPoolGet(rhs) {
				f = fl.escapeUses(rhs, f, false)
			}
		}
	}
	for i, lhs := range a.Lhs {
		var rhs ast.Expr
		if len(a.Lhs) == len(a.Rhs) {
			rhs = a.Rhs[i]
		} else if len(a.Rhs) == 1 {
			// v, ok := pool.Get().(*T) — the first name carries the value.
			if i == 0 {
				rhs = a.Rhs[0]
			}
		}
		if rhs != nil {
			f = fl.bindOrEscape(lhs, rhs, f)
		}
	}
	return f
}

// bindOrEscape binds lhs when rhs is a pool Get, otherwise drops any
// previous tracking of lhs (rebind).
func (fl *poolFlow) bindOrEscape(lhs ast.Expr, rhs ast.Expr, f maskFact) maskFact {
	key, isVar := receiverKey(fl.pass, lhs)
	if fl.isPoolGet(rhs) {
		if !isVar || !isLocalVar(fl.pass, lhs) {
			// Stored straight into a field or global: escaped on arrival.
			return f
		}
		out := f.clone()
		out[key] = poolL
		if !fl.reporting {
			fl.bindExpr[key] = exprString(lhs)
			fl.bindSite[key] = rhs.Pos()
		}
		return out
	}
	// Alias and derived rebinds. q := v (bare alias) transfers ownership
	// to the alias; v = v[:0] (self-derived) keeps the binding. A derived
	// view copied into a *different* variable (b := *buf, s := buf[:n]) is
	// just a read: the pooled object stays owned by the original, so a
	// later Put through the original is still the balance point.
	if isVar && isLocalVar(fl.pass, lhs) {
		if rootKey, ok := fl.trackedRoot(rhs, f); ok {
			_, bareAlias := ast.Unparen(rhs).(*ast.Ident)
			if bareAlias || rootKey == key {
				out := f.clone()
				if rootKey != key {
					out[rootKey] = out[rootKey]&^poolL | poolE
				}
				out[key] = poolL
				if !fl.reporting {
					fl.bindExpr[key] = exprString(lhs)
					fl.bindSite[key] = fl.bindSite[rootKey]
				}
				return out
			}
			// Derived view of a tracked buffer: lhs is not a new binding.
			if _, tracked := f[key]; tracked {
				out := f.clone()
				delete(out, key)
				return out
			}
			return f
		}
	}
	if isVar {
		if _, tracked := f[key]; tracked {
			out := f.clone()
			delete(out, key) // rebound to something else
			return out
		}
	}
	return f
}

// call handles pool.Put and treats other calls' arguments as escapes.
func (fl *poolFlow) call(call *ast.CallExpr, f maskFact) maskFact {
	if fl.isPoolGet(call) {
		if fl.reporting {
			fl.pass.Reportf(call.Pos(),
				"result of sync.Pool.Get is discarded (the buffer is lost to the pool)")
		}
		return f
	}
	if arg, ok := fl.poolPutArg(call); ok {
		key, tracked := fl.trackedKey(arg, f)
		if !tracked {
			return f
		}
		if fl.reporting && f[key]&poolP != 0 {
			fl.pass.Reportf(call.Pos(),
				"%s may already have been Put back to the pool (double Put)",
				fl.bindExpr[key])
		}
		out := f.clone()
		out[key] = poolP
		return out
	}
	for _, arg := range call.Args {
		f = fl.escapeUses(arg, f, true)
	}
	f = fl.escapeUses(call.Fun, f, false)
	return f
}

// escapeUses walks expr; every appearance of a tracked binding is a use
// (reported if the binding may already be Put). When escape is true the
// binding also transitions to escaped — ownership leaves this flow.
func (fl *poolFlow) escapeUses(expr ast.Expr, f maskFact, escape bool) maskFact {
	if expr == nil {
		return f
	}
	out := f
	ast.Inspect(expr, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		key, tracked := fl.trackedKey(id, out)
		if !tracked {
			return true
		}
		if fl.reporting && out[key]&poolP != 0 {
			fl.pass.Reportf(id.Pos(),
				"use of %s after it was Put back to the pool (use-after-recycle)",
				fl.bindExpr[key])
		}
		if escape {
			out = out.clone()
			out[key] = out[key]&^poolL | poolE
		}
		return true
	})
	return out
}

// report flags leaks at exits: a binding still live (L) with no deferred
// Put when the path leaves the function.
func (fl *poolFlow) report(n ast.Node, f maskFact) {
	switch n.(type) {
	case *ast.ReturnStmt, *ImplicitReturn:
	default:
		if _, ok := isTerminator(n); !ok {
			return
		}
	}
	// Apply the node's own transfer first — silently, WalkFacts will run
	// the reporting transfer itself — so a return's result expressions
	// escape before the leak check.
	fl.reporting = false
	f = fl.Transfer(n, f)
	fl.reporting = true
	keys := make([]string, 0, len(f))
	for key := range f {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		s := f[key]
		// Put, escape, and rebind all *replace* L, so a surviving L bit
		// means at least one path reaches this exit still owning the buffer;
		// only a deferred Put (which runs after this exit) excuses it.
		if s&poolL != 0 && s&poolDP == 0 {
			site := fl.pass.Fset.Position(fl.bindSite[key])
			fl.pass.Reportf(n.Pos(),
				"%s obtained from sync.Pool at line %d is neither Put back nor "+
					"handed off on this path (pool churn)",
				fl.bindExpr[key], site.Line)
		}
	}
}

// isPoolGet reports whether expr is sync.Pool.Get, possibly behind a
// type assertion or parens: pool.Get(), pool.Get().(*T).
func (fl *poolFlow) isPoolGet(expr ast.Expr) bool {
	e := ast.Unparen(expr)
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ast.Unparen(ta.X)
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeFunc(fl.pass.TypesInfo, call)
	return isPoolMethod(fn, "Get")
}

// poolPutArg returns the argument of a sync.Pool.Put call.
func (fl *poolFlow) poolPutArg(call *ast.CallExpr) (ast.Expr, bool) {
	fn := calleeFunc(fl.pass.TypesInfo, call)
	if !isPoolMethod(fn, "Put") || len(call.Args) != 1 {
		return nil, false
	}
	return call.Args[0], true
}

func isPoolMethod(fn *types.Func, name string) bool {
	if fn == nil || fn.Name() != name || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	rn := namedType(sig.Recv().Type())
	return rn != nil && rn.Obj().Name() == "Pool"
}

// trackedRoot unwraps parens, slices, indexes, derefs, and address-of
// down to a tracked variable: the root of a derived expression like
// (*p)[:0] or col[:n].
func (fl *poolFlow) trackedRoot(expr ast.Expr, f maskFact) (string, bool) {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.SliceExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.UnaryExpr:
			if e.Op != token.AND {
				return "", false
			}
			expr = e.X
		case *ast.Ident:
			key, ok := receiverKey(fl.pass, e)
			if !ok {
				return "", false
			}
			_, tracked := f[key]
			return key, tracked
		default:
			return "", false
		}
	}
}

// trackedKey resolves expr (possibly &v or *v around a variable) to a
// tracked binding key.
func (fl *poolFlow) trackedKey(expr ast.Expr, f maskFact) (string, bool) {
	e := ast.Unparen(expr)
	switch u := e.(type) {
	case *ast.UnaryExpr:
		if u.Op == token.AND {
			e = ast.Unparen(u.X)
		}
	case *ast.StarExpr:
		e = ast.Unparen(u.X)
	}
	key, ok := receiverKey(fl.pass, e)
	if !ok {
		return "", false
	}
	_, tracked := f[key]
	return key, tracked
}

// isLocalVar reports whether expr is a plain identifier naming a
// function-local variable (not a field selector, index, or package-level
// object).
func isLocalVar(pass *Pass, expr ast.Expr) bool {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = pass.TypesInfo.Uses[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() || v.Pkg() == nil {
		return false
	}
	return v.Parent() != v.Pkg().Scope()
}
