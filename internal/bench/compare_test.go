package bench

import (
	"os"
	"strings"
	"testing"
)

// handBaseline is a BENCH_PR<N>.json-shaped report: before/after points,
// where after_seconds is the checked-in measurement.
const handBaseline = `{
  "pr": 4,
  "experiment": "baseline",
  "acceptance": {"criterion": "x", "speedup": 1.68, "pass": true},
  "series": [
    {"name": "aggregation-tree random", "points": [
      {"size": 1024, "before_seconds": 0.002, "after_seconds": 0.001, "speedup": 2.0},
      {"size": 2048, "before_seconds": 0.004, "after_seconds": 0.002, "speedup": 2.0},
      {"size": 4096, "before_seconds": 0.008, "after_seconds": 0.004, "speedup": 2.0}
    ]},
    {"name": "ktree sorted k=1", "points": [
      {"size": 1024, "before_seconds": 0.001, "after_seconds": 0.001, "speedup": 1.0}
    ]}
  ]
}`

// harnessBaseline is the harness's own -json report shape (value points).
const harnessBaseline = `{
  "sizes": [1024],
  "experiments": [
    {"id": "baseline", "title": "t", "metric": "seconds", "series": [
      {"name": "aggregation-tree random", "points": [{"size": 1024, "value": 0.001}]}
    ]}
  ]
}`

// stagedBaseline is a current harness report with per-stage timing fields.
const stagedBaseline = `{
  "sizes": [1024],
  "gomaxprocs": 4,
  "experiments": [
    {"id": "baseline", "title": "t", "metric": "seconds", "series": [
      {"name": "aggregation-tree random", "points": [
        {"size": 1024, "value": 0.001,
         "stages": {"radix-sort": 0.0002, "scan": 0.0006, "emit": 0.0002}}
      ]}
    ]}
  ]
}`

// TestBaselinesParseAcrossReportVersions pins the compatibility contract in
// both directions: reports that predate the per-stage timing fields (the
// checked-in BENCH_PR<N>.json files) must keep parsing and gating, and a
// report that carries the new fields must parse in an old binary's shape —
// both rely on encoding/json dropping unknown fields rather than erroring.
func TestBaselinesParseAcrossReportVersions(t *testing.T) {
	for _, path := range []string{"../../BENCH_PR5.json", "../../BENCH_PR7.json"} {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("checked-in baseline unreadable: %v", err)
		}
		points, err := ParseBaseline(data)
		if err != nil {
			t.Errorf("%s no longer parses: %v", path, err)
		}
		if len(points) == 0 {
			t.Errorf("%s parsed to zero points", path)
		}
	}
	points, err := ParseBaseline([]byte(stagedBaseline))
	if err != nil {
		t.Fatalf("report with stage timings must parse as a baseline: %v", err)
	}
	if v := points[pointKey{"baseline", "aggregation-tree random", 1024}]; v != 0.001 {
		t.Fatalf("staged shape: value not picked up, got %g", v)
	}
	// And the gate itself runs against the staged report.
	fig := measuredFigure("aggregation-tree random", map[int]float64{1024: 0.001})
	res, err := RegressionGate([]byte(stagedBaseline), []Figure{fig}, 0.25)
	if err != nil || len(res.Regressions) != 0 {
		t.Fatalf("gate vs staged baseline: %+v, %v", res, err)
	}
}

func measuredFigure(name string, sizeToSeconds map[int]float64) Figure {
	s := Series{Name: name}
	for size, v := range sizeToSeconds {
		s.Points = append(s.Points, Point{Size: size, Value: v})
	}
	return Figure{ID: "baseline", Metric: "seconds", Series: []Series{s}}
}

func TestParseBaselineBothShapes(t *testing.T) {
	hand, err := ParseBaseline([]byte(handBaseline))
	if err != nil {
		t.Fatal(err)
	}
	if v := hand[pointKey{"baseline", "aggregation-tree random", 2048}]; v != 0.002 {
		t.Fatalf("hand shape: after_seconds not picked up, got %g", v)
	}
	harness, err := ParseBaseline([]byte(harnessBaseline))
	if err != nil {
		t.Fatal(err)
	}
	if v := harness[pointKey{"baseline", "aggregation-tree random", 1024}]; v != 0.001 {
		t.Fatalf("harness shape: value not picked up, got %g", v)
	}
	if _, err := ParseBaseline([]byte(`{"pr": 9}`)); err == nil {
		t.Fatal("a report with no points must be rejected")
	}
	if _, err := ParseBaseline([]byte(`nonsense`)); err == nil {
		t.Fatal("invalid JSON must be rejected")
	}
}

func TestRegressionGatePassesWithinTolerance(t *testing.T) {
	// 20% slower than the baseline at every size: inside the 25% gate.
	fig := measuredFigure("aggregation-tree random",
		map[int]float64{1024: 0.0012, 2048: 0.0024, 4096: 0.0048})
	res, err := RegressionGate([]byte(handBaseline), []Figure{fig}, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Regressions) != 0 {
		t.Fatalf("unexpected regressions: %v", res.Regressions)
	}
	if len(res.Lines) != 1 || !strings.Contains(res.Lines[0], "3 shared point(s)") {
		t.Fatalf("lines = %v", res.Lines)
	}
}

func TestRegressionGateFailsBeyondTolerance(t *testing.T) {
	fig := measuredFigure("aggregation-tree random",
		map[int]float64{1024: 0.002, 2048: 0.004, 4096: 0.008}) // 2× the baseline
	res, err := RegressionGate([]byte(handBaseline), []Figure{fig}, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Regressions) != 1 {
		t.Fatalf("regressions = %v", res.Regressions)
	}
	if !strings.Contains(res.Regressions[0], "aggregation-tree random") {
		t.Fatalf("regression line lacks the series: %q", res.Regressions[0])
	}
}

func TestRegressionGateMedianShrugsOffOneNoisyPoint(t *testing.T) {
	// One wild point among three, the others matched: median ratio stays 1.
	fig := measuredFigure("aggregation-tree random",
		map[int]float64{1024: 0.01, 2048: 0.002, 4096: 0.004})
	res, err := RegressionGate([]byte(handBaseline), []Figure{fig}, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Regressions) != 0 {
		t.Fatalf("median gate tripped on a single noisy point: %v", res.Regressions)
	}
}

func TestRegressionGateSkipsNonOverlapAndNonSeconds(t *testing.T) {
	figs := []Figure{
		// Unknown series and unknown size: no overlap, skipped.
		measuredFigure("no-such-series", map[int]float64{1024: 9}),
		// Memory figures are not timing-gated.
		{ID: "baseline", Metric: "bytes", Series: []Series{
			{Name: "aggregation-tree random", Points: []Point{{Size: 1024, Value: 1e9}}},
		}},
		measuredFigure("ktree sorted k=1", map[int]float64{1024: 0.001}),
	}
	res, err := RegressionGate([]byte(handBaseline), figs, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Lines) != 1 || len(res.Regressions) != 0 {
		t.Fatalf("res = %+v", res)
	}

	// Nothing overlapping at all is an error, not a silent pass.
	if _, err := RegressionGate([]byte(handBaseline),
		[]Figure{measuredFigure("no-such-series", map[int]float64{1: 1})}, 0.25); err == nil {
		t.Fatal("no overlap must be an error")
	}
}

// TestSweepFigureShape pins the PR 5 experiment: the sweep must beat the
// aggregation tree on random input at every measured size (the acceptance
// criterion of BENCH_PR5.json, scaled down).
func TestSweepFigureShape(t *testing.T) {
	fig, err := SweepFigure(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 4 {
		t.Fatalf("%d series", len(fig.Series))
	}
	tree := fig.Series[0]
	sweep := fig.Series[1]
	for i := range tree.Points {
		if sweep.Points[i].Value >= tree.Points[i].Value {
			t.Errorf("size %d: sweep %.4gs not faster than tree %.4gs",
				tree.Points[i].Size, sweep.Points[i].Value, tree.Points[i].Value)
		}
	}
}
