package query

import (
	"testing"

	"tempagg/internal/interval"
	"tempagg/internal/relation"
	"tempagg/internal/tuple"
)

func TestParseDistinct(t *testing.T) {
	q := mustParse(t, "SELECT COUNT(DISTINCT Name) FROM R")
	if !q.Aggs[0].Distinct {
		t.Fatal("DISTINCT not parsed")
	}
	q = mustParse(t, "SELECT SUM(distinct Salary) FROM R")
	if !q.Aggs[0].Distinct {
		t.Fatal("lower-case DISTINCT not parsed")
	}
	q = mustParse(t, "SELECT COUNT(Name) FROM R")
	if q.Aggs[0].Distinct {
		t.Fatal("DISTINCT set without keyword")
	}
}

func TestParseValidOverlaps(t *testing.T) {
	q := mustParse(t, "SELECT COUNT(Name) FROM R VALID OVERLAPS 10 99")
	if q.Window == nil || *q.Window != interval.MustNew(10, 99) {
		t.Fatalf("window = %v", q.Window)
	}
	q = mustParse(t, "SELECT COUNT(Name) FROM R VALID OVERLAPS 5 FOREVER")
	if q.Window == nil || q.Window.End != interval.Forever {
		t.Fatalf("window = %v", q.Window)
	}
}

func TestParseValidOverlapsErrors(t *testing.T) {
	for _, sql := range []string{
		"SELECT COUNT(Name) FROM R VALID 10 99",
		"SELECT COUNT(Name) FROM R VALID OVERLAPS",
		"SELECT COUNT(Name) FROM R VALID OVERLAPS 10",
		"SELECT COUNT(Name) FROM R VALID OVERLAPS 99 10",
		"SELECT COUNT(Name) FROM R VALID OVERLAPS x y",
	} {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q): expected error", sql)
		}
	}
}

func TestDistinctAndWindowStringRoundTrip(t *testing.T) {
	for _, sql := range []string{
		"SELECT COUNT(DISTINCT Name) FROM R",
		"SELECT SUM(Salary) FROM R VALID OVERLAPS 5 FOREVER",
		"SELECT AVG(DISTINCT Salary) FROM R VALID OVERLAPS 0 100 WHERE Salary > 3",
	} {
		q := mustParse(t, sql)
		again := mustParse(t, q.String())
		if q.String() != again.String() {
			t.Errorf("round trip changed %q -> %q", q.String(), again.String())
		}
	}
}

func TestExecuteDistinctRemovesDuplicates(t *testing.T) {
	rel := relation.FromTuples("R", []tuple.Tuple{
		tuple.MustNew("a", 5, 0, 9),
		tuple.MustNew("a", 5, 0, 9), // exact duplicate
		tuple.MustNew("b", 5, 0, 9),
	})
	plain := execute(t, "SELECT COUNT(Name) FROM R", rel)
	if v, _ := plain.Groups[0].Result.At(3); v.Int != 3 {
		t.Fatalf("plain count = %v, want 3", v)
	}
	distinct := execute(t, "SELECT COUNT(DISTINCT Name) FROM R", rel)
	if v, _ := distinct.Groups[0].Result.At(3); v.Int != 2 {
		t.Fatalf("distinct count = %v, want 2", v)
	}
}

func TestExecuteWindowClipsResult(t *testing.T) {
	rel := relation.Employed()
	qr := execute(t, "SELECT COUNT(Name) FROM Employed VALID OVERLAPS 10 19", rel)
	res := qr.Groups[0].Result
	if err := res.ValidatePartition(10, 19); err != nil {
		t.Fatalf("clipped result must partition the window: %v", err)
	}
	// Counts inside the window are unchanged: the window only restricts the
	// reported range, not which tuples overlap each instant.
	if v, ok := res.At(12); !ok || v.Int != 2 {
		t.Fatalf("count at 12 = %v, want 2", v)
	}
	if v, ok := res.At(18); !ok || v.Int != 3 {
		t.Fatalf("count at 18 = %v, want 3", v)
	}
	if _, ok := res.At(9); ok {
		t.Fatal("instants outside the window must be absent")
	}
}

func TestExecuteWindowWithSpan(t *testing.T) {
	rel := relation.FromTuples("R", []tuple.Tuple{
		tuple.MustNew("a", 1, 0, 25),
		tuple.MustNew("b", 1, 40, 90),
	})
	qr := execute(t, "SELECT COUNT(Name) FROM R VALID OVERLAPS 0 99 GROUP BY SPAN 50", rel)
	res := qr.Groups[0].Result
	if err := res.ValidatePartition(0, 99); err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("%d spans, want 2", len(res.Rows))
	}
	if res.Value(0).Int != 2 || res.Value(1).Int != 1 {
		t.Fatalf("span counts = %d, %d; want 2, 1", res.Value(0).Int, res.Value(1).Int)
	}
}

func TestExecuteWindowAllowsOpenEndedSpanError(t *testing.T) {
	// A window ending at FOREVER does not rescue span grouping.
	if _, err := Run("SELECT COUNT(Name) FROM Employed VALID OVERLAPS 0 FOREVER GROUP BY SPAN 10",
		relation.Employed(), nil); err == nil {
		t.Fatal("open-ended span grouping must still fail")
	}
}

func TestDeduplicateHelper(t *testing.T) {
	ts := []tuple.Tuple{
		tuple.MustNew("a", 1, 0, 5),
		tuple.MustNew("b", 1, 0, 5),
		tuple.MustNew("a", 1, 0, 5),
		tuple.MustNew("a", 2, 0, 5), // different value: not a duplicate
	}
	out := relation.Deduplicate(ts)
	if len(out) != 3 {
		t.Fatalf("deduplicated to %d tuples, want 3", len(out))
	}
	if out[0].Name != "a" || out[1].Name != "b" || out[2].Value != 2 {
		t.Fatalf("order not preserved: %v", out)
	}
	rel := relation.FromTuples("R", ts)
	if removed := rel.DeduplicateInPlace(); removed != 1 {
		t.Fatalf("removed %d, want 1", removed)
	}
}
