package aggregate

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseKind(t *testing.T) {
	for _, k := range Kinds() {
		got, err := ParseKind(k.String())
		if err != nil {
			t.Fatalf("ParseKind(%s): %v", k, err)
		}
		if got != k {
			t.Fatalf("ParseKind(%s) = %v", k, got)
		}
	}
	if _, err := ParseKind("MEDIAN"); err == nil {
		t.Fatal("ParseKind(MEDIAN): expected error")
	}
	if _, err := ParseKind("count"); err == nil {
		t.Fatal("ParseKind is case-sensitive; lower case should fail")
	}
}

func TestKindString(t *testing.T) {
	if s := Kind(99).String(); s != "Kind(99)" {
		t.Fatalf("unknown kind string = %q", s)
	}
}

func addAll(f Func, vs []int64) State {
	s := f.Zero()
	for _, v := range vs {
		s = f.Add(s, v)
	}
	return s
}

func TestFinalOnKnownInputs(t *testing.T) {
	vs := []int64{40, 45, 35, 37}
	cases := []struct {
		kind      Kind
		wantInt   int64
		wantFloat float64
	}{
		{Count, 4, 4},
		{Sum, 157, 157},
		{Avg, 39, 39.25},
		{Min, 35, 35},
		{Max, 45, 45},
	}
	for _, tc := range cases {
		t.Run(tc.kind.String(), func(t *testing.T) {
			f := For(tc.kind)
			v := f.Final(addAll(f, vs))
			if v.Null {
				t.Fatal("unexpected null")
			}
			if v.Int != tc.wantInt || v.Float != tc.wantFloat {
				t.Fatalf("%s = {Int:%d Float:%v}, want {Int:%d Float:%v}",
					tc.kind, v.Int, v.Float, tc.wantInt, tc.wantFloat)
			}
		})
	}
}

func TestEmptyGroupSemantics(t *testing.T) {
	// §3: the count field recognizes empty groups. COUNT of an empty group
	// is 0; the other aggregates are null.
	for _, k := range Kinds() {
		f := For(k)
		v := f.Final(f.Zero())
		if k == Count {
			if v.Null || v.Int != 0 {
				t.Errorf("COUNT(∅) = %+v, want 0", v)
			}
		} else if !v.Null {
			t.Errorf("%s(∅) = %+v, want null", k, v)
		}
	}
}

func TestNegativeValues(t *testing.T) {
	f := For(Min)
	s := addAll(f, []int64{3, -7, 0, -2})
	if got := f.Final(s).Int; got != -7 {
		t.Fatalf("MIN = %d, want -7", got)
	}
	f = For(Max)
	s = addAll(f, []int64{-3, -7, -1, -2})
	if got := f.Final(s).Int; got != -1 {
		t.Fatalf("MAX = %d, want -1", got)
	}
	f = For(Avg)
	s = addAll(f, []int64{-3, 3})
	if v := f.Final(s); v.Float != 0 || v.Int != 0 {
		t.Fatalf("AVG(-3,3) = %+v, want 0", v)
	}
}

func TestMergeIdentity(t *testing.T) {
	for _, k := range Kinds() {
		f := For(k)
		s := addAll(f, []int64{5, 9})
		if f.Merge(f.Zero(), s) != s || f.Merge(s, f.Zero()) != s {
			t.Errorf("%s: Zero is not a Merge identity", k)
		}
	}
}

// randomValues draws a short random value slice.
func randomValues(r *rand.Rand) []int64 {
	n := r.Intn(8)
	vs := make([]int64, n)
	for i := range vs {
		vs[i] = r.Int63n(201) - 100
	}
	return vs
}

func TestMergeEquivalentToSequentialAdd(t *testing.T) {
	// Property: splitting a value sequence arbitrarily and merging the
	// partial states equals absorbing the whole sequence — the
	// decomposability the tree algorithms rely on.
	r := rand.New(rand.NewSource(7))
	for _, k := range Kinds() {
		f := For(k)
		prop := func() bool {
			a, b := randomValues(r), randomValues(r)
			merged := f.Merge(addAll(f, a), addAll(f, b))
			whole := addAll(f, append(append([]int64{}, a...), b...))
			return f.StateEqual(merged, whole) && merged.Count() == whole.Count()
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%s: %v", k, err)
		}
	}
}

func TestMergeCommutativeAssociative(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for _, k := range Kinds() {
		f := For(k)
		prop := func() bool {
			a := addAll(f, randomValues(r))
			b := addAll(f, randomValues(r))
			c := addAll(f, randomValues(r))
			if !f.StateEqual(f.Merge(a, b), f.Merge(b, a)) {
				return false
			}
			return f.StateEqual(f.Merge(f.Merge(a, b), c), f.Merge(a, f.Merge(b, c)))
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%s: %v", k, err)
		}
	}
}

func TestStateEqualAvgIsExact(t *testing.T) {
	f := For(Avg)
	a := addAll(f, []int64{1, 2}) // mean 1.5
	b := addAll(f, []int64{1, 1, 2, 2})
	if !f.StateEqual(a, b) {
		t.Fatal("AVG states with equal means must compare equal")
	}
	c := addAll(f, []int64{1, 2, 2})
	if f.StateEqual(a, c) {
		t.Fatal("AVG states with different means must not compare equal")
	}
}

func TestStateEqualEmptyVsZeroSum(t *testing.T) {
	// SUM over {0} is 0, not null: it must differ from the empty state.
	f := For(Sum)
	zero := f.Add(f.Zero(), 0)
	if f.StateEqual(zero, f.Zero()) {
		t.Fatal("SUM({0}) must not equal SUM(∅)")
	}
}

func TestValueString(t *testing.T) {
	f := For(Avg)
	if s := f.Final(f.Zero()).String(); s != "-" {
		t.Fatalf("null renders as %q, want -", s)
	}
	if s := f.Final(addAll(f, []int64{1, 2})).String(); s != "1.5" {
		t.Fatalf("AVG(1,2) renders as %q, want 1.5", s)
	}
	c := For(Count)
	if s := c.Final(addAll(c, []int64{9, 9})).String(); s != "2" {
		t.Fatalf("COUNT renders as %q, want 2", s)
	}
}
