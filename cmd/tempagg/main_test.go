package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tempagg"
)

func writeEmployed(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "Employed.rel")
	if err := tempagg.WriteRelation(path, tempagg.Employed()); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunTable1(t *testing.T) {
	path := writeEmployed(t)
	var b strings.Builder
	err := run([]string{"-relation", path, "-query", "SELECT COUNT(Name) FROM Employed"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"3 | 18 | 20", "1 | 22 | ∞", "plan:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunExplain(t *testing.T) {
	path := writeEmployed(t)
	var b strings.Builder
	err := run([]string{"-relation", path, "-query",
		"SELECT COUNT(Name) FROM Employed", "-explain"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(b.String(), "plan:") {
		t.Fatalf("explain output = %q", b.String())
	}
	if !strings.Contains(b.String(), "alternatives:") {
		t.Fatalf("explain output missing planner alternatives: %q", b.String())
	}
}

// An EXPLAIN ANALYZE statement through the CLI renders the traced report:
// span tree, counters, and estimated-vs-actual cost.
func TestRunExplainAnalyzeStatement(t *testing.T) {
	path := writeEmployed(t)
	var b strings.Builder
	err := run([]string{"-relation", path, "-query",
		"EXPLAIN ANALYZE SELECT COUNT(Name) FROM Employed"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"trace:", "counters:", "execute"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("EXPLAIN ANALYZE output missing %q:\n%s", want, b.String())
		}
	}
}

func TestRunCoalesceAndName(t *testing.T) {
	path := writeEmployed(t)
	var b strings.Builder
	err := run([]string{"-relation", path, "-name", "Emp", "-query",
		"SELECT MIN(Salary) FROM Emp", "-coalesce"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "MIN") {
		t.Fatalf("output = %q", b.String())
	}
}

func TestRunKboundAndMemoryFlags(t *testing.T) {
	path := writeEmployed(t)
	var b strings.Builder
	err := run([]string{"-relation", path, "-kbound", "4", "-memory", "1024",
		"-query", "SELECT COUNT(Name) FROM Employed", "-explain"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "k=4") {
		t.Fatalf("kbound not honoured: %q", b.String())
	}
}

func TestRunErrors(t *testing.T) {
	var b strings.Builder
	if err := run(nil, &b); err == nil {
		t.Error("missing flags must fail")
	}
	if err := run([]string{"-relation", "/nope.rel", "-query", "SELECT COUNT(Name) FROM x"}, &b); err == nil {
		t.Error("missing file must fail")
	}
	path := writeEmployed(t)
	if err := run([]string{"-relation", path, "-query", "SELEC"}, &b); err == nil {
		t.Error("bad query must fail")
	}
}

func TestRunCatalogMode(t *testing.T) {
	dir := t.TempDir()
	if err := tempagg.WriteRelation(filepath.Join(dir, "Employed.rel"), tempagg.Employed()); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	err := run([]string{"-db", dir, "-query", "SELECT COUNT(Name) FROM Employed"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "3 | 18 | 20") {
		t.Fatalf("catalog-mode output:\n%s", b.String())
	}
}

func TestRunJSONOutput(t *testing.T) {
	path := writeEmployed(t)
	var b strings.Builder
	err := run([]string{"-relation", path, "-json", "-query",
		"SELECT COUNT(Name) FROM Employed"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"aggregate":"COUNT"`) {
		t.Fatalf("json output:\n%s", b.String())
	}
}

func TestRunCostBasedPlanning(t *testing.T) {
	path := writeEmployed(t)
	var b strings.Builder
	err := run([]string{"-relation", path, "-cost-memory", "1", "-cost-io", "0.001",
		"-cost-cpu", "0.000001", "-explain",
		"-query", "SELECT COUNT(Name) FROM Employed"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "estimated cost") {
		t.Fatalf("cost-based plan missing estimate: %q", b.String())
	}
}

func TestRunChartOutput(t *testing.T) {
	path := writeEmployed(t)
	var b strings.Builder
	err := run([]string{"-relation", path, "-chart",
		"-query", "SELECT COUNT(Name) FROM Employed"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "█") {
		t.Fatalf("chart output has no bars:\n%s", b.String())
	}
}

func TestRunScriptFile(t *testing.T) {
	path := writeEmployed(t)
	script := filepath.Join(t.TempDir(), "queries.sql")
	content := "# Table 1 and friends\nSELECT COUNT(Name) FROM Employed\n\nSELECT MAX(Salary) FROM Employed AT 19\n"
	if err := os.WriteFile(script, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := run([]string{"-relation", path, "-f", script}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "3 | 18 | 20") || !strings.Contains(out, "45 | 19 | 19") {
		t.Fatalf("script output:\n%s", out)
	}
}

func TestRunTraceFlag(t *testing.T) {
	path := writeEmployed(t)
	for _, args := range [][]string{
		{"-relation", path, "-trace", "-query", "SELECT COUNT(Name) FROM Employed"},
		{"-db", filepath.Dir(path), "-trace", "-query", "SELECT COUNT(Name) FROM Employed"},
	} {
		var b strings.Builder
		if err := run(args, &b); err != nil {
			t.Fatal(err)
		}
		out := b.String()
		for _, want := range []string{"-- trace: ", `"algorithm":`, `"tuples":4`, `"name":"plan"`} {
			if !strings.Contains(out, want) {
				t.Errorf("%v: trace output missing %q:\n%s", args, want, out)
			}
		}
		if !strings.Contains(out, "3 | 18 | 20") {
			t.Errorf("%v: -trace must not suppress the result:\n%s", args, out)
		}
	}
}

func TestRunScriptFileErrors(t *testing.T) {
	path := writeEmployed(t)
	var b strings.Builder
	if err := run([]string{"-relation", path, "-f", "/nonexistent.sql"}, &b); err == nil {
		t.Error("missing script must fail")
	}
	script := filepath.Join(t.TempDir(), "bad.sql")
	if err := os.WriteFile(script, []byte("SELEC\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-relation", path, "-f", script}, &b); err == nil {
		t.Error("bad query in script must fail")
	}
}
