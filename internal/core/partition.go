package core

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"tempagg/internal/aggregate"
	"tempagg/internal/interval"
	"tempagg/internal/relation"
	"tempagg/internal/tuple"
)

// TupleIterator is a forward-only tuple stream; TupleSource adds rescan.
type TupleIterator interface {
	Next() (t tuple.Tuple, ok bool, err error)
}

// PartitionOptions configures the limited-main-memory evaluation of §5.1/§7:
// "it is simple to mark a parent as pointing to a subtree not currently in
// memory. Simply accumulate the tuples which would overlap this region of
// the tree and process them later." The time-line is cut into regions; each
// region's tuples are buffered (in memory, or spilled to disk relation
// files) and evaluated by an independent aggregation tree, so only one
// region's tree — not the whole relation's — is ever resident.
type PartitionOptions struct {
	// Boundaries are ascending cut points: partition i covers
	// [Boundaries[i-1], Boundaries[i]-1], with implicit 0 before the first
	// and ∞ after the last. Empty means a single partition (the plain
	// aggregation tree). See UniformBoundaries.
	Boundaries []interval.Time
	// SpillDir, when non-empty, buffers each partition's tuples in a
	// temporary relation file under this directory instead of in memory —
	// the out-of-core mode. The directory must exist.
	SpillDir string
	// Parallel is the number of partitions evaluated concurrently; values
	// below 2 mean serial evaluation. Peak memory scales with Parallel.
	Parallel int
}

// UniformBoundaries cuts the given finite lifespan into n equal-width
// partitions and returns the n-1 interior boundaries, for use in
// PartitionOptions. With n <= 1 or an open-ended lifespan it returns nil
// (a single partition).
func UniformBoundaries(lifespan interval.Interval, n int) []interval.Time {
	if n <= 1 || lifespan.End == interval.Forever {
		return nil
	}
	width := (lifespan.End - lifespan.Start + 1) / interval.Time(n)
	if width <= 0 {
		width = 1
	}
	var out []interval.Time
	for i := 1; i < n; i++ {
		b := lifespan.Start + interval.Time(i)*width
		if b > lifespan.End {
			break
		}
		out = append(out, b)
	}
	return out
}

// spans expands boundaries into the covered partition ranges.
func partitionSpans(boundaries []interval.Time) ([]interval.Interval, error) {
	prev := interval.Origin
	var spans []interval.Interval
	for i, b := range boundaries {
		if b <= prev {
			return nil, fmt.Errorf("core: partition boundary %d (%d) must exceed %d",
				i, b, prev)
		}
		spans = append(spans, interval.MustNew(prev, b-1))
		prev = b
	}
	spans = append(spans, interval.MustNew(prev, interval.Forever))
	return spans, nil
}

// EvaluatePartitioned computes the instant-grouped temporal aggregate with
// bounded memory: tuples are routed (clipped) to time partitions in one
// scan, then each partition is evaluated by its own aggregation tree. The
// returned Stats report the *largest single-partition* peak, which is the
// resident-memory bound when Parallel <= 1.
//
// Constant intervals may be split at partition boundaries; Coalesce merges
// them back when values agree. The result still satisfies Validate and is
// value-equivalent (Equal) to the unpartitioned evaluation.
func EvaluatePartitioned(f aggregate.Func, it TupleIterator, opts PartitionOptions) (*Result, Stats, error) {
	spans, err := partitionSpans(opts.Boundaries)
	if err != nil {
		return nil, Stats{}, err
	}
	var buckets buckets
	if opts.SpillDir != "" {
		buckets, err = newSpillBuckets(opts.SpillDir, len(spans))
	} else {
		buckets = newMemoryBuckets(len(spans))
	}
	if err != nil {
		return nil, Stats{}, err
	}
	defer buckets.cleanup()

	// Route pass: each tuple goes to every partition it overlaps. Partition
	// starts are sorted, so the overlapped range is contiguous.
	total := 0
	for {
		t, ok, err := it.Next()
		if err != nil {
			return nil, Stats{}, fmt.Errorf("core: partition routing: %w", err)
		}
		if !ok {
			break
		}
		if err := t.Valid.Validate(); err != nil {
			return nil, Stats{}, err
		}
		total++
		for i := findSpan(spans, t.Valid.Start); i < len(spans) && spans[i].Start <= t.Valid.End; i++ {
			if err := buckets.add(i, t); err != nil {
				return nil, Stats{}, err
			}
		}
	}
	if err := buckets.sealed(); err != nil {
		return nil, Stats{}, err
	}

	// Evaluation pass: one tree per partition, optionally in parallel.
	results := make([]*Result, len(spans))
	peaks := make([]int, len(spans))
	workers := opts.Parallel
	if workers < 1 {
		workers = 1
	}
	if workers > len(spans) {
		workers = len(spans)
	}
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				res, peak, err := evaluateBucket(f, spans[i], buckets, i)
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					continue
				}
				results[i] = res
				peaks[i] = peak
			}
		}()
	}
	for i := range spans {
		work <- i
	}
	close(work)
	wg.Wait()
	if firstErr != nil {
		return nil, Stats{}, firstErr
	}

	out := &Result{Func: f}
	stats := Stats{Tuples: total}
	for i, res := range results {
		out.Rows = append(out.Rows, res.Rows...)
		if peaks[i] > stats.PeakNodes {
			stats.PeakNodes = peaks[i]
		}
	}
	stats.LiveNodes = 0
	return out, stats, nil
}

// EvaluatePartitionedTuples is EvaluatePartitioned over an in-memory slice.
func EvaluatePartitionedTuples(f aggregate.Func, ts []tuple.Tuple, opts PartitionOptions) (*Result, Stats, error) {
	return EvaluatePartitioned(f, NewSliceSource(ts), opts)
}

// findSpan returns the index of the partition containing t (binary search).
func findSpan(spans []interval.Interval, t interval.Time) int {
	lo, hi := 0, len(spans)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if spans[mid].End < t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func evaluateBucket(f aggregate.Func, span interval.Interval, b buckets, i int) (*Result, int, error) {
	tree := NewAggregationTreeRange(f, span)
	if err := b.drain(i, func(t tuple.Tuple) error { return tree.Add(t) }); err != nil {
		return nil, 0, err
	}
	res, err := tree.Finish()
	if err != nil {
		return nil, 0, err
	}
	return res, tree.Stats().PeakNodes, nil
}

// buckets abstracts the per-partition tuple buffers.
type buckets interface {
	add(i int, t tuple.Tuple) error
	// sealed flips from the routing pass to the evaluation pass.
	sealed() error
	// drain replays partition i's tuples; safe to call concurrently for
	// distinct i.
	drain(i int, fn func(tuple.Tuple) error) error
	cleanup()
}

// memoryBuckets holds partition inputs in memory.
type memoryBuckets [][]tuple.Tuple

func newMemoryBuckets(n int) *memoryBuckets {
	b := make(memoryBuckets, n)
	return &b
}

func (b *memoryBuckets) add(i int, t tuple.Tuple) error {
	(*b)[i] = append((*b)[i], t)
	return nil
}

func (b *memoryBuckets) sealed() error { return nil }

func (b *memoryBuckets) drain(i int, fn func(tuple.Tuple) error) error {
	for _, t := range (*b)[i] {
		if err := fn(t); err != nil {
			return err
		}
	}
	return nil
}

func (b *memoryBuckets) cleanup() {}

// spillBuckets buffers partition inputs in temporary relation files.
type spillBuckets struct {
	dir     string
	writers []*relation.FileWriter
	paths   []string
}

func newSpillBuckets(dir string, n int) (*spillBuckets, error) {
	tmp, err := os.MkdirTemp(dir, "tempagg-spill-")
	if err != nil {
		return nil, fmt.Errorf("core: spill: %w", err)
	}
	b := &spillBuckets{dir: tmp, writers: make([]*relation.FileWriter, n), paths: make([]string, n)}
	for i := range b.writers {
		b.paths[i] = filepath.Join(tmp, fmt.Sprintf("part-%04d.rel", i))
		w, err := relation.NewFileWriter(b.paths[i])
		if err != nil {
			b.cleanup()
			return nil, err
		}
		b.writers[i] = w
	}
	return b, nil
}

func (b *spillBuckets) add(i int, t tuple.Tuple) error {
	return b.writers[i].Append(t)
}

func (b *spillBuckets) sealed() error {
	for _, w := range b.writers {
		if err := w.Close(); err != nil {
			return err
		}
	}
	return nil
}

func (b *spillBuckets) drain(i int, fn func(tuple.Tuple) error) error {
	sc, err := relation.Open(b.paths[i], relation.ScanOptions{})
	if err != nil {
		return err
	}
	defer sc.Close()
	for {
		t, ok, err := sc.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if err := fn(t); err != nil {
			return err
		}
	}
}

func (b *spillBuckets) cleanup() {
	for _, w := range b.writers {
		if w != nil {
			//tempagglint:ignore errdrop best-effort teardown: the bucket files are removed below
			w.Close()
		}
	}
	os.RemoveAll(b.dir)
}
