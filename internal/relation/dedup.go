package relation

import "tempagg/internal/tuple"

// Deduplicate returns ts with exact duplicate tuples (same name, value, and
// valid-time interval) removed, keeping the first occurrence and preserving
// order. This is the paper's recommended treatment of duplicates (§7):
// "Probably the best single approach for this problem involves removing the
// duplicates before the relation is processed." The query layer applies it
// for DISTINCT aggregates.
func Deduplicate(ts []tuple.Tuple) []tuple.Tuple {
	seen := make(map[tuple.Tuple]struct{}, len(ts))
	out := make([]tuple.Tuple, 0, len(ts))
	for _, t := range ts {
		if _, dup := seen[t]; dup {
			continue
		}
		seen[t] = struct{}{}
		out = append(out, t)
	}
	return out
}

// DeduplicateInPlace removes exact duplicates from the relation, returning
// how many tuples were dropped.
func (r *Relation) DeduplicateInPlace() int {
	before := len(r.Tuples)
	r.Tuples = Deduplicate(r.Tuples)
	return before - len(r.Tuples)
}
