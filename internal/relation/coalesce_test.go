package relation

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tempagg/internal/interval"
	"tempagg/internal/tuple"
)

func TestCoalesceTuplesMergesAdjacent(t *testing.T) {
	ts := []tuple.Tuple{
		tuple.MustNew("a", 5, 0, 9),
		tuple.MustNew("a", 5, 10, 19), // meets: merge
		tuple.MustNew("a", 5, 15, 30), // overlaps: merge
		tuple.MustNew("a", 5, 40, 50), // gap: separate
	}
	out := CoalesceTuples(ts)
	if len(out) != 2 {
		t.Fatalf("coalesced to %d tuples, want 2: %v", len(out), out)
	}
	if out[0].Valid != interval.MustNew(0, 30) || out[1].Valid != interval.MustNew(40, 50) {
		t.Fatalf("intervals = %v, %v", out[0].Valid, out[1].Valid)
	}
}

func TestCoalesceTuplesRespectsValueAndName(t *testing.T) {
	ts := []tuple.Tuple{
		tuple.MustNew("a", 5, 0, 9),
		tuple.MustNew("a", 6, 10, 19), // different value: no merge
		tuple.MustNew("b", 5, 10, 19), // different name: no merge
	}
	if out := CoalesceTuples(ts); len(out) != 3 {
		t.Fatalf("coalesced to %d tuples, want 3", len(out))
	}
}

func TestCoalesceTuplesSubsumesDuplicates(t *testing.T) {
	ts := []tuple.Tuple{
		tuple.MustNew("a", 5, 0, 9),
		tuple.MustNew("a", 5, 0, 9),
		tuple.MustNew("a", 5, 3, 7), // contained
	}
	out := CoalesceTuples(ts)
	if len(out) != 1 || out[0].Valid != interval.MustNew(0, 9) {
		t.Fatalf("out = %v", out)
	}
}

func TestCoalesceTuplesForever(t *testing.T) {
	ts := []tuple.Tuple{
		tuple.MustNew("a", 5, 0, 9),
		tuple.MustNew("a", 5, 10, interval.Forever),
	}
	out := CoalesceTuples(ts)
	if len(out) != 1 || out[0].Valid != interval.Universe() {
		t.Fatalf("out = %v", out)
	}
}

func TestCoalesceInPlace(t *testing.T) {
	r := FromTuples("r", []tuple.Tuple{
		tuple.MustNew("a", 5, 10, 19),
		tuple.MustNew("a", 5, 0, 9),
	})
	if merged := r.CoalesceInPlace(); merged != 1 {
		t.Fatalf("merged %d, want 1", merged)
	}
	if !r.IsSorted() {
		t.Fatal("coalesced relation must be sorted")
	}
	if CoalesceTuples(nil) != nil {
		t.Fatal("empty input must stay empty")
	}
}

// TestCoalescePreservesCoverageProperty: the set of (name, value, instant)
// facts is unchanged by coalescing.
func TestCoalescePreservesCoverageProperty(t *testing.T) {
	r := rand.New(rand.NewSource(91))
	prop := func() bool {
		n := r.Intn(30)
		ts := make([]tuple.Tuple, n)
		for i := range ts {
			s := r.Int63n(40)
			ts[i] = tuple.MustNew(string(rune('a'+r.Intn(3))), r.Int63n(2), s, s+r.Int63n(15))
		}
		out := CoalesceTuples(ts)
		covers := func(set []tuple.Tuple, name string, v int64, at int64) bool {
			for _, t := range set {
				if t.Name == name && t.Value == v && t.Valid.Contains(at) {
					return true
				}
			}
			return false
		}
		for at := int64(0); at < 60; at++ {
			for _, name := range []string{"a", "b", "c"} {
				for v := int64(0); v < 2; v++ {
					if covers(ts, name, v, at) != covers(out, name, v, at) {
						return false
					}
				}
			}
		}
		// Coalesced output never has two mergeable rows.
		for i, a := range out {
			for _, b := range out[i+1:] {
				if a.Name == b.Name && a.Value == b.Value &&
					(a.Valid.Overlaps(b.Valid) || a.Valid.Meets(b.Valid) || b.Valid.Meets(a.Valid)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
