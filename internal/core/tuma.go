package core

import (
	"fmt"
	"sort"

	"tempagg/internal/aggregate"
	"tempagg/internal/interval"
	"tempagg/internal/tuple"
)

// TupleSource is a rescannable stream of tuples. relation.Scanner satisfies
// it for on-disk relations; SliceSource adapts in-memory slices.
type TupleSource interface {
	// Next returns the next tuple; ok is false at end of stream.
	Next() (t tuple.Tuple, ok bool, err error)
	// Reset rewinds to the first tuple, starting another pass.
	Reset() error
}

// SliceSource adapts an in-memory tuple slice to TupleSource.
type SliceSource struct {
	Tuples []tuple.Tuple
	pos    int
	passes int
}

// NewSliceSource returns a source over ts (not copied).
func NewSliceSource(ts []tuple.Tuple) *SliceSource {
	return &SliceSource{Tuples: ts, passes: 1}
}

// Next returns the next tuple in the slice.
func (s *SliceSource) Next() (tuple.Tuple, bool, error) {
	if s.pos >= len(s.Tuples) {
		return tuple.Tuple{}, false, nil
	}
	t := s.Tuples[s.pos]
	s.pos++
	return t, true, nil
}

// Reset rewinds to the first tuple.
func (s *SliceSource) Reset() error {
	s.pos = 0
	s.passes++
	return nil
}

// Passes reports how many passes have been started.
func (s *SliceSource) Passes() int { return s.passes }

// Tuma evaluates the temporal aggregate with the pre-existing two-pass
// strategy the paper uses as its baseline (§4.1, after Tuma 1992): the first
// scan determines the constant intervals — the periods during which no tuple
// entered or exited the relation — and the second scan computes the
// aggregate value over each of them. Reading the relation twice is exactly
// the cost the paper's single-scan algorithms eliminate.
func Tuma(src TupleSource, f aggregate.Func) (*Result, error) {
	// Pass 1: collect the boundary timestamps each tuple induces. A tuple
	// [s, e] starts a new constant interval at s and at e+1.
	boundaries := []interval.Time{interval.Origin}
	n := 0
	for {
		t, ok, err := src.Next()
		if err != nil {
			return nil, fmt.Errorf("core: tuma pass 1: %w", err)
		}
		if !ok {
			break
		}
		if err := t.Valid.Validate(); err != nil {
			return nil, fmt.Errorf("core: tuma pass 1: %w", err)
		}
		boundaries = append(boundaries, t.Valid.Start)
		if t.Valid.End != interval.Forever {
			boundaries = append(boundaries, t.Valid.End+1)
		}
		n++
	}
	sort.Slice(boundaries, func(i, j int) bool { return boundaries[i] < boundaries[j] })
	boundaries = dedupTimes(boundaries)

	res := &Result{Func: f, Rows: make([]Row, 0, len(boundaries))}
	for i, b := range boundaries {
		end := interval.Forever
		if i+1 < len(boundaries) {
			end = boundaries[i+1] - 1
		}
		res.Rows = append(res.Rows, Row{Interval: interval.MustNew(b, end)})
	}

	// Pass 2: re-scan the relation and fold each tuple into every constant
	// interval it overlaps, locating the first by binary search.
	if err := src.Reset(); err != nil {
		return nil, fmt.Errorf("core: tuma reset: %w", err)
	}
	seen := 0
	for {
		t, ok, err := src.Next()
		if err != nil {
			return nil, fmt.Errorf("core: tuma pass 2: %w", err)
		}
		if !ok {
			break
		}
		seen++
		i := sort.Search(len(res.Rows), func(i int) bool {
			return res.Rows[i].Interval.End >= t.Valid.Start
		})
		for ; i < len(res.Rows) && res.Rows[i].Interval.Start <= t.Valid.End; i++ {
			res.Rows[i].State = f.Add(res.Rows[i].State, t.Value)
		}
	}
	if seen != n {
		return nil, fmt.Errorf("core: tuma: relation changed between passes: %d then %d tuples", n, seen)
	}
	return res, nil
}

func dedupTimes(ts []interval.Time) []interval.Time {
	out := ts[:0]
	for i, t := range ts {
		if i == 0 || t != out[len(out)-1] {
			out = append(out, t)
		}
	}
	return out
}
