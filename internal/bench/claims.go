package bench

import (
	"fmt"
	"strings"
	"time"

	"tempagg/internal/aggregate"
	"tempagg/internal/core"
	"tempagg/internal/relation"
	"tempagg/internal/workload"
)

// Claim is one of the paper's qualitative findings, checked by measurement.
type Claim struct {
	// ID names the claim (e.g. "fig6-tree-beats-list").
	ID string
	// Statement is the paper's finding being verified.
	Statement string
	// Passed reports whether the measurement supports the claim.
	Passed bool
	// Detail records the measured numbers behind the verdict.
	Detail string
}

// String renders a PASS/FAIL line.
func (c Claim) String() string {
	verdict := "PASS"
	if !c.Passed {
		verdict = "FAIL"
	}
	return fmt.Sprintf("%s  %-28s %s — %s", verdict, c.ID, c.Statement, c.Detail)
}

// timeOf measures one evaluation in seconds, reporting the fastest of three
// runs to suppress GC and scheduling noise.
func timeOf(spec core.Spec, f aggregate.Func, rel *relation.Relation) (float64, core.Stats, error) {
	best := 0.0
	var stats core.Stats
	for trial := 0; trial < 3; trial++ {
		start := time.Now()
		_, s, err := core.Run(spec, f, rel.Tuples)
		if err != nil {
			return 0, core.Stats{}, err
		}
		elapsed := time.Since(start).Seconds()
		if trial == 0 || elapsed < best {
			best = elapsed
			stats = s
		}
	}
	return best, stats, nil
}

// VerifyClaims re-measures the paper's §6 findings at a reduced scale and
// reports a PASS/FAIL verdict for each. It is the repository's automated
// reproduction check: `benchharness -verify`.
func VerifyClaims(size int, seed int64) ([]Claim, error) {
	if size <= 0 {
		size = 1 << 13
	}
	f := aggregate.For(aggregate.Count)
	gen := func(order workload.Order, longPct, k int) (*relation.Relation, error) {
		cfg := workload.Config{Tuples: size, LongLivedPct: longPct, Order: order, Seed: seed}
		if order == workload.KOrdered {
			cfg.K = k
			cfg.KPct = KPct
		}
		return workload.Generate(cfg)
	}

	random0, err := gen(workload.Random, 0, 0)
	if err != nil {
		return nil, err
	}
	random80, err := gen(workload.Random, 80, 0)
	if err != nil {
		return nil, err
	}
	sorted0, err := gen(workload.Sorted, 0, 0)
	if err != nil {
		return nil, err
	}
	sorted80, err := gen(workload.Sorted, 80, 0)
	if err != nil {
		return nil, err
	}
	kord40, err := gen(workload.KOrdered, 0, 40)
	if err != nil {
		return nil, err
	}
	kord40ll, err := gen(workload.KOrdered, 80, 40)
	if err != nil {
		return nil, err
	}

	list := core.Spec{Algorithm: core.LinkedList}
	tree := core.Spec{Algorithm: core.AggregationTree}
	btree := core.Spec{Algorithm: core.BalancedTree}
	k1 := core.Spec{Algorithm: core.KOrderedTree, K: 1}
	k40 := core.Spec{Algorithm: core.KOrderedTree, K: 40}

	var claims []Claim
	add := func(id, statement string, passed bool, detail string, args ...any) {
		claims = append(claims, Claim{
			ID: id, Statement: statement, Passed: passed,
			Detail: fmt.Sprintf(detail, args...),
		})
	}

	// Figure 6: tree ≫ list on random input.
	listT, _, err := timeOf(list, f, random0)
	if err != nil {
		return nil, err
	}
	treeT, _, err := timeOf(tree, f, random0)
	if err != nil {
		return nil, err
	}
	add("fig6-tree-beats-list",
		"aggregation tree beats the linked list on random input by a wide margin",
		treeT*5 < listT, "list %.4gs vs tree %.4gs (×%.1f)", listT, treeT, listT/treeT)

	treeT80, _, err := timeOf(tree, f, random80)
	if err != nil {
		return nil, err
	}
	add("fig6-tree-longlived-insensitive",
		"the tree's time is insensitive to the long-lived percentage",
		treeT80 < 3*treeT && treeT < 3*treeT80,
		"ll=0%%: %.4gs, ll=80%%: %.4gs", treeT, treeT80)

	// Figure 7: ordered relations.
	k1T, k1Stats, err := timeOf(k1, f, sorted0)
	if err != nil {
		return nil, err
	}
	treeSortedT, _, err := timeOf(tree, f, sorted0)
	if err != nil {
		return nil, err
	}
	listSortedT, _, err := timeOf(list, f, sorted0)
	if err != nil {
		return nil, err
	}
	add("fig7-ktree1-wins-sorted",
		"ktree k=1 over a sorted relation beats both the tree and the list",
		k1T < treeSortedT && k1T < listSortedT,
		"k1 %.4gs, tree %.4gs, list %.4gs", k1T, treeSortedT, listSortedT)
	add("fig7-tree-degenerates-sorted",
		"the aggregation tree degenerates on sorted input",
		treeSortedT > 3*treeT,
		"sorted %.4gs vs random %.4gs", treeSortedT, treeT)

	// Figure 8: the long-lived paradox.
	treeSorted80T, _, err := timeOf(tree, f, sorted80)
	if err != nil {
		return nil, err
	}
	add("fig8-paradoxical-improvement",
		"the sorted-input tree improves with many long-lived tuples",
		treeSorted80T < treeSortedT,
		"ll=80%% %.4gs vs ll=0%% %.4gs", treeSorted80T, treeSortedT)

	// Figure 9: memory ordering.
	_, treeStats, err := timeOf(tree, f, random0)
	if err != nil {
		return nil, err
	}
	_, listStats, err := timeOf(list, f, random0)
	if err != nil {
		return nil, err
	}
	_, k40Stats, err := timeOf(k40, f, kord40)
	if err != nil {
		return nil, err
	}
	add("fig9-memory-ordering",
		"memory: tree > list > ktree k=40 > ktree k=1",
		treeStats.PeakNodes > listStats.PeakNodes &&
			listStats.PeakNodes > k40Stats.PeakNodes &&
			k40Stats.PeakNodes > k1Stats.PeakNodes,
		"tree %d, list %d, k40 %d, k1 %d nodes",
		treeStats.PeakNodes, listStats.PeakNodes, k40Stats.PeakNodes, k1Stats.PeakNodes)
	add("fig9-tree-twice-list",
		"the tree uses about twice the list's memory (2 vs 1 node per unique timestamp)",
		float64(treeStats.PeakNodes) > 1.5*float64(listStats.PeakNodes) &&
			float64(treeStats.PeakNodes) < 2.5*float64(listStats.PeakNodes),
		"ratio %.2f", float64(treeStats.PeakNodes)/float64(listStats.PeakNodes))

	// §6.2 prose: the gc memory cliff under long-lived tuples.
	_, k40llStats, err := timeOf(k40, f, kord40ll)
	if err != nil {
		return nil, err
	}
	add("s6.2-ktree-longlived-memory",
		"long-lived tuples inflate the k-ordered tree's memory",
		k40llStats.PeakNodes > 10*k40Stats.PeakNodes,
		"ll=80%% %d vs ll=0%% %d nodes", k40llStats.PeakNodes, k40Stats.PeakNodes)

	// §7: the balanced tree repairs the sorted-input degeneration.
	btreeSortedT, _, err := timeOf(btree, f, sorted0)
	if err != nil {
		return nil, err
	}
	add("s7-balanced-tree",
		"the balanced aggregation tree repairs the sorted-input worst case",
		btreeSortedT*3 < treeSortedT,
		"balanced %.4gs vs unbalanced %.4gs", btreeSortedT, treeSortedT)

	return claims, nil
}

// FormatClaims renders the verdicts, one per line, with a summary.
func FormatClaims(claims []Claim) string {
	var b strings.Builder
	passed := 0
	for _, c := range claims {
		fmt.Fprintln(&b, c)
		if c.Passed {
			passed++
		}
	}
	fmt.Fprintf(&b, "%d/%d claims reproduced\n", passed, len(claims))
	return b.String()
}
