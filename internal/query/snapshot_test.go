package query

import (
	"strings"
	"testing"

	"tempagg/internal/interval"
	"tempagg/internal/relation"
)

func TestParseAt(t *testing.T) {
	q := mustParse(t, "SELECT COUNT(Name) FROM Employed AT 19")
	if q.At == nil || *q.At != 19 {
		t.Fatalf("At = %v", q.At)
	}
	again := mustParse(t, q.String())
	if again.At == nil || *again.At != 19 {
		t.Fatalf("round trip lost AT: %q", q.String())
	}
}

func TestParseAtErrors(t *testing.T) {
	for _, sql := range []string{
		"SELECT COUNT(Name) FROM R AT",
		"SELECT COUNT(Name) FROM R AT -5",
		"SELECT COUNT(Name) FROM R AT x",
		"SELECT COUNT(Name) FROM R VALID OVERLAPS 0 9 AT 5",
		"SELECT COUNT(Name) FROM R AT 5 GROUP BY SPAN 10",
	} {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q): expected error", sql)
		}
	}
}

// TestSnapshotMatchesTemporalResult: AT t must equal the instant-grouped
// result sampled at t, for every probe.
func TestSnapshotMatchesTemporalResult(t *testing.T) {
	rel := relation.Employed()
	full := execute(t, "SELECT AVG(Salary) FROM Employed", rel)
	for _, at := range []interval.Time{0, 7, 12, 15, 19, 21, 30} {
		qr, err := Run(
			"SELECT AVG(Salary) FROM Employed AT "+interval.FormatTime(at), rel, nil)
		if err != nil {
			t.Fatal(err)
		}
		res := qr.Groups[0].Result
		if len(res.Rows) != 1 || res.Rows[0].Interval != interval.At(at) {
			t.Fatalf("AT %d: rows = %v", at, res.Rows)
		}
		want, _ := full.Groups[0].Result.At(at)
		got := res.Value(0)
		if got != want {
			t.Fatalf("AT %d = %v, want %v", at, got, want)
		}
	}
}

func TestSnapshotPlanReason(t *testing.T) {
	qr := execute(t, "SELECT COUNT(Name) FROM Employed AT 19", relation.Employed())
	if !strings.Contains(qr.Plan.Reason, "snapshot") {
		t.Fatalf("plan = %v", qr.Plan)
	}
}

func TestSnapshotWithGroupByAndWhere(t *testing.T) {
	qr := execute(t,
		"SELECT Name, COUNT(Name) FROM Employed AT 19 WHERE Salary > 36 GROUP BY Name",
		relation.Employed())
	// Qualifying at 19 with Salary > 36: Rich (40), Karen (45), Nathan (37).
	if len(qr.Groups) != 3 {
		t.Fatalf("%d groups", len(qr.Groups))
	}
	for _, g := range qr.Groups {
		if got := g.Result.Value(0).Int; got != 1 {
			t.Errorf("group %s count = %d, want 1", g.Key, got)
		}
	}
}

func TestSnapshotViaFile(t *testing.T) {
	path := writeRelation(t, relation.Employed())
	qr := runFile(t, "SELECT MAX(Salary) FROM Employed AT 21", path)
	if got := qr.Groups[0].Result.Value(0).Int; got != 40 {
		t.Fatalf("MAX at 21 = %d, want 40", got)
	}
}
