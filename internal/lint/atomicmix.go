package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicMix flags struct fields accessed both through sync/atomic
// function calls and through plain loads or stores.
//
// Hazard class: the statsCell pattern — counters mutated by the
// evaluator's goroutine and snapshotted concurrently by the /metrics
// scrape path — is only sound if *every* access goes through the atomic
// API. One plain `c.n++` or `x := c.n` next to atomic.AddInt64(&c.n, 1)
// is a data race the compiler accepts silently and -race only reports
// when the interleaving actually happens under the test schedule. (The
// typed atomic.Int64 wrappers statsCell itself uses make the mix
// inexpressible; this analyzer covers the raw-function style that typed
// wrappers cannot reach, e.g. code ported from older Go.)
//
// Mechanics: the analyzer aggregates over the whole package — first
// collecting every field reached via atomic.AddT/LoadT/StoreT/SwapT/
// CompareAndSwapT(&x.field, ...), then reporting every plain selector
// access to those same fields. Accesses where the struct value is still
// function-local and unshared (a composite literal or new(T) bound to a
// local variable whose address has not escaped through the access path)
// are exempt: initializing before publication is the documented idiom.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc: "flag struct fields accessed both via sync/atomic functions and " +
		"via plain loads/stores (mixed access is a data race)",
	Run: runAtomicMix,
}

func runAtomicMix(pass *Pass) error {
	// Phase 1: fields accessed atomically, and the position of one such
	// access for the diagnostic.
	atomicFields := map[*types.Var]token.Pos{}
	// Selector expressions consumed by an atomic call (their &x.field
	// argument must not be double-reported as a plain access).
	inAtomicCall := map[ast.Expr]bool{}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if !isAtomicFunc(fn) || len(call.Args) == 0 {
				return true
			}
			addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || addr.Op != token.AND {
				return true
			}
			sel, ok := ast.Unparen(addr.X).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			field := fieldVar(pass, sel)
			if field == nil {
				return true
			}
			if _, seen := atomicFields[field]; !seen {
				atomicFields[field] = call.Pos()
			}
			inAtomicCall[sel] = true
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}

	// Phase 2: plain accesses to those fields.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || inAtomicCall[sel] {
				return true
			}
			field := fieldVar(pass, sel)
			if field == nil {
				return true
			}
			atomicAt, mixed := atomicFields[field]
			if !mixed {
				return true
			}
			if isUnpublished(pass, sel.X) {
				return true // pre-publication initialization is fine
			}
			pos := pass.Fset.Position(atomicAt)
			pass.Reportf(sel.Pos(),
				"field %s is accessed atomically (e.g. line %d) but read or "+
					"written plainly here; mixed access is a data race — use "+
					"sync/atomic for every access or a typed atomic wrapper",
				field.Name(), pos.Line)
			return true
		})
	}
	return nil
}

// isAtomicFunc reports whether fn is a sync/atomic package-level
// function operating on a pointer to a plain word (AddInt64, LoadUint32,
// StoreInt32, SwapPointer, CompareAndSwapInt64, ...).
func isAtomicFunc(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() != nil {
		return false // methods on atomic.Int64 etc. are the safe form
	}
	return true
}

// fieldVar resolves sel to the struct field it selects, nil otherwise.
func fieldVar(pass *Pass, sel *ast.SelectorExpr) *types.Var {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}

// isUnpublished reports whether base is a function-local variable whose
// value was freshly created in the same function (composite literal,
// new(T), or declared var) and whose address is not taken anywhere in
// that function other than field accesses — i.e. the struct has not been
// shared yet, so plain initialization cannot race.
func isUnpublished(pass *Pass, base ast.Expr) bool {
	id, ok := ast.Unparen(base).(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = pass.TypesInfo.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() || v.Pkg() == nil || v.Parent() == v.Pkg().Scope() {
		return false
	}
	// Parameters and results are shared by the caller; only variables
	// born inside the function body qualify. Distinguish by declaration
	// position: a local's Parent scope is a block scope, and we require
	// the defining statement to be a fresh-value form.
	decl := declaringForm(pass, v)
	switch decl := decl.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		return decl.Op == token.AND // &T{...}
	case *ast.CallExpr:
		if fun, ok := ast.Unparen(decl.Fun).(*ast.Ident); ok {
			return fun.Name == "new"
		}
	case *ast.ValueSpec:
		return len(decl.Values) == 0 // var x T: zero value, unshared
	}
	return false
}

// declaringForm finds the expression (or ValueSpec) that gave v its
// value at its defining identifier, searching the file containing v.
func declaringForm(pass *Pass, v *types.Var) ast.Node {
	for _, f := range pass.Files {
		if f.FileStart <= v.Pos() && v.Pos() < f.FileEnd {
			var form ast.Node
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for i, lhs := range n.Lhs {
						if id, ok := lhs.(*ast.Ident); ok && id.Pos() == v.Pos() &&
							len(n.Lhs) == len(n.Rhs) {
							form = ast.Unparen(n.Rhs[i])
							if ue, ok := form.(*ast.UnaryExpr); ok && ue.Op == token.AND {
								if _, lit := ast.Unparen(ue.X).(*ast.CompositeLit); lit {
									form = ue
								}
							}
						}
					}
				case *ast.ValueSpec:
					for _, name := range n.Names {
						if name.Pos() == v.Pos() {
							if len(n.Values) == 0 {
								form = n
							} else if len(n.Values) == len(n.Names) {
								for i, nm := range n.Names {
									if nm.Pos() == v.Pos() {
										form = ast.Unparen(n.Values[i])
									}
								}
							}
						}
					}
				}
				return true
			})
			return form
		}
	}
	return nil
}
