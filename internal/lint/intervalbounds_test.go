package lint_test

import (
	"testing"

	"tempagg/internal/lint"
	"tempagg/internal/lint/linttest"
)

func TestIntervalBounds(t *testing.T) {
	linttest.Run(t, lint.IntervalBounds, "intervalbounds")
}
