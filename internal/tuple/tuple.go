// Package tuple defines the interval-stamped tuple model used by the
// temporal-aggregation algorithms.
//
// The tuple mirrors the paper's test relation (Kline & Snodgrass §6): a name
// attribute, an integer value attribute ("salary"), and a closed valid-time
// interval [Start, End]. The additional 110 bytes of attributes "not examined
// by the aggregate" exist only at the storage layer (see internal/relation),
// where the 128-byte on-disk record is preserved.
package tuple

import (
	"fmt"

	"tempagg/internal/interval"
)

// NameLen is the on-disk width of the Name attribute, per the paper's
// 6-byte name field. Longer names are rejected by Validate.
const NameLen = 6

// Tuple is one fact with a closed valid-time interval.
type Tuple struct {
	// Name identifies the entity (e.g. the employee). Used as the grouping
	// attribute and, for COUNT(Name), the counted attribute.
	Name string
	// Value is the aggregated attribute (the paper's Salary).
	Value int64
	// Valid is the closed interval during which the fact holds.
	Valid interval.Interval
}

// New constructs a validated tuple.
func New(name string, value int64, start, end interval.Time) (Tuple, error) {
	iv, err := interval.New(start, end)
	if err != nil {
		return Tuple{}, fmt.Errorf("tuple %q: %w", name, err)
	}
	t := Tuple{Name: name, Value: value, Valid: iv}
	if err := t.Validate(); err != nil {
		return Tuple{}, err
	}
	return t, nil
}

// MustNew is New but panics on invalid input. Intended for tests and
// literals.
func MustNew(name string, value int64, start, end interval.Time) Tuple {
	t, err := New(name, value, start, end)
	if err != nil {
		panic(err)
	}
	return t
}

// Validate checks the tuple against the storage constraints.
func (t Tuple) Validate() error {
	if len(t.Name) > NameLen {
		return fmt.Errorf("tuple: name %q exceeds %d bytes", t.Name, NameLen)
	}
	return t.Valid.Validate()
}

// Less orders tuples "totally ordered by time" (§5.2): by start time, ties
// broken by end time.
func (t Tuple) Less(other Tuple) bool {
	return interval.Compare(t.Valid, other.Valid) < 0
}

// String renders the tuple in the paper's figure style.
func (t Tuple) String() string {
	return fmt.Sprintf("[%s, %d, %s, %s]",
		t.Name, t.Value,
		interval.FormatTime(t.Valid.Start), interval.FormatTime(t.Valid.End))
}
