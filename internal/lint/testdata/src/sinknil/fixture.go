// Fixture for sinknil: the obs.Sink contract makes nil mean "disabled",
// so every method call on a Sink or EvalSink value must be dominated by a
// nil check (or the value must be provably non-nil: a concrete value in
// the interface, or an Evaluator result).
package fixture

import "tempagg/internal/obs"

type eval struct {
	sink obs.Sink
	es   obs.EvalSink
}

func (e *eval) setSinkBad(s obs.Sink) {
	e.sink = s
	e.es = s.Evaluator("fixture") // want `Evaluator called on possibly-nil obs\.Sink s`
}

func (e *eval) setSinkGood(s obs.Sink) {
	e.sink = s
	if s == nil {
		return
	}
	e.es = s.Evaluator("fixture") // ok: the nil case returned above
}

func (e *eval) hotPathBad(n int) {
	e.es.TuplesProcessed(n) // want `TuplesProcessed called on possibly-nil obs\.EvalSink e\.es`
}

func (e *eval) hotPathGood(n int) {
	if e.es != nil {
		e.es.TuplesProcessed(n) // ok: guarded
	}
}

func (e *eval) guardLost(n int) {
	if e.es != nil {
		e.es = nil
		e.es.PeakNodes(n) // want `PeakNodes called on possibly-nil obs\.EvalSink e\.es`
	}
}

func bothGuarded(a, b obs.Sink) error {
	if a != nil && b != nil {
		if err := a.Flush(); err != nil { // ok: && proves both
			return err
		}
		return b.Flush() // ok
	}
	return nil
}

func shortCircuitGuard(s obs.Sink) bool {
	return s != nil && s.Flush() == nil // ok: && guards the call in-expression
}

func orGuard(s obs.Sink, disabled bool) error {
	if disabled || s == nil {
		return nil
	}
	return s.Flush() // ok: both disjuncts failed, so s != nil here
}

func onlyOneGuarded(a, b obs.Sink) {
	if a != nil {
		_ = a.Flush() // ok
		_ = b.Flush() // want `Flush called on possibly-nil obs\.Sink b`
	}
}

func concreteIsNeverNil(reg *obs.Registry) error {
	var s obs.Sink = obs.NewMetrics(reg)
	return s.Flush() // ok: a concrete value in an interface is not the nil interface
}

func evaluatorResultIsNonNil(s obs.Sink) {
	if s == nil {
		return
	}
	s.Evaluator("fixture").NodesAllocated(1) // ok: Evaluator is non-nil by contract
}

func mergeKillsGuard(s obs.Sink, flaky bool) error {
	if flaky {
		if s == nil {
			return nil
		}
	}
	return s.Flush() // want `Flush called on possibly-nil obs\.Sink s`
}

func (e *eval) indexBuildBad(nodes, tuples int) {
	e.es.IndexBuild(nodes, tuples) // want `IndexBuild called on possibly-nil obs\.EvalSink e\.es`
}

func (e *eval) indexLookupGood(merges int) {
	if e.es != nil {
		e.es.IndexLookup(merges) // ok: guarded
	}
}

func guardedInLoop(e *eval, n int) {
	for i := 0; i < n; i++ {
		if e.es == nil {
			continue
		}
		e.es.TuplesProcessed(1) // ok: guard holds around the back edge
	}
}
