package relation

import (
	"container/heap"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"tempagg/internal/tuple"
)

// ExternalSort sorts the relation file at inPath totally by time into
// outPath using bounded memory: sorted runs of at most memTuples tuples are
// spilled to temporary files, then merged in one k-way pass. This is the
// sort step of the paper's headline strategy (§6.3/§7: "sort the relation
// then use the k-ordered aggregation tree with k = 1") realized at the
// storage layer, so the I/O cost the optimizer's cost model charges for
// sorting (2 passes over the data) is the real cost.
//
// memTuples <= 0 selects a default of one million tuples (~128 MB of
// records). The output header carries the sorted flag.
func ExternalSort(inPath, outPath string, memTuples int) error {
	if memTuples <= 0 {
		memTuples = 1 << 20
	}
	in, err := Open(inPath, ScanOptions{})
	if err != nil {
		return err
	}
	defer in.Close()

	tmpDir, err := os.MkdirTemp(filepath.Dir(outPath), "extsort-")
	if err != nil {
		return fmt.Errorf("relation: extsort: %w", err)
	}
	defer os.RemoveAll(tmpDir)

	// Pass 1: produce sorted runs.
	var runs []string
	buf := make([]tuple.Tuple, 0, min(memTuples, in.Count()+1))
	flush := func() (err error) {
		if len(buf) == 0 {
			return nil
		}
		sort.SliceStable(buf, func(i, j int) bool { return buf[i].Less(buf[j]) })
		path := filepath.Join(tmpDir, fmt.Sprintf("run-%04d.rel", len(runs)))
		w, err := NewFileWriter(path)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := w.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		for _, t := range buf {
			if err := w.Append(t); err != nil {
				return err
			}
		}
		runs = append(runs, path)
		buf = buf[:0]
		return nil
	}
	for {
		t, ok, err := in.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		buf = append(buf, t)
		if len(buf) >= memTuples {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}

	// Pass 2: k-way merge of the runs.
	out, err := NewFileWriter(outPath)
	if err != nil {
		return err
	}
	defer out.Close()
	h := &runHeap{}
	scanners := make([]*Scanner, 0, len(runs))
	for i, path := range runs {
		sc, err := Open(path, ScanOptions{})
		if err != nil {
			return err
		}
		defer sc.Close()
		scanners = append(scanners, sc)
		t, ok, err := sc.Next()
		if err != nil {
			return err
		}
		if ok {
			heap.Push(h, runHead{t: t, run: i})
		}
	}
	for h.Len() > 0 {
		head := heap.Pop(h).(runHead)
		if err := out.Append(head.t); err != nil {
			return err
		}
		t, ok, err := scanners[head.run].Next()
		if err != nil {
			return err
		}
		if ok {
			heap.Push(h, runHead{t: t, run: head.run})
		}
	}
	return out.Close()
}

// runHead is the front tuple of one run.
type runHead struct {
	t   tuple.Tuple
	run int
}

// runHeap orders run heads by time, ties broken by run index so the merge
// is stable across runs (earlier runs held earlier input positions).
type runHeap []runHead

func (h runHeap) Len() int { return len(h) }
func (h runHeap) Less(i, j int) bool {
	if h[i].t.Less(h[j].t) {
		return true
	}
	if h[j].t.Less(h[i].t) {
		return false
	}
	return h[i].run < h[j].run
}
func (h runHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *runHeap) Push(x any)   { *h = append(*h, x.(runHead)) }
func (h *runHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
