package core

import (
	"fmt"
	"math"
	"strings"

	"tempagg/internal/interval"
)

// Chart renders the time-varying aggregate as an ASCII bar chart, one line
// per constant interval, bar length proportional to |value| scaled to
// width. Null values draw no bar. Intended for terminal inspection of
// query results (`tempagg -chart`).
func (r *Result) Chart(width int) string {
	if width < 1 {
		width = 40
	}
	maxAbs := 0.0
	labelW := 0
	valueW := 0
	for i, row := range r.Rows {
		v := r.Value(i)
		if !v.Null {
			if a := math.Abs(v.Float); a > maxAbs {
				maxAbs = a
			}
		}
		if l := len(row.Interval.String()); l > labelW {
			labelW = l
		}
		if l := len(v.String()); l > valueW {
			valueW = l
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s by instant\n", r.Func.Kind())
	for i, row := range r.Rows {
		v := r.Value(i)
		bar := ""
		if !v.Null && maxAbs > 0 {
			n := int(math.Round(math.Abs(v.Float) / maxAbs * float64(width)))
			bar = strings.Repeat("█", n)
		}
		fmt.Fprintf(&b, "%-*s %*s |%s\n", labelW, row.Interval, valueW, v, bar)
	}
	return b.String()
}

// Sparkline renders the value over a finite window as a single line of
// block characters, one per sampled instant column. Null samples render as
// spaces. Useful as a compact inline summary.
func (r *Result) Sparkline(window interval.Interval, columns int) (string, error) {
	if err := window.Validate(); err != nil {
		return "", err
	}
	if window.End == interval.Forever {
		return "", fmt.Errorf("core: sparkline requires a finite window")
	}
	if columns < 1 {
		columns = 60
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	samples := make([]float64, 0, columns)
	nulls := make([]bool, 0, columns)
	lo, hi := math.Inf(1), math.Inf(-1)
	for c := 0; c < columns; c++ {
		at := window.Start + (window.Duration()-1)*interval.Time(c)/interval.Time(max(columns-1, 1))
		v, ok := r.At(at)
		if !ok || v.Null {
			samples = append(samples, 0)
			nulls = append(nulls, true)
			continue
		}
		samples = append(samples, v.Float)
		nulls = append(nulls, false)
		lo = math.Min(lo, v.Float)
		hi = math.Max(hi, v.Float)
	}
	var b strings.Builder
	for i, s := range samples {
		if nulls[i] {
			b.WriteByte(' ')
			continue
		}
		level := 0
		if hi > lo {
			level = int((s - lo) / (hi - lo) * float64(len(levels)-1))
		}
		b.WriteRune(levels[level])
	}
	return b.String(), nil
}
