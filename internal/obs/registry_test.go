package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(41)
	c.Add(-5) // ignored: counters are monotone
	if got := c.Value(); got != 42 {
		t.Errorf("counter = %d, want 42", got)
	}
	if again := r.Counter("c_total", "a counter"); again.Value() != 42 {
		t.Error("re-registering must return the same series")
	}

	g := r.Gauge("g", "a gauge")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Errorf("gauge = %d, want 5", got)
	}
	g.SetMax(3)
	if got := g.Value(); got != 5 {
		t.Errorf("SetMax(3) lowered the gauge to %d", got)
	}
	g.SetMax(9)
	if got := g.Value(); got != 9 {
		t.Errorf("SetMax(9) = %d, want 9", got)
	}
}

func TestNilMetricsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	g.Set(1)
	g.SetMax(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil metrics must read as zero")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "a histogram", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 56.05; got != want {
		t.Errorf("sum = %g, want %g", got, want)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`h_seconds_bucket{le="0.1"} 1`,
		`h_seconds_bucket{le="1"} 3`,
		`h_seconds_bucket{le="10"} 4`,
		`h_seconds_bucket{le="+Inf"} 5`,
		`h_seconds_sum 56.05`,
		`h_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestVecLabelsAndExposition(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("q_total", "queries", "algorithm", "status")
	v.With("k-ordered-tree", "ok").Add(3)
	v.With("linked-list", "error").Inc()
	hv := r.HistogramVec("lat_seconds", "latency", []float64{1}, "algorithm")
	hv.With("linked-list").Observe(0.5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP q_total queries",
		"# TYPE q_total counter",
		`q_total{algorithm="k-ordered-tree",status="ok"} 3`,
		`q_total{algorithm="linked-list",status="error"} 1`,
		`lat_seconds_bucket{algorithm="linked-list",le="1"} 1`,
		`lat_seconds_count{algorithm="linked-list"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("e_total", "escapes", "q").With("a\"b\\c\nd").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if want := `e_total{q="a\"b\\c\nd"} 1`; !strings.Contains(b.String(), want) {
		t.Errorf("exposition missing %q:\n%s", want, b.String())
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("conc_total", "concurrent", "worker")
	h := r.Histogram("conc_seconds", "concurrent", DefaultDurationBuckets)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := string(rune('a' + w))
			for i := 0; i < 1000; i++ {
				v.With(name).Inc()
				h.Observe(0.001)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var b strings.Builder
			if err := r.WritePrometheus(&b); err != nil {
				t.Errorf("WritePrometheus: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if got := h.Count(); got != 8000 {
		t.Errorf("count = %d, want 8000", got)
	}
}
