package order

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tempagg/internal/tuple"
)

// sortedTuples builds a totally ordered relation with unique start times.
func sortedTuples(n int) []tuple.Tuple {
	ts := make([]tuple.Tuple, n)
	for i := range ts {
		ts[i] = tuple.MustNew("t", int64(i), int64(i*3), int64(i*3+1))
	}
	return ts
}

func TestDisplacementsSorted(t *testing.T) {
	for _, d := range Displacements(sortedTuples(50)) {
		if d != 0 {
			t.Fatalf("sorted relation has displacement %d", d)
		}
	}
	if KOrderedness(sortedTuples(10)) != 0 {
		t.Fatal("sorted relation must be 0-ordered")
	}
}

func TestDisplacementsSingleSwap(t *testing.T) {
	ts := sortedTuples(20)
	ts[3], ts[10] = ts[10], ts[3]
	disp := Displacements(ts)
	for i, d := range disp {
		want := 0
		if i == 3 || i == 10 {
			want = 7
		}
		if d != want {
			t.Errorf("tuple %d: displacement %d, want %d", i, d, want)
		}
	}
	if KOrderedness(ts) != 7 {
		t.Fatalf("KOrderedness = %d, want 7", KOrderedness(ts))
	}
	if IsKOrdered(ts, 6) || !IsKOrdered(ts, 7) {
		t.Fatal("IsKOrdered boundary wrong")
	}
}

func TestDisplacementsWithTies(t *testing.T) {
	// Identical intervals keep relative order: displacement must be 0.
	ts := []tuple.Tuple{
		tuple.MustNew("a", 1, 5, 9),
		tuple.MustNew("b", 2, 5, 9),
		tuple.MustNew("c", 3, 5, 9),
	}
	for i, d := range Displacements(ts) {
		if d != 0 {
			t.Fatalf("tied tuple %d displaced by %d", i, d)
		}
	}
}

func TestKOrderedPercentageValidation(t *testing.T) {
	ts := sortedTuples(10)
	if _, err := KOrderedPercentage(ts, 0); err == nil {
		t.Error("k=0 must be rejected")
	}
	ts[0], ts[5] = ts[5], ts[0] // displacement 5
	if _, err := KOrderedPercentage(ts, 3); err == nil {
		t.Error("percentage for k smaller than actual disorder must fail")
	}
	if p, err := KOrderedPercentage(nil, 5); err != nil || p != 0 {
		t.Errorf("empty relation: %v, %v", p, err)
	}
}

// TestTable2 reproduces Table 2 of the paper: k-ordered-percentage examples
// with n = 10000 and k = 100.
func TestTable2(t *testing.T) {
	const n, k = 10000, 100
	base := sortedTuples(n)
	pct := func(ts []tuple.Tuple) float64 {
		p, err := KOrderedPercentage(ts, k)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	// Row 1: the tuples are sorted → 0.
	if got := pct(base); got != 0 {
		t.Errorf("sorted: %g, want 0", got)
	}

	// Row 2: 2 tuples 100 places apart are swapped → 0.0002.
	row2, err := SwapPairs(base, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got := pct(row2); math.Abs(got-0.0002) > 1e-12 {
		t.Errorf("one swap at 100: %g, want 0.0002", got)
	}

	// Row 3: 20 tuples are 100 places from being sorted → 0.002.
	row3, err := SwapPairs(base, 10, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got := pct(row3); math.Abs(got-0.002) > 1e-12 {
		t.Errorf("ten swaps at 100: %g, want 0.002", got)
	}

	// Row 4: 1000 tuples are 50 places out of order → 0.05.
	row4, err := SwapPairs(base, 500, 50)
	if err != nil {
		t.Fatal(err)
	}
	if got := pct(row4); math.Abs(got-0.05) > 1e-12 {
		t.Errorf("500 swaps at 50: %g, want 0.05", got)
	}

	// Row 5: 10 tuples 1 place out of order, 10 are 2, …, 10 are 100 →
	// Σ 10·i / (100·10000) = 50500/1000000 = 0.0505.
	row5, err := Staircase(base, 10, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got := pct(row5); math.Abs(got-0.0505) > 1e-12 {
		t.Errorf("staircase: %g, want 0.0505", got)
	}
}

func TestTable2MaximalDisorder(t *testing.T) {
	// §5.2: for 6 tuples with k=3, swapping 1↔4, 2↔5, 3↔6 gives percentage 1.
	ts := sortedTuples(6)
	for i := 0; i < 3; i++ {
		ts[i], ts[i+3] = ts[i+3], ts[i]
	}
	p, err := KOrderedPercentage(ts, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p != 1 {
		t.Fatalf("maximal disorder percentage = %g, want 1", p)
	}
}

func TestSwapPairsErrors(t *testing.T) {
	base := sortedTuples(10)
	if _, err := SwapPairs(base, 1, 0); err == nil {
		t.Error("distance 0 must fail")
	}
	if _, err := SwapPairs(base, -1, 2); err == nil {
		t.Error("negative pairs must fail")
	}
	if _, err := SwapPairs(base, 6, 2); err == nil {
		t.Error("too many swaps must fail")
	}
	out, err := SwapPairs(base, 0, 5)
	if err != nil || KOrderedness(out) != 0 {
		t.Error("zero swaps must be the identity")
	}
}

func TestStaircaseErrors(t *testing.T) {
	base := sortedTuples(100)
	if _, err := Staircase(base, 3, 5); err == nil {
		t.Error("odd perDistance must fail")
	}
	if _, err := Staircase(base, 0, 5); err == nil {
		t.Error("zero perDistance must fail")
	}
	if _, err := Staircase(base, 2, 0); err == nil {
		t.Error("zero maxDistance must fail")
	}
	if _, err := Staircase(sortedTuples(5), 10, 100); err == nil {
		t.Error("insufficient tuples must fail")
	}
}

func TestStaircaseDisplacementHistogram(t *testing.T) {
	ts, err := Staircase(sortedTuples(1000), 4, 20)
	if err != nil {
		t.Fatal(err)
	}
	hist := map[int]int{}
	for _, d := range Displacements(ts) {
		if d > 0 {
			hist[d]++
		}
	}
	for d := 1; d <= 20; d++ {
		if hist[d] != 4 {
			t.Errorf("distance %d: %d tuples displaced, want 4", d, hist[d])
		}
	}
}

func TestShuffleIsPermutationAndDoesNotMutate(t *testing.T) {
	base := sortedTuples(200)
	out := Shuffle(base, 3)
	if KOrderedness(base) != 0 {
		t.Fatal("Shuffle mutated its input")
	}
	if KOrderedness(out) == 0 {
		t.Fatal("shuffle of 200 tuples left them sorted (astronomically unlikely)")
	}
	seen := map[int64]bool{}
	for _, tu := range out {
		seen[tu.Value] = true
	}
	if len(seen) != len(base) {
		t.Fatal("shuffle is not a permutation")
	}
}

func TestShuffleDeterministicPerSeed(t *testing.T) {
	base := sortedTuples(50)
	a := Shuffle(base, 9)
	b := Shuffle(base, 9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different shuffles")
		}
	}
}

func TestPerturbToPercentageHitsTarget(t *testing.T) {
	base := sortedTuples(4000)
	for _, tc := range []struct {
		k   int
		pct float64
	}{
		{4, 0.02}, {4, 0.14}, {40, 0.08}, {400, 0.14}, {1, 0.5},
	} {
		out, err := PerturbToPercentage(base, tc.k, tc.pct, 17)
		if err != nil {
			t.Fatalf("k=%d pct=%g: %v", tc.k, tc.pct, err)
		}
		if !IsKOrdered(out, tc.k) {
			t.Fatalf("k=%d pct=%g: result is %d-ordered", tc.k, tc.pct, KOrderedness(out))
		}
		got, err := KOrderedPercentage(out, tc.k)
		if err != nil {
			t.Fatal(err)
		}
		// Quantization: achieved = 2·round(pct·n/2)/n, within 1/n of target.
		if math.Abs(got-tc.pct) > 1.0/float64(len(base)) {
			t.Fatalf("k=%d: achieved percentage %g, want %g ± %g",
				tc.k, got, tc.pct, 1.0/float64(len(base)))
		}
	}
}

func TestPerturbToPercentageErrors(t *testing.T) {
	base := sortedTuples(100)
	if _, err := PerturbToPercentage(base, 0, 0.1, 1); err == nil {
		t.Error("k=0 must fail")
	}
	if _, err := PerturbToPercentage(base, 4, -0.1, 1); err == nil {
		t.Error("negative pct must fail")
	}
	if _, err := PerturbToPercentage(base, 4, 1.5, 1); err == nil {
		t.Error("pct>1 must fail")
	}
	if _, err := PerturbToPercentage(base, 200, 0.5, 1); err == nil {
		t.Error("k >= n must fail")
	}
	unsorted := Shuffle(base, 1)
	if _, err := PerturbToPercentage(unsorted, 4, 0.1, 1); err == nil {
		t.Error("unsorted input must fail")
	}
	out, err := PerturbToPercentage(base, 4, 0, 1)
	if err != nil || KOrderedness(out) != 0 {
		t.Error("pct=0 must be the identity")
	}
}

// TestPercentageFormulaProperty: for any set of disjoint swaps at distance
// exactly k, the percentage equals 2·swaps/n.
func TestPercentageFormulaProperty(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	prop := func() bool {
		n := 200 + r.Intn(800)
		k := 1 + r.Intn(20)
		base := sortedTuples(n)
		maxPairs := n / (k + 1)
		pairs := r.Intn(maxPairs)
		out, err := SwapPairs(base, pairs, k)
		if err != nil {
			return false
		}
		got, err := KOrderedPercentage(out, k)
		if err != nil {
			return false
		}
		want := 2 * float64(pairs) / float64(n)
		return math.Abs(got-want) < 1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
