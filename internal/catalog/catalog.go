// Package catalog manages a directory of relation files as a small
// temporal database: every *.rel file is a relation, and catalog.json
// persists the per-relation declarations the query optimizer consumes —
// most importantly the administrator's "retroactively bounded" declaration
// of §6.3 ("If the relation is declared by the data base administrator to
// be retroactively bounded, then the k-ordered aggregation tree would be
// the algorithm of choice").
package catalog

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"tempagg/internal/core"
	"tempagg/internal/obs"
	"tempagg/internal/query"
	"tempagg/internal/relation"
)

// MetadataFile is the name of the persisted declaration file inside a
// catalog directory.
const MetadataFile = "catalog.json"

// Entry is the persisted metadata for one relation.
type Entry struct {
	// File is the relation file name, relative to the catalog directory.
	File string `json:"file"`
	// KBound declares the relation k-ordered (retroactively bounded) with
	// this bound; -1 means unknown.
	KBound int `json:"kbound"`
	// MemoryBudget bounds evaluation-structure memory in bytes; 0 means
	// unlimited.
	MemoryBudget int64 `json:"memory_budget,omitempty"`
	// ExpectedConstantIntervals hints the result size for the optimizer;
	// 0 means unknown.
	ExpectedConstantIntervals int `json:"expected_constant_intervals,omitempty"`
	// Comment is free-form documentation.
	Comment string `json:"comment,omitempty"`
}

// Catalog is an open catalog directory. It is safe for concurrent use: the
// server serves every connection from its own goroutine, so declarations
// can arrive while queries resolve names.
type Catalog struct {
	dir string

	mu      sync.RWMutex
	entries map[string]Entry

	// liveMu guards the live-relation registry (live.go); a separate lock
	// so long-running file queries never delay ingest or snapshot reads.
	liveMu      sync.RWMutex
	lives       map[string]*liveRelation
	liveMetrics atomic.Pointer[obs.Metrics]

	// Range-query acceleration (cache.go): the per-relation interval-index
	// cache and the versioned result cache, both opt-in.
	idxMu      sync.Mutex
	indexes    map[string]indexEntry
	rangeIndex atomic.Bool
	results    atomic.Pointer[core.ResultCache]
}

// Open loads the catalog at dir: every *.rel file becomes a relation named
// by its base name, overlaid with any declarations from catalog.json.
func Open(dir string) (*Catalog, error) {
	fis, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("catalog: %w", err)
	}
	c := &Catalog{dir: dir, entries: map[string]Entry{}}
	for _, fi := range fis {
		if fi.IsDir() || !strings.HasSuffix(fi.Name(), ".rel") {
			continue
		}
		name := strings.TrimSuffix(fi.Name(), ".rel")
		c.entries[name] = Entry{File: fi.Name(), KBound: -1}
	}
	data, err := os.ReadFile(filepath.Join(dir, MetadataFile))
	switch {
	case os.IsNotExist(err):
		return c, nil
	case err != nil:
		return nil, fmt.Errorf("catalog: %w", err)
	}
	var persisted map[string]Entry
	if err := json.Unmarshal(data, &persisted); err != nil {
		return nil, fmt.Errorf("catalog: parse %s: %w", MetadataFile, err)
	}
	for name, e := range persisted {
		if _, ok := c.entries[name]; !ok {
			// A declaration for a missing file is an error the operator
			// should see, not a silent skip.
			return nil, fmt.Errorf("catalog: %s declares %q but %s is missing",
				MetadataFile, name, e.File)
		}
		c.entries[name] = e
	}
	return c, nil
}

// Save persists the declarations to catalog.json.
func (c *Catalog) Save() error {
	c.mu.RLock()
	data, err := json.MarshalIndent(c.entries, "", "  ")
	c.mu.RUnlock()
	if err != nil {
		return fmt.Errorf("catalog: %w", err)
	}
	path := filepath.Join(c.dir, MetadataFile)
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("catalog: %w", err)
	}
	return nil
}

// Names lists the catalog's relations, sorted.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.namesLocked()
}

// namesLocked is Names without locking, for use under either lock mode.
func (c *Catalog) namesLocked() []string {
	names := make([]string, 0, len(c.entries))
	for n := range c.entries {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Entry returns the declarations for a relation.
func (c *Catalog) Entry(name string) (Entry, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.lookup(name)
}

// lookup is Entry without locking, for use under either lock mode.
func (c *Catalog) lookup(name string) (Entry, error) {
	e, ok := c.entries[name]
	if !ok {
		return Entry{}, fmt.Errorf("catalog: relation %q not found (have: %s)",
			name, strings.Join(c.namesLocked(), ", "))
	}
	return e, nil
}

// Declare updates a relation's declarations (KBound, MemoryBudget,
// ExpectedConstantIntervals, Comment) in memory; call Save to persist.
func (c *Catalog) Declare(name string, e Entry) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	old, err := c.lookup(name)
	if err != nil {
		return err
	}
	e.File = old.File
	c.entries[name] = e
	return nil
}

// Path returns the relation's file path.
func (c *Catalog) Path(name string) (string, error) {
	e, err := c.Entry(name)
	if err != nil {
		return "", err
	}
	return filepath.Join(c.dir, e.File), nil
}

// Info assembles the optimizer metadata for a relation: cardinality and
// sorted flag from the file header, declarations from the catalog.
func (c *Catalog) Info(name string) (query.RelationInfo, error) {
	e, err := c.Entry(name)
	if err != nil {
		return query.RelationInfo{}, err
	}
	path := filepath.Join(c.dir, e.File)
	sc, err := relation.Open(path, relation.ScanOptions{})
	if err != nil {
		return query.RelationInfo{}, err
	}
	defer sc.Close()
	return query.RelationInfo{
		Tuples:                    sc.Count(),
		Sorted:                    sc.Sorted(),
		KBound:                    e.KBound,
		MemoryBudget:              e.MemoryBudget,
		ExpectedConstantIntervals: e.ExpectedConstantIntervals,
	}, nil
}

// Query parses and executes a query, resolving the FROM clause against the
// catalog and streaming from the relation file where the plan allows.
// EXPLAIN statements return the plan report without touching the file's
// tuples; EXPLAIN ANALYZE executes normally and — even with no observer —
// builds a standalone trace so the report carries the span tree.
func (c *Catalog) Query(sql string, sopts relation.ScanOptions) (*query.QueryResult, error) {
	return c.QueryObserved(sql, sopts, nil)
}

// QueryObserved is Query under observation: the whole query becomes one
// trace on o — parse, plan, execute, and finish spans, the chosen
// algorithm, and the evaluator-counter snapshot — and o's metrics record
// the per-algorithm counters, latency histogram, and slow-query log entry.
// A nil o is equivalent to Query.
func (c *Catalog) QueryObserved(sql string, sopts relation.ScanOptions, o *obs.Observer) (*query.QueryResult, error) {
	tr := o.StartQuery(sql)
	qr, err := c.queryTraced(sql, sopts, tr)
	o.FinishQuery(tr, err)
	return qr, err
}

// QueryBatch parses and executes several queries in one call. Queries over
// the same relation that the shared sweep can serve (decomposable
// aggregates, no snapshot/span/attribute grouping or DISTINCT) are
// evaluated together by query.ExecuteBatch — each relation file is read
// once per batch and one core.SweepGroup pass covers every admitted
// query's select list; the rest execute individually. Results align with
// sqls by index.
func (c *Catalog) QueryBatch(sqls []string, sopts relation.ScanOptions) ([]*query.QueryResult, error) {
	parsed := make([]*query.Query, len(sqls))
	for i, sql := range sqls {
		q, err := query.Parse(sql)
		if err != nil {
			return nil, err
		}
		parsed[i] = q
	}
	// Group by relation, preserving first-appearance order so error
	// messages and file reads are deterministic.
	byRel := map[string][]int{}
	var order []string
	for i, q := range parsed {
		if _, ok := byRel[q.Relation]; !ok {
			order = append(order, q.Relation)
		}
		byRel[q.Relation] = append(byRel[q.Relation], i)
	}
	results := make([]*query.QueryResult, len(sqls))
	for _, name := range order {
		idxs := byRel[name]
		info, err := c.Info(name)
		if err != nil {
			return nil, err
		}
		path, err := c.Path(name)
		if err != nil {
			return nil, err
		}
		rel, err := loadRelation(path, name, sopts)
		if err != nil {
			return nil, err
		}
		qs := make([]*query.Query, len(idxs))
		for k, i := range idxs {
			qs[k] = parsed[i]
		}
		sub, err := query.ExecuteBatch(qs, rel, &info)
		if err != nil {
			return nil, err
		}
		for k, i := range idxs {
			results[i] = sub[k]
		}
	}
	return results, nil
}

// loadRelation materializes a relation file for batch evaluation.
func loadRelation(path, name string, sopts relation.ScanOptions) (*relation.Relation, error) {
	sc, err := relation.Open(path, sopts)
	if err != nil {
		return nil, err
	}
	defer sc.Close()
	rel := relation.New(name)
	for {
		t, ok, err := sc.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return rel, nil
		}
		rel.Append(t)
	}
}

// queryTraced resolves and executes one query, recording stages on tr.
func (c *Catalog) queryTraced(sql string, sopts relation.ScanOptions, tr *obs.QueryTrace) (*query.QueryResult, error) {
	parseSpan := tr.StartSpan("parse")
	q, err := query.Parse(sql)
	parseSpan.End()
	if err != nil {
		return nil, err
	}
	if q.Live {
		return c.executeLive(q, tr)
	}
	info, err := c.Info(q.Relation)
	if err != nil {
		return nil, err
	}
	path, err := c.Path(q.Relation)
	if err != nil {
		return nil, err
	}
	// Range-query acceleration (cache.go): attach the resident interval
	// index so the planner can price an index-lookup plan, and consult the
	// versioned result cache before evaluating anything. A randomized scan
	// still reads the same tuple set, so both caches remain sound under it.
	version := fileFingerprint(path)
	if c.rangeIndex.Load() && version != "" && query.IndexEligible(q) {
		if idx, ierr := c.indexFor(q.Relation, path, version); ierr == nil {
			info.Index = idx
		}
	}
	rc := c.results.Load()
	if rc == nil || version == "" || !cacheable(q) {
		return query.ExecuteFileTraced(q, path, &info, sopts, tr)
	}
	if qr, ok := c.serveCached(rc, q, version, tr); ok {
		return qr, nil
	}
	qr, err := query.ExecuteFileTraced(q, path, &info, sopts, tr)
	if err == nil {
		c.storeResults(rc, q, version, qr)
	}
	return qr, err
}
