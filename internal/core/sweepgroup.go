package core

import (
	"errors"
	"fmt"
	"math/bits"
	"strconv"
	"sync"

	"tempagg/internal/aggregate"
	"tempagg/internal/interval"
	"tempagg/internal/obs"
	"tempagg/internal/tuple"
)

// SweepGroup evaluates several decomposable queries — each an aggregate
// plus an optional tuple predicate — in one shared pass over one event
// buffer (DESIGN.md S42). Where N separate sweeps ingest, sort, and scan
// the relation N times, the group ingests once, tagging every event with a
// bitmask of the queries it qualifies for (the mask rides through the radix
// sort as one more payload column), sorts once, and scans once, folding
// each event's deltas into the running pairs of exactly the queries in its
// mask.
//
// Per-query results are row-identical to running that query through its own
// serial sweep over its filtered tuples: a row boundary is recorded for a
// query only at timestamps where the query itself has an event ("touched"
// boundaries), so queries do not inherit each other's row splits. The scan
// parallelizes exactly like the single-query sweep — chunked at arrival
// timestamps with per-chunk carry-in computed by a prefix pass — except
// that a chunk records per-query (boundary, local-fold) touch lists instead
// of rows, and a cheap serial stitch adds the carries and materializes the
// rows.
type SweepGroup struct {
	noCopy noCopy

	span    interval.Interval
	opts    SweepOptions
	queries []GroupQuery
	ar      colArena

	// Event columns: timestamps, signed values, and query bitmasks, the
	// mask column carried through the sort as an extra radix payload.
	sTimes, sVals, sMasks []int64
	eTimes, eVals, eMasks []int64
	sSorted               bool
	sLast                 int64
	ingested              bool

	events      int
	radixPasses int

	sink  obs.Sink
	es    obs.EvalSink
	stats statsCell
}

// GroupQuery is one registered query: an aggregate over the tuples its
// filter accepts.
type GroupQuery struct {
	// Func must be a decomposable aggregate (COUNT/SUM/AVG); Register
	// rejects MIN/MAX, which cannot share the signed-delta scan.
	Func aggregate.Func
	// Filter, when non-nil, restricts the query to the tuples it accepts.
	// It sees the tuple as ingested, before span clipping.
	Filter func(tuple.Tuple) bool
}

// MaxGroupQueries is the registration capacity of one SweepGroup: the
// width of the per-event query bitmask.
const MaxGroupQueries = 64

// NewSweepGroup returns an empty group over [0, ∞].
func NewSweepGroup(opts SweepOptions) *SweepGroup {
	return NewSweepGroupRange(interval.Universe(), opts)
}

// NewSweepGroupRange returns an empty group covering only the given range;
// tuples are clipped to it on insertion like NewSweepRange.
func NewSweepGroupRange(span interval.Interval, opts SweepOptions) *SweepGroup {
	return &SweepGroup{span: span, opts: opts, sSorted: true}
}

func (g *SweepGroup) setSink(snk obs.Sink) {
	g.sink = snk
	if snk == nil {
		return // nil Sink: instrumentation disabled (obs.Sink contract)
	}
	g.es = snk.Evaluator(SweepGroupAlgorithm)
}

// SweepGroupAlgorithm is the algorithm label SweepGroup publishes under.
const SweepGroupAlgorithm = "sweep-group"

// SetSink attaches an observability sink; call before the first Add.
func (g *SweepGroup) SetSink(snk obs.Sink) { g.setSink(snk) }

// setTrace attaches the span-propagation context (traceSetter); Finish then
// records sort, per-worker scan, and per-query stitch child spans.
func (g *SweepGroup) setTrace(ctx obs.TraceContext) { g.opts.Trace = ctx }

// SetTrace is the exported form of setTrace for callers that construct the
// group before the trace context exists (the query executor).
func (g *SweepGroup) SetTrace(ctx obs.TraceContext) { g.setTrace(ctx) }

// Register adds one query and returns its index into Finish's results.
// All registrations must precede the first Add.
func (g *SweepGroup) Register(q GroupQuery) (int, error) {
	if g.ingested {
		return 0, errors.New("core: SweepGroup.Register after Add")
	}
	if !q.Func.Kind().Decomposable() {
		return 0, fmt.Errorf("core: SweepGroup cannot share %v (not decomposable)", q.Func.Kind())
	}
	if len(g.queries) == MaxGroupQueries {
		return 0, fmt.Errorf("core: SweepGroup is full (%d queries)", MaxGroupQueries)
	}
	g.queries = append(g.queries, q)
	return len(g.queries) - 1, nil
}

// Queries reports the number of registered queries.
func (g *SweepGroup) Queries() int { return len(g.queries) }

// add ingests one tuple already validated, returning nodes charged.
func (g *SweepGroup) add(tu tuple.Tuple) int {
	iv, ok := tu.Valid.Intersect(g.span)
	if !ok {
		return 0
	}
	var mask uint64
	for qi := range g.queries {
		if f := g.queries[qi].Filter; f == nil || f(tu) {
			mask |= 1 << uint(qi)
		}
	}
	if mask == 0 {
		return 0
	}
	if iv.Start < g.sLast {
		g.sSorted = false
	}
	g.sLast = iv.Start
	g.sTimes = g.ar.push(g.sTimes, iv.Start)
	g.sVals = g.ar.push(g.sVals, tu.Value)
	g.sMasks = g.ar.push(g.sMasks, int64(mask))
	if iv.End >= g.span.End {
		return 1
	}
	g.eTimes = g.ar.push(g.eTimes, iv.End+1)
	g.eVals = g.ar.push(g.eVals, tu.Value)
	g.eMasks = g.ar.push(g.eMasks, int64(mask))
	return 2
}

// Add absorbs one tuple for every registered query whose filter accepts it.
func (g *SweepGroup) Add(tu tuple.Tuple) error {
	if err := tu.Valid.Validate(); err != nil {
		return err
	}
	g.ingested = true
	grown := g.add(tu)
	g.stats.grow(grown)
	g.stats.addTuple()
	if g.es != nil {
		g.es.TuplesProcessed(1)
		g.es.NodesAllocated(grown)
	}
	return nil
}

// AddBatch absorbs one page of tuples; sink publication is batched to one
// event pair per page, mirroring Sweep.AddBatch.
func (g *SweepGroup) AddBatch(ts []tuple.Tuple) error {
	g.ingested = true
	grown, added := 0, 0
	var err error
	for i := range ts {
		if err = ts[i].Valid.Validate(); err != nil {
			break
		}
		grown += g.add(ts[i])
		g.stats.addTuple()
		added++
	}
	g.stats.grow(grown)
	if g.es != nil {
		g.es.TuplesProcessed(added)
		g.es.NodesAllocated(grown)
	}
	return err
}

// Stats reports the group's counters (tuples ingested once, shared by all
// registered queries).
func (g *SweepGroup) Stats() Stats { return g.stats.snapshot() }

// groupTouch is one row boundary of one query inside one chunk: the
// boundary timestamp and the chunk-local (count, sum) fold accumulated
// before absorbing the events at it.
type groupTouch struct {
	t          int64
	count, sum int64
}

// groupChunk is one worker's slice of the shared scan.
type groupChunk struct {
	cut                int64
	sLo, sHi, eLo, eHi int
	touches            [][]groupTouch // per query, boundaries owned by this chunk
	endCount, endSum   []int64        // per query, chunk-local totals after all its events
}

// Finish sorts the shared event columns, runs the scan, and returns one
// Result per registered query, in registration order. The group must not
// be reused afterwards.
func (g *SweepGroup) Finish() ([]*Result, error) {
	if len(g.queries) == 0 {
		return nil, errors.New("core: SweepGroup.Finish with no registered queries")
	}
	g.events = len(g.sTimes) + len(g.eTimes)
	workers := g.opts.workers(g.events)
	if !g.sSorted {
		sp := g.opts.Trace.StartChild("radix-sort")
		sp.SetAttr("column", "arrivals")
		g.radixPasses += radixSortInt64Parallel(&g.ar, workers, g.sTimes, g.sVals, g.sMasks)
		sp.End()
	}
	if !sortedInt64(g.eTimes) {
		sp := g.opts.Trace.StartChild("radix-sort")
		sp.SetAttr("column", "departures")
		g.radixPasses += radixSortInt64Parallel(&g.ar, workers, g.eTimes, g.eVals, g.eMasks)
		sp.End()
	}
	results, chunks := g.scan(workers)
	for _, col := range [][]int64{
		g.sTimes, g.sVals, g.sMasks, g.eTimes, g.eVals, g.eMasks,
	} {
		g.ar.release(col)
	}
	g.sTimes, g.sVals, g.sMasks = nil, nil, nil
	g.eTimes, g.eVals, g.eMasks = nil, nil, nil
	cols, reused := g.ar.counters()
	if g.es != nil {
		g.es.PeakNodes(int(g.stats.peakNodes.Load()))
		g.es.ArenaRelease(cols, reused)
		g.es.Sweep(g.events, g.radixPasses, 0)
		g.es.SweepParallel(workers, chunks)
		g.es.SweepShared(len(g.queries))
	}
	return results, nil
}

// scan cuts the sorted event stream into chunks, scans them concurrently,
// and stitches per-query rows. One chunk (workers == 1 or nothing to cut)
// is the serial scan through the identical code path.
func (g *SweepGroup) scan(workers int) ([]*Result, int) {
	lo, hi := g.span.Start, g.span.End
	var cuts []int64
	if workers > 1 {
		cuts = chunkCuts(g.sTimes, lo, workers)
	}
	chunks := make([]groupChunk, len(cuts)+1)
	chunks[0].cut = lo
	for k, c := range cuts {
		chunks[k+1].cut = c
		chunks[k+1].sLo = lowerBoundInt64(g.sTimes, c)
		chunks[k+1].eLo = lowerBoundInt64(g.eTimes, c)
	}
	for k := range chunks {
		if k+1 < len(chunks) {
			chunks[k].sHi, chunks[k].eHi = chunks[k+1].sLo, chunks[k+1].eLo
		} else {
			chunks[k].sHi, chunks[k].eHi = len(g.sTimes), len(g.eTimes)
		}
	}
	scanSp := g.opts.Trace.StartChild("scan")
	scanSp.SetAttr("mode", "shared")
	scanSp.SetAttr("workers", strconv.Itoa(workers))
	scanSp.SetAttr("chunks", strconv.Itoa(len(chunks)))
	defer scanSp.End()
	if len(chunks) == 1 {
		c := &chunks[0]
		wsp := scanSp.StartChild("scan-worker")
		wsp.SetAttr("worker", "0")
		g.scanChunk(c)
		wsp.AddCounters(0, (c.sHi-c.sLo)+(c.eHi-c.eLo), 0, 0)
		wsp.End()
	} else {
		var wg sync.WaitGroup
		for k := range chunks {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				c := &chunks[k]
				wsp := scanSp.StartChild("scan-worker")
				wsp.SetAttr("worker", strconv.Itoa(k))
				g.scanChunk(c)
				wsp.AddCounters(0, (c.sHi-c.sLo)+(c.eHi-c.eLo), 0, 0)
				wsp.End()
			}(k)
		}
		wg.Wait()
	}

	// Stitch: thread each query's carry across the chunks and materialize
	// its rows. A touch records the chunk-local fold before its boundary;
	// carry + local is the serial scan's running pair there (int64 addition
	// is associative), so the rows are bit-identical to a dedicated serial
	// sweep over the query's filtered tuples.
	results := make([]*Result, len(g.queries))
	for q := range g.queries {
		qsp := scanSp.StartChild("group-query")
		qsp.SetAttr("query", strconv.Itoa(q))
		f := g.queries[q].Func
		total := 1
		for k := range chunks {
			total += len(chunks[k].touches[q])
		}
		rows := make([]Row, 0, total)
		cur := lo
		var count, sum int64
		for k := range chunks {
			for _, tc := range chunks[k].touches[q] {
				rows = append(rows, Row{
					Interval: interval.MustNew(cur, tc.t-1),
					State:    f.FromCounters(count+tc.count, sum+tc.sum, 0),
				})
				cur = tc.t
			}
			count += chunks[k].endCount[q]
			sum += chunks[k].endSum[q]
		}
		rows = append(rows, Row{
			Interval: interval.MustNew(cur, hi),
			State:    f.FromCounters(count, sum, 0),
		})
		results[q] = &Result{Func: f, Rows: rows}
		qsp.SetAttr("rows", strconv.Itoa(len(rows)))
		qsp.End()
	}
	return results, len(chunks)
}

// scanChunk walks one chunk's event ranges, recording a touch for every
// (query, boundary) pair where the query has an event — the only
// boundaries at which that query's dedicated sweep would emit a row — and
// folding deltas into per-query chunk-local pairs. Boundaries at the span
// start produce no touch: the serial scan absorbs those arrivals before
// emitting anything.
func (g *SweepGroup) scanChunk(c *groupChunk) {
	nq := len(g.queries)
	c.touches = make([][]groupTouch, nq)
	c.endCount = make([]int64, nq)
	c.endSum = make([]int64, nq)
	lo := g.span.Start
	i, j := c.sLo, c.eLo
	for i < c.sHi || j < c.eHi {
		var t int64
		switch {
		case i < c.sHi && j < c.eHi:
			t = min(g.sTimes[i], g.eTimes[j])
		case i < c.sHi:
			t = g.sTimes[i]
		default:
			t = g.eTimes[j]
		}
		if t != lo {
			var touched uint64
			for ii := i; ii < c.sHi && g.sTimes[ii] == t; ii++ {
				touched |= uint64(g.sMasks[ii])
			}
			for jj := j; jj < c.eHi && g.eTimes[jj] == t; jj++ {
				touched |= uint64(g.eMasks[jj])
			}
			for m := touched; m != 0; m &= m - 1 {
				q := bits.TrailingZeros64(m)
				c.touches[q] = append(c.touches[q], groupTouch{
					t: t, count: c.endCount[q], sum: c.endSum[q],
				})
			}
		}
		for i < c.sHi && g.sTimes[i] == t {
			v := g.sVals[i]
			for m := uint64(g.sMasks[i]); m != 0; m &= m - 1 {
				q := bits.TrailingZeros64(m)
				c.endCount[q]++
				c.endSum[q] += v
			}
			i++
		}
		for j < c.eHi && g.eTimes[j] == t {
			v := g.eVals[j]
			for m := uint64(g.eMasks[j]); m != 0; m &= m - 1 {
				q := bits.TrailingZeros64(m)
				c.endCount[q]--
				c.endSum[q] -= v
			}
			j++
		}
	}
}
