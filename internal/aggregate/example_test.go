package aggregate_test

import (
	"fmt"

	"tempagg/internal/aggregate"
)

// Example shows the Add/Merge/Final state machine the tree algorithms rely
// on: merging partial states equals absorbing the whole input.
func Example() {
	f := aggregate.For(aggregate.Avg)
	a := f.Add(f.Add(f.Zero(), 40), 45) // {40, 45}
	b := f.Add(f.Zero(), 35)            // {35}
	fmt.Println(f.Final(f.Merge(a, b)))

	whole := f.Zero()
	for _, v := range []int64{40, 45, 35} {
		whole = f.Add(whole, v)
	}
	fmt.Println(f.StateEqual(f.Merge(a, b), whole))

	// Empty groups: COUNT is 0, everything else is null.
	fmt.Println(aggregate.For(aggregate.Count).Final(f.Zero()))
	fmt.Println(aggregate.For(aggregate.Min).Final(f.Zero()))
	// Output:
	// 40
	// true
	// 0
	// -
}
