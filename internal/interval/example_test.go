package interval_test

import (
	"fmt"

	"tempagg/internal/interval"
)

// Example shows the closed-interval model with the 0 and ∞ sentinels.
func Example() {
	iv := interval.MustNew(18, interval.Forever)
	fmt.Println(iv)
	fmt.Println(iv.Contains(17), iv.Contains(18), iv.Contains(interval.Forever))

	a, b := interval.MustNew(0, 10), interval.MustNew(10, 20)
	fmt.Println(a.Overlaps(b)) // closed intervals share instant 10
	got, _ := a.Intersect(b)
	fmt.Println(got)
	// Output:
	// [18,∞]
	// false true true
	// true
	// [10,10]
}

// ExampleGranularity converts calendar units to chronons for span grouping.
func ExampleGranularity() {
	fmt.Println(interval.Year.Span(2))
	g, err := interval.ParseGranularity("weeks")
	if err != nil {
		panic(err)
	}
	fmt.Println(g)
	// Output:
	// 63072000
	// WEEK
}
