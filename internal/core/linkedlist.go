package core

import (
	"tempagg/internal/aggregate"
	"tempagg/internal/interval"
	"tempagg/internal/obs"
	"tempagg/internal/tuple"
)

// listNode is one constant interval in the linked-list algorithm. Unlike the
// tree nodes, a list node carries the *complete* aggregate state for its
// interval, not a partial contribution.
type listNode struct {
	iv    interval.Interval
	state aggregate.State
	next  *listNode
}

// List implements the paper's naive linked-list algorithm (§4.2): a
// temporary relation — here an ordered singly linked list — of constant
// intervals and their aggregate values, incrementally split and updated for
// each tuple. Every Add walks the list from the head, which is what makes
// the algorithm simple and slow; the paper measured it ~300× slower than the
// aggregation tree at 64K tuples, while noting it is adequate when the
// result has few constant intervals.
type List struct {
	noCopy noCopy

	f     aggregate.Func
	head  *listNode
	es    obs.EvalSink
	stats statsCell
}

var _ Evaluator = (*List)(nil)

// NewLinkedList returns a linked-list evaluator for the aggregate f. The
// list starts as the single empty constant interval [0, ∞] (Figure 2.a).
func NewLinkedList(f aggregate.Func) *List {
	l := &List{f: f, head: &listNode{iv: interval.Universe()}}
	l.stats.init(1)
	return l
}

func (l *List) setSink(s obs.Sink) {
	l.es = s.Evaluator(LinkedList.String())
	l.es.NodesAllocated(1) // the initial universe node
}

// Add absorbs one tuple: the first and last overlapped constant intervals
// are split at the tuple's start and end timestamps, then the tuple's value
// is added to every overlapped interval's state.
func (l *List) Add(t tuple.Tuple) error {
	if err := t.Valid.Validate(); err != nil {
		return err
	}
	s, e, v := t.Valid.Start, t.Valid.End, t.Value
	liveBefore := l.stats.liveNodes.Load()

	// Walk to the first node overlapping the tuple (always from the head —
	// the naive algorithm keeps no positional state).
	n := l.head
	for n.iv.End < s {
		n = n.next
	}
	// Split the first overlapped node if the tuple starts inside it.
	if n.iv.Start < s {
		l.split(n, s-1)
		n = n.next
	}
	// Update every fully overlapped node; split the last one if the tuple
	// ends inside it.
	for n != nil && n.iv.Start <= e {
		if n.iv.End > e {
			l.split(n, e)
		}
		n.state = l.f.Add(n.state, v)
		n = n.next
	}
	l.stats.addTuple()
	if l.es != nil {
		l.es.TuplesProcessed(1)
		l.es.NodesAllocated(int(l.stats.liveNodes.Load() - liveBefore))
	}
	return nil
}

// split divides n into [n.Start, at] and [at+1, n.End]; both halves keep n's
// state (the tuples counted so far overlapped the whole of n).
func (l *List) split(n *listNode, at interval.Time) {
	tail := &listNode{
		iv:    interval.MustNew(at+1, n.iv.End),
		state: n.state,
		next:  n.next,
	}
	n.iv.End = at
	n.next = tail
	l.stats.grow(1)
}

// Finish emits the constant intervals in time order.
func (l *List) Finish() (*Result, error) {
	res := &Result{Func: l.f}
	for n := l.head; n != nil; n = n.next {
		res.Rows = append(res.Rows, Row{Interval: n.iv, State: n.state})
	}
	l.head = nil
	if l.es != nil {
		l.es.PeakNodes(int(l.stats.peakNodes.Load()))
	}
	return res, nil
}

// Stats reports the evaluator's counters.
func (l *List) Stats() Stats { return l.stats.snapshot() }
