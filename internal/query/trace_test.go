package query

import (
	"strings"
	"testing"

	"tempagg/internal/obs"
	"tempagg/internal/relation"
)

// traceQuery runs one traced query over the Employed fixture file and
// returns the closed trace plus the observer for metric assertions.
func traceQuery(t *testing.T, sql string) (*obs.QueryTrace, *obs.Observer, *QueryResult) {
	t.Helper()
	path := writeRelation(t, relation.Employed())
	o := obs.NewObserver(8, nil)
	tr := o.StartQuery(sql)
	q, err := Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	qr, err := ExecuteFileTraced(q, path, nil, relation.ScanOptions{}, tr)
	o.FinishQuery(tr, err)
	if err != nil {
		t.Fatal(err)
	}
	return tr, o, qr
}

func TestExecuteFileTracedRecordsPlanSpansAndStats(t *testing.T) {
	tr, o, qr := traceQuery(t, "SELECT COUNT(Name) FROM Employed")

	if tr.Algorithm == "" || tr.Plan == "" {
		t.Errorf("trace missing plan: %+v", tr)
	}
	spans := map[string]bool{}
	for _, sp := range tr.Spans {
		spans[sp.Name] = true
	}
	for _, want := range []string{"plan", "execute", "finish"} {
		if !spans[want] {
			t.Errorf("trace missing span %q (have %v)", want, tr.Spans)
		}
	}
	if tr.Duration <= 0 || tr.Groups != 1 {
		t.Errorf("trace = %+v", tr)
	}

	// The trace's stats snapshot must equal the stats the executor returned.
	want := qr.Groups[0].Stats
	if tr.Stats.Tuples != want.Tuples || tr.Stats.PeakNodes != want.PeakNodes ||
		tr.Stats.LiveNodes != want.LiveNodes || tr.Stats.Collected != want.Collected {
		t.Errorf("trace stats %+v, executor stats %+v", tr.Stats, want)
	}

	// And the sink counters must agree with the same run.
	var b strings.Builder
	if err := o.Registry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	alg := tr.Algorithm
	reg := o.Registry()
	tuples := reg.CounterVec(obs.MetricTuplesProcessed, "", "algorithm").With(alg).Value()
	if tuples != int64(want.Tuples) {
		t.Errorf("tuples metric = %d, stats = %d\n%s", tuples, want.Tuples, b.String())
	}
	alloc := reg.CounterVec(obs.MetricNodesAllocated, "", "algorithm").With(alg).Value()
	if alloc != int64(want.LiveNodes+want.Collected) {
		t.Errorf("alloc metric = %d, stats live+collected = %d", alloc, want.LiveNodes+want.Collected)
	}
}

func TestTracedTumaCountsTwoPasses(t *testing.T) {
	tr, o, _ := traceQuery(t, "SELECT COUNT(Name) FROM Employed USING TUMA")
	if tr.Algorithm != "tuma-two-pass" {
		t.Fatalf("algorithm = %q", tr.Algorithm)
	}
	n := relation.Employed().Len()
	got := o.Registry().CounterVec(obs.MetricTuplesProcessed, "", "algorithm").
		With("tuma-two-pass").Value()
	if got != int64(2*n) {
		t.Errorf("tuma tuples metric = %d, want %d (two scans)", got, 2*n)
	}
}

func TestTracedMaterializedFallback(t *testing.T) {
	// DISTINCT forces the materializing path through ExecuteTraced; the
	// trace must still carry plan and stats.
	tr, _, qr := traceQuery(t, "SELECT COUNT(DISTINCT Name) FROM Employed")
	if tr.Algorithm == "" {
		t.Errorf("fallback trace missing algorithm: %+v", tr)
	}
	if tr.Stats.Tuples != qr.Groups[0].Stats.Tuples {
		t.Errorf("trace tuples = %d, executor = %d", tr.Stats.Tuples, qr.Groups[0].Stats.Tuples)
	}
}

func TestNilTraceExecutesIdentically(t *testing.T) {
	path := writeRelation(t, relation.Employed())
	q := mustParse(t, "SELECT COUNT(Name) FROM Employed")
	plain, err := ExecuteFile(q, path, nil, relation.ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	traced, err := ExecuteFileTraced(q, path, nil, relation.ScanOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plain.String() != traced.String() {
		t.Errorf("results differ:\n%s\nvs\n%s", plain, traced)
	}
}
