package core_test

import (
	"fmt"

	"tempagg/internal/aggregate"
	"tempagg/internal/core"
	"tempagg/internal/interval"
	"tempagg/internal/relation"
	"tempagg/internal/tuple"
)

// ExampleRun reproduces Table 1 of the paper: COUNT(Name) over the Employed
// relation, grouped by instant, via the aggregation tree.
func ExampleRun() {
	f := aggregate.For(aggregate.Count)
	res, _, err := core.Run(core.Spec{Algorithm: core.AggregationTree}, f,
		relation.Employed().Tuples)
	if err != nil {
		panic(err)
	}
	for i, row := range res.Rows {
		fmt.Printf("%s %s\n", res.Value(i), row.Interval)
	}
	// Output:
	// 0 [0,6]
	// 1 [7,7]
	// 2 [8,12]
	// 1 [13,17]
	// 3 [18,20]
	// 2 [21,21]
	// 1 [22,∞]
}

// ExampleKTree shows incremental evaluation with garbage collection over a
// sorted stream: memory stays bounded while the full result is produced.
func ExampleKTree() {
	f := aggregate.For(aggregate.Sum)
	kt, err := core.NewKOrderedTree(f, 1)
	if err != nil {
		panic(err)
	}
	for i := int64(0); i < 1000; i++ {
		if err := kt.Add(tuple.MustNew("t", 1, i*10, i*10+4)); err != nil {
			panic(err)
		}
	}
	res, err := kt.Finish()
	if err != nil {
		panic(err)
	}
	fmt.Printf("rows: %d\n", len(res.Rows))
	fmt.Printf("peak nodes stayed small: %t\n", kt.Stats().PeakNodes < 32)
	fmt.Printf("nodes collected: %t\n", kt.Stats().Collected > 1000)
	// Output:
	// rows: 2000
	// peak nodes stayed small: true
	// nodes collected: true
}

// ExampleTuma runs the two-pass baseline; the source is read twice.
func ExampleTuma() {
	src := core.NewSliceSource(relation.Employed().Tuples)
	res, err := core.Tuma(src, aggregate.For(aggregate.Max))
	if err != nil {
		panic(err)
	}
	v, _ := res.At(19)
	fmt.Printf("max salary at 19: %s (passes: %d)\n", v, src.Passes())
	// Output:
	// max salary at 19: 45 (passes: 2)
}

// ExampleGroupBySpan aggregates by fixed-length spans instead of instants.
func ExampleGroupBySpan() {
	ts := []tuple.Tuple{
		tuple.MustNew("a", 10, 0, 14),
		tuple.MustNew("b", 20, 10, 12),
		tuple.MustNew("c", 30, 25, 25),
	}
	res, err := core.GroupBySpan(aggregate.For(aggregate.Sum), ts, 10,
		interval.MustNew(0, 29))
	if err != nil {
		panic(err)
	}
	for i, row := range res.Rows {
		fmt.Printf("%s %s\n", row.Interval, res.Value(i))
	}
	// Output:
	// [0,9] 10
	// [10,19] 30
	// [20,29] 30
}

// ExampleEvaluatePartitionedTuples evaluates with bounded memory by cutting
// the time-line into partitions, each handled by its own tree (§5.1/§7).
func ExampleEvaluatePartitionedTuples() {
	ts := relation.Employed().Tuples
	res, _, err := core.EvaluatePartitionedTuples(
		aggregate.For(aggregate.Count), ts,
		core.PartitionOptions{Boundaries: []interval.Time{10, 20}},
	)
	if err != nil {
		panic(err)
	}
	res.Coalesce()
	v, _ := res.At(19)
	fmt.Printf("count at 19: %s\n", v)
	// Output:
	// count at 19: 3
}

// ExampleResult_Coalesce merges adjacent constant intervals whose values
// are equal — TSQL2 result coalescing.
func ExampleResult_Coalesce() {
	f := aggregate.For(aggregate.Count)
	ts := []tuple.Tuple{
		tuple.MustNew("a", 1, 0, 9),
		tuple.MustNew("b", 1, 10, 19), // count stays 1 across the boundary
	}
	res, _, err := core.Run(core.Spec{Algorithm: core.LinkedList}, f, ts)
	if err != nil {
		panic(err)
	}
	fmt.Printf("before: %d rows\n", len(res.Rows))
	res.Coalesce()
	fmt.Printf("after:  %d rows\n", len(res.Rows))
	// Output:
	// before: 3 rows
	// after:  2 rows
}
