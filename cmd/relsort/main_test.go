package main

import (
	"path/filepath"
	"testing"

	"tempagg"
)

func TestRelsort(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "in.rel")
	out := filepath.Join(dir, "out.rel")
	rel, err := tempagg.Generate(tempagg.WorkloadConfig{Tuples: 2000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := tempagg.WriteRelation(in, rel); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", in, "-out", out, "-memory", "100"}); err != nil {
		t.Fatal(err)
	}
	got, err := tempagg.ReadRelation(out)
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsSorted() || got.Len() != 2000 {
		t.Fatalf("sorted=%t len=%d", got.IsSorted(), got.Len())
	}
}

func TestRelsortErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing flags must fail")
	}
	if err := run([]string{"-in", "/missing.rel", "-out", "/tmp/x.rel"}); err == nil {
		t.Error("missing input must fail")
	}
}
