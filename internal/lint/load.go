package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Package is one type-checked package ready for analysis.
type Package struct {
	// Path is the import path ("tempagg/internal/core"); external test
	// packages carry a "_test" suffix ("tempagg/internal/core_test").
	Path string
	// Dir is the package directory on disk.
	Dir   string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// A Program is a loaded set of packages sharing one FileSet.
type Program struct {
	Fset *token.FileSet
	// Packages are the module packages matched by the load patterns, in
	// dependency order, followed by their external test packages.
	Packages []*Package
	// ModuleDir is the tempagg module root on disk. Diagnostics carry
	// absolute file names; baselines store them relative to this.
	ModuleDir string

	exports map[string]string         // import path → export data file
	checked map[string]*types.Package // import path → source-checked package
	gc      types.Importer            // export-data fallback importer
}

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath   string
	Dir          string
	Export       string
	Standard     bool
	DepOnly      bool
	ForTest      string
	GoFiles      []string
	CgoFiles     []string
	TestGoFiles  []string
	XTestGoFiles []string
	Module       *struct{ Path, Dir string }
}

// LoadOptions configures Load.
type LoadOptions struct {
	// Dir is the directory to run `go list` from; it must be inside the
	// tempagg module. Empty means the current directory.
	Dir string
	// Tests includes each package's test files: in-package _test.go files
	// are type-checked with the package, external test packages are
	// appended as separate packages.
	Tests bool
}

// Load lists patterns with the go tool, type-checks every matched module
// package from source (dependencies resolved against in-memory packages
// first, `go list -export` export data second), and returns the program.
func Load(opts LoadOptions, patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := []string{"list", "-e", "-export", "-json", "-deps"}
	if opts.Tests {
		// -test ensures export data exists for test-only dependencies
		// (testing, net/http/httptest, ...).
		args = append(args, "-test")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = opts.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list: %w\n%s", err, stderr.String())
	}

	prog := &Program{
		Fset:    token.NewFileSet(),
		exports: map[string]string{},
		checked: map[string]*types.Package{},
	}
	prog.gc = importer.ForCompiler(prog.Fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := prog.exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	})

	var targets []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: parse go list output: %w", err)
		}
		// Test variants ("pkg [pkg.test]") and synthesized test binaries
		// ("pkg.test") only contribute export data under their own keys;
		// targets come from the plain packages.
		if p.Export != "" {
			prog.exports[p.ImportPath] = p.Export
		}
		if p.ForTest != "" || strings.HasSuffix(p.ImportPath, ".test") ||
			strings.Contains(p.ImportPath, " [") {
			continue
		}
		if p.Module != nil && p.Module.Path == modulePath && !p.DepOnly {
			if prog.ModuleDir == "" {
				prog.ModuleDir = p.Module.Dir
			}
			targets = append(targets, p)
		}
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("lint: no tempagg packages match %v", patterns)
	}

	// Phase 1: type-check every target from its non-test sources, in the
	// dependency order go list -deps guarantees, registering each result
	// so later packages import the in-memory version. Only these pure
	// packages are ever importable — that keeps type identity consistent.
	pure := make([]*Package, len(targets))
	for i, p := range targets {
		files := append(append([]string{}, p.GoFiles...), p.CgoFiles...)
		pkg, err := prog.check(p.ImportPath, p.Dir, files, true)
		if err != nil {
			return nil, err
		}
		pure[i] = pkg
	}

	// Phase 2: build the analysis set. With tests, a package that has
	// in-package test files is re-checked with them included (against the
	// pure registry, unregistered, so no one imports the test-augmented
	// variant), and external test packages are appended under a "_test"
	// path suffix.
	for i, p := range targets {
		pkg := pure[i]
		if opts.Tests && len(p.TestGoFiles) > 0 {
			files := append(append([]string{}, p.GoFiles...), p.CgoFiles...)
			files = append(files, p.TestGoFiles...)
			var err error
			pkg, err = prog.check(p.ImportPath, p.Dir, files, false)
			if err != nil {
				return nil, err
			}
		}
		prog.Packages = append(prog.Packages, pkg)
	}
	if opts.Tests {
		for _, p := range targets {
			if len(p.XTestGoFiles) == 0 {
				continue
			}
			pkg, err := prog.check(p.ImportPath+"_test", p.Dir, p.XTestGoFiles, false)
			if err != nil {
				return nil, err
			}
			prog.Packages = append(prog.Packages, pkg)
		}
	}
	return prog, nil
}

// Import implements types.Importer: in-memory source-checked packages win,
// everything else (the standard library) comes from export data.
func (prog *Program) Import(path string) (*types.Package, error) {
	if pkg, ok := prog.checked[path]; ok {
		return pkg, nil
	}
	return prog.gc.Import(path)
}

// check parses and type-checks one package from source. register makes
// the result importable by later packages; only pure (non-test) variants
// may register, or import graphs would mix type incarnations.
func (prog *Program) check(path, dir string, fileNames []string, register bool) (*Package, error) {
	var files []*ast.File
	for _, name := range fileNames {
		f, err := parser.ParseFile(prog.Fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	pkg, info, err := prog.checkFiles(path, files, register)
	if err != nil {
		return nil, err
	}
	return &Package{Path: path, Dir: dir, Files: files, Pkg: pkg, Info: info}, nil
}

// CheckFiles type-checks already-parsed files as package path against the
// program's import graph without registering the result. It is used by
// linttest for fixture packages that import real tempagg packages.
func (prog *Program) CheckFiles(path string, files []*ast.File) (*types.Package, *types.Info, error) {
	return prog.checkFiles(path, files, false)
}

func (prog *Program) checkFiles(path string, files []*ast.File, register bool) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: prog}
	pkg, err := conf.Check(path, prog.Fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("lint: type-check %s: %w", path, err)
	}
	if register {
		prog.checked[path] = pkg
	}
	return pkg, info, nil
}
