package core

import (
	"sync"
	"testing"

	"tempagg/internal/aggregate"
	"tempagg/internal/interval"
	"tempagg/internal/obs"
	"tempagg/internal/tuple"
)

// raceTuples is a small workload whose inserts split nodes on every
// algorithm (interleaved, overlapping intervals in k-ordered arrival).
func raceTuples(n int) []tuple.Tuple {
	ts := make([]tuple.Tuple, 0, n)
	for i := 0; i < n; i++ {
		lo := interval.Time(i)
		ts = append(ts, tuple.MustNew("r", int64(i), lo, lo+10))
	}
	return ts
}

// TestStatsConcurrentSnapshot is the -race regression for the Stats
// contract: a scrape goroutine snapshots counters continuously while the
// evaluation runs. Before statsCell the counters were plain ints and this
// test fails under -race with a read/write conflict.
func TestStatsConcurrentSnapshot(t *testing.T) {
	specs := []Spec{
		{Algorithm: LinkedList},
		{Algorithm: AggregationTree},
		{Algorithm: KOrderedTree, K: 1},
		{Algorithm: BalancedTree},
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Algorithm.String(), func(t *testing.T) {
			ev, err := New(spec, aggregate.For(aggregate.Count))
			if err != nil {
				t.Fatal(err)
			}
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					s := ev.Stats()
					if s.LiveNodes < 0 || s.PeakNodes < s.LiveNodes {
						t.Errorf("torn snapshot: %+v", s)
						return
					}
				}
			}()
			for _, tu := range raceTuples(2000) {
				if err := ev.Add(tu); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := ev.Finish(); err != nil {
				t.Fatal(err)
			}
			close(stop)
			wg.Wait()
		})
	}
}

// TestObservedRunMatchesStats checks the acceptance identity: the counters
// an evaluator publishes through obs.Sink agree with the core.Stats the
// same run returns — allocated = LiveNodes + Collected (the initial node
// included), tuples and collected match exactly, and the peak gauge holds
// the high-water mark.
func TestObservedRunMatchesStats(t *testing.T) {
	specs := []Spec{
		{Algorithm: LinkedList},
		{Algorithm: AggregationTree},
		{Algorithm: KOrderedTree, K: 1},
		{Algorithm: BalancedTree},
	}
	ts := raceTuples(500)
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Algorithm.String(), func(t *testing.T) {
			m := obs.NewMetrics(obs.NewRegistry())
			_, stats, err := RunObserved(spec, aggregate.For(aggregate.Count), ts, m)
			if err != nil {
				t.Fatal(err)
			}
			alg := spec.Algorithm.String()
			reg := m.Registry()
			get := func(name string) int64 {
				return reg.CounterVec(name, "", "algorithm").With(alg).Value()
			}
			if got := get(obs.MetricTuplesProcessed); got != int64(stats.Tuples) {
				t.Errorf("tuples metric = %d, stats = %d", got, stats.Tuples)
			}
			if got, want := get(obs.MetricNodesAllocated), int64(stats.LiveNodes+stats.Collected); got != want {
				t.Errorf("allocated metric = %d, stats live+collected = %d", got, want)
			}
			if got := get(obs.MetricNodesCollected); got != int64(stats.Collected) {
				t.Errorf("collected metric = %d, stats = %d", got, stats.Collected)
			}
			peak := reg.GaugeVec(obs.MetricPeakNodes, "", "algorithm").With(alg).Value()
			if peak != int64(stats.PeakNodes) {
				t.Errorf("peak gauge = %d, stats = %d", peak, stats.PeakNodes)
			}
		})
	}
}

// TestRunObservedNilSinkMatchesRun pins the nil-sink contract: RunObserved
// with a nil sink is Run, bit for bit.
func TestRunObservedNilSinkMatchesRun(t *testing.T) {
	ts := raceTuples(100)
	res1, stats1, err1 := Run(Spec{Algorithm: AggregationTree}, aggregate.For(aggregate.Count), ts)
	res2, stats2, err2 := RunObserved(Spec{Algorithm: AggregationTree}, aggregate.For(aggregate.Count), ts, nil)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if stats1 != stats2 {
		t.Errorf("stats differ: %+v vs %+v", stats1, stats2)
	}
	if len(res1.Rows) != len(res2.Rows) {
		t.Errorf("row counts differ: %d vs %d", len(res1.Rows), len(res2.Rows))
	}
}
