package obs

import (
	"bytes"
	"encoding/json"
	"net/http"
)

// MetricsHandler serves the registry in the Prometheus text exposition
// format at GET /metrics.
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if r == nil {
			http.Error(w, "metrics disabled", http.StatusNotFound)
			return
		}
		// Render to a buffer first so an encoding failure can still become
		// a clean 500 instead of a torn 200 body.
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if _, err := w.Write(buf.Bytes()); err != nil {
			return // client went away mid-scrape
		}
	})
}

// QueriesHandler serves the rolling per-stage latency window — quantiles,
// bucket exemplar trace IDs, and the burn-rate slow-stage view — as JSON
// at GET /debug/queries.
func QueriesHandler(q *QueryStats) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if q == nil {
			http.Error(w, "query stats disabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(q.Snapshot()); err != nil {
			return // client went away mid-reply
		}
	})
}

// TracesHandler serves the ring of recent query traces as a JSON array at
// GET /debug/traces, oldest first.
func TracesHandler(b *TraceBuffer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if b == nil {
			http.Error(w, "tracing disabled", http.StatusNotFound)
			return
		}
		traces := b.Snapshot()
		if traces == nil {
			traces = []*QueryTrace{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(traces); err != nil {
			return // client went away mid-reply
		}
	})
}
