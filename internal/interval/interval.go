// Package interval models the discrete time-line used throughout the
// temporal-aggregation library.
//
// Following Kline & Snodgrass (ICDE 1995), time is a sequence of chronons
// (instants) numbered from 0, the origin, up to Forever, the greatest
// timestamp (written "∞" in the paper). Tuples are stamped with closed
// intervals [Start, End]; both endpoints are contained in the interval.
package interval

import (
	"fmt"
	"math"
)

// Time is a chronon: a single discrete instant on the time-line.
//
// The paper uses 4-byte timestamps; we compute with 64 bits and narrow to 32
// at the storage layer, where the paper's layout is preserved.
type Time = int64

const (
	// Origin is the earliest representable instant, written "0" in the paper.
	Origin Time = 0
	// Forever is the greatest representable instant, written "∞" in the
	// paper. An interval ending at Forever is open-ended in practice.
	Forever Time = math.MaxInt64
)

// FormatTime renders t, using "∞" for Forever, as in the paper's tables.
func FormatTime(t Time) string {
	if t == Forever {
		return "∞"
	}
	return fmt.Sprintf("%d", t)
}

// Interval is a closed interval [Start, End] of chronons. The zero value is
// the single-instant interval [0, 0].
type Interval struct {
	Start Time
	End   Time
}

// Universe is the interval covering the entire time-line, [0, ∞]. It is the
// single constant interval induced by an empty relation (Figure 2.a).
func Universe() Interval {
	return Interval{Start: Origin, End: Forever}
}

// New returns the closed interval [start, end].
func New(start, end Time) (Interval, error) {
	iv := Interval{Start: start, End: end}
	if err := iv.Validate(); err != nil {
		return Interval{}, err
	}
	return iv, nil
}

// MustNew is New but panics on invalid input. Intended for tests and
// literals.
func MustNew(start, end Time) Interval {
	iv, err := New(start, end)
	if err != nil {
		panic(err)
	}
	return iv
}

// At returns the single-instant interval [t, t].
func At(t Time) Interval {
	return Interval{Start: t, End: t}
}

// Validate reports whether the interval is well formed: Start and End within
// [Origin, Forever] and Start <= End.
func (iv Interval) Validate() error {
	if iv.Start < Origin {
		return fmt.Errorf("interval: start %d precedes the origin", iv.Start)
	}
	if iv.Start > iv.End {
		return fmt.Errorf("interval: start %s after end %s",
			FormatTime(iv.Start), FormatTime(iv.End))
	}
	return nil
}

// Duration is the number of chronons contained in the interval. Intervals
// reaching Forever report Forever (the count would overflow).
func (iv Interval) Duration() Time {
	if iv.End == Forever {
		return Forever
	}
	return iv.End - iv.Start + 1
}

// Contains reports whether instant t lies within the closed interval.
func (iv Interval) Contains(t Time) bool {
	return iv.Start <= t && t <= iv.End
}

// Overlaps reports whether the two closed intervals share at least one
// instant.
func (iv Interval) Overlaps(other Interval) bool {
	return iv.Start <= other.End && other.Start <= iv.End
}

// Covers reports whether iv contains every instant of other.
func (iv Interval) Covers(other Interval) bool {
	return iv.Start <= other.Start && other.End <= iv.End
}

// Intersect returns the instants common to both intervals. ok is false when
// they are disjoint.
func (iv Interval) Intersect(other Interval) (Interval, bool) {
	start := max(iv.Start, other.Start)
	end := min(iv.End, other.End)
	if start > end {
		return Interval{}, false
	}
	return Interval{Start: start, End: end}, true
}

// Meets reports whether iv ends exactly where other begins (Allen's "meets"):
// iv.End + 1 == other.Start.
func (iv Interval) Meets(other Interval) bool {
	return iv.End != Forever && iv.End+1 == other.Start
}

// Before reports whether iv lies entirely before instant t.
func (iv Interval) Before(t Time) bool {
	return iv.End < t
}

// Equal reports whether the two intervals are identical.
func (iv Interval) Equal(other Interval) bool {
	return iv == other
}

// String renders the interval in the paper's [start, end] notation, with ∞
// for Forever.
func (iv Interval) String() string {
	return fmt.Sprintf("[%s,%s]", FormatTime(iv.Start), FormatTime(iv.End))
}

// Compare orders intervals by start time, ties broken by end time — the
// paper's "totally ordered by time" relation (§5.2). It returns -1, 0, or +1.
func Compare(a, b Interval) int {
	switch {
	case a.Start < b.Start:
		return -1
	case a.Start > b.Start:
		return 1
	case a.End < b.End:
		return -1
	case a.End > b.End:
		return 1
	}
	return 0
}
