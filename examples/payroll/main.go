// Payroll is a domain-scale scenario: a retroactively bounded payroll feed —
// records arrive within a bounded delay of becoming true, so the stream is
// k-ordered (§5.3, §6) — processed incrementally with the k-ordered
// aggregation tree, whose garbage collection keeps memory small, plus a
// yearly report via span grouping.
//
// Run with:
//
//	go run ./examples/payroll
package main

import (
	"fmt"
	"log"

	"tempagg"
)

const (
	day  = tempagg.Time(1)
	year = 365 * day
)

func main() {
	// Simulate ten years of hires: employees join at mostly increasing
	// dates, but HR enters records up to a few positions late — a
	// retroactively bounded relation. Stints last 90 days to 4 years.
	const employees = 20000
	const maxDelay = 8 // positions out of order
	tuples := make([]tempagg.Tuple, 0, employees)
	rng := newRng(42)
	for i := 0; i < employees; i++ {
		start := tempagg.Time(i) * (10 * year) / employees
		stint := 90*day + tempagg.Time(rng.next()%int64(4*year-90*day))
		salary := 40_000 + rng.next()%80_000
		t, err := tempagg.NewTuple(fmt.Sprintf("e%04d", i%10000), salary, start, start+stint)
		if err != nil {
			log.Fatal(err)
		}
		tuples = append(tuples, t)
	}
	// Late data entry: displace some records by up to maxDelay positions.
	for i := 0; i+maxDelay < len(tuples); i += maxDelay + 1 {
		if rng.next()%2 == 0 {
			j := i + 1 + int(rng.next()%int64(maxDelay))
			tuples[i], tuples[j] = tuples[j], tuples[i]
		}
	}

	k := tempagg.KOrderedness(tuples)
	fmt.Printf("payroll feed: %d records, %d-ordered (bounded entry delay)\n", len(tuples), k)

	// Incremental evaluation with the k-ordered tree: memory stays tiny
	// because finished constant intervals are emitted and reclaimed as the
	// feed advances (§5.3).
	ev, err := tempagg.NewEvaluator(
		tempagg.Spec{Algorithm: tempagg.KOrderedTree, K: k}, tempagg.Avg)
	if err != nil {
		log.Fatal(err)
	}
	for _, t := range tuples {
		if err := ev.Add(t); err != nil {
			log.Fatal(err)
		}
	}
	stats := ev.Stats()
	res, err := ev.Finish()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("average salary history: %d constant intervals\n", len(res.Rows))
	fmt.Printf("peak evaluator memory: %d bytes (%d nodes; %d collected by GC)\n",
		stats.PeakBytes(), stats.PeakNodes, stats.Collected)

	// Sample the time-varying average at each year boundary.
	fmt.Println("\naverage salary at year boundaries:")
	for y := tempagg.Time(0); y < 10; y++ {
		if v, ok := res.At(y*year + year/2); ok {
			fmt.Printf("  year %2d: %s\n", y, v)
		}
	}

	// Yearly headcount report: span grouping with one bucket per year.
	rel := tempagg.RelationFromTuples("Payroll", tuples)
	window, err := tempagg.NewInterval(0, 14*year-1)
	if err != nil {
		log.Fatal(err)
	}
	spans, err := tempagg.ComputeBySpan(rel, tempagg.Count, year, window)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nemployees active per year (span grouping):")
	for i, row := range spans.Rows {
		fmt.Printf("  year %2d %-22s %s\n", i, row.Interval, spans.Value(i))
	}
}

// rng is a tiny deterministic linear congruential generator so the example
// is reproducible without seeding globals.
type rng struct{ state int64 }

func newRng(seed int64) *rng { return &rng{state: seed} }

func (r *rng) next() int64 {
	r.state = r.state*6364136223846793005 + 1442695040888963407
	v := r.state >> 17
	if v < 0 {
		v = -v
	}
	return v
}
