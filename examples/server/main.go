// Server demonstrates the network layer: build a catalog of relation
// files, serve it over TCP, and query it with the line-protocol client —
// all in one process.
//
// Run with:
//
//	go run ./examples/server
package main

import (
	"fmt"
	"log"
	"net"
	"os"
	"path/filepath"

	"tempagg"
)

func main() {
	// A catalog directory with the Employed relation and a synthetic feed.
	dir, err := os.MkdirTemp("", "tempagg-server")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	if err := tempagg.WriteRelation(filepath.Join(dir, "Employed.rel"), tempagg.Employed()); err != nil {
		log.Fatal(err)
	}
	feed, err := tempagg.Generate(tempagg.WorkloadConfig{
		Tuples: 5000, Order: tempagg.WorkloadSorted, Seed: 13,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := tempagg.WriteRelation(filepath.Join(dir, "Feed.rel"), feed); err != nil {
		log.Fatal(err)
	}

	cat, err := tempagg.OpenCatalog(dir)
	if err != nil {
		log.Fatal(err)
	}
	srv := tempagg.NewServer(cat)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := srv.Serve(lis); err != nil {
			log.Fatal(err)
		}
	}()
	defer srv.Close()
	fmt.Printf("serving %v on %s\n\n", cat.Names(), lis.Addr())

	client, err := tempagg.DialServer(lis.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	for _, sql := range []string{
		"SELECT COUNT(Name) FROM Employed",
		"SELECT AVG(Salary) FROM Feed AT 500000",
		"SELECT MAX(Salary) FROM Feed VALID OVERLAPS 0 100000",
		"SELECT COUNT(Name) FROM Nowhere", // server-side error, connection survives
	} {
		raw, err := client.QueryRaw(sql)
		if err != nil {
			log.Fatal(err)
		}
		display := string(raw)
		if len(display) > 120 {
			display = display[:120] + "…"
		}
		fmt.Printf("> %s\n%s\n\n", sql, display)
	}
}
