GO ?= go
FUZZTIME ?= 10s

.PHONY: all build vet lint test race fuzz-smoke obs-smoke

all: build lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint = go vet plus the domain-aware tempagglint analyzers (see README,
# "Static analysis & CI"). CI runs exactly these targets.
lint: vet
	$(GO) run ./cmd/tempagglint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Boot tempaggd with its admin surface, run a query, and fail if /metrics
# or /debug/pprof/heap is broken or the pipeline counters stayed at zero.
obs-smoke:
	$(GO) test ./cmd/tempaggd -run TestObsSmoke -count=1 -v

# A short fuzz pass over the query layer's corpus-seeded targets; long
# campaigns use the same targets with a bigger FUZZTIME.
fuzz-smoke:
	$(GO) test ./internal/query -run '^$$' -fuzz FuzzParse -fuzztime $(FUZZTIME)
	$(GO) test ./internal/query -run '^$$' -fuzz FuzzExecute -fuzztime $(FUZZTIME)
