// Live evaluation: one shared evaluator answering snapshot-consistent
// aggregate reads while tuples keep arriving.
//
// The batch evaluators of this package own their input: ingest, Finish,
// read, discard. LiveEvaluator instead keeps the relation resident as a
// sequence of sealed immutable segments plus one mutable tail, and hands
// out epoch snapshots — a seqno, the sealed-segment set, and a tail
// watermark — that readers evaluate against without ever blocking the
// writers. Per-segment constant-interval results are computed once by the
// columnar sweep (MIN/MAX through its value-ordered wedge) and merged with
// the decomposable partial-state machinery (aggregate.Func.Merge), so a
// snapshot read costs one small tail sweep plus one partition merge, not a
// re-evaluation of everything ever ingested.
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"tempagg/internal/aggregate"
	"tempagg/internal/interval"
	"tempagg/internal/obs"
	"tempagg/internal/tuple"
)

// DefaultLiveSegmentSize is the tail capacity at which a live evaluator
// seals the tail into an immutable segment. Sized like BatchPage's order of
// magnitude: big enough that per-segment sweep results amortize, small
// enough that a snapshot's fresh tail sweep stays microseconds.
const DefaultLiveSegmentSize = 1024

// ErrLiveClosed is returned by ingestion and snapshot calls on a closed
// LiveEvaluator. Snapshots taken before Close remain fully readable: they
// reference only immutable state.
var ErrLiveClosed = errors.New("core: live evaluator is closed")

// LiveOptions parameterizes a LiveEvaluator.
type LiveOptions struct {
	// SegmentSize is the number of tuples per sealed segment; 0 means
	// DefaultLiveSegmentSize.
	SegmentSize int
}

// LiveGauges is the epoch telemetry a LiveEvaluator publishes through the
// hook installed with SetGaugeHook: the admitted-tuple seqno, the sealed
// segment count, and the current tail fill.
type LiveGauges struct {
	Seq      int64
	Segments int
	Tail     int
}

// liveTail is the mutable ingestion buffer. Columns are allocated at full
// segment capacity up front so appends never reallocate: a reader holding
// an older watermark keeps indexing the same backing arrays, whose first n
// entries are immutable once n is published. The watermark store/load pair
// is the only synchronization between one writer and any number of readers
// — the element writes at index w happen-before the n.Store(w+1) that
// publishes them.
type liveTail struct {
	n      atomic.Int64 // published tuple count; only the writer stores
	names  []string
	vals   []int64
	starts []interval.Time
	ends   []interval.Time
}

func newLiveTail(capacity int) *liveTail {
	return &liveTail{
		names:  make([]string, capacity),
		vals:   make([]int64, capacity),
		starts: make([]interval.Time, capacity),
		ends:   make([]interval.Time, capacity),
	}
}

// liveSegment is one sealed, immutable run of ingested tuples, with its
// per-aggregate constant-interval result memoized on first read.
type liveSegment struct {
	names  []string
	vals   []int64
	starts []interval.Time
	ends   []interval.Time

	once [5]sync.Once // indexed by aggregate.Kind
	res  [5]*Result
	err  [5]error

	// The segment's partial-state interval index (index.go), built once on
	// first range read and reused across every later epoch — the segment is
	// immutable, so the index never invalidates (S37).
	idxOnce sync.Once
	idx     *IntervalIndex
	idxErr  error
}

func (g *liveSegment) len() int { return len(g.names) }

// tuples materializes the segment's rows.
func (g *liveSegment) tuples() []tuple.Tuple {
	out := make([]tuple.Tuple, len(g.names))
	for i := range g.names {
		// The columns were validated at ingest, so MustNew cannot panic.
		out[i] = tuple.MustNew(g.names[i], g.vals[i], g.starts[i], g.ends[i])
	}
	return out
}

// index builds (once) the segment's partial-state interval index, shared
// by every snapshot and aggregate kind: one tree answers range reads for
// all five aggregates, so a windowed read touches O(log n) partials per
// sealed segment instead of merging full per-segment results.
func (g *liveSegment) index() (*IntervalIndex, error) {
	g.idxOnce.Do(func() {
		g.idx, g.idxErr = NewIntervalIndex(g.tuples())
	})
	return g.idx, g.idxErr
}

// result computes (once per aggregate kind) the segment's constant-interval
// result with a batch sweep: the decomposable aggregates run the signed-
// delta event path, MIN/MAX the wedge. The memoized rows are immutable;
// callers merge them, never mutate them.
func (g *liveSegment) result(f aggregate.Func) (*Result, error) {
	k := f.Kind()
	g.once[k].Do(func() {
		ev := NewSweep(f)
		ts := g.tuples()
		for lo := 0; lo < len(ts); lo += BatchPage {
			hi := min(lo+BatchPage, len(ts))
			if err := ev.AddBatch(ts[lo:hi]); err != nil {
				g.err[k] = err
				return
			}
		}
		g.res[k], g.err[k] = ev.Finish()
	})
	return g.res[k], g.err[k]
}

// liveState is one immutable generation of the evaluator: the sealed
// segments, the current tail, and the seqno base (tuples in sealed
// segments). Sealing installs a fresh liveState; appends mutate only the
// tail's columns below its published watermark successor. A reader that
// loads the state pointer and then the tail watermark always observes a
// consistent prefix of the ingestion order — a sealed tail's watermark is
// frozen at capacity, so a stale state still denotes exactly the tuples
// admitted at that epoch.
type liveState struct {
	segs []*liveSegment
	tail *liveTail
	base int64
}

// livePrefix memoizes the merge of the first upTo sealed segments' results
// for one aggregate kind. Segments are append-only, so the memo only ever
// advances; a snapshot older than the memo falls back to a direct merge.
type livePrefix struct {
	mu   sync.Mutex
	upTo int
	res  *Result
}

// LiveEvaluator answers snapshot-consistent temporal aggregate reads while
// ingestion proceeds. Writers (Add/AddBatch) are serialized by an internal
// mutex; Snapshot and all reads through the returned LiveSnapshot are
// lock-free with respect to writers and safe from any number of
// goroutines. The evaluator is aggregate-agnostic: one ingestion stream
// serves reads for all five aggregate kinds.
//
// After Close, Add, AddBatch, and Snapshot return ErrLiveClosed and the
// evaluator must not be reused (tempagglint's finishonce analyzer enforces
// this like the batch evaluators' Finish contract). Stats stays legal at
// any point, and snapshots taken before Close remain readable.
type LiveEvaluator struct {
	noCopy noCopy

	segSize int
	mu      sync.Mutex // serializes writers, sealing, and Close
	state   atomic.Pointer[liveState]
	closed  atomic.Bool
	stats   statsCell
	prefix  [5]livePrefix // indexed by aggregate.Kind

	sink  obs.EvalSink
	hook  func(LiveGauges)
	seals atomic.Int64
}

// NewLive returns a live evaluator with the given options.
func NewLive(opts LiveOptions) *LiveEvaluator {
	if opts.SegmentSize <= 0 {
		opts.SegmentSize = DefaultLiveSegmentSize
	}
	e := &LiveEvaluator{segSize: opts.SegmentSize}
	e.state.Store(&liveState{tail: newLiveTail(opts.SegmentSize)})
	return e
}

// setSink implements sinkSetter: tuple counts publish through the standard
// evaluator event path under the "live" algorithm label.
func (e *LiveEvaluator) setSink(s obs.Sink) {
	if s == nil {
		return
	}
	e.sink = s.Evaluator("live")
}

// SetSink attaches an observability sink; see obs.Sink. Safe only before
// ingestion starts.
func (e *LiveEvaluator) SetSink(s obs.Sink) { e.setSink(s) }

// SetGaugeHook installs the epoch-telemetry callback, invoked after every
// AddBatch (and every seal) with the current seqno, segment count, and tail
// fill. The hook runs on the writer's goroutine under the ingestion lock —
// it must be cheap (the metrics gauges it feeds are atomics).
func (e *LiveEvaluator) SetGaugeHook(fn func(LiveGauges)) {
	e.mu.Lock()
	e.hook = fn
	e.mu.Unlock()
}

// Seals reports how many segments have been sealed so far.
func (e *LiveEvaluator) Seals() int64 { return e.seals.Load() }

// Add ingests one tuple.
func (e *LiveEvaluator) Add(t tuple.Tuple) error {
	return e.AddBatch([]tuple.Tuple{t})
}

// AddBatch ingests a page of tuples in order. On an invalid tuple it stops
// and returns the error; tuples before the failing one are admitted, as
// under per-tuple Add. Concurrent AddBatch calls are serialized; their
// pages interleave atomically.
func (e *LiveEvaluator) AddBatch(ts []tuple.Tuple) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed.Load() {
		return ErrLiveClosed
	}
	for _, t := range ts {
		if err := t.Validate(); err != nil {
			e.publishLocked()
			return fmt.Errorf("core: live add: %w", err)
		}
		st := e.state.Load()
		w := st.tail.n.Load()
		st.tail.names[w] = t.Name
		st.tail.vals[w] = t.Value
		st.tail.starts[w] = t.Valid.Start
		st.tail.ends[w] = t.Valid.End
		st.tail.n.Store(w + 1)
		e.stats.addTuple()
		// Cost model: one arrival and one departure event per resident
		// tuple, 16 bytes each — the sweep's columnar accounting.
		e.stats.grow(2)
		if int(w+1) == e.segSize {
			e.sealLocked(st)
		}
	}
	if e.sink != nil {
		e.sink.TuplesProcessed(len(ts))
	}
	e.publishLocked()
	return nil
}

// sealLocked freezes the full tail into an immutable segment and installs
// a fresh generation with an empty tail. Caller holds e.mu.
func (e *LiveEvaluator) sealLocked(st *liveState) {
	n := int(st.tail.n.Load())
	seg := &liveSegment{
		names:  st.tail.names[:n:n],
		vals:   st.tail.vals[:n:n],
		starts: st.tail.starts[:n:n],
		ends:   st.tail.ends[:n:n],
	}
	segs := make([]*liveSegment, len(st.segs)+1)
	copy(segs, st.segs)
	segs[len(st.segs)] = seg
	e.state.Store(&liveState{
		segs: segs,
		tail: newLiveTail(e.segSize),
		base: st.base + int64(n),
	})
	e.seals.Add(1)
}

// publishLocked pushes the current epoch telemetry through the gauge hook.
// Caller holds e.mu.
func (e *LiveEvaluator) publishLocked() {
	if e.hook == nil {
		return
	}
	st := e.state.Load()
	w := st.tail.n.Load()
	e.hook(LiveGauges{Seq: st.base + w, Segments: len(st.segs), Tail: int(w)})
}

// Snapshot captures the current epoch — seqno, sealed-segment set, and
// tail watermark — without blocking ingestion: two atomic loads, no locks.
// Reads through the returned snapshot observe exactly the tuples admitted
// at that epoch, bit-identical to a batch evaluation over that prefix,
// regardless of how far ingestion advances afterwards.
func (e *LiveEvaluator) Snapshot() (*LiveSnapshot, error) {
	if e.closed.Load() {
		return nil, ErrLiveClosed
	}
	st := e.state.Load()
	w := st.tail.n.Load()
	return &LiveSnapshot{ev: e, state: st, tailLen: w, seq: st.base + w}, nil
}

// Stats reports ingestion counters; safe to call from any goroutine at any
// time, Close included (the counters are atomics, like every evaluator's).
func (e *LiveEvaluator) Stats() Stats { return e.stats.snapshot() }

// Close stops ingestion: subsequent Add, AddBatch, and Snapshot calls
// return ErrLiveClosed. Resident-node accounting moves to collected.
// Snapshots taken before Close stay valid — they hold only immutable
// state. Close is idempotent.
func (e *LiveEvaluator) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed.Swap(true) {
		return nil
	}
	if live := e.stats.snapshot().LiveNodes; live > 0 {
		e.stats.reclaim(live)
	}
	return nil
}

// prefixResult returns the merged constant-interval result of the given
// sealed segments for f, advancing the per-kind memo when the request is
// at (or ahead of) the memo's frontier. A snapshot older than the frontier
// merges its segments' memoized results directly — correctness never
// depends on the cache.
func (e *LiveEvaluator) prefixResult(f aggregate.Func, segs []*liveSegment) (*Result, error) {
	p := &e.prefix[f.Kind()]
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.upTo <= len(segs) {
		fresh, err := segResults(f, segs[p.upTo:])
		if err != nil {
			return nil, err
		}
		if len(fresh) > 0 {
			adv := mergeAll(f, fresh)
			if p.res == nil {
				p.res = adv
			} else {
				p.res = mergeResults(f, p.res, adv)
			}
			p.upTo = len(segs)
		}
		if p.res == nil {
			return emptyResult(f), nil
		}
		return p.res, nil
	}
	rs, err := segResults(f, segs)
	if err != nil {
		return nil, err
	}
	return mergeAll(f, rs), nil
}

// segResults collects the (memoized) per-segment results for f.
func segResults(f aggregate.Func, segs []*liveSegment) ([]*Result, error) {
	rs := make([]*Result, len(segs))
	for i, g := range segs {
		sr, err := g.result(f)
		if err != nil {
			return nil, err
		}
		rs[i] = sr
	}
	return rs, nil
}
