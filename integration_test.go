package tempagg_test

import (
	"path/filepath"
	"testing"

	"tempagg"
)

// TestIntegrationEndToEnd drives the whole system at moderate scale:
// generate a Table 3 workload, persist it, inspect it, evaluate it with
// every strategy (streamed from disk and in memory), and cross-check the
// results — the complete adoption path a downstream user would take.
func TestIntegrationEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	const n = 10_000
	dir := t.TempDir()

	// 1. Generate a retroactively bounded feed and persist it.
	rel, err := tempagg.Generate(tempagg.WorkloadConfig{
		Tuples:       n,
		LongLivedPct: 20,
		EventPct:     10,
		Order:        tempagg.WorkloadKOrdered,
		K:            40,
		KPct:         0.08,
		Seed:         99,
	})
	if err != nil {
		t.Fatal(err)
	}
	rel.Name = "Feed"
	path := filepath.Join(dir, "Feed.rel")
	if err := tempagg.WriteRelation(path, rel); err != nil {
		t.Fatal(err)
	}

	// 2. Metadata checks: the declared disorder holds.
	k := tempagg.KOrderedness(rel.Tuples)
	if k == 0 || k > 40 {
		t.Fatalf("k-orderedness = %d, want in (0, 40]", k)
	}
	pct, err := tempagg.KOrderedPercentage(rel.Tuples, 40)
	if err != nil {
		t.Fatal(err)
	}
	if pct < 0.07 || pct > 0.09 {
		t.Fatalf("k-ordered-percentage = %.4f", pct)
	}

	// 3. Evaluate with every strategy; all must agree.
	results := map[string]*tempagg.Result{}
	for name, spec := range map[string]tempagg.Spec{
		"list":  {Algorithm: tempagg.LinkedList},
		"tree":  {Algorithm: tempagg.AggregationTree},
		"btree": {Algorithm: tempagg.BalancedTree},
		"ktree": {Algorithm: tempagg.KOrderedTree, K: 40},
	} {
		res, _, err := tempagg.ComputeByInstant(rel, tempagg.Sum, spec)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := res.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		results[name] = res
	}
	tuma, err := tempagg.ComputeTuma(tempagg.NewSliceSource(rel.Tuples), tempagg.Sum)
	if err != nil {
		t.Fatal(err)
	}
	results["tuma"] = tuma
	window, err := tempagg.NewInterval(0, 1_099_999)
	if err != nil {
		t.Fatal(err)
	}
	part, _, err := tempagg.ComputePartitioned(rel, tempagg.Sum, tempagg.PartitionOptions{
		Boundaries: tempagg.UniformBoundaries(window, 8),
		SpillDir:   dir,
		Parallel:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	results["partitioned"] = part
	base := results["list"]
	for name, res := range results {
		if !base.Equal(res) {
			t.Fatalf("%s disagrees with the linked list", name)
		}
	}

	// 4. The ktree must have garbage-collected and stayed small.
	_, stats, err := tempagg.ComputeByInstant(rel, tempagg.Count,
		tempagg.Spec{Algorithm: tempagg.KOrderedTree, K: 40})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Collected == 0 {
		t.Fatal("no gc on k-ordered input")
	}
	_, treeStats, err := tempagg.ComputeByInstant(rel, tempagg.Count,
		tempagg.Spec{Algorithm: tempagg.AggregationTree})
	if err != nil {
		t.Fatal(err)
	}
	if stats.PeakNodes*4 > treeStats.PeakNodes {
		t.Fatalf("ktree peak %d not ≪ tree peak %d", stats.PeakNodes, treeStats.PeakNodes)
	}

	// 5. Queries streamed from the file match in-memory execution.
	for _, sql := range []string{
		"SELECT COUNT(Name) FROM Feed",
		"SELECT AVG(Salary), MAX(Salary) FROM Feed WHERE Salary > 60000",
		"SELECT SUM(Salary) FROM Feed VALID OVERLAPS 250000 750000",
	} {
		mem, err := tempagg.Query(sql, rel, nil)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		for gi := range mem.Groups {
			for ri := range mem.Groups[gi].Results {
				if err := validateAnyPartition(mem.Groups[gi].Results[ri]); err != nil {
					t.Fatalf("%s: %v", sql, err)
				}
			}
		}
	}

	// 6. Coalescing the relation then re-aggregating COUNT(DISTINCT) over
	// the coalesced view still yields a valid history.
	coalesced := tempagg.RelationFromTuples("Feed", tempagg.CoalesceTuples(rel.Tuples))
	qres, err := tempagg.Query("SELECT COUNT(Name) FROM Feed", coalesced, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := qres.Groups[0].Result.Validate(); err != nil {
		t.Fatal(err)
	}
}

func validateAnyPartition(res *tempagg.Result) error {
	lo := res.Rows[0].Interval.Start
	hi := res.Rows[len(res.Rows)-1].Interval.End
	return res.ValidatePartition(lo, hi)
}
