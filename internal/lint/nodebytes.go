package lint

import (
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

// NodeBytes flags the integer literal 16 used in memory-accounting
// arithmetic instead of core.NodeBytes. The paper's space model (§6.2)
// charges 16 bytes per structure node, and every byte figure the system
// reports — PeakBytes, the optimizer's cost model, the benchmark tables —
// must agree on that constant. A hardcoded 16 next to a node count is a
// copy of the constant that silently diverges the day the node layout
// changes; internal/core/evaluator.go, where NodeBytes is defined, is the
// only place the raw number may appear.
var NodeBytes = &Analyzer{
	Name: "nodebytes",
	Doc: "flag integer literal 16 in memory-accounting arithmetic " +
		"(node/peak/live/bytes context); use core.NodeBytes",
	Run: runNodeBytes,
}

// memoryWord matches identifiers that indicate memory accounting.
var memoryWord = regexp.MustCompile(`(?i)(node|peak|live|mem|byte|space|budget|alloc)`)

func runNodeBytes(pass *Pass) error {
	for _, f := range pass.Files {
		filename := filepath.Base(pass.Fset.Position(f.Pos()).Filename)
		if pass.Pkg.Path() == corePkgPath && filename == "evaluator.go" {
			continue // the NodeBytes declaration itself
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.MUL && n.Op != token.QUO {
					return true
				}
				if lit := literal16(n.X); lit != nil && mentionsMemory(n.Y) {
					report16(pass, lit)
				} else if lit := literal16(n.Y); lit != nil && mentionsMemory(n.X) {
					report16(pass, lit)
				}
			case *ast.ValueSpec:
				for i, name := range n.Names {
					if i >= len(n.Values) {
						break
					}
					if lit := literal16(n.Values[i]); lit != nil && memoryWord.MatchString(name.Name) {
						report16(pass, lit)
					}
				}
			case *ast.AssignStmt:
				if n.Tok != token.DEFINE || len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i, lhs := range n.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || !memoryWord.MatchString(id.Name) {
						continue
					}
					if lit := literal16(n.Rhs[i]); lit != nil {
						report16(pass, lit)
					}
				}
			}
			return true
		})
	}
	return nil
}

func report16(pass *Pass, lit *ast.BasicLit) {
	pass.Reportf(lit.Pos(), "hardcoded 16 in memory accounting; "+
		"use core.NodeBytes (the §6.2 per-node cost) so the space model has one owner")
}

// literal16 unwraps parens and conversions down to an integer literal 16.
func literal16(e ast.Expr) *ast.BasicLit {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
			continue
		case *ast.CallExpr:
			// A conversion like int64(16); a real call has a non-type Fun
			// and is rejected by the literal check below anyway.
			if len(x.Args) == 1 {
				e = x.Args[0]
				continue
			}
		}
		break
	}
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.INT {
		return nil
	}
	if v, err := strconv.ParseInt(strings.ReplaceAll(lit.Value, "_", ""), 0, 64); err != nil || v != 16 {
		return nil
	}
	return lit
}

// mentionsMemory reports whether any identifier in e smells like memory
// accounting (node counts, peak/live figures, byte totals).
func mentionsMemory(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && memoryWord.MatchString(id.Name) {
			found = true
			return false
		}
		return true
	})
	return found
}
