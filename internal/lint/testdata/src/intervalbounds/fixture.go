// Fixture for the intervalbounds analyzer: raw interval/tuple literals
// with fields set are flagged; zero literals and the validating
// constructors are clean.
package fixture

import (
	"tempagg/internal/interval"
	"tempagg/internal/tuple"
)

func rawIntervals(start, end interval.Time) []interval.Interval {
	bad := interval.Interval{Start: 5, End: 2}            // want `raw interval\.Interval literal bypasses validation`
	alsoBad := &interval.Interval{Start: start, End: end} // want `raw interval\.Interval literal bypasses validation`
	partial := interval.Interval{Start: 9}                // want `raw interval\.Interval literal bypasses validation`
	positional := interval.Interval{3, 1}                 // want `raw interval\.Interval literal bypasses validation`
	return []interval.Interval{bad, *alsoBad, partial, positional}
}

func validatedIntervals() ([]interval.Interval, error) {
	var zero interval.Interval   // ok: zero value, the [0,0] instant
	empty := interval.Interval{} // ok: the conventional "no result" sentinel
	good, err := interval.New(2, 5)
	if err != nil {
		return nil, err
	}
	must := interval.MustNew(2, 5)
	at := interval.At(7)
	all := interval.Universe()
	return []interval.Interval{zero, empty, good, must, at, all}, nil
}

func rawTuples() []tuple.Tuple {
	bad := tuple.Tuple{Name: "ada", Value: 1} // want `raw tuple\.Tuple literal bypasses validation`
	return []tuple.Tuple{bad}
}

func validatedTuples() ([]tuple.Tuple, error) {
	var zero tuple.Tuple // ok: zero value
	good, err := tuple.New("ada", 1, 0, 10)
	if err != nil {
		return nil, err
	}
	must := tuple.MustNew("bob", 2, 3, 9)
	return []tuple.Tuple{zero, good, must}, nil
}
