GO ?= go
FUZZTIME ?= 10s

.PHONY: all build vet lint lint-json lint-baseline test race fuzz-smoke obs-smoke bench-smoke bench-smoke-mp

all: build lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint = go vet plus the domain-aware tempagglint analyzers gated against
# the checked-in findings budget (see README, "Static analysis & CI"):
# only findings not in lint_baseline.json, growth in the
# //tempagglint:ignore count, reasonless ignores, or stale ignores fail.
# CI runs exactly these targets.
lint: vet
	$(GO) run ./cmd/tempagglint -baseline lint_baseline.json ./...

# Machine-readable diagnostics for the CI artifact. The baseline gate is
# `make lint`; this run only records what the suite currently sees.
lint-json:
	$(GO) run ./cmd/tempagglint -json ./... > lint-findings.json || true
	@head -c 400 lint-findings.json; echo

# Regenerate the findings budget after deliberately accepting a finding
# or changing the suppression count. Review the diff before committing.
lint-baseline:
	$(GO) run ./cmd/tempagglint -write-baseline lint_baseline.json ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Boot tempaggd with its admin surface, run a plain query plus an EXPLAIN
# ANALYZE, and fail if /metrics, /debug/traces, /debug/queries, or
# /debug/pprof/heap is broken, the pipeline counters stayed at zero, or the
# JSON debug payloads lost their schema. OBS_SMOKE_ARTIFACT (set in CI)
# names a file to receive the /debug/traces body for artifact upload.
obs-smoke:
	$(GO) test ./cmd/tempaggd -run TestObsSmoke -count=1 -v

# A short fuzz pass over the corpus-seeded targets (query layer plus the
# core GC/arena/live-snapshot invariants); long campaigns use the same
# targets with a bigger FUZZTIME.
fuzz-smoke:
	$(GO) test ./internal/query -run '^$$' -fuzz FuzzParse -fuzztime $(FUZZTIME)
	$(GO) test ./internal/query -run '^$$' -fuzz FuzzExecute -fuzztime $(FUZZTIME)
	$(GO) test ./internal/core -run '^$$' -fuzz FuzzKTreeGCThreshold -fuzztime $(FUZZTIME)
	$(GO) test ./internal/core -run '^$$' -fuzz FuzzArenaReuse -fuzztime $(FUZZTIME)
	$(GO) test ./internal/core -run '^$$' -fuzz FuzzSweepVsReference -fuzztime $(FUZZTIME)
	$(GO) test ./internal/core -run '^$$' -fuzz FuzzParallelSweepVsSerial -fuzztime $(FUZZTIME)
	$(GO) test ./internal/core -run '^$$' -fuzz FuzzLiveSnapshotVsReference -fuzztime $(FUZZTIME)
	$(GO) test ./internal/core -run '^$$' -fuzz FuzzIndexVsReference -fuzztime $(FUZZTIME)
	$(GO) test ./internal/core -run '^$$' -fuzz FuzzPartialStateRoundTrip -fuzztime $(FUZZTIME)

# A fast machine-readable run of the hot-path experiments, gated against
# the checked-in BENCH_PR9.json: the target fails when any series' median
# slowdown over the shared points exceeds 50%. Series with no counterpart
# in the baseline (range-query) are reported but not gated. Five seeds, not
# three: the smoke points are sub-millisecond and the per-point median
# needs the extra repetitions to sit inside the gate's tolerance; on a
# single-core runner those points still jitter by ~40% run to run, so the
# tolerance sits above that noise floor and below any real algorithmic
# regression (the cheapest of which double a series). The JSON
# report is uploaded as a CI artifact for before/after comparison.
bench-smoke:
	$(GO) run ./cmd/benchharness -exp baseline,sweep,sweep-parallel,live-read,range-query -max-size 4096 -seeds 5 -json -tolerance 0.5 -baseline BENCH_PR9.json > bench-smoke.json
	@head -c 400 bench-smoke.json; echo

# The same run at GOMAXPROCS=4, so the chunked scan and parallel radix
# paths run with real worker counts. On a single-core runner GOMAXPROCS=4
# still exercises the concurrency (goroutines interleave) even though
# wall-clock gains need real cores — oversubscription makes the parallel
# paths legitimately slower there, so this gate compares against its own
# GOMAXPROCS=4 baseline (BENCH_PR9_MP.json) rather than the GOMAXPROCS=1
# one, and only catches catastrophic (>2x) regressions.
bench-smoke-mp:
	GOMAXPROCS=4 $(GO) run ./cmd/benchharness -exp baseline,sweep,sweep-parallel,live-read,range-query -max-size 4096 -seeds 5 -json -tolerance 1.0 -baseline BENCH_PR9_MP.json > bench-smoke-mp.json
	@head -c 400 bench-smoke-mp.json; echo
