package core

import (
	"fmt"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"

	"tempagg/internal/aggregate"
	"tempagg/internal/interval"
	"tempagg/internal/obs"
	"tempagg/internal/tuple"
)

// parallelSortKeys builds an adversarial key mix for the sort tests: dense
// small timestamps (duplicates, constant high digits that trigger pass
// skipping) interleaved with full-range values that light up all eight
// digits.
func parallelSortKeys(r *rand.Rand, n int) []int64 {
	keys := make([]int64, n)
	for i := range keys {
		switch r.Intn(4) {
		case 0:
			keys[i] = r.Int63() // full 63-bit range
		case 1:
			keys[i] = int64(r.Intn(10)) // heavy duplication
		default:
			keys[i] = r.Int63n(1 << 20) // timestamp-like
		}
	}
	return keys
}

// TestParallelRadixBitIdentical: the parallel sort must produce exactly the
// serial sort's output — keys, payload permutation, and reported pass count
// — across worker counts and input shapes.
func TestParallelRadixBitIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for _, n := range []int{parallelSortMinSize, 3*parallelSortMinSize + 17} {
		keys := parallelSortKeys(r, n)
		payload := make([]int64, n)
		for i := range payload {
			payload[i] = int64(i) // payload = original index: the permutation itself
		}
		wantK := append([]int64(nil), keys...)
		wantP := append([]int64(nil), payload...)
		var ar colArena
		wantPasses := radixSortInt64(&ar, wantK, wantP)
		for _, workers := range []int{2, 3, 8} {
			gotK := append([]int64(nil), keys...)
			gotP := append([]int64(nil), payload...)
			passes := radixSortInt64Parallel(&ar, workers, gotK, gotP)
			if passes != wantPasses {
				t.Fatalf("n=%d workers=%d: %d passes, serial did %d", n, workers, passes, wantPasses)
			}
			if !reflect.DeepEqual(gotK, wantK) {
				t.Fatalf("n=%d workers=%d: keys differ from serial sort", n, workers)
			}
			if !reflect.DeepEqual(gotP, wantP) {
				t.Fatalf("n=%d workers=%d: payload permutation differs from serial sort (stability broken)", n, workers)
			}
		}
	}
}

// TestParallelRadixSmallInputFallsBack: below the cutoff the parallel entry
// point must defer to the serial sort (still correct, zero extra scratch).
func TestParallelRadixSmallInputFallsBack(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	keys := parallelSortKeys(r, 1000)
	want := append([]int64(nil), keys...)
	var ar colArena
	radixSortInt64(&ar, want)
	radixSortInt64Parallel(&ar, 8, keys)
	if !reflect.DeepEqual(keys, want) {
		t.Fatal("small-input fallback produced a different order")
	}
}

// runSweepParallel evaluates ts through a sweep with the given worker count.
func runSweepParallel(t *testing.T, f aggregate.Func, ts []tuple.Tuple, parallel int) *Result {
	t.Helper()
	ev := NewSweepOptions(f, SweepOptions{Parallel: parallel})
	for lo := 0; lo < len(ts); lo += BatchPage {
		hi := min(lo+BatchPage, len(ts))
		if err := ev.AddBatch(ts[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}
	res, err := ev.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestParallelSweepRowIdentical: for the decomposable aggregates the chunked
// scan must emit the serial scan's rows bit for bit — same boundaries, same
// states, same row count — not merely a value-equivalent coalescing.
func TestParallelSweepRowIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	for _, kind := range []aggregate.Kind{aggregate.Count, aggregate.Sum, aggregate.Avg} {
		f := aggregate.For(kind)
		for _, n := range []int{1, 37, 800, 5000} {
			ts := randomTuples(r, n, 6000)
			want := runSweepParallel(t, f, ts, 1)
			for _, workers := range []int{2, 4, 8} {
				got := runSweepParallel(t, f, ts, workers)
				if err := got.Validate(); err != nil {
					t.Fatalf("%v n=%d workers=%d: %v", kind, n, workers, err)
				}
				if !reflect.DeepEqual(got.Rows, want.Rows) {
					t.Fatalf("%v n=%d workers=%d: chunked rows differ from serial rows", kind, n, workers)
				}
			}
		}
	}
}

// TestParallelWedgeMatchesSerial: the MIN/MAX span-partitioned path is
// value-equivalent to the serial wedge (region edges may split rows, so
// equality is after coalescing), in both wedge and forced-fallback regimes.
func TestParallelWedgeMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(44))
	for _, kind := range []aggregate.Kind{aggregate.Min, aggregate.Max} {
		f := aggregate.For(kind)
		for _, bound := range []int{0, 1} {
			ts := randomTuples(r, 600, 5000)
			want := Reference(f, ts)
			for _, workers := range []int{2, 4, 8} {
				ev := NewSweepOptions(f, SweepOptions{Parallel: workers})
				ev.WedgeBound = bound
				for _, tu := range ts {
					if err := ev.Add(tu); err != nil {
						t.Fatal(err)
					}
				}
				got, err := ev.Finish()
				if err != nil {
					t.Fatal(err)
				}
				if err := got.Validate(); err != nil {
					t.Fatalf("%v bound=%d workers=%d: %v", kind, bound, workers, err)
				}
				if !got.Equal(want) {
					t.Fatalf("%v bound=%d workers=%d: parallel wedge differs from oracle", kind, bound, workers)
				}
			}
		}
	}
}

// TestSweepGroupMatchesDedicatedSweeps: every query registered on a group
// must get exactly the rows a dedicated serial sweep over its filtered
// tuples would produce — row-identical, so shared evaluation is invisible
// to consumers.
func TestSweepGroupMatchesDedicatedSweeps(t *testing.T) {
	r := rand.New(rand.NewSource(45))
	queries := []GroupQuery{
		{Func: aggregate.For(aggregate.Count)},
		{Func: aggregate.For(aggregate.Sum)},
		{Func: aggregate.For(aggregate.Avg),
			Filter: func(tu tuple.Tuple) bool { return tu.Value%2 == 0 }},
		{Func: aggregate.For(aggregate.Sum),
			Filter: func(tu tuple.Tuple) bool { return tu.Value%3 == 0 }},
		{Func: aggregate.For(aggregate.Count),
			Filter: func(tu tuple.Tuple) bool { return false }}, // matches nothing
	}
	for _, n := range []int{0, 1, 40, 1200} {
		ts := randomTuples(r, n, 4000)
		for _, workers := range []int{1, 2, 8} {
			g := NewSweepGroup(SweepOptions{Parallel: workers})
			for _, q := range queries {
				if _, err := g.Register(q); err != nil {
					t.Fatal(err)
				}
			}
			for lo := 0; lo < len(ts); lo += BatchPage {
				hi := min(lo+BatchPage, len(ts))
				if err := g.AddBatch(ts[lo:hi]); err != nil {
					t.Fatal(err)
				}
			}
			results, err := g.Finish()
			if err != nil {
				t.Fatal(err)
			}
			if len(results) != len(queries) {
				t.Fatalf("n=%d workers=%d: %d results for %d queries", n, workers, len(results), len(queries))
			}
			for qi, q := range queries {
				var filtered []tuple.Tuple
				for _, tu := range ts {
					if q.Filter == nil || q.Filter(tu) {
						filtered = append(filtered, tu)
					}
				}
				want := runSweepParallel(t, q.Func, filtered, 1)
				if err := results[qi].Validate(); err != nil {
					t.Fatalf("n=%d workers=%d query %d: %v", n, workers, qi, err)
				}
				if !reflect.DeepEqual(results[qi].Rows, want.Rows) {
					t.Fatalf("n=%d workers=%d query %d: shared-pass rows differ from dedicated sweep", n, workers, qi)
				}
				if !results[qi].Equal(Reference(q.Func, filtered)) {
					t.Fatalf("n=%d workers=%d query %d: shared-pass result differs from oracle", n, workers, qi)
				}
			}
			if stats := g.Stats(); stats.Tuples != n {
				t.Fatalf("n=%d workers=%d: stats.Tuples = %d", n, workers, stats.Tuples)
			}
		}
	}
}

// TestSweepGroupContract pins the registration rules: decomposable only,
// capacity MaxGroupQueries, no registration after ingestion, and Finish
// without queries is an error.
func TestSweepGroupContract(t *testing.T) {
	g := NewSweepGroup(SweepOptions{})
	if _, err := g.Register(GroupQuery{Func: aggregate.For(aggregate.Min)}); err == nil {
		t.Fatal("MIN registration must be rejected")
	}
	if _, err := g.Finish(); err == nil {
		t.Fatal("Finish with no queries must be an error")
	}

	g = NewSweepGroup(SweepOptions{})
	for i := 0; i < MaxGroupQueries; i++ {
		if _, err := g.Register(GroupQuery{Func: aggregate.For(aggregate.Count)}); err != nil {
			t.Fatalf("registration %d: %v", i, err)
		}
	}
	if _, err := g.Register(GroupQuery{Func: aggregate.For(aggregate.Count)}); err == nil {
		t.Fatalf("registration past %d must be rejected", MaxGroupQueries)
	}

	g = NewSweepGroup(SweepOptions{})
	if _, err := g.Register(GroupQuery{Func: aggregate.For(aggregate.Count)}); err != nil {
		t.Fatal(err)
	}
	if err := g.Add(tuple.MustNew("a", 1, 0, 10)); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Register(GroupQuery{Func: aggregate.For(aggregate.Sum)}); err == nil {
		t.Fatal("Register after Add must be rejected")
	}
}

// TestParallelSweepConcurrentScrape is the -race regression for the chunked
// scan: sweep and group workers fold chunks concurrently while a scrape
// goroutine renders the registry, mirroring TestStreamingMergeConcurrentScrape
// for the parallel sweep surfaces.
func TestParallelSweepConcurrentScrape(t *testing.T) {
	ts := raceTuples(4000)
	m := obs.NewMetrics(obs.NewRegistry())

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := m.Registry().WritePrometheus(io.Discard); err != nil {
				t.Errorf("scrape: %v", err)
				return
			}
		}
	}()

	for round := 0; round < 3; round++ {
		ev, err := NewObserved(Spec{Algorithm: SweepEval, Parallel: 4}, aggregate.For(aggregate.Sum), m)
		if err != nil {
			t.Fatal(err)
		}
		for lo := 0; lo < len(ts); lo += BatchPage {
			hi := min(lo+BatchPage, len(ts))
			if err := ev.AddBatch(ts[lo:hi]); err != nil {
				t.Fatal(err)
			}
		}
		res, err := ev.Finish()
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Validate(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}

		g := NewSweepGroupRange(interval.Universe(), SweepOptions{Parallel: 4})
		g.SetSink(m)
		for _, kind := range []aggregate.Kind{aggregate.Count, aggregate.Sum, aggregate.Avg} {
			if _, err := g.Register(GroupQuery{Func: aggregate.For(kind)}); err != nil {
				t.Fatal(err)
			}
		}
		for lo := 0; lo < len(ts); lo += BatchPage {
			hi := min(lo+BatchPage, len(ts))
			if err := g.AddBatch(ts[lo:hi]); err != nil {
				t.Fatal(err)
			}
		}
		results, err := g.Finish()
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range results {
			if err := r.Validate(); err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
		}
	}
	close(stop)
	wg.Wait()

	var b strings.Builder
	if err := m.Registry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, metric := range []string{obs.MetricSweepWorkers, obs.MetricSweepChunks, obs.MetricSweepShared} {
		if !strings.Contains(out, metric) {
			t.Errorf("exposition missing %s after parallel runs", metric)
		}
	}
}

// TestParallelSweepMetricsExact pins the new counters' exact values on a
// deterministic input: distinct arrival timestamps make every quantile cut
// unique, so Parallel=2 yields exactly 2 chunks, and a 3-query group adds 3
// to the shared-queries counter. The nil-Sink path (no sink attached) must
// stay silent, preserving the disabled-instrumentation contract.
func TestParallelSweepMetricsExact(t *testing.T) {
	ts := raceTuples(4200) // distinct starts 0..4199
	m := obs.NewMetrics(obs.NewRegistry())

	ev, err := NewObserved(Spec{Algorithm: SweepEval, Parallel: 2}, aggregate.For(aggregate.Count), m)
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.AddBatch(ts); err != nil {
		t.Fatal(err)
	}
	if _, err := ev.Finish(); err != nil {
		t.Fatal(err)
	}

	g := NewSweepGroup(SweepOptions{Parallel: 2})
	g.SetSink(m)
	for _, kind := range []aggregate.Kind{aggregate.Count, aggregate.Sum, aggregate.Avg} {
		if _, err := g.Register(GroupQuery{Func: aggregate.For(kind)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddBatch(ts); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Finish(); err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	if err := m.Registry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for series, want := range map[string]string{
		// Worker counts are a histogram (a gauge would be last-write-wins
		// across concurrent queries): one 2-worker observation per run.
		obs.MetricSweepWorkers + `_bucket{algorithm="sweep",le="2"}`:       "1",
		obs.MetricSweepWorkers + `_sum{algorithm="sweep"}`:                 "2",
		obs.MetricSweepWorkers + `_count{algorithm="sweep"}`:               "1",
		obs.MetricSweepWorkers + `_bucket{algorithm="sweep-group",le="2"}`: "1",
		obs.MetricSweepWorkers + `_sum{algorithm="sweep-group"}`:           "2",
		obs.MetricSweepWorkers + `_count{algorithm="sweep-group"}`:         "1",
		obs.MetricSweepChunks + `{algorithm="sweep"}`:                      "2",
		obs.MetricSweepChunks + `{algorithm="sweep-group"}`:                "2",
		obs.MetricSweepShared + `{algorithm="sweep-group"}`:                "3",
		obs.MetricSweepEvents + `{algorithm="sweep-group"}`:                "8400",
		obs.MetricTuplesProcessed + `{algorithm="sweep-group"}`:            "4200",
		obs.MetricSweepFallbacks + `{algorithm="sweep"}`:                   "0",
	} {
		line := series + " " + want
		if !strings.Contains(out, line) {
			t.Errorf("exposition missing %q", line)
		}
	}

	// nil Sink: the same runs with no sink must not panic and must not
	// publish anywhere (there is no registry to check — absence of a panic
	// is the contract).
	ev2 := NewSweepOptions(aggregate.For(aggregate.Count), SweepOptions{Parallel: 2})
	if err := ev2.AddBatch(ts); err != nil {
		t.Fatal(err)
	}
	if _, err := ev2.Finish(); err != nil {
		t.Fatal(err)
	}
}

// TestSweepOptionsWorkerResolution pins the cutoff contract: a defaulted
// Parallel stays serial below parallelSweepMinEvents, while explicit values
// are honored as given.
func TestSweepOptionsWorkerResolution(t *testing.T) {
	for _, tc := range []struct {
		parallel, events, want int
	}{
		{1, 1 << 20, 1},
		{6, 8, 6},
		{0, parallelSweepMinEvents - 1, 1},
	} {
		if got := (SweepOptions{Parallel: tc.parallel}).workers(tc.events); got != tc.want {
			t.Errorf("Parallel=%d events=%d: workers=%d, want %d", tc.parallel, tc.events, got, tc.want)
		}
	}
	if got := (SweepOptions{}).workers(parallelSweepMinEvents); got < 1 {
		t.Errorf("defaulted workers above cutoff must be >= 1, got %d", got)
	}
}

// BenchmarkSweepParallelScan measures the chunked scan against the serial
// one on a shared pre-sorted workload (sorting excluded by using sorted
// ingestion), the microbenchmark behind the BENCH_PR7 series.
func BenchmarkSweepParallelScan(b *testing.B) {
	r := rand.New(rand.NewSource(46))
	ts := randomTuples(r, 200000, 1_000_000)
	f := aggregate.For(aggregate.Count)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ev := NewSweepOptions(f, SweepOptions{Parallel: workers})
				for lo := 0; lo < len(ts); lo += BatchPage {
					hi := min(lo+BatchPage, len(ts))
					if err := ev.AddBatch(ts[lo:hi]); err != nil {
						b.Fatal(err)
					}
				}
				if _, err := ev.Finish(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
