package interval

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValid(t *testing.T) {
	iv, err := New(3, 9)
	if err != nil {
		t.Fatalf("New(3,9): %v", err)
	}
	if iv.Start != 3 || iv.End != 9 {
		t.Fatalf("New(3,9) = %v", iv)
	}
}

func TestNewInvalid(t *testing.T) {
	cases := []struct {
		name       string
		start, end Time
	}{
		{"reversed", 9, 3},
		{"negative start", -1, 5},
		{"forever start after end", Forever, 10},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New(tc.start, tc.end); err == nil {
				t.Fatalf("New(%d,%d): expected error", tc.start, tc.end)
			}
		})
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew(5, 1) did not panic")
		}
	}()
	MustNew(5, 1)
}

func TestUniverse(t *testing.T) {
	u := Universe()
	if u.Start != Origin || u.End != Forever {
		t.Fatalf("Universe() = %v", u)
	}
	if !u.Contains(0) || !u.Contains(Forever) || !u.Contains(123456) {
		t.Fatal("Universe must contain every instant")
	}
}

func TestAt(t *testing.T) {
	iv := At(7)
	if iv.Start != 7 || iv.End != 7 {
		t.Fatalf("At(7) = %v", iv)
	}
	if iv.Duration() != 1 {
		t.Fatalf("At(7).Duration() = %d, want 1", iv.Duration())
	}
}

func TestDuration(t *testing.T) {
	if d := MustNew(5, 9).Duration(); d != 5 {
		t.Fatalf("[5,9].Duration() = %d, want 5", d)
	}
	if d := MustNew(0, Forever).Duration(); d != Forever {
		t.Fatalf("[0,∞].Duration() = %d, want Forever", d)
	}
}

func TestContains(t *testing.T) {
	iv := MustNew(10, 20)
	for _, tc := range []struct {
		t    Time
		want bool
	}{
		{9, false}, {10, true}, {15, true}, {20, true}, {21, false},
	} {
		if got := iv.Contains(tc.t); got != tc.want {
			t.Errorf("[10,20].Contains(%d) = %t, want %t", tc.t, got, tc.want)
		}
	}
}

func TestOverlapsClosedSemantics(t *testing.T) {
	// Closed intervals share an instant when one's end equals the other's
	// start — the paper's tuples are closed intervals (§5).
	a := MustNew(0, 10)
	b := MustNew(10, 20)
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Fatal("[0,10] and [10,20] must overlap (closed intervals)")
	}
	c := MustNew(11, 20)
	if a.Overlaps(c) || c.Overlaps(a) {
		t.Fatal("[0,10] and [11,20] must not overlap")
	}
}

func TestCovers(t *testing.T) {
	outer := MustNew(5, 50)
	if !outer.Covers(MustNew(5, 50)) {
		t.Error("interval must cover itself")
	}
	if !outer.Covers(MustNew(10, 20)) {
		t.Error("[5,50] must cover [10,20]")
	}
	if outer.Covers(MustNew(4, 20)) || outer.Covers(MustNew(10, 51)) {
		t.Error("[5,50] must not cover intervals extending past it")
	}
}

func TestIntersect(t *testing.T) {
	got, ok := MustNew(0, 17).Intersect(MustNew(8, 20))
	if !ok || got != MustNew(8, 17) {
		t.Fatalf("[0,17] ∩ [8,20] = %v, %t; want [8,17], true", got, ok)
	}
	if _, ok := MustNew(0, 5).Intersect(MustNew(6, 9)); ok {
		t.Fatal("[0,5] ∩ [6,9] should be empty")
	}
}

func TestMeets(t *testing.T) {
	if !MustNew(0, 7).Meets(MustNew(8, 12)) {
		t.Error("[0,7] meets [8,12]")
	}
	if MustNew(0, 7).Meets(MustNew(9, 12)) {
		t.Error("[0,7] does not meet [9,12]")
	}
	if MustNew(0, Forever).Meets(MustNew(0, 1)) {
		t.Error("an interval ending at Forever meets nothing")
	}
}

func TestBefore(t *testing.T) {
	iv := MustNew(3, 9)
	if !iv.Before(10) {
		t.Error("[3,9] is before 10")
	}
	if iv.Before(9) {
		t.Error("[3,9] is not before 9 (closed end)")
	}
}

func TestCompareOrdering(t *testing.T) {
	cases := []struct {
		a, b Interval
		want int
	}{
		{MustNew(1, 5), MustNew(2, 3), -1},
		{MustNew(2, 3), MustNew(1, 5), 1},
		{MustNew(1, 3), MustNew(1, 5), -1}, // ties broken by end time
		{MustNew(1, 5), MustNew(1, 3), 1},
		{MustNew(4, 4), MustNew(4, 4), 0},
	}
	for _, tc := range cases {
		if got := Compare(tc.a, tc.b); got != tc.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestString(t *testing.T) {
	if s := MustNew(18, Forever).String(); s != "[18,∞]" {
		t.Fatalf("String() = %q, want [18,∞]", s)
	}
	if s := FormatTime(42); s != "42" {
		t.Fatalf("FormatTime(42) = %q", s)
	}
}

// randomInterval draws an interval in [0, limit] for property tests.
func randomInterval(r *rand.Rand, limit Time) Interval {
	a := r.Int63n(limit + 1)
	b := r.Int63n(limit + 1)
	if a > b {
		a, b = b, a
	}
	return Interval{Start: a, End: b}
}

func TestOverlapsMatchesPointwise(t *testing.T) {
	// Property: Overlaps agrees with the instant-by-instant definition over
	// a small dense domain.
	r := rand.New(rand.NewSource(1))
	f := func() bool {
		a := randomInterval(r, 30)
		b := randomInterval(r, 30)
		want := false
		for x := Time(0); x <= 30; x++ {
			if a.Contains(x) && b.Contains(x) {
				want = true
				break
			}
		}
		return a.Overlaps(b) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestIntersectConsistentWithOverlaps(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	f := func() bool {
		a := randomInterval(r, 1000)
		b := randomInterval(r, 1000)
		got, ok := a.Intersect(b)
		if ok != a.Overlaps(b) {
			return false
		}
		if !ok {
			return true
		}
		return a.Covers(got) && b.Covers(got) && got.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCompareIsTotalOrder(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	f := func() bool {
		a := randomInterval(r, 100)
		b := randomInterval(r, 100)
		// Antisymmetry and reflexivity.
		if Compare(a, b) != -Compare(b, a) {
			return false
		}
		return Compare(a, a) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
