// Command relsort sorts a relation file totally by time using a bounded-
// memory external merge sort — the sort step of the paper's headline
// strategy (§6.3/§7: "sort the relation then use the k-ordered aggregation
// tree with k = 1"), runnable on relations larger than memory.
//
// Usage:
//
//	relsort -in big.rel -out sorted.rel -memory 100000
package main

import (
	"flag"
	"fmt"
	"os"

	"tempagg/internal/relation"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "relsort:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("relsort", flag.ContinueOnError)
	var (
		in     = fs.String("in", "", "input relation file (required)")
		out    = fs.String("out", "", "output relation file (required)")
		memory = fs.Int("memory", 0, "run size in tuples (0: default of one million)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return fmt.Errorf("-in and -out are required")
	}
	if err := relation.ExternalSort(*in, *out, *memory); err != nil {
		return err
	}
	sc, err := relation.Open(*out, relation.ScanOptions{})
	if err != nil {
		return err
	}
	defer sc.Close()
	fmt.Printf("sorted %d tuples into %s\n", sc.Count(), *out)
	return nil
}
