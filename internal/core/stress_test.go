package core

import (
	"math/rand"
	"testing"

	"tempagg/internal/aggregate"
	"tempagg/internal/interval"
	"tempagg/internal/tuple"
)

// TestDeepLeftSpineTree: reverse-sorted input grows the aggregation tree
// down its *left* spine; the emit traversal recurses ~2n deep. This guards
// the recursion structure against stack overflow (Go grows goroutine
// stacks, but only if nothing forces fixed frames). Insertion itself is
// O(n²) on this adversarial order — the paper's worst case — so the size
// stays moderate.
func TestDeepLeftSpineTree(t *testing.T) {
	if testing.Short() {
		t.Skip("deep-spine stress test")
	}
	const n = 25_000
	f := aggregate.For(aggregate.Count)
	tree := NewAggregationTree(f)
	for i := n; i > 0; i-- {
		tu := tuple.MustNew("t", 1, int64(i)*5, int64(i)*5+2)
		if err := tree.Add(tu); err != nil {
			t.Fatal(err)
		}
	}
	res, err := tree.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2*n+1 {
		t.Fatalf("%d rows, want %d", len(res.Rows), 2*n+1)
	}
}

// TestDeepRightSpineTree: sorted input grows the right spine; emit handles
// it iteratively, so this must be cheap and safe at the same scale.
func TestDeepRightSpineTree(t *testing.T) {
	if testing.Short() {
		t.Skip("deep-spine stress test")
	}
	const n = 50_000
	f := aggregate.For(aggregate.Sum)
	tree := NewAggregationTree(f)
	for i := 0; i < n; i++ {
		tu := tuple.MustNew("t", 2, int64(i)*5, int64(i)*5+2)
		if err := tree.Add(tu); err != nil {
			t.Fatal(err)
		}
	}
	res, err := tree.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestBalancedTreeStaysShallow: the AVL variant must keep its height
// logarithmic on sorted input — the whole point of the §7 extension.
func TestBalancedTreeStaysShallow(t *testing.T) {
	f := aggregate.For(aggregate.Count)
	bt := NewBalancedTree(f)
	const n = 50_000
	for i := 0; i < n; i++ {
		tu := tuple.MustNew("t", 1, int64(i)*3, int64(i)*3+1)
		if err := bt.Add(tu); err != nil {
			t.Fatal(err)
		}
	}
	// ~2n+1 leaves; an AVL tree over them has height <= 1.44·log2(4n).
	if h := bt.root.height; h > 30 {
		t.Fatalf("balanced tree height %d over %d inserts; not balanced", h, n)
	}
	res, err := bt.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestBalancedTreeHeightInvariant verifies the AVL balance factor on every
// node after random insertions.
func TestBalancedTreeHeightInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(81))
	f := aggregate.For(aggregate.Min)
	bt := NewBalancedTree(f)
	for i := 0; i < 3000; i++ {
		s := r.Int63n(100000)
		tu := tuple.MustNew("t", r.Int63n(100), s, s+r.Int63n(5000))
		if err := bt.Add(tu); err != nil {
			t.Fatal(err)
		}
	}
	var check func(n *bNode) int
	check = func(n *bNode) int {
		if n == nil {
			return -1
		}
		lh, rh := check(n.left), check(n.right)
		if bf := lh - rh; bf < -1 || bf > 1 {
			t.Fatalf("balance factor %d at split %d", bf, n.split)
		}
		want := lh
		if rh > want {
			want = rh
		}
		want++
		if n.height != want {
			t.Fatalf("stale height at split %d: %d, want %d", n.split, n.height, want)
		}
		return want
	}
	check(bt.root)
}

// TestKTreeSustainedStream: a long k-ordered stream through a small-k tree
// keeps live memory bounded the whole way, not just at the end.
func TestKTreeSustainedStream(t *testing.T) {
	f := aggregate.For(aggregate.Avg)
	kt, err := NewKOrderedTree(f, 2)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(82))
	const n = 100_000
	maxLive := 0
	base := int64(0)
	for i := 0; i < n; i++ {
		base += r.Int63n(10)
		s := base
		if i%3 == 0 && s >= 4 {
			s -= 4 // within the k=2 disorder budget for this arrival rate
		}
		tu := tuple.MustNew("t", r.Int63n(1000), s, s+r.Int63n(40))
		if err := kt.Add(tu); err != nil {
			t.Fatal(err)
		}
		if live := kt.Stats().LiveNodes; live > maxLive {
			maxLive = live
		}
	}
	if maxLive > 512 {
		t.Fatalf("live nodes reached %d during the stream; gc is not keeping up", maxLive)
	}
	res, err := kt.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestLargeRandomAgreement cross-checks the tree algorithms at a scale the
// O(n²) oracle cannot reach, using the linked list as the independent
// implementation.
func TestLargeRandomAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("large agreement test")
	}
	r := rand.New(rand.NewSource(83))
	f := aggregate.For(aggregate.Sum)
	ts := make([]tuple.Tuple, 20_000)
	for i := range ts {
		s := r.Int63n(1_000_000)
		ts[i] = tuple.MustNew("t", r.Int63n(1000)-500, s, s+r.Int63n(10_000))
	}
	want, _, err := Run(Spec{Algorithm: LinkedList}, f, ts)
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range []Spec{
		{Algorithm: AggregationTree},
		{Algorithm: BalancedTree},
		{Algorithm: KOrderedTree, K: len(ts)},
	} {
		got, _, err := Run(spec, f, ts)
		if err != nil {
			t.Fatalf("%v: %v", spec.Algorithm, err)
		}
		resultsIdentical(t, spec.Algorithm.String(), got, want)
	}
	pres, _, err := EvaluatePartitionedTuples(f, ts, PartitionOptions{
		Boundaries: UniformBoundaries(interval.MustNew(0, 1_009_999), 32),
		Parallel:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !pres.Equal(want) {
		t.Fatal("partitioned evaluation disagrees at scale")
	}
}
