// Fixture for unlockpath: manual Lock/Unlock pairing with early returns,
// panics, TryLock, RWMutex read/write separation, and deferred unlocks
// (direct and inside a deferred closure).
package fixture

import "sync"

type store struct {
	mu sync.Mutex
	rw sync.RWMutex
	m  map[string]int
}

func (s *store) leakyGet(k string) (int, bool) {
	s.mu.Lock()
	v, ok := s.m[k]
	if !ok {
		return 0, false // want `return with s\.mu still locked on at least one path`
	}
	s.mu.Unlock()
	return v, true
}

func (s *store) deferredGet(k string) (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.m[k]
	return v, ok // ok: deferred unlock covers every exit
}

func (s *store) manualBothPaths(k string) (int, bool) {
	s.mu.Lock()
	if v, ok := s.m[k]; ok {
		s.mu.Unlock()
		return v, true
	}
	s.mu.Unlock()
	return 0, false // ok: each path unlocks before returning
}

func (s *store) panicsWhileLocked(k string) int {
	s.mu.Lock()
	v, ok := s.m[k]
	if !ok {
		panic("missing key") // want `abrupt exit with s\.mu still locked`
	}
	s.mu.Unlock()
	return v
}

func (s *store) readThenWrite(k string) int {
	s.rw.RLock()
	v := s.m[k]
	s.rw.RUnlock()
	s.rw.Lock()
	s.m[k] = v + 1
	s.rw.Unlock()
	return v // ok: read and write acquisitions each balanced
}

func (s *store) wrongUnlockKind() {
	s.rw.Lock()
	s.m["x"] = 1
	s.rw.RUnlock() // releases the read lock, not the write lock held here
} // want `function end with s\.rw still locked on at least one path`

func (s *store) tryLockBalanced() {
	if s.mu.TryLock() {
		s.m["x"] = 1
		s.mu.Unlock()
	} // ok: the lock is only held on the true branch, and it unlocks
}

func (s *store) tryLockLeaky() bool {
	if s.mu.TryLock() {
		s.m["x"] = 1
		return true // want `return with s\.mu still locked on at least one path`
	}
	return false // ok: TryLock failed, nothing held
}

func (s *store) deferredClosureUnlock() {
	s.mu.Lock()
	defer func() {
		s.m["cleanups"]++
		s.mu.Unlock()
	}()
	s.m["y"] = 2 // ok: the deferred closure unlocks on every exit
}

func (s *store) loopReacquire(keys []string) int {
	total := 0
	for _, k := range keys {
		s.mu.Lock()
		total += s.m[k]
		s.mu.Unlock()
	}
	return total // ok: balanced inside the loop body
}
