package core

import (
	"testing"

	"tempagg/internal/aggregate"
	"tempagg/internal/tuple"
)

// TestKTreeWindowSemanticsPaperExample reproduces the paper's worked window
// arithmetic (§5.3, Figure 4): with k=10 the algorithm keeps the last 2k+1
// = 21 tuple start times; when tuple 23 arrives, the start time of tuple 2
// (= 23 − 21) becomes the gc-threshold.
func TestKTreeWindowSemanticsPaperExample(t *testing.T) {
	f := aggregate.For(aggregate.Count)
	kt, err := NewKOrderedTree(f, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Tuple i has start 100·i, end 100·i+5: strictly increasing, so the
	// relation is 0-ordered (and trivially 10-ordered).
	add := func(i int) {
		t.Helper()
		if err := kt.Add(tuple.MustNew("t", 1, int64(i)*100, int64(i)*100+5)); err != nil {
			t.Fatal(err)
		}
	}
	// Tuples 1..22: the window (capacity 21) is not yet slid past tuple 1,
	// so nothing before tuple 1's start may have been emitted... but also
	// nothing may be collected before the window fills at tuple 22.
	for i := 1; i <= 21; i++ {
		add(i)
	}
	if kt.Stats().Collected != 0 {
		t.Fatalf("collected %d nodes before the 2k+1 window filled", kt.Stats().Collected)
	}
	// Tuple 22 evicts tuple 1's start (100): intervals ending before 100
	// become collectable — that is only the leading gap [0,99].
	add(22)
	if kt.rootLo != 100 {
		t.Fatalf("after tuple 22: earliest remaining instant %d, want 100", kt.rootLo)
	}
	// Tuple 23 evicts tuple 2's start (200), exactly the paper's example:
	// "the algorithm is finished with any constant intervals whose end time
	// is before the start of tuple number 2."
	add(23)
	if kt.rootLo != 200 {
		t.Fatalf("after tuple 23: earliest remaining instant %d, want 200", kt.rootLo)
	}
	res, err := kt.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestKTreeFinishAfterNoInput covers Finish on a fresh evaluator.
func TestKTreeFinishAfterNoInput(t *testing.T) {
	f := aggregate.For(aggregate.Sum)
	kt, err := NewKOrderedTree(f, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := kt.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || !res.Value(0).Null {
		t.Fatalf("rows = %v", res.Rows)
	}
}

// TestKTreeGCThresholdIsConservative: a tuple whose interval ends exactly
// at the threshold must NOT be collected (only strictly-before ends are
// safe, since a future tuple may start exactly at the threshold).
func TestKTreeGCThresholdBoundary(t *testing.T) {
	f := aggregate.For(aggregate.Count)
	kt, err := NewKOrderedTree(f, 0) // window of 1: threshold = previous start
	if err != nil {
		t.Fatal(err)
	}
	mk := func(s, e int64) tuple.Tuple {
		return tuple.MustNew("t", 1, s, e)
	}
	if err := kt.Add(mk(10, 20)); err != nil {
		t.Fatal(err)
	}
	// Threshold after this Add is 10 (previous start); the constant
	// interval [10,20] ends at 20 >= 10 and must survive; [0,9] is gone.
	if err := kt.Add(mk(10, 15)); err != nil {
		t.Fatal(err)
	}
	if kt.rootLo != 10 {
		t.Fatalf("earliest remaining instant %d, want 10", kt.rootLo)
	}
	// A third tuple starting exactly at the previous start stays legal.
	if err := kt.Add(mk(10, 12)); err != nil {
		t.Fatal(err)
	}
	res, err := kt.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := res.At(11); !ok || v.Int != 3 {
		t.Fatalf("count at 11 = %v, want 3", v)
	}
}
