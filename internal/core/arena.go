package core

import "sync"

// The evaluators' per-tuple hot paths split leaves by allocating structure
// nodes — two per split, up to four per tuple. Allocating each node through
// the garbage collector makes the sweep allocation-bound: a 64K-tuple
// aggregation-tree run performs ~250K tiny heap allocations whose lifetime
// is exactly the evaluation. The slab arena below replaces them with bump
// allocation out of fixed-size slabs that are recycled through a shared
// sync.Pool when the evaluator finishes, so steady-state query traffic
// stops allocating node memory altogether.
//
// The arena deliberately changes nothing about the paper's §6.2 cost model:
// live/peak node accounting still flows through statsCell at 16 bytes per
// node (core.NodeBytes), and the k-ordered tree's garbage collection still
// returns nodes — to the arena's free list, where the next split reuses
// them, keeping the resident footprint proportional to the paper's
// LiveNodes figure rather than to nodes-ever-allocated. Arena traffic
// (slabs retained, nodes reused) is published through obs.EvalSink at
// release time.

// arenaSlabNodes is the number of nodes per slab. At core.NodeBytes of
// model cost (48–56 real bytes per node type), a slab is a few tens of
// kilobytes — big enough to amortize pool round-trips, small enough that an
// almost-empty evaluator wastes little.
const arenaSlabNodes = 1024

// BatchPage is the page size of the batch-ingestion path: AddBatch callers
// (relation scans, partition bucket drains, RunObserved) feed tuples in
// pages of this many rather than one interface call per tuple.
const BatchPage = 512

// newSlabPool returns a shared pool of node slabs for one node type. Slabs
// are pooled as *[]T so a Put does not allocate a slice header.
func newSlabPool[T any]() *sync.Pool {
	return &sync.Pool{New: func() any {
		s := make([]T, arenaSlabNodes)
		return &s
	}}
}

// Shared slab pools, one per node type. Evaluators on any goroutine draw
// from and return to these; the pool handles the synchronization.
var (
	treeSlabPool = newSlabPool[treeNode]()
	bSlabPool    = newSlabPool[bNode]()
	listSlabPool = newSlabPool[listNode]()
)

// arena is a single-owner slab allocator for one evaluator run. It is not
// safe for concurrent use — like the evaluator that embeds it, it has one
// writer (the Evaluator contract's Add goroutine). Nodes are zeroed at
// allocation, never at recycling, so a slab fresh from the shared pool can
// carry a previous query's bits without leaking them (FuzzArenaReuse pins
// this).
type arena[T any] struct {
	pool  *sync.Pool
	slabs []*[]T
	used  int  // nodes handed out of the newest slab
	free  []*T // nodes returned by garbage collection, ready for reuse
	freed int  // nodes served from the free list over the run
}

// newArena returns an arena drawing slabs from the given shared pool.
func newArena[T any](pool *sync.Pool) arena[T] {
	return arena[T]{pool: pool}
}

// alloc returns a zeroed node, preferring the free list, then the newest
// slab's bump pointer, then a (possibly recycled) slab from the pool.
func (a *arena[T]) alloc() *T {
	var zero T
	if n := len(a.free); n > 0 {
		p := a.free[n-1]
		a.free = a.free[:n-1]
		a.freed++
		*p = zero
		return p
	}
	if len(a.slabs) == 0 || a.used == arenaSlabNodes {
		a.slabs = append(a.slabs, a.pool.Get().(*[]T))
		a.used = 0
	}
	p := &(*a.slabs[len(a.slabs)-1])[a.used]
	a.used++
	*p = zero
	return p
}

// recycle returns one garbage-collected node to the free list. The caller
// must guarantee no live pointer to it remains (the k-ordered tree's GC
// only ever removes already-emitted, unreachable prefixes).
func (a *arena[T]) recycle(p *T) {
	a.free = append(a.free, p)
}

// release returns every slab to the shared pool and resets the arena,
// reporting the slab count and the number of free-list reuses for the
// obs.EvalSink arena counters. The owning evaluator must have dropped all
// node pointers first; release is the teardown half of Finish.
func (a *arena[T]) release() (slabs, reused int) {
	slabs, reused = len(a.slabs), a.freed
	for _, s := range a.slabs {
		a.pool.Put(s)
	}
	a.slabs, a.free = nil, nil
	a.used, a.freed = 0, 0
	return slabs, reused
}

// The sweep evaluator (sweep.go) keeps struct-of-arrays buffers — event
// timestamps, deltas, tuple columns — that the radix sort scatters by
// absolute index, so unlike tree nodes they must be *contiguous*: whole
// []int64 slices are pooled and regrown geometrically rather than chunked
// into slabs. The same recycling contract applies: buffers come back from
// the shared pool carrying a previous run's bits, and owners only ever read
// indices they wrote (FuzzSweepVsReference exercises reuse).

// colMinCap is the smallest column capacity handed out; below it the pool
// round-trip costs more than the allocation it saves.
const colMinCap = 1024

// colPool is the shared pool of int64 columns. It has no New function:
// a Get miss returns nil and the colArena allocates fresh, which is how
// pool reuse stays countable for the obs arena counters.
var colPool sync.Pool

// colArena hands out pooled contiguous int64 columns for one evaluator run.
// Like arena, it is single-owner: one writer, no locking. It counts columns
// acquired and pool hits for ArenaRelease reporting at Finish.
type colArena struct {
	acquired int // columns handed out over the run
	reused   int // of those, recycled from the shared pool
}

// acquire returns an empty column with at least the given capacity,
// preferring a recycled buffer from the shared pool. A pooled buffer too
// small for the request is dropped on the floor — the next release replaces
// it with a bigger one, so the pool's sizes track the workload.
func (a *colArena) acquire(capacity int) []int64 {
	if capacity < colMinCap {
		capacity = colMinCap
	}
	a.acquired++
	if p, _ := colPool.Get().(*[]int64); p != nil && cap(*p) >= capacity {
		a.reused++
		return (*p)[:0]
	}
	//tempagglint:ignore poolbalance an undersized pooled buffer is dropped on purpose so pooled capacities track the workload (see function comment)
	return make([]int64, 0, capacity)
}

// grow returns col with capacity for at least capacity elements, preserving
// its contents; if a new buffer is needed the old one is recycled. Doubling
// keeps appends amortized O(1).
func (a *colArena) grow(col []int64, capacity int) []int64 {
	if cap(col) >= capacity {
		return col
	}
	if c := 2 * cap(col); c > capacity {
		capacity = c
	}
	next := a.acquire(capacity)[:len(col)]
	copy(next, col)
	a.release(col)
	return next
}

// push appends v to col, growing through the pool instead of the garbage
// collector when full. This is the sweep's per-event hot path.
func (a *colArena) push(col []int64, v int64) []int64 {
	if len(col) == cap(col) {
		col = a.grow(col, len(col)+1)
	}
	return append(col, v)
}

// release returns col's backing store to the shared pool. The caller must
// drop its own reference; release is the teardown half of Finish.
func (a *colArena) release(col []int64) {
	if cap(col) == 0 {
		return
	}
	s := col[:0]
	colPool.Put(&s)
}

// counters reports columns acquired and pool reuses over the run, the
// quantities published through obs.EvalSink.ArenaRelease.
func (a *colArena) counters() (cols, reused int) {
	return a.acquired, a.reused
}
