package lint_test

import (
	"testing"

	"tempagg/internal/lint"
	"tempagg/internal/lint/linttest"
)

func TestAtomicMix(t *testing.T) {
	linttest.Run(t, lint.AtomicMix, "atomicmix")
}
