package query

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"tempagg/internal/obs"
	"tempagg/internal/relation"
	"tempagg/internal/tuple"
)

var updateGolden = flag.Bool("update", false, "rewrite EXPLAIN golden files")

// explainGoldenCases covers every evaluator kind the planner can choose or
// the USING clause can force. Plain EXPLAIN output is deterministic — plan
// tree and estimated costs only, no timings — so it is golden-file testable.
var explainGoldenCases = []struct{ name, sql string }{
	{"default_count", "EXPLAIN SELECT COUNT(Salary) FROM Employed"},
	{"default_max", "EXPLAIN SELECT MAX(Salary) FROM Employed"},
	{"using_list", "EXPLAIN SELECT COUNT(Salary) FROM Employed USING LIST"},
	{"using_tree", "EXPLAIN SELECT COUNT(Salary) FROM Employed USING TREE"},
	{"using_btree", "EXPLAIN SELECT COUNT(Salary) FROM Employed USING BTREE"},
	{"using_ktree", "EXPLAIN SELECT COUNT(Salary) FROM Employed USING KTREE 4"},
	{"using_sweep", "EXPLAIN SELECT COUNT(Salary) FROM Employed USING SWEEP"},
	{"using_tuma", "EXPLAIN SELECT COUNT(Salary) FROM Employed USING TUMA"},
	{"using_partitioned", "EXPLAIN SELECT COUNT(Salary) FROM Employed USING PARTITIONED 4"},
	{"shared_sweep", "EXPLAIN SELECT COUNT(Salary), SUM(Salary), AVG(Salary) FROM Employed"},
}

func TestExplainGolden(t *testing.T) {
	for _, tc := range explainGoldenCases {
		t.Run(tc.name, func(t *testing.T) {
			qr := execute(t, tc.sql, relation.Employed())
			if len(qr.Groups) != 0 {
				t.Errorf("EXPLAIN executed the query: %d groups", len(qr.Groups))
			}
			if qr.Explain == "" {
				t.Fatal("EXPLAIN produced no report")
			}
			path := filepath.Join("testdata", "explain", tc.name+".golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(qr.String()), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if got := qr.String(); got != string(want) {
				t.Errorf("EXPLAIN output changed.\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

// TestExplainAnalyzeRowsIdentical is the differential contract: for every
// evaluator kind, EXPLAIN ANALYZE must return the plain query's aggregate
// rows bit for bit — the report is appended after them, never mixed in —
// and must actually carry a trace report.
func TestExplainAnalyzeRowsIdentical(t *testing.T) {
	rel := relation.Employed()
	for _, tc := range explainGoldenCases {
		t.Run(tc.name, func(t *testing.T) {
			plainSQL := strings.TrimPrefix(tc.sql, "EXPLAIN ")
			plain := execute(t, plainSQL, rel)
			analyzed := execute(t, "EXPLAIN ANALYZE "+plainSQL, rel)
			if len(analyzed.Groups) != len(plain.Groups) {
				t.Fatalf("ANALYZE groups = %d, plain = %d", len(analyzed.Groups), len(plain.Groups))
			}
			for i := range plain.Groups {
				if analyzed.Groups[i].Key != plain.Groups[i].Key {
					t.Errorf("group %d key differs", i)
				}
				for j, res := range plain.Groups[i].Results {
					if !reflect.DeepEqual(analyzed.Groups[i].Results[j].Rows, res.Rows) {
						t.Errorf("group %d aggregate %d: ANALYZE rows differ from plain rows", i, j)
					}
				}
			}
			for _, marker := range []string{"plan:", "trace:", "counters:"} {
				if !strings.Contains(analyzed.Explain, marker) {
					t.Errorf("ANALYZE report missing %q:\n%s", marker, analyzed.Explain)
				}
			}
			// The plain rendering is a strict prefix of the ANALYZE one.
			if plainStr, anaStr := plainRows(plain), plainRows(analyzed); plainStr != anaStr {
				t.Errorf("row rendering differs:\n%s\nvs\n%s", plainStr, anaStr)
			}
		})
	}
}

// plainRows renders only the result rows, excluding the query/plan header
// (which legitimately differs: one query says EXPLAIN ANALYZE) and report.
func plainRows(qr *QueryResult) string {
	var b strings.Builder
	for _, g := range qr.Groups {
		for _, res := range g.Results {
			b.WriteString(res.String())
		}
	}
	return b.String()
}

// TestExplainAnalyzeParallelSweepAcceptance pins the headline identity on a
// 64K-event input: the parallel sweep's per-worker scan spans carry §6 node
// counts that sum exactly to the query-level LiveNodes counter, and the
// report shows the per-worker spans, the skew summary, and the
// estimated-vs-actual cost line.
func TestExplainAnalyzeParallelSweepAcceptance(t *testing.T) {
	const n = 32768 // two events per tuple: 65536
	rel := relation.New("Big")
	for i := 0; i < n; i++ {
		// Descending starts so the radix sorts (and their spans) run.
		lo := int64(2*(n-i)) + 1
		rel.Append(tuple.MustNew(fmt.Sprintf("e%d", i%97), int64(i), lo, lo+1000))
	}
	q, err := Parse("EXPLAIN ANALYZE SELECT COUNT(Salary) FROM Big USING SWEEP 4")
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewQueryTrace(q.String())
	qr, err := ExecuteTraced(q, rel, nil, tr)
	if err != nil {
		t.Fatal(err)
	}

	var workerNodes, workerSpans int
	var visit func(sp *obs.Span)
	visit = func(sp *obs.Span) {
		if sp.Name == "scan-worker" && sp.Counters != nil {
			workerSpans++
			workerNodes += sp.Counters.LiveNodes
		}
		for _, c := range sp.Children {
			visit(c)
		}
	}
	for _, sp := range tr.SpanTree() {
		visit(sp)
	}
	if workerSpans != 4 {
		t.Errorf("scan-worker spans = %d, want 4", workerSpans)
	}
	if workerNodes != tr.Stats.LiveNodes {
		t.Errorf("worker span node sum = %d, query LiveNodes = %d — per-worker counters must partition the query total exactly",
			workerNodes, tr.Stats.LiveNodes)
	}
	if workerNodes != 2*n {
		t.Errorf("worker span node sum = %d, want %d", workerNodes, 2*n)
	}
	for _, marker := range []string{"scan-worker", "workers: 4 spans", "cost: estimated="} {
		if !strings.Contains(qr.Explain, marker) {
			t.Errorf("ANALYZE report missing %q:\n%s", marker, qr.Explain)
		}
	}
}

// TestParseExplain covers the statement forms and their canonical strings.
func TestParseExplain(t *testing.T) {
	for _, tc := range []struct {
		sql  string
		mode ExplainMode
	}{
		{"SELECT COUNT(Salary) FROM emp", ExplainNone},
		{"EXPLAIN SELECT COUNT(Salary) FROM emp", ExplainPlan},
		{"explain analyze SELECT COUNT(Salary) FROM emp", ExplainAnalyze},
	} {
		q, err := Parse(tc.sql)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tc.sql, err)
		}
		if q.Explain != tc.mode {
			t.Errorf("Parse(%q).Explain = %d, want %d", tc.sql, q.Explain, tc.mode)
		}
		// The canonical string must reparse to the same mode.
		q2, err := Parse(q.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", q.String(), err)
		}
		if q2.Explain != tc.mode {
			t.Errorf("reparse of %q lost the explain mode", q.String())
		}
	}
	if _, err := Parse("EXPLAIN"); err == nil {
		t.Error("bare EXPLAIN should not parse")
	}
	if _, err := Parse("ANALYZE SELECT COUNT(Salary) FROM emp"); err == nil {
		t.Error("ANALYZE without EXPLAIN should not parse")
	}
}
