package main

import (
	"path/filepath"
	"testing"

	"tempagg"
)

func TestDatagenWritesReadableFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.rel")
	err := run([]string{"-out", path, "-tuples", "512", "-long-lived", "40",
		"-order", "sorted", "-seed", "7"})
	if err != nil {
		t.Fatal(err)
	}
	rel, err := tempagg.ReadRelation(path)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 512 {
		t.Fatalf("wrote %d tuples, want 512", rel.Len())
	}
	if !rel.IsSorted() {
		t.Fatal("sorted order not applied")
	}
}

func TestDatagenKOrdered(t *testing.T) {
	path := filepath.Join(t.TempDir(), "k.rel")
	err := run([]string{"-out", path, "-tuples", "2048", "-order", "kordered",
		"-k", "8", "-kpct", "0.1", "-seed", "3"})
	if err != nil {
		t.Fatal(err)
	}
	rel, err := tempagg.ReadRelation(path)
	if err != nil {
		t.Fatal(err)
	}
	if k := tempagg.KOrderedness(rel.Tuples); k == 0 || k > 8 {
		t.Fatalf("relation is %d-ordered, want in (0, 8]", k)
	}
}

func TestDatagenErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing -out must fail")
	}
	path := filepath.Join(t.TempDir(), "x.rel")
	if err := run([]string{"-out", path, "-order", "bogus"}); err == nil {
		t.Error("unknown order must fail")
	}
	if err := run([]string{"-out", path, "-order", "kordered"}); err == nil {
		t.Error("kordered without -k must fail")
	}
}
