package order

import (
	"math/rand"

	"tempagg/internal/tuple"
)

// DefaultEstimateAnchors is the reservoir size EstimateKOrderedness uses
// when the caller passes anchors <= 0: enough probes to witness the
// disorder of the Table 2 constructions with high probability, cheap enough
// to run at plan time on every unsorted relation.
const DefaultEstimateAnchors = 512

// EstimateKOrderedness estimates a relation's k-orderedness bound (§5.2,
// the maximum displacement from time-sorted position) without sorting it,
// for the planner to use when no KBound was declared.
//
// It draws up to `anchors` positions by one-pass reservoir sampling, then
// probes each anchor against positions a geometric gap ladder away (1, 2,
// 4, … n/2). An inverted pair at gap g — the later tuple sorting strictly
// before the earlier — witnesses a displacement of at least g/2, so the
// estimate is twice the largest witnessed gap: at most 4× the true bound,
// and at least the bound for the swap-at-distance-d constructions of
// Table 2, whose inversions are witnessed at the ladder rung just below d.
//
// It returns 0 when no inversion is witnessed, which is what a sorted
// relation produces (and all a sample can ever certify). The estimate errs
// high by design: an overestimate only costs the k-ordered tree some
// garbage-collection laziness, while an evaluator trusting an underestimate
// rejects its input mid-run (the executor then falls back to sorting).
// Deterministic for a given seed.
func EstimateKOrderedness(ts []tuple.Tuple, anchors int, seed int64) int {
	n := len(ts)
	if n < 2 {
		return 0
	}
	if anchors <= 0 {
		anchors = DefaultEstimateAnchors
	}
	if anchors > n {
		anchors = n
	}

	// Reservoir pass over the index stream.
	r := rand.New(rand.NewSource(seed))
	res := make([]int, anchors)
	for i := 0; i < anchors; i++ {
		res[i] = i
	}
	for i := anchors; i < n; i++ {
		if j := r.Intn(i + 1); j < anchors {
			res[j] = i
		}
	}

	// Probe each anchor up and down the gap ladder.
	maxGap := 0
	for _, i := range res {
		for g := 1; g < n; g *= 2 {
			if g <= maxGap {
				continue // a larger inversion is already witnessed
			}
			if j := i + g; j < n && ts[j].Less(ts[i]) {
				maxGap = g
			}
			if j := i - g; j >= 0 && ts[i].Less(ts[j]) {
				maxGap = g
			}
		}
	}
	if maxGap == 0 {
		return 0
	}
	k := 2 * maxGap
	if k > n-1 {
		k = n - 1
	}
	return k
}
