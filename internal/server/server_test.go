package server

import (
	"encoding/json"
	"fmt"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"tempagg/internal/catalog"
	"tempagg/internal/relation"
)

// startServer brings up a server on a loopback port over a catalog holding
// the Employed relation.
func startServer(t *testing.T) (*Server, string) {
	t.Helper()
	dir := t.TempDir()
	if err := relation.WriteFile(filepath.Join(dir, "Employed.rel"), relation.Employed()); err != nil {
		t.Fatal(err)
	}
	cat, err := catalog.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(cat)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(lis) }()
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return srv, lis.Addr().String()
}

func TestServerQueryRoundTrip(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	raw, err := c.QueryRaw("SELECT COUNT(Name) FROM Employed")
	if err != nil {
		t.Fatal(err)
	}
	var resp struct {
		OK     bool `json:"ok"`
		Result struct {
			Groups []struct {
				Results []struct {
					Rows []struct {
						Start int64    `json:"start"`
						End   string   `json:"end"`
						Value *float64 `json:"value"`
					} `json:"rows"`
				} `json:"results"`
			} `json:"groups"`
		} `json:"result"`
	}
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatalf("bad reply: %v\n%s", err, raw)
	}
	if !resp.OK {
		t.Fatalf("reply not ok: %s", raw)
	}
	rows := resp.Result.Groups[0].Results[0].Rows
	if len(rows) != 7 {
		t.Fatalf("%d rows, want 7", len(rows))
	}
	if rows[4].Start != 18 || *rows[4].Value != 3 {
		t.Fatalf("row 4 = %+v", rows[4])
	}
	if rows[6].End != "forever" {
		t.Fatalf("last row end = %q", rows[6].End)
	}
}

func TestServerQueryError(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Query("SELECT BOGUS(Name) FROM Employed")
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK || resp.Error == "" {
		t.Fatalf("expected query error, got %+v", resp)
	}
	// The connection survives the error.
	resp, err = c.Query("SELECT COUNT(Name) FROM Employed")
	if err != nil || !resp.OK {
		t.Fatalf("connection broken after error: %+v, %v", resp, err)
	}
}

func TestServerUnknownRelation(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Query("SELECT COUNT(Name) FROM Nope")
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK || !strings.Contains(resp.Error, "not found") {
		t.Fatalf("reply = %+v", resp)
	}
}

func TestServerConcurrentClients(t *testing.T) {
	_, addr := startServer(t)
	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for j := 0; j < 10; j++ {
				resp, err := c.Query("SELECT MAX(Salary) FROM Employed")
				if err != nil {
					errs <- err
					return
				}
				if !resp.OK {
					errs <- fmt.Errorf("server error: %s", resp.Error)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestServerCloseUnblocksServe(t *testing.T) {
	srv, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// The client's connection is gone.
	if _, err := c.Query("SELECT COUNT(Name) FROM Employed"); err == nil {
		t.Fatal("query after close should fail")
	}
	if err := c.Close(); err != nil {
		t.Errorf("client Close: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal("double close must be fine")
	}
}

func TestClientRejectsMultilineQuery(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Query("SELECT COUNT(Name)\nFROM Employed"); err == nil {
		t.Fatal("multiline query must be rejected client-side")
	}
	if _, err := c.QueryRaw("a\rb"); err == nil {
		t.Fatal("carriage return must be rejected client-side")
	}
}
