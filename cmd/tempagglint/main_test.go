package main

import (
	"bytes"
	"strings"
	"testing"

	"tempagg/internal/lint"
)

func TestListPrintsAllAnalyzers(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("run -list = %d, stderr: %s", code, errOut.String())
	}
	for _, name := range []string{"intervalbounds", "finishonce", "errdrop", "nodebytes", "lockcopy"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, out.String())
		}
	}
}

func TestSelectAnalyzers(t *testing.T) {
	all := lint.Analyzers(lint.Config{})
	got, err := selectAnalyzers(all, "errdrop, nodebytes")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "errdrop" || got[1].Name != "nodebytes" {
		t.Fatalf("selectAnalyzers = %v", got)
	}
	if _, err := selectAnalyzers(all, "nosuch"); err == nil {
		t.Error("unknown analyzer accepted")
	}
	if _, err := selectAnalyzers(all, " , "); err == nil {
		t.Error("empty selection accepted")
	}
}

func TestUnknownFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-definitely-not-a-flag"}, &out, &errOut); code != 2 {
		t.Fatalf("run with bad flag = %d, want 2", code)
	}
}

// TestRepositoryIsClean is the acceptance gate: the suite must exit 0 over
// the whole tree, test files included. Skipped under -short because it
// type-checks the entire module.
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module lint is not short")
	}
	var out, errOut bytes.Buffer
	code := run([]string{"-C", "../..", "./..."}, &out, &errOut)
	if code != 0 {
		t.Fatalf("tempagglint over the repository = %d\n%s%s", code, out.String(), errOut.String())
	}
}
