package server

import (
	"encoding/json"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"tempagg/internal/interval"
	"tempagg/internal/tuple"
)

// liveCountAt extracts the single aggregate value at instant `at` from a
// SELECT ... LIVE AT reply.
func liveCountAt(t *testing.T, raw []byte) float64 {
	t.Helper()
	var resp struct {
		OK     bool   `json:"ok"`
		Error  string `json:"error"`
		Result struct {
			Groups []struct {
				Results []struct {
					Rows []struct {
						Value *float64 `json:"value"`
					} `json:"rows"`
				} `json:"results"`
			} `json:"groups"`
		} `json:"result"`
	}
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatalf("bad reply: %v\n%s", err, raw)
	}
	if !resp.OK {
		t.Fatalf("reply not ok: %s", resp.Error)
	}
	rows := resp.Result.Groups[0].Results[0].Rows
	if len(rows) != 1 || rows[0].Value == nil {
		t.Fatalf("AT reply shape: %s", raw)
	}
	return *rows[0].Value
}

func TestServerIngestAndLiveQuery(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Auto-registration: the first INGEST creates the live relation.
	for i, tu := range []tuple.Tuple{
		tuple.MustNew("alice", 10, 0, 20),
		tuple.MustNew("bob", 5, 10, interval.Forever),
		tuple.MustNew("carol", 7, 15, 30),
	} {
		resp, err := c.Ingest("hot", tu)
		if err != nil {
			t.Fatal(err)
		}
		if !resp.OK {
			t.Fatalf("ingest %d: %s", i, resp.Error)
		}
	}
	raw, err := c.QueryRaw("SELECT COUNT(Name) FROM hot LIVE AT 16")
	if err != nil {
		t.Fatal(err)
	}
	if got := liveCountAt(t, raw); got != 3 {
		t.Fatalf("COUNT at 16 = %v, want 3", got)
	}
	// Lowercase protocol keyword works like the SQL keywords do.
	resp, err := c.Query("ingest hot dave 2 40 50")
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK {
		t.Fatalf("lowercase ingest: %s", resp.Error)
	}

	for _, tc := range []struct{ line, wantErr string }{
		{"INGEST", "usage"},
		{"INGEST hot onlythree 1", "usage"},
		{"INGEST hot eve notanumber 0 5", "bad value"},
		{"INGEST hot eve 1 x 5", "bad start"},
		{"INGEST hot eve 1 0 y", "bad end"},
		{"INGEST hot eve 1 9 3", "interval"},
		{"SELECT COUNT(Name) FROM nosuch LIVE", "not registered"},
		{"SELECT COUNT(Name) FROM Employed LIVE", "not registered"},
	} {
		resp, err := c.Query(tc.line)
		if err != nil {
			t.Fatal(err)
		}
		if resp.OK || !strings.Contains(resp.Error, tc.wantErr) {
			t.Errorf("%q: %+v, want error containing %q", tc.line, resp, tc.wantErr)
		}
	}

	// The static path still works on the same connection.
	resp, err = c.Query("SELECT COUNT(Name) FROM Employed")
	if err != nil || !resp.OK {
		t.Fatalf("static query after live traffic: %+v, %v", resp, err)
	}
}

// TestServerConcurrentIngestAndLiveReads drives writers and readers over
// separate connections mid-ingestion: every read must land on a consistent
// epoch, so the observed count at a fully-covered instant is monotone per
// reader and ends exactly at the number of tuples sent.
func TestServerConcurrentIngestAndLiveReads(t *testing.T) {
	_, addr := startServer(t)
	const writers, perWriter, readers = 3, 60, 2

	var writerWg, readerWg sync.WaitGroup
	var done atomic.Bool
	for w := 0; w < writers; w++ {
		writerWg.Add(1)
		go func(w int) {
			defer writerWg.Done()
			c, err := Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for i := 0; i < perWriter; i++ {
				resp, err := c.Ingest("stream", tuple.MustNew("e", int64(i), 0, 100))
				if err != nil || !resp.OK {
					t.Errorf("writer %d: %+v, %v", w, resp, err)
					return
				}
			}
		}(w)
	}
	for rd := 0; rd < readers; rd++ {
		readerWg.Add(1)
		go func(rd int) {
			defer readerWg.Done()
			c, err := Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			last := float64(-1)
			for !done.Load() {
				raw, err := c.QueryRaw("SELECT COUNT(Name) FROM stream LIVE AT 50")
				if err != nil {
					t.Errorf("reader %d: %v", rd, err)
					return
				}
				var probe struct {
					OK    bool   `json:"ok"`
					Error string `json:"error"`
				}
				if err := json.Unmarshal(raw, &probe); err != nil {
					t.Errorf("reader %d: %v", rd, err)
					return
				}
				if !probe.OK {
					// The relation may not exist until the first INGEST lands.
					if strings.Contains(probe.Error, "not registered") {
						continue
					}
					t.Errorf("reader %d: %s", rd, probe.Error)
					return
				}
				got := liveCountAt(t, raw)
				if got < last {
					t.Errorf("reader %d: count went backwards: %v after %v", rd, got, last)
					return
				}
				last = got
			}
		}(rd)
	}
	writerWg.Wait()
	done.Store(true)
	readerWg.Wait()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	raw, err := c.QueryRaw("SELECT COUNT(Name) FROM stream LIVE AT 50")
	if err != nil {
		t.Fatal(err)
	}
	if got := liveCountAt(t, raw); got != writers*perWriter {
		t.Fatalf("final count = %v, want %d", got, writers*perWriter)
	}
}
