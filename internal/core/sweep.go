package core

import (
	"tempagg/internal/aggregate"
	"tempagg/internal/interval"
	"tempagg/internal/obs"
	"tempagg/internal/tuple"
)

// Sweep computes the temporal aggregate by delta summation over a columnar
// event layout (DESIGN.md S33) instead of a tree of constant intervals. Each
// tuple [s, e] with value v becomes two events: an arrival at s and a
// departure at e+1, kept in struct-of-arrays buffers (one timestamp column
// and one value column per endpoint, grown through the shared column pool in
// arena.go). Finish radix-sorts each event column — skipped outright when
// ingestion observed it already sorted, and handed to the standard library's
// pattern-defeating quicksort below radixMinSize — then merges the two
// sorted endpoint streams in one branch-light linear scan, maintaining a
// running (count, sum) pair from which every constant interval's state is
// reconstituted via aggregate.FromCounters.
//
// COUNT, SUM, and AVG are exactly the aggregates a signed (count, sum) pair
// maintains under retraction (aggregate.Kind.Decomposable), so for them the
// sweep is complete: O(n) ingestion, O(n) sort (a handful of radix passes),
// O(n) emission, no pointer chasing, and bit-for-bit the Reference
// semantics including empty groups (count reaching zero reconstitutes the
// null state).
//
// MIN and MAX lose information on retraction, so they sweep with a wedge:
// tuples are buffered columnar, sorted by start, and scanned with a binary
// heap ordered by value that carries each entry's departure time for lazy
// expiry. The heap top — after shedding entries whose interval has passed —
// is the running extremum. A pathological workload (many long-lived tuples
// stacked over the same instants) can grow the wedge without bound, so when
// it exceeds WedgeBound the run abandons the sweep and rebuilds through
// NewAggregationTreeRange from the buffered columns; the fallback is counted
// on the obs sink (tempagg_sweep_fallbacks_total).
//
// Space accounting stays in the paper's §6.2 currency of 16-byte nodes: an
// event is a (timestamp, value) pair — exactly one node — and a buffered
// MIN/MAX tuple is charged two nodes (three column words plus its share of
// the departure-event copy built at Finish).
type Sweep struct {
	noCopy noCopy

	f            aggregate.Func
	span         interval.Interval
	decomposable bool
	opts         SweepOptions
	ar           colArena

	// Event columns (decomposable path): arrivals at Start, departures at
	// End+1. Departures at or beyond span.End+1 are never materialized —
	// the tuple stays live to the end of the span, and for spans reaching
	// Forever the +1 would overflow.
	sTimes, sVals []int64
	eTimes, eVals []int64
	sSorted       bool
	sLast         int64

	// Tuple columns (MIN/MAX path), aligned by index.
	starts, ends, vals []int64

	// WedgeBound caps the MIN/MAX wedge heap (live entries plus not-yet-shed
	// expired ones). Exceeding it triggers the aggregation-tree fallback.
	// Set before Finish; zero means DefaultWedgeBound.
	WedgeBound int

	events      int
	radixPasses int
	fallbacks   int

	// Set by the chunked scan (sweep_parallel.go); a serial run reports
	// one worker, one chunk.
	parallelWorkers int
	chunks          int

	sink  obs.Sink
	es    obs.EvalSink
	stats statsCell
}

var _ Evaluator = (*Sweep)(nil)

// DefaultWedgeBound is the MIN/MAX wedge size above which Finish abandons
// the sweep for the aggregation tree. 1<<16 entries is one megabyte of
// wedge — past the point where heap sifting beats the tree's pointer walk.
const DefaultWedgeBound = 1 << 16

// NewSweep returns a columnar event-sweep evaluator for f over [0, ∞].
func NewSweep(f aggregate.Func) *Sweep {
	return NewSweepRange(f, interval.Universe())
}

// NewSweepRange returns a sweep covering only the given range; tuples are
// clipped to it on insertion, mirroring NewAggregationTreeRange so the
// partitioned evaluator can run sweeps per shard.
func NewSweepRange(f aggregate.Func, span interval.Interval) *Sweep {
	return &Sweep{
		f:            f,
		span:         span,
		decomposable: f.Kind().Decomposable(),
		sSorted:      true,
	}
}

func (s *Sweep) setSink(snk obs.Sink) {
	s.sink = snk
	if snk == nil {
		return // nil Sink: instrumentation disabled (obs.Sink contract)
	}
	s.es = snk.Evaluator(SweepEval.String())
}

// setTrace attaches the span-propagation context (traceSetter); Finish then
// records its sort/scan/emit stages as child spans.
func (s *Sweep) setTrace(ctx obs.TraceContext) { s.opts.Trace = ctx }

// add ingests one clipped tuple and returns the nodes charged.
func (s *Sweep) add(iv interval.Interval, v int64) int {
	if s.decomposable {
		if iv.Start < s.sLast {
			s.sSorted = false
		}
		s.sLast = iv.Start
		s.sTimes = s.ar.push(s.sTimes, iv.Start)
		s.sVals = s.ar.push(s.sVals, v)
		if iv.End >= s.span.End {
			return 1
		}
		s.eTimes = s.ar.push(s.eTimes, iv.End+1)
		s.eVals = s.ar.push(s.eVals, v)
		return 2
	}
	s.starts = s.ar.push(s.starts, iv.Start)
	s.ends = s.ar.push(s.ends, iv.End)
	s.vals = s.ar.push(s.vals, v)
	return 2
}

// Add absorbs one tuple. A tuple outside the sweep's range is ignored; one
// straddling it is clipped, exactly as the tree evaluators do.
func (s *Sweep) Add(tu tuple.Tuple) error {
	if err := tu.Valid.Validate(); err != nil {
		return err
	}
	iv, ok := tu.Valid.Intersect(s.span)
	if !ok {
		return nil
	}
	grown := s.add(iv, tu.Value)
	s.stats.grow(grown)
	s.stats.addTuple()
	if s.es != nil {
		s.es.TuplesProcessed(1)
		s.es.NodesAllocated(grown)
	}
	return nil
}

// AddBatch absorbs one page of tuples; per-tuple work matches Add, with the
// sink publication batched to one event pair per page.
func (s *Sweep) AddBatch(ts []tuple.Tuple) error {
	grown, added := 0, 0
	var err error
	for i := range ts {
		if err = ts[i].Valid.Validate(); err != nil {
			break
		}
		iv, ok := ts[i].Valid.Intersect(s.span)
		if !ok {
			continue
		}
		g := s.add(iv, ts[i].Value)
		s.stats.grow(g)
		s.stats.addTuple()
		grown += g
		added++
	}
	if s.es != nil {
		s.es.TuplesProcessed(added)
		s.es.NodesAllocated(grown)
	}
	return err
}

// Finish sorts the event columns, runs the merge scan, recycles every
// column, and publishes the run's counters. The evaluator must not be
// reused afterwards.
func (s *Sweep) Finish() (*Result, error) {
	var res *Result
	var err error
	if s.decomposable {
		res = s.finishDecomposable()
	} else {
		res, err = s.finishWedge()
	}
	for _, col := range [][]int64{
		s.sTimes, s.sVals, s.eTimes, s.eVals, s.starts, s.ends, s.vals,
	} {
		s.ar.release(col)
	}
	s.sTimes, s.sVals, s.eTimes, s.eVals = nil, nil, nil, nil
	s.starts, s.ends, s.vals = nil, nil, nil
	cols, reused := s.ar.counters()
	if s.parallelWorkers == 0 {
		s.parallelWorkers, s.chunks = 1, 1
	}
	if s.es != nil {
		s.es.PeakNodes(int(s.stats.peakNodes.Load()))
		s.es.ArenaRelease(cols, reused)
		s.es.Sweep(s.events, s.radixPasses, s.fallbacks)
		s.es.SweepParallel(s.parallelWorkers, s.chunks)
	}
	return res, err
}

// finishDecomposable sorts both endpoint columns and merges them with a
// running (count, sum) pair — the COUNT/SUM/AVG path.
func (s *Sweep) finishDecomposable() *Result {
	s.events = len(s.sTimes) + len(s.eTimes)
	workers := s.opts.workers(s.events)
	if !s.sSorted {
		sp := s.opts.Trace.StartChild("radix-sort")
		sp.SetAttr("column", "arrivals")
		s.radixPasses += radixSortInt64Parallel(&s.ar, workers, s.sTimes, s.sVals)
		sp.End()
	}
	// Departures are e+1 in arrival order; even sorted input rarely keeps
	// them sorted, so check in O(n) before paying for the sort.
	if !sortedInt64(s.eTimes) {
		sp := s.opts.Trace.StartChild("radix-sort")
		sp.SetAttr("column", "departures")
		s.radixPasses += radixSortInt64Parallel(&s.ar, workers, s.eTimes, s.eVals)
		sp.End()
	}
	if workers > 1 {
		if res := s.scanChunked(workers); res != nil {
			return res
		}
	}

	scanSp := s.opts.Trace.StartChild("scan")
	scanSp.SetAttr("mode", "serial")
	scanSp.AddCounters(0, s.events, 0, 0)
	defer scanSp.End()

	lo, hi := s.span.Start, s.span.End
	res := &Result{Func: s.f, Rows: make([]Row, 0, len(s.sTimes)+len(s.eTimes)+1)}
	var count, sum int64
	i, j := 0, 0
	// Arrivals at the span's first instant precede the first row; clipped
	// departures are at least lo+1, so none need the same treatment.
	for i < len(s.sTimes) && s.sTimes[i] == lo {
		count++
		sum += s.sVals[i]
		i++
	}
	cur := lo
	for {
		var t int64
		switch {
		case i < len(s.sTimes) && j < len(s.eTimes):
			t = min(s.sTimes[i], s.eTimes[j])
		case i < len(s.sTimes):
			t = s.sTimes[i]
		case j < len(s.eTimes):
			t = s.eTimes[j]
		default:
			t = hi // no boundaries left: fall through to the closing row
		}
		if t > hi || (i >= len(s.sTimes) && j >= len(s.eTimes)) {
			break
		}
		res.Rows = append(res.Rows, Row{
			Interval: interval.MustNew(cur, t-1),
			State:    s.f.FromCounters(count, sum, 0),
		})
		for i < len(s.sTimes) && s.sTimes[i] == t {
			count++
			sum += s.sVals[i]
			i++
		}
		for j < len(s.eTimes) && s.eTimes[j] == t {
			count--
			sum -= s.eVals[j]
			j++
		}
		cur = t
	}
	res.Rows = append(res.Rows, Row{
		Interval: interval.MustNew(cur, hi),
		State:    s.f.FromCounters(count, sum, 0),
	})
	return res
}

// finishWedge is the MIN/MAX path: tuples sorted by start, departures
// sorted separately, one merge scan with a value-ordered wedge heap.
func (s *Sweep) finishWedge() (*Result, error) {
	bound := s.WedgeBound
	if bound <= 0 {
		bound = DefaultWedgeBound
	}
	workers := s.opts.workers(2 * len(s.starts))
	if !sortedInt64(s.starts) {
		sp := s.opts.Trace.StartChild("radix-sort")
		sp.SetAttr("column", "starts")
		s.radixPasses += radixSortInt64Parallel(&s.ar, workers, s.starts, s.ends, s.vals)
		sp.End()
	}
	if workers > 1 {
		if res, err := s.finishWedgeParallel(workers); res != nil || err != nil {
			return res, err
		}
	}
	scanSp := s.opts.Trace.StartChild("scan")
	scanSp.SetAttr("mode", "wedge")
	defer func() {
		scanSp.AddCounters(0, s.events, 0, 0)
		scanSp.End()
	}()
	// Departure events (e+1 with the value to retract); tuples reaching the
	// span's end never depart within it.
	hi := s.span.End
	eT, eV := s.ar.acquire(len(s.ends)), s.ar.acquire(len(s.ends))
	for k, e := range s.ends {
		if e < hi {
			eT = append(eT, e+1)
			eV = append(eV, s.vals[k])
		}
	}
	if !sortedInt64(eT) {
		s.radixPasses += radixSortInt64(&s.ar, eT, eV)
	}
	s.events = len(s.starts) + len(eT)
	defer func() {
		s.ar.release(eT)
		s.ar.release(eV)
	}()

	lo := s.span.Start
	res := &Result{Func: s.f, Rows: make([]Row, 0, len(s.starts)*2+1)}
	w := wedge{max: s.f.Kind() == aggregate.Max}
	var count, sum int64
	i, j := 0, 0
	for i < len(s.starts) && s.starts[i] == lo {
		count++
		sum += s.vals[i]
		w.push(s.vals[i], s.ends[i])
		i++
	}
	cur := lo
	for {
		if w.len() > bound {
			return s.fallback()
		}
		var t int64
		switch {
		case i < len(s.starts) && j < len(eT):
			t = min(s.starts[i], eT[j])
		case i < len(s.starts):
			t = s.starts[i]
		case j < len(eT):
			t = eT[j]
		default:
			t = hi
		}
		if t > hi || (i >= len(s.starts) && j >= len(eT)) {
			break
		}
		res.Rows = append(res.Rows, Row{
			Interval: interval.MustNew(cur, t-1),
			State:    s.wedgeState(&w, count, sum, cur),
		})
		for i < len(s.starts) && s.starts[i] == t {
			count++
			sum += s.vals[i]
			w.push(s.vals[i], s.ends[i])
			i++
		}
		for j < len(eT) && eT[j] == t {
			count--
			sum -= eV[j]
			j++
		}
		cur = t
	}
	res.Rows = append(res.Rows, Row{
		Interval: interval.MustNew(cur, hi),
		State:    s.wedgeState(&w, count, sum, cur),
	})
	return res, nil
}

// wedgeState sheds expired wedge entries and reconstitutes the state for a
// constant interval starting at cur. Every tuple live at cur stays live
// through the whole interval (its departure would otherwise be an interior
// boundary), so the post-shed top is the interval's exact extremum.
func (s *Sweep) wedgeState(w *wedge, count, sum, cur int64) aggregate.State {
	if count == 0 {
		// Nothing live: any remaining wedge entries are expired. Dropping
		// them here keeps the wedge's stale population bounded by the gaps
		// in the workload.
		w.reset()
		return s.f.Zero()
	}
	for w.len() > 0 && w.ends[0] < cur {
		w.pop()
	}
	return s.f.FromCounters(count, sum, w.vals[0])
}

// fallback rebuilds the result through the aggregation tree from the
// buffered tuple columns, the escape hatch for wedge overflow. The tree
// publishes to the same sink under its own algorithm label.
func (s *Sweep) fallback() (*Result, error) {
	s.fallbacks++
	tr := NewAggregationTreeRange(s.f, s.span)
	if s.sink != nil {
		tr.setSink(s.sink)
	}
	var page [BatchPage]tuple.Tuple
	for lo := 0; lo < len(s.starts); lo += BatchPage {
		n := min(BatchPage, len(s.starts)-lo)
		for k := 0; k < n; k++ {
			page[k] = tuple.MustNew("", s.vals[lo+k], s.starts[lo+k], s.ends[lo+k])
		}
		if err := tr.AddBatch(page[:n]); err != nil {
			return nil, err
		}
	}
	return tr.Finish()
}

// Stats reports the evaluator's counters.
func (s *Sweep) Stats() Stats { return s.stats.snapshot() }

// wedge is the MIN/MAX sweep's live set: a binary heap ordered by value
// (min-ordered for MIN, max-ordered for MAX) carrying each entry's
// departure time for lazy expiry. Entries are only ever shed from the top,
// so an expired entry buried under the extremum lingers until it surfaces —
// harmless for correctness (a live entry always outranks it or it would be
// the top) and the reason WedgeBound caps the heap's physical size.
type wedge struct {
	vals, ends []int64
	max        bool
}

func (w *wedge) len() int { return len(w.vals) }

func (w *wedge) reset() {
	w.vals, w.ends = w.vals[:0], w.ends[:0]
}

// before reports whether entry i outranks entry j in heap order.
func (w *wedge) before(i, j int) bool {
	if w.max {
		return w.vals[i] > w.vals[j]
	}
	return w.vals[i] < w.vals[j]
}

func (w *wedge) swap(i, j int) {
	w.vals[i], w.vals[j] = w.vals[j], w.vals[i]
	w.ends[i], w.ends[j] = w.ends[j], w.ends[i]
}

func (w *wedge) push(v, end int64) {
	w.vals = append(w.vals, v)
	w.ends = append(w.ends, end)
	i := len(w.vals) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !w.before(i, parent) {
			break
		}
		w.swap(i, parent)
		i = parent
	}
}

func (w *wedge) pop() {
	last := len(w.vals) - 1
	w.swap(0, last)
	w.vals, w.ends = w.vals[:last], w.ends[:last]
	i := 0
	for {
		kid := 2*i + 1
		if kid >= last {
			return
		}
		if kid+1 < last && w.before(kid+1, kid) {
			kid++
		}
		if !w.before(kid, i) {
			return
		}
		w.swap(i, kid)
		i = kid
	}
}
