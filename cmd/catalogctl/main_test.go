package main

import (
	"path/filepath"
	"strings"
	"testing"

	"tempagg"
)

func newDB(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	if err := tempagg.WriteRelation(filepath.Join(dir, "Employed.rel"), tempagg.Employed()); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestList(t *testing.T) {
	dir := newDB(t)
	var b strings.Builder
	if err := run([]string{"-db", dir, "list"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Employed") || !strings.Contains(b.String(), "4") {
		t.Fatalf("list output:\n%s", b.String())
	}
}

func TestDeclarePersists(t *testing.T) {
	dir := newDB(t)
	var b strings.Builder
	err := run([]string{"-db", dir, "declare", "-name", "Employed",
		"-kbound", "4", "-comment", "HR"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	b.Reset()
	if err := run([]string{"-db", dir, "list"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "HR") {
		t.Fatalf("declaration not persisted:\n%s", b.String())
	}
}

func TestErrors(t *testing.T) {
	var b strings.Builder
	if err := run(nil, &b); err == nil {
		t.Error("missing -db must fail")
	}
	dir := newDB(t)
	if err := run([]string{"-db", dir}, &b); err == nil {
		t.Error("missing subcommand must fail")
	}
	if err := run([]string{"-db", dir, "bogus"}, &b); err == nil {
		t.Error("unknown subcommand must fail")
	}
	if err := run([]string{"-db", dir, "declare"}, &b); err == nil {
		t.Error("declare without -name must fail")
	}
	if err := run([]string{"-db", dir, "declare", "-name", "Nope"}, &b); err == nil {
		t.Error("declare unknown relation must fail")
	}
}
