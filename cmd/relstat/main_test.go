package main

import (
	"path/filepath"
	"strings"
	"testing"

	"tempagg"
)

func TestRelstat(t *testing.T) {
	path := filepath.Join(t.TempDir(), "emp.rel")
	rel := tempagg.Employed()
	if err := tempagg.WriteRelation(path, rel); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := run([]string{"-relation", path, "-k", "4"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"tuples:             4",
		"sorted:             false",
		"constant intervals: 7",
		"exact duplicates:   0",
		"k-ordered-pct(k=4)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRelstatSorted(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sorted.rel")
	rel := tempagg.Employed()
	rel.SortByTime()
	if err := tempagg.WriteRelation(path, rel); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := run([]string{"-relation", path}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "k-orderedness:      0") {
		t.Fatalf("sorted relation not reported 0-ordered:\n%s", b.String())
	}
}

func TestRelstatErrors(t *testing.T) {
	var b strings.Builder
	if err := run(nil, &b); err == nil {
		t.Error("missing -relation must fail")
	}
	if err := run([]string{"-relation", "/nonexistent.rel"}, &b); err == nil {
		t.Error("missing file must fail")
	}
}
