// Command tempagglint runs the domain-aware static-analysis suite over
// tempagg packages and exits non-zero if any invariant the paper's
// algorithms depend on is violated.
//
// Usage:
//
//	go run ./cmd/tempagglint ./...
//	go run ./cmd/tempagglint -enable errdrop,nodebytes ./internal/bench
//	go run ./cmd/tempagglint -list
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
//
// The five analyzers (see internal/lint):
//
//   - intervalbounds — raw tuple.Tuple/interval.Interval literals that
//     bypass the validating constructors
//   - finishonce — Evaluator reuse after Finish (-strict-stats extends the
//     check to Stats calls)
//   - errdrop — discarded error results from tempagg APIs, goroutine
//     bodies included
//   - nodebytes — hardcoded 16 in memory accounting instead of
//     core.NodeBytes
//   - lockcopy — by-value copies of lock- or tree-holding structs
//
// Suppress a single finding with a justified directive on or directly
// above the flagged line:
//
//	//tempagglint:ignore errdrop best-effort cache warm-up, failure is benign
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"tempagg/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("tempagglint", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		list        = fs.Bool("list", false, "list the analyzers and exit")
		enable      = fs.String("enable", "", "comma-separated analyzer names to run (default: all)")
		tests       = fs.Bool("tests", true, "analyze _test.go files and external test packages too")
		strictStats = fs.Bool("strict-stats", false, "finishonce: also flag Stats calls after Finish")
		dir         = fs.String("C", "", "change to this directory before loading (like go -C)")
	)
	fs.Usage = func() {
		fmt.Fprintln(errOut, "usage: tempagglint [flags] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.Analyzers(lint.Config{StrictStats: *strictStats})
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(out, "%-15s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *enable != "" {
		selected, err := selectAnalyzers(analyzers, *enable)
		if err != nil {
			fmt.Fprintln(errOut, "tempagglint:", err)
			return 2
		}
		analyzers = selected
	}

	prog, err := lint.Load(lint.LoadOptions{Dir: *dir, Tests: *tests}, fs.Args()...)
	if err != nil {
		fmt.Fprintln(errOut, "tempagglint:", err)
		return 2
	}
	diags, err := lint.Run(prog, analyzers)
	if err != nil {
		fmt.Fprintln(errOut, "tempagglint:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(out, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(errOut, "tempagglint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

func selectAnalyzers(all []*lint.Analyzer, csv string) ([]*lint.Analyzer, error) {
	byName := map[string]*lint.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var selected []*lint.Analyzer
	for _, name := range strings.Split(csv, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (try -list)", name)
		}
		selected = append(selected, a)
	}
	if len(selected) == 0 {
		return nil, fmt.Errorf("-enable selected no analyzers")
	}
	return selected, nil
}
