package relation

import (
	"fmt"
	"io"
	"math/rand"
	"os"

	"tempagg/internal/tuple"
)

// WriteFile stores the relation at path in the paged binary format. The
// sorted flag is recorded in the header so later scans (and the query
// optimizer) can exploit it without re-checking.
func WriteFile(path string, r *Relation) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("relation: %w", err)
	}
	defer f.Close()
	if err := Write(f, r); err != nil {
		return err
	}
	return f.Close()
}

// Write streams the relation to w in the paged binary format.
func Write(w io.Writer, r *Relation) error {
	h := header{version: formatVersion, count: uint64(len(r.Tuples))}
	if r.IsSorted() {
		h.flags |= FlagSorted
	}
	if _, err := w.Write(h.encode()); err != nil {
		return fmt.Errorf("relation: write header: %w", err)
	}
	page := make([]byte, PageSize)
	inPage := 0
	for i, t := range r.Tuples {
		if err := encodeRecord(page[inPage*RecordSize:], t); err != nil {
			return fmt.Errorf("relation: tuple %d: %w", i, err)
		}
		inPage++
		if inPage == RecordsPerPage {
			if _, err := w.Write(page); err != nil {
				return fmt.Errorf("relation: write page: %w", err)
			}
			inPage = 0
		}
	}
	if inPage > 0 {
		if _, err := w.Write(page[:inPage*RecordSize]); err != nil {
			return fmt.Errorf("relation: write page: %w", err)
		}
	}
	return nil
}

// ScanOptions configures a Scanner.
type ScanOptions struct {
	// RandomizePages visits pages in a pseudo-random order instead of
	// sequentially. This implements the paper's future-work idea (§7) of
	// randomizing the relation's pages as they are read so a sorted relation
	// does not linearize the aggregation tree; within a page tuples are also
	// shuffled.
	RandomizePages bool
	// Seed drives the page permutation when RandomizePages is set.
	Seed int64
}

// Scanner reads a relation file one page at a time — the paper's "single
// segmented scan of the input relation" (§6). Tuma's algorithm performs two
// passes by calling Reset between them.
type Scanner struct {
	f        *os.File
	opts     ScanOptions
	hdr      header
	order    []int // page visit order
	pages    int
	pageIdx  int // index into order
	page     []byte
	inPage   int   // records decoded from current page
	pageRecs int   // records in current page
	perm     []int // record order within current page
	read     uint64
	passes   int
}

// Open opens path for scanning.
func Open(path string, opts ScanOptions) (*Scanner, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("relation: %w", err)
	}
	s := &Scanner{f: f, opts: opts, page: make([]byte, PageSize)}
	if err := s.init(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

func (s *Scanner) init() error {
	buf := make([]byte, HeaderSize)
	if _, err := io.ReadFull(s.f, buf); err != nil {
		return fmt.Errorf("relation: read header: %w", err)
	}
	h, err := decodeHeader(buf)
	if err != nil {
		return err
	}
	s.hdr = h
	s.pages = int((h.count + uint64(RecordsPerPage) - 1) / uint64(RecordsPerPage))
	fi, err := s.f.Stat()
	if err != nil {
		return fmt.Errorf("relation: stat: %w", err)
	}
	want := int64(HeaderSize) + int64(h.count)*RecordSize
	if fi.Size() < want {
		return fmt.Errorf("relation: truncated file: header promises %d tuples (%d bytes), file has %d bytes",
			h.count, want, fi.Size())
	}
	s.buildOrder()
	s.passes = 1
	return nil
}

func (s *Scanner) buildOrder() {
	s.order = make([]int, s.pages)
	for i := range s.order {
		s.order[i] = i
	}
	if s.opts.RandomizePages {
		r := rand.New(rand.NewSource(s.opts.Seed))
		r.Shuffle(len(s.order), func(i, j int) {
			s.order[i], s.order[j] = s.order[j], s.order[i]
		})
	}
	s.pageIdx = 0
	s.inPage = 0
	s.pageRecs = 0
	s.read = 0
}

// Count is the number of tuples the file holds.
func (s *Scanner) Count() int { return int(s.hdr.count) }

// Sorted reports the header's sorted flag.
func (s *Scanner) Sorted() bool { return s.hdr.flags&FlagSorted != 0 }

// Passes reports how many scans of the relation have been started — 1 for
// the single-scan algorithms, 2 for Tuma's two-pass baseline.
func (s *Scanner) Passes() int { return s.passes }

// Reset rewinds the scanner to the first tuple, starting another full pass.
func (s *Scanner) Reset() error {
	s.buildOrder()
	s.passes++
	return nil
}

// Next returns the next tuple. ok is false at the end of the relation.
func (s *Scanner) Next() (t tuple.Tuple, ok bool, err error) {
	if s.inPage >= s.pageRecs {
		if err := s.loadPage(); err != nil {
			if err == io.EOF {
				return tuple.Tuple{}, false, nil
			}
			return tuple.Tuple{}, false, err
		}
	}
	rec := s.inPage
	if s.perm != nil {
		rec = s.perm[s.inPage]
	}
	t, err = decodeRecord(s.page[rec*RecordSize:])
	if err != nil {
		return tuple.Tuple{}, false, fmt.Errorf("relation: record %d: %w", s.read, err)
	}
	s.inPage++
	s.read++
	return t, true, nil
}

func (s *Scanner) loadPage() error {
	if s.pageIdx >= len(s.order) {
		return io.EOF
	}
	pageNo := s.order[s.pageIdx]
	s.pageIdx++
	recs := RecordsPerPage
	if rem := int(s.hdr.count) - pageNo*RecordsPerPage; rem < recs {
		recs = rem
	}
	off := int64(HeaderSize) + int64(pageNo)*PageSize
	if _, err := s.f.ReadAt(s.page[:recs*RecordSize], off); err != nil {
		return fmt.Errorf("relation: read page %d: %w", pageNo, err)
	}
	s.pageRecs = recs
	s.inPage = 0
	if s.opts.RandomizePages {
		r := rand.New(rand.NewSource(s.opts.Seed ^ int64(pageNo+1)))
		s.perm = r.Perm(recs)
	}
	return nil
}

// Close releases the underlying file.
func (s *Scanner) Close() error { return s.f.Close() }

// ReadFile loads an entire relation file into memory, in physical order.
func ReadFile(path string) (*Relation, error) {
	s, err := Open(path, ScanOptions{})
	if err != nil {
		return nil, err
	}
	defer s.Close()
	r := New(path)
	r.Tuples = make([]tuple.Tuple, 0, s.Count())
	for {
		t, ok, err := s.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		r.Append(t)
	}
	return r, nil
}
