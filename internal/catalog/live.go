// Live-relation registry: the catalog half of the S36 snapshot protocol.
// A live relation is a shared core.LiveEvaluator registered under a name —
// writers append through LiveIngest while SELECT ... LIVE readers acquire
// consistent epochs through AcquireLiveSnapshot, with a refcount tracking
// outstanding leases. Live relations are in-memory only: they are not
// persisted to catalog.json and do not survive a restart.
package catalog

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"tempagg/internal/core"
	"tempagg/internal/obs"
	"tempagg/internal/query"
	"tempagg/internal/tuple"
)

// liveRelation is one registered live evaluator plus its lease bookkeeping.
type liveRelation struct {
	name string
	ev   *core.LiveEvaluator
	// readers counts outstanding snapshot leases: acquired snapshots whose
	// release has not run yet.
	readers atomic.Int64
	// segments remembers the last published sealed-segment count so the
	// gauge hook can emit seal deltas as a counter.
	segments atomic.Int64
}

// SetLiveMetrics installs the metric set live relations publish into:
// epoch gauges on every ingest, seal and ingest counters, reader leases,
// and snapshot-read counts. Safe to call while ingestion runs; a nil m
// (or never calling this) disables publication.
func (c *Catalog) SetLiveMetrics(m *obs.Metrics) {
	c.liveMetrics.Store(m)
}

// liveM returns the installed metric set; its methods are nil-safe.
func (c *Catalog) liveM() *obs.Metrics { return c.liveMetrics.Load() }

// RegisterLive creates and registers a live relation. The name must not
// collide with a file relation or an existing live relation.
func (c *Catalog) RegisterLive(name string, opts core.LiveOptions) (*core.LiveEvaluator, error) {
	if name == "" {
		return nil, fmt.Errorf("catalog: live relation needs a name")
	}
	c.mu.RLock()
	_, isFile := c.entries[name]
	c.mu.RUnlock()
	if isFile {
		return nil, fmt.Errorf("catalog: relation %q already exists as a file relation", name)
	}
	c.liveMu.Lock()
	defer c.liveMu.Unlock()
	if _, ok := c.lives[name]; ok {
		return nil, fmt.Errorf("catalog: live relation %q already registered", name)
	}
	lr := &liveRelation{name: name, ev: core.NewLive(opts)}
	lr.ev.SetGaugeHook(func(g core.LiveGauges) {
		m := c.liveM()
		m.LiveEpoch(name, g.Seq, g.Segments, g.Tail)
		if prev := lr.segments.Swap(int64(g.Segments)); int64(g.Segments) > prev {
			m.LiveSealed(name, int64(g.Segments)-prev)
		}
	})
	if c.lives == nil {
		c.lives = map[string]*liveRelation{}
	}
	c.lives[name] = lr
	return lr.ev, nil
}

// EnsureLive returns the named live relation's evaluator, registering it
// with opts on first use — the auto-register path behind the server's
// INGEST command.
func (c *Catalog) EnsureLive(name string, opts core.LiveOptions) (*core.LiveEvaluator, error) {
	c.liveMu.RLock()
	lr, ok := c.lives[name]
	c.liveMu.RUnlock()
	if ok {
		return lr.ev, nil
	}
	ev, err := c.RegisterLive(name, opts)
	if err != nil {
		// Lost a registration race: someone else created it between the
		// read and the write lock. Return theirs.
		c.liveMu.RLock()
		lr, ok = c.lives[name]
		c.liveMu.RUnlock()
		if ok {
			return lr.ev, nil
		}
		return nil, err
	}
	return ev, nil
}

// live resolves a registered live relation.
func (c *Catalog) live(name string) (*liveRelation, error) {
	c.liveMu.RLock()
	defer c.liveMu.RUnlock()
	lr, ok := c.lives[name]
	if !ok {
		return nil, fmt.Errorf("catalog: live relation %q not registered", name)
	}
	return lr, nil
}

// LiveIngest appends tuples to a live relation. Concurrent callers are
// serialized by the evaluator; snapshot readers are never blocked.
func (c *Catalog) LiveIngest(name string, ts []tuple.Tuple) error {
	lr, err := c.live(name)
	if err != nil {
		return err
	}
	if err := lr.ev.AddBatch(ts); err != nil {
		return err
	}
	c.liveM().LiveIngested(name, len(ts))
	return nil
}

// AcquireLiveSnapshot takes a consistent epoch of the named live relation
// and leases it to the caller: the reader-count gauge moves up until the
// returned release runs. Release is idempotent and must be called; reads
// through the snapshot stay valid after release (and after Close), release
// only returns the lease.
func (c *Catalog) AcquireLiveSnapshot(name string) (*core.LiveSnapshot, func(), error) {
	lr, err := c.live(name)
	if err != nil {
		return nil, nil, err
	}
	snap, err := lr.ev.Snapshot()
	if err != nil {
		return nil, nil, err
	}
	lr.readers.Add(1)
	m := c.liveM()
	m.LiveReaders(name, 1)
	m.LiveSnapshotRead(name)
	var once sync.Once
	release := func() {
		once.Do(func() {
			lr.readers.Add(-1)
			c.liveM().LiveReaders(name, -1)
		})
	}
	return snap, release, nil
}

// LiveReaders reports a live relation's outstanding snapshot leases.
func (c *Catalog) LiveReaders(name string) (int64, error) {
	lr, err := c.live(name)
	if err != nil {
		return 0, err
	}
	return lr.readers.Load(), nil
}

// LiveNames lists the registered live relations, sorted.
func (c *Catalog) LiveNames() []string {
	c.liveMu.RLock()
	defer c.liveMu.RUnlock()
	names := make([]string, 0, len(c.lives))
	for n := range c.lives {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// DropLive closes and unregisters a live relation. Ingest and new
// snapshots fail afterwards; snapshots already held stay readable.
func (c *Catalog) DropLive(name string) error {
	c.liveMu.Lock()
	lr, ok := c.lives[name]
	delete(c.lives, name)
	c.liveMu.Unlock()
	if !ok {
		return fmt.Errorf("catalog: live relation %q not registered", name)
	}
	return lr.ev.Close()
}

// executeLive serves a SELECT ... LIVE query: acquire an epoch, evaluate
// every aggregate of the select list against it, release the lease.
func (c *Catalog) executeLive(q *query.Query, tr *obs.QueryTrace) (*query.QueryResult, error) {
	snap, release, err := c.AcquireLiveSnapshot(q.Relation)
	if err != nil {
		return nil, err
	}
	defer release()
	// The epoch seqno is the live relation's version: ingestion advances
	// it, so cached answers from older epochs are structurally unreachable
	// and age out of the LRU (cache.go).
	rc := c.results.Load()
	if rc == nil || !cacheable(q) {
		return query.ExecuteLive(q, snap, tr)
	}
	version := fmt.Sprintf("epoch:%d", snap.Seq())
	if qr, ok := c.serveCached(rc, q, version, tr); ok {
		return qr, nil
	}
	qr, err := query.ExecuteLive(q, snap, tr)
	if err == nil {
		c.storeResults(rc, q, version, qr)
	}
	return qr, err
}
