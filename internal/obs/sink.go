package obs

import "time"

// Sink receives low-level evaluator events from internal/core. It is the
// only observability type core depends on; everything else in this package
// sits above the query layer. Implementations must be safe for concurrent
// use — the server runs one evaluator set per connection.
//
// A nil Sink disables instrumentation: core checks the interface for nil
// once per evaluator and keeps a nil EvalSink handle, so the per-tuple cost
// of disabled observability is a single pointer comparison.
type Sink interface {
	// Evaluator returns the event handle for one evaluator run of the named
	// algorithm (the core.Algorithm String form). Resolving the handle once
	// per evaluator keeps label lookups out of the per-tuple path.
	Evaluator(algorithm string) EvalSink
	// Flush delivers any buffered events. Implementations that write
	// asynchronously must report delivery failures here; callers must not
	// drop the error (tempagglint's errdrop analyzer enforces this for all
	// tempagg APIs, this one included).
	Flush() error
}

// EvalSink receives the per-evaluator events behind the paper's §6 cost
// model. Methods must be cheap: they sit on the Add hot path.
type EvalSink interface {
	// TuplesProcessed counts tuples absorbed (core.Stats.Tuples).
	TuplesProcessed(n int)
	// NodesAllocated counts structure nodes created, including the initial
	// root/universe leaf (cumulative; core.Stats.LiveNodes + Collected).
	NodesAllocated(n int)
	// NodesCollected counts nodes reclaimed by garbage collection
	// (core.Stats.Collected; k-ordered tree only).
	NodesCollected(n int)
	// PeakNodes reports a high-water mark of live nodes
	// (core.Stats.PeakNodes); the sink keeps the maximum it has seen.
	PeakNodes(n int)
	// GCThreshold reports the latest garbage-collection watermark — the
	// instant below which every constant interval has been emitted (§5.3).
	GCThreshold(t int64)
	// ArenaRelease reports one evaluator teardown of the slab arena
	// (internal/core/arena.go): slabs returned to the shared pool and nodes
	// that were served from the arena free list over the run.
	ArenaRelease(slabs, reusedNodes int)
	// Sweep reports one columnar-sweep run (internal/core/sweep.go): delta
	// events materialized, non-trivial radix scatter passes, and tree
	// fallbacks taken by the MIN/MAX wedge (0 or 1 per run). Called once at
	// Finish, off the per-tuple path.
	Sweep(events, radixPasses, fallbacks int)
	// SweepParallel reports one sweep scan's parallelism: worker goroutines
	// resolved and chunks the event stream was cut into (1 and 1 for a
	// serial run). Called once at Finish alongside Sweep. Worker counts are
	// recorded as one histogram observation per scan, so concurrent queries
	// with different parallelism never overwrite each other.
	SweepParallel(workers, chunks int)
	// SweepShared reports one shared multi-query pass (core.SweepGroup)
	// serving n registered queries. Called once at the group's Finish.
	SweepShared(queries int)
	// IndexBuild reports one interval-index construction (S37): segment-tree
	// node slots materialized and tuples indexed. Called once per build.
	IndexBuild(nodes, tuples int)
	// IndexLookup reports one index-served range or point lookup and the
	// node-partial merges performed to answer it — the lookup's cost in the
	// paper's §6 currency.
	IndexLookup(merges int)
}

// Metric names exported by Metrics. Each maps to a §6 cost-model quantity;
// see the README's Observability section for the full table.
const (
	MetricTuplesProcessed = "tempagg_tuples_processed_total"
	MetricNodesAllocated  = "tempagg_tree_nodes_allocated_total"
	MetricNodesCollected  = "tempagg_tree_nodes_collected_total"
	MetricPeakNodes       = "tempagg_tree_nodes_peak"
	MetricGCThreshold     = "tempagg_gc_threshold_time"
	MetricArenaSlabs      = "tempagg_arena_slabs_recycled_total"
	MetricArenaReused     = "tempagg_arena_nodes_reused_total"
	MetricSweepEvents     = "tempagg_sweep_events_total"
	MetricSweepRadix      = "tempagg_sweep_radix_passes_total"
	MetricSweepFallbacks  = "tempagg_sweep_fallbacks_total"
	MetricSweepWorkers    = "tempagg_sweep_parallel_workers"
	MetricSweepChunks     = "tempagg_sweep_chunks_total"
	MetricSweepShared     = "tempagg_sweep_shared_queries_total"
	MetricQueries         = "tempagg_queries_total"
	MetricQueryDuration   = "tempagg_query_duration_seconds"
	MetricSlowQueries     = "tempagg_slow_queries_total"
	MetricSlowLogErrors   = "tempagg_slowlog_write_errors_total"
)

// Interval-index and result-cache metric names (S37). Index metrics carry
// the algorithm label like every evaluator metric; the result cache is one
// catalog-wide structure and its counters are unlabelled.
const (
	MetricIndexNodes           = "tempagg_index_nodes"
	MetricIndexLookups         = "tempagg_index_lookups_total"
	MetricIndexMerges          = "tempagg_index_partial_merges_total"
	MetricResultCacheHits      = "tempagg_result_cache_hits_total"
	MetricResultCacheMisses    = "tempagg_result_cache_misses_total"
	MetricResultCacheEvictions = "tempagg_result_cache_evictions_total"
)

// Live-relation metric names (S36). All are labelled by relation: one live
// evaluator per registered relation, shared by every writer and reader.
const (
	MetricLiveEpochSeq      = "tempagg_live_epoch_seq"
	MetricLiveSegments      = "tempagg_live_sealed_segments"
	MetricLiveTail          = "tempagg_live_tail_tuples"
	MetricLiveReaders       = "tempagg_live_readers"
	MetricLiveIngested      = "tempagg_live_tuples_ingested_total"
	MetricLiveSealed        = "tempagg_live_segments_sealed_total"
	MetricLiveSnapshotReads = "tempagg_live_snapshot_reads_total"
)

// DefaultDurationBuckets are the query-latency histogram bounds, in
// seconds: wide enough for a 64K-tuple linked-list run (the paper's worst
// case, ~minutes in 1995, ~seconds today) and fine enough for the tree
// algorithms' sub-millisecond runs.
var DefaultDurationBuckets = []float64{
	1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1, 5, 30,
}

// WorkerBuckets are the sweep-parallelism histogram bounds: power-of-two
// worker counts up to one beyond any GOMAXPROCS the bench fleet uses.
var WorkerBuckets = []float64{1, 2, 4, 8, 16, 32, 64}

// Metrics is the pipeline's metric set over a Registry. It implements Sink
// for core evaluators and records query-level outcomes for the query layer.
type Metrics struct {
	reg *Registry

	tuples      *CounterVec   // by algorithm
	nodesAlloc  *CounterVec   // by algorithm
	nodesColl   *CounterVec   // by algorithm
	peakNodes   *GaugeVec     // by algorithm, max semantics
	gcThreshold *GaugeVec     // by algorithm, last value
	arenaSlabs  *CounterVec   // by algorithm
	arenaReused *CounterVec   // by algorithm
	sweepEvents *CounterVec   // by algorithm
	sweepRadix  *CounterVec   // by algorithm
	sweepFalls  *CounterVec   // by algorithm
	sweepWork   *HistogramVec // by algorithm, workers per sweep scan
	sweepChunks *CounterVec   // by algorithm
	sweepShared *CounterVec   // by algorithm
	queries     *CounterVec   // by algorithm, status
	duration    *HistogramVec // by algorithm
	slow        *Counter
	slowErrs    *Counter

	idxNodes   *GaugeVec   // by algorithm, max over builds
	idxLookups *CounterVec // by algorithm
	idxMerges  *CounterVec // by algorithm
	cacheHits  *Counter
	cacheMiss  *Counter
	cacheEvict *Counter

	liveSeq      *GaugeVec   // by relation, last published epoch
	liveSegments *GaugeVec   // by relation
	liveTail     *GaugeVec   // by relation
	liveReaders  *GaugeVec   // by relation, outstanding snapshot leases
	liveIngested *CounterVec // by relation
	liveSealed   *CounterVec // by relation
	liveReads    *CounterVec // by relation
}

var _ Sink = (*Metrics)(nil)

// NewMetrics registers the tempagg metric families on reg and returns the
// recording front-end.
func NewMetrics(reg *Registry) *Metrics {
	return &Metrics{
		reg: reg,
		tuples: reg.CounterVec(MetricTuplesProcessed,
			"Tuples absorbed by evaluators (core.Stats.Tuples).", "algorithm"),
		nodesAlloc: reg.CounterVec(MetricNodesAllocated,
			"Structure nodes allocated, 16 bytes each per the paper's cost model (core.NodeBytes).", "algorithm"),
		nodesColl: reg.CounterVec(MetricNodesCollected,
			"Structure nodes reclaimed by garbage collection (k-ordered tree, paper Fig. 5).", "algorithm"),
		peakNodes: reg.GaugeVec(MetricPeakNodes,
			"High-water mark of live structure nodes across evaluator runs (paper Fig. 9).", "algorithm"),
		gcThreshold: reg.GaugeVec(MetricGCThreshold,
			"Latest garbage-collection watermark: instants below it are fully emitted (paper 5.3).", "algorithm"),
		arenaSlabs: reg.CounterVec(MetricArenaSlabs,
			"Node slabs returned to the shared arena pool at evaluator teardown (S32).", "algorithm"),
		arenaReused: reg.CounterVec(MetricArenaReused,
			"Nodes served from the arena free list instead of fresh slab space (k-ordered GC reuse).", "algorithm"),
		sweepEvents: reg.CounterVec(MetricSweepEvents,
			"Delta events materialized by the columnar sweep evaluator (S33).", "algorithm"),
		sweepRadix: reg.CounterVec(MetricSweepRadix,
			"Non-trivial LSD radix scatter passes performed by the sweep's event sort.", "algorithm"),
		sweepFalls: reg.CounterVec(MetricSweepFallbacks,
			"Sweep runs that fell back to the aggregation tree (MIN/MAX wedge overflow).", "algorithm"),
		sweepWork: reg.HistogramVec(MetricSweepWorkers,
			"Distribution of worker goroutines resolved per sweep scan (1 when serial). "+
				"A histogram rather than a gauge: concurrent queries would race a last-write-wins gauge.",
			WorkerBuckets, "algorithm"),
		sweepChunks: reg.CounterVec(MetricSweepChunks,
			"Event-stream chunks scanned by the parallel sweep (one per serial run).", "algorithm"),
		sweepShared: reg.CounterVec(MetricSweepShared,
			"Queries served by shared multi-query sweep passes (core.SweepGroup).", "algorithm"),
		queries: reg.CounterVec(MetricQueries,
			"Queries executed, by chosen algorithm and outcome.", "algorithm", "status"),
		duration: reg.HistogramVec(MetricQueryDuration,
			"End-to-end query latency in seconds, by chosen algorithm.",
			DefaultDurationBuckets, "algorithm"),
		slow: reg.Counter(MetricSlowQueries,
			"Queries slower than the slow-query threshold."),
		slowErrs: reg.Counter(MetricSlowLogErrors,
			"Slow-query log lines that failed to write."),
		idxNodes: reg.GaugeVec(MetricIndexNodes,
			"High-water mark of partial-state node slots materialized by one interval-index build (S37).", "algorithm"),
		idxLookups: reg.CounterVec(MetricIndexLookups,
			"Range and point lookups served from the interval index.", "algorithm"),
		idxMerges: reg.CounterVec(MetricIndexMerges,
			"Node-partial merges performed by index lookups (O(k + log n) per lookup).", "algorithm"),
		cacheHits: reg.Counter(MetricResultCacheHits,
			"Range-query results served from the epoch-keyed result cache (S37)."),
		cacheMiss: reg.Counter(MetricResultCacheMisses,
			"Result-cache lookups that had to evaluate."),
		cacheEvict: reg.Counter(MetricResultCacheEvictions,
			"Result-cache entries evicted by the LRU bound."),
		liveSeq: reg.GaugeVec(MetricLiveEpochSeq,
			"Tuples admitted to the live relation at its last published epoch (S36).", "relation"),
		liveSegments: reg.GaugeVec(MetricLiveSegments,
			"Sealed immutable segments held by the live relation.", "relation"),
		liveTail: reg.GaugeVec(MetricLiveTail,
			"Tuples in the live relation's mutable tail (not yet sealed).", "relation"),
		liveReaders: reg.GaugeVec(MetricLiveReaders,
			"Outstanding snapshot leases: readers holding an epoch of the live relation.", "relation"),
		liveIngested: reg.CounterVec(MetricLiveIngested,
			"Tuples ingested into the live relation since registration.", "relation"),
		liveSealed: reg.CounterVec(MetricLiveSealed,
			"Tail segments sealed into the immutable set.", "relation"),
		liveReads: reg.CounterVec(MetricLiveSnapshotReads,
			"Snapshot reads served against the live relation.", "relation"),
	}
}

// Registry returns the registry the metrics record into.
func (m *Metrics) Registry() *Registry { return m.reg }

// Evaluator returns the handle for one evaluator run; see Sink.
func (m *Metrics) Evaluator(algorithm string) EvalSink {
	return &evalSink{
		tuples:      m.tuples.With(algorithm),
		nodesAlloc:  m.nodesAlloc.With(algorithm),
		nodesColl:   m.nodesColl.With(algorithm),
		peakNodes:   m.peakNodes.With(algorithm),
		gcThreshold: m.gcThreshold.With(algorithm),
		arenaSlabs:  m.arenaSlabs.With(algorithm),
		arenaReused: m.arenaReused.With(algorithm),
		sweepEvents: m.sweepEvents.With(algorithm),
		sweepRadix:  m.sweepRadix.With(algorithm),
		sweepFalls:  m.sweepFalls.With(algorithm),
		sweepWork:   m.sweepWork.With(algorithm),
		sweepChunks: m.sweepChunks.With(algorithm),
		sweepShared: m.sweepShared.With(algorithm),
		idxNodes:    m.idxNodes.With(algorithm),
		idxLookups:  m.idxLookups.With(algorithm),
		idxMerges:   m.idxMerges.With(algorithm),
	}
}

// Flush implements Sink. Metrics records synchronously into atomics, so
// there is never anything buffered.
func (m *Metrics) Flush() error { return nil }

// RecordQuery records one finished query: the per-algorithm count (status
// "ok" or "error") and the latency histogram.
func (m *Metrics) RecordQuery(algorithm string, d time.Duration, failed bool) {
	if m == nil {
		return
	}
	status := "ok"
	if failed {
		status = "error"
	}
	m.queries.With(algorithm, status).Inc()
	m.duration.With(algorithm).Observe(d.Seconds())
}

// RecordSlow counts one slow query and, when the structured log write
// failed, the write error — the error is surfaced as a counter rather than
// failing the query that happened to trip the log.
func (m *Metrics) RecordSlow(writeErr error) {
	if m == nil {
		return
	}
	m.slow.Inc()
	if writeErr != nil {
		m.slowErrs.Inc()
	}
}

// ResultCacheHit counts one range query served from the result cache.
func (m *Metrics) ResultCacheHit() {
	if m == nil {
		return
	}
	m.cacheHits.Inc()
}

// ResultCacheMiss counts one result-cache lookup that had to evaluate.
func (m *Metrics) ResultCacheMiss() {
	if m == nil {
		return
	}
	m.cacheMiss.Inc()
}

// ResultCacheEvicted counts entries evicted by the cache's LRU bound.
func (m *Metrics) ResultCacheEvicted(n int) {
	if m == nil || n == 0 {
		return
	}
	m.cacheEvict.Add(int64(n))
}

// LiveEpoch publishes a live relation's current epoch position: tuples
// admitted, sealed segments, and tail watermark.
func (m *Metrics) LiveEpoch(relation string, seq int64, segments, tail int) {
	if m == nil {
		return
	}
	m.liveSeq.With(relation).Set(seq)
	m.liveSegments.With(relation).Set(int64(segments))
	m.liveTail.With(relation).Set(int64(tail))
}

// LiveIngested counts tuples admitted to a live relation.
func (m *Metrics) LiveIngested(relation string, n int) {
	if m == nil {
		return
	}
	m.liveIngested.With(relation).Add(int64(n))
}

// LiveSealed counts tail segments sealed into the immutable set.
func (m *Metrics) LiveSealed(relation string, n int64) {
	if m == nil {
		return
	}
	m.liveSealed.With(relation).Add(n)
}

// LiveSnapshotRead counts one snapshot read served for a live relation.
func (m *Metrics) LiveSnapshotRead(relation string) {
	if m == nil {
		return
	}
	m.liveReads.With(relation).Inc()
}

// LiveReaders moves a live relation's outstanding-lease gauge by delta:
// +1 when a snapshot is acquired, -1 when its release runs.
func (m *Metrics) LiveReaders(relation string, delta int64) {
	if m == nil {
		return
	}
	m.liveReaders.With(relation).Add(delta)
}

// evalSink is the resolved-series handle returned by Metrics.Evaluator.
type evalSink struct {
	tuples      *Counter
	nodesAlloc  *Counter
	nodesColl   *Counter
	peakNodes   *Gauge
	gcThreshold *Gauge
	arenaSlabs  *Counter
	arenaReused *Counter
	sweepEvents *Counter
	sweepRadix  *Counter
	sweepFalls  *Counter
	sweepWork   *Histogram
	sweepChunks *Counter
	sweepShared *Counter
	idxNodes    *Gauge
	idxLookups  *Counter
	idxMerges   *Counter
}

func (s *evalSink) TuplesProcessed(n int) { s.tuples.Add(int64(n)) }
func (s *evalSink) NodesAllocated(n int)  { s.nodesAlloc.Add(int64(n)) }
func (s *evalSink) NodesCollected(n int)  { s.nodesColl.Add(int64(n)) }
func (s *evalSink) PeakNodes(n int)       { s.peakNodes.SetMax(int64(n)) }
func (s *evalSink) GCThreshold(t int64)   { s.gcThreshold.Set(t) }
func (s *evalSink) ArenaRelease(slabs, reusedNodes int) {
	s.arenaSlabs.Add(int64(slabs))
	s.arenaReused.Add(int64(reusedNodes))
}
func (s *evalSink) Sweep(events, radixPasses, fallbacks int) {
	s.sweepEvents.Add(int64(events))
	s.sweepRadix.Add(int64(radixPasses))
	s.sweepFalls.Add(int64(fallbacks))
}
func (s *evalSink) SweepParallel(workers, chunks int) {
	s.sweepWork.Observe(float64(workers))
	s.sweepChunks.Add(int64(chunks))
}
func (s *evalSink) SweepShared(queries int) {
	s.sweepShared.Add(int64(queries))
}
func (s *evalSink) IndexBuild(nodes, tuples int) {
	s.idxNodes.SetMax(int64(nodes))
	s.tuples.Add(int64(tuples))
}
func (s *evalSink) IndexLookup(merges int) {
	s.idxLookups.Inc()
	s.idxMerges.Add(int64(merges))
}
