package relation

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"

	"tempagg/internal/interval"
	"tempagg/internal/tuple"
)

// On-disk layout.
//
// A relation file is a fixed header followed by fixed-width pages of
// 128-byte tuple records, reproducing the paper's physical tuple (§6):
//
//	name      6 bytes, NUL padded
//	value     4 bytes, big-endian int32   (the paper's Salary)
//	start     4 bytes, big-endian uint32
//	end       4 bytes, big-endian uint32  (0xFFFFFFFF encodes ∞)
//	payload 110 bytes, attributes not examined by the aggregate
//
// The header:
//
//	magic     4 bytes  "TAGG"
//	version   2 bytes  big-endian, currently 1
//	flags     2 bytes  bit 0: relation is totally ordered by time
//	count     8 bytes  number of tuple records
//	reserved 16 bytes  zero
const (
	// RecordSize is the paper's 128-byte tuple.
	RecordSize = 128
	// PageSize is the unit of the segmented scan; 64 records per page.
	PageSize = 8192
	// RecordsPerPage is how many tuples one page holds.
	RecordsPerPage = PageSize / RecordSize
	// HeaderSize is the fixed file-header length.
	HeaderSize = 32

	formatVersion = 1

	// FlagSorted marks a file whose tuples are totally ordered by time.
	FlagSorted = 1 << 0

	payloadLen    = RecordSize - tuple.NameLen - 4 - 4 - 4
	foreverOnDisk = math.MaxUint32
)

var magic = [4]byte{'T', 'A', 'G', 'G'}

// header is the decoded file header.
type header struct {
	version uint16
	flags   uint16
	count   uint64
}

func (h header) encode() []byte {
	buf := make([]byte, HeaderSize)
	copy(buf[0:4], magic[:])
	binary.BigEndian.PutUint16(buf[4:6], h.version)
	binary.BigEndian.PutUint16(buf[6:8], h.flags)
	binary.BigEndian.PutUint64(buf[8:16], h.count)
	return buf
}

func decodeHeader(buf []byte) (header, error) {
	if len(buf) < HeaderSize {
		return header{}, fmt.Errorf("relation: short header: %d bytes", len(buf))
	}
	if !bytes.Equal(buf[0:4], magic[:]) {
		return header{}, fmt.Errorf("relation: bad magic %q", buf[0:4])
	}
	h := header{
		version: binary.BigEndian.Uint16(buf[4:6]),
		flags:   binary.BigEndian.Uint16(buf[6:8]),
		count:   binary.BigEndian.Uint64(buf[8:16]),
	}
	if h.version != formatVersion {
		return header{}, fmt.Errorf("relation: unsupported format version %d", h.version)
	}
	return h, nil
}

// encodeTime narrows an in-memory chronon to the 4-byte on-disk timestamp.
func encodeTime(t interval.Time) (uint32, error) {
	if t == interval.Forever {
		return foreverOnDisk, nil
	}
	if t < 0 || t >= foreverOnDisk {
		return 0, fmt.Errorf("relation: timestamp %d does not fit the 4-byte on-disk format", t)
	}
	return uint32(t), nil
}

// decodeTime widens a 4-byte on-disk timestamp.
func decodeTime(u uint32) interval.Time {
	if u == foreverOnDisk {
		return interval.Forever
	}
	return interval.Time(u)
}

// encodeRecord writes t into the 128-byte record at buf.
func encodeRecord(buf []byte, t tuple.Tuple) error {
	if len(buf) < RecordSize {
		return fmt.Errorf("relation: record buffer too small")
	}
	if err := t.Validate(); err != nil {
		return err
	}
	if t.Value < math.MinInt32 || t.Value > math.MaxInt32 {
		return fmt.Errorf("relation: value %d does not fit the 4-byte on-disk format", t.Value)
	}
	start, err := encodeTime(t.Valid.Start)
	if err != nil {
		return err
	}
	end, err := encodeTime(t.Valid.End)
	if err != nil {
		return err
	}
	for i := 0; i < tuple.NameLen; i++ {
		buf[i] = 0
	}
	copy(buf[0:tuple.NameLen], t.Name)
	off := tuple.NameLen
	binary.BigEndian.PutUint32(buf[off:off+4], uint32(int32(t.Value)))
	binary.BigEndian.PutUint32(buf[off+4:off+8], start)
	binary.BigEndian.PutUint32(buf[off+8:off+12], end)
	for i := off + 12; i < RecordSize; i++ {
		buf[i] = 0
	}
	return nil
}

// decodeRecord parses one 128-byte record.
func decodeRecord(buf []byte) (tuple.Tuple, error) {
	if len(buf) < RecordSize {
		return tuple.Tuple{}, fmt.Errorf("relation: short record: %d bytes", len(buf))
	}
	name := buf[0:tuple.NameLen]
	if i := bytes.IndexByte(name, 0); i >= 0 {
		name = name[:i]
	}
	off := tuple.NameLen
	value := int64(int32(binary.BigEndian.Uint32(buf[off : off+4])))
	start := decodeTime(binary.BigEndian.Uint32(buf[off+4 : off+8]))
	end := decodeTime(binary.BigEndian.Uint32(buf[off+8 : off+12]))
	return tuple.New(string(name), value, start, end)
}
