// Partial-state externalization for the interval index (DESIGN.md S37).
//
// The paper's §3 decomposability means a range-restricted aggregate is a
// merge of precomputed partials. IndexPartial is that partial in portable
// form: the (count, sum) counters that reconstitute COUNT/SUM/AVG under
// aggregate.FromCounters plus the wedge extrema that reconstitute MIN/MAX —
// one partial serves all five aggregate kinds, so a single index answers
// every select list. The canonical varint encoding below is the
// serialization format the ROADMAP names as the unlock for result caching,
// spill-to-disk, and distributed scatter/gather: two encoders can never
// disagree on the bytes of the same partial, so encoded partials compare
// and deduplicate byte-wise.
package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"tempagg/internal/aggregate"
)

// IndexPartial is one interval-index node's decomposable partial state
// over the tuples assigned to that node: how many there are, their value
// sum, and their value extrema. The zero IndexPartial is the merge
// identity (no tuples).
type IndexPartial struct {
	// Count is the number of tuples absorbed; 0 means the empty partial
	// and makes the other fields meaningless.
	Count int64
	// Sum is the absorbed values' sum.
	Sum int64
	// Min and Max are the absorbed values' extrema.
	Min int64
	Max int64
}

// add absorbs one tuple's value.
func (p *IndexPartial) add(v int64) {
	if p.Count == 0 {
		*p = IndexPartial{Count: 1, Sum: v, Min: v, Max: v}
		return
	}
	p.Count++
	p.Sum += v
	if v < p.Min {
		p.Min = v
	}
	if v > p.Max {
		p.Max = v
	}
}

// MergePartials combines two partials over disjoint tuple populations. It
// is commutative and associative with the zero IndexPartial as identity —
// the same algebra aggregate.Func.Merge obeys, carried for all five kinds
// at once.
func MergePartials(a, b IndexPartial) IndexPartial {
	if a.Count == 0 {
		return b
	}
	if b.Count == 0 {
		return a
	}
	return IndexPartial{
		Count: a.Count + b.Count,
		Sum:   a.Sum + b.Sum,
		Min:   min(a.Min, b.Min),
		Max:   max(a.Max, b.Max),
	}
}

// State reconstitutes the aggregate.State this partial denotes under f:
// the (count, sum) counters with the extremum matching f's kind. The
// result is indistinguishable from absorbing the partial's tuples into a
// fresh state with f.Add.
func (p IndexPartial) State(f aggregate.Func) aggregate.State {
	var ext int64
	switch f.Kind() {
	case aggregate.Min:
		ext = p.Min
	case aggregate.Max:
		ext = p.Max
	}
	return f.FromCounters(p.Count, p.Sum, ext)
}

// AppendBinary appends the partial's canonical encoding to dst and returns
// the extended slice: the count as an unsigned varint, then — only when
// the partial is non-empty — sum, min, and max as zigzag varints. The
// empty partial is the single byte 0x00. Every partial has exactly one
// encoding; DecodeIndexPartial rejects all others.
func (p IndexPartial) AppendBinary(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(p.Count))
	if p.Count == 0 {
		return dst
	}
	dst = binary.AppendVarint(dst, p.Sum)
	dst = binary.AppendVarint(dst, p.Min)
	dst = binary.AppendVarint(dst, p.Max)
	return dst
}

// DecodeIndexPartial decodes one partial from the front of b, returning it
// and the bytes consumed. It enforces canonical form — minimal varints, no
// trailing counter fields on an empty partial, Min ≤ Max, and a
// single-tuple partial's Sum = Min = Max — so decode(encode(p)) == p and
// re-encoding the decoded partial reproduces the input bytes exactly.
func DecodeIndexPartial(b []byte) (IndexPartial, int, error) {
	count, n, err := decodeUvarint(b)
	if err != nil {
		return IndexPartial{}, 0, fmt.Errorf("core: partial count: %w", err)
	}
	if count > math.MaxInt64 {
		return IndexPartial{}, 0, fmt.Errorf("core: partial count %d overflows int64", count)
	}
	if count == 0 {
		return IndexPartial{}, n, nil
	}
	p := IndexPartial{Count: int64(count)}
	off := n
	for _, field := range []struct {
		name string
		dst  *int64
	}{{"sum", &p.Sum}, {"min", &p.Min}, {"max", &p.Max}} {
		v, n, err := decodeVarint(b[off:])
		if err != nil {
			return IndexPartial{}, 0, fmt.Errorf("core: partial %s: %w", field.name, err)
		}
		*field.dst = v
		off += n
	}
	if p.Min > p.Max {
		return IndexPartial{}, 0, fmt.Errorf("core: partial min %d > max %d", p.Min, p.Max)
	}
	if p.Count == 1 && (p.Sum != p.Min || p.Min != p.Max) {
		return IndexPartial{}, 0, fmt.Errorf("core: single-tuple partial with sum %d, min %d, max %d", p.Sum, p.Min, p.Max)
	}
	return p, off, nil
}

// decodeUvarint reads one minimally-encoded unsigned varint. A non-minimal
// encoding — one whose final byte is a zero continuation pad — is rejected
// so each value has exactly one accepted byte form.
func decodeUvarint(b []byte) (uint64, int, error) {
	v, n := binary.Uvarint(b)
	if n == 0 {
		return 0, 0, fmt.Errorf("truncated varint")
	}
	if n < 0 {
		return 0, 0, fmt.Errorf("varint overflows 64 bits")
	}
	if n > 1 && b[n-1] == 0 {
		return 0, 0, fmt.Errorf("non-minimal varint")
	}
	return v, n, nil
}

// decodeVarint is decodeUvarint for zigzag-encoded signed varints.
func decodeVarint(b []byte) (int64, int, error) {
	u, n, err := decodeUvarint(b)
	if err != nil {
		return 0, 0, err
	}
	v := int64(u >> 1)
	if u&1 != 0 {
		v = ^v
	}
	return v, n, nil
}
