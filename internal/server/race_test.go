package server

import (
	"encoding/json"
	"net/http"
	"sync"
	"testing"

	"tempagg/internal/catalog"
)

// TestConcurrentDeclareAndQuery is a race-detector regression test: it
// drives declaration updates (the administration/ingest path) and query
// traffic against one shared catalog at the same time. Before Catalog
// guarded its entries map with an RWMutex, Declare's map write raced with
// the map reads in Query/Info/Entry/Names and `go test -race` failed here.
func TestConcurrentDeclareAndQuery(t *testing.T) {
	srv, addr := startServer(t)
	cat := srv.cat

	const queriers = 4
	const queriesEach = 20
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Administration side: keep re-declaring the relation's bounds and
	// listing names, as tempaggd's operator commands would.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := cat.Declare("Employed", catalog.Entry{KBound: i % 7}); err != nil {
				t.Error(err)
				return
			}
			if len(cat.Names()) != 1 {
				t.Error("catalog lost its relation")
				return
			}
		}
	}()

	// Query side: concurrent clients over the wire, each resolving the
	// relation through the catalog on every request.
	var qwg sync.WaitGroup
	for w := 0; w < queriers; w++ {
		qwg.Add(1)
		go func() {
			defer qwg.Done()
			c, err := Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for i := 0; i < queriesEach; i++ {
				if _, err := c.Query("SELECT COUNT(Name) FROM Employed"); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	qwg.Wait()
	close(stop)
	wg.Wait()

	// The catalog must still be consistent and persistable.
	if _, err := cat.Entry("Employed"); err != nil {
		t.Fatal(err)
	}
	if err := cat.Save(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentTracedQueriesAndScrapes is the race-detector regression for
// the span tree: parallel sweep workers and shared SweepGroup stitches
// attach child spans from their own goroutines while HTTP scrapers read
// /metrics, /debug/traces (which serializes finished span trees), and
// /debug/queries. Span attachment happens under the trace lock at End();
// any unsynchronized touch of Span.Children, Attrs, or Counters fails this
// test under -race.
func TestConcurrentTracedQueriesAndScrapes(t *testing.T) {
	_, _, addr, admin := startObservedServer(t)

	queries := []string{
		// Forced two-worker sweep: per-worker scan spans from two goroutines.
		"EXPLAIN ANALYZE SELECT COUNT(Salary) FROM Employed USING SWEEP 2",
		// Shared SweepGroup: one pass, per-query stitch spans.
		"SELECT COUNT(Salary), SUM(Salary), AVG(Salary) FROM Employed USING SWEEP 2",
		"EXPLAIN SELECT COUNT(Salary) FROM Employed",
	}

	stop := make(chan struct{})
	var scrapers sync.WaitGroup
	for _, ep := range []string{"/metrics", "/debug/traces", "/debug/queries"} {
		scrapers.Add(1)
		go func(url string) {
			defer scrapers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(url)
				if err != nil {
					t.Error(err)
					return
				}
				var v any
				if resp.Header.Get("Content-Type") == "application/json" {
					// Decoding proves the trace serialization is complete,
					// not just non-racy.
					if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
						t.Errorf("GET %s: bad JSON: %v", url, err)
					}
				}
				resp.Body.Close()
			}
		}(admin.URL + ep)
	}

	const workers = 4
	const rounds = 15
	var qwg sync.WaitGroup
	for w := 0; w < workers; w++ {
		qwg.Add(1)
		go func() {
			defer qwg.Done()
			c, err := Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for i := 0; i < rounds; i++ {
				for _, sql := range queries {
					resp, err := c.Query(sql)
					if err != nil || !resp.OK {
						t.Errorf("query %q: %+v, %v", sql, resp, err)
						return
					}
				}
			}
		}()
	}
	qwg.Wait()
	close(stop)
	scrapers.Wait()
}
