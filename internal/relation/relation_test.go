package relation

import (
	"testing"

	"tempagg/internal/interval"
	"tempagg/internal/tuple"
)

func TestEmployedFixture(t *testing.T) {
	r := Employed()
	if r.Len() != 4 {
		t.Fatalf("Employed has %d tuples, want 4", r.Len())
	}
	if err := r.Validate(); err != nil {
		t.Fatalf("Employed invalid: %v", err)
	}
	if r.IsSorted() {
		t.Fatal("Employed is in no particular order (paper §5); fixture must not be sorted")
	}
	span, ok := r.Lifespan()
	if !ok || span != interval.MustNew(7, interval.Forever) {
		t.Fatalf("Lifespan = %v, %t; want [7,∞]", span, ok)
	}
}

func TestSortByTime(t *testing.T) {
	r := Employed()
	r.SortByTime()
	if !r.IsSorted() {
		t.Fatal("SortByTime did not sort")
	}
	got := make([]interval.Interval, 0, r.Len())
	for _, tu := range r.Tuples {
		got = append(got, tu.Valid)
	}
	want := []interval.Interval{
		interval.MustNew(7, 12),
		interval.MustNew(8, 20),
		interval.MustNew(18, 21),
		interval.MustNew(18, interval.Forever),
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sorted[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSortIsStable(t *testing.T) {
	r := FromTuples("r", []tuple.Tuple{
		tuple.MustNew("a", 1, 5, 9),
		tuple.MustNew("b", 2, 5, 9),
		tuple.MustNew("c", 3, 1, 2),
	})
	r.SortByTime()
	if r.Tuples[1].Name != "a" || r.Tuples[2].Name != "b" {
		t.Fatalf("stable sort violated: %v", r.Tuples)
	}
}

func TestCloneIsDeep(t *testing.T) {
	r := Employed()
	c := r.Clone()
	c.SortByTime()
	if r.IsSorted() {
		t.Fatal("sorting the clone mutated the original")
	}
	if c.Len() != r.Len() {
		t.Fatal("clone lost tuples")
	}
}

func TestLifespanEmpty(t *testing.T) {
	if _, ok := New("empty").Lifespan(); ok {
		t.Fatal("empty relation must have no lifespan")
	}
}

func TestValidateReportsIndex(t *testing.T) {
	r := New("bad")
	r.Tuples = append(r.Tuples, tuple.MustNew("ok", 0, 0, 1))
	//tempagglint:ignore intervalbounds the test needs an over-wide name to exercise Validate
	r.Tuples = append(r.Tuples, tuple.Tuple{Name: "toolongname", Valid: interval.MustNew(0, 1)})
	err := r.Validate()
	if err == nil {
		t.Fatal("expected validation error")
	}
}
