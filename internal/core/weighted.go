package core

import (
	"fmt"

	"tempagg/internal/interval"
)

// TimeWeightedMean reduces a time-varying aggregate to a single scalar: the
// duration-weighted average of the result's value over a finite window,
// ∫ value(t) dt / |window|. Instants where the aggregate is null (empty
// group under SUM/MIN/MAX/AVG) are excluded from both the integral and the
// denominator; ok is false when the aggregate is null over the whole
// window.
//
// This is an extension beyond the ICDE 1995 paper — a common consumer of
// its constant-interval results (e.g. "average headcount over the year"
// from a COUNT history), computable exactly because the value is piecewise
// constant.
func (r *Result) TimeWeightedMean(window interval.Interval) (mean float64, ok bool, err error) {
	if err := window.Validate(); err != nil {
		return 0, false, err
	}
	if window.End == interval.Forever {
		return 0, false, fmt.Errorf("core: time-weighted mean requires a finite window")
	}
	var integral float64
	var covered float64
	for i, row := range r.Rows {
		iv, overlap := row.Interval.Intersect(window)
		if !overlap {
			continue
		}
		v := r.Value(i)
		if v.Null {
			continue
		}
		d := float64(iv.Duration())
		integral += v.Float * d
		covered += d
	}
	if covered == 0 {
		return 0, false, nil
	}
	return integral / covered, true, nil
}

// Integral is the exact area under the result over a finite window,
// ∫ value(t) dt, with null instants contributing zero.
func (r *Result) Integral(window interval.Interval) (float64, error) {
	if err := window.Validate(); err != nil {
		return 0, err
	}
	if window.End == interval.Forever {
		return 0, fmt.Errorf("core: integral requires a finite window")
	}
	var integral float64
	for i, row := range r.Rows {
		iv, overlap := row.Interval.Intersect(window)
		if !overlap {
			continue
		}
		v := r.Value(i)
		if v.Null {
			continue
		}
		integral += v.Float * float64(iv.Duration())
	}
	return integral, nil
}
