package bench

import (
	"encoding/json"
	"fmt"
	"sort"
)

// This file is the bench regression gate: it diffs a fresh harness run
// against a checked-in baseline report (BENCH_PR4.json and successors) and
// fails when a hot path got slower. Two on-disk shapes are accepted:
//
//   - the harness's own -json output: {"experiments": [{"id", "series":
//     [{"name", "points": [{"size", "value"}]}]}]}
//   - the hand-annotated BENCH_PR<N>.json before/after files: {"experiment",
//     "series": [{"name", "points": [{"size", "after_seconds", ...}]}]},
//     where after_seconds is the measurement of the code as checked in.
//
// Points are matched on (experiment, series, size); only the overlap is
// judged, so a smoke run capped at -max-size 4096 still gates against a
// full-sweep baseline.

// pointKey identifies one measurement across reports.
type pointKey struct {
	Experiment string
	Series     string
	Size       int
}

// baselinePoint carries both shapes' value fields; exactly one is set.
type baselinePoint struct {
	Size         int     `json:"size"`
	Value        float64 `json:"value"`
	AfterSeconds float64 `json:"after_seconds"`
}

type baselineSeries struct {
	Name   string          `json:"name"`
	Points []baselinePoint `json:"points"`
}

// baselineFile is the union of the two report shapes.
type baselineFile struct {
	Experiment  string           `json:"experiment"`
	Series      []baselineSeries `json:"series"`
	Experiments []struct {
		ID     string           `json:"id"`
		Series []baselineSeries `json:"series"`
	} `json:"experiments"`
}

// ParseBaseline reads either report shape into a point map in seconds.
func ParseBaseline(data []byte) (map[pointKey]float64, error) {
	var f baselineFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("bench: baseline: %w", err)
	}
	points := map[pointKey]float64{}
	put := func(experiment string, series []baselineSeries) {
		for _, s := range series {
			for _, p := range s.Points {
				v := p.Value
				if v == 0 {
					v = p.AfterSeconds
				}
				if v > 0 {
					points[pointKey{experiment, s.Name, p.Size}] = v
				}
			}
		}
	}
	put(f.Experiment, f.Series)
	for _, e := range f.Experiments {
		put(e.ID, e.Series)
	}
	if len(points) == 0 {
		return nil, fmt.Errorf("bench: baseline carries no usable points (neither report shape matched)")
	}
	return points, nil
}

// GateResult is the verdict of one regression comparison.
type GateResult struct {
	// Lines describes every compared series, one line each.
	Lines []string
	// Regressions lists the series whose median ratio breached the gate.
	Regressions []string
}

// RegressionGate compares measured figures against a baseline report. For
// each series sharing points with the baseline it computes the median ratio
// of current to baseline seconds across the overlapping sizes — the median
// shrugs off one noisy point, matching how the reports themselves take
// medians across seeds — and flags the series as a regression when that
// median exceeds 1+tolerance. Figures without timing semantics (metric not
// "seconds") and series with no overlap are skipped, not failed.
func RegressionGate(baseline []byte, figures []Figure, tolerance float64) (GateResult, error) {
	base, err := ParseBaseline(baseline)
	if err != nil {
		return GateResult{}, err
	}
	var res GateResult
	for _, fig := range figures {
		if fig.Metric != "seconds" {
			continue
		}
		for _, s := range fig.Series {
			var ratios []float64
			for _, p := range s.Points {
				b, ok := base[pointKey{fig.ID, s.Name, p.Size}]
				if !ok || b <= 0 || p.Value <= 0 {
					continue
				}
				ratios = append(ratios, p.Value/b)
			}
			if len(ratios) == 0 {
				continue
			}
			sort.Float64s(ratios)
			med := ratios[len(ratios)/2]
			line := fmt.Sprintf("%s/%s: median ratio %.2f over %d shared point(s)",
				fig.ID, s.Name, med, len(ratios))
			res.Lines = append(res.Lines, line)
			if med > 1+tolerance {
				res.Regressions = append(res.Regressions,
					fmt.Sprintf("%s (limit %.2f)", line, 1+tolerance))
			}
		}
	}
	if len(res.Lines) == 0 {
		return GateResult{}, fmt.Errorf("bench: no series overlaps the baseline (wrong experiment selected?)")
	}
	return res, nil
}
