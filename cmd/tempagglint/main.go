// Command tempagglint runs the domain-aware static-analysis suite over
// tempagg packages and exits non-zero if any invariant the paper's
// algorithms depend on is violated.
//
// Usage:
//
//	go run ./cmd/tempagglint ./...
//	go run ./cmd/tempagglint -enable errdrop,nodebytes ./internal/bench
//	go run ./cmd/tempagglint -baseline lint_baseline.json ./...
//	go run ./cmd/tempagglint -list
//
// Exit status: 0 clean, 1 findings (or baseline violations), 2 usage,
// load, or suppression-audit failure.
//
// The five syntactic/type analyzers (see internal/lint):
//
//   - intervalbounds — raw tuple.Tuple/interval.Interval literals that
//     bypass the validating constructors
//   - finishonce — Evaluator reuse after Finish (-strict-stats extends the
//     check to Stats calls)
//   - errdrop — discarded error results from tempagg APIs, goroutine
//     bodies included
//   - nodebytes — hardcoded 16 in memory accounting instead of
//     core.NodeBytes
//   - lockcopy — by-value copies of lock- or tree-holding structs
//
// And the five flow-sensitive analyzers built on the CFG/dataflow engine
// (internal/lint/cfg.go, dataflow.go):
//
//   - arenaescape — arena- or pool-backed values used after release or
//     stored somewhere that outlives the evaluation
//   - poolbalance — sync.Pool Get without a Put (or escape) on every
//     path, use after Put, and double Put
//   - atomicmix — fields accessed both through sync/atomic and by plain
//     read/write after publication
//   - unlockpath — mutexes still held on some path out of a function
//   - sinknil — methods called on possibly-nil obs.Sink/obs.EvalSink
//     handles (nil means instrumentation disabled, by contract)
//
// Suppress a single finding with a justified directive on or directly
// above the flagged line:
//
//	//tempagglint:ignore errdrop best-effort cache warm-up, failure is benign
//
// The reason is mandatory — a directive without one is an error — and a
// directive that no longer suppresses anything is reported as stale so
// it gets removed. With -baseline, findings and the ignore count are
// compared against a checked-in budget (lint_baseline.json at the repo
// root): only new findings or ignore-count growth fail, so existing
// debt can be paid down incrementally; -write-baseline regenerates the
// file.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"tempagg/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonDiag is the machine-readable diagnostic shape emitted by -json:
// one array of these on stdout, file paths module-relative.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("tempagglint", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		list          = fs.Bool("list", false, "list the analyzers and exit")
		enable        = fs.String("enable", "", "comma-separated analyzer names to run (default: all)")
		tests         = fs.Bool("tests", true, "analyze _test.go files and external test packages too")
		strictStats   = fs.Bool("strict-stats", false, "finishonce: also flag Stats calls after Finish")
		dir           = fs.String("C", "", "change to this directory before loading (like go -C)")
		jsonOut       = fs.Bool("json", false, "emit diagnostics as a JSON array on stdout")
		baseline      = fs.String("baseline", "", "compare against this baseline file; fail only on new findings or ignore-count growth")
		writeBaseline = fs.String("write-baseline", "", "write the current findings and ignore count to this baseline file and exit")
	)
	fs.Usage = func() {
		fmt.Fprintln(errOut, "usage: tempagglint [flags] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.Analyzers(lint.Config{StrictStats: *strictStats})
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(out, "%-15s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	allAnalyzers := *enable == ""
	if !allAnalyzers {
		selected, err := selectAnalyzers(analyzers, *enable)
		if err != nil {
			fmt.Fprintln(errOut, "tempagglint:", err)
			return 2
		}
		analyzers = selected
	}

	prog, err := lint.Load(lint.LoadOptions{Dir: *dir, Tests: *tests}, fs.Args()...)
	if err != nil {
		fmt.Fprintln(errOut, "tempagglint:", err)
		return 2
	}
	diags, directives, err := lint.RunWithAudit(prog, analyzers)
	if err != nil {
		fmt.Fprintln(errOut, "tempagglint:", err)
		return 2
	}

	// Suppression audit. Reasonless directives are always an error; stale
	// directives (suppressing nothing) only when the full suite ran —
	// under -enable a directive for a disabled analyzer is merely idle.
	audit := 0
	for _, d := range directives {
		if d.Reason == "" {
			fmt.Fprintf(errOut, "%s:%d: tempagglint:ignore without a reason — justify the suppression or remove it\n",
				d.Pos.Filename, d.Pos.Line)
			audit++
		} else if allAnalyzers && *tests && !d.Used {
			fmt.Fprintf(errOut, "%s:%d: stale tempagglint:ignore (%s): it suppresses nothing — remove it\n",
				d.Pos.Filename, d.Pos.Line, strings.Join(d.Analyzers, ","))
			audit++
		}
	}
	if audit > 0 {
		fmt.Fprintf(errOut, "tempagglint: %d suppression audit error(s)\n", audit)
		return 2
	}

	if *writeBaseline != "" {
		b := lint.NewBaseline(diags, len(directives), prog.ModuleDir)
		if err := b.Write(*writeBaseline); err != nil {
			fmt.Fprintln(errOut, "tempagglint:", err)
			return 2
		}
		fmt.Fprintf(errOut, "tempagglint: wrote %s (%d finding(s), %d ignore(s))\n",
			*writeBaseline, len(b.Findings), b.Ignores)
		return 0
	}

	if *jsonOut {
		arr := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			e := lint.EntryFor(d, prog.ModuleDir)
			arr = append(arr, jsonDiag{
				File: e.File, Line: d.Pos.Line, Col: d.Pos.Column,
				Analyzer: d.Analyzer, Message: d.Message,
			})
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(arr); err != nil {
			fmt.Fprintln(errOut, "tempagglint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(out, d)
		}
	}

	if *baseline != "" {
		b, err := lint.ReadBaseline(*baseline)
		if err != nil {
			fmt.Fprintln(errOut, "tempagglint:", err)
			return 2
		}
		delta := b.Compare(diags, len(directives), prog.ModuleDir)
		for _, d := range delta.New {
			fmt.Fprintf(errOut, "NEW %s\n", d)
		}
		if delta.Ignores > delta.BaselineIgnores {
			fmt.Fprintf(errOut, "tempagglint: ignore directives grew from %d to %d — remove suppressions or justify raising the budget via -write-baseline\n",
				delta.BaselineIgnores, delta.Ignores)
		}
		if delta.Fails() {
			fmt.Fprintf(errOut, "tempagglint: %d new finding(s) over baseline\n", len(delta.New))
			return 1
		}
		if delta.Resolved > 0 {
			fmt.Fprintf(errOut, "tempagglint: %d baselined finding(s) resolved — tighten with -write-baseline\n", delta.Resolved)
		}
		return 0
	}

	if len(diags) > 0 {
		fmt.Fprintf(errOut, "tempagglint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

func selectAnalyzers(all []*lint.Analyzer, csv string) ([]*lint.Analyzer, error) {
	byName := map[string]*lint.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var selected []*lint.Analyzer
	for _, name := range strings.Split(csv, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (try -list)", name)
		}
		selected = append(selected, a)
	}
	if len(selected) == 0 {
		return nil, fmt.Errorf("-enable selected no analyzers")
	}
	return selected, nil
}
