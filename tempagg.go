// Package tempagg computes temporal aggregates over interval-stamped
// relations, implementing the algorithms of Nick Kline and Richard T.
// Snodgrass, "Computing Temporal Aggregates", ICDE 1995.
//
// A temporal aggregate grouped by instant asks, for an aggregate function
// such as COUNT or AVG, "what is the value at every point in time?". The
// answer is a sequence of constant intervals — maximal periods over which
// the set of overlapping tuples, and hence the value, does not change —
// each paired with its aggregate value.
//
// Five evaluation strategies are provided:
//
//   - LinkedList — the naive single-scan list of constant intervals (§4.2).
//   - AggregationTree — an unbalanced binary tree of constant intervals,
//     fastest on randomly ordered relations but O(n²) on sorted ones (§5.1).
//   - KOrderedTree — the aggregation tree with garbage collection for
//     k-ordered relations; with k=1 over a sorted relation it is the
//     paper's recommended strategy in both time and space (§5.3, §7).
//   - BalancedTree — the paper's future-work self-balancing variant (§7).
//   - SweepEval — a columnar event sweep: tuples become signed delta
//     events, radix-sorted and merged in one linear scan. The fastest
//     strategy for COUNT/SUM/AVG on unsorted input; MIN/MAX runs through a
//     value-ordered wedge with an aggregation-tree fallback.
//
// plus Tuma's two-pass baseline (§4.1) for comparison, a TSQL2-flavoured
// query language with a §6.3-style optimizer, sortedness metrics
// (k-orderedness and k-ordered-percentage, §5.2), a paged binary storage
// layer, and the paper's synthetic workload generator (§6).
//
// Quick start:
//
//	rel := tempagg.Employed()
//	res, _, err := tempagg.ComputeByInstant(rel, tempagg.Count,
//		tempagg.Spec{Algorithm: tempagg.AggregationTree})
//	// res.Rows: [0,6]→0, [7,7]→1, [8,12]→2, [13,17]→1, [18,20]→3, …
//
// or through the query language:
//
//	qr, err := tempagg.Query("SELECT COUNT(Name) FROM Employed", rel, nil)
package tempagg

import (
	"tempagg/internal/aggregate"
	"tempagg/internal/catalog"
	"tempagg/internal/core"
	"tempagg/internal/interval"
	"tempagg/internal/order"
	"tempagg/internal/query"
	"tempagg/internal/relation"
	"tempagg/internal/server"
	"tempagg/internal/stats"
	"tempagg/internal/tuple"
	"tempagg/internal/workload"
)

// Core model types.
type (
	// Time is a chronon, a discrete instant on the time-line.
	Time = interval.Time
	// Interval is a closed interval [Start, End] of chronons.
	Interval = interval.Interval
	// Tuple is an interval-stamped fact: Name, Value, and valid time.
	Tuple = tuple.Tuple
	// Relation is an ordered collection of tuples.
	Relation = relation.Relation
	// AggregateKind selects COUNT, SUM, AVG, MIN, or MAX.
	AggregateKind = aggregate.Kind
	// AggregateValue is one finalized aggregate result.
	AggregateValue = aggregate.Value
	// Result is the time-varying aggregate: constant intervals with values.
	Result = core.Result
	// Row is one constant interval of a Result.
	Row = core.Row
	// Stats reports an evaluation's work and space counters.
	Stats = core.Stats
	// Algorithm names an evaluation strategy.
	Algorithm = core.Algorithm
	// Spec selects and parameterizes an algorithm.
	Spec = core.Spec
	// Evaluator is the incremental single-scan evaluation interface.
	Evaluator = core.Evaluator
	// TupleSource is a rescannable tuple stream (for the Tuma baseline).
	TupleSource = core.TupleSource
	// QueryResult is the outcome of a query-language execution.
	QueryResult = query.QueryResult
	// RelationInfo is optimizer metadata for query planning.
	RelationInfo = query.RelationInfo
	// Plan is the optimizer's chosen strategy.
	Plan = query.Plan
	// WorkloadConfig parameterizes synthetic relation generation (Table 3).
	WorkloadConfig = workload.Config
	// PartitionOptions configures bounded-memory partitioned evaluation.
	PartitionOptions = core.PartitionOptions
	// PartitionStream is a running partitioned evaluation delivering each
	// partition's result as it completes.
	PartitionStream = core.PartitionStream
	// StreamChunk is one partition's coalesced result on a PartitionStream.
	StreamChunk = core.StreamChunk
	// SweepOptions parameterizes the columnar sweep, most importantly its
	// Parallel worker count (0 = GOMAXPROCS, 1 = serial).
	SweepOptions = core.SweepOptions
	// SweepGroup evaluates several decomposable queries in one shared
	// ingest-sort-scan pass over one event buffer.
	SweepGroup = core.SweepGroup
	// GroupQuery is one SweepGroup registration: an aggregate plus an
	// optional tuple filter.
	GroupQuery = core.GroupQuery
	// LiveEvaluator ingests tuples concurrently with snapshot readers:
	// epoch-based consistent reads during live ingestion (S36).
	LiveEvaluator = core.LiveEvaluator
	// LiveOptions parameterizes a live evaluator (segment size).
	LiveOptions = core.LiveOptions
	// LiveSnapshot is one consistent epoch of a live evaluator.
	LiveSnapshot = core.LiveSnapshot
	// LiveEpoch identifies a snapshot's position in the ingestion order.
	LiveEpoch = core.LiveEpoch
	// ScanOptions configures on-disk relation scans.
	ScanOptions = relation.ScanOptions
	// Scanner reads a relation file one page at a time.
	Scanner = relation.Scanner
	// CostModel prices memory, I/O, and CPU for cost-based planning (§6.3).
	CostModel = query.CostModel
	// Granularity is a calendar span length for temporal grouping.
	Granularity = interval.Granularity
	// Catalog is a directory of relation files with optimizer declarations.
	Catalog = catalog.Catalog
	// CatalogEntry holds one relation's persisted declarations.
	CatalogEntry = catalog.Entry
	// Server serves a catalog's queries over TCP.
	Server = server.Server
	// ServerClient is the line-protocol client for Server.
	ServerClient = server.Client
)

// OpenCatalog loads the catalog directory at dir: every *.rel file is a
// relation, overlaid with declarations from catalog.json.
func OpenCatalog(dir string) (*Catalog, error) { return catalog.Open(dir) }

// NewServer returns a TCP query server over the catalog.
func NewServer(cat *Catalog) *Server { return server.New(cat) }

// DialServer connects a line-protocol client to a running server.
func DialServer(addr string) (*ServerClient, error) { return server.Dial(addr) }

// EstimateConstantIntervals estimates the number of constant intervals the
// relation induces, from a uniform sample (Chao1 over boundary timestamps);
// feeds RelationInfo.ExpectedConstantIntervals.
func EstimateConstantIntervals(ts []Tuple, sampleSize int, seed int64) int {
	return stats.EstimateConstantIntervals(ts, sampleSize, seed)
}

// Time-line bounds.
const (
	// Origin is the earliest instant, 0.
	Origin = interval.Origin
	// Forever is the greatest instant, the paper's ∞.
	Forever = interval.Forever
)

// Aggregate kinds.
const (
	Count = aggregate.Count
	Sum   = aggregate.Sum
	Avg   = aggregate.Avg
	Min   = aggregate.Min
	Max   = aggregate.Max
)

// Algorithms.
const (
	LinkedList      = core.LinkedList
	AggregationTree = core.AggregationTree
	KOrderedTree    = core.KOrderedTree
	BalancedTree    = core.BalancedTree
	SweepEval       = core.SweepEval
)

// Workload orders for Generate (Table 3).
const (
	// WorkloadRandom leaves generated tuples in random order.
	WorkloadRandom = workload.Random
	// WorkloadSorted totally orders the generated relation by time.
	WorkloadSorted = workload.Sorted
	// WorkloadKOrdered sorts then disorders to a target (K, KPct).
	WorkloadKOrdered = workload.KOrdered
)

// NewInterval returns the closed interval [start, end].
func NewInterval(start, end Time) (Interval, error) { return interval.New(start, end) }

// NewTuple constructs a validated tuple.
func NewTuple(name string, value int64, start, end Time) (Tuple, error) {
	return tuple.New(name, value, start, end)
}

// NewRelation returns an empty relation with the given name.
func NewRelation(name string) *Relation { return relation.New(name) }

// RelationFromTuples builds a relation over a copy of ts.
func RelationFromTuples(name string, ts []Tuple) *Relation {
	return relation.FromTuples(name, ts)
}

// Employed returns the paper's running-example relation (Figure 1).
func Employed() *Relation { return relation.Employed() }

// NewEvaluator constructs an incremental evaluator; feed tuples with Add and
// collect constant intervals with Finish.
func NewEvaluator(spec Spec, kind AggregateKind) (Evaluator, error) {
	return core.New(spec, aggregate.For(kind))
}

// ComputeByInstant evaluates the temporal aggregate grouped by instant over
// the relation, using the given algorithm.
func ComputeByInstant(rel *Relation, kind AggregateKind, spec Spec) (*Result, Stats, error) {
	return core.Run(spec, aggregate.For(kind), rel.Tuples)
}

// ComputeBySpan evaluates the temporal aggregate grouped by fixed-length
// spans over the given finite window.
func ComputeBySpan(rel *Relation, kind AggregateKind, span Time, window Interval) (*Result, error) {
	return core.GroupBySpan(aggregate.For(kind), rel.Tuples, span, window)
}

// ComputeTuma evaluates with the two-pass baseline (§4.1); the source is
// scanned twice.
func ComputeTuma(src TupleSource, kind AggregateKind) (*Result, error) {
	return core.Tuma(src, aggregate.For(kind))
}

// NewSliceSource adapts an in-memory tuple slice to a rescannable source.
func NewSliceSource(ts []Tuple) TupleSource { return core.NewSliceSource(ts) }

// Query parses and executes a TSQL2-flavoured query over the relation. info
// supplies optimizer metadata; nil derives it from the relation.
func Query(sql string, rel *Relation, info *RelationInfo) (*QueryResult, error) {
	return query.Run(sql, rel, info)
}

// QueryBatch parses and executes several queries over the relation in one
// call. Sweep-eligible queries (decomposable aggregates, no snapshot, span
// or attribute grouping, no DISTINCT) are served together from shared
// SweepGroup passes — the relation is ingested, sorted, and scanned once
// per wave of up to MaxSweepGroupQueries aggregates instead of once per
// query; the rest execute individually. Results align with sqls by index.
func QueryBatch(sqls []string, rel *Relation, info *RelationInfo) ([]*QueryResult, error) {
	qs := make([]*query.Query, len(sqls))
	for i, sql := range sqls {
		q, err := query.Parse(sql)
		if err != nil {
			return nil, err
		}
		qs[i] = q
	}
	return query.ExecuteBatch(qs, rel, info)
}

// MaxSweepGroupQueries is a SweepGroup's registration capacity — the width
// of the per-event query bitmask that rides through the shared sort.
const MaxSweepGroupQueries = core.MaxGroupQueries

// NewSweepGroup returns an empty shared-pass group over [0, ∞). Register
// queries first, then feed tuples with Add/AddBatch, then Finish for one
// Result per query in registration order.
func NewSweepGroup(opts SweepOptions) *SweepGroup { return core.NewSweepGroup(opts) }

// NewLive returns an empty live evaluator: writers Add/AddBatch while
// readers take consistent epochs with Snapshot, without blocking either
// side on the other.
func NewLive(opts LiveOptions) *LiveEvaluator { return core.NewLive(opts) }

// ErrLiveClosed is returned by live ingestion and Snapshot after Close.
var ErrLiveClosed = core.ErrLiveClosed

// NewGroupQuery builds a SweepGroup registration for the given aggregate
// kind; filter may be nil for an unrestricted query.
func NewGroupQuery(kind AggregateKind, filter func(Tuple) bool) GroupQuery {
	return GroupQuery{Func: aggregate.For(kind), Filter: filter}
}

// KOrderedness returns the minimal k for which the tuples are k-ordered.
func KOrderedness(ts []Tuple) int { return order.KOrderedness(ts) }

// KOrderedPercentage computes the paper's disorder ratio Σ i·nᵢ / (k·n).
func KOrderedPercentage(ts []Tuple, k int) (float64, error) {
	return order.KOrderedPercentage(ts, k)
}

// Deduplicate removes exact duplicate tuples, keeping first occurrences —
// the paper's recommended duplicate treatment (§7).
func Deduplicate(ts []Tuple) []Tuple { return relation.Deduplicate(ts) }

// CoalesceTuples merges value-equivalent tuples whose intervals overlap or
// meet, returning a time-ordered slice (temporal-database coalescing).
func CoalesceTuples(ts []Tuple) []Tuple { return relation.CoalesceTuples(ts) }

// ComputePartitioned evaluates the instant-grouped aggregate with bounded
// memory by cutting the time-line into partitions, each handled by its own
// aggregation tree (§5.1/§7); see PartitionOptions for spill-to-disk and
// parallel evaluation.
func ComputePartitioned(rel *Relation, kind AggregateKind, opts PartitionOptions) (*Result, Stats, error) {
	return core.EvaluatePartitionedTuples(aggregate.For(kind), rel.Tuples, opts)
}

// ComputePartitionedStream is ComputePartitioned without the materializing
// barrier: each partition's coalesced constant intervals arrive on the
// stream's channel as soon as that shard finishes. Consume Chunks, then
// call Wait for statistics and the first error.
func ComputePartitionedStream(rel *Relation, kind AggregateKind, opts PartitionOptions) (*PartitionStream, error) {
	return core.EvaluatePartitionedStream(aggregate.For(kind), core.NewSliceSource(rel.Tuples), opts)
}

// UniformBoundaries cuts a finite lifespan into n equal-width partitions
// for ComputePartitioned.
func UniformBoundaries(lifespan Interval, n int) []Time {
	return core.UniformBoundaries(lifespan, n)
}

// Generate builds a synthetic relation per the paper's Table 3 parameters.
func Generate(cfg WorkloadConfig) (*Relation, error) { return workload.Generate(cfg) }

// WriteRelation stores a relation at path in the paged binary format.
func WriteRelation(path string, rel *Relation) error { return relation.WriteFile(path, rel) }

// ReadRelation loads a relation file into memory, preserving physical order.
func ReadRelation(path string) (*Relation, error) { return relation.ReadFile(path) }

// OpenRelation opens a relation file for a paged scan.
func OpenRelation(path string, opts ScanOptions) (*Scanner, error) {
	return relation.Open(path, opts)
}
