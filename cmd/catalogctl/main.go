// Command catalogctl manages a catalog directory of relation files and
// their optimizer declarations (catalog.json).
//
// Usage:
//
//	catalogctl -db dir list
//	catalogctl -db dir declare -name Feed -kbound 40 -comment "HR feed"
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"tempagg/internal/catalog"
	"tempagg/internal/relation"
	"tempagg/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "catalogctl:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("catalogctl", flag.ContinueOnError)
	db := fs.String("db", "", "catalog directory (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *db == "" {
		return fmt.Errorf("-db is required")
	}
	rest := fs.Args()
	if len(rest) == 0 {
		return fmt.Errorf("missing subcommand: list or declare")
	}
	cat, err := catalog.Open(*db)
	if err != nil {
		return err
	}
	switch rest[0] {
	case "list":
		return list(cat, out)
	case "declare":
		return declare(cat, rest[1:], out)
	}
	return fmt.Errorf("unknown subcommand %q (want list or declare)", rest[0])
}

func list(cat *catalog.Catalog, out io.Writer) error {
	fmt.Fprintf(out, "%-16s %8s %8s %6s %10s %s\n",
		"relation", "tuples", "sorted", "kbound", "mem-budget", "comment")
	for _, name := range cat.Names() {
		e, err := cat.Entry(name)
		if err != nil {
			return err
		}
		info, err := cat.Info(name)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%-16s %8d %8t %6d %10d %s\n",
			name, info.Tuples, info.Sorted, e.KBound, e.MemoryBudget, e.Comment)
	}
	return nil
}

func declare(cat *catalog.Catalog, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("declare", flag.ContinueOnError)
	var (
		name      = fs.String("name", "", "relation to declare (required)")
		kbound    = fs.Int("kbound", -1, "declare the relation k-ordered with this bound (-1: unknown)")
		memory    = fs.Int64("memory", 0, "memory budget in bytes (0: unlimited)")
		intervals = fs.Int("intervals", 0, "expected constant intervals (0: unknown)")
		estimate  = fs.Bool("estimate", false, "estimate expected constant intervals from a sample instead of -intervals")
		comment   = fs.String("comment", "", "free-form note")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" {
		return fmt.Errorf("-name is required")
	}
	if *estimate {
		path, err := cat.Path(*name)
		if err != nil {
			return err
		}
		rel, err := relation.ReadFile(path)
		if err != nil {
			return err
		}
		*intervals = stats.EstimateConstantIntervals(rel.Tuples, 256, 1)
	}
	err := cat.Declare(*name, catalog.Entry{
		KBound:                    *kbound,
		MemoryBudget:              *memory,
		ExpectedConstantIntervals: *intervals,
		Comment:                   *comment,
	})
	if err != nil {
		return err
	}
	if err := cat.Save(); err != nil {
		return err
	}
	fmt.Fprintf(out, "declared %s: kbound=%d memory=%d intervals=%d\n",
		*name, *kbound, *memory, *intervals)
	return nil
}
