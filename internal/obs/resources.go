package obs

import "runtime/metrics"

// heapAllocBytes reads the process's cumulative heap-allocation byte count
// (runtime/metrics "/gc/heap/allocs:bytes"). Span start/end deltas of this
// value are the per-span allocation estimate; the read is lock-free and
// cheap enough for per-stage (not per-tuple) sampling.
func heapAllocBytes() uint64 {
	sample := []metrics.Sample{{Name: "/gc/heap/allocs:bytes"}}
	metrics.Read(sample)
	if sample[0].Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return sample[0].Value.Uint64()
}
