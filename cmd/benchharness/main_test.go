package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestHarnessTable1(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-exp", "table1"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "3 | 18 | 20") {
		t.Fatalf("table 1 output wrong:\n%s", b.String())
	}
}

func TestHarnessTable2(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-exp", "table2"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "0.0505") {
		t.Fatalf("table 2 output wrong:\n%s", b.String())
	}
}

func TestHarnessFigureCSV(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-exp", "ablation-span", "-max-size", "1024", "-seeds", "1",
		"-format", "csv"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "figure,series,size,metric,value") {
		t.Fatalf("csv output wrong:\n%s", out)
	}
	if !strings.Contains(out, "ablation-span,") {
		t.Fatalf("csv rows missing:\n%s", out)
	}
}

func TestHarnessFigureTable(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-exp", "fig9", "-max-size", "1024", "-seeds", "1"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "== figure-9") {
		t.Fatalf("figure table missing:\n%s", b.String())
	}
}

// The -json report carries per-stage timings for the sweep experiments so
// profiles can be compared across PRs, not just end-to-end medians.
func TestHarnessJSONStageTimings(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-exp", "sweep", "-max-size", "1024", "-seeds", "1", "-json"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	var report struct {
		Experiments []struct {
			Metric string `json:"metric"`
			Series []struct {
				Name   string `json:"name"`
				Points []struct {
					Stages map[string]float64 `json:"stages"`
				} `json:"points"`
			} `json:"series"`
		} `json:"experiments"`
	}
	if err := json.Unmarshal([]byte(b.String()), &report); err != nil {
		t.Fatalf("-json output is not valid JSON: %v", err)
	}
	found := false
	for _, e := range report.Experiments {
		for _, s := range e.Series {
			if !strings.Contains(s.Name, "sweep") {
				continue
			}
			for _, p := range s.Points {
				if p.Stages["scan"] > 0 {
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatalf("no sweep point carries a scan stage timing:\n%s", b.String())
	}
}

func TestHarnessErrors(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-exp", "bogus"}, &b); err == nil {
		t.Error("unknown experiment must fail")
	}
	if err := run([]string{"-max-size", "10"}, &b); err == nil {
		t.Error("max-size below the smallest Table 3 size must fail")
	}
	if err := run([]string{"-exp", "fig9", "-max-size", "1024", "-seeds", "1",
		"-format", "bogus"}, &b); err == nil {
		t.Error("unknown format must fail")
	}
}
