package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tempagg/internal/aggregate"
	"tempagg/internal/tuple"
)

func TestNewKOrderedTreeRejectsNegativeK(t *testing.T) {
	if _, err := NewKOrderedTree(aggregate.For(aggregate.Count), -1); err == nil {
		t.Fatal("expected error for k < 0")
	}
}

// TestKTreeGarbageCollectsSortedInput: on a sorted stream of short tuples
// the k=1 tree must stay small — this is the paper's headline memory result
// (Figure 9: "Ktree, sorted relation, K=1" uses the least memory).
func TestKTreeGarbageCollectsSortedInput(t *testing.T) {
	f := aggregate.For(aggregate.Count)
	kt, err := NewKOrderedTree(f, 1)
	if err != nil {
		t.Fatal(err)
	}
	const n = 5000
	for i := 0; i < n; i++ {
		s := int64(i * 10)
		if err := kt.Add(tuple.MustNew("t", 1, s, s+5)); err != nil {
			t.Fatal(err)
		}
	}
	stats := kt.Stats()
	if stats.PeakNodes > 64 {
		t.Fatalf("k=1 tree peaked at %d nodes on sorted short-lived input; want a small constant", stats.PeakNodes)
	}
	if stats.Collected == 0 {
		t.Fatal("no nodes were garbage collected")
	}
	res, err := kt.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
	// 2n constant intervals with tuples plus the gaps: every tuple [s,s+5]
	// separated by a gap [s+6,s+9] yields alternating counts 1 and 0.
	if len(res.Rows) != 2*n {
		t.Fatalf("got %d rows, want %d", len(res.Rows), 2*n)
	}
}

// TestKTreePeakMemoryGrowsWithK reproduces §6.2's finding that the most
// important memory factor for the k-ordered tree is the value of k.
func TestKTreePeakMemoryGrowsWithK(t *testing.T) {
	f := aggregate.For(aggregate.Count)
	r := rand.New(rand.NewSource(5))
	var ts []tuple.Tuple
	for i := 0; i < 4000; i++ {
		s := int64(i*5) + r.Int63n(5)
		ts = append(ts, tuple.MustNew("t", 1, s, s+r.Int63n(50)))
	}
	ts = sortTuples(ts)
	peak := func(k int) int {
		_, stats, err := Run(Spec{Algorithm: KOrderedTree, K: k}, f, ts)
		if err != nil {
			t.Fatal(err)
		}
		return stats.PeakNodes
	}
	p1, p40, p400 := peak(1), peak(40), peak(400)
	if !(p1 < p40 && p40 < p400) {
		t.Fatalf("peak nodes should grow with k: k=1:%d k=40:%d k=400:%d", p1, p40, p400)
	}
}

// TestKTreeLongLivedTuplesInflateMemory reproduces §6.2: long-lived tuples
// make the k-ordered tree's memory much worse, because the end-time-induced
// node stays uncollectable until the scan passes the distant end time.
func TestKTreeLongLivedTuplesInflateMemory(t *testing.T) {
	f := aggregate.For(aggregate.Count)
	short := make([]tuple.Tuple, 0, 2000)
	long := make([]tuple.Tuple, 0, 2000)
	r := rand.New(rand.NewSource(6))
	for i := 0; i < 2000; i++ {
		s := int64(i * 10)
		short = append(short, tuple.MustNew("t", 1, s, s+r.Int63n(20)))
		long = append(long, tuple.MustNew("t", 1, s, s+10000+r.Int63n(5000)))
	}
	_, shortStats, err := Run(Spec{Algorithm: KOrderedTree, K: 1}, f, short)
	if err != nil {
		t.Fatal(err)
	}
	_, longStats, err := Run(Spec{Algorithm: KOrderedTree, K: 1}, f, long)
	if err != nil {
		t.Fatal(err)
	}
	if longStats.PeakNodes < 4*shortStats.PeakNodes {
		t.Fatalf("long-lived tuples should inflate ktree memory: short peak %d, long peak %d",
			shortStats.PeakNodes, longStats.PeakNodes)
	}
}

// TestKTreeDetectsOrderViolation: feeding a stream that is not k-ordered
// for the declared k must be reported, not silently mis-aggregated.
func TestKTreeDetectsOrderViolation(t *testing.T) {
	f := aggregate.For(aggregate.Count)
	kt, err := NewKOrderedTree(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	// With k=0 the window holds one start; strictly increasing starts allow
	// immediate collection, so jumping far forward then far back must fail.
	for _, s := range []int64{100, 200, 300, 400} {
		if err := kt.Add(tuple.MustNew("t", 1, s, s+10)); err != nil {
			t.Fatal(err)
		}
	}
	err = kt.Add(tuple.MustNew("late", 1, 0, 5))
	if err == nil {
		t.Fatal("expected k-orderedness violation to be detected")
	}
}

// TestKTreeWindowTolerance: a relation that is genuinely k-ordered must
// never trip the violation check, for any k >= its disorder.
func TestKTreeWindowTolerance(t *testing.T) {
	f := aggregate.For(aggregate.Sum)
	r := rand.New(rand.NewSource(7))
	prop := func() bool {
		ts := sortTuples(randomTuples(r, 50+r.Intn(50), 300))
		k := 1 + r.Intn(8)
		kts := perturb(r, ts, k)
		for kk := k; kk <= k+3; kk++ {
			res, _, err := Run(Spec{Algorithm: KOrderedTree, K: kk}, f, kts)
			if err != nil {
				t.Fatalf("k=%d over %d-perturbed input: %v", kk, k, err)
			}
			if !res.Equal(Reference(f, ts)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestKTreeEmittedOrderIsTimeOrder: rows emitted early by GC concatenated
// with the final flush are strictly ordered and contiguous.
func TestKTreeEmittedOrderIsTimeOrder(t *testing.T) {
	f := aggregate.For(aggregate.Count)
	r := rand.New(rand.NewSource(8))
	ts := sortTuples(randomTuples(r, 300, 5000))
	res, _, err := Run(Spec{Algorithm: KOrderedTree, K: 2}, f, perturb(r, ts, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestKTreeCollectsOnlyWhatIsSafe: with k equal to the relation size no
// garbage collection can free wrong intervals even on reversed input.
func TestKTreeHugeKHandlesAnyOrder(t *testing.T) {
	f := aggregate.For(aggregate.Max)
	r := rand.New(rand.NewSource(9))
	ts := randomTuples(r, 120, 1000)
	res, _, err := Run(Spec{Algorithm: KOrderedTree, K: len(ts)}, f, ts)
	if err != nil {
		t.Fatal(err)
	}
	resultsIdentical(t, "ktree huge k", res, Reference(f, ts))
}

// TestKTreeNodeAccounting: live + collected must equal total created.
func TestKTreeNodeAccounting(t *testing.T) {
	f := aggregate.For(aggregate.Count)
	r := rand.New(rand.NewSource(10))
	ts := sortTuples(randomTuples(r, 500, 10000))
	kt, err := NewKOrderedTree(f, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, tu := range ts {
		if err := kt.Add(tu); err != nil {
			t.Fatal(err)
		}
	}
	stats := kt.Stats()
	if stats.LiveNodes <= 0 {
		t.Fatalf("LiveNodes = %d, want positive", stats.LiveNodes)
	}
	if stats.PeakNodes < stats.LiveNodes {
		t.Fatalf("PeakNodes %d < LiveNodes %d", stats.PeakNodes, stats.LiveNodes)
	}
	res, err := kt.Finish()
	if err != nil {
		t.Fatal(err)
	}
	// Nodes in a full binary tree over R leaves: 2R-1. Rows emitted at
	// Finish = leaves remaining; rows emitted earlier were collected.
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
	if stats.Collected == 0 {
		t.Fatal("expected garbage collection on sorted input")
	}
}

func TestKTreeStatsBytes(t *testing.T) {
	s := Stats{PeakNodes: 10, LiveNodes: 4}
	if s.PeakBytes() != 160 || s.LiveBytes() != 64 {
		t.Fatalf("byte accounting wrong: peak %d live %d", s.PeakBytes(), s.LiveBytes())
	}
}
