package core

import (
	"tempagg/internal/aggregate"
	"tempagg/internal/interval"
	"tempagg/internal/obs"
	"tempagg/internal/tuple"
)

// bNode is a balanced-tree node: the aggregation-tree node plus an AVL
// height. Leaves have height 0.
type bNode struct {
	split       interval.Time
	state       aggregate.State
	left, right *bNode
	height      int
}

func (n *bNode) isLeaf() bool { return n.left == nil }

func bHeight(n *bNode) int {
	if n == nil {
		return -1
	}
	return n.height
}

func (n *bNode) fix() {
	lh, rh := bHeight(n.left), bHeight(n.right)
	if lh > rh {
		n.height = lh + 1
	} else {
		n.height = rh + 1
	}
}

// BTree is the balanced aggregation tree, the paper's future-work variant
// (§7): "One alternative to examine is a balanced aggregation tree, which
// should be especially efficient in the case of a k-ordered relation."
//
// The aggregation tree is a binary search tree over split timestamps whose
// leaves are the constant intervals, so ordinary AVL rotations preserve its
// search structure. The twist is the lazily placed aggregate contributions:
// a node's state applies to its entire covered range, and a rotation changes
// which range a node covers. Before rotating, contributions at the two nodes
// involved are pushed down to their children (a merge — exact for every
// decomposable aggregate), after which the rotation is purely structural.
// This removes the O(n²) degeneration on sorted input at the cost of
// rotation work per insert; the ablation benchmarks quantify the trade.
type BTree struct {
	noCopy noCopy

	f     aggregate.Func
	ar    arena[bNode]
	root  *bNode
	es    obs.EvalSink
	stats statsCell
}

var _ Evaluator = (*BTree)(nil)

// NewBalancedTree returns a balanced aggregation-tree evaluator for f.
func NewBalancedTree(f aggregate.Func) *BTree {
	t := &BTree{f: f, ar: newArena[bNode](bSlabPool)}
	t.root = t.ar.alloc()
	t.stats.init(1)
	return t
}

func (t *BTree) setSink(s obs.Sink) {
	if s == nil {
		return // nil Sink: instrumentation disabled (obs.Sink contract)
	}
	t.es = s.Evaluator(BalancedTree.String())
	t.es.NodesAllocated(1) // the initial universe leaf
}

// Add inserts one tuple, rebalancing along the insertion path.
func (t *BTree) Add(tu tuple.Tuple) error {
	if err := tu.Valid.Validate(); err != nil {
		return err
	}
	liveBefore := t.stats.liveNodes.Load()
	t.root = t.insert(t.root, interval.Origin, interval.Forever,
		tu.Valid.Start, tu.Valid.End, tu.Value)
	t.stats.addTuple()
	if t.es != nil {
		t.es.TuplesProcessed(1)
		t.es.NodesAllocated(int(t.stats.liveNodes.Load() - liveBefore))
	}
	return nil
}

// AddBatch absorbs one page of tuples; per-tuple stats updates match Add,
// with one sink publication per page.
func (t *BTree) AddBatch(ts []tuple.Tuple) error {
	liveBefore := t.stats.liveNodes.Load()
	added := 0
	var err error
	for i := range ts {
		if err = ts[i].Valid.Validate(); err != nil {
			break
		}
		t.root = t.insert(t.root, interval.Origin, interval.Forever,
			ts[i].Valid.Start, ts[i].Valid.End, ts[i].Value)
		t.stats.addTuple()
		added++
	}
	if t.es != nil {
		t.es.TuplesProcessed(added)
		t.es.NodesAllocated(int(t.stats.liveNodes.Load() - liveBefore))
	}
	return err
}

// insert places [s, e] with value v into the subtree rooted at n covering
// [lo, hi] and returns the (possibly rotated) subtree root.
func (t *BTree) insert(n *bNode, lo, hi, s, e interval.Time, v int64) *bNode {
	if s <= lo && hi <= e {
		n.state = t.f.Add(n.state, v)
		return n
	}
	if n.isLeaf() {
		if s > lo {
			n.split = s - 1
		} else {
			n.split = e
		}
		n.left = t.ar.alloc()
		n.right = t.ar.alloc()
		n.height = 1
		t.stats.grow(2)
	}
	if s <= n.split {
		n.left = t.insert(n.left, lo, n.split, s, e, v)
	}
	if e > n.split {
		n.right = t.insert(n.right, n.split+1, hi, s, e, v)
	}
	return t.rebalance(n)
}

// pushDown moves n's lazily placed contribution to its children so that a
// rotation can change n's covered range without corrupting the aggregate.
func (t *BTree) pushDown(n *bNode) {
	if n.isLeaf() || n.state.Empty() {
		return
	}
	n.left.state = t.f.Merge(n.left.state, n.state)
	n.right.state = t.f.Merge(n.right.state, n.state)
	n.state = t.f.Zero()
}

func (t *BTree) rotateRight(n *bNode) *bNode {
	t.pushDown(n)
	l := n.left
	t.pushDown(l)
	n.left = l.right
	l.right = n
	n.fix()
	l.fix()
	return l
}

func (t *BTree) rotateLeft(n *bNode) *bNode {
	t.pushDown(n)
	r := n.right
	t.pushDown(r)
	n.right = r.left
	r.left = n
	n.fix()
	r.fix()
	return r
}

func (t *BTree) rebalance(n *bNode) *bNode {
	n.fix()
	switch bf := bHeight(n.left) - bHeight(n.right); {
	case bf > 1:
		if bHeight(n.left.left) < bHeight(n.left.right) {
			n.left = t.rotateLeft(n.left)
		}
		return t.rotateRight(n)
	case bf < -1:
		if bHeight(n.right.right) < bHeight(n.right.left) {
			n.right = t.rotateRight(n.right)
		}
		return t.rotateLeft(n)
	}
	return n
}

// Finish emits the constant intervals via depth-first traversal, then
// returns the arena's slabs to the shared pool.
func (t *BTree) Finish() (*Result, error) {
	leaves := (int(t.stats.liveNodes.Load()) + 1) / 2
	res := &Result{Func: t.f, Rows: make([]Row, 0, leaves)}
	t.emit(t.root, interval.Origin, interval.Forever, t.f.Zero(), res)
	t.root = nil
	slabs, reused := t.ar.release()
	if t.es != nil {
		t.es.PeakNodes(int(t.stats.peakNodes.Load()))
		t.es.ArenaRelease(slabs, reused)
	}
	return res, nil
}

func (t *BTree) emit(n *bNode, lo, hi interval.Time, acc aggregate.State, res *Result) {
	acc = t.f.Merge(acc, n.state)
	if n.isLeaf() {
		res.Rows = append(res.Rows, Row{
			Interval: interval.MustNew(lo, hi),
			State:    acc,
		})
		return
	}
	t.emit(n.left, lo, n.split, acc, res)
	t.emit(n.right, n.split+1, hi, acc, res)
}

// Stats reports the evaluator's counters.
func (t *BTree) Stats() Stats { return t.stats.snapshot() }
