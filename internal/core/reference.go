package core

import (
	"sort"

	"tempagg/internal/aggregate"
	"tempagg/internal/interval"
	"tempagg/internal/tuple"
)

// Reference computes the temporal aggregate by definition: it enumerates the
// constant intervals from the tuples' boundary timestamps and, for each,
// aggregates over every overlapping tuple. O(n²) time — it exists as the
// obviously correct oracle the real algorithms are validated against in the
// test suite, never as an execution strategy.
func Reference(f aggregate.Func, tuples []tuple.Tuple) *Result {
	boundaries := []interval.Time{interval.Origin}
	for _, t := range tuples {
		boundaries = append(boundaries, t.Valid.Start)
		if t.Valid.End != interval.Forever {
			boundaries = append(boundaries, t.Valid.End+1)
		}
	}
	sort.Slice(boundaries, func(i, j int) bool { return boundaries[i] < boundaries[j] })
	boundaries = dedupTimes(boundaries)

	res := &Result{Func: f, Rows: make([]Row, 0, len(boundaries))}
	for i, b := range boundaries {
		end := interval.Forever
		if i+1 < len(boundaries) {
			end = boundaries[i+1] - 1
		}
		iv := interval.MustNew(b, end)
		state := f.Zero()
		for _, t := range tuples {
			if t.Valid.Overlaps(iv) {
				state = f.Add(state, t.Value)
			}
		}
		res.Rows = append(res.Rows, Row{Interval: iv, State: state})
	}
	return res
}
