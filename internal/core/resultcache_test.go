package core

import (
	"fmt"
	"testing"

	"tempagg/internal/aggregate"
	"tempagg/internal/interval"
)

func cacheKey(rel, version string, k aggregate.Kind, w interval.Interval) CacheKey {
	return CacheKey{Relation: rel, Version: version, Kind: k, Window: w}
}

func cachedResult(v int64) *Result {
	f := aggregate.For(aggregate.Sum)
	return &Result{Func: f, Rows: []Row{{Interval: interval.Universe(), State: f.Add(f.Zero(), v)}}}
}

// TestResultCacheHitMiss pins the basic contract: a miss before Put, a hit
// after, and stats counting both.
func TestResultCacheHitMiss(t *testing.T) {
	c := NewResultCache(4)
	key := cacheKey("r", "v1", aggregate.Sum, interval.Universe())
	if _, ok := c.Get(key); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(key, cachedResult(7))
	got, ok := c.Get(key)
	if !ok {
		t.Fatal("miss after Put")
	}
	if !got.Equal(cachedResult(7)) {
		t.Fatal("cached result differs")
	}
	// A different version of the same relation is a different key: stale
	// entries are structurally unreachable.
	if _, ok := c.Get(cacheKey("r", "v2", aggregate.Sum, interval.Universe())); ok {
		t.Fatal("version change must miss")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 2 || s.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit, 2 misses, 1 entry", s)
	}
}

// TestResultCacheLRU fills past capacity and checks the eviction order:
// least-recently-used leaves first, and a Get refreshes recency.
func TestResultCacheLRU(t *testing.T) {
	c := NewResultCache(3)
	keys := make([]CacheKey, 5)
	for i := range keys {
		keys[i] = cacheKey(fmt.Sprintf("r%d", i), "v", aggregate.Count, interval.Universe())
	}
	for i := 0; i < 3; i++ {
		c.Put(keys[i], cachedResult(int64(i)))
	}
	// Touch key 0 so key 1 is now the LRU entry.
	if _, ok := c.Get(keys[0]); !ok {
		t.Fatal("resident entry missed")
	}
	if ev := c.Put(keys[3], cachedResult(3)); ev != 1 {
		t.Fatalf("evicted %d, want 1", ev)
	}
	if _, ok := c.Get(keys[1]); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if _, ok := c.Get(keys[0]); !ok {
		t.Fatal("recently-used entry evicted")
	}
	if ev := c.Put(keys[4], cachedResult(4)); ev != 1 {
		t.Fatalf("evicted %d, want 1", ev)
	}
	s := c.Stats()
	if s.Entries != 3 || s.Evictions != 2 {
		t.Fatalf("stats = %+v, want 3 entries, 2 evictions", s)
	}
}

// TestResultCacheIsolation pins copy semantics both ways: mutating the
// caller's result after Put, or the returned result after Get, must not
// disturb the cached rows.
func TestResultCacheIsolation(t *testing.T) {
	c := NewResultCache(2)
	key := cacheKey("r", "v", aggregate.Sum, interval.Universe())
	orig := cachedResult(1)
	c.Put(key, orig)
	orig.Rows[0].State = orig.Func.Add(orig.Rows[0].State, 100)

	got, ok := c.Get(key)
	if !ok {
		t.Fatal("miss")
	}
	if !got.Equal(cachedResult(1)) {
		t.Fatal("Put did not copy: caller mutation leaked into the cache")
	}
	got.Clip(interval.MustNew(5, 9))

	again, ok := c.Get(key)
	if !ok {
		t.Fatal("miss")
	}
	if !again.Equal(cachedResult(1)) {
		t.Fatal("Get did not copy: caller mutation leaked into the cache")
	}
}

// TestResultCacheClose pins the terminal contract: Close is idempotent and
// later operations are inert.
func TestResultCacheClose(t *testing.T) {
	c := NewResultCache(2)
	key := cacheKey("r", "v", aggregate.Avg, interval.Universe())
	c.Put(key, cachedResult(1))
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// The idempotent re-Close and the post-Close probes run in their own
	// closures: finishonce tracks one function body at a time, and these are
	// deliberate contract violations, not bugs to silence with an ignore.
	func() {
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	func() {
		if _, ok := c.Get(key); ok {
			t.Fatal("hit after Close")
		}
		if ev := c.Put(key, cachedResult(2)); ev != 0 {
			t.Fatal("Put evicted after Close")
		}
		if s := c.Stats(); s.Entries != 0 {
			t.Fatalf("entries after Close: %d", s.Entries)
		}
	}()
}

// TestResultCacheCapacityFloor: a non-positive capacity falls back to the
// default rather than caching nothing.
func TestResultCacheCapacityFloor(t *testing.T) {
	c := NewResultCache(0)
	key := cacheKey("r", "v", aggregate.Min, interval.Universe())
	c.Put(key, cachedResult(3))
	if _, ok := c.Get(key); !ok {
		t.Fatal("default-capacity cache dropped its first entry")
	}
}
