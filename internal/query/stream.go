package query

import (
	"fmt"
	"os"
	"sort"

	"tempagg/internal/aggregate"
	"tempagg/internal/core"
	"tempagg/internal/obs"
	"tempagg/internal/relation"
	"tempagg/internal/tuple"
)

// ExecuteFile executes a query directly against a relation file. Whenever
// the plan allows it the tuples stream from the paged scanner through the
// evaluators without materializing the relation — the paper's "single
// segmented scan of the input relation" (§6); Tuma's baseline performs its
// two passes as two real scans of the file. Plans that require sorting
// first, span grouping without an explicit finite window, or attribute
// grouping under Tuma fall back to materializing.
//
// info may be nil; the file header then supplies the optimizer's metadata
// (cardinality and the sorted flag).
func ExecuteFile(q *Query, path string, info *RelationInfo, sopts relation.ScanOptions) (*QueryResult, error) {
	return ExecuteFileTraced(q, path, info, sopts, nil)
}

// ExecuteFileTraced is ExecuteFile with per-query observability: planning
// and evaluation stages become spans on tr, evaluators publish their §6
// counters through the trace's sink, and the final stats snapshot is
// attached. A nil tr disables all of it — unless the query is an EXPLAIN
// ANALYZE, which records a standalone trace for its report.
func ExecuteFileTraced(q *Query, path string, info *RelationInfo, sopts relation.ScanOptions, tr *obs.QueryTrace) (*QueryResult, error) {
	if q.Explain == ExplainAnalyze && tr == nil {
		tr = obs.NewQueryTrace(q.String())
	}
	qr, err := executeFileTraced(q, path, info, sopts, tr)
	if err == nil && q.Explain == ExplainAnalyze && qr.Explain == "" {
		// The streaming paths return plain results; the materializing path
		// delegates to ExecuteTraced, which renders the report itself.
		qr.Explain = RenderExplain(qr, tr)
	}
	return qr, err
}

func executeFileTraced(q *Query, path string, info *RelationInfo, sopts relation.ScanOptions, tr *obs.QueryTrace) (*QueryResult, error) {
	sc, err := relation.Open(path, sopts)
	if err != nil {
		return nil, err
	}
	defer sc.Close()

	meta := RelationInfo{Tuples: sc.Count(), Sorted: sc.Sorted(), KBound: -1}
	if sopts.RandomizePages {
		meta.Sorted = false // a randomized scan destroys physical order
	}
	if info != nil {
		meta = *info
	}
	planSpan := tr.StartSpan("plan")
	plan, err := PlanQuery(q, meta)
	planSpan.End()
	if err != nil {
		return nil, err
	}
	tracePlan(tr, plan)
	if q.Explain == ExplainPlan && q.At == nil {
		// Plan only (AT queries re-plan in the in-memory executor, whose
		// snapshot reduction this file-level plan does not see).
		qr := &QueryResult{Query: q, Plan: plan}
		qr.Explain = RenderExplain(qr, nil)
		return qr, nil
	}

	if plan.UseIndex && meta.Index != nil && q.Explain != ExplainPlan {
		// Served entirely from the resident index: the relation file is
		// never scanned — the whole point of materializing the partials.
		return executeIndexOnly(q, plan, meta.Index, tr)
	}

	anyDistinct := false
	for _, a := range q.Aggs {
		anyDistinct = anyDistinct || a.Distinct
	}
	// A small-k tree needs ordered input; when the scan cannot guarantee it
	// (unsorted file, no declared bound), the executor must sort first —
	// which requires materializing.
	ktreeNeedsSort := plan.Spec.Algorithm == core.KOrderedTree && !plan.Tuma &&
		meta.KBound < plan.Spec.K && plan.Spec.K < meta.Tuples && !meta.Sorted
	// Partitioned plans materialize: the routing pass needs the relation's
	// lifespan for boundary placement, which a single forward scan cannot
	// supply up front.
	// Index plans without a resident handle (USING INDEX on a bare file)
	// materialize: the in-memory executor builds the index over the loaded
	// tuples. The zero-valued Spec would otherwise stream as a linked list.
	streamable := q.Temporal == ByInstant && q.At == nil && !plan.UseIndex &&
		!anyDistinct && !plan.Partitioned && !(ktreeNeedsSort && !plan.SortFirst) &&
		(!plan.Tuma || (q.GroupAttr == nil && len(q.Aggs) == 1))
	if !streamable {
		rel, err := scanAll(sc, q.Relation)
		if err != nil {
			return nil, err
		}
		// The in-memory executor re-plans (it may choose the snapshot
		// reduction) and records its own spans on the same trace.
		return ExecuteTraced(q, rel, &meta, tr)
	}
	if plan.SortFirst || ktreeNeedsSort {
		// The paper's sort-then-ktree strategy, out of core: external merge
		// sort the file, then stream the sorted copy (§6.3/§7).
		if err := sc.Close(); err != nil {
			return nil, fmt.Errorf("query: %w", err)
		}
		tmp, err := os.CreateTemp("", "tempagg-sorted-*.rel")
		if err != nil {
			return nil, fmt.Errorf("query: %w", err)
		}
		tmpPath := tmp.Name()
		tmp.Close()
		defer os.Remove(tmpPath)
		sortSpan := tr.StartSpan("sort")
		if err := relation.ExternalSort(path, tmpPath, 0); err != nil {
			return nil, err
		}
		sortSpan.End()
		sorted, err := relation.Open(tmpPath, relation.ScanOptions{})
		if err != nil {
			return nil, err
		}
		defer sorted.Close()
		plan.SortFirst = false
		return streamEvaluators(q, plan, sorted, tr)
	}
	if plan.Tuma {
		return streamTuma(q, plan, sc, tr)
	}
	if plan.SharedSweep {
		return streamSharedSweep(q, plan, sc, tr)
	}
	return streamEvaluators(q, plan, sc, tr)
}

// streamSharedSweep is streamEvaluators for a SharedSweep plan: one
// SweepGroup per attribute group serves the whole select list, so the
// stream is ingested, sorted, and scanned once per group instead of once
// per group and aggregate.
func streamSharedSweep(q *Query, plan Plan, sc *relation.Scanner, tr *obs.QueryTrace) (*QueryResult, error) {
	groups := map[string]*core.SweepGroup{}
	newGroup := func() (*core.SweepGroup, error) {
		g := core.NewSweepGroup(core.SweepOptions{Parallel: plan.Spec.Parallel})
		g.SetSink(tr.Sink())
		for _, a := range q.Aggs {
			if _, err := g.Register(core.GroupQuery{Func: aggregate.For(a.Kind)}); err != nil {
				return nil, err
			}
		}
		return g, nil
	}

	pages := map[string][]tuple.Tuple{}
	flush := func(key string) error {
		page := pages[key]
		if len(page) == 0 {
			return nil
		}
		if err := groups[key].AddBatch(page); err != nil {
			return fmt.Errorf("query: streaming shared sweep: %w", err)
		}
		pages[key] = page[:0]
		return nil
	}

	execSpan := tr.StartSpan("execute")
	for {
		t, ok, err := sc.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		if !q.accepts(t) {
			continue
		}
		key := ""
		if q.GroupAttr != nil {
			key = t.Name
		}
		if _, exists := groups[key]; !exists {
			g, err := newGroup()
			if err != nil {
				return nil, err
			}
			groups[key] = g
		}
		pages[key] = append(pages[key], t)
		if len(pages[key]) >= core.BatchPage {
			if err := flush(key); err != nil {
				return nil, err
			}
		}
	}
	for key := range groups {
		if err := flush(key); err != nil {
			return nil, err
		}
	}
	if q.GroupAttr == nil && len(groups) == 0 {
		g, err := newGroup()
		if err != nil {
			return nil, err
		}
		groups[""] = g
	}
	execSpan.End()

	finishSpan := tr.StartSpan("finish")
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	qr := &QueryResult{Query: q, Plan: plan}
	for _, k := range keys {
		g := groups[k]
		// The shared pass — sorts, chunked scan, per-query stitches — runs
		// inside Finish, so its spans hang off the finish stage.
		g.SetTrace(finishSpan.Context())
		results, err := g.Finish()
		if err != nil {
			return nil, err
		}
		gr := GroupResult{Key: k}
		for ai, res := range results {
			if q.Window != nil {
				res.Clip(*q.Window)
			}
			gr.Results = append(gr.Results, res)
			// The pass ran once for all aggregates: its counters sit on the
			// first slot so trace totals equal the work done.
			if ai == 0 {
				gr.AllStats = append(gr.AllStats, g.Stats())
				traceStats(tr, g.Stats())
			} else {
				gr.AllStats = append(gr.AllStats, core.Stats{})
			}
		}
		gr.Result = gr.Results[0]
		gr.Stats = gr.AllStats[0]
		qr.Groups = append(qr.Groups, gr)
	}
	finishSpan.End()
	tr.SetGroups(len(qr.Groups))
	return qr, nil
}

// scanAll materializes the scanner into a relation named for the query.
func scanAll(sc *relation.Scanner, name string) (*relation.Relation, error) {
	rel := relation.New(name)
	rel.Tuples = make([]tuple.Tuple, 0, sc.Count())
	for {
		t, ok, err := sc.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return rel, nil
		}
		rel.Append(t)
	}
}

// accepts reports whether the tuple passes the query's window and WHERE
// conditions.
func (q *Query) accepts(t tuple.Tuple) bool {
	if q.Window != nil && !t.Valid.Overlaps(*q.Window) {
		return false
	}
	for _, c := range q.Where {
		if !c.matches(t) {
			return false
		}
	}
	return true
}

// streamEvaluators runs one evaluator per attribute group and select-list
// aggregate, feeding tuples as they come off the scanner.
func streamEvaluators(q *Query, plan Plan, sc *relation.Scanner, tr *obs.QueryTrace) (*QueryResult, error) {
	evs := map[string][]core.Evaluator{}
	newEvs := func() ([]core.Evaluator, error) {
		out := make([]core.Evaluator, len(q.Aggs))
		for i, a := range q.Aggs {
			ev, err := core.NewObserved(plan.Spec, aggregate.For(a.Kind), tr.Sink())
			if err != nil {
				return nil, err
			}
			out[i] = ev
		}
		return out, nil
	}

	// Tuples are buffered per group into pages of core.BatchPage and fed
	// through the evaluators' batch-ingestion path, amortizing the per-tuple
	// interface and sink costs over each page.
	pages := map[string][]tuple.Tuple{}
	flush := func(key string) error {
		page := pages[key]
		if len(page) == 0 {
			return nil
		}
		for _, ev := range evs[key] {
			if err := ev.AddBatch(page); err != nil {
				return fmt.Errorf("query: streaming %s: %w", plan.Spec.Algorithm, err)
			}
		}
		pages[key] = page[:0]
		return nil
	}

	execSpan := tr.StartSpan("execute")
	for {
		t, ok, err := sc.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		if !q.accepts(t) {
			continue
		}
		key := ""
		if q.GroupAttr != nil {
			key = t.Name
		}
		if _, exists := evs[key]; !exists {
			group, err := newEvs()
			if err != nil {
				return nil, err
			}
			evs[key] = group
		}
		pages[key] = append(pages[key], t)
		if len(pages[key]) >= core.BatchPage {
			if err := flush(key); err != nil {
				return nil, err
			}
		}
	}
	for key := range evs {
		if err := flush(key); err != nil {
			return nil, err
		}
	}
	if q.GroupAttr == nil && len(evs) == 0 {
		// An empty (or fully filtered) ungrouped stream still yields the
		// single empty constant interval.
		group, err := newEvs()
		if err != nil {
			return nil, err
		}
		evs[""] = group
	}
	execSpan.End()

	finishSpan := tr.StartSpan("finish")
	keys := make([]string, 0, len(evs))
	for k := range evs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	qr := &QueryResult{Query: q, Plan: plan}
	for _, k := range keys {
		gr := GroupResult{Key: k}
		for _, ev := range evs[k] {
			// A sweep evaluator does its sorting and scanning in Finish;
			// its spans belong to the finish stage.
			core.SetTraceContext(ev, finishSpan.Context())
			res, err := ev.Finish()
			if err != nil {
				return nil, err
			}
			if q.Window != nil {
				res.Clip(*q.Window)
			}
			gr.Results = append(gr.Results, res)
			gr.AllStats = append(gr.AllStats, ev.Stats())
			traceStats(tr, ev.Stats())
		}
		gr.Result = gr.Results[0]
		gr.Stats = gr.AllStats[0]
		qr.Groups = append(qr.Groups, gr)
	}
	finishSpan.End()
	tr.SetGroups(len(qr.Groups))
	return qr, nil
}

// filteredSource adapts the scanner to a TupleSource applying the query's
// filters, so Tuma's two passes are two genuine scans of the file.
type filteredSource struct {
	q  *Query
	sc *relation.Scanner
}

func (s *filteredSource) Next() (tuple.Tuple, bool, error) {
	for {
		t, ok, err := s.sc.Next()
		if err != nil || !ok {
			return tuple.Tuple{}, false, err
		}
		if s.q.accepts(t) {
			return t, true, nil
		}
	}
}

func (s *filteredSource) Reset() error { return s.sc.Reset() }

func streamTuma(q *Query, plan Plan, sc *relation.Scanner, tr *obs.QueryTrace) (*QueryResult, error) {
	execSpan := tr.StartSpan("execute")
	res, err := core.Tuma(&filteredSource{q: q, sc: sc}, aggregate.For(q.Aggs[0].Kind))
	execSpan.End()
	if err != nil {
		return nil, err
	}
	if q.Window != nil {
		res.Clip(*q.Window)
	}
	stats := core.Stats{Tuples: 2 * sc.Count()}
	sinkTuples(tr, "tuma-two-pass", stats.Tuples)
	traceStats(tr, stats)
	tr.SetGroups(1)
	return &QueryResult{
		Query: q,
		Plan:  plan,
		Groups: []GroupResult{{
			Result: res, Stats: stats,
			Results: []*core.Result{res}, AllStats: []core.Stats{stats},
		}},
	}, nil
}

// RunFile parses and executes a query string against a relation file.
func RunFile(sql, path string, info *RelationInfo, sopts relation.ScanOptions) (*QueryResult, error) {
	q, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	return ExecuteFile(q, path, info, sopts)
}
