package core

import (
	"runtime"
	"sort"
	"strconv"
	"sync"

	"tempagg/internal/aggregate"
	"tempagg/internal/interval"
	"tempagg/internal/obs"
)

// Parallel execution of the columnar sweep (DESIGN.md S41). The serial
// merge scan emits one row per event boundary while folding signed deltas
// into a running (count, sum) pair. That scan decomposes: cut the sorted
// event stream at a handful of event timestamps, hand each chunk to a
// worker with the pair it would have carried into its first boundary — a
// fold of every event to the chunk's left, computed by a prefix pass — and
// concatenate the chunks' rows. int64 addition is associative and
// commutative (two's-complement wraparound included), so the carried pair,
// and with it every emitted row, is bit-identical to the serial scan's.
//
// Cuts are restricted to *arrival timestamps*: the serial scan visits a
// boundary at every event time, so cutting there splits the row stream
// between rows rather than through one, which is what keeps the
// concatenation row-for-row identical instead of merely value-equivalent.

// parallelSweepMinEvents is the event count below which a defaulted
// (Parallel = 0) sweep stays serial: chunk bookkeeping on a small scan
// costs more than the scan. An explicit Parallel > 1 always takes the
// chunked path, which is how the differential and fuzz harnesses force it
// onto small inputs.
const parallelSweepMinEvents = 4096

// SweepOptions parameterizes a sweep evaluation.
type SweepOptions struct {
	// Parallel is the worker-goroutine count for the sort and scan. 0
	// resolves to runtime.GOMAXPROCS(0) with a serial fallback below
	// parallelSweepMinEvents; 1 forces the serial path; any larger value is
	// honored as given, whatever the input size.
	Parallel int
	// Trace is the span-propagation context for the evaluation: when
	// active, Finish records radix-sort, per-worker scan, and emit child
	// spans under it, each with its own event-count snapshot. The zero
	// value disables span recording (one pointer compare per stage, never
	// per tuple). The context carries W3C traceparent IDs, so the same
	// field can ship over the wire to a future distributed coordinator.
	Trace obs.TraceContext
}

// workers resolves the option for an input of n events.
func (o SweepOptions) workers(n int) int {
	w := o.Parallel
	if w > 0 {
		return w
	}
	if n < parallelSweepMinEvents {
		return 1
	}
	return runtime.GOMAXPROCS(0)
}

// NewSweepOptions is NewSweep with explicit options.
func NewSweepOptions(f aggregate.Func, opts SweepOptions) *Sweep {
	return NewSweepRangeOptions(f, interval.Universe(), opts)
}

// NewSweepRangeOptions is NewSweepRange with explicit options.
func NewSweepRangeOptions(f aggregate.Func, span interval.Interval, opts SweepOptions) *Sweep {
	s := NewSweepRange(f, span)
	s.opts = opts
	return s
}

// lowerBoundInt64 returns the first index of sorted keys not less than t.
func lowerBoundInt64(keys []int64, t int64) int {
	return sort.Search(len(keys), func(i int) bool { return keys[i] >= t })
}

// chunkCuts picks up to workers-1 distinct arrival timestamps after lo from
// the sorted arrival column, at even quantiles so chunks carry comparable
// event counts. An empty result means the input has too few distinct
// boundaries to split and the caller should scan serially.
func chunkCuts(sTimes []int64, lo int64, workers int) []int64 {
	n := len(sTimes)
	if n == 0 {
		return nil
	}
	cuts := make([]int64, 0, workers-1)
	last := lo
	for k := 1; k < workers; k++ {
		c := sTimes[k*n/workers]
		if c > last {
			cuts = append(cuts, c)
			last = c
		}
	}
	return cuts
}

// sweepChunk is one worker's slice of the decomposable merge scan: a
// contiguous run of event boundaries plus the (count, sum) pair carried in
// from everything to its left.
type sweepChunk struct {
	cut        int64 // first boundary owned by this chunk (span.Start for chunk 0)
	sLo, sHi   int   // arrival index range [sLo, sHi)
	eLo, eHi   int   // departure index range [eLo, eHi)
	count, sum int64 // carry-in: fold of all events strictly before cut
	rows       []Row
}

// scanChunked is the parallel decomposable scan. It requires both event
// columns sorted. A nil return means the input had too few distinct
// boundaries to split; the caller falls back to the serial scan.
func (s *Sweep) scanChunked(workers int) *Result {
	lo := s.span.Start
	cuts := chunkCuts(s.sTimes, lo, workers)
	if len(cuts) == 0 {
		return nil
	}
	chunks := make([]sweepChunk, len(cuts)+1)
	chunks[0].cut = lo
	for k, c := range cuts {
		chunks[k+1].cut = c
		chunks[k+1].sLo = lowerBoundInt64(s.sTimes, c)
		chunks[k+1].eLo = lowerBoundInt64(s.eTimes, c)
	}
	for k := range chunks {
		if k+1 < len(chunks) {
			chunks[k].sHi, chunks[k].eHi = chunks[k+1].sLo, chunks[k+1].eLo
		} else {
			chunks[k].sHi, chunks[k].eHi = len(s.sTimes), len(s.eTimes)
		}
	}

	scanSp := s.opts.Trace.StartChild("scan")
	scanSp.SetAttr("mode", "chunked")
	scanSp.SetAttr("workers", strconv.Itoa(workers))
	scanSp.SetAttr("chunks", strconv.Itoa(len(chunks)))

	// Prefix pass: each chunk's in-range delta in parallel, then a serial
	// exclusive scan. The carry a chunk receives equals the serial scan's
	// running pair at its first boundary — same addends, associativity does
	// the rest — so chunk-local folds resume bit-exactly.
	prefixSp := scanSp.StartChild("prefix")
	var wg sync.WaitGroup
	for k := range chunks {
		wg.Add(1)
		go func(c *sweepChunk) {
			defer wg.Done()
			var sum int64
			for _, v := range s.sVals[c.sLo:c.sHi] {
				sum += v
			}
			for _, v := range s.eVals[c.eLo:c.eHi] {
				sum -= v
			}
			c.count = int64((c.sHi - c.sLo) - (c.eHi - c.eLo))
			c.sum = sum
		}(&chunks[k])
	}
	wg.Wait()
	var count, sum int64
	for k := range chunks {
		c, cs := chunks[k].count, chunks[k].sum
		chunks[k].count, chunks[k].sum = count, sum
		count += c
		sum += cs
	}
	prefixSp.End()

	for k := range chunks {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			c := &chunks[k]
			wsp := scanSp.StartChild("scan-worker")
			wsp.SetAttr("worker", strconv.Itoa(k))
			var next int64
			if k+1 < len(chunks) {
				next = chunks[k+1].cut
			}
			s.scanChunkRange(c, next, k+1 == len(chunks))
			// Each chunk's event range is one §6 node per event, so the
			// worker spans' counter sums equal the sweep's node total.
			wsp.AddCounters(0, (c.sHi-c.sLo)+(c.eHi-c.eLo), 0, 0)
			wsp.End()
		}(k)
	}
	wg.Wait()

	emitSp := scanSp.StartChild("emit")
	total := 1
	for k := range chunks {
		total += len(chunks[k].rows)
	}
	res := &Result{Func: s.f, Rows: make([]Row, 0, total)}
	for k := range chunks {
		res.Rows = append(res.Rows, chunks[k].rows...)
	}
	emitSp.End()
	scanSp.End()
	s.parallelWorkers, s.chunks = workers, len(chunks)
	return res
}

// scanChunkRange runs the serial merge-scan loop over one chunk's event
// ranges. Events at the chunk's first boundary are absorbed before any row
// is emitted: for chunk 0 that is the serial scan's pre-loop over arrivals
// at the span start, for later chunks the absorption the serial scan
// performs right after emitting the row the predecessor chunk owns. The
// closing row runs to the next chunk's cut (exclusive) — the row the serial
// scan would emit on reaching that boundary — or to the span end for the
// last chunk.
func (s *Sweep) scanChunkRange(c *sweepChunk, next int64, last bool) {
	hi := s.span.End
	count, sum := c.count, c.sum
	i, j := c.sLo, c.eLo
	rows := make([]Row, 0, (c.sHi-c.sLo)+(c.eHi-c.eLo)+1)
	cur := c.cut
	for i < c.sHi && s.sTimes[i] == cur {
		count++
		sum += s.sVals[i]
		i++
	}
	for j < c.eHi && s.eTimes[j] == cur {
		count--
		sum -= s.eVals[j]
		j++
	}
	for i < c.sHi || j < c.eHi {
		var t int64
		switch {
		case i < c.sHi && j < c.eHi:
			t = min(s.sTimes[i], s.eTimes[j])
		case i < c.sHi:
			t = s.sTimes[i]
		default:
			t = s.eTimes[j]
		}
		rows = append(rows, Row{
			Interval: interval.MustNew(cur, t-1),
			State:    s.f.FromCounters(count, sum, 0),
		})
		for i < c.sHi && s.sTimes[i] == t {
			count++
			sum += s.sVals[i]
			i++
		}
		for j < c.eHi && s.eTimes[j] == t {
			count--
			sum -= s.eVals[j]
			j++
		}
		cur = t
	}
	end := hi
	if !last {
		end = next - 1
	}
	c.rows = append(rows, Row{
		Interval: interval.MustNew(cur, end),
		State:    s.f.FromCounters(count, sum, 0),
	})
}

// finishWedgeParallel is the MIN/MAX parallel path: the span is cut at
// arrival timestamps and each sub-span runs its own serial wedge sweep over
// the tuples overlapping it — the same per-region decomposition
// EvaluatePartitionedStream uses, with the wedge providing each region's
// extremum partials. Results concatenate into a partition of the span and
// are coalesced; unlike the decomposable path this is value-equivalent, not
// row-identical, since region edges may split rows the serial scan emits
// whole. Returns (nil, nil) when the input has too few distinct boundaries
// to split, and the serial wedge takes over.
func (s *Sweep) finishWedgeParallel(workers int) (*Result, error) {
	lo, hi := s.span.Start, s.span.End
	cuts := chunkCuts(s.starts, lo, workers)
	if len(cuts) == 0 {
		return nil, nil
	}
	spans := make([]interval.Interval, 0, len(cuts)+1)
	prev := lo
	for _, c := range cuts {
		spans = append(spans, interval.MustNew(prev, c-1))
		prev = c
	}
	spans = append(spans, interval.MustNew(prev, hi))

	scanSp := s.opts.Trace.StartChild("scan")
	scanSp.SetAttr("mode", "wedge-chunked")
	scanSp.SetAttr("workers", strconv.Itoa(workers))
	scanSp.SetAttr("chunks", strconv.Itoa(len(spans)))

	subs := make([]*Sweep, len(spans))
	errs := make([]error, len(spans))
	results := make([]*Result, len(spans))
	var wg sync.WaitGroup
	for k := range spans {
		// Sub-sweeps are serial (Parallel: 1), own their column arenas, and
		// run unsinked — the parent publishes the aggregated counters once.
		subs[k] = NewSweepRangeOptions(s.f, spans[k], SweepOptions{Parallel: 1})
		subs[k].WedgeBound = s.WedgeBound
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			sub := subs[k]
			wsp := scanSp.StartChild("scan-worker")
			wsp.SetAttr("worker", strconv.Itoa(k))
			// Starts are sorted, so tuples at or past the sub-span's end
			// cannot overlap it; earlier tuples are filtered by Intersect.
			n := len(s.starts)
			if spans[k].End != interval.Forever {
				n = lowerBoundInt64(s.starts, spans[k].End+1)
			}
			for i := 0; i < n; i++ {
				iv, ok := interval.MustNew(s.starts[i], s.ends[i]).Intersect(spans[k])
				if !ok {
					continue
				}
				sub.add(iv, s.vals[i])
			}
			results[k], errs[k] = sub.Finish()
			wsp.AddCounters(0, sub.events, 0, 0)
			wsp.End()
		}(k)
	}
	wg.Wait()
	defer scanSp.End()

	total := 0
	for k := range results {
		s.events += subs[k].events
		s.radixPasses += subs[k].radixPasses
		s.fallbacks += subs[k].fallbacks
		if errs[k] != nil {
			return nil, errs[k]
		}
		total += len(results[k].Rows)
	}
	res := &Result{Func: s.f, Rows: make([]Row, 0, total)}
	for k := range results {
		res.Rows = append(res.Rows, results[k].Rows...)
	}
	res.Coalesce()
	s.parallelWorkers, s.chunks = workers, len(spans)
	return res, nil
}
