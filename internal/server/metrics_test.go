package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"tempagg/internal/catalog"
	"tempagg/internal/obs"
	"tempagg/internal/relation"
)

// startObservedServer is startServer with an observer attached, returning
// the observer and an httptest server over its admin mux.
func startObservedServer(t *testing.T) (*catalog.Catalog, *obs.Observer, string, *httptest.Server) {
	t.Helper()
	dir := t.TempDir()
	if err := relation.WriteFile(filepath.Join(dir, "Employed.rel"), relation.Employed()); err != nil {
		t.Fatal(err)
	}
	cat, err := catalog.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	o := obs.NewObserver(16, nil)
	srv := New(cat, WithObserver(o))
	if srv.Observer() != o {
		t.Fatal("Observer() lost the option")
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(lis) }()
	admin := httptest.NewServer(AdminMux(o))
	t.Cleanup(func() {
		admin.Close()
		if err := srv.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return cat, o, lis.Addr().String(), admin
}

// scrape fetches one admin endpoint and returns the body.
func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d\n%s", url, resp.StatusCode, body)
	}
	return string(body)
}

// metricValue finds `name{labels} v` in a Prometheus exposition and returns
// v, failing the test when the series is absent.
func metricValue(t *testing.T, body, series string) int64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("series %s: bad value %q", series, rest)
			}
			return int64(v)
		}
	}
	t.Fatalf("series %s not found in scrape:\n%s", series, body)
	return 0
}

func TestMetricsEndpointExactValues(t *testing.T) {
	cat, _, addr, admin := startObservedServer(t)

	const sql = "SELECT COUNT(Name) FROM Employed"
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Query(sql)
	if err != nil || !resp.OK {
		t.Fatalf("query failed: %+v, %v", resp, err)
	}

	// The expected counters come from the identical unobserved execution:
	// same catalog, same file, same plan — so the scrape must match its
	// core.Stats exactly.
	qr, err := cat.Query(sql, relation.ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := qr.Groups[0].Stats
	alg := qr.Plan.Spec.Algorithm.String()

	body := scrape(t, admin.URL+"/metrics")
	lbl := fmt.Sprintf(`{algorithm="%s"}`, alg)
	if got := metricValue(t, body, obs.MetricTuplesProcessed+lbl); got != int64(want.Tuples) {
		t.Errorf("tuples processed = %d, core.Stats says %d", got, want.Tuples)
	}
	// Cumulative allocations = nodes still live at Finish + nodes the
	// k-ordered GC reclaimed along the way.
	if got := metricValue(t, body, obs.MetricNodesAllocated+lbl); got != int64(want.LiveNodes+want.Collected) {
		t.Errorf("nodes allocated = %d, core.Stats says %d", got, want.LiveNodes+want.Collected)
	}
	if got := metricValue(t, body, obs.MetricNodesCollected+lbl); got != int64(want.Collected) {
		t.Errorf("nodes collected = %d, core.Stats says %d", got, want.Collected)
	}
	if got := metricValue(t, body, obs.MetricPeakNodes+lbl); got != int64(want.PeakNodes) {
		t.Errorf("peak nodes = %d, core.Stats says %d", got, want.PeakNodes)
	}
	okLbl := fmt.Sprintf(`{algorithm="%s",status="ok"}`, alg)
	if got := metricValue(t, body, obs.MetricQueries+okLbl); got != 1 {
		t.Errorf("queries_total = %d, want 1", got)
	}
	if got := metricValue(t, body, obs.MetricQueryDuration+"_count"+lbl); got != 1 {
		t.Errorf("duration histogram count = %d, want 1", got)
	}
	if !strings.Contains(body, obs.MetricQueryDuration+"_bucket{algorithm=") {
		t.Errorf("duration histogram has no buckets:\n%s", body)
	}
}

func TestMetricsCountsPerAlgorithmAndErrors(t *testing.T) {
	_, _, addr, admin := startObservedServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Two USING LIST queries, one forced error.
	for i := 0; i < 2; i++ {
		if resp, err := c.Query("SELECT COUNT(Name) FROM Employed USING LIST"); err != nil || !resp.OK {
			t.Fatalf("query failed: %+v, %v", resp, err)
		}
	}
	if resp, err := c.Query("SELECT COUNT(Name) FROM Nope"); err != nil || resp.OK {
		t.Fatalf("expected query error, got %+v, %v", resp, err)
	}

	body := scrape(t, admin.URL+"/metrics")
	if got := metricValue(t, body, obs.MetricQueries+`{algorithm="linked-list",status="ok"}`); got != 2 {
		t.Errorf("linked-list ok count = %d, want 2", got)
	}
	// Name resolution fails before planning, so the error lands on "none".
	if got := metricValue(t, body, obs.MetricQueries+`{algorithm="none",status="error"}`); got != 1 {
		t.Errorf("error count = %d, want 1", got)
	}
}

func TestAdminTracesAndPprof(t *testing.T) {
	_, o, addr, admin := startObservedServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const sql = "SELECT MAX(Salary) FROM Employed"
	if resp, err := c.Query(sql); err != nil || !resp.OK {
		t.Fatalf("query failed: %+v, %v", resp, err)
	}

	var traces []struct {
		Query     string `json:"query"`
		Algorithm string `json:"algorithm"`
		Spans     []struct {
			Name string `json:"name"`
		} `json:"spans"`
	}
	if err := json.Unmarshal([]byte(scrape(t, admin.URL+"/debug/traces")), &traces); err != nil {
		t.Fatal(err)
	}
	if len(traces) != 1 || traces[0].Query != sql || traces[0].Algorithm == "" {
		t.Fatalf("traces = %+v", traces)
	}
	names := map[string]bool{}
	for _, sp := range traces[0].Spans {
		names[sp.Name] = true
	}
	for _, want := range []string{"parse", "plan", "execute"} {
		if !names[want] {
			t.Errorf("trace missing %q span: %+v", want, traces[0].Spans)
		}
	}
	if got := len(o.Traces.Snapshot()); got != 1 {
		t.Errorf("ring holds %d traces, want 1", got)
	}

	if heap := scrape(t, admin.URL+"/debug/pprof/heap"); len(heap) == 0 {
		t.Error("pprof heap profile is empty")
	}
}

func TestDebugQueriesWindow(t *testing.T) {
	_, _, addr, admin := startObservedServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const runs = 3
	for i := 0; i < runs; i++ {
		if resp, err := c.Query("SELECT COUNT(Salary) FROM Employed USING SWEEP"); err != nil || !resp.OK {
			t.Fatalf("query failed: %+v, %v", resp, err)
		}
	}

	var snap obs.WindowSnapshot
	if err := json.Unmarshal([]byte(scrape(t, admin.URL+"/debug/queries")), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.WindowSeconds <= 0 || snap.SlowThreshold <= 0 || snap.ErrorBudget <= 0 {
		t.Errorf("window config not echoed: %+v", snap)
	}
	stages := map[string]obs.StageSnapshot{}
	for _, s := range snap.Stages {
		stages[s.Stage] = s
	}
	// Every query contributes a whole-query sample plus one per stage span.
	for _, stage := range []string{"query", "parse", "plan", "execute"} {
		s, ok := stages[stage]
		if !ok {
			t.Fatalf("window missing stage %q: %+v", stage, snap.Stages)
		}
		if s.Count != runs {
			t.Errorf("stage %q count = %d, want %d", stage, s.Count, runs)
		}
		if s.Algorithm != "sweep" {
			t.Errorf("stage %q algorithm = %q, want sweep", stage, s.Algorithm)
		}
		if len(s.Buckets) == 0 {
			t.Errorf("stage %q has no histogram buckets", stage)
		}
		if s.P50 < 0 || s.P90 < s.P50 || s.P99 < s.P90 {
			t.Errorf("stage %q quantiles not monotone: p50=%g p90=%g p99=%g", stage, s.P50, s.P90, s.P99)
		}
		// At least one bucket must carry an exemplar trace ID, and the sum
		// of bucket counts must equal the sample count.
		var bucketSum int64
		exemplar := false
		for _, b := range s.Buckets {
			bucketSum += b.Count
			if b.Exemplar != "" {
				exemplar = true
			}
		}
		if bucketSum != s.Count {
			t.Errorf("stage %q bucket counts sum to %d, want %d", stage, bucketSum, s.Count)
		}
		if !exemplar {
			t.Errorf("stage %q has no exemplar trace ID", stage)
		}
	}
}

func TestAdminMuxNilObserver(t *testing.T) {
	admin := httptest.NewServer(AdminMux(nil))
	defer admin.Close()
	for _, ep := range []string{"/metrics", "/debug/traces", "/debug/queries"} {
		resp, err := http.Get(admin.URL + ep)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s with nil observer = %d, want 404", ep, resp.StatusCode)
		}
	}
}
