package core

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"tempagg/internal/aggregate"
	"tempagg/internal/interval"
	"tempagg/internal/tuple"
)

// kDisorder returns ts sorted by time and then disordered to a displacement
// bound of at most k: the sorted slice is cut into consecutive blocks of
// k+1 tuples and each block is shuffled in place. No tuple moves more than
// k positions from its sorted slot, so the result is k-ordered by
// construction (§5.3).
func kDisorder(r *rand.Rand, ts []tuple.Tuple, k int) []tuple.Tuple {
	out := append([]tuple.Tuple(nil), ts...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Less(out[j]) })
	for lo := 0; lo < len(out); lo += k + 1 {
		hi := lo + k + 1
		if hi > len(out) {
			hi = len(out)
		}
		block := out[lo:hi]
		r.Shuffle(len(block), func(i, j int) { block[i], block[j] = block[j], block[i] })
	}
	return out
}

// FuzzKTreeGCThreshold drives the k-ordered tree's garbage collector with
// inputs that are k-ordered by construction and checks the §5.3 invariant
// end to end: the gc-threshold (the evaluator's root low bound) must never
// overtake a future tuple's start — KTree.Add reports exactly that
// violation as an error — and the surviving tree plus the already-emitted
// prefix must still reproduce the oracle's result.
func FuzzKTreeGCThreshold(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(40))
	f.Add(int64(2), uint8(1), uint8(120))
	f.Add(int64(3), uint8(4), uint8(200))
	f.Add(int64(4), uint8(8), uint8(255))
	f.Fuzz(func(t *testing.T, seed int64, kb, nb uint8) {
		k := int(kb % 9)
		n := int(nb)
		r := rand.New(rand.NewSource(seed))
		ts := kDisorder(r, randomTuples(r, n, 1000), k)
		fn := aggregate.For(aggregate.Kinds()[int(seed%5+5)%5])

		kt, err := NewKOrderedTree(fn, k)
		if err != nil {
			t.Fatal(err)
		}
		for _, tu := range ts {
			if err := kt.Add(tu); err != nil {
				t.Fatalf("k=%d input rejected (gc-threshold overtook a future start): %v", k, err)
			}
		}
		res, err := kt.Finish()
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Validate(); err != nil {
			t.Fatal(err)
		}
		if !res.Equal(Reference(fn, ts)) {
			t.Fatalf("k=%d n=%d: k-ordered tree differs from oracle", k, n)
		}
		stats := kt.Stats()
		if stats.Tuples != n {
			t.Fatalf("stats.Tuples = %d, want %d", stats.Tuples, n)
		}
		if stats.Collected < 0 || stats.LiveNodes < 0 || stats.PeakNodes < stats.LiveNodes {
			t.Fatalf("inconsistent node accounting: %+v", stats)
		}
	})
}

// FuzzSweepVsReference drives the columnar sweep across every aggregate,
// every input order (sorted, k-ordered, random as generated), and both
// MIN/MAX regimes (wedge and forced tree fallback), diffing each run against
// the oracle. It also exercises column-pool reuse: the first evaluation
// poisons the shared column pool, so later runs sweep over recycled buffers
// whose stale bits must never surface.
func FuzzSweepVsReference(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(40), uint8(0))
	f.Add(int64(2), uint8(3), uint8(120), uint8(1))
	f.Add(int64(3), uint8(7), uint8(255), uint8(4))
	f.Fuzz(func(t *testing.T, seed int64, kindB, nb, orderB uint8) {
		r := rand.New(rand.NewSource(seed))
		fn := aggregate.For(aggregate.Kinds()[int(kindB)%5])
		n := int(nb)
		ts := randomTuples(r, n, 1000)
		switch orderB % 3 {
		case 1:
			sort.SliceStable(ts, func(i, j int) bool { return ts[i].Less(ts[j]) })
		case 2:
			ts = kDisorder(r, ts, int(orderB%9))
		}
		want := Reference(fn, ts)
		for _, bound := range []int{0, 1} {
			ev := NewSweep(fn)
			ev.WedgeBound = bound
			for _, tu := range ts {
				if err := ev.Add(tu); err != nil {
					t.Fatal(err)
				}
			}
			res, err := ev.Finish()
			if err != nil {
				t.Fatal(err)
			}
			if err := res.Validate(); err != nil {
				t.Fatalf("bound=%d: %v", bound, err)
			}
			if !res.Equal(want) {
				t.Fatalf("bound=%d n=%d %v: sweep differs from oracle", bound, n, fn.Kind())
			}
			if stats := ev.Stats(); stats.Tuples != n {
				t.Fatalf("stats.Tuples = %d, want %d", stats.Tuples, n)
			}
		}
	})
}

// FuzzArenaReuse pins the arena's cross-query hygiene: a slab returned to
// the shared pool carries the previous run's bits, and alloc must zero every
// node it hands out — from the bump pointer and from the GC free list alike.
// The fuzz body poisons the pools with one evaluation, then re-evaluates on
// recycled slabs (aggregation tree) and on a GC-heavy k-ordered run (free-
// list reuse) and diffs both against the oracle; stale state would surface
// as a value or structure mismatch.
func FuzzArenaReuse(f *testing.F) {
	f.Add(int64(1), uint8(60))
	f.Add(int64(2), uint8(180))
	f.Add(int64(3), uint8(255))
	f.Fuzz(func(t *testing.T, seed int64, nb uint8) {
		n := int(nb)
		r := rand.New(rand.NewSource(seed))
		fn := aggregate.For(aggregate.Sum)

		// Poison pass: fill slabs with a real evaluation's nodes, then
		// release them (dirty) back to the shared pools.
		poison := randomTuples(r, n, 700)
		if _, _, err := Run(Spec{Algorithm: AggregationTree}, fn, poison); err != nil {
			t.Fatal(err)
		}

		// Bump-path reuse: a fresh evaluation drawing recycled slabs must
		// match the oracle exactly.
		ts := randomTuples(r, n, 700)
		res, _, err := Run(Spec{Algorithm: AggregationTree}, fn, ts)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Validate(); err != nil {
			t.Fatal(err)
		}
		if !res.Equal(Reference(fn, ts)) {
			t.Fatal("recycled-slab evaluation differs from oracle")
		}

		// Free-list reuse: a sorted k=1 run garbage-collects aggressively,
		// so splits are served from recycled nodes mid-evaluation.
		sorted := append([]tuple.Tuple(nil), ts...)
		sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Less(sorted[j]) })
		kres, kstats, err := Run(Spec{Algorithm: KOrderedTree, K: 1}, fn, sorted)
		if err != nil {
			t.Fatal(err)
		}
		if !kres.Equal(Reference(fn, sorted)) {
			t.Fatal("free-list-reuse evaluation differs from oracle")
		}
		if n > 0 && kstats.Collected == 0 && kstats.PeakNodes > 64 {
			t.Fatalf("sorted k=1 run collected nothing (peak %d): GC regressed", kstats.PeakNodes)
		}

		// Direct free-list check: a poisoned node recycled and re-allocated
		// must come back zeroed.
		ar := newArena[treeNode](treeSlabPool)
		p := ar.alloc()
		p.split = 123
		p.state = fn.Add(fn.Zero(), 42)
		p.left, p.right = p, p
		ar.recycle(p)
		q := ar.alloc()
		//tempagglint:ignore arenaescape the identity comparison against the recycled pointer is the point of this free-list test; the node is never dereferenced through p
		if q != p {
			t.Fatal("free list did not serve the recycled node")
		}
		if q.split != 0 || !q.state.Empty() || q.left != nil || q.right != nil {
			t.Fatalf("recycled node not zeroed: %+v", *q)
		}
		if _, reused := ar.release(); reused != 1 {
			t.Fatal("release must report one free-list reuse")
		}
	})
}

// FuzzParallelSweepVsSerial is the differential fuzz target for the chunked
// scan and the shared multi-query pass: whatever the input shape, order, or
// worker count, the parallel sweep must emit the serial sweep's rows
// bit-for-bit for decomposable aggregates (value-equivalence against the
// oracle for MIN/MAX, whose span partitioning may split rows), and a
// SweepGroup must hand every registered query the rows of a dedicated serial
// sweep. Explicit Parallel > 1 bypasses the size cutoff, so tiny fuzz inputs
// still exercise the chunk machinery.
func FuzzParallelSweepVsSerial(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(40), uint8(0), uint8(2))
	f.Add(int64(2), uint8(3), uint8(120), uint8(1), uint8(5))
	f.Add(int64(3), uint8(7), uint8(255), uint8(4), uint8(8))
	f.Fuzz(func(t *testing.T, seed int64, kindB, nb, orderB, wb uint8) {
		r := rand.New(rand.NewSource(seed))
		fn := aggregate.For(aggregate.Kinds()[int(kindB)%5])
		n := int(nb)
		workers := int(wb%8) + 2 // 2..9: always the chunked path
		ts := randomTuples(r, n, 1000)
		switch orderB % 3 {
		case 1:
			sort.SliceStable(ts, func(i, j int) bool { return ts[i].Less(ts[j]) })
		case 2:
			ts = kDisorder(r, ts, int(orderB%9))
		}

		run := func(parallel int) *Result {
			ev := NewSweepOptions(fn, SweepOptions{Parallel: parallel})
			for _, tu := range ts {
				if err := ev.Add(tu); err != nil {
					t.Fatal(err)
				}
			}
			res, err := ev.Finish()
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		serial := run(1)
		par := run(workers)
		if err := par.Validate(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if fn.Kind().Decomposable() {
			if !reflect.DeepEqual(par.Rows, serial.Rows) {
				t.Fatalf("workers=%d n=%d %v: parallel rows differ from serial", workers, n, fn.Kind())
			}
		} else if !par.Equal(serial) {
			t.Fatalf("workers=%d n=%d %v: parallel wedge differs from serial", workers, n, fn.Kind())
		}
		if !par.Equal(Reference(fn, ts)) {
			t.Fatalf("workers=%d n=%d %v: parallel sweep differs from oracle", workers, n, fn.Kind())
		}

		// Shared pass: the same tuples through one group, one filtered and
		// one unfiltered query, each diffed against its dedicated serial
		// sweep.
		g := NewSweepGroup(SweepOptions{Parallel: workers})
		queries := []GroupQuery{
			{Func: aggregate.For(aggregate.Count)},
			{Func: aggregate.For(aggregate.Sum),
				Filter: func(tu tuple.Tuple) bool { return tu.Value%2 == 0 }},
		}
		for _, q := range queries {
			if _, err := g.Register(q); err != nil {
				t.Fatal(err)
			}
		}
		for _, tu := range ts {
			if err := g.Add(tu); err != nil {
				t.Fatal(err)
			}
		}
		results, err := g.Finish()
		if err != nil {
			t.Fatal(err)
		}
		for qi, q := range queries {
			var filtered []tuple.Tuple
			for _, tu := range ts {
				if q.Filter == nil || q.Filter(tu) {
					filtered = append(filtered, tu)
				}
			}
			ev := NewSweepOptions(q.Func, SweepOptions{Parallel: 1})
			for _, tu := range filtered {
				if err := ev.Add(tu); err != nil {
					t.Fatal(err)
				}
			}
			want, err := ev.Finish()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(results[qi].Rows, want.Rows) {
				t.Fatalf("workers=%d n=%d query %d: shared-pass rows differ from dedicated sweep", workers, n, qi)
			}
		}
	})
}

// FuzzIndexVsReference is the differential fuzz target for the interval
// index: whatever the tuple shape, the windowed lookup must match the
// clipped oracle for every aggregate kind, and the full-timeline read must
// match the oracle exactly. The window endpoints are fuzzer-chosen, so
// boundary-aligned, interior, instant, and past-horizon windows all occur.
func FuzzIndexVsReference(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(40), uint16(0), uint16(100))
	f.Add(int64(2), uint8(3), uint8(120), uint16(500), uint16(40))
	f.Add(int64(3), uint8(7), uint8(255), uint16(999), uint16(0))
	f.Fuzz(func(t *testing.T, seed int64, kindB, nb uint8, aW, widthW uint16) {
		r := rand.New(rand.NewSource(seed))
		fn := aggregate.For(aggregate.Kinds()[int(kindB)%5])
		ts := randomTuples(r, int(nb), 1000)
		idx, err := NewIntervalIndex(ts)
		if err != nil {
			t.Fatal(err)
		}
		full, err := idx.Result(fn)
		if err != nil {
			t.Fatal(err)
		}
		if err := full.Validate(); err != nil {
			t.Fatal(err)
		}
		want := Reference(fn, ts)
		if !full.Equal(want) {
			t.Fatalf("n=%d %v: index full result differs from oracle", nb, fn.Kind())
		}
		w := interval.MustNew(interval.Time(aW), interval.Time(aW)+interval.Time(widthW))
		got, err := idx.Range(fn, w)
		if err != nil {
			t.Fatal(err)
		}
		if err := got.ValidatePartition(w.Start, w.End); err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want.Clip(w)) {
			t.Fatalf("n=%d %v window %v: index range differs from clipped oracle", nb, fn.Kind(), w)
		}
	})
}

// FuzzPartialStateRoundTrip drives the canonical partial encoding from both
// directions. Forward: a partial built from fuzzer values must round-trip
// bit-exactly through encode/decode and reconstitute the directly-computed
// state for every kind. Backward: arbitrary bytes either fail to decode or
// decode to a partial whose re-encoding reproduces the consumed bytes —
// the canonical-form guarantee that makes encoded partials comparable
// byte-wise.
func FuzzPartialStateRoundTrip(f *testing.F) {
	f.Add(int64(1), uint8(4), []byte{0x00})
	f.Add(int64(2), uint8(0), []byte{0x02, 0x06, 0x02, 0x04})
	f.Add(int64(3), uint8(200), []byte{0x80, 0x00})
	f.Fuzz(func(t *testing.T, seed int64, nb uint8, raw []byte) {
		r := rand.New(rand.NewSource(seed))
		var p IndexPartial
		vals := make([]int64, int(nb)%24)
		for i := range vals {
			vals[i] = r.Int63n(4001) - 2000
			p.add(vals[i])
		}
		enc := p.AppendBinary(nil)
		dec, n, err := DecodeIndexPartial(enc)
		if err != nil {
			t.Fatalf("%+v: %v", p, err)
		}
		if n != len(enc) || dec != p {
			t.Fatalf("round-trip: %+v -> %+v (consumed %d of %d)", p, dec, n, len(enc))
		}
		for _, k := range aggregate.Kinds() {
			fn := aggregate.For(k)
			want := fn.Zero()
			for _, v := range vals {
				want = fn.Add(want, v)
			}
			if !fn.StateEqual(dec.State(fn), want) {
				t.Fatalf("%v over %v: reconstituted state differs", k, vals)
			}
		}
		// Backward: decode arbitrary bytes; on success the consumed prefix
		// must be the decoded partial's one canonical encoding.
		if q, n, err := DecodeIndexPartial(raw); err == nil {
			if got := q.AppendBinary(nil); !reflect.DeepEqual(got, raw[:n]) {
				t.Fatalf("non-canonical bytes % x accepted for %+v (canonical % x)", raw[:n], q, got)
			}
		}
	})
}
