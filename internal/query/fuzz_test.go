package query

import (
	"testing"

	"tempagg/internal/interval"
	"tempagg/internal/relation"
)

func TestParseSpanWithCalendarUnits(t *testing.T) {
	q := mustParse(t, "SELECT COUNT(Name) FROM R GROUP BY SPAN 2 YEARS")
	if q.Span != 2*interval.Time(interval.Year) {
		t.Fatalf("span = %d", q.Span)
	}
	q = mustParse(t, "SELECT COUNT(Name) FROM R GROUP BY SPAN 1 day")
	if q.Span != interval.Time(interval.Day) {
		t.Fatalf("span = %d", q.Span)
	}
	// A unit-less span followed by USING must not eat the keyword.
	q = mustParse(t, "SELECT COUNT(Name) FROM R GROUP BY SPAN 10 USING LIST")
	if q.Span != 10 || q.Using != "LIST" {
		t.Fatalf("span/using = %d/%q", q.Span, q.Using)
	}
}

// FuzzParse checks that the parser never panics and that accepted queries
// re-parse to the same canonical form.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT COUNT(Name) FROM Employed",
		"SELECT Name, AVG(Salary) FROM R GROUP BY Name, SPAN 5 USING KTREE 2",
		"SELECT COUNT(DISTINCT Name), MAX(Salary) FROM R VALID OVERLAPS 0 99 WHERE Salary >= -3 AND Name <> 'x'",
		"select min(salary) from r group by span 2 years",
		"SELECT SUM(Salary) FROM R WHERE Start < 100 USING TUMA",
		"((((", "SELECT", "'", "SELECT COUNT(Name)) FROM R", "\xff\xfe",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		q, err := Parse(input)
		if err != nil {
			return // rejected inputs just must not panic
		}
		canon := q.String()
		q2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form %q does not re-parse: %v", canon, err)
		}
		if q2.String() != canon {
			t.Fatalf("canonical form not a fixed point: %q -> %q", canon, q2.String())
		}
	})
}

// FuzzExecute checks that arbitrary accepted queries execute against the
// Employed relation without panicking and produce structurally valid
// results.
func FuzzExecute(f *testing.F) {
	f.Add("SELECT COUNT(Name) FROM Employed")
	f.Add("SELECT Name, MIN(Salary) FROM Employed GROUP BY Name USING LIST")
	f.Add("SELECT AVG(Salary) FROM Employed VALID OVERLAPS 5 25")
	f.Fuzz(func(t *testing.T, input string) {
		q, err := Parse(input)
		if err != nil || q.Relation != "Employed" {
			return
		}
		qr, err := Execute(q, relation.Employed(), nil)
		if err != nil {
			return // semantic rejection (e.g. span over ∞) is fine
		}
		for _, g := range qr.Groups {
			for _, res := range g.Results {
				if len(res.Rows) == 0 {
					continue
				}
				lo := res.Rows[0].Interval.Start
				hi := res.Rows[len(res.Rows)-1].Interval.End
				if err := res.ValidatePartition(lo, hi); err != nil {
					t.Fatalf("query %q produced invalid result: %v", input, err)
				}
			}
		}
	})
}
