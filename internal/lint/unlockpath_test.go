package lint_test

import (
	"testing"

	"tempagg/internal/lint"
	"tempagg/internal/lint/linttest"
)

func TestUnlockPath(t *testing.T) {
	linttest.Run(t, lint.UnlockPath, "unlockpath")
}
