package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tempagg/internal/aggregate"
	"tempagg/internal/interval"
)

func row(f aggregate.Func, s, e interval.Time, vals ...int64) Row {
	st := f.Zero()
	for _, v := range vals {
		st = f.Add(st, v)
	}
	return Row{Interval: interval.MustNew(s, e), State: st}
}

func TestCoalesceMergesEqualAdjacent(t *testing.T) {
	f := aggregate.For(aggregate.Count)
	res := &Result{Func: f, Rows: []Row{
		row(f, 0, 4, 7),
		row(f, 5, 9, 8),      // same count (1) as previous: merge
		row(f, 10, 19, 1, 2), // count 2: new row
		row(f, 20, interval.Forever),
	}}
	res.Coalesce()
	if len(res.Rows) != 3 {
		t.Fatalf("coalesced to %d rows, want 3: %v", len(res.Rows), res.Rows)
	}
	if res.Rows[0].Interval != interval.MustNew(0, 9) {
		t.Fatalf("first coalesced interval = %v", res.Rows[0].Interval)
	}
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCoalesceKeepsUnequalRows(t *testing.T) {
	f := aggregate.For(aggregate.Sum)
	res := &Result{Func: f, Rows: []Row{
		row(f, 0, 4, 10),
		row(f, 5, 9, 20),
		row(f, 10, interval.Forever),
	}}
	res.Coalesce()
	if len(res.Rows) != 3 {
		t.Fatalf("coalesce merged unequal rows: %v", res.Rows)
	}
}

func TestCoalesceEmpty(t *testing.T) {
	res := &Result{Func: aggregate.For(aggregate.Count)}
	if got := res.Coalesce(); len(got.Rows) != 0 {
		t.Fatal("coalescing an empty result must stay empty")
	}
}

func TestCoalesceIsIdempotent(t *testing.T) {
	r := rand.New(rand.NewSource(20))
	f := aggregate.For(aggregate.Count)
	prop := func() bool {
		ts := randomTuples(r, r.Intn(40), 100)
		res := Reference(f, ts)
		res.Coalesce()
		n := len(res.Rows)
		res.Coalesce()
		return len(res.Rows) == n && res.Validate() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCoalescePreservesValues(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for _, kind := range aggregate.Kinds() {
		f := aggregate.For(kind)
		prop := func() bool {
			ts := randomTuples(r, r.Intn(40), 100)
			full := Reference(f, ts)
			coal := Reference(f, ts).Coalesce()
			for _, probe := range []interval.Time{0, 1, 50, 99, 100, 150, interval.Forever} {
				a, ok1 := full.At(probe)
				b, ok2 := coal.At(probe)
				if !ok1 || !ok2 || a != b {
					return false
				}
			}
			return true
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
	}
}

func TestAtOutsideRows(t *testing.T) {
	f := aggregate.For(aggregate.Count)
	res := &Result{Func: f, Rows: []Row{row(f, 10, 20, 1)}}
	if _, ok := res.At(5); ok {
		t.Fatal("At before the first row must report not found")
	}
	if _, ok := res.At(21); ok {
		t.Fatal("At after the last row must report not found")
	}
}

func TestValidatePartitionFailures(t *testing.T) {
	f := aggregate.For(aggregate.Count)
	cases := map[string]*Result{
		"empty": {Func: f},
		"gap": {Func: f, Rows: []Row{
			row(f, 0, 4), row(f, 6, interval.Forever),
		}},
		"overlap": {Func: f, Rows: []Row{
			row(f, 0, 5), row(f, 5, interval.Forever),
		}},
		"late start": {Func: f, Rows: []Row{
			row(f, 1, interval.Forever),
		}},
		"early end": {Func: f, Rows: []Row{
			row(f, 0, 10),
		}},
	}
	for name, res := range cases {
		if err := res.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a non-partition", name)
		}
	}
}

func TestEqualIgnoresBoundaryDifferences(t *testing.T) {
	f := aggregate.For(aggregate.Count)
	a := &Result{Func: f, Rows: []Row{
		row(f, 0, 4, 1), row(f, 5, 9, 2), row(f, 10, interval.Forever),
	}}
	b := &Result{Func: f, Rows: []Row{
		row(f, 0, 2, 1), row(f, 3, 4, 7), // same value, split differently
		row(f, 5, 9, 2), row(f, 10, interval.Forever),
	}}
	if !a.Equal(b) {
		t.Fatal("value-equivalent results must compare equal")
	}
	c := &Result{Func: f, Rows: []Row{
		row(f, 0, 9, 1, 1), row(f, 10, interval.Forever), // count 2 ≠ counts in a
	}}
	if a.Equal(c) {
		t.Fatal("results with different values must not compare equal")
	}
	d := &Result{Func: aggregate.For(aggregate.Sum), Rows: a.Rows}
	if a.Equal(d) {
		t.Fatal("results under different aggregates must not compare equal")
	}
}

func TestEqualDoesNotMutate(t *testing.T) {
	f := aggregate.For(aggregate.Count)
	a := &Result{Func: f, Rows: []Row{
		row(f, 0, 4, 1), row(f, 5, 9, 3), row(f, 10, interval.Forever),
	}}
	n := len(a.Rows)
	a.Equal(a)
	if len(a.Rows) != n {
		t.Fatal("Equal must not coalesce its receivers in place")
	}
}
