package obs

import (
	"sort"
	"strconv"
	"sync"
	"time"
)

// QueryStatsConfig sizes the rolling latency window behind /debug/queries.
// The zero value selects the defaults noted on each field.
type QueryStatsConfig struct {
	// Window is the total look-back horizon (default 2 minutes).
	Window time.Duration
	// Slots is how many ring slots the window is cut into; a sample expires
	// when its slot's whole time range ages out (default 8).
	Slots int
	// Buckets are the histogram upper bounds in seconds (default
	// DefaultDurationBuckets).
	Buckets []float64
	// SlowThreshold is the per-stage latency above which a sample counts
	// against the SLO budget (default 100ms).
	SlowThreshold time.Duration
	// ErrorBudget is the tolerated slow fraction; the burn rate is the
	// observed slow fraction divided by this budget, so >1 means the stage
	// is burning budget faster than the SLO allows (default 1%).
	ErrorBudget float64
}

func (c QueryStatsConfig) withDefaults() QueryStatsConfig {
	if c.Window <= 0 {
		c.Window = 2 * time.Minute
	}
	if c.Slots <= 0 {
		c.Slots = 8
	}
	if len(c.Buckets) == 0 {
		c.Buckets = DefaultDurationBuckets
	}
	if c.SlowThreshold <= 0 {
		c.SlowThreshold = 100 * time.Millisecond
	}
	if c.ErrorBudget <= 0 {
		c.ErrorBudget = 0.01
	}
	return c
}

// QueryStats is a rolling window of per-stage, per-algorithm latency
// histograms with bucket exemplars: every finished trace's stage spans are
// folded in, expired slots age out, and Snapshot serves quantile estimates
// plus a burn-rate view of the slowest stages. A nil *QueryStats is the
// disabled state.
type QueryStats struct {
	cfg QueryStatsConfig
	now func() time.Time // injectable for tests

	mu     sync.Mutex
	series map[string]*stageSeries
}

// stageSeries is the slot ring for one (stage, algorithm) pair.
type stageSeries struct {
	stage, algorithm string
	slots            []statsSlot
}

// statsSlot is one time slice of a series. epoch is the absolute slot
// number (unix time / slot duration); a slot whose epoch is stale is reset
// before reuse, which is how samples expire without a sweeper goroutine.
type statsSlot struct {
	epoch     int64
	counts    []int64  // per bucket bound, +Inf last
	exemplars []string // most recent trace ID landing in each bucket
	count     int64
	sum       float64
	slow      int64
}

// NewQueryStats returns an empty rolling window.
func NewQueryStats(cfg QueryStatsConfig) *QueryStats {
	return &QueryStats{cfg: cfg.withDefaults(), now: time.Now, series: map[string]*stageSeries{}}
}

func (q *QueryStats) slotDur() time.Duration {
	return q.cfg.Window / time.Duration(q.cfg.Slots)
}

// Observe folds one stage sample into the window.
func (q *QueryStats) Observe(stage, algorithm string, d time.Duration, traceID string) {
	if q == nil {
		return
	}
	seconds := d.Seconds()
	epoch := q.now().UnixNano() / int64(q.slotDur())
	key := stage + "\x1f" + algorithm
	q.mu.Lock()
	s := q.series[key]
	if s == nil {
		s = &stageSeries{stage: stage, algorithm: algorithm, slots: make([]statsSlot, q.cfg.Slots)}
		q.series[key] = s
	}
	slot := &s.slots[epoch%int64(q.cfg.Slots)]
	if slot.epoch != epoch {
		*slot = statsSlot{
			epoch:     epoch,
			counts:    make([]int64, len(q.cfg.Buckets)+1),
			exemplars: make([]string, len(q.cfg.Buckets)+1),
		}
	}
	b := sort.SearchFloat64s(q.cfg.Buckets, seconds)
	slot.counts[b]++
	slot.exemplars[b] = traceID
	slot.count++
	slot.sum += seconds
	if d >= q.cfg.SlowThreshold {
		slot.slow++
	}
	q.mu.Unlock()
}

// ObserveTrace folds a finished trace into the window: the whole query
// under stage "query" plus one sample per top-level stage span, all
// labeled with the chosen algorithm.
func (q *QueryStats) ObserveTrace(tr *QueryTrace) {
	if q == nil || tr == nil {
		return
	}
	alg := tr.Algorithm
	if alg == "" {
		alg = "none"
	}
	q.Observe("query", alg, tr.Duration, tr.TraceID)
	for _, sp := range tr.SpanTree() {
		q.Observe(sp.Name, alg, sp.Duration, tr.TraceID)
	}
}

// StageBucket is one histogram bucket of a stage snapshot; Count is
// non-cumulative and Exemplar is the most recent trace ID that landed in
// the bucket inside the window. LE is the bucket's upper bound rendered as
// Prometheus renders it ("+Inf" for the overflow bucket) — JSON cannot
// encode infinities as numbers.
type StageBucket struct {
	LE       string `json:"le"`
	Count    int64  `json:"count"`
	Exemplar string `json:"exemplar_trace_id,omitempty"`
}

// StageSnapshot is the merged window state of one (stage, algorithm) pair.
type StageSnapshot struct {
	Stage     string        `json:"stage"`
	Algorithm string        `json:"algorithm"`
	Count     int64         `json:"count"`
	SumSecs   float64       `json:"sum_seconds"`
	P50       float64       `json:"p50_seconds"`
	P90       float64       `json:"p90_seconds"`
	P99       float64       `json:"p99_seconds"`
	SlowCount int64         `json:"slow_count"`
	BurnRate  float64       `json:"burn_rate"`
	Buckets   []StageBucket `json:"buckets"`
}

// WindowSnapshot is the /debug/queries payload: config echo, every live
// stage series, and the burn-rate-ordered slow-stage view.
type WindowSnapshot struct {
	WindowSeconds float64         `json:"window_seconds"`
	SlowThreshold float64         `json:"slow_threshold_seconds"`
	ErrorBudget   float64         `json:"error_budget"`
	Stages        []StageSnapshot `json:"stages"`
	SlowStages    []StageSnapshot `json:"slow_stages"`
}

// Snapshot merges the live slots of every series and computes quantiles.
func (q *QueryStats) Snapshot() WindowSnapshot {
	if q == nil {
		return WindowSnapshot{}
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	epoch := q.now().UnixNano() / int64(q.slotDur())
	oldest := epoch - int64(q.cfg.Slots) + 1
	out := WindowSnapshot{
		WindowSeconds: q.cfg.Window.Seconds(),
		SlowThreshold: q.cfg.SlowThreshold.Seconds(),
		ErrorBudget:   q.cfg.ErrorBudget,
		Stages:        []StageSnapshot{},
		SlowStages:    []StageSnapshot{},
	}
	for _, s := range q.series {
		snap := StageSnapshot{Stage: s.stage, Algorithm: s.algorithm}
		counts := make([]int64, len(q.cfg.Buckets)+1)
		exemplars := make([]string, len(q.cfg.Buckets)+1)
		for i := range s.slots {
			slot := &s.slots[i]
			if slot.epoch < oldest || slot.epoch > epoch || slot.count == 0 {
				continue
			}
			for b, c := range slot.counts {
				counts[b] += c
				if slot.exemplars[b] != "" {
					exemplars[b] = slot.exemplars[b]
				}
			}
			snap.Count += slot.count
			snap.SumSecs += slot.sum
			snap.SlowCount += slot.slow
		}
		if snap.Count == 0 {
			continue
		}
		for b := range counts {
			le := "+Inf"
			if b < len(q.cfg.Buckets) {
				le = strconv.FormatFloat(q.cfg.Buckets[b], 'g', -1, 64)
			}
			snap.Buckets = append(snap.Buckets, StageBucket{LE: le, Count: counts[b], Exemplar: exemplars[b]})
		}
		snap.P50 = quantile(q.cfg.Buckets, counts, snap.Count, 0.50)
		snap.P90 = quantile(q.cfg.Buckets, counts, snap.Count, 0.90)
		snap.P99 = quantile(q.cfg.Buckets, counts, snap.Count, 0.99)
		snap.BurnRate = float64(snap.SlowCount) / float64(snap.Count) / q.cfg.ErrorBudget
		out.Stages = append(out.Stages, snap)
	}
	sort.Slice(out.Stages, func(i, j int) bool {
		if out.Stages[i].Stage != out.Stages[j].Stage {
			return out.Stages[i].Stage < out.Stages[j].Stage
		}
		return out.Stages[i].Algorithm < out.Stages[j].Algorithm
	})
	for _, s := range out.Stages {
		if s.SlowCount > 0 {
			out.SlowStages = append(out.SlowStages, s)
		}
	}
	sort.SliceStable(out.SlowStages, func(i, j int) bool {
		return out.SlowStages[i].BurnRate > out.SlowStages[j].BurnRate
	})
	return out
}

// quantile estimates the qth quantile from merged bucket counts by linear
// interpolation inside the containing bucket; samples past the last finite
// bound are reported as that bound (the histogram cannot resolve further).
func quantile(bounds []float64, counts []int64, total int64, qth float64) float64 {
	if total == 0 {
		return 0
	}
	target := qth * float64(total)
	cum := int64(0)
	for b, c := range counts {
		if c == 0 {
			continue
		}
		prev := float64(cum)
		cum += c
		if float64(cum) < target {
			continue
		}
		if b >= len(bounds) {
			return bounds[len(bounds)-1]
		}
		lo := 0.0
		if b > 0 {
			lo = bounds[b-1]
		}
		frac := (target - prev) / float64(c)
		if frac < 0 {
			frac = 0
		}
		return lo + (bounds[b]-lo)*frac
	}
	return bounds[len(bounds)-1]
}
