package core

import (
	"bytes"
	"math/rand"
	"testing"

	"tempagg/internal/aggregate"
)

// randomPartial draws a structurally valid partial: empty, single-tuple
// (sum = min = max), or multi-tuple with min ≤ max.
func randomPartial(r *rand.Rand) IndexPartial {
	switch r.Intn(3) {
	case 0:
		return IndexPartial{}
	case 1:
		v := r.Int63n(2001) - 1000
		return IndexPartial{Count: 1, Sum: v, Min: v, Max: v}
	}
	var p IndexPartial
	for i, n := 0, 2+r.Intn(6); i < n; i++ {
		p.add(r.Int63n(2001) - 1000)
	}
	return p
}

// TestPartialRoundTrip pins the canonical encoding: decode(encode(p)) == p,
// the byte count is exact, and re-encoding reproduces the bytes.
func TestPartialRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		p := randomPartial(r)
		enc := p.AppendBinary(nil)
		got, n, err := DecodeIndexPartial(enc)
		if err != nil {
			t.Fatalf("%+v: %v", p, err)
		}
		if n != len(enc) {
			t.Fatalf("%+v: consumed %d of %d bytes", p, n, len(enc))
		}
		if got != p {
			t.Fatalf("round-trip: got %+v, want %+v", got, p)
		}
		if !bytes.Equal(got.AppendBinary(nil), enc) {
			t.Fatalf("%+v: re-encoding differs", p)
		}
	}
}

// TestPartialDecodeRejects enumerates the non-canonical forms the decoder
// must refuse: truncation, non-minimal varints, inconsistent single-tuple
// counters, and inverted extrema.
func TestPartialDecodeRejects(t *testing.T) {
	cases := []struct {
		name string
		b    []byte
	}{
		{"empty input", nil},
		{"truncated count", []byte{0x80}},
		{"non-minimal count", []byte{0x80, 0x00}},
		{"count without fields", []byte{0x01}},
		{"truncated sum", []byte{0x02, 0x80}},
		{"non-minimal sum", append([]byte{0x02}, 0x84, 0x00, 0x02, 0x02)},
		{"min above max", IndexPartial{Count: 2, Sum: 0, Min: 5, Max: -5}.AppendBinary(nil)},
		{"single-tuple sum mismatch", IndexPartial{Count: 1, Sum: 9, Min: 2, Max: 2}.AppendBinary(nil)},
		{"count overflows int64", append([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}, 0x02, 0x02, 0x02)},
	}
	for _, tc := range cases {
		if _, _, err := DecodeIndexPartial(tc.b); err == nil {
			t.Errorf("%s: accepted % x", tc.name, tc.b)
		}
	}
}

// TestMergePartialsAlgebra pins the merge algebra the index relies on:
// zero identity, commutativity, and associativity.
func TestMergePartialsAlgebra(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 300; i++ {
		a, b, c := randomPartial(r), randomPartial(r), randomPartial(r)
		if MergePartials(a, IndexPartial{}) != a || MergePartials(IndexPartial{}, a) != a {
			t.Fatalf("zero is not the identity for %+v", a)
		}
		if MergePartials(a, b) != MergePartials(b, a) {
			t.Fatalf("merge not commutative: %+v, %+v", a, b)
		}
		if MergePartials(MergePartials(a, b), c) != MergePartials(a, MergePartials(b, c)) {
			t.Fatalf("merge not associative: %+v, %+v, %+v", a, b, c)
		}
	}
}

// TestPartialState checks reconstitution against direct aggregation: a
// partial built by absorbing values must denote, for every kind, the state
// reached by f.Add over the same values.
func TestPartialState(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		n := r.Intn(8)
		var p IndexPartial
		vals := make([]int64, n)
		for j := range vals {
			vals[j] = r.Int63n(2001) - 1000
			p.add(vals[j])
		}
		for _, k := range aggregate.Kinds() {
			f := aggregate.For(k)
			want := f.Zero()
			for _, v := range vals {
				want = f.Add(want, v)
			}
			if got := p.State(f); !f.StateEqual(got, want) {
				t.Fatalf("%v over %v: reconstituted state differs", k, vals)
			}
		}
	}
}
