package core

import (
	"fmt"

	"tempagg/internal/aggregate"
	"tempagg/internal/interval"
	"tempagg/internal/tuple"
)

// GroupBySpan computes the temporal aggregate grouped by fixed-length spans
// rather than by instant — the paper's second form of temporal grouping
// (§2: "by a span, a calendar-defined length of time, such as a year") and
// one of its future-work directions (§7): when the number of spans is much
// smaller than the number of constant intervals, far fewer buckets need to
// be maintained.
//
// The window is partitioned into consecutive spans of `span` chronons
// starting at window.Start (the final span is clipped to window.End). A
// tuple belongs to every span its interval overlaps; the aggregate is
// evaluated over each span's group. The window must be finite.
func GroupBySpan(f aggregate.Func, tuples []tuple.Tuple, span interval.Time, window interval.Interval) (*Result, error) {
	if span <= 0 {
		return nil, fmt.Errorf("core: span must be positive, got %d", span)
	}
	if err := window.Validate(); err != nil {
		return nil, fmt.Errorf("core: span window: %w", err)
	}
	if window.End == interval.Forever {
		return nil, fmt.Errorf("core: span grouping requires a finite window")
	}
	nspans := int((window.Duration() + span - 1) / span)
	states := make([]aggregate.State, nspans)
	for _, t := range tuples {
		iv, ok := t.Valid.Intersect(window)
		if !ok {
			continue
		}
		first := int((iv.Start - window.Start) / span)
		last := int((iv.End - window.Start) / span)
		for b := first; b <= last; b++ {
			states[b] = f.Add(states[b], t.Value)
		}
	}
	res := &Result{Func: f, Rows: make([]Row, 0, nspans)}
	for b := 0; b < nspans; b++ {
		start := window.Start + interval.Time(b)*span
		end := start + span - 1
		if end > window.End {
			end = window.End
		}
		res.Rows = append(res.Rows, Row{
			Interval: interval.MustNew(start, end),
			State:    states[b],
		})
	}
	return res, nil
}
