// Types live in a separate file from their uses so the analyzer's
// field-identity resolution is exercised across file boundaries (the
// types.Var collected from an atomic call in fixture.go must match the
// selection resolved against this declaration).
package fixture

type counters struct {
	hits  int64
	total int64 // never touched atomically: plain access is fine
	mode  uint32
}

// liveTail mirrors the live-ingestion tail (internal/core/live.go): the
// watermark n is the writer→reader publication point and must only be
// touched through sync/atomic; the column data it guards is plain.
type liveTail struct {
	n      int64
	vals   []int64
	sealed uint32
}
