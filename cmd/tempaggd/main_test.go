package main

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"tempagg"
	"tempagg/internal/catalog"
	"tempagg/internal/obs"
	"tempagg/internal/server"
)

func TestClientModeAgainstServer(t *testing.T) {
	dir := t.TempDir()
	if err := tempagg.WriteRelation(filepath.Join(dir, "Employed.rel"), tempagg.Employed()); err != nil {
		t.Fatal(err)
	}
	cat, err := catalog.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(cat)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(lis) }()
	defer func() {
		if err := srv.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
		if err := <-serveErr; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()
	// Let the accept loop spin up.
	time.Sleep(10 * time.Millisecond)

	var b strings.Builder
	err = run([]string{"-connect", lis.Addr().String(),
		"-query", "SELECT COUNT(Name) FROM Employed"}, &b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"ok":true`) {
		t.Fatalf("client output:\n%s", b.String())
	}
}

func TestFlagValidation(t *testing.T) {
	var b strings.Builder
	if err := run(nil, &b, nil); err == nil {
		t.Error("no mode must fail")
	}
	if err := run([]string{"-listen", ":0", "-connect", "x"}, &b, nil); err == nil {
		t.Error("both modes must fail")
	}
	if err := run([]string{"-listen", ":0"}, &b, nil); err == nil {
		t.Error("listen without -db must fail")
	}
	if err := run([]string{"-connect", "127.0.0.1:1"}, &b, nil); err == nil {
		t.Error("connect without -query must fail")
	}
	if err := run([]string{"-connect", "127.0.0.1:1", "-query", "x"}, &b, nil); err == nil {
		t.Error("unreachable server must fail")
	}
	if err := run([]string{"-listen", ":0", "-db", "/nonexistent"}, &b, nil); err == nil {
		t.Error("missing catalog must fail")
	}
}

// TestObsSmoke is the CI obs-smoke gate: boot the daemon with its admin
// surface, run a plain query cold and the same query warm under EXPLAIN
// ANALYZE, and fail if /metrics, /debug/traces, /debug/queries, or
// /debug/pprof/heap is broken, the advertised counters stayed at zero,
// the warm run was not served from the result cache, or the JSON debug
// payloads lost their schema. When OBS_SMOKE_ARTIFACT is set, the
// /debug/traces body is written there so CI can upload it as an artifact.
func TestObsSmoke(t *testing.T) {
	dir := t.TempDir()
	if err := tempagg.WriteRelation(filepath.Join(dir, "Employed.rel"), tempagg.Employed()); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	type addrs struct{ query, admin string }
	up := make(chan addrs, 1)
	done := make(chan error, 1)
	// resultCache 0 enables the cache at default capacity; rangeIndex stays
	// off so the cold query exercises the sweep path the counter assertions
	// below depend on (tuples processed, nodes allocated).
	cfg := serveConfig{db: dir, listen: "127.0.0.1:0", httpAddr: "127.0.0.1:0",
		slowQuery: time.Nanosecond, traces: 16, resultCache: 0}
	var out strings.Builder
	go func() {
		done <- serve(cfg, &out, func(q, a string) { up <- addrs{q, a} }, stop)
	}()
	var a addrs
	select {
	case a = <-up:
	case err := <-done:
		t.Fatalf("daemon died before ready: %v\n%s", err, out.String())
	case <-time.After(5 * time.Second):
		t.Fatal("daemon never came up")
	}
	defer func() {
		close(stop)
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	}()

	c, err := server.Dial(a.query)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Query("SELECT COUNT(Name) FROM Employed")
	if err != nil || !resp.OK {
		t.Fatalf("query failed: %+v, %v", resp, err)
	}

	// EXPLAIN ANALYZE over the wire, warm: the cold query above filled the
	// result cache, so the report must show the hit — the result-cache plan
	// line plus the lookup span with outcome=hit — instead of an execute
	// span (S37).
	raw, err := c.QueryRaw("EXPLAIN ANALYZE SELECT COUNT(Name) FROM Employed")
	if err != nil {
		t.Fatalf("EXPLAIN ANALYZE failed: %v", err)
	}
	for _, want := range []string{`"explain"`, "trace:", "counters:",
		"result cache hit at version", "result-cache[outcome=hit]"} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("EXPLAIN ANALYZE reply missing %q:\n%s", want, raw)
		}
	}

	get := func(path string) string {
		r, err := http.Get("http://" + a.admin + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer r.Body.Close()
		body, err := io.ReadAll(r.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if r.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d\n%s", path, r.StatusCode, body)
		}
		if len(body) == 0 {
			t.Fatalf("GET %s: empty body", path)
		}
		return string(body)
	}

	metrics := get("/metrics")
	for _, name := range []string{
		obs.MetricTuplesProcessed,
		obs.MetricNodesAllocated,
		obs.MetricQueryDuration + "_bucket",
	} {
		re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + `\{[^}]*\} ([0-9.e+-]+)$`)
		m := re.FindAllStringSubmatch(metrics, -1)
		if len(m) == 0 {
			t.Errorf("%s missing from /metrics:\n%s", name, metrics)
			continue
		}
		nonzero := false
		for _, g := range m {
			if g[1] != "0" {
				nonzero = true
			}
		}
		if !nonzero {
			t.Errorf("%s is all zeros after a query:\n%s", name, metrics)
		}
	}
	// The cold query missed the result cache and the warm EXPLAIN ANALYZE
	// hit it; both counters are unlabeled, so match them bare.
	for _, name := range []string{obs.MetricResultCacheHits, obs.MetricResultCacheMisses} {
		re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` ([1-9][0-9]*)$`)
		if !re.MatchString(metrics) {
			t.Errorf("%s missing or zero in /metrics after a warm query:\n%s", name, metrics)
		}
	}
	get("/debug/pprof/heap")

	// /debug/traces must stay schema-stable JSON: every trace carries a
	// trace ID, query text, algorithm, and named spans.
	tracesBody := get("/debug/traces")
	if !strings.Contains(tracesBody, "SELECT COUNT(Name) FROM Employed") {
		t.Errorf("/debug/traces missing the query:\n%s", tracesBody)
	}
	var traces []struct {
		TraceID   string `json:"trace_id"`
		Query     string `json:"query"`
		Algorithm string `json:"algorithm"`
		Stats     struct {
			Tuples int `json:"tuples"`
		} `json:"stats"`
		Spans []struct {
			Name       string `json:"name"`
			SpanID     string `json:"span_id"`
			DurationNS int64  `json:"duration_ns"`
		} `json:"spans"`
	}
	if err := json.Unmarshal([]byte(tracesBody), &traces); err != nil {
		t.Fatalf("/debug/traces is not valid JSON: %v", err)
	}
	if len(traces) != 2 {
		t.Fatalf("/debug/traces holds %d traces, want 2", len(traces))
	}
	cached := 0
	for _, tr := range traces {
		if tr.TraceID == "" || tr.Query == "" || tr.Algorithm == "" {
			t.Errorf("trace missing identity fields: %+v", tr)
		}
		names := map[string]bool{}
		for _, sp := range tr.Spans {
			if sp.Name == "" || sp.SpanID == "" {
				t.Errorf("trace %s has an anonymous span: %+v", tr.TraceID, sp)
			}
			names[sp.Name] = true
		}
		// A cache-served trace never executes — it reads no tuples and its
		// span tree is parse plus the result-cache lookup. Every other trace
		// keeps the full stage ladder.
		if tr.Algorithm == "result-cache" {
			cached++
			for _, want := range []string{"parse", "result-cache"} {
				if !names[want] {
					t.Errorf("cached trace %s missing %q span: %+v", tr.TraceID, want, tr.Spans)
				}
			}
			continue
		}
		if tr.Stats.Tuples == 0 {
			t.Errorf("trace %s has zero tuples", tr.TraceID)
		}
		for _, want := range []string{"parse", "plan", "execute"} {
			if !names[want] {
				t.Errorf("trace %s missing %q span: %+v", tr.TraceID, want, tr.Spans)
			}
		}
	}
	if cached != 1 {
		t.Errorf("want exactly 1 cache-served trace, got %d:\n%s", cached, tracesBody)
	}

	// /debug/queries must serve the rolling window with per-stage series.
	var window obs.WindowSnapshot
	if err := json.Unmarshal([]byte(get("/debug/queries")), &window); err != nil {
		t.Fatalf("/debug/queries is not valid JSON: %v", err)
	}
	if window.WindowSeconds <= 0 {
		t.Errorf("/debug/queries window config not echoed: %+v", window)
	}
	stages := map[string]bool{}
	for _, s := range window.Stages {
		if s.Count <= 0 || len(s.Buckets) == 0 {
			t.Errorf("stage %q/%q has no samples or buckets", s.Stage, s.Algorithm)
		}
		stages[s.Stage] = true
	}
	for _, want := range []string{"query", "parse", "plan", "execute"} {
		if !stages[want] {
			t.Errorf("/debug/queries missing stage %q: %+v", want, window.Stages)
		}
	}

	// Both queries crossed the nanosecond slow threshold, so the burn-rate
	// view must rank at least one stage.
	if len(window.SlowStages) == 0 {
		t.Error("/debug/queries slow-stage view is empty despite 1ns threshold")
	}

	if path := os.Getenv("OBS_SMOKE_ARTIFACT"); path != "" {
		if err := os.WriteFile(path, []byte(tracesBody), 0o644); err != nil {
			t.Errorf("writing trace artifact: %v", err)
		}
	}
}
