package core

import (
	"fmt"
	"math/rand"
	"testing"

	"tempagg/internal/aggregate"
	"tempagg/internal/interval"
	"tempagg/internal/tuple"
	"tempagg/internal/workload"
)

// This file is the differential-oracle harness: every evaluation strategy,
// over every aggregate and every Table 3 workload shape, must agree with the
// O(n²) Reference oracle — plus metamorphic properties (time-shift
// invariance, partition-concatenation equivalence, order-insensitivity)
// that hold by the definition of the temporal aggregate regardless of what
// the oracle says. Relation sizes are kept small because Reference is
// quadratic by design; the interesting structure (splits, GC, partition
// boundaries, arena reuse) is fully exercised well below 1K tuples.

// diffStrategy is one evaluation strategy under differential test.
type diffStrategy struct {
	name string
	// run evaluates ts; k is the input's disorder bound (len(ts) when the
	// order is unknown), for the strategies that need it.
	run func(t *testing.T, f aggregate.Func, ts []tuple.Tuple, k int) (*Result, error)
}

func runSpec(spec Spec) func(*testing.T, aggregate.Func, []tuple.Tuple, int) (*Result, error) {
	return func(_ *testing.T, f aggregate.Func, ts []tuple.Tuple, _ int) (*Result, error) {
		res, _, err := Run(spec, f, ts)
		return res, err
	}
}

func runPartitioned(opts PartitionOptions) func(*testing.T, aggregate.Func, []tuple.Tuple, int) (*Result, error) {
	return func(t *testing.T, f aggregate.Func, ts []tuple.Tuple, _ int) (*Result, error) {
		o := opts
		if o.SpillDir == "spill" {
			o.SpillDir = t.TempDir()
		}
		res, _, err := EvaluatePartitionedTuples(f, ts, o)
		return res, err
	}
}

func diffStrategies(boundaries []interval.Time) []diffStrategy {
	return []diffStrategy{
		{"tuma", func(_ *testing.T, f aggregate.Func, ts []tuple.Tuple, _ int) (*Result, error) {
			return Tuma(NewSliceSource(ts), f)
		}},
		{"linked-list", runSpec(Spec{Algorithm: LinkedList})},
		{"aggregation-tree", runSpec(Spec{Algorithm: AggregationTree})},
		{"balanced-tree", runSpec(Spec{Algorithm: BalancedTree})},
		{"k-ordered-tree", func(_ *testing.T, f aggregate.Func, ts []tuple.Tuple, k int) (*Result, error) {
			res, _, err := Run(Spec{Algorithm: KOrderedTree, K: k}, f, ts)
			return res, err
		}},
		{"sweep", runSpec(Spec{Algorithm: SweepEval})},
		// WedgeBound 1 forces the MIN/MAX wedge into the aggregation-tree
		// fallback on any overlap, so the escape hatch is diffed against the
		// oracle as thoroughly as the sweep itself (decomposable aggregates
		// never consult the bound and run the normal event path).
		{"sweep-forced-fallback", func(_ *testing.T, f aggregate.Func, ts []tuple.Tuple, _ int) (*Result, error) {
			ev := NewSweep(f)
			ev.WedgeBound = 1
			for lo := 0; lo < len(ts); lo += BatchPage {
				hi := min(lo+BatchPage, len(ts))
				if err := ev.AddBatch(ts[lo:hi]); err != nil {
					return nil, err
				}
			}
			return ev.Finish()
		}},
		// Parallel sweep at 1 (forced serial), 2, and 8 workers: an explicit
		// Parallel > 1 takes the chunked scan whatever the input size, so the
		// oracle exercises real chunk boundaries even at these small n.
		{"sweep-parallel=1", runSpec(Spec{Algorithm: SweepEval, Parallel: 1})},
		{"sweep-parallel=2", runSpec(Spec{Algorithm: SweepEval, Parallel: 2})},
		{"sweep-parallel=8", runSpec(Spec{Algorithm: SweepEval, Parallel: 8})},
		// The shared multi-query pass: the aggregate under test rides in one
		// SweepGroup next to sidecar queries (one unfiltered, one filtered) so
		// masked events and foreign row boundaries are in play. MIN/MAX are
		// not registrable and fall back to a dedicated sweep, as the query
		// layer does.
		{"sweep-group-shared", func(_ *testing.T, f aggregate.Func, ts []tuple.Tuple, _ int) (*Result, error) {
			if !f.Kind().Decomposable() {
				res, _, err := Run(Spec{Algorithm: SweepEval}, f, ts)
				return res, err
			}
			g := NewSweepGroup(SweepOptions{Parallel: 2})
			idx, err := g.Register(GroupQuery{Func: f})
			if err != nil {
				return nil, err
			}
			if _, err := g.Register(GroupQuery{Func: aggregate.For(aggregate.Count)}); err != nil {
				return nil, err
			}
			if _, err := g.Register(GroupQuery{
				Func:   aggregate.For(aggregate.Sum),
				Filter: func(tu tuple.Tuple) bool { return tu.Value%2 == 0 },
			}); err != nil {
				return nil, err
			}
			for lo := 0; lo < len(ts); lo += BatchPage {
				hi := min(lo+BatchPage, len(ts))
				if err := g.AddBatch(ts[lo:hi]); err != nil {
					return nil, err
				}
			}
			results, err := g.Finish()
			if err != nil {
				return nil, err
			}
			return results[idx], nil
		}},
		// The live evaluator read at its final epoch. SegmentSize 32 forces
		// several seal boundaries and a partial tail at the oracle's sizes,
		// so the segment-merge path and the tail sweep are both in play.
		{"live-snapshot", func(_ *testing.T, f aggregate.Func, ts []tuple.Tuple, _ int) (*Result, error) {
			ev := NewLive(LiveOptions{SegmentSize: 32})
			defer closeLive(ev)
			if err := ev.AddBatch(ts); err != nil {
				return nil, err
			}
			snap, err := ev.Snapshot()
			if err != nil {
				return nil, err
			}
			return snap.Result(f)
		}},
		// Same read, but taken mid-stream first: a snapshot at the halfway
		// epoch is held and verified against the oracle over exactly that
		// prefix, then ingestion continues and the final epoch is returned.
		// This pins the consistency claim — the held snapshot must not see
		// the second half — and exercises the prefix-memo fallback, since
		// the old snapshot is read after the memo advanced past it.
		{"live-midstream-snapshot", func(t *testing.T, f aggregate.Func, ts []tuple.Tuple, _ int) (*Result, error) {
			ev := NewLive(LiveOptions{SegmentSize: 32})
			defer closeLive(ev)
			half := len(ts) / 2
			if err := ev.AddBatch(ts[:half]); err != nil {
				return nil, err
			}
			mid, err := ev.Snapshot()
			if err != nil {
				return nil, err
			}
			if err := ev.AddBatch(ts[half:]); err != nil {
				return nil, err
			}
			snap, err := ev.Snapshot()
			if err != nil {
				return nil, err
			}
			res, err := snap.Result(f)
			if err != nil {
				return nil, err
			}
			midRes, err := mid.Result(f)
			if err != nil {
				return nil, err
			}
			if want := Reference(f, ts[:half]); !midRes.Equal(want) {
				t.Fatalf("mid-stream snapshot saw tuples past its epoch:\ngot:\n%s\nwant:\n%s", midRes, want)
			}
			return res, nil
		}},
		// The materialized partial-state interval index read over the whole
		// time-line: every elementary interval's state is a root-path merge
		// of node partials, so this diffs the canonical-node assignment and
		// the per-kind State reconstitution against the oracle. Windowed
		// lookups are diffed separately (TestIndexRangePositions).
		{"index-lookup", func(_ *testing.T, f aggregate.Func, ts []tuple.Tuple, _ int) (*Result, error) {
			idx, err := NewIntervalIndex(ts)
			if err != nil {
				return nil, err
			}
			return idx.Result(f)
		}},
		// The live indexed range read at full span: sealed segments answer
		// from their memoized per-segment indexes, the tail prefix is swept,
		// and the window partitions are merged — the mixed index+tail path a
		// live VALID OVERLAPS query takes (S37).
		{"index-live-tail", func(_ *testing.T, f aggregate.Func, ts []tuple.Tuple, _ int) (*Result, error) {
			ev := NewLive(LiveOptions{SegmentSize: 32})
			defer closeLive(ev)
			if err := ev.AddBatch(ts); err != nil {
				return nil, err
			}
			snap, err := ev.Snapshot()
			if err != nil {
				return nil, err
			}
			return snap.RangeIndexed(f, interval.Universe())
		}},
		{"partitioned-serial", runPartitioned(PartitionOptions{Boundaries: boundaries})},
		{"partitioned-parallel", runPartitioned(PartitionOptions{Boundaries: boundaries, Parallel: 4})},
		{"partitioned-spill", runPartitioned(PartitionOptions{Boundaries: boundaries, SpillDir: "spill", Parallel: 2})},
		{"partitioned-sweep", runPartitioned(PartitionOptions{Boundaries: boundaries, Parallel: 2, Sweep: true})},
	}
}

// diffWorkload is one Table 3 workload shape at differential-test scale.
type diffWorkload struct {
	name string
	cfg  workload.Config
	// k bounds the relation's disorder for the k-ordered tree.
	k func(n int) int
}

func diffWorkloads() []diffWorkload {
	const lifespan = 4000 // small lifespan → dense overlaps and many splits
	return []diffWorkload{
		{"sorted", workload.Config{Lifespan: lifespan, Order: workload.Sorted},
			func(int) int { return 1 }},
		{"sorted-longlived", workload.Config{Lifespan: lifespan, Order: workload.Sorted, LongLivedPct: 80},
			func(int) int { return 1 }},
		{"k-ordered", workload.Config{Lifespan: lifespan, Order: workload.KOrdered, K: 4, KPct: 0.08},
			func(int) int { return 4 }},
		{"k-ordered-longlived", workload.Config{Lifespan: lifespan, Order: workload.KOrdered, K: 4, KPct: 0.08, LongLivedPct: 80},
			func(int) int { return 4 }},
		{"random", workload.Config{Lifespan: lifespan, Order: workload.Random},
			func(n int) int { return n }},
		{"random-longlived", workload.Config{Lifespan: lifespan, Order: workload.Random, LongLivedPct: 80},
			func(n int) int { return n }},
	}
}

// TestDifferentialOracle: every strategy × every aggregate × every workload
// shape must produce a valid partition of the time-line that is value-
// equivalent to the Reference oracle.
func TestDifferentialOracle(t *testing.T) {
	boundaries := []interval.Time{500, 1500, 3000}
	for _, wl := range diffWorkloads() {
		for _, n := range []int{0, 1, 37, 160} {
			cfg := wl.cfg
			cfg.Tuples = n
			cfg.Seed = int64(1000 + n)
			rel, err := workload.Generate(cfg)
			if err != nil {
				t.Fatalf("%s/%d: %v", wl.name, n, err)
			}
			for _, kind := range aggregate.Kinds() {
				f := aggregate.For(kind)
				want := Reference(f, rel.Tuples)
				for _, s := range diffStrategies(boundaries) {
					t.Run(fmt.Sprintf("%s/n=%d/%v/%s", wl.name, n, kind, s.name), func(t *testing.T) {
						got, err := s.run(t, f, rel.Tuples, wl.k(n))
						if err != nil {
							t.Fatal(err)
						}
						if err := got.Validate(); err != nil {
							t.Fatal(err)
						}
						if !got.Equal(want) {
							t.Fatalf("result differs from oracle:\ngot:\n%s\nwant:\n%s", got, want)
						}
					})
				}
			}
		}
	}
}

// shiftTuples returns ts with every interval moved delta instants later.
func shiftTuples(ts []tuple.Tuple, delta interval.Time) []tuple.Tuple {
	out := make([]tuple.Tuple, len(ts))
	for i, tu := range ts {
		end := tu.Valid.End
		if end != interval.Forever {
			end += delta
		}
		out[i] = tuple.MustNew(tu.Name, tu.Value, tu.Valid.Start+delta, end)
	}
	return out
}

// TestMetamorphicTimeShift: shifting every tuple by Δ shifts the aggregate
// by Δ — the value at instant t+Δ of the shifted evaluation equals the
// value at t of the original, at every constant-interval boundary.
func TestMetamorphicTimeShift(t *testing.T) {
	const delta interval.Time = 7919
	r := rand.New(rand.NewSource(71))
	for _, spec := range []Spec{
		{Algorithm: LinkedList},
		{Algorithm: AggregationTree},
		{Algorithm: BalancedTree},
		{Algorithm: SweepEval},
	} {
		for _, kind := range aggregate.Kinds() {
			f := aggregate.For(kind)
			ts := randomTuples(r, 120, 3000)
			base, _, err := Run(spec, f, ts)
			if err != nil {
				t.Fatal(err)
			}
			shifted, _, err := Run(spec, f, shiftTuples(ts, delta))
			if err != nil {
				t.Fatal(err)
			}
			for _, row := range base.Rows {
				for _, at := range []interval.Time{row.Interval.Start, row.Interval.End} {
					if at == interval.Forever {
						at = row.Interval.Start
					}
					want, ok := base.At(at)
					got, ok2 := shifted.At(at + delta)
					if !ok || !ok2 || got != want {
						t.Fatalf("%v/%v: value at %d+Δ = %v (ok=%v), want %v (ok=%v)",
							spec.Algorithm, kind, at, got, ok2, want, ok)
					}
				}
			}
		}
	}
}

// TestMetamorphicPartitionConcat: the streaming partitioned evaluation must
// deliver dense, ascending, span-aligned chunks whose concatenation is the
// unpartitioned result — the partition-concatenation equivalence.
func TestMetamorphicPartitionConcat(t *testing.T) {
	r := rand.New(rand.NewSource(72))
	f := aggregate.For(aggregate.Sum)
	ts := randomTuples(r, 250, 4000)
	boundaries := []interval.Time{400, 900, 2000, 3100}
	spans, err := partitionSpans(boundaries)
	if err != nil {
		t.Fatal(err)
	}
	st, err := EvaluatePartitionedStream(f, NewSliceSource(ts), PartitionOptions{
		Boundaries: boundaries,
		Parallel:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	concat := &Result{Func: f}
	next := 0
	for chunk := range st.Chunks() {
		if chunk.Index != next {
			t.Fatalf("chunk index %d, want %d (chunks must arrive dense and ascending)", chunk.Index, next)
		}
		if chunk.Span != spans[chunk.Index] {
			t.Fatalf("chunk %d span %v, want %v", chunk.Index, chunk.Span, spans[chunk.Index])
		}
		part := &Result{Func: f, Rows: chunk.Rows}
		if err := part.ValidatePartition(chunk.Span.Start, chunk.Span.End); err != nil {
			t.Fatalf("chunk %d: %v", chunk.Index, err)
		}
		concat.Rows = append(concat.Rows, chunk.Rows...)
		next++
	}
	stats, err := st.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if next != len(spans) {
		t.Fatalf("received %d chunks, want %d", next, len(spans))
	}
	if stats.Tuples != len(ts) {
		t.Fatalf("stats.Tuples = %d, want %d", stats.Tuples, len(ts))
	}
	whole, _, err := Run(Spec{Algorithm: AggregationTree}, f, ts)
	if err != nil {
		t.Fatal(err)
	}
	if err := concat.Validate(); err != nil {
		t.Fatal(err)
	}
	if !concat.Equal(whole) {
		t.Fatal("concatenated chunks differ from the unpartitioned evaluation")
	}
}

// TestMetamorphicOrderInsensitivity: for the order-insensitive evaluators,
// any permutation of the input yields the same result.
func TestMetamorphicOrderInsensitivity(t *testing.T) {
	r := rand.New(rand.NewSource(73))
	for _, spec := range []Spec{
		{Algorithm: LinkedList},
		{Algorithm: AggregationTree},
		{Algorithm: BalancedTree},
		{Algorithm: SweepEval},
	} {
		for _, kind := range aggregate.Kinds() {
			f := aggregate.For(kind)
			ts := randomTuples(r, 150, 3000)
			base, _, err := Run(spec, f, ts)
			if err != nil {
				t.Fatal(err)
			}
			shuffled := append([]tuple.Tuple(nil), ts...)
			r.Shuffle(len(shuffled), func(i, j int) {
				shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
			})
			permuted, _, err := Run(spec, f, shuffled)
			if err != nil {
				t.Fatal(err)
			}
			if !permuted.Equal(base) {
				t.Fatalf("%v/%v: permuting the input changed the result", spec.Algorithm, kind)
			}
		}
	}
}
