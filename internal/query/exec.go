package query

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"tempagg/internal/aggregate"
	"tempagg/internal/core"
	"tempagg/internal/interval"
	"tempagg/internal/obs"
	"tempagg/internal/order"
	"tempagg/internal/relation"
	"tempagg/internal/tuple"
)

// GroupResult is the time-varying aggregate for one attribute group. Key is
// empty when the query has no attribute grouping. Queries with several
// aggregates in the select list (§3) carry one result per aggregate, in
// select-list order; Result and Stats mirror the first for convenience.
type GroupResult struct {
	Key      string
	Result   *core.Result
	Stats    core.Stats
	Results  []*core.Result
	AllStats []core.Stats
}

// QueryResult is the full outcome of executing a query.
type QueryResult struct {
	Query  *Query
	Plan   Plan
	Groups []GroupResult
	// Explain is the rendered EXPLAIN [ANALYZE] report; empty for plain
	// queries. EXPLAIN ANALYZE results carry their aggregate rows in Groups
	// exactly as the plain query would, with the report appended after them.
	Explain string
}

// String renders the result in the paper's Table 1 style, one block per
// group and aggregate. EXPLAIN output follows the rows, so an EXPLAIN
// ANALYZE rendering is the plain query's rendering plus the report.
func (qr *QueryResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "-- %s\n-- plan: %s\n", qr.Query, qr.Plan)
	for _, g := range qr.Groups {
		if g.Key != "" {
			fmt.Fprintf(&b, "-- group %s\n", g.Key)
		}
		for _, res := range g.Results {
			b.WriteString(res.String())
		}
	}
	b.WriteString(qr.Explain)
	return b.String()
}

// matches evaluates one WHERE conjunct against a tuple.
func (c Condition) matches(t tuple.Tuple) bool {
	if c.IsStr {
		return cmpOrdered(strings.Compare(t.Name, c.Str), c.Op)
	}
	var v int64
	switch c.Attr {
	case AttrValue:
		v = t.Value
	case AttrStart:
		v = t.Valid.Start
	case AttrEnd:
		v = t.Valid.End
	default:
		return false
	}
	switch {
	case v < c.Num:
		return cmpOrdered(-1, c.Op)
	case v > c.Num:
		return cmpOrdered(1, c.Op)
	}
	return cmpOrdered(0, c.Op)
}

func cmpOrdered(sign int, op CompareOp) bool {
	switch op {
	case "=":
		return sign == 0
	case "<>":
		return sign != 0
	case "<":
		return sign < 0
	case "<=":
		return sign <= 0
	case ">":
		return sign > 0
	case ">=":
		return sign >= 0
	}
	return false
}

// Execute runs a parsed query over an in-memory relation. info supplies the
// optimizer's metadata; pass nil to derive it from the relation itself
// (cardinality and an order check).
func Execute(q *Query, rel *relation.Relation, info *RelationInfo) (*QueryResult, error) {
	return ExecuteTraced(q, rel, info, nil)
}

// ExecuteTraced is Execute with per-query observability: the planning and
// evaluation stages are recorded as spans on tr, evaluators publish their
// §6 counters through the trace's sink, and the final stats snapshot is
// attached. A nil tr disables all of it at the cost of a nil check.
func ExecuteTraced(q *Query, rel *relation.Relation, info *RelationInfo, tr *obs.QueryTrace) (*QueryResult, error) {
	if q.Relation != rel.Name {
		return nil, fmt.Errorf("query: relation %q not found (have %q)", q.Relation, rel.Name)
	}
	if q.Live {
		// Live reads go through ExecuteLive against a catalog-managed
		// snapshot; a static relation has no epoch to read.
		return nil, fmt.Errorf("query: relation %q is not a live relation", q.Relation)
	}
	if q.Explain == ExplainAnalyze && tr == nil {
		// ANALYZE needs the span tree even with no observer installed; a
		// standalone trace records it without a sink or trace ring.
		tr = obs.NewQueryTrace(q.String())
	}
	meta := RelationInfo{Tuples: rel.Len(), Sorted: rel.IsSorted(), KBound: -1}
	if info != nil {
		meta = *info
	}
	planSpan := tr.StartSpan("plan")
	var plan Plan
	if q.At != nil && q.Using != "INDEX" && !(q.Using == "" && meta.Index != nil && IndexEligible(q)) {
		// Snapshot reduction: the value at one instant needs no constant
		// intervals — a single aggregation pass over the qualifying tuples.
		// With a resident index (or USING INDEX) the point lookup is one
		// O(log n) root-path merge instead, planned below like any query.
		plan = Plan{Snapshot: true, Reason: fmt.Sprintf("snapshot at %d: direct aggregation, no constant intervals", *q.At)}
	} else {
		// With cost-based planning on an unsorted relation of undeclared
		// disorder, sample a k-orderedness estimate first so the planner can
		// price the no-sort k-ordered tree — §6.3's retroactively-bounded
		// case, discovered rather than declared.
		if meta.Cost.Enabled() && !meta.Sorted && meta.KBound < 0 && meta.SampledK <= 0 {
			meta.SampledK = order.EstimateKOrderedness(rel.Tuples, 0, estimateSeed)
		}
		var err error
		plan, err = PlanQuery(q, meta)
		if err != nil {
			return nil, err
		}
	}
	planSpan.End()
	tracePlan(tr, plan)
	if q.Explain == ExplainPlan {
		// Plan only: render the tree with every priced alternative and skip
		// execution entirely.
		qr := &QueryResult{Query: q, Plan: plan}
		qr.Explain = RenderExplain(qr, nil)
		return qr, nil
	}
	// An index plan needs its index: the catalog's resident one when
	// supplied, otherwise built here over the relation — worth it only
	// under USING INDEX (the qualitative planner never chooses the index
	// without a resident handle), kept for the query's duration.
	var idx *core.IntervalIndex
	if plan.UseIndex {
		idx = meta.Index
		if idx == nil {
			buildSpan := tr.StartSpan("index-build")
			built, err := core.NewIntervalIndex(rel.Tuples)
			buildSpan.End()
			if err != nil {
				return nil, err
			}
			built.SetSink(tr.Sink())
			defer built.Close()
			idx = built
		}
	}

	execSpan := tr.StartSpan("execute")
	execCtx := execSpan.Context()

	// VALID window and WHERE filter.
	filtered := rel.Tuples
	if len(q.Where) > 0 || q.Window != nil {
		filtered = make([]tuple.Tuple, 0, len(rel.Tuples))
		for _, t := range rel.Tuples {
			if q.Window != nil && !t.Valid.Overlaps(*q.Window) {
				continue
			}
			keep := true
			for _, c := range q.Where {
				if !c.matches(t) {
					keep = false
					break
				}
			}
			if keep {
				filtered = append(filtered, t)
			}
		}
	}

	// Attribute grouping (GROUP BY Name): partition, then aggregate each
	// group independently — Epstein's temporary-relation strategy with the
	// interval machinery per group (§3, §4.2).
	groups := [][]tuple.Tuple{filtered}
	keys := []string{""}
	if q.GroupAttr != nil {
		byKey := make(map[string][]tuple.Tuple)
		for _, t := range filtered {
			byKey[t.Name] = append(byKey[t.Name], t)
		}
		keys = keys[:0]
		for k := range byKey {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		groups = groups[:0]
		for _, k := range keys {
			groups = append(groups, byKey[k])
		}
	}

	qr := &QueryResult{Query: q, Plan: plan}
	for i, group := range groups {
		gr := GroupResult{Key: keys[i]}
		if plan.SharedSweep && q.At == nil && q.Temporal != BySpan {
			// One SweepGroup pass serves the whole select list: the group is
			// ingested, sorted, and scanned once instead of once per
			// aggregate, and each aggregate's rows are identical to its
			// dedicated sweep's.
			results, allStats, err := executeSharedSweep(plan, q, group, tr, execCtx)
			if err != nil {
				return nil, err
			}
			for _, res := range results {
				if q.Window != nil {
					res.Clip(*q.Window)
				}
			}
			for _, s := range allStats {
				traceStats(tr, s)
			}
			gr.Results, gr.AllStats = results, allStats
			gr.Result = gr.Results[0]
			gr.Stats = gr.AllStats[0]
			qr.Groups = append(qr.Groups, gr)
			continue
		}
		var dedupedGroup []tuple.Tuple
		for _, a := range q.Aggs {
			input := group
			if a.Distinct {
				// Duplicate elimination before processing (§7), computed
				// once per group.
				if dedupedGroup == nil {
					dedupedGroup = relation.Deduplicate(group)
				}
				input = dedupedGroup
			}
			f := aggregate.For(a.Kind)
			var (
				res   *core.Result
				stats core.Stats
				err   error
			)
			switch {
			case plan.UseIndex:
				// Index eligibility guarantees a single unfiltered group, so
				// input plays no part: the answer is assembled from node
				// partials alone.
				res, err = indexLookup(idx, q, f, tr)
			case q.At != nil:
				res = snapshotResult(f, input, *q.At)
				stats = core.Stats{Tuples: len(input)}
				sinkTuples(tr, "snapshot-scan", len(input))
			case q.Temporal == BySpan:
				res, err = executeSpan(q, f, input)
			default:
				res, stats, err = executeInstant(plan, meta, f, input, tr, execCtx)
				if err == nil && q.Window != nil {
					res.Clip(*q.Window)
				}
			}
			if err != nil {
				return nil, err
			}
			traceStats(tr, stats)
			gr.Results = append(gr.Results, res)
			gr.AllStats = append(gr.AllStats, stats)
		}
		gr.Result = gr.Results[0]
		gr.Stats = gr.AllStats[0]
		qr.Groups = append(qr.Groups, gr)
	}
	execSpan.End()
	tr.SetGroups(len(qr.Groups))
	if q.Explain == ExplainAnalyze {
		qr.Explain = RenderExplain(qr, tr)
	}
	return qr, nil
}

// tracePlan records the optimizer's decision — and every alternative it
// priced — on the trace.
func tracePlan(tr *obs.QueryTrace, plan Plan) {
	alg := plan.Spec.Algorithm.String()
	switch {
	case plan.Tuma:
		alg = "tuma-two-pass"
	case plan.Snapshot:
		alg = "snapshot-scan"
	case plan.Partitioned:
		alg = "partitioned"
	}
	tr.SetPlan(alg, plan.Spec.K, plan.String())
	tr.SetPlanCosts(plan.Alternatives)
}

// traceStats folds one evaluator's final counters into the trace.
func traceStats(tr *obs.QueryTrace, s core.Stats) {
	tr.AddStats(s.Tuples, s.LiveNodes, s.PeakNodes, s.Collected)
}

// sinkTuples publishes tuple counts for the evaluator-less strategies
// (snapshot scans and Tuma's two-pass baseline), which bypass core's own
// sink instrumentation.
func sinkTuples(tr *obs.QueryTrace, algorithm string, n int) {
	if s := tr.Sink(); s != nil {
		s.Evaluator(algorithm).TuplesProcessed(n)
	}
}

// indexLookup answers one aggregate of an index-served plan: the point
// lookup for AT, the clipped window partition for VALID OVERLAPS, the full
// [0, ∞] result otherwise. Rows are bit-identical to the evaluator paths'.
func indexLookup(idx *core.IntervalIndex, q *Query, f aggregate.Func, tr *obs.QueryTrace) (*core.Result, error) {
	span := tr.StartSpan(core.IndexLookupAlg)
	defer span.End()
	var (
		res *core.Result
		err error
	)
	switch {
	case q.At != nil:
		res, err = idx.At(f, *q.At)
	case q.Window != nil:
		res, err = idx.Range(f, *q.Window)
	default:
		res, err = idx.Result(f)
	}
	if err != nil {
		return nil, err
	}
	span.SetAttr("rows", strconv.Itoa(len(res.Rows)))
	return res, nil
}

// executeIndexOnly serves an entire index-eligible query from a resident
// index: no scan, no materialized relation, one lookup per select-list
// aggregate. The caller has already verified plan.UseIndex and a non-nil
// index.
func executeIndexOnly(q *Query, plan Plan, idx *core.IntervalIndex, tr *obs.QueryTrace) (*QueryResult, error) {
	execSpan := tr.StartSpan("execute")
	gr := GroupResult{}
	for _, a := range q.Aggs {
		res, err := indexLookup(idx, q, aggregate.For(a.Kind), tr)
		if err != nil {
			execSpan.End()
			return nil, err
		}
		gr.Results = append(gr.Results, res)
		gr.AllStats = append(gr.AllStats, core.Stats{})
	}
	execSpan.End()
	gr.Result = gr.Results[0]
	gr.Stats = gr.AllStats[0]
	tr.SetGroups(1)
	qr := &QueryResult{Query: q, Plan: plan, Groups: []GroupResult{gr}}
	if q.Explain == ExplainAnalyze {
		qr.Explain = RenderExplain(qr, tr)
	}
	return qr, nil
}

// snapshotResult folds the tuples valid at the instant into a single-row
// result covering [at, at].
func snapshotResult(f aggregate.Func, ts []tuple.Tuple, at interval.Time) *core.Result {
	state := f.Zero()
	for _, t := range ts {
		if t.Valid.Contains(at) {
			state = f.Add(state, t.Value)
		}
	}
	return &core.Result{Func: f, Rows: []core.Row{{
		Interval: interval.At(at),
		State:    state,
	}}}
}

func executeInstant(plan Plan, meta RelationInfo, f aggregate.Func, ts []tuple.Tuple, tr *obs.QueryTrace, ctx obs.TraceContext) (*core.Result, core.Stats, error) {
	if plan.Tuma {
		res, err := core.Tuma(core.NewSliceSource(ts), f)
		sinkTuples(tr, "tuma-two-pass", 2*len(ts))
		return res, core.Stats{Tuples: 2 * len(ts)}, err
	}
	if plan.Partitioned {
		return executePartitioned(plan, f, ts, tr, ctx)
	}
	input := ts
	needSorted := plan.SortFirst ||
		(plan.Spec.Algorithm == core.KOrderedTree && meta.KBound < 0 && plan.Spec.K <= 1)
	if needSorted && !sort.SliceIsSorted(ts, func(i, j int) bool { return ts[i].Less(ts[j]) }) {
		// Sorting is also required when the plan assumes order the filter
		// may have preserved but grouping cannot guarantee; sorting a copy
		// keeps the caller's relation untouched.
		input = append([]tuple.Tuple(nil), ts...)
		sort.SliceStable(input, func(i, j int) bool { return input[i].Less(input[j]) })
	}
	res, stats, err := core.RunTraced(plan.Spec, f, input, tr.Sink(), ctx)
	if err != nil && plan.SampledK {
		// The sampled disorder bound proved too low and the k-ordered tree
		// rejected a tuple. Pay the sort the estimate tried to avoid and
		// rerun at k=1.
		input = append([]tuple.Tuple(nil), ts...)
		sort.SliceStable(input, func(i, j int) bool { return input[i].Less(input[j]) })
		res, stats, err = core.RunTraced(core.Spec{Algorithm: core.KOrderedTree, K: 1}, f, input, tr.Sink(), ctx)
	}
	return res, stats, err
}

// estimateSeed makes plan-time k-orderedness sampling deterministic, so the
// same query over the same relation always gets the same plan.
const estimateSeed = 0x5eed

// executeSharedSweep runs every aggregate of q's select list through one
// core.SweepGroup over ts. The group's counters — tuples ingested once for
// all aggregates — are attached to the first aggregate's stats slot; the
// rest stay zero so trace totals reflect the work actually done, which is
// the point of sharing the pass.
func executeSharedSweep(plan Plan, q *Query, ts []tuple.Tuple, tr *obs.QueryTrace, ctx obs.TraceContext) ([]*core.Result, []core.Stats, error) {
	g := core.NewSweepGroup(core.SweepOptions{Parallel: plan.Spec.Parallel})
	g.SetSink(tr.Sink())
	g.SetTrace(ctx)
	for _, a := range q.Aggs {
		if _, err := g.Register(core.GroupQuery{Func: aggregate.For(a.Kind)}); err != nil {
			return nil, nil, err
		}
	}
	for lo := 0; lo < len(ts); lo += core.BatchPage {
		hi := min(lo+core.BatchPage, len(ts))
		if err := g.AddBatch(ts[lo:hi]); err != nil {
			return nil, nil, err
		}
	}
	results, err := g.Finish()
	if err != nil {
		return nil, nil, err
	}
	stats := make([]core.Stats, len(results))
	stats[0] = g.Stats()
	return results, stats, nil
}

// executePartitioned runs the limited-main-memory evaluation and consumes
// the streaming ordered merge: each partition's coalesced rows are appended
// to the result the moment that shard (and its predecessors) finish, so the
// query path never waits on a whole-evaluation barrier.
func executePartitioned(plan Plan, f aggregate.Func, ts []tuple.Tuple, tr *obs.QueryTrace, ctx obs.TraceContext) (*core.Result, core.Stats, error) {
	opts := core.PartitionOptions{
		Boundaries: partitionBoundaries(ts, plan.Partitions),
		Parallel:   plan.Partitions,
		Sink:       tr.Sink(),
		Trace:      ctx,
		// Decomposable aggregates sweep each shard; MIN/MAX keeps the
		// aggregation tree, whose cost does not depend on overlap depth.
		Sweep: f.Kind().Decomposable(),
	}
	st, err := core.EvaluatePartitionedStream(f, core.NewSliceSource(ts), opts)
	if err != nil {
		return nil, core.Stats{}, err
	}
	res := &core.Result{Func: f}
	for chunk := range st.Chunks() {
		res.Rows = append(res.Rows, chunk.Rows...)
	}
	stats, err := st.Wait()
	if err != nil {
		return nil, core.Stats{}, err
	}
	return res, stats, nil
}

// partitionBoundaries derives uniform cut points from the tuples' finite
// lifespan. Open-ended tuples do not extend it — they are clipped into the
// final [last boundary, ∞] partition; with no finite spread there is a
// single partition.
func partitionBoundaries(ts []tuple.Tuple, n int) []interval.Time {
	if len(ts) == 0 {
		return nil
	}
	lo, hi := ts[0].Valid.Start, interval.Time(0)
	for _, t := range ts {
		if t.Valid.Start < lo {
			lo = t.Valid.Start
		}
		end := t.Valid.End
		if end == interval.Forever {
			end = t.Valid.Start
		}
		if end > hi {
			hi = end
		}
	}
	if hi <= lo {
		return nil
	}
	return core.UniformBoundaries(interval.MustNew(lo, hi), n)
}

func executeSpan(q *Query, f aggregate.Func, ts []tuple.Tuple) (*core.Result, error) {
	// An explicit finite VALID window defines the spans directly.
	if q.Window != nil && q.Window.End != interval.Forever {
		return core.GroupBySpan(f, ts, q.Span, *q.Window)
	}
	// Otherwise span grouping needs a finite window: the relation's
	// lifespan, rounded so the window starts at the origin.
	end := interval.Time(0)
	for _, t := range ts {
		if t.Valid.End == interval.Forever {
			return nil, fmt.Errorf("query: GROUP BY SPAN requires a finite lifespan; tuple %v is open-ended", t)
		}
		if t.Valid.End > end {
			end = t.Valid.End
		}
	}
	// Round the window up to whole spans so the last span is not clipped
	// by an accident of the data.
	if rem := (end + 1) % q.Span; rem != 0 {
		end += q.Span - rem
	}
	window := interval.MustNew(interval.Origin, end)
	return core.GroupBySpan(f, ts, q.Span, window)
}

// Run parses and executes a query string over rel in one call.
func Run(sql string, rel *relation.Relation, info *RelationInfo) (*QueryResult, error) {
	q, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	return Execute(q, rel, info)
}
