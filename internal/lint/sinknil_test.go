package lint_test

import (
	"testing"

	"tempagg/internal/lint"
	"tempagg/internal/lint/linttest"
)

func TestSinkNil(t *testing.T) {
	linttest.Run(t, lint.SinkNil, "sinknil")
}
