package core

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"tempagg/internal/aggregate"
)

// Race/linearizability stress for the live evaluator: N writers ingest
// concurrently while M readers snapshot and evaluate, with Stats scrapes
// riding along. Run under -race in CI (make test runs the suite with the
// detector on). The checks are the protocol's invariants:
//
//   - every snapshot's Seq equals the length of its materialized prefix;
//   - Seq never decreases across snapshots taken by one goroutine
//     (ingestion order is a total order and Snapshot is linearizable
//     with respect to it);
//   - a sampled subset of snapshots is verified bit-for-bit against the
//     O(n²) Reference oracle over exactly their materialized tuples — the
//     full oracle on every snapshot would drown the race detector.
func TestLiveRaceWritersReaders(t *testing.T) {
	const (
		writers         = 4
		readers         = 4
		tuplesPerWriter = 240
		segSize         = 32
	)
	ev := NewLive(LiveOptions{SegmentSize: segSize})
	defer closeLive(ev)

	var writerWg, readerWg sync.WaitGroup
	var writersDone atomic.Bool
	for w := 0; w < writers; w++ {
		writerWg.Add(1)
		go func(w int) {
			defer writerWg.Done()
			r := rand.New(rand.NewSource(int64(100 + w)))
			ts := randomTuples(r, tuplesPerWriter, 2000)
			for lo := 0; lo < len(ts); {
				hi := min(lo+1+r.Intn(5), len(ts))
				if err := ev.AddBatch(ts[lo:hi]); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				lo = hi
			}
		}(w)
	}

	for rd := 0; rd < readers; rd++ {
		readerWg.Add(1)
		go func(rd int) {
			defer readerWg.Done()
			kinds := aggregate.Kinds()
			var lastSeq int64 = -1
			for i := 0; ; i++ {
				if writersDone.Load() {
					return
				}
				snap, err := ev.Snapshot()
				if err != nil {
					t.Errorf("reader %d: %v", rd, err)
					return
				}
				if snap.Seq() < lastSeq {
					t.Errorf("reader %d: seq went backwards: %d after %d", rd, snap.Seq(), lastSeq)
					return
				}
				lastSeq = snap.Seq()
				prefix := snap.Tuples()
				if int64(len(prefix)) != snap.Seq() {
					t.Errorf("reader %d: snapshot seq %d but %d tuples", rd, snap.Seq(), len(prefix))
					return
				}
				f := aggregate.For(kinds[i%len(kinds)])
				res, err := snap.Result(f)
				if err != nil {
					t.Errorf("reader %d: %v", rd, err)
					return
				}
				if err := res.Validate(); err != nil {
					t.Errorf("reader %d: %v", rd, err)
					return
				}
				if i%16 == 0 {
					if want := Reference(f, prefix); !res.Equal(want) {
						t.Errorf("reader %d: snapshot @ seq %d diverged from oracle for %v",
							rd, snap.Seq(), f.Kind())
						return
					}
				}
				// Stats scrapes race the writers by design; the counters are
				// atomics and must always be mutually coherent.
				s := ev.Stats()
				if s.Tuples < int(snap.Seq()) {
					t.Errorf("reader %d: Stats().Tuples = %d behind held snapshot seq %d",
						rd, s.Tuples, snap.Seq())
					return
				}
			}
		}(rd)
	}

	// Readers run until every writer has finished, so snapshots land on
	// live ingestion for the whole stress window.
	writerWg.Wait()
	writersDone.Store(true)
	readerWg.Wait()

	// Final state: everything admitted, final snapshot matches the oracle.
	snap, err := ev.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Seq() != writers*tuplesPerWriter {
		t.Fatalf("final seq = %d, want %d", snap.Seq(), writers*tuplesPerWriter)
	}
	f := aggregate.For(aggregate.Sum)
	res, err := snap.Result(f)
	if err != nil {
		t.Fatal(err)
	}
	if want := Reference(f, snap.Tuples()); !res.Equal(want) {
		t.Fatal("final snapshot diverged from oracle")
	}
}

// TestLiveRaceSnapshotDuringSeal hammers the seal boundary: segment size 1
// makes every Add a seal, so snapshots constantly land on generation
// installs.
func TestLiveRaceSnapshotDuringSeal(t *testing.T) {
	ev := NewLive(LiveOptions{SegmentSize: 1})
	defer closeLive(ev)
	var wg sync.WaitGroup
	var stop atomic.Bool
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		r := rand.New(rand.NewSource(7))
		for _, tu := range randomTuples(r, 400, 1000) {
			if err := ev.Add(tu); err != nil {
				t.Errorf("add: %v", err)
				return
			}
		}
	}()
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				snap, err := ev.Snapshot()
				if err != nil {
					t.Errorf("snapshot: %v", err)
					return
				}
				ep := snap.Epoch()
				if ep.Tail != 0 || int64(ep.Segments) != snap.Seq() {
					t.Errorf("segment size 1: epoch %+v must have an empty tail and seq segments", ep)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestLiveRaceCloseVsReaders: Close racing snapshots and reads must never
// corrupt a held snapshot; post-Close snapshots fail cleanly.
func TestLiveRaceCloseVsReaders(t *testing.T) {
	ev := NewLive(LiveOptions{SegmentSize: 16})
	r := rand.New(rand.NewSource(8))
	ts := randomTuples(r, 100, 1000)
	if err := ev.AddBatch(ts); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			snap, err := ev.Snapshot()
			if err != nil {
				return // closed first; fine
			}
			res, err := snap.Result(aggregate.For(aggregate.Count))
			if err != nil {
				t.Errorf("read on held snapshot failed: %v", err)
				return
			}
			if err := res.Validate(); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		closeLive(ev)
	}()
	close(start)
	wg.Wait()
	if _, err := ev.Snapshot(); err == nil {
		t.Fatal("snapshot after close succeeded")
	}
}
