package query

import (
	"fmt"
	"testing"

	"tempagg/internal/relation"
	"tempagg/internal/workload"
)

// queryCorpus is a broad set of valid queries over a relation named R with
// a finite lifespan.
var queryCorpus = []string{
	"SELECT COUNT(Name) FROM R",
	"SELECT SUM(Salary) FROM R",
	"SELECT AVG(Salary) FROM R",
	"SELECT MIN(Salary) FROM R",
	"SELECT MAX(Salary) FROM R",
	"SELECT COUNT(Name), AVG(Salary) FROM R",
	"SELECT COUNT(DISTINCT Name) FROM R",
	"SELECT Name, COUNT(Name) FROM R GROUP BY Name",
	"SELECT Name, MAX(Salary), MIN(Salary) FROM R GROUP BY Name",
	"SELECT COUNT(Name) FROM R WHERE Salary > 50000",
	"SELECT COUNT(Name) FROM R WHERE Salary <= 50000 AND Start >= 100000",
	"SELECT COUNT(Name) FROM R WHERE Name <> 'p00001'",
	"SELECT SUM(Salary) FROM R VALID OVERLAPS 100000 900000",
	"SELECT COUNT(Name) FROM R VALID OVERLAPS 0 499999 WHERE Salary > 40000",
	"SELECT AVG(Salary) FROM R AT 500000",
	"SELECT Name, COUNT(Name) FROM R AT 500000 GROUP BY Name",
	"SELECT COUNT(Name) FROM R GROUP BY SPAN 100000",
	"SELECT SUM(Salary) FROM R VALID OVERLAPS 0 999999 GROUP BY SPAN 250000",
	"SELECT COUNT(Name) FROM R USING LIST",
	"SELECT COUNT(Name) FROM R USING TREE",
	"SELECT COUNT(Name) FROM R USING BTREE",
	"SELECT COUNT(Name) FROM R USING KTREE 1",
	"SELECT COUNT(Name) FROM R USING KTREE 4096",
	"SELECT COUNT(Name) FROM R USING TUMA",
	"SELECT SUM(Salary) FROM R USING SWEEP",
	"SELECT MIN(Salary) FROM R USING SWEEP",
	"SELECT Name, AVG(Salary) FROM R GROUP BY Name USING SWEEP",
	"SELECT Name, AVG(Salary) FROM R WHERE Salary > 30000 GROUP BY Name USING LIST",
}

// TestDifferentialMemoryVsFile runs the whole corpus both in memory and
// streamed from disk, demanding value-identical results group by group.
func TestDifferentialMemoryVsFile(t *testing.T) {
	for _, order := range []workload.Order{workload.Random, workload.Sorted} {
		rel, err := workload.Generate(workload.Config{
			Tuples: 700, LongLivedPct: 30, Order: order, Seed: 55,
		})
		if err != nil {
			t.Fatal(err)
		}
		rel.Name = "R"
		path := writeRelation(t, rel)
		for _, sql := range queryCorpus {
			t.Run(fmt.Sprintf("%s/%s", order, sql), func(t *testing.T) {
				mem, err := Run(sql, rel, nil)
				if err != nil {
					t.Fatalf("in-memory: %v", err)
				}
				file, err := RunFile(sql, path, nil, relation.ScanOptions{})
				if err != nil {
					t.Fatalf("file: %v", err)
				}
				if len(mem.Groups) != len(file.Groups) {
					t.Fatalf("group counts: %d vs %d", len(mem.Groups), len(file.Groups))
				}
				for gi := range mem.Groups {
					if mem.Groups[gi].Key != file.Groups[gi].Key {
						t.Fatalf("group %d keys differ: %q vs %q",
							gi, mem.Groups[gi].Key, file.Groups[gi].Key)
					}
					if len(mem.Groups[gi].Results) != len(file.Groups[gi].Results) {
						t.Fatalf("result counts differ in group %q", mem.Groups[gi].Key)
					}
					for ri := range mem.Groups[gi].Results {
						a := mem.Groups[gi].Results[ri]
						b := file.Groups[gi].Results[ri]
						if !a.Equal(b) {
							t.Fatalf("group %q result %d differs:\n%s\nvs\n%s",
								mem.Groups[gi].Key, ri, a, b)
						}
					}
				}
			})
		}
	}
}

// TestDifferentialRandomizedScan repeats the instant-grouped corpus entries
// under a page-randomized scan, which must not change any result.
func TestDifferentialRandomizedScan(t *testing.T) {
	rel, err := workload.Generate(workload.Config{Tuples: 600, Order: workload.Sorted, Seed: 56})
	if err != nil {
		t.Fatal(err)
	}
	rel.Name = "R"
	path := writeRelation(t, rel)
	for _, sql := range []string{
		"SELECT COUNT(Name) FROM R",
		"SELECT AVG(Salary) FROM R WHERE Salary > 50000",
		"SELECT Name, MAX(Salary) FROM R GROUP BY Name",
	} {
		mem, err := Run(sql, rel, nil)
		if err != nil {
			t.Fatal(err)
		}
		file, err := RunFile(sql, path, nil, relation.ScanOptions{RandomizePages: true, Seed: 9})
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		for gi := range mem.Groups {
			if !mem.Groups[gi].Result.Equal(file.Groups[gi].Result) {
				t.Fatalf("%s: randomized scan changed group %q", sql, mem.Groups[gi].Key)
			}
		}
	}
}
