// Package stats estimates relation statistics for the query optimizer.
//
// The §6.3 discussion hinges on the number of constant intervals the result
// will have: "if there were very few constant intervals in the results ...
// the linked list algorithm would have quite adequate performance", and
// fewer unique timestamps shrink every algorithm's state. The number of
// constant intervals is (number of distinct boundary timestamps) + 1, where
// a tuple [s, e] contributes boundaries s and e+1, so the problem reduces
// to distinct-count estimation from a sample — done here with the Chao1
// species-richness estimator.
package stats

import (
	"math/rand"

	"tempagg/internal/interval"
	"tempagg/internal/tuple"
)

// EstimateConstantIntervals estimates how many constant intervals the
// relation induces, from a uniform sample of at most sampleSize tuples.
// sampleSize <= 0 or >= len(ts) examines every tuple (an exact count).
func EstimateConstantIntervals(ts []tuple.Tuple, sampleSize int, seed int64) int {
	if len(ts) == 0 {
		return 1
	}
	sampled := ts
	if sampleSize > 0 && sampleSize < len(ts) {
		r := rand.New(rand.NewSource(seed))
		idx := r.Perm(len(ts))[:sampleSize]
		sampled = make([]tuple.Tuple, 0, sampleSize)
		for _, i := range idx {
			sampled = append(sampled, ts[i])
		}
	}
	freq := make(map[interval.Time]int, 2*len(sampled))
	for _, t := range sampled {
		freq[t.Valid.Start]++
		if t.Valid.End != interval.Forever {
			freq[t.Valid.End+1]++
		}
	}
	if len(sampled) == len(ts) {
		return len(freq) + 1
	}

	// Chao1: D̂ = u + f1²/(2·f2), with the bias-corrected form when no
	// value was seen exactly twice. u is the observed distinct count, f1
	// and f2 the counts of values seen once and twice.
	u, f1, f2 := len(freq), 0, 0
	for _, c := range freq {
		switch c {
		case 1:
			f1++
		case 2:
			f2++
		}
	}
	var est float64
	if f2 > 0 {
		est = float64(u) + float64(f1*f1)/(2*float64(f2))
	} else {
		est = float64(u) + float64(f1*(f1-1))/2
	}
	// Chao1 estimates the distinct boundaries *of the sampled population*;
	// scale the unseen mass by the sampling fraction, then clamp to the
	// structural maximum of 2n distinct boundaries.
	frac := float64(len(ts)) / float64(len(sampled))
	scaled := float64(u) + (est-float64(u))*frac
	if max := float64(2 * len(ts)); scaled > max {
		scaled = max
	}
	if scaled < float64(u) {
		scaled = float64(u)
	}
	return int(scaled) + 1
}
