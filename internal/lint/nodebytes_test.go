package lint_test

import (
	"testing"

	"tempagg/internal/lint"
	"tempagg/internal/lint/linttest"
)

func TestNodeBytes(t *testing.T) {
	linttest.Run(t, lint.NodeBytes, "nodebytes")
}
