package core

import "sort"

// The sweep evaluator's event sort. Keys are timestamps — non-negative
// int64s (interval.Time values in [0, Forever]) — so an unsigned LSD radix
// sort over 8-bit digits is exact without sign-bit flipping. The sort is
// stable, which the sweep does not strictly need (events sharing a
// timestamp commute) but costs nothing here.

// radixMinSize is the input size below which the histogram pre-pass costs
// more than it saves and the standard library's pattern-defeating quicksort
// (sort.Sort since Go 1.19) takes over.
const radixMinSize = 256

// radixSortInt64 sorts keys ascending, applying the identical permutation
// to every payload column (each the same length as keys). Scratch ping-pong
// buffers come from the column arena and are recycled before returning. It
// reports the number of scatter passes performed: all eight digit
// histograms are built in one read of the keys, passes whose digit is
// constant across the input are skipped entirely, and the quicksort
// fallback reports zero.
func radixSortInt64(ar *colArena, keys []int64, payloads ...[]int64) int {
	n := len(keys)
	if n < radixMinSize {
		if n > 1 {
			sort.Sort(&colSort{keys: keys, payloads: payloads})
		}
		return 0
	}

	var hist [8][256]int
	for _, k := range keys {
		u := uint64(k)
		hist[0][u&0xff]++
		hist[1][(u>>8)&0xff]++
		hist[2][(u>>16)&0xff]++
		hist[3][(u>>24)&0xff]++
		hist[4][(u>>32)&0xff]++
		hist[5][(u>>40)&0xff]++
		hist[6][(u>>48)&0xff]++
		hist[7][(u>>56)&0xff]++
	}

	// Ping-pong scatter: src starts in the caller's columns, dst in arena
	// scratch of equal length; each non-trivial pass swaps them.
	scratchK := ar.acquire(n)[:n]
	scratchP := make([][]int64, len(payloads))
	for i := range scratchP {
		scratchP[i] = ar.acquire(n)[:n]
	}
	srcK, dstK := keys, scratchK
	srcP, dstP := payloads, scratchP

	passes := 0
	for d := 0; d < 8; d++ {
		shift := uint(8 * d)
		// A digit every key shares sorts to the identity: skip the pass.
		if hist[d][(uint64(srcK[0])>>shift)&0xff] == n {
			continue
		}
		var offs [256]int
		sum := 0
		for b := 0; b < 256; b++ {
			offs[b] = sum
			sum += hist[d][b]
		}
		for i, k := range srcK {
			b := (uint64(k) >> shift) & 0xff
			j := offs[b]
			offs[b]++
			dstK[j] = k
			for p := range srcP {
				dstP[p][j] = srcP[p][i]
			}
		}
		srcK, dstK = dstK, srcK
		srcP, dstP = dstP, srcP
		passes++
	}

	// An odd pass count leaves the sorted data in the scratch buffers; copy
	// it home before recycling them.
	if passes%2 == 1 {
		copy(keys, scratchK)
		for p := range payloads {
			copy(payloads[p], scratchP[p])
		}
	}
	ar.release(scratchK)
	for _, p := range scratchP {
		ar.release(p)
	}
	return passes
}

// colSort adapts a key column plus payload columns to sort.Interface for
// the small-input fallback.
type colSort struct {
	keys     []int64
	payloads [][]int64
}

func (c *colSort) Len() int           { return len(c.keys) }
func (c *colSort) Less(i, j int) bool { return c.keys[i] < c.keys[j] }
func (c *colSort) Swap(i, j int) {
	c.keys[i], c.keys[j] = c.keys[j], c.keys[i]
	for _, p := range c.payloads {
		p[i], p[j] = p[j], p[i]
	}
}

// sortedInt64 reports whether keys are already in ascending order — the
// sweep's O(n) pre-sorted fast path, checked before paying for any sort.
func sortedInt64(keys []int64) bool {
	for i := 1; i < len(keys); i++ {
		if keys[i] < keys[i-1] {
			return false
		}
	}
	return true
}
