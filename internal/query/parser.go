package query

import (
	"fmt"
	"strconv"
	"strings"

	"tempagg/internal/aggregate"
	"tempagg/internal/interval"
)

// Parse parses a TSQL2-flavoured temporal aggregate query.
func Parse(input string) (*Query, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.query()
	if err != nil {
		return nil, err
	}
	if !p.peek().isKeyword("") && p.peek().kind != tokEOF {
		return nil, p.errf("unexpected %q after end of query", p.peek().text)
	}
	return q, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("query: at offset %d: %s", p.peek().pos, fmt.Sprintf(format, args...))
}

func (p *parser) expectKeyword(kw string) error {
	if !p.peek().isKeyword(kw) {
		return p.errf("expected %s, found %q", kw, p.peek().text)
	}
	p.next()
	return nil
}

func (p *parser) expect(kind tokenKind) (token, error) {
	if p.peek().kind != kind {
		return token{}, p.errf("expected %s, found %q", kind, p.peek().text)
	}
	return p.next(), nil
}

func (p *parser) query() (*Query, error) {
	q := &Query{}
	if p.peek().isKeyword("EXPLAIN") {
		p.next()
		q.Explain = ExplainPlan
		if p.peek().isKeyword("ANALYZE") {
			p.next()
			q.Explain = ExplainAnalyze
		}
	}
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}

	// Select list: optional grouping attribute, then one or more
	// aggregates. A bare identifier followed by a comma is the grouping
	// attribute; aggregate names are always followed by '('.
	first, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if p.peek().kind == tokComma && p.toks[p.pos+1].kind == tokIdent &&
		!isAggName(first.text) {
		p.next()
		attr, err := parseAttr(first.text)
		if err != nil {
			return nil, err
		}
		q.GroupAttr = &attr
		first, err = p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
	}
	for {
		spec, err := p.aggSpec(first)
		if err != nil {
			return nil, err
		}
		q.Aggs = append(q.Aggs, spec)
		if p.peek().kind != tokComma {
			break
		}
		p.next()
		first, err = p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
	}

	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	relTok, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	q.Relation = relTok.text

	if p.peek().isKeyword("LIVE") {
		p.next()
		q.Live = true
	}

	if p.peek().isKeyword("VALID") {
		p.next()
		if err := p.expectKeyword("OVERLAPS"); err != nil {
			return nil, err
		}
		startTok, err := p.expect(tokNumber)
		if err != nil {
			return nil, err
		}
		start, err := strconv.ParseInt(startTok.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad window start: %v", err)
		}
		var end interval.Time
		switch {
		case p.peek().isKeyword("FOREVER"):
			p.next()
			end = interval.Forever
		case p.peek().kind == tokNumber:
			end, err = strconv.ParseInt(p.next().text, 10, 64)
			if err != nil {
				return nil, p.errf("bad window end: %v", err)
			}
		default:
			return nil, p.errf("expected window end (number or FOREVER), found %q", p.peek().text)
		}
		w, err := interval.New(start, end)
		if err != nil {
			return nil, fmt.Errorf("query: VALID OVERLAPS: %w", err)
		}
		q.Window = &w
	}

	if p.peek().isKeyword("AT") {
		p.next()
		numTok, err := p.expect(tokNumber)
		if err != nil {
			return nil, err
		}
		at, err := strconv.ParseInt(numTok.text, 10, 64)
		if err != nil || at < 0 {
			return nil, p.errf("snapshot instant must be a non-negative number, got %q", numTok.text)
		}
		q.At = &at
	}

	if p.peek().isKeyword("WHERE") {
		p.next()
		for {
			cond, err := p.condition()
			if err != nil {
				return nil, err
			}
			q.Where = append(q.Where, cond)
			if !p.peek().isKeyword("AND") {
				break
			}
			p.next()
		}
	}

	if p.peek().isKeyword("GROUP") {
		p.next()
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		if err := p.groupItems(q); err != nil {
			return nil, err
		}
	}

	if p.peek().isKeyword("USING") {
		p.next()
		algTok, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		q.Using = strings.ToUpper(algTok.text)
		if p.peek().kind == tokNumber {
			n, err := strconv.Atoi(p.next().text)
			if err != nil {
				return nil, p.errf("bad K argument: %v", err)
			}
			q.UsingK = n
			q.HasUsingK = true
		}
	}

	if err := q.check(); err != nil {
		return nil, err
	}
	return q, nil
}

// isAggName reports whether the identifier names an aggregate function.
func isAggName(name string) bool {
	_, err := aggregate.ParseKind(strings.ToUpper(name))
	return err == nil
}

// aggSpec parses one aggregate item given its already-consumed name token:
// KIND '(' [DISTINCT] attr ')'.
func (p *parser) aggSpec(nameTok token) (AggSpec, error) {
	kind, err := aggregate.ParseKind(strings.ToUpper(nameTok.text))
	if err != nil {
		return AggSpec{}, fmt.Errorf("query: %q is not an aggregate function", nameTok.text)
	}
	spec := AggSpec{Kind: kind}
	if _, err := p.expect(tokLParen); err != nil {
		return AggSpec{}, err
	}
	if p.peek().isKeyword("DISTINCT") {
		p.next()
		spec.Distinct = true
	}
	attrTok, err := p.expect(tokIdent)
	if err != nil {
		return AggSpec{}, err
	}
	spec.Attr, err = parseAttr(attrTok.text)
	if err != nil {
		return AggSpec{}, err
	}
	if _, err := p.expect(tokRParen); err != nil {
		return AggSpec{}, err
	}
	return spec, nil
}

func (p *parser) condition() (Condition, error) {
	attrTok, err := p.expect(tokIdent)
	if err != nil {
		return Condition{}, err
	}
	attr, err := parseAttr(attrTok.text)
	if err != nil {
		return Condition{}, err
	}
	opTok, err := p.expect(tokOp)
	if err != nil {
		return Condition{}, err
	}
	cond := Condition{Attr: attr, Op: CompareOp(opTok.text)}
	switch p.peek().kind {
	case tokString:
		cond.Str = p.next().text
		cond.IsStr = true
	case tokNumber:
		n, err := strconv.ParseInt(p.next().text, 10, 64)
		if err != nil {
			return Condition{}, p.errf("bad number: %v", err)
		}
		cond.Num = n
	default:
		return Condition{}, p.errf("expected literal, found %q", p.peek().text)
	}
	return cond, nil
}

func (p *parser) groupItems(q *Query) error {
	sawTemporal := false
	for {
		t := p.peek()
		switch {
		case t.isKeyword("INSTANT"):
			p.next()
			q.Temporal = ByInstant
			sawTemporal = true
		case t.isKeyword("SPAN"):
			p.next()
			numTok, err := p.expect(tokNumber)
			if err != nil {
				return err
			}
			n, err := strconv.ParseInt(numTok.text, 10, 64)
			if err != nil || n <= 0 {
				return p.errf("span length must be a positive number, got %q", numTok.text)
			}
			q.Temporal = BySpan
			q.Span = interval.Time(n)
			// An optional calendar unit scales the span: SPAN 2 YEARS (§2).
			if p.peek().kind == tokIdent {
				if g, err := interval.ParseGranularity(p.peek().text); err == nil {
					p.next()
					q.Span = g.Span(n)
				}
			}
			sawTemporal = true
		case t.kind == tokIdent:
			attr, err := parseAttr(t.text)
			if err != nil {
				return err
			}
			p.next()
			if q.GroupAttr != nil && *q.GroupAttr != attr {
				return p.errf("grouping attribute %s conflicts with select list attribute %s",
					attr, *q.GroupAttr)
			}
			q.GroupAttr = &attr
		default:
			return p.errf("expected grouping item, found %q", t.text)
		}
		if p.peek().kind != tokComma {
			break
		}
		p.next()
	}
	_ = sawTemporal // temporal grouping defaults to ByInstant (TSQL2 §5.1)
	return nil
}

// check performs the semantic validation that does not need relation
// metadata.
func (q *Query) check() error {
	if len(q.Aggs) == 0 {
		return fmt.Errorf("query: select list has no aggregate")
	}
	for _, a := range q.Aggs {
		switch a.Attr {
		case AttrName:
			if a.Kind != aggregate.Count {
				return fmt.Errorf("query: %s: only COUNT may aggregate the Name attribute", a)
			}
		case AttrStart, AttrEnd:
			return fmt.Errorf("query: aggregating timestamp attribute %s is not supported", a.Attr)
		}
	}
	if q.GroupAttr != nil && *q.GroupAttr != AttrName {
		return fmt.Errorf("query: GROUP BY %s: only the Name attribute can group", *q.GroupAttr)
	}
	for _, c := range q.Where {
		if c.IsStr && c.Attr != AttrName {
			return fmt.Errorf("query: attribute %s cannot compare to a string", c.Attr)
		}
		if !c.IsStr && c.Attr == AttrName {
			return fmt.Errorf("query: attribute Name cannot compare to a number")
		}
		switch c.Op {
		case "=", "<>", "<", "<=", ">", ">=":
		default:
			return fmt.Errorf("query: unknown operator %q", c.Op)
		}
	}
	if q.At != nil {
		if q.Window != nil {
			return fmt.Errorf("query: AT and VALID OVERLAPS are mutually exclusive")
		}
		if q.Temporal == BySpan {
			return fmt.Errorf("query: AT cannot combine with span grouping")
		}
	}
	if q.Using != "" {
		if _, err := resolveUsing(q); err != nil {
			return err
		}
	}
	if q.Live {
		// A live snapshot read serves the shared evaluator's merged segment
		// results; per-tuple machinery (filters, grouping, dedup) and
		// strategy overrides have no evaluator of their own to run on.
		switch {
		case q.Explain != ExplainNone:
			return fmt.Errorf("query: EXPLAIN is not supported for LIVE queries")
		case q.GroupAttr != nil:
			return fmt.Errorf("query: GROUP BY is not supported for LIVE queries")
		case len(q.Where) > 0:
			return fmt.Errorf("query: WHERE is not supported for LIVE queries")
		case q.Temporal == BySpan:
			return fmt.Errorf("query: span grouping is not supported for LIVE queries")
		case q.Using != "":
			return fmt.Errorf("query: USING is not supported for LIVE queries (the live evaluator is the strategy)")
		}
		for _, a := range q.Aggs {
			if a.Distinct {
				return fmt.Errorf("query: DISTINCT is not supported for LIVE queries")
			}
		}
	}
	return nil
}
