package core

import (
	"math/rand"
	"sort"
	"testing"

	"tempagg/internal/aggregate"
)

// FuzzLiveSnapshotVsReference is the snapshot-consistency fuzz target
// (wired into the fuzz-smoke CI pass): random workloads ingested through a
// live evaluator in fuzz-chosen chunk sizes and segment sizes, with a
// snapshot at every chunk boundary. Every snapshot — checked both at its
// epoch and again after the whole stream has landed — must equal a fresh
// batch Reference evaluation over exactly the tuples the snapshot itself
// materializes, for the fuzz-chosen aggregate; the final epoch is checked
// for all five. Any torn read at a seal boundary, stale memo, or
// cross-epoch leak surfaces as a divergence here.
func FuzzLiveSnapshotVsReference(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(40), uint8(1), uint8(8))
	f.Add(int64(2), uint8(3), uint8(120), uint8(7), uint8(1))
	f.Add(int64(3), uint8(7), uint8(255), uint8(33), uint8(64))
	f.Fuzz(func(t *testing.T, seed int64, kindB, nb, chunkB, segB uint8) {
		r := rand.New(rand.NewSource(seed))
		fn := aggregate.For(aggregate.Kinds()[int(kindB)%5])
		n := int(nb)
		chunk := int(chunkB)%16 + 1
		segSize := int(segB)%96 + 1
		ts := randomTuples(r, n, 1000)
		if kindB%2 == 0 { // both ingestion orders matter at seal boundaries
			sort.SliceStable(ts, func(i, j int) bool { return ts[i].Less(ts[j]) })
		}

		ev := NewLive(LiveOptions{SegmentSize: segSize})
		defer closeLive(ev)
		var held []*LiveSnapshot
		for lo := 0; lo < len(ts); lo += chunk {
			hi := min(lo+chunk, len(ts))
			if err := ev.AddBatch(ts[lo:hi]); err != nil {
				t.Fatal(err)
			}
			snap, err := ev.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			if snap.Seq() != int64(hi) {
				t.Fatalf("seq %d after ingesting %d", snap.Seq(), hi)
			}
			res, err := snap.Result(fn)
			if err != nil {
				t.Fatal(err)
			}
			if err := res.Validate(); err != nil {
				t.Fatalf("seg=%d chunk=%d seq=%d: %v", segSize, chunk, snap.Seq(), err)
			}
			if !res.Equal(Reference(fn, snap.Tuples())) {
				t.Fatalf("seg=%d chunk=%d %v: snapshot @ seq %d differs from oracle",
					segSize, chunk, fn.Kind(), snap.Seq())
			}
			held = append(held, snap)
		}

		// Retroactive check: epochs must be frozen, not views of the head.
		for _, snap := range held {
			res, err := snap.Result(fn)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Equal(Reference(fn, ts[:snap.Seq()])) {
				t.Fatalf("seg=%d chunk=%d %v: held snapshot @ seq %d drifted",
					segSize, chunk, fn.Kind(), snap.Seq())
			}
		}

		// Final epoch, all five aggregates.
		snap, err := ev.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		for _, kind := range aggregate.Kinds() {
			fk := aggregate.For(kind)
			res, err := snap.Result(fk)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Equal(Reference(fk, ts)) {
				t.Fatalf("seg=%d %v: final snapshot differs from oracle", segSize, kind)
			}
		}
	})
}
