package core

import (
	"encoding/json"
	"strings"
	"testing"

	"tempagg/internal/aggregate"
	"tempagg/internal/relation"
)

func TestResultMarshalJSON(t *testing.T) {
	f := aggregate.For(aggregate.Count)
	res, _, err := Run(Spec{Algorithm: AggregationTree}, f, relation.Employed().Tuples)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{
		`"aggregate":"COUNT"`,
		`{"start":0,"end":"6","value":0,"tuples":0}`,
		`{"start":22,"end":"forever","value":1,"tuples":1}`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("JSON missing %s:\n%s", want, s)
		}
	}
	// It must round-trip as generic JSON.
	var decoded map[string]any
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	rows, ok := decoded["rows"].([]any)
	if !ok || len(rows) != 7 {
		t.Fatalf("decoded rows = %v", decoded["rows"])
	}
}

func TestResultMarshalJSONNullValues(t *testing.T) {
	f := aggregate.For(aggregate.Min)
	res, _, err := Run(Spec{Algorithm: LinkedList}, f, relation.Employed().Tuples)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"value":null`) {
		t.Fatalf("MIN over the empty prefix should encode null:\n%s", data)
	}
}
