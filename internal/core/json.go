package core

import (
	"encoding/json"

	"tempagg/internal/interval"
)

// jsonRow is the wire form of one constant interval. End is a string so ∞
// can be represented; Value is null for empty non-COUNT groups.
type jsonRow struct {
	Start int64    `json:"start"`
	End   string   `json:"end"`
	Value *float64 `json:"value"`
	Count int64    `json:"tuples"`
}

type jsonResult struct {
	Aggregate string    `json:"aggregate"`
	Rows      []jsonRow `json:"rows"`
}

// MarshalJSON encodes the result as
//
//	{"aggregate":"COUNT","rows":[{"start":0,"end":"6","value":0,"tuples":0},...]}
//
// with "forever" as the end of an open-ended row and a null value for empty
// groups under non-COUNT aggregates.
func (r *Result) MarshalJSON() ([]byte, error) {
	out := jsonResult{
		Aggregate: r.Func.Kind().String(),
		Rows:      make([]jsonRow, 0, len(r.Rows)),
	}
	for i, row := range r.Rows {
		jr := jsonRow{Start: row.Interval.Start, Count: row.State.Count()}
		if row.Interval.End == interval.Forever {
			jr.End = "forever"
		} else {
			jr.End = interval.FormatTime(row.Interval.End)
		}
		if v := r.Value(i); !v.Null {
			f := v.Float
			jr.Value = &f
		}
		out.Rows = append(out.Rows, jr)
	}
	return json.Marshal(out)
}
