package query

import (
	"strings"
	"testing"

	"tempagg/internal/core"
)

func planFor(t *testing.T, sql string, info RelationInfo) Plan {
	t.Helper()
	q, err := Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	p, err := PlanQuery(q, info)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

const planSQL = "SELECT COUNT(Name) FROM R"

// TestOptimizerStrategies encodes §6.3's decision table.
func TestOptimizerStrategies(t *testing.T) {
	// Sorted relation → k-ordered tree with k=1.
	p := planFor(t, planSQL, RelationInfo{Tuples: 100000, Sorted: true, KBound: -1})
	if p.Spec.Algorithm != core.KOrderedTree || p.Spec.K != 1 || p.SortFirst {
		t.Fatalf("sorted: %v", p)
	}

	// Retroactively bounded relation → k-ordered tree, no sorting.
	p = planFor(t, planSQL, RelationInfo{Tuples: 100000, KBound: 40})
	if p.Spec.Algorithm != core.KOrderedTree || p.Spec.K != 40 || p.SortFirst {
		t.Fatalf("k-bounded: %v", p)
	}

	// Unsorted with plentiful memory → the columnar sweep for decomposable
	// aggregates, the aggregation tree for MIN/MAX.
	p = planFor(t, planSQL, RelationInfo{Tuples: 100000, KBound: -1})
	if p.Spec.Algorithm != core.SweepEval {
		t.Fatalf("unsorted, unlimited memory, COUNT: %v", p)
	}
	p = planFor(t, "SELECT MIN(Salary) FROM R", RelationInfo{Tuples: 100000, KBound: -1})
	if p.Spec.Algorithm != core.AggregationTree {
		t.Fatalf("unsorted, unlimited memory, MIN: %v", p)
	}
	// One non-decomposable aggregate in the list disqualifies the sweep for
	// the whole query (the plan is shared).
	p = planFor(t, "SELECT COUNT(Name), MAX(Salary) FROM R", RelationInfo{Tuples: 100000, KBound: -1})
	if p.Spec.Algorithm != core.AggregationTree {
		t.Fatalf("unsorted, mixed aggregates: %v", p)
	}

	// Unsorted with tight memory → sort first, then ktree(1).
	p = planFor(t, planSQL, RelationInfo{Tuples: 100000, KBound: -1, MemoryBudget: 1024})
	if !p.SortFirst || p.Spec.Algorithm != core.KOrderedTree || p.Spec.K != 1 {
		t.Fatalf("unsorted, tight memory: %v", p)
	}

	// Few expected constant intervals → linked list is adequate.
	p = planFor(t, planSQL, RelationInfo{Tuples: 100000, KBound: -1, ExpectedConstantIntervals: 12})
	if p.Spec.Algorithm != core.LinkedList {
		t.Fatalf("few intervals: %v", p)
	}
}

func TestOptimizerUsingOverridesEverything(t *testing.T) {
	p := planFor(t, planSQL+" USING LIST", RelationInfo{Tuples: 10, Sorted: true, KBound: -1})
	if p.Spec.Algorithm != core.LinkedList {
		t.Fatalf("USING LIST ignored: %v", p)
	}
	p = planFor(t, planSQL+" USING TUMA", RelationInfo{Tuples: 10, Sorted: true, KBound: -1})
	if !p.Tuma {
		t.Fatalf("USING TUMA ignored: %v", p)
	}
	p = planFor(t, planSQL+" USING KTREE", RelationInfo{Tuples: 10, KBound: -1})
	if p.Spec.Algorithm != core.KOrderedTree || p.Spec.K != 1 {
		t.Fatalf("USING KTREE default k: %v", p)
	}
	// USING SWEEP forces the sweep even where the planner would never pick
	// it (sorted input, non-decomposable aggregate — the wedge handles it).
	p = planFor(t, "SELECT MIN(Salary) FROM R USING SWEEP", RelationInfo{Tuples: 10, Sorted: true, KBound: -1})
	if p.Spec.Algorithm != core.SweepEval {
		t.Fatalf("USING SWEEP ignored: %v", p)
	}
}

func TestPlanString(t *testing.T) {
	p := planFor(t, planSQL, RelationInfo{Tuples: 100, Sorted: true, KBound: -1})
	if !strings.Contains(p.String(), "k-ordered-tree(k=1)") {
		t.Fatalf("plan string = %q", p.String())
	}
	p = planFor(t, planSQL, RelationInfo{Tuples: 100000, KBound: -1, MemoryBudget: 16})
	if !strings.Contains(p.String(), "sort + ") {
		t.Fatalf("plan string = %q", p.String())
	}
	p = planFor(t, planSQL+" USING TUMA", RelationInfo{})
	if !strings.Contains(p.String(), "tuma-two-pass") {
		t.Fatalf("plan string = %q", p.String())
	}
}

func TestResolveUsingRejectsNegativeK(t *testing.T) {
	if _, err := Parse(planSQL + " USING KTREE -1"); err == nil {
		t.Fatal("negative K must be rejected")
	}
}
