package server

import (
	"sync"
	"testing"

	"tempagg/internal/catalog"
)

// TestConcurrentDeclareAndQuery is a race-detector regression test: it
// drives declaration updates (the administration/ingest path) and query
// traffic against one shared catalog at the same time. Before Catalog
// guarded its entries map with an RWMutex, Declare's map write raced with
// the map reads in Query/Info/Entry/Names and `go test -race` failed here.
func TestConcurrentDeclareAndQuery(t *testing.T) {
	srv, addr := startServer(t)
	cat := srv.cat

	const queriers = 4
	const queriesEach = 20
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Administration side: keep re-declaring the relation's bounds and
	// listing names, as tempaggd's operator commands would.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := cat.Declare("Employed", catalog.Entry{KBound: i % 7}); err != nil {
				t.Error(err)
				return
			}
			if len(cat.Names()) != 1 {
				t.Error("catalog lost its relation")
				return
			}
		}
	}()

	// Query side: concurrent clients over the wire, each resolving the
	// relation through the catalog on every request.
	var qwg sync.WaitGroup
	for w := 0; w < queriers; w++ {
		qwg.Add(1)
		go func() {
			defer qwg.Done()
			c, err := Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for i := 0; i < queriesEach; i++ {
				if _, err := c.Query("SELECT COUNT(Name) FROM Employed"); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	qwg.Wait()
	close(stop)
	wg.Wait()

	// The catalog must still be consistent and persistable.
	if _, err := cat.Entry("Employed"); err != nil {
		t.Fatal(err)
	}
	if err := cat.Save(); err != nil {
		t.Fatal(err)
	}
}
