// Fixture for errdrop over the observability surface: obs.Sink.Flush,
// SlowLog.Record, and Registry.WritePrometheus all report write failures
// that vanish silently if dropped — a metrics endpoint that "works" while
// losing scrapes is worse than none.
package fixture

import (
	"io"
	"os"

	"tempagg/internal/obs"
)

func sinkErrors(s obs.Sink) {
	s.Flush()       // want `error result of \(obs\.Sink\)\.Flush is discarded`
	_ = s.Flush()   // want `error result of \(obs\.Sink\)\.Flush is assigned to _`
	go s.Flush()    // want `error result of \(obs\.Sink\)\.Flush is discarded by go`
	defer s.Flush() // want `error result of \(obs\.Sink\)\.Flush is discarded by defer`
}

func slowLogErrors(sl *obs.SlowLog, tr *obs.QueryTrace) {
	sl.Record(tr)              // want `error result of \(obs\.SlowLog\)\.Record is discarded`
	logged, _ := sl.Record(tr) // want `error result of \(obs\.SlowLog\)\.Record is assigned to _`
	_ = logged
}

func registryErrors(r *obs.Registry, w io.Writer) {
	r.WritePrometheus(w) // want `error result of \(obs\.Registry\)\.WritePrometheus is discarded`
}

func observabilityHandled(s obs.Sink, sl *obs.SlowLog, tr *obs.QueryTrace, r *obs.Registry) error {
	if err := s.Flush(); err != nil {
		return err
	}
	if logged, err := sl.Record(tr); logged && err != nil {
		return err
	}
	if err := r.WritePrometheus(os.Stderr); err != nil {
		return err
	}
	s.Evaluator("linked-list").TuplesProcessed(1) // ok: the hot-path sink has no error results
	return nil
}
