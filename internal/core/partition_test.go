package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tempagg/internal/aggregate"
	"tempagg/internal/interval"
	"tempagg/internal/tuple"
)

func TestUniformBoundaries(t *testing.T) {
	bs := UniformBoundaries(interval.MustNew(0, 99), 4)
	want := []interval.Time{25, 50, 75}
	if len(bs) != len(want) {
		t.Fatalf("boundaries = %v", bs)
	}
	for i := range want {
		if bs[i] != want[i] {
			t.Fatalf("boundaries = %v, want %v", bs, want)
		}
	}
	if UniformBoundaries(interval.MustNew(0, 99), 1) != nil {
		t.Fatal("n=1 must yield no boundaries")
	}
	if UniformBoundaries(interval.Universe(), 4) != nil {
		t.Fatal("open-ended lifespan must yield no boundaries")
	}
	// Tiny lifespan: width clamps to 1 and boundaries stay in range.
	bs = UniformBoundaries(interval.MustNew(10, 12), 8)
	for _, b := range bs {
		if b <= 10 || b > 12 {
			t.Fatalf("boundary %d out of range", b)
		}
	}
}

// TestPartitionWorkersSerialBelowTwo pins the documented Parallel contract:
// values below 2 mean serial evaluation — exactly one worker — and the
// worker count never exceeds the partition count.
func TestPartitionWorkersSerialBelowTwo(t *testing.T) {
	cases := []struct{ parallel, partitions, want int }{
		{-3, 8, 1}, // nonsense values fall back to serial
		{0, 8, 1},  // zero value: serial
		{1, 8, 1},  // one is "below 2": still serial, per the doc
		{2, 8, 2},  // the first genuinely parallel setting
		{4, 8, 4},
		{16, 8, 8}, // capped at the partition count
		{4, 1, 1},
	}
	for _, c := range cases {
		if got := partitionWorkers(c.parallel, c.partitions); got != c.want {
			t.Errorf("partitionWorkers(%d, %d) = %d, want %d",
				c.parallel, c.partitions, got, c.want)
		}
	}
}

func TestPartitionSpansValidation(t *testing.T) {
	if _, err := partitionSpans([]interval.Time{10, 10}); err == nil {
		t.Fatal("equal boundaries must fail")
	}
	if _, err := partitionSpans([]interval.Time{10, 5}); err == nil {
		t.Fatal("descending boundaries must fail")
	}
	if _, err := partitionSpans([]interval.Time{0}); err == nil {
		t.Fatal("boundary at the origin must fail")
	}
	spans, err := partitionSpans(nil)
	if err != nil || len(spans) != 1 || spans[0] != interval.Universe() {
		t.Fatalf("nil boundaries = %v, %v", spans, err)
	}
}

// TestPartitionedMatchesUnpartitioned: partitioned evaluation is
// value-equivalent to the oracle for every kind, boundary layout, spill
// mode, and parallelism.
func TestPartitionedMatchesUnpartitioned(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	for _, kind := range aggregate.Kinds() {
		f := aggregate.For(kind)
		prop := func() bool {
			ts := randomTuples(r, r.Intn(80), 500)
			want := Reference(f, ts)
			nb := r.Intn(6)
			var bounds []interval.Time
			prev := interval.Time(0)
			for i := 0; i < nb; i++ {
				prev += 1 + r.Int63n(200)
				bounds = append(bounds, prev)
			}
			for _, parallel := range []int{0, 3} {
				opts := PartitionOptions{Boundaries: bounds, Parallel: parallel}
				got, stats, err := EvaluatePartitionedTuples(f, ts, opts)
				if err != nil {
					t.Fatalf("%v: %v", kind, err)
				}
				if stats.Tuples != len(ts) {
					return false
				}
				if err := got.Validate(); err != nil {
					t.Fatalf("%v: %v", kind, err)
				}
				if !got.Equal(want) {
					return false
				}
			}
			return true
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
	}
}

func TestPartitionedSpillToDisk(t *testing.T) {
	r := rand.New(rand.NewSource(62))
	f := aggregate.For(aggregate.Sum)
	// Keep values in the on-disk int32/uint32 ranges.
	ts := make([]tuple.Tuple, 300)
	for i := range ts {
		s := r.Int63n(1000)
		ts[i] = tuple.MustNew("t", r.Int63n(1000), s, s+r.Int63n(400))
	}
	want := Reference(f, ts)
	opts := PartitionOptions{
		Boundaries: []interval.Time{200, 400, 600, 800},
		SpillDir:   t.TempDir(),
		Parallel:   2,
	}
	got, stats, err := EvaluatePartitionedTuples(f, ts, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("spilled evaluation differs from oracle")
	}
	if stats.PeakNodes <= 0 {
		t.Fatal("no peak recorded")
	}
}

// TestPartitionedBoundsMemory: evaluating partition by partition keeps the
// largest resident tree far below the single-tree size.
func TestPartitionedBoundsMemory(t *testing.T) {
	r := rand.New(rand.NewSource(63))
	f := aggregate.For(aggregate.Count)
	ts := make([]tuple.Tuple, 4000)
	for i := range ts {
		s := r.Int63n(100000)
		ts[i] = tuple.MustNew("t", 1, s, s+r.Int63n(300))
	}
	_, whole, err := Run(Spec{Algorithm: AggregationTree}, f, ts)
	if err != nil {
		t.Fatal(err)
	}
	opts := PartitionOptions{
		Boundaries: UniformBoundaries(interval.MustNew(0, 100299), 16),
	}
	_, parts, err := EvaluatePartitionedTuples(f, ts, opts)
	if err != nil {
		t.Fatal(err)
	}
	if parts.PeakNodes*4 > whole.PeakNodes {
		t.Fatalf("partitioned peak %d not ≪ whole-tree peak %d",
			parts.PeakNodes, whole.PeakNodes)
	}
}

func TestPartitionedForeverTuples(t *testing.T) {
	f := aggregate.For(aggregate.Count)
	ts := []tuple.Tuple{
		tuple.MustNew("a", 1, 5, interval.Forever),
		tuple.MustNew("b", 1, 0, 9),
	}
	got, _, err := EvaluatePartitionedTuples(f, ts, PartitionOptions{
		Boundaries: []interval.Time{10, 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(Reference(f, ts)) {
		t.Fatal("∞-ended tuples mishandled across partitions")
	}
}

func TestPartitionedRejectsInvalidInput(t *testing.T) {
	f := aggregate.For(aggregate.Count)
	//tempagglint:ignore intervalbounds the test needs an invalid tuple to exercise input rejection
	bad := []tuple.Tuple{{Name: "x", Valid: interval.Interval{Start: 9, End: 1}}}
	if _, _, err := EvaluatePartitionedTuples(f, bad, PartitionOptions{}); err == nil {
		t.Fatal("invalid tuple must be rejected")
	}
	if _, _, err := EvaluatePartitionedTuples(f, nil, PartitionOptions{
		Boundaries: []interval.Time{5, 3},
	}); err == nil {
		t.Fatal("bad boundaries must be rejected")
	}
}

func TestPartitionedEmptyInput(t *testing.T) {
	f := aggregate.For(aggregate.Min)
	got, _, err := EvaluatePartitionedTuples(f, nil, PartitionOptions{
		Boundaries: []interval.Time{10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != 2 {
		t.Fatalf("%d rows, want 2 partitions", len(got.Rows))
	}
	got.Coalesce()
	if len(got.Rows) != 1 {
		t.Fatal("empty partitions must coalesce to one row")
	}
}

func TestAggregationTreeRangeClipsInput(t *testing.T) {
	f := aggregate.For(aggregate.Count)
	tree := NewAggregationTreeRange(f, interval.MustNew(10, 19))
	for _, tu := range []tuple.Tuple{
		tuple.MustNew("in", 1, 12, 14),
		tuple.MustNew("strad", 1, 0, 11),
		tuple.MustNew("out", 1, 30, 40),
	} {
		if err := tree.Add(tu); err != nil {
			t.Fatal(err)
		}
	}
	res, err := tree.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if err := res.ValidatePartition(10, 19); err != nil {
		t.Fatal(err)
	}
	if v, ok := res.At(11); !ok || v.Int != 1 {
		t.Fatalf("count at 11 = %v, want 1 (straddling tuple clipped in)", v)
	}
	if v, ok := res.At(13); !ok || v.Int != 1 {
		t.Fatalf("count at 13 = %v, want 1 (only the in-range tuple)", v)
	}
	if v, ok := res.At(16); !ok || v.Int != 0 {
		t.Fatalf("count at 16 = %v, want 0 (outside tuple ignored)", v)
	}
}
