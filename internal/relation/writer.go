package relation

import (
	"bufio"
	"fmt"
	"os"

	"tempagg/internal/tuple"
)

// FileWriter streams tuples to a relation file without holding them in
// memory — the spill path of the out-of-core partitioned evaluation (the
// paper's §5.1/§7 idea of accumulating the tuples that overlap an offloaded
// region of the aggregation tree and processing them later).
//
// The header's tuple count is patched on Close; a writer that is abandoned
// without Close leaves an unreadable file.
type FileWriter struct {
	f      *os.File
	buf    *bufio.Writer
	rec    [RecordSize]byte
	count  uint64
	sorted bool
	last   tuple.Tuple
	closed bool
}

// NewFileWriter creates path and prepares it for streaming appends.
func NewFileWriter(path string) (*FileWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("relation: %w", err)
	}
	w := &FileWriter{f: f, buf: bufio.NewWriterSize(f, PageSize), sorted: true}
	// Placeholder header; rewritten with the real count on Close.
	if _, err := w.buf.Write(header{version: formatVersion}.encode()); err != nil {
		f.Close()
		return nil, fmt.Errorf("relation: write header: %w", err)
	}
	return w, nil
}

// Append writes one tuple.
func (w *FileWriter) Append(t tuple.Tuple) error {
	if w.closed {
		return fmt.Errorf("relation: append to closed writer")
	}
	if err := encodeRecord(w.rec[:], t); err != nil {
		return err
	}
	if _, err := w.buf.Write(w.rec[:]); err != nil {
		return fmt.Errorf("relation: write record: %w", err)
	}
	if w.count > 0 && t.Less(w.last) {
		w.sorted = false
	}
	w.last = t
	w.count++
	return nil
}

// Count reports how many tuples have been appended.
func (w *FileWriter) Count() int { return int(w.count) }

// Close flushes buffered records and patches the header with the final
// count and sorted flag.
func (w *FileWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if err := w.buf.Flush(); err != nil {
		w.f.Close()
		return fmt.Errorf("relation: flush: %w", err)
	}
	h := header{version: formatVersion, count: w.count}
	if w.sorted {
		h.flags |= FlagSorted
	}
	if _, err := w.f.WriteAt(h.encode(), 0); err != nil {
		w.f.Close()
		return fmt.Errorf("relation: patch header: %w", err)
	}
	return w.f.Close()
}
