package lint_test

import (
	"testing"

	"tempagg/internal/lint"
	"tempagg/internal/lint/linttest"
)

func TestLockCopy(t *testing.T) {
	linttest.Run(t, lint.LockCopy, "lockcopy")
}
