package core

import (
	"io"
	"strings"
	"sync"
	"testing"

	"tempagg/internal/aggregate"
	"tempagg/internal/interval"
	"tempagg/internal/obs"
)

// TestStreamingMergeConcurrentScrape is the -race regression for the
// streaming ordered merge: shards evaluate and emit concurrently while a
// scrape goroutine renders the metrics registry — the same surface the
// daemon's /metrics handler reads mid-query. It extends the
// TestStatsConcurrentSnapshot pattern from the single evaluator to the
// partitioned worker pool: every per-partition tree publishes through the
// shared sink as it runs, so a data race anywhere on the publish or
// snapshot path surfaces here under -race.
func TestStreamingMergeConcurrentScrape(t *testing.T) {
	f := aggregate.For(aggregate.Sum)
	ts := raceTuples(4000)
	m := obs.NewMetrics(obs.NewRegistry())

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Render the full exposition, as the /metrics handler would.
			if err := m.Registry().WritePrometheus(io.Discard); err != nil {
				t.Errorf("scrape: %v", err)
				return
			}
		}
	}()

	for round := 0; round < 3; round++ {
		st, err := EvaluatePartitionedStream(f, NewSliceSource(ts), PartitionOptions{
			Boundaries: []interval.Time{500, 1000, 1500, 2000, 2500, 3000, 3500},
			Parallel:   4,
			Sink:       m,
		})
		if err != nil {
			t.Fatal(err)
		}
		got := &Result{Func: f}
		for chunk := range st.Chunks() {
			got.Rows = append(got.Rows, chunk.Rows...)
		}
		stats, err := st.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if stats.Tuples != len(ts) {
			t.Fatalf("round %d: stats.Tuples = %d, want %d", round, stats.Tuples, len(ts))
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	close(stop)
	wg.Wait()

	// The scrape saw the arena counters move: every partition tree released
	// its slabs through the shared sink.
	var b strings.Builder
	if err := m.Registry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, metric := range []string{obs.MetricArenaSlabs, obs.MetricTuplesProcessed} {
		if !strings.Contains(out, metric) {
			t.Errorf("exposition missing %s after streamed runs", metric)
		}
	}
}

// TestStreamCancelStopsWorkers: canceling a stream mid-consumption must
// shut the pipeline down (Wait returns) without deadlock, with workers
// blocked on the bounded channel unblocked by the cancellation.
func TestStreamCancelStopsWorkers(t *testing.T) {
	f := aggregate.For(aggregate.Count)
	ts := raceTuples(2000)
	st, err := EvaluatePartitionedStream(f, NewSliceSource(ts), PartitionOptions{
		Boundaries: []interval.Time{200, 400, 600, 800, 1000, 1200, 1400, 1600},
		Parallel:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Read one chunk, then abandon the rest.
	<-st.Chunks()
	st.Cancel()
	if _, err := st.Wait(); err != nil {
		t.Fatalf("canceled stream must not report an error, got %v", err)
	}
}
