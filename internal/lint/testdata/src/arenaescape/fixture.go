// Fixture for arenaescape. The arena types here mirror the structural
// contract of internal/core's arena[T] and colArena — unexported alloc or
// acquire plus release methods — which is exactly what the analyzer keys
// on, so the fixture needs no dependency on core's unexported types.
package fixture

type node struct {
	v    int64
	next *node
}

// arena is a node arena in the shape of core's arena[T].
type arena struct{ free *node }

func (a *arena) alloc() *node {
	if n := a.free; n != nil {
		a.free = n.next
		return n
	}
	return &node{}
}

func (a *arena) recycle(n *node) { n.next, a.free = a.free, n }

func (a *arena) release() { a.free = nil }

// cols is a column arena in the shape of core's colArena.
type cols struct{ held [][]int64 }

func (c *cols) acquire(n int) []int64 { return make([]int64, 0, n) }

func (c *cols) push(col []int64, v int64) []int64 { return append(col, v) }

func (c *cols) release() { c.held = nil }

var leaked *node

func useAfterRelease(a *arena) int64 {
	n := a.alloc()
	n.v = 1
	a.release()
	return n.v // want `n is used after its arena released it at line \d+`
}

func releaseAfterLastUse(a *arena) int64 {
	n := a.alloc()
	n.v = 2
	v := n.v
	a.release()
	return v // ok: no tracked value read after release
}

func deferredRelease(a *arena) int64 {
	n := a.alloc()
	defer a.release()
	return n.v // ok: the deferred release runs after the result is computed
}

func useAfterRecycle(a *arena) {
	n := a.alloc()
	m := a.alloc()
	a.recycle(n)
	_ = n.v // want `n is used after its arena released it at line \d+`
	_ = m.v // ok: only n was recycled
	a.recycle(m)
}

func releasedOnOnePath(a *arena, early bool) int64 {
	n := a.alloc()
	if early {
		a.release()
	}
	return n.v // want `n is used after its arena released it at line \d+`
}

func storeInGlobal(a *arena) {
	n := a.alloc()
	leaked = n // want `arena-allocated n is stored in a package-level variable`
}

func sendOnChannel(a *arena, ch chan *node) {
	n := a.alloc()
	ch <- n // want `arena-allocated n is sent on a channel`
}

func columnsAfterRelease(c *cols) int64 {
	col := c.acquire(8)
	col = c.push(col, 41)
	head := col[:1]
	c.release()
	return head[0] // want `head is used after its arena released it at line \d+`
}

func columnsClean(c *cols) int64 {
	col := c.acquire(8)
	col = c.push(col, 41)
	sum := col[0]
	c.release()
	return sum // ok: only the scalar survives the release
}

func independentArenas(a, b *arena) int64 {
	n := a.alloc()
	b.release() // a different arena: n is still live
	return n.v  // ok
}
