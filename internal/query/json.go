package query

import (
	"encoding/json"

	"tempagg/internal/core"
)

// jsonGroup is the wire form of one attribute group.
type jsonGroup struct {
	Key     string         `json:"key,omitempty"`
	Results []*core.Result `json:"results"`
}

type jsonQueryResult struct {
	Query   string      `json:"query"`
	Plan    string      `json:"plan"`
	Groups  []jsonGroup `json:"groups"`
	Explain string      `json:"explain,omitempty"`
}

// MarshalJSON encodes the query outcome with the canonical query text, the
// chosen plan, one result per group and select-list aggregate, and — for
// EXPLAIN [ANALYZE] statements — the rendered report.
func (qr *QueryResult) MarshalJSON() ([]byte, error) {
	out := jsonQueryResult{
		Query:   qr.Query.String(),
		Plan:    qr.Plan.String(),
		Explain: qr.Explain,
	}
	for _, g := range qr.Groups {
		out.Groups = append(out.Groups, jsonGroup{Key: g.Key, Results: g.Results})
	}
	return json.Marshal(out)
}
