// Command datagen generates synthetic temporal relations per the paper's
// Table 3 parameters and writes them in the paged binary format.
//
// Usage:
//
//	datagen -out r.rel -tuples 65536 -long-lived 40 -order kordered -k 40 -kpct 0.08
package main

import (
	"flag"
	"fmt"
	"os"

	"tempagg"
	"tempagg/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	var (
		out       = fs.String("out", "", "output relation file (required)")
		tuples    = fs.Int("tuples", 1024, "relation size in tuples")
		longLived = fs.Int("long-lived", 0, "percentage of long-lived tuples (0-100)")
		events    = fs.Int("events", 0, "percentage of instantaneous event tuples (0-100)")
		orderName = fs.String("order", "random", "tuple order: random, sorted, kordered, or retro")
		k         = fs.Int("k", 0, "k bound for -order kordered")
		kpct      = fs.Float64("kpct", 0.08, "target k-ordered-percentage for -order kordered")
		delay     = fs.Int64("delay", 0, "recording delay bound in instants for -order retro")
		lifespan  = fs.Int64("lifespan", int64(workload.DefaultLifespan), "relation lifespan in instants")
		seed      = fs.Int64("seed", 1, "random seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("-out is required")
	}
	cfg := tempagg.WorkloadConfig{
		Tuples:       *tuples,
		Lifespan:     tempagg.Time(*lifespan),
		LongLivedPct: *longLived,
		EventPct:     *events,
		K:            *k,
		KPct:         *kpct,
		MaxDelay:     tempagg.Time(*delay),
		Seed:         *seed,
	}
	switch *orderName {
	case "random":
		cfg.Order = workload.Random
	case "sorted":
		cfg.Order = workload.Sorted
	case "kordered":
		cfg.Order = workload.KOrdered
	case "retro":
		cfg.Order = workload.RetroBounded
	default:
		return fmt.Errorf("unknown -order %q (want random, sorted, kordered, or retro)", *orderName)
	}
	rel, err := tempagg.Generate(cfg)
	if err != nil {
		return err
	}
	if err := tempagg.WriteRelation(*out, rel); err != nil {
		return err
	}
	fmt.Printf("wrote %d tuples (%s order, %d%% long-lived) to %s\n",
		rel.Len(), cfg.Order, *longLived, *out)
	return nil
}
