// Command tempaggd serves a catalog of temporal relations over TCP with a
// line protocol (one query in, one JSON reply out), and doubles as a client.
//
// Usage:
//
//	tempaggd -db ./relations -listen 127.0.0.1:7411       # server
//	tempaggd -connect 127.0.0.1:7411 -query "SELECT ..."  # one-shot client
//
// See internal/server for the protocol.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"os"

	"tempagg/internal/catalog"
	"tempagg/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tempaggd:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tempaggd", flag.ContinueOnError)
	var (
		db      = fs.String("db", "", "catalog directory to serve")
		listen  = fs.String("listen", "", "address to listen on, e.g. 127.0.0.1:7411")
		connect = fs.String("connect", "", "server address to query as a client")
		sql     = fs.String("query", "", "query to send in client mode")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch {
	case *listen != "" && *connect != "":
		return fmt.Errorf("-listen and -connect are mutually exclusive")
	case *listen != "":
		if *db == "" {
			return fmt.Errorf("-db is required with -listen")
		}
		cat, err := catalog.Open(*db)
		if err != nil {
			return err
		}
		lis, err := net.Listen("tcp", *listen)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "serving %d relations on %s\n", len(cat.Names()), lis.Addr())
		return server.New(cat).Serve(lis)
	case *connect != "":
		if *sql == "" {
			return fmt.Errorf("-query is required with -connect")
		}
		c, err := server.Dial(*connect)
		if err != nil {
			return err
		}
		defer c.Close()
		raw, err := c.QueryRaw(*sql)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%s\n", raw)
		return nil
	}
	return fmt.Errorf("one of -listen or -connect is required")
}
