// Range-query acceleration: the catalog half of DESIGN.md S37.
//
// Two opt-in layers sit in front of query execution. The interval-index
// cache keeps one materialized core.IntervalIndex per relation file, keyed
// by the file's fingerprint (size + mtime): any rewrite of the file makes
// the cached index unreachable and the next eligible query rebuilds it.
// The result cache keeps finished range-query answers in an LRU keyed by
// (relation, version, aggregate kind, window), where version is the file
// fingerprint for batch relations and the live epoch seqno for live ones —
// ingestion advances the seqno, so staleness is structural, never timed.
package catalog

import (
	"fmt"
	"os"

	"tempagg/internal/core"
	"tempagg/internal/interval"
	"tempagg/internal/obs"
	"tempagg/internal/query"
	"tempagg/internal/relation"
)

// indexEntry is one relation's cached interval index plus the file
// fingerprint it was built from.
type indexEntry struct {
	version string
	idx     *core.IntervalIndex
}

// EnableRangeIndex turns on the per-relation interval-index cache: eligible
// queries (query.IndexEligible) are planned against a resident index built
// lazily on first use and reused until the relation file changes.
func (c *Catalog) EnableRangeIndex() {
	c.rangeIndex.Store(true)
}

// EnableResultCache turns on the LRU result cache with the given entry
// capacity (≤ 0 means core.DefaultResultCacheCapacity). Calling it again
// replaces the cache; the old one is closed.
func (c *Catalog) EnableResultCache(capacity int) {
	if old := c.results.Swap(core.NewResultCache(capacity)); old != nil {
		defer old.Close()
	}
}

// ResultCacheStats snapshots the result cache's counters; the zero value
// when the cache is disabled.
func (c *Catalog) ResultCacheStats() core.CacheStats {
	rc := c.results.Load()
	if rc == nil {
		return core.CacheStats{}
	}
	return rc.Stats()
}

// Close releases the catalog's caches. Cached interval indexes are not
// explicitly closed — in-flight lookups may still hold them; the collector
// reclaims them once the last reader drops its handle.
func (c *Catalog) Close() error {
	if rc := c.results.Swap(nil); rc != nil {
		return rc.Close()
	}
	return nil
}

// fileFingerprint derives a relation file's version from its size and
// modification time. An unreadable file yields "", which disables both
// caches for the query rather than serving a possibly-stale answer.
func fileFingerprint(path string) string {
	fi, err := os.Stat(path)
	if err != nil {
		return ""
	}
	return fmt.Sprintf("%d:%d", fi.Size(), fi.ModTime().UnixNano())
}

// indexFor returns the resident index for a relation file, building (or
// rebuilding, when the fingerprint moved) under the index lock so
// concurrent first queries construct it once. Superseded indexes are left
// to the collector: a replaced entry may still be serving older queries.
func (c *Catalog) indexFor(name, path, version string) (*core.IntervalIndex, error) {
	c.idxMu.Lock()
	defer c.idxMu.Unlock()
	if e, ok := c.indexes[name]; ok && e.version == version {
		return e.idx, nil
	}
	rel, err := loadRelation(path, name, relation.ScanOptions{})
	if err != nil {
		return nil, err
	}
	idx, err := core.NewIntervalIndex(rel.Tuples)
	if err != nil {
		return nil, err
	}
	// The sink is attached before the index escapes the lock; lookups
	// publish under the index-lookup algorithm label.
	if m := c.liveM(); m != nil {
		idx.SetSink(m)
	}
	if c.indexes == nil {
		c.indexes = map[string]indexEntry{}
	}
	c.indexes[name] = indexEntry{version: version, idx: idx}
	return idx, nil
}

// cacheWindow normalizes a query's range restriction into the cache key's
// window: [t, t] for AT, the VALID OVERLAPS window, or the whole time-line.
func cacheWindow(q *query.Query) interval.Interval {
	switch {
	case q.At != nil:
		return interval.At(*q.At)
	case q.Window != nil:
		return *q.Window
	}
	return interval.Universe()
}

// cacheable reports whether a query's answer can be keyed by (relation,
// version, kind, window) alone: the same shape the interval index serves —
// any predicate or grouping beyond the window would need to be part of the
// key. Live queries use the same shape check against their epoch version.
func cacheable(q *query.Query) bool {
	if len(q.Where) > 0 || q.GroupAttr != nil || q.Temporal == query.BySpan {
		return false
	}
	for _, a := range q.Aggs {
		if a.Distinct {
			return false
		}
	}
	return len(q.Aggs) > 0 && q.Explain != query.ExplainPlan
}

// serveCached tries to answer q entirely from the result cache at the
// given version. Every select-list aggregate must hit; a partial hit is a
// miss (the query then evaluates once and refills every key). The attempt
// is recorded as a "result-cache" span with outcome=hit|miss, so EXPLAIN
// ANALYZE shows warm reads explicitly.
func (c *Catalog) serveCached(rc *core.ResultCache, q *query.Query, version string, tr *obs.QueryTrace) (*query.QueryResult, bool) {
	span := tr.StartSpan("result-cache")
	w := cacheWindow(q)
	gr := query.GroupResult{}
	for _, a := range q.Aggs {
		res, ok := rc.Get(core.CacheKey{
			Relation: q.Relation, Version: version, Kind: a.Kind, Window: w,
		})
		if !ok {
			span.SetAttr("outcome", "miss")
			span.End()
			c.liveM().ResultCacheMiss()
			return nil, false
		}
		gr.Results = append(gr.Results, res)
		gr.AllStats = append(gr.AllStats, core.Stats{})
	}
	span.SetAttr("outcome", "hit")
	// End before rendering: EXPLAIN ANALYZE walks the span tree below, and
	// an unfinished span would render without its duration.
	span.End()
	c.liveM().ResultCacheHit()
	gr.Result, gr.Stats = gr.Results[0], gr.AllStats[0]
	plan := query.Plan{Cached: true, Reason: fmt.Sprintf("result cache hit at version %s", version)}
	tr.SetPlan(plan.Algorithm(), 0, plan.String())
	tr.SetGroups(1)
	qr := &query.QueryResult{Query: q, Plan: plan, Groups: []query.GroupResult{gr}}
	if q.Explain == query.ExplainAnalyze {
		qr.Explain = query.RenderExplain(qr, tr)
	}
	return qr, true
}

// storeResults fills the cache with a finished query's per-aggregate rows
// under the version they were computed at.
func (c *Catalog) storeResults(rc *core.ResultCache, q *query.Query, version string, qr *query.QueryResult) {
	if len(qr.Groups) != 1 || qr.Plan.Cached {
		return
	}
	w := cacheWindow(q)
	evicted := 0
	for i, a := range q.Aggs {
		if i >= len(qr.Groups[0].Results) {
			break
		}
		evicted += rc.Put(core.CacheKey{
			Relation: q.Relation, Version: version, Kind: a.Kind, Window: w,
		}, qr.Groups[0].Results[i])
	}
	if evicted > 0 {
		c.liveM().ResultCacheEvicted(evicted)
	}
}
