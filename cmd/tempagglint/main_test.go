package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tempagg/internal/lint"
)

func TestListPrintsAllAnalyzers(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("run -list = %d, stderr: %s", code, errOut.String())
	}
	for _, name := range []string{
		"intervalbounds", "finishonce", "errdrop", "nodebytes", "lockcopy",
		"arenaescape", "poolbalance", "atomicmix", "unlockpath", "sinknil",
	} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, out.String())
		}
	}
}

func TestSelectAnalyzers(t *testing.T) {
	all := lint.Analyzers(lint.Config{})
	got, err := selectAnalyzers(all, "errdrop, nodebytes")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "errdrop" || got[1].Name != "nodebytes" {
		t.Fatalf("selectAnalyzers = %v", got)
	}
	if _, err := selectAnalyzers(all, "nosuch"); err == nil {
		t.Error("unknown analyzer accepted")
	}
	if _, err := selectAnalyzers(all, " , "); err == nil {
		t.Error("empty selection accepted")
	}
}

func TestUnknownFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-definitely-not-a-flag"}, &out, &errOut); code != 2 {
		t.Fatalf("run with bad flag = %d, want 2", code)
	}
}

// TestRepositoryIsClean is the acceptance gate: the suite must exit 0 over
// the whole tree, test files included — which also asserts that every
// in-tree suppression carries a reason and still suppresses something
// (the audit exits 2 otherwise). Skipped under -short because it
// type-checks the entire module.
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module lint is not short")
	}
	var out, errOut bytes.Buffer
	code := run([]string{"-C", "../..", "./..."}, &out, &errOut)
	if code != 0 {
		t.Fatalf("tempagglint over the repository = %d\n%s%s", code, out.String(), errOut.String())
	}
}

// TestRepositoryMatchesBaseline runs the CI invocation: the checked-in
// baseline must admit the current tree (no new findings, ignore count
// within budget).
func TestRepositoryMatchesBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module lint is not short")
	}
	baseline, err := filepath.Abs("../../lint_baseline.json")
	if err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	code := run([]string{"-C", "../..", "-baseline", baseline, "./..."}, &out, &errOut)
	if code != 0 {
		t.Fatalf("tempagglint -baseline over the repository = %d\n%s%s", code, out.String(), errOut.String())
	}
}

// writeTempModule materializes a throwaway module named tempagg (the
// loader only analyzes packages of that module) for driver-level
// negative tests.
func writeTempModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	all := map[string]string{"go.mod": "module tempagg\n\ngo 1.22\n"}
	for name, src := range files {
		all[name] = src
	}
	for name, src := range all {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// leakSrc holds one planted unlockpath violation: the early return
// leaves mu locked.
const leakSrc = `package leak

import "sync"

var mu sync.Mutex

func Bad(b bool) bool {
	mu.Lock()
	if b {
		return true
	}
	mu.Unlock()
	return false
}
`

// TestBaselineGate is the negative test for the findings budget: a
// planted violation must fail against an empty baseline, pass after
// -write-baseline captures it, and suppressing it must then trip the
// ignore-count budget instead.
func TestBaselineGate(t *testing.T) {
	if testing.Short() {
		t.Skip("drives go list")
	}
	dir := writeTempModule(t, map[string]string{"leak/leak.go": leakSrc})
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte(`{"version":1,"ignores":0,"findings":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}

	// A synthetic new finding over an empty baseline must fail.
	var out, errOut bytes.Buffer
	if code := run([]string{"-C", dir, "-baseline", empty, "./..."}, &out, &errOut); code != 1 {
		t.Fatalf("empty baseline vs planted violation = %d, want 1\n%s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(errOut.String(), "NEW ") || !strings.Contains(errOut.String(), "new finding(s) over baseline") {
		t.Fatalf("baseline failure does not identify the new finding:\n%s", errOut.String())
	}

	// Capturing the violation with -write-baseline makes the gate pass.
	captured := filepath.Join(dir, "captured.json")
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-C", dir, "-write-baseline", captured, "./..."}, &out, &errOut); code != 0 {
		t.Fatalf("-write-baseline = %d\n%s%s", code, out.String(), errOut.String())
	}
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-C", dir, "-baseline", captured, "./..."}, &out, &errOut); code != 0 {
		t.Fatalf("captured baseline vs same tree = %d, want 0\n%s%s", code, out.String(), errOut.String())
	}

	// Suppressing the finding resolves it but grows the ignore count past
	// the captured budget of zero, so the gate must still fail.
	suppressed := strings.Replace(leakSrc, "\t\treturn true",
		"\t\t//tempagglint:ignore unlockpath planted for the driver test\n\t\treturn true", 1)
	if err := os.WriteFile(filepath.Join(dir, "leak", "leak.go"), []byte(suppressed), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-C", dir, "-baseline", captured, "./..."}, &out, &errOut); code != 1 {
		t.Fatalf("ignore-count growth = %d, want 1\n%s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(errOut.String(), "ignore directives grew from 0 to 1") {
		t.Fatalf("growth failure does not name the budget:\n%s", errOut.String())
	}
}

// TestSuppressionAudit is the negative test for the ignore hygiene
// rules: a reasonless directive and a stale directive each exit 2.
func TestSuppressionAudit(t *testing.T) {
	if testing.Short() {
		t.Skip("drives go list")
	}
	t.Run("reasonless", func(t *testing.T) {
		src := strings.Replace(leakSrc, "\t\treturn true",
			"\t\t//tempagglint:ignore unlockpath\n\t\treturn true", 1)
		dir := writeTempModule(t, map[string]string{"leak/leak.go": src})
		var out, errOut bytes.Buffer
		if code := run([]string{"-C", dir, "./..."}, &out, &errOut); code != 2 {
			t.Fatalf("reasonless ignore = %d, want 2\n%s%s", code, out.String(), errOut.String())
		}
		if !strings.Contains(errOut.String(), "without a reason") {
			t.Fatalf("audit failure does not mention the missing reason:\n%s", errOut.String())
		}
	})
	t.Run("stale", func(t *testing.T) {
		src := strings.Replace(leakSrc, "\tmu.Unlock()",
			"\t//tempagglint:ignore unlockpath nothing is flagged here anymore\n\tmu.Unlock()", 1)
		dir := writeTempModule(t, map[string]string{"leak/leak.go": src})
		var out, errOut bytes.Buffer
		code := run([]string{"-C", dir, "./..."}, &out, &errOut)
		if code != 2 {
			t.Fatalf("stale ignore = %d, want 2\n%s%s", code, out.String(), errOut.String())
		}
		if !strings.Contains(errOut.String(), "stale tempagglint:ignore") {
			t.Fatalf("audit failure does not mention staleness:\n%s", errOut.String())
		}
	})
}

// TestJSONOutput checks the machine-readable mode: diagnostics come out
// as a JSON array with module-relative file paths.
func TestJSONOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("drives go list")
	}
	dir := writeTempModule(t, map[string]string{"leak/leak.go": leakSrc})
	var out, errOut bytes.Buffer
	if code := run([]string{"-C", dir, "-json", "./..."}, &out, &errOut); code != 1 {
		t.Fatalf("-json with planted violation = %d, want 1\n%s%s", code, out.String(), errOut.String())
	}
	var diags []struct {
		File, Analyzer, Message string
		Line, Col               int
	}
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("stdout is not a JSON array: %v\n%s", err, out.String())
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %+v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "unlockpath" || d.File != "leak/leak.go" || d.Line == 0 {
		t.Fatalf("unexpected diagnostic: %+v", d)
	}
}
