package bench

import (
	"testing"

	"tempagg/internal/aggregate"
	"tempagg/internal/core"
	"tempagg/internal/interval"
	"tempagg/internal/relation"
	"tempagg/internal/workload"
)

// Go-native benchmarks over the hot evaluation paths, complementing the
// harness's wall-clock figures with allocation counts: every benchmark
// reports allocs/op so `go test -bench . ./internal/bench` shows where the
// arena and column pool pay off. Run with -benchtime to taste.

const benchTuples = 1 << 13

func benchRelation(b *testing.B, order workload.Order) *relation.Relation {
	b.Helper()
	rel, err := workload.Generate(workload.Config{
		Tuples: benchTuples, Order: order, Seed: 101,
	})
	if err != nil {
		b.Fatal(err)
	}
	return rel
}

func benchEval(b *testing.B, spec core.Spec, kind aggregate.Kind, order workload.Order) {
	b.Helper()
	rel := benchRelation(b, order)
	f := aggregate.For(kind)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _, err := core.Run(spec, f, rel.Tuples)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkSweepRandomCount(b *testing.B) {
	benchEval(b, core.Spec{Algorithm: core.SweepEval}, aggregate.Count, workload.Random)
}

func BenchmarkSweepSortedCount(b *testing.B) {
	benchEval(b, core.Spec{Algorithm: core.SweepEval}, aggregate.Count, workload.Sorted)
}

func BenchmarkSweepRandomMin(b *testing.B) {
	benchEval(b, core.Spec{Algorithm: core.SweepEval}, aggregate.Min, workload.Random)
}

func BenchmarkAggregationTreeRandomCount(b *testing.B) {
	benchEval(b, core.Spec{Algorithm: core.AggregationTree}, aggregate.Count, workload.Random)
}

func BenchmarkBalancedTreeRandomCount(b *testing.B) {
	benchEval(b, core.Spec{Algorithm: core.BalancedTree}, aggregate.Count, workload.Random)
}

func BenchmarkKTreeSortedCount(b *testing.B) {
	benchEval(b, core.Spec{Algorithm: core.KOrderedTree, K: 1}, aggregate.Count, workload.Sorted)
}

func BenchmarkPartitionedSweepRandomCount(b *testing.B) {
	rel := benchRelation(b, workload.Random)
	f := aggregate.For(aggregate.Count)
	boundaries := core.UniformBoundaries(
		interval.MustNew(0, workload.DefaultLifespan-1), 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, err := core.EvaluatePartitionedTuples(f, rel.Tuples, core.PartitionOptions{
			Boundaries: boundaries, Parallel: 4, Sweep: true,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
