package core

import (
	"testing"

	"tempagg/internal/aggregate"
	"tempagg/internal/interval"
)

// TestSetSinkNilSafe locks in the obs.Sink contract at the evaluator
// boundary: a nil Sink means "instrumentation disabled", so setSink(nil)
// must be a no-op rather than a nil-interface panic, and a full
// Add/Finish cycle must run with observability off. Regression test for
// the sinknil findings on every evaluator's setSink (the guards used to
// live only in the callers).
func TestSetSinkNilSafe(t *testing.T) {
	f := aggregate.For(aggregate.Sum)
	kt, err := NewKOrderedTree(f, 2)
	if err != nil {
		t.Fatal(err)
	}
	evaluators := map[string]Evaluator{
		"linked-list":      NewLinkedList(f),
		"aggregation-tree": NewAggregationTree(f),
		"balanced-tree":    NewBalancedTree(f),
		"k-ordered-tree":   kt,
		"sweep":            NewSweep(f),
	}
	for name, ev := range evaluators {
		ss, ok := ev.(sinkSetter)
		if !ok {
			t.Errorf("%s: evaluator does not implement sinkSetter", name)
			continue
		}
		ss.setSink(nil) // must not panic and must leave the sink disabled
		for i := int64(0); i < 4; i++ {
			if err := ev.Add(mustTuple(t, "x", 1, interval.Time(i), interval.Time(i+10))); err != nil {
				t.Fatalf("%s: Add with nil sink: %v", name, err)
			}
		}
		if _, err := ev.Finish(); err != nil {
			t.Fatalf("%s: Finish with nil sink: %v", name, err)
		}
	}
}
