// Command benchharness regenerates every table and figure of the paper's
// evaluation section (Kline & Snodgrass §6) plus the future-work ablations,
// printing one aligned table per artifact: rows are the paper's curves,
// columns the relation sizes.
//
// Usage:
//
//	benchharness                  # everything, full 1K–64K sweep
//	benchharness -exp fig7        # one experiment
//	benchharness -max-size 16384  # cap the sweep (the sorted-input
//	                              # aggregation tree is O(n²) by design)
//	benchharness -seeds 5         # more repetitions per point
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"tempagg/internal/bench"
	"tempagg/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchharness:", err)
		os.Exit(1)
	}
}

var experiments = []struct {
	name string
	desc string
	run  func(bench.Options) (bench.Figure, error)
}{
	{"fig6", "time on unordered relations", bench.Figure6},
	{"fig7", "time on ordered relations, no long-lived tuples", bench.Figure7},
	{"fig8", "time on ordered relations, 80% long-lived tuples", bench.Figure8},
	{"fig9", "memory, no long-lived tuples", bench.Figure9},
	{"mem-longlived", "memory, 80% long-lived tuples (§6.2 prose)", bench.MemoryLongLived},
	{"ablation-balanced", "balanced aggregation tree (future work §7)", bench.AblationBalanced},
	{"ablation-pages", "page-randomized reads of sorted files (future work §7)", bench.AblationPageRandomization},
	{"ablation-partitioned", "limited-main-memory partitioned evaluation (§5.1/§7)", bench.AblationPartitioned},
	{"ablation-span", "span grouping vs instant grouping (future work §7)", bench.AblationSpan},
	{"baseline", "hot-path baseline for before/after comparison (see BENCH_PR4.json)", bench.Baseline},
	{"sweep", "columnar event sweep vs aggregation tree (see BENCH_PR5.json)", bench.SweepFigure},
	{"sweep-parallel", "parallel chunked sweep + shared multi-query pass (see BENCH_PR7.json)", bench.SweepParallelFigure},
	{"live-read", "live snapshot reads during ingestion vs batch re-evaluation (see BENCH_PR9.json)", bench.LiveReadFigure},
	{"range-query", "range-restricted aggregates: interval index vs full sweep vs result cache (see BENCH_PR10.json)", bench.RangeQueryFigure},
}

// jsonReport is the machine-readable output of -json: enough run metadata to
// make two reports comparable, plus the measured figures.
type jsonReport struct {
	Sizes       []int          `json:"sizes"`
	Seeds       []int64        `json:"seeds"`
	GOMAXPROCS  int            `json:"gomaxprocs"`
	GoVersion   string         `json:"go_version"`
	Experiments []bench.Figure `json:"experiments"`
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("benchharness", flag.ContinueOnError)
	var names []string
	for _, e := range experiments {
		names = append(names, e.name)
	}
	var (
		exp      = fs.String("exp", "all", "experiments, comma-separated: all, table1, table2, "+strings.Join(names, ", "))
		maxSize  = fs.Int("max-size", 1<<16, "largest relation size in the sweep")
		seeds    = fs.Int("seeds", 3, "random seeds per point (median reported)")
		format   = fs.String("format", "table", "output format for figures: table or csv")
		asJSON   = fs.Bool("json", false, "baseline mode: emit one JSON report of the selected figure experiments (table1/table2 are skipped); diffable across binaries for before/after comparison")
		verify   = fs.Bool("verify", false, "re-measure the paper's qualitative claims and print PASS/FAIL verdicts")
		baseline = fs.String("baseline", "", "regression gate: compare the selected figure experiments against this checked-in JSON report (e.g. BENCH_PR4.json) and fail on a median slowdown beyond -tolerance")
		tol      = fs.Float64("tolerance", 0.25, "allowed fractional slowdown per series for -baseline")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts := bench.Options{}
	for _, n := range workload.Table3Sizes() {
		if n <= *maxSize {
			opts.Sizes = append(opts.Sizes, n)
		}
	}
	if len(opts.Sizes) == 0 {
		return fmt.Errorf("-max-size %d admits no Table 3 size (smallest is 1024)", *maxSize)
	}
	for i := 0; i < *seeds; i++ {
		opts.Seeds = append(opts.Seeds, int64(101+i*101))
	}

	if *verify {
		claims, err := bench.VerifyClaims(*maxSize, 101)
		if err != nil {
			return err
		}
		fmt.Fprint(out, bench.FormatClaims(claims))
		for _, c := range claims {
			if !c.Passed {
				return fmt.Errorf("%d claim(s) failed", 1)
			}
		}
		return nil
	}

	selected := map[string]bool{}
	for _, n := range strings.Split(*exp, ",") {
		selected[strings.TrimSpace(n)] = true
	}
	all := selected["all"]
	ran := false
	if *asJSON {
		report := jsonReport{
			Sizes:      opts.Sizes,
			Seeds:      opts.Seeds,
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			GoVersion:  runtime.Version(),
		}
		for _, e := range experiments {
			if !all && !selected[e.name] {
				continue
			}
			fig, err := e.run(opts)
			if err != nil {
				return fmt.Errorf("%s: %w", e.name, err)
			}
			report.Experiments = append(report.Experiments, fig)
		}
		if len(report.Experiments) == 0 {
			return fmt.Errorf("-json: no figure experiment matches %q", *exp)
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			return err
		}
		return gateAgainst(*baseline, *tol, report.Experiments)
	}
	if all || selected["table1"] {
		s, err := bench.Table1()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, s)
		ran = true
	}
	if all || selected["table2"] {
		s, err := bench.Table2()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, s)
		ran = true
	}
	var measured []bench.Figure
	for _, e := range experiments {
		if !all && !selected[e.name] {
			continue
		}
		fig, err := e.run(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		switch *format {
		case "csv":
			fmt.Fprintln(out, fig.CSV())
		case "table":
			fmt.Fprintln(out, fig)
		default:
			return fmt.Errorf("unknown -format %q (want table or csv)", *format)
		}
		measured = append(measured, fig)
		ran = true
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", *exp)
	}
	return gateAgainst(*baseline, *tol, measured)
}

// gateAgainst applies the bench regression gate when a baseline report was
// named. The per-series verdicts go to stderr so -json output stays pure.
func gateAgainst(path string, tolerance float64, figures []bench.Figure) error {
	if path == "" {
		return nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("-baseline: %w", err)
	}
	res, err := bench.RegressionGate(data, figures, tolerance)
	if err != nil {
		return err
	}
	for _, line := range res.Lines {
		fmt.Fprintln(os.Stderr, "baseline:", line)
	}
	if len(res.Regressions) > 0 {
		return fmt.Errorf("bench regression vs %s:\n  %s",
			path, strings.Join(res.Regressions, "\n  "))
	}
	return nil
}
