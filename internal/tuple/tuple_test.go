package tuple

import (
	"testing"

	"tempagg/internal/interval"
)

func TestNewValid(t *testing.T) {
	tu, err := New("Karen", 45, 8, 20)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if tu.Name != "Karen" || tu.Value != 45 || tu.Valid != interval.MustNew(8, 20) {
		t.Fatalf("New = %+v", tu)
	}
}

func TestNewRejectsBadInterval(t *testing.T) {
	if _, err := New("x", 1, 9, 3); err == nil {
		t.Fatal("expected error for reversed interval")
	}
	if _, err := New("x", 1, -2, 3); err == nil {
		t.Fatal("expected error for negative start")
	}
}

func TestNewRejectsLongName(t *testing.T) {
	if _, err := New("Bartholomew", 1, 0, 1); err == nil {
		t.Fatal("expected error for >6-byte name")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic")
		}
	}()
	MustNew("x", 1, 5, 2)
}

func TestLessIsTimeOrder(t *testing.T) {
	a := MustNew("a", 0, 1, 9)
	b := MustNew("b", 0, 2, 3)
	c := MustNew("c", 0, 1, 3)
	if !a.Less(b) || b.Less(a) {
		t.Error("ordering by start time failed")
	}
	if !c.Less(a) || a.Less(c) {
		t.Error("tie on start must break by end time")
	}
	if a.Less(a) {
		t.Error("Less must be irreflexive")
	}
}

func TestString(t *testing.T) {
	tu := MustNew("Rich", 40, 18, interval.Forever)
	if got := tu.String(); got != "[Rich, 40, 18, ∞]" {
		t.Fatalf("String() = %q", got)
	}
}
