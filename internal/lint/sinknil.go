package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SinkNil flags method calls on obs.Sink or obs.EvalSink values that are
// not proven non-nil on every path reaching the call.
//
// Hazard class: the Sink contract (internal/obs/sink.go) makes nil mean
// "instrumentation disabled" — core checks the interface for nil once per
// evaluator and keeps a nil EvalSink handle so the disabled per-tuple cost
// is one pointer comparison. The flip side of that contract is that every
// call site must perform the comparison: invoking a method on the nil
// interface panics, and because observability is optional the nil
// configuration is exactly the one the happy-path tests never run.
//
// Lattice: must-analysis over the set of sink-typed expressions (receiver
// keys) proven non-nil — intersection at joins, since a value is only
// safe if it is non-nil on *every* incoming path (contrast the union-join
// mask analyzers). Facts are established by `!= nil` guards (with &&/||
// and ! handled by branch refinement), by assignment from a concrete
// (non-interface) value — a concrete-to-interface conversion never yields
// the nil interface — and by assignment from Sink.Evaluator, whose result
// is non-nil by contract (Metrics.Evaluator always returns a handle; a
// disabled sink is expressed by the Sink itself being nil, not by a nil
// EvalSink from a live Sink).
var SinkNil = &Analyzer{
	Name: "sinknil",
	Doc: "flag method calls on obs.Sink/obs.EvalSink values that may be nil " +
		"(the contract makes nil mean disabled; call sites must check)",
	Run: runSinkNil,
}

const obsPkgPath = "tempagg/internal/obs"

// nonnilFact is the set of receiver keys proven non-nil on every path so
// far. Absent key = possibly nil.
type nonnilFact map[string]bool

func (f nonnilFact) clone() nonnilFact {
	out := make(nonnilFact, len(f))
	for k := range f {
		out[k] = true
	}
	return out
}

type sinkFlow struct {
	pass *Pass
}

func runSinkNil(pass *Pass) error {
	funcBodies(pass.Files, func(body *ast.BlockStmt) {
		g := BuildCFG(body)
		fl := &sinkFlow{pass: pass}
		in := Forward[nonnilFact](g, fl)
		WalkFacts[nonnilFact](g, fl, in, func(n ast.Node, f nonnilFact) {
			fl.checkNode(n, f)
		})
	})
	return nil
}

func (fl *sinkFlow) Entry() nonnilFact { return nonnilFact{} }

// Join intersects: non-nil must hold on both incoming paths.
func (fl *sinkFlow) Join(a, b nonnilFact) nonnilFact {
	out := nonnilFact{}
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

func (fl *sinkFlow) Equal(a, b nonnilFact) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func (fl *sinkFlow) Transfer(n ast.Node, f nonnilFact) nonnilFact {
	switch n := n.(type) {
	case *ast.AssignStmt:
		if len(n.Lhs) == len(n.Rhs) {
			out := f.clone()
			for i := range n.Lhs {
				fl.assign(out, n.Lhs[i], n.Rhs[i], f)
			}
			return out
		}
		// Tuple assignment (x, ok := m[k] etc.): targets become unknown.
		out := f.clone()
		for _, lhs := range n.Lhs {
			if key, ok := receiverKey(fl.pass, lhs); ok {
				delete(out, key)
			}
		}
		return out
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			return f
		}
		out := f.clone()
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				if i < len(vs.Values) && len(vs.Values) == len(vs.Names) {
					fl.assign(out, name, vs.Values[i], f)
				}
				// var s Sink: zero value is nil; the key is absent already.
			}
		}
		return out
	}
	return f
}

// assign updates out for one lhs = rhs pair, reading facts from in.
func (fl *sinkFlow) assign(out nonnilFact, lhs, rhs ast.Expr, in nonnilFact) {
	key, ok := receiverKey(fl.pass, lhs)
	if !ok {
		return
	}
	if fl.nonNilExpr(rhs, in) {
		out[key] = true
	} else {
		delete(out, key)
	}
}

// nonNilExpr reports whether e is proven non-nil under fact f:
//   - a key already proven non-nil,
//   - any expression of concrete (non-interface) type — assigning or
//     converting a concrete value to an interface never yields the nil
//     interface, even if the value is a nil pointer,
//   - a Sink.Evaluator call result (non-nil by contract),
//   - address-of or composite-literal expressions.
func (fl *sinkFlow) nonNilExpr(e ast.Expr, f nonnilFact) bool {
	e = ast.Unparen(e)
	if tv, ok := fl.pass.TypesInfo.Types[e]; ok {
		if tv.IsNil() {
			return false
		}
		if t := tv.Type; t != nil && !types.IsInterface(t) {
			return true
		}
	}
	switch e := e.(type) {
	case *ast.Ident, *ast.SelectorExpr:
		if key, ok := receiverKey(fl.pass, e); ok {
			return f[key]
		}
	case *ast.UnaryExpr:
		return e.Op == token.AND
	case *ast.CompositeLit:
		return true
	case *ast.CallExpr:
		return fl.isEvaluatorCall(e)
	}
	return false
}

// isEvaluatorCall reports whether call is Sink.Evaluator on the obs.Sink
// interface (whose result the contract makes non-nil).
func (fl *sinkFlow) isEvaluatorCall(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Evaluator" {
		return false
	}
	return sinkKind(fl.pass.TypesInfo.TypeOf(sel.X)) == "Sink"
}

// Branch refines nil-comparison conditions along labeled edges.
func (fl *sinkFlow) Branch(cond ast.Expr, taken bool, f nonnilFact) nonnilFact {
	return fl.refine(cond, taken, f)
}

func (fl *sinkFlow) refine(cond ast.Expr, taken bool, f nonnilFact) nonnilFact {
	cond = ast.Unparen(cond)
	switch c := cond.(type) {
	case *ast.UnaryExpr:
		if c.Op == token.NOT {
			return fl.refine(c.X, !taken, f)
		}
	case *ast.BinaryExpr:
		switch {
		case c.Op == token.LAND && taken:
			// Both conjuncts hold on the true edge.
			return fl.refine(c.Y, true, fl.refine(c.X, true, f))
		case c.Op == token.LOR && !taken:
			// Both disjuncts failed on the false edge.
			return fl.refine(c.Y, false, fl.refine(c.X, false, f))
		case (c.Op == token.NEQ && taken) || (c.Op == token.EQL && !taken):
			if e := nilComparand(fl.pass, c); e != nil {
				if key, ok := receiverKey(fl.pass, e); ok {
					out := f.clone()
					out[key] = true
					return out
				}
			}
		}
	}
	return f
}

// nilComparand returns the non-nil-literal side of an x-vs-nil comparison,
// or nil if c is not such a comparison.
func nilComparand(pass *Pass, c *ast.BinaryExpr) ast.Expr {
	if isNilLiteral(pass, c.Y) {
		return ast.Unparen(c.X)
	}
	if isNilLiteral(pass, c.X) {
		return ast.Unparen(c.Y)
	}
	return nil
}

func isNilLiteral(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[ast.Unparen(e)]
	return ok && tv.IsNil()
}

// checkNode reports unguarded sink method calls in one CFG node, honoring
// short-circuit guards inside the expression (`s != nil && s.Flush() ...`).
func (fl *sinkFlow) checkNode(n ast.Node, f nonnilFact) {
	if _, ok := n.(*ImplicitReturn); ok {
		return // synthetic node; not inspectable
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false // separate flow
		case *ast.BinaryExpr:
			if m.Op == token.LAND || m.Op == token.LOR {
				fl.checkNode(m.X, f)
				fl.checkNode(m.Y, fl.refine(m.X, m.Op == token.LAND, f))
				return false
			}
		case *ast.CallExpr:
			fl.checkCall(m, f)
		}
		return true
	})
}

func (fl *sinkFlow) checkCall(call *ast.CallExpr, f nonnilFact) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	kind := sinkKind(fl.pass.TypesInfo.TypeOf(sel.X))
	if kind == "" {
		return
	}
	if s, ok := fl.pass.TypesInfo.Selections[sel]; !ok || s.Kind() != types.MethodVal {
		return // qualified identifier or field access, not a method call
	}
	if fl.nonNilExpr(sel.X, f) {
		return
	}
	fl.pass.Reportf(call.Pos(),
		"%s called on possibly-nil obs.%s %s; nil means instrumentation is "+
			"disabled — guard the call with a nil check",
		sel.Sel.Name, kind, exprString(sel.X))
}

// sinkKind classifies t as the obs.Sink or obs.EvalSink interface.
func sinkKind(t types.Type) string {
	switch {
	case isNamed(t, obsPkgPath, "Sink"):
		return "Sink"
	case isNamed(t, obsPkgPath, "EvalSink"):
		return "EvalSink"
	}
	return ""
}
