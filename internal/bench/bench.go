// Package bench regenerates the tables and figures of the paper's empirical
// comparison (Kline & Snodgrass §6). Each experiment returns a Figure — a
// set of named series over relation sizes — that the harness prints in the
// same shape as the paper's log-log plots: one row per series, one column
// per relation size (1K…64K tuples, doubling).
//
// Absolute numbers differ from the paper's 1995 SPARCstation, but the
// shapes — which algorithm wins, by what factor, and where behaviour
// crosses over — are the reproduction target.
package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"tempagg/internal/aggregate"
	"tempagg/internal/core"
	"tempagg/internal/obs"
	"tempagg/internal/relation"
	"tempagg/internal/workload"
)

// Point is one measurement: the metric value at a relation size. Stages,
// when present, is a per-stage wall-time breakdown (radix-sort, scan,
// emit, ...) in seconds from one extra traced run outside the timed
// measurements — old baseline reports without the field still parse, and
// old binaries ignore it.
type Point struct {
	Size   int                `json:"size"`
	Value  float64            `json:"value"`
	Stages map[string]float64 `json:"stages,omitempty"`
}

// Series is one curve of a figure.
type Series struct {
	Name   string  `json:"name"`
	Points []Point `json:"points"`
}

// Figure is a reproduced table or figure.
type Figure struct {
	// ID names the paper artifact, e.g. "figure-6".
	ID string `json:"id"`
	// Title describes the experiment.
	Title string `json:"title"`
	// Metric labels the values ("seconds", "bytes").
	Metric string `json:"metric"`
	// Series are the curves.
	Series []Series `json:"series"`
}

// String renders the figure as an aligned table, sizes across the top.
func (f Figure) String() string {
	var sizes []int
	seen := map[int]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			if !seen[p.Size] {
				seen[p.Size] = true
				sizes = append(sizes, p.Size)
			}
		}
	}
	sort.Ints(sizes)

	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s (%s)\n", f.ID, f.Title, f.Metric)
	width := 0
	for _, s := range f.Series {
		if len(s.Name) > width {
			width = len(s.Name)
		}
	}
	fmt.Fprintf(&b, "%-*s", width, "")
	for _, n := range sizes {
		fmt.Fprintf(&b, " %12s", sizeLabel(n))
	}
	b.WriteByte('\n')
	for _, s := range f.Series {
		fmt.Fprintf(&b, "%-*s", width, s.Name)
		bySize := map[int]float64{}
		has := map[int]bool{}
		for _, p := range s.Points {
			bySize[p.Size] = p.Value
			has[p.Size] = true
		}
		for _, n := range sizes {
			if !has[n] {
				fmt.Fprintf(&b, " %12s", "-")
				continue
			}
			fmt.Fprintf(&b, " %12s", formatValue(bySize[n], f.Metric))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the figure as comma-separated values with one row per
// (series, size) point: figure,series,size,metric,value.
func (f Figure) CSV() string {
	var b strings.Builder
	b.WriteString("figure,series,size,metric,value\n")
	for _, s := range f.Series {
		for _, p := range s.Points {
			fmt.Fprintf(&b, "%s,%q,%d,%s,%g\n", f.ID, s.Name, p.Size, f.Metric, p.Value)
		}
	}
	return b.String()
}

func sizeLabel(n int) string {
	if n >= 1024 && n%1024 == 0 {
		return fmt.Sprintf("%dK", n/1024)
	}
	return fmt.Sprintf("%d", n)
}

func formatValue(v float64, metric string) string {
	switch metric {
	case "bytes":
		return formatBytes(v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

func formatBytes(v float64) string {
	switch {
	case v >= 1<<20:
		return fmt.Sprintf("%.3gM", v/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.3gK", v/(1<<10))
	}
	return fmt.Sprintf("%.0f", v)
}

// Options bounds an experiment run.
type Options struct {
	// Sizes are the relation sizes to sweep; defaults to Table 3's 1K–64K.
	Sizes []int
	// Seeds are the random seeds; the reported value is the median, echoing
	// the paper's repeated runs (§6). Defaults to three seeds.
	Seeds []int64
	// Agg is the aggregate; the paper reports COUNT since the choice "did
	// not materially alter the results" (§6).
	Agg aggregate.Kind
	// Sink, when non-nil, receives every evaluation's §6 counters — the
	// same path production queries publish through, so a benchmark run can
	// be scraped like a live daemon.
	Sink obs.Sink
}

func (o Options) withDefaults() Options {
	if len(o.Sizes) == 0 {
		o.Sizes = workload.Table3Sizes()
	}
	if len(o.Seeds) == 0 {
		o.Seeds = []int64{101, 202, 303}
	}
	return o
}

// measurement is one timed evaluation.
type measurement struct {
	seconds   float64
	peakBytes int64
}

// runOnce times one evaluation of spec over rel, publishing counters to
// the sink when one is attached. The timed run is never traced: span
// bookkeeping (CPU-time and allocation reads) would inflate the medians
// the regression gate compares across PRs.
func runOnce(spec core.Spec, f aggregate.Func, rel *relation.Relation, sink obs.Sink) (measurement, error) {
	start := time.Now()
	res, stats, err := core.RunObserved(spec, f, rel.Tuples, sink)
	if err != nil {
		return measurement{}, err
	}
	elapsed := time.Since(start).Seconds()
	if len(res.Rows) == 0 {
		return measurement{}, fmt.Errorf("bench: empty result")
	}
	return measurement{seconds: elapsed, peakBytes: stats.PeakBytes()}, nil
}

// stageProfile runs one extra traced evaluation, outside any timing, and
// returns wall seconds per evaluator stage (radix-sort, scan, emit, ...).
// Evaluators that emit no spans yield nil. The breakdown is a separate
// run's timings — indicative of where the median's time goes, not a
// decomposition of the median itself.
func stageProfile(spec core.Spec, f aggregate.Func, rel *relation.Relation) map[string]float64 {
	tr := obs.NewQueryTrace("bench")
	if _, _, err := core.RunTraced(spec, f, rel.Tuples, nil, tr.Context()); err != nil {
		return nil
	}
	var stages map[string]float64
	for _, sp := range tr.SpanTree() {
		if stages == nil {
			stages = map[string]float64{}
		}
		// Sum repeats: a sweep radix-sorts both event columns.
		stages[sp.Name] += sp.Duration.Seconds()
	}
	return stages
}

// median of a non-empty measurement slice, by seconds and bytes separately.
func median(ms []measurement) measurement {
	secs := make([]float64, len(ms))
	bytes := make([]float64, len(ms))
	for i, m := range ms {
		secs[i] = m.seconds
		bytes[i] = float64(m.peakBytes)
	}
	sort.Float64s(secs)
	sort.Float64s(bytes)
	mid := len(ms) / 2
	return measurement{seconds: secs[mid], peakBytes: int64(bytes[mid])}
}

// sweep measures spec over relations generated by gen for every size/seed,
// returning one point per size (median across seeds) for the given metric
// extractor.
func sweep(opts Options, spec core.Spec, gen func(size int, seed int64) (*relation.Relation, error),
	metric func(measurement) float64) (Series, error) {
	f := aggregate.For(opts.Agg)
	var points []Point
	for _, size := range opts.Sizes {
		var ms []measurement
		var lastRel *relation.Relation
		for _, seed := range opts.Seeds {
			rel, err := gen(size, seed)
			if err != nil {
				return Series{}, err
			}
			m, err := runOnce(spec, f, rel, opts.Sink)
			if err != nil {
				return Series{}, fmt.Errorf("bench: size %d seed %d: %w", size, seed, err)
			}
			ms = append(ms, m)
			lastRel = rel
		}
		p := Point{Size: size, Value: metric(median(ms))}
		if metric(measurement{seconds: 1}) == 1 {
			// Only timing figures carry the stage breakdown; attaching
			// seconds to a bytes point would be nonsense.
			p.Stages = stageProfile(spec, f, lastRel)
		}
		points = append(points, p)
	}
	return Series{Points: points}, nil
}

func timeMetric(m measurement) float64  { return m.seconds }
func spaceMetric(m measurement) float64 { return float64(m.peakBytes) }
