package query

import (
	"fmt"

	"tempagg/internal/core"
	"tempagg/internal/obs"
)

// RelationInfo is the metadata the optimizer consults (§6.3): size,
// declared ordering properties, and the memory available for evaluation
// structures.
type RelationInfo struct {
	// Tuples is the relation cardinality.
	Tuples int
	// Sorted declares the relation totally ordered by time (e.g. from the
	// storage header's sorted flag).
	Sorted bool
	// KBound, when non-negative, declares the relation k-ordered with this
	// bound — the database administrator's "retroactively bounded"
	// declaration (§6.3). Negative means unknown.
	KBound int
	// SampledK, when positive, is a plan-time k-orderedness estimate
	// obtained by sampling (order.EstimateKOrderedness) rather than declared
	// by the administrator. The cost-based planner may gamble on it to skip
	// the sort: the k-ordered tree rejects its input if the estimate proves
	// low, and the executor then sorts and retries. Zero means not sampled.
	SampledK int
	// MemoryBudget bounds evaluation-structure memory in bytes; 0 means
	// unlimited.
	MemoryBudget int64
	// ExpectedConstantIntervals, when positive, hints how many constant
	// intervals the result will have (few when the granularity is coarse or
	// timestamps cluster); a small value favours the linked list (§6.3).
	ExpectedConstantIntervals int
	// Cost, when enabled, switches the planner to cost-based choice among
	// the §6.3 strategies (see CostModel); otherwise the qualitative rules
	// below apply.
	Cost CostModel
	// Index, when non-nil, is a resident materialized interval index over
	// the relation (core.IntervalIndex, DESIGN.md S37). The planner then
	// prices an index-lookup alternative that answers eligible queries in
	// O(k + log n) partial merges with no relation scan at all.
	Index *core.IntervalIndex
}

// Plan is the optimizer's decision for an instant-grouped query.
type Plan struct {
	// SortFirst asks the executor to sort the relation by time before
	// evaluation — the paper's headline strategy pairs this with the
	// k-ordered tree at k=1 (§7).
	SortFirst bool
	// Tuma selects the two-pass baseline instead of an Evaluator (only via
	// an explicit USING TUMA).
	Tuma bool
	// Snapshot marks an AT-instant query: a direct aggregation pass with no
	// constant-interval structure at all.
	Snapshot bool
	// Partitioned selects the limited-main-memory partitioned evaluation
	// (§5.1/§7): the timeline is cut into Partitions uniform regions and each
	// is evaluated by its own aggregation tree, with results consumed from
	// the streaming ordered merge as shards finish. Only via an explicit
	// USING PARTITIONED [K=n].
	Partitioned bool
	// Partitions is the region count for Partitioned plans.
	Partitions int
	// Live marks a snapshot read against a shared LiveEvaluator: no
	// evaluator is constructed, the epoch's memoized segment results are
	// merged instead (SELECT ... LIVE).
	Live bool
	// SampledK marks a plan whose k-ordered tree trusts a sampled (not
	// declared) disorder bound. The executor treats evaluator rejection as
	// an estimation miss — it sorts the relation and retries with k=1 —
	// instead of failing the query.
	SampledK bool
	// UseIndex marks a plan served from the materialized interval index:
	// no evaluator runs, the answer is assembled from O(log n) node
	// partials per emitted row (S37). Chosen automatically when the
	// relation has a resident index and the query is index-eligible
	// (IndexEligible), or forced with USING INDEX.
	UseIndex bool
	// Cached marks a result served verbatim from the catalog's result
	// cache: nothing was planned or evaluated, the rows were copied out of
	// the LRU under a (relation, version, kind, window) key.
	Cached bool
	// SharedSweep marks a sweep plan whose several aggregates run as one
	// core.SweepGroup pass — the relation is ingested, sorted, and scanned
	// once for the whole select list instead of once per aggregate. Set only
	// when every aggregate is decomposable and none is DISTINCT (a
	// deduplicated input would differ per aggregate).
	SharedSweep bool
	// Spec is the evaluator to run (ignored when Tuma or Partitioned is set).
	Spec core.Spec
	// Reason explains the choice, for EXPLAIN-style output.
	Reason string
	// Alternatives lists every strategy the planner priced, chosen one
	// marked, for EXPLAIN and the trace's plan_costs record. Under
	// qualitative (non-cost-based) planning the prices come from the
	// default display model; the ranking is then informational only and may
	// disagree with the qualitative choice.
	Alternatives []obs.PlanCost
	// Prices is the cost model the Alternatives were priced with — the
	// user's model when cost-based planning is on, the default display
	// model otherwise. EXPLAIN ANALYZE reprices it with measured counters
	// for the estimated-vs-actual delta.
	Prices CostModel
}

// Algorithm names the plan's execution strategy for traces and EXPLAIN.
func (p Plan) Algorithm() string {
	alg := p.Spec.Algorithm.String()
	switch {
	case p.Cached:
		alg = "result-cache"
	case p.UseIndex:
		alg = core.IndexLookupAlg
	case p.Live:
		alg = "live-snapshot"
	case p.Tuma:
		alg = "tuma-two-pass"
	case p.Snapshot:
		alg = "snapshot-scan"
	case p.Partitioned:
		alg = fmt.Sprintf("partitioned(n=%d)", p.Partitions)
	case p.Spec.Algorithm == core.KOrderedTree:
		alg = fmt.Sprintf("%s(k=%d)", alg, p.Spec.K)
	}
	if p.SortFirst {
		alg = "sort + " + alg
	}
	return alg
}

// String renders the plan.
func (p Plan) String() string {
	alg := p.Spec.Algorithm.String()
	if p.Cached {
		return fmt.Sprintf("result-cache — %s", p.Reason)
	}
	if p.UseIndex {
		return fmt.Sprintf("%s — %s", core.IndexLookupAlg, p.Reason)
	}
	if p.Live {
		return fmt.Sprintf("live-snapshot — %s", p.Reason)
	}
	if p.Tuma {
		alg = "tuma-two-pass"
	}
	if p.Snapshot {
		alg = "snapshot-scan"
	}
	if p.Partitioned {
		alg = fmt.Sprintf("partitioned(n=%d)", p.Partitions)
	}
	if p.Spec.Algorithm == core.KOrderedTree && !p.Tuma && !p.Partitioned {
		alg = fmt.Sprintf("%s(k=%d)", alg, p.Spec.K)
	}
	if p.SharedSweep {
		alg += " (shared pass)"
	}
	if p.SortFirst {
		alg = "sort + " + alg
	}
	return fmt.Sprintf("%s — %s", alg, p.Reason)
}

// resolveUsing maps a USING clause to a plan.
func resolveUsing(q *Query) (Plan, error) {
	switch q.Using {
	case "LIST", "LINKEDLIST":
		return Plan{Spec: core.Spec{Algorithm: core.LinkedList}}, nil
	case "TREE", "AGGTREE":
		return Plan{Spec: core.Spec{Algorithm: core.AggregationTree}}, nil
	case "BTREE", "BALANCED":
		return Plan{Spec: core.Spec{Algorithm: core.BalancedTree}}, nil
	case "KTREE":
		k := 1
		if q.HasUsingK {
			k = q.UsingK
		}
		if k < 0 {
			return Plan{}, fmt.Errorf("query: USING KTREE requires K >= 0, got %d", k)
		}
		return Plan{Spec: core.Spec{Algorithm: core.KOrderedTree, K: k}}, nil
	case "PARTITIONED":
		// The K argument is reused as the partition count; the evaluator is
		// always the aggregation tree, one per region.
		n := 8
		if q.HasUsingK {
			n = q.UsingK
		}
		if n < 1 {
			return Plan{}, fmt.Errorf("query: USING PARTITIONED requires K >= 1 partitions, got %d", n)
		}
		return Plan{
			Partitioned: true,
			Partitions:  n,
			Spec:        core.Spec{Algorithm: core.AggregationTree},
		}, nil
	case "SWEEP":
		// The K argument is reused as the worker count for the parallel
		// scan: 0 (or omitted) resolves to GOMAXPROCS with a serial
		// fallback on small inputs, 1 forces the serial path.
		w := 0
		if q.HasUsingK {
			w = q.UsingK
		}
		if w < 0 {
			return Plan{}, fmt.Errorf("query: USING SWEEP requires K >= 0 workers, got %d", w)
		}
		return Plan{
			SharedSweep: sharedSweepEligible(q),
			Spec:        core.Spec{Algorithm: core.SweepEval, Parallel: w},
		}, nil
	case "TUMA":
		return Plan{Tuma: true}, nil
	case "INDEX":
		if !IndexEligible(q) {
			return Plan{}, fmt.Errorf("query: USING INDEX serves only plain range-restricted aggregates (no WHERE, GROUP BY, DISTINCT, or span grouping)")
		}
		return Plan{UseIndex: true}, nil
	}
	return Plan{}, fmt.Errorf("query: unknown algorithm %q in USING clause", q.Using)
}

// PlanQuery chooses the evaluation strategy for an instant-grouped query,
// implementing the optimizer reasoning of §6.3:
//
//   - An explicit USING clause always wins.
//   - With very few expected constant intervals the linked list is adequate
//     and cheapest in space.
//   - A sorted relation takes the k-ordered tree with k=1.
//   - A relation declared retroactively bounded (k-ordered) takes the
//     k-ordered tree with that k, with no sorting required.
//   - An unsorted, unbounded relation whose aggregates are all decomposable
//     (COUNT/SUM/AVG) takes the columnar event sweep: two cache-friendly
//     passes and a few radix scatters instead of n·log n pointer-chasing
//     inserts, at a slightly larger working set than the tree.
//   - Otherwise the aggregation tree is best — unless its memory need
//     exceeds the budget, in which case the executor sorts first and runs
//     the k-ordered tree with k=1 (memory is then dearer than the sort).
func PlanQuery(q *Query, info RelationInfo) (Plan, error) {
	if q.Using != "" {
		plan, err := resolveUsing(q)
		if err != nil {
			return Plan{}, err
		}
		plan.Reason = "forced by USING clause"
		// A forced plan still shows the priced field so EXPLAIN can compare
		// the user's choice against what the optimizer would have ranked.
		plan.Alternatives, plan.Prices = priceAlternatives(q, info, info.Cost, plan)
		return plan, nil
	}
	if info.Cost.Enabled() {
		return PlanQueryCosted(q, info, info.Cost)
	}
	plan, err := planQualitative(q, info)
	if err != nil {
		return Plan{}, err
	}
	plan.Alternatives, plan.Prices = priceAlternatives(q, info, CostModel{}, plan)
	return plan, nil
}

// IndexEligible reports whether q's shape can be served from a
// materialized interval index: an instant-grouped aggregate over the whole
// relation — optionally range-restricted by VALID OVERLAPS or AT — with no
// WHERE filter, attribute grouping, DISTINCT, or live read. The index
// holds partials over every tuple, so any predicate that drops tuples
// disqualifies it.
func IndexEligible(q *Query) bool {
	if len(q.Where) > 0 || q.GroupAttr != nil || q.Live || q.Temporal == BySpan {
		return false
	}
	for _, a := range q.Aggs {
		if a.Distinct {
			return false
		}
	}
	return len(q.Aggs) > 0
}

// planQualitative applies the qualitative §6.3 rules (no cost model).
func planQualitative(q *Query, info RelationInfo) (Plan, error) {
	if info.Index != nil && IndexEligible(q) {
		// A resident index beats every scan-based strategy: the answer is
		// O(k + log n) partial merges, no relation pass at all (S37).
		return Plan{
			UseIndex: true,
			Reason:   "resident interval index: O(k + log n) partial merges, no scan (S37)",
		}, nil
	}
	if n := info.ExpectedConstantIntervals; n > 0 && n <= 64 {
		return Plan{
			Spec:   core.Spec{Algorithm: core.LinkedList},
			Reason: fmt.Sprintf("only ~%d constant intervals expected; the linked list is adequate (§6.3)", n),
		}, nil
	}
	if info.Sorted {
		return Plan{
			Spec:   core.Spec{Algorithm: core.KOrderedTree, K: 1},
			Reason: "relation is sorted: k-ordered tree with k=1 (§7)",
		}, nil
	}
	if info.KBound >= 0 {
		return Plan{
			Spec:   core.Spec{Algorithm: core.KOrderedTree, K: info.KBound},
			Reason: fmt.Sprintf("relation declared retroactively bounded (k=%d): k-ordered tree without sorting (§6.3)", info.KBound),
		}, nil
	}
	// Unsorted, unbounded. The sweep's working set — event columns, radix
	// scratch, emitted rows — is ~6 nodes per tuple, a constant factor above
	// the aggregation tree's 4, so it needs a slightly roomier budget.
	sweepEst := int64(6*info.Tuples+1) * core.NodeBytes
	if decomposableAggs(q) && (info.MemoryBudget == 0 || sweepEst <= info.MemoryBudget) {
		return Plan{
			SharedSweep: sharedSweepEligible(q),
			Spec:        core.Spec{Algorithm: core.SweepEval},
			Reason:      fmt.Sprintf("unsorted relation, decomposable aggregates: columnar event sweep (≤%d B)", sweepEst),
		}, nil
	}
	// Estimate the aggregation tree's memory: each tuple adds at most 4
	// nodes (two leaf splits), 16 bytes each.
	est := int64(4*info.Tuples+1) * core.NodeBytes
	if info.MemoryBudget == 0 || est <= info.MemoryBudget {
		return Plan{
			Spec:   core.Spec{Algorithm: core.AggregationTree},
			Reason: fmt.Sprintf("unsorted relation, memory is plentiful (≤%d B): aggregation tree (§6.3)", est),
		}, nil
	}
	return Plan{
		SortFirst: true,
		Spec:      core.Spec{Algorithm: core.KOrderedTree, K: 1},
		Reason: fmt.Sprintf("aggregation tree would need ~%d B > budget %d B: sort then k-ordered tree with k=1 (§6.3)",
			est, info.MemoryBudget),
	}, nil
}

// decomposableAggs reports whether every aggregate in the select list is
// maintainable from a running (count, sum) pair — the precondition for the
// columnar event sweep. The plan is chosen once per query and shared by all
// its aggregates, so one MIN/MAX in the list disqualifies the sweep for the
// whole query.
func decomposableAggs(q *Query) bool {
	for _, a := range q.Aggs {
		if !a.Kind.Decomposable() {
			return false
		}
	}
	return len(q.Aggs) > 0
}

// sharedSweepEligible reports whether a sweep plan for q should run its
// select list as one shared core.SweepGroup pass: at least two aggregates,
// all decomposable, none DISTINCT (deduplication changes the input per
// aggregate, so a shared event buffer cannot serve it).
func sharedSweepEligible(q *Query) bool {
	if len(q.Aggs) < 2 {
		return false
	}
	for _, a := range q.Aggs {
		if !a.Kind.Decomposable() || a.Distinct {
			return false
		}
	}
	return true
}
