package query_test

import (
	"fmt"

	"tempagg/internal/query"
	"tempagg/internal/relation"
)

// ExampleRun executes the paper's example query through the full
// lexer → parser → planner → executor pipeline.
func ExampleRun() {
	qr, err := query.Run("SELECT COUNT(Name) FROM Employed",
		relation.Employed(), nil)
	if err != nil {
		panic(err)
	}
	res := qr.Groups[0].Result
	for i, row := range res.Rows {
		fmt.Printf("%s %s\n", res.Value(i), row.Interval)
	}
	// Output:
	// 0 [0,6]
	// 1 [7,7]
	// 2 [8,12]
	// 1 [13,17]
	// 3 [18,20]
	// 2 [21,21]
	// 1 [22,∞]
}

// ExamplePlanQuery shows the §6.3 optimizer choosing strategies from
// relation metadata.
func ExamplePlanQuery() {
	q, err := query.Parse("SELECT COUNT(Name) FROM R")
	if err != nil {
		panic(err)
	}
	for _, info := range []query.RelationInfo{
		{Tuples: 100000, Sorted: true, KBound: -1},
		{Tuples: 100000, KBound: 40},
		{Tuples: 100000, KBound: -1},
		{Tuples: 100000, KBound: -1, MemoryBudget: 4096},
	} {
		plan, err := query.PlanQuery(q, info)
		if err != nil {
			panic(err)
		}
		fmt.Println(plan.Spec.Algorithm, plan.SortFirst)
	}
	// Output:
	// k-ordered-tree false
	// k-ordered-tree false
	// sweep false
	// k-ordered-tree true
}

// ExampleRun_groupBy partitions by the Name attribute on top of temporal
// grouping.
func ExampleRun_groupBy() {
	qr, err := query.Run(
		"SELECT Name, MAX(Salary) FROM Employed GROUP BY Name",
		relation.Employed(), nil)
	if err != nil {
		panic(err)
	}
	for _, g := range qr.Groups {
		v, _ := g.Result.At(20)
		fmt.Printf("%s: %s\n", g.Key, v)
	}
	// Output:
	// Karen: 45
	// Nathan: 37
	// Rich: 40
}
