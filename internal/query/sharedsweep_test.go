package query

import (
	"reflect"
	"strings"
	"testing"

	"tempagg/internal/core"
	"tempagg/internal/relation"
	"tempagg/internal/workload"
)

func unsortedRel(t *testing.T, n int, seed int64) *relation.Relation {
	t.Helper()
	rel, err := workload.Generate(workload.Config{Tuples: n, LongLivedPct: 30, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	rel.Name = "R"
	return rel
}

func TestUsingSweepParallelK(t *testing.T) {
	q := mustParse(t, "SELECT COUNT(Name) FROM R USING SWEEP 4")
	plan, err := PlanQuery(q, RelationInfo{Tuples: 10, KBound: -1})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Spec.Algorithm != core.SweepEval || plan.Spec.Parallel != 4 {
		t.Fatalf("USING SWEEP 4 planned %v parallel=%d", plan.Spec.Algorithm, plan.Spec.Parallel)
	}
	if _, err := resolveUsing(&Query{Using: "SWEEP", HasUsingK: true, UsingK: -1}); err == nil {
		t.Fatal("USING SWEEP -1 must be rejected")
	}
}

func TestSharedSweepPlanFlag(t *testing.T) {
	info := RelationInfo{Tuples: 100, KBound: -1} // unsorted, unbounded: auto-sweep
	for _, tc := range []struct {
		sql  string
		want bool
	}{
		{"SELECT COUNT(Name), SUM(Salary) FROM R", true},
		{"SELECT COUNT(Name), SUM(Salary), AVG(Salary) FROM R USING SWEEP", true},
		{"SELECT COUNT(Name) FROM R", false},                                   // single aggregate: nothing to share
		{"SELECT COUNT(Name), MIN(Salary) FROM R USING SWEEP", false},          // MIN cannot share the delta scan
		{"SELECT COUNT(DISTINCT Name), SUM(Salary) FROM R USING SWEEP", false}, // DISTINCT changes the input
	} {
		q := mustParse(t, tc.sql)
		plan, err := PlanQuery(q, info)
		if err != nil {
			t.Fatal(err)
		}
		if plan.SharedSweep != tc.want {
			t.Errorf("%q: SharedSweep = %v, want %v (plan %v)", tc.sql, plan.SharedSweep, tc.want, plan)
		}
	}
	q := mustParse(t, "SELECT COUNT(Name), SUM(Salary) FROM R")
	plan, err := PlanQuery(q, RelationInfo{Tuples: 100, Sorted: true, KBound: -1})
	if err != nil {
		t.Fatal(err)
	}
	if plan.SharedSweep {
		t.Error("a sorted relation plans the k-ordered tree; SharedSweep must stay unset")
	}
}

// TestExecuteSharedSweepMatchesPerAggregate: a multi-aggregate sweep query
// answered by the shared pass must return, for every aggregate, exactly the
// rows the same aggregate gets from its own single-aggregate query.
func TestExecuteSharedSweepMatchesPerAggregate(t *testing.T) {
	rel := unsortedRel(t, 700, 91)
	for _, suffix := range []string{
		"",
		" WHERE Salary > 40000",
		" VALID OVERLAPS 50 900",
	} {
		qr := execute(t, "SELECT COUNT(Name), SUM(Salary), AVG(Salary) FROM R"+suffix, rel)
		if !qr.Plan.SharedSweep {
			t.Fatalf("suffix %q: plan %v did not take the shared pass", suffix, qr.Plan)
		}
		if !strings.Contains(qr.Plan.String(), "shared pass") {
			t.Errorf("plan string %q does not mention the shared pass", qr.Plan.String())
		}
		g := qr.Groups[0]
		for ai, agg := range []string{"COUNT(Name)", "SUM(Salary)", "AVG(Salary)"} {
			want := execute(t, "SELECT "+agg+" FROM R"+suffix+" USING SWEEP 1", rel)
			if !reflect.DeepEqual(g.Results[ai].Rows, want.Groups[0].Result.Rows) {
				t.Errorf("suffix %q aggregate %s: shared rows differ from dedicated query", suffix, agg)
			}
		}
		// The pass ingests each tuple once for all three aggregates.
		total := 0
		for _, s := range g.AllStats {
			total += s.Tuples
		}
		if total != g.AllStats[0].Tuples {
			t.Errorf("suffix %q: stats spread across aggregates (%v), want all on the first", suffix, g.AllStats)
		}
	}
}

// TestExecuteSharedSweepGroupBy: attribute grouping runs one shared pass per
// group and must match per-aggregate execution group for group.
func TestExecuteSharedSweepGroupBy(t *testing.T) {
	rel := unsortedRel(t, 400, 92)
	qr := execute(t, "SELECT Name, COUNT(Name), SUM(Salary) FROM R GROUP BY Name", rel)
	if !qr.Plan.SharedSweep {
		t.Fatalf("plan %v did not take the shared pass", qr.Plan)
	}
	count := execute(t, "SELECT Name, COUNT(Name) FROM R GROUP BY Name USING SWEEP", rel)
	sum := execute(t, "SELECT Name, SUM(Salary) FROM R GROUP BY Name USING SWEEP", rel)
	if len(qr.Groups) != len(count.Groups) {
		t.Fatalf("%d groups, want %d", len(qr.Groups), len(count.Groups))
	}
	for i, g := range qr.Groups {
		if !reflect.DeepEqual(g.Results[0].Rows, count.Groups[i].Result.Rows) {
			t.Errorf("group %s: COUNT rows differ", g.Key)
		}
		if !reflect.DeepEqual(g.Results[1].Rows, sum.Groups[i].Result.Rows) {
			t.Errorf("group %s: SUM rows differ", g.Key)
		}
	}
}

// TestExecuteFileSharedSweepStream: the streaming executor's shared pass
// must match the in-memory one.
func TestExecuteFileSharedSweepStream(t *testing.T) {
	rel := unsortedRel(t, 500, 93)
	path := writeRelation(t, rel)
	sql := "SELECT COUNT(Name), AVG(Salary) FROM R USING SWEEP 2"
	got := runFile(t, sql, path)
	if !got.Plan.SharedSweep {
		t.Fatalf("streamed plan %v did not take the shared pass", got.Plan)
	}
	want := execute(t, sql, rel)
	if len(got.Groups) != 1 || len(got.Groups[0].Results) != 2 {
		t.Fatalf("unexpected group shape: %d groups", len(got.Groups))
	}
	for ai := range got.Groups[0].Results {
		if !reflect.DeepEqual(got.Groups[0].Results[ai].Rows, want.Groups[0].Results[ai].Rows) {
			t.Errorf("aggregate %d: streamed shared rows differ from in-memory", ai)
		}
	}
}

// TestExecuteBatchMatchesIndividual: whatever mix of eligible and
// ineligible queries a batch carries, every result must equal the one
// Execute returns for that query alone.
func TestExecuteBatchMatchesIndividual(t *testing.T) {
	rel := unsortedRel(t, 600, 94)
	sqls := []string{
		"SELECT COUNT(Name) FROM R",
		"SELECT SUM(Salary) FROM R WHERE Salary >= 30000",
		"SELECT AVG(Salary) FROM R VALID OVERLAPS 100 1200",
		"SELECT MIN(Salary) FROM R",                     // not decomposable: individual
		"SELECT Name, COUNT(Name) FROM R GROUP BY Name", // attribute grouping: individual
		"SELECT COUNT(DISTINCT Name) FROM R",            // DISTINCT: individual
		"SELECT COUNT(Name), SUM(Salary) FROM R",        // multi-aggregate member
	}
	qs := make([]*Query, len(sqls))
	for i, sql := range sqls {
		qs[i] = mustParse(t, sql)
	}
	results, err := ExecuteBatch(qs, rel, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(sqls) {
		t.Fatalf("%d results for %d queries", len(results), len(sqls))
	}
	for i, sql := range sqls {
		want := execute(t, sql, rel)
		got := results[i]
		if len(got.Groups) != len(want.Groups) {
			t.Fatalf("%q: %d groups, want %d", sql, len(got.Groups), len(want.Groups))
		}
		for gi := range got.Groups {
			for ai := range got.Groups[gi].Results {
				if !reflect.DeepEqual(got.Groups[gi].Results[ai].Rows, want.Groups[gi].Results[ai].Rows) {
					t.Errorf("%q group %d aggregate %d: batch rows differ from individual execution",
						sql, gi, ai)
				}
			}
		}
	}
	// The three shared members carry the batch annotation; the fallbacks the
	// individual plan.
	if !strings.Contains(results[0].Plan.Reason, "shared pass") {
		t.Errorf("eligible query lost the shared-pass annotation: %q", results[0].Plan.Reason)
	}
	if strings.Contains(results[3].Plan.Reason, "shared pass") {
		t.Errorf("MIN query must not claim the shared pass: %q", results[3].Plan.Reason)
	}
}

// TestExecuteBatchWaves: more registrations than MaxGroupQueries must split
// into waves, with results still correct per query.
func TestExecuteBatchWaves(t *testing.T) {
	rel := unsortedRel(t, 200, 95)
	var sqls []string
	for i := 0; i < core.MaxGroupQueries; i++ {
		sqls = append(sqls, "SELECT COUNT(Name), SUM(Salary) FROM R") // 2 registrations each
	}
	qs := make([]*Query, len(sqls))
	for i, sql := range sqls {
		qs[i] = mustParse(t, sql)
	}
	results, err := ExecuteBatch(qs, rel, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := execute(t, sqls[0], rel)
	for i, got := range results {
		for ai := range got.Groups[0].Results {
			if !reflect.DeepEqual(got.Groups[0].Results[ai].Rows, want.Groups[0].Results[ai].Rows) {
				t.Fatalf("query %d aggregate %d: wave result differs", i, ai)
			}
		}
	}
}

func TestExecuteBatchWrongRelation(t *testing.T) {
	rel := relation.Employed()
	if _, err := ExecuteBatch([]*Query{mustParse(t, "SELECT COUNT(Name) FROM Other")}, rel, nil); err == nil {
		t.Fatal("a batch naming a missing relation must fail")
	}
}
