// Fixture for the lockcopy analyzer: by-value copies of lock-holding
// structs are flagged; pointer use is clean.
package fixture

import (
	"sync"

	"tempagg/internal/core"
)

// guarded holds a mutex; a copy would fork the lock.
type guarded struct {
	mu sync.Mutex
	n  int
}

// wrapper holds a guarded value, so it transitively holds the lock.
type wrapper struct {
	g guarded
}

func (g *guarded) bump() { // ok: pointer receiver
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}

func (w wrapper) read() int { // want `receiver passes lock-holding type wrapper by value`
	return w.g.n
}

func byValueParam(g guarded) int { // want `parameter passes lock-holding type guarded by value`
	return g.n
}

func byValueResult(p *wrapper) wrapper { // want `result passes lock-holding type wrapper by value`
	return *p // want `return copies lock-holding type wrapper by value`
}

func derefCopy(p *guarded) {
	v := *p // want `assignment copies lock-holding type guarded by value`
	v.n++
}

func callCopy(p *guarded) {
	sink(*p) // want `call passes lock-holding type guarded by value`
}

func sink(g guarded) int { // want `parameter passes lock-holding type guarded by value`
	return g.n
}

func rangeCopies(list []guarded) {
	for i := range list { // ok: iterate by index
		list[i].bump()
	}
	for _, g := range list { // want `range value copies lock-holding type guarded by value`
		_ = g.n
	}
}

func pointersEverywhere(p *guarded, q *wrapper) (*guarded, *wrapper) {
	r := p   // ok: copying the pointer, not the lock
	s := q.g // want `assignment copies lock-holding type guarded by value`
	_ = s
	return r, q
}

// Evaluators carry core's noCopy marker: copying one forks live tree state.
func copiesEvaluator(t *core.Tree) {
	clone := *t // want `assignment copies lock-holding type core\.Tree by value`
	clone.Stats()
}

func evaluatorByPointer(t *core.Tree) core.Stats { // ok: pointer use
	return t.Stats()
}
