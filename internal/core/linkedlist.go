package core

import (
	"tempagg/internal/aggregate"
	"tempagg/internal/interval"
	"tempagg/internal/obs"
	"tempagg/internal/tuple"
)

// listNode is one constant interval in the linked-list algorithm. Unlike the
// tree nodes, a list node carries the *complete* aggregate state for its
// interval, not a partial contribution.
type listNode struct {
	iv    interval.Interval
	state aggregate.State
	next  *listNode
}

// List implements the paper's naive linked-list algorithm (§4.2): a
// temporary relation — here an ordered singly linked list — of constant
// intervals and their aggregate values, incrementally split and updated for
// each tuple. Every Add walks the list from the head, which is what makes
// the algorithm simple and slow; the paper measured it ~300× slower than the
// aggregation tree at 64K tuples, while noting it is adequate when the
// result has few constant intervals.
type List struct {
	noCopy noCopy

	f     aggregate.Func
	ar    arena[listNode]
	head  *listNode
	es    obs.EvalSink
	stats statsCell
}

var _ Evaluator = (*List)(nil)

// NewLinkedList returns a linked-list evaluator for the aggregate f. The
// list starts as the single empty constant interval [0, ∞] (Figure 2.a).
func NewLinkedList(f aggregate.Func) *List {
	l := &List{f: f, ar: newArena[listNode](listSlabPool)}
	l.head = l.ar.alloc()
	l.head.iv = interval.Universe()
	l.stats.init(1)
	return l
}

func (l *List) setSink(s obs.Sink) {
	if s == nil {
		return // nil Sink: instrumentation disabled (obs.Sink contract)
	}
	l.es = s.Evaluator(LinkedList.String())
	l.es.NodesAllocated(1) // the initial universe node
}

// Add absorbs one tuple: the first and last overlapped constant intervals
// are split at the tuple's start and end timestamps, then the tuple's value
// is added to every overlapped interval's state.
func (l *List) Add(t tuple.Tuple) error {
	liveBefore := l.stats.liveNodes.Load()
	if err := l.addOne(t); err != nil {
		return err
	}
	if l.es != nil {
		l.es.TuplesProcessed(1)
		l.es.NodesAllocated(int(l.stats.liveNodes.Load() - liveBefore))
	}
	return nil
}

// AddBatch absorbs one page of tuples; per-tuple stats updates match Add,
// with one sink publication per page.
func (l *List) AddBatch(ts []tuple.Tuple) error {
	liveBefore := l.stats.liveNodes.Load()
	added := 0
	var err error
	for i := range ts {
		if err = l.addOne(ts[i]); err != nil {
			break
		}
		added++
	}
	if l.es != nil {
		l.es.TuplesProcessed(added)
		l.es.NodesAllocated(int(l.stats.liveNodes.Load() - liveBefore))
	}
	return err
}

// addOne is the shared per-tuple path behind Add and AddBatch: the sink
// publication is left to the caller.
func (l *List) addOne(t tuple.Tuple) error {
	if err := t.Valid.Validate(); err != nil {
		return err
	}
	s, e, v := t.Valid.Start, t.Valid.End, t.Value

	// Walk to the first node overlapping the tuple (always from the head —
	// the naive algorithm keeps no positional state).
	n := l.head
	for n.iv.End < s {
		n = n.next
	}
	// Split the first overlapped node if the tuple starts inside it.
	if n.iv.Start < s {
		l.split(n, s-1)
		n = n.next
	}
	// Update every fully overlapped node; split the last one if the tuple
	// ends inside it.
	for n != nil && n.iv.Start <= e {
		if n.iv.End > e {
			l.split(n, e)
		}
		n.state = l.f.Add(n.state, v)
		n = n.next
	}
	l.stats.addTuple()
	return nil
}

// split divides n into [n.Start, at] and [at+1, n.End]; both halves keep n's
// state (the tuples counted so far overlapped the whole of n).
func (l *List) split(n *listNode, at interval.Time) {
	tail := l.ar.alloc()
	tail.iv = interval.MustNew(at+1, n.iv.End)
	tail.state = n.state
	tail.next = n.next
	n.iv.End = at
	n.next = tail
	l.stats.grow(1)
}

// Finish emits the constant intervals in time order, then returns the
// arena's slabs to the shared pool.
func (l *List) Finish() (*Result, error) {
	// Every list node is one constant interval, so the live count is exact.
	res := &Result{Func: l.f, Rows: make([]Row, 0, int(l.stats.liveNodes.Load()))}
	for n := l.head; n != nil; n = n.next {
		res.Rows = append(res.Rows, Row{Interval: n.iv, State: n.state})
	}
	l.head = nil
	slabs, reused := l.ar.release()
	if l.es != nil {
		l.es.PeakNodes(int(l.stats.peakNodes.Load()))
		l.es.ArenaRelease(slabs, reused)
	}
	return res, nil
}

// Stats reports the evaluator's counters.
func (l *List) Stats() Stats { return l.stats.snapshot() }
