package lint

import (
	"go/ast"
	"go/token"
)

// An intraprocedural control-flow graph over one function body, the
// substrate for the flow-sensitive analyzers (arenaescape, poolbalance,
// unlockpath, sinknil). The builder lowers Go's structured control flow
// into basic blocks of ast.Node slices connected by successor edges; the
// worklist solver in dataflow.go then pushes per-analyzer lattice facts
// through it.
//
// Design choices, in decreasing order of consequence:
//
//   - Statement granularity. A block's Nodes are the statements (and the
//     branch condition expression, last) executed unconditionally once the
//     block is entered. Analyzers see every node in order via their
//     Transfer function.
//   - Branch edges are labeled. When Block.Cond is non-nil the block ends
//     in a two-way branch: Succs[0] is the true edge, Succs[1] the false
//     edge, and the solver calls Branch(cond, taken, fact) so analyzers
//     can refine facts from the condition (nil checks, TryLock results).
//     Multi-way branches (switch, select, range) carry Cond == nil and
//     propagate unrefined.
//   - Function literals are opaque. A FuncLit body is its own flow (every
//     analyzer runs on it separately), so the builder records the literal
//     as an ordinary node without descending.
//   - Termination is syntactic. panic(...), os.Exit, runtime.Goexit, and
//     the testing/log Fatal/Skip family end a block with no successors;
//     the deliberately small list is documented on terminates. Analyzers
//     that must check "lock still held at exit" report at ReturnStmt,
//     ImplicitReturn, and terminator nodes rather than at a synthetic
//     exit block, so every diagnostic has a real position.
type CFG struct {
	// Blocks in allocation order; Blocks[0] is the entry block. Blocks
	// unreachable from the entry (dead code after return, break targets
	// never broken to) are present but the solver never visits them.
	Blocks []*Block
}

// A Block is one basic block.
type Block struct {
	Index int
	// Nodes are the statements executed on entry, in order. The slice may
	// end with the branch condition expression when Cond != nil, so
	// transfer functions observe calls inside conditions.
	Nodes []ast.Node
	// Cond is the two-way branch condition: Succs[0] is taken when Cond
	// is true, Succs[1] when false. Nil for unconditional or multi-way
	// successors.
	Cond  ast.Expr
	Succs []*Block
}

// ImplicitReturn marks falling off the end of a function body (or of a
// path that reaches it). It lets analyzers treat "function ends" uniformly
// with explicit returns while still carrying a position.
type ImplicitReturn struct{ pos token.Pos }

func (r *ImplicitReturn) Pos() token.Pos { return r.pos }
func (r *ImplicitReturn) End() token.Pos { return r.pos }

// BuildCFG lowers body into a control-flow graph. The builder never fails:
// unstructured edges it cannot resolve (goto to a missing label, which
// cannot type-check anyway) simply terminate their block.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{labels: map[string]*labelFrame{}}
	entry := b.newBlock()
	b.cur = entry
	b.stmtList(body.List)
	if b.cur != nil {
		b.append(&ImplicitReturn{pos: body.Rbrace})
	}
	b.resolveGotos()
	return &CFG{Blocks: b.blocks}
}

type loopFrame struct {
	brk, cont *Block
}

type labelFrame struct {
	// target receives gotos naming the label; it is the block of the
	// labeled statement itself.
	target *Block
	// loop is non-nil when the labeled statement is a for/range/switch/
	// select, for labeled break/continue.
	loop *loopFrame
}

type pendingGoto struct {
	from  *Block
	label string
}

type cfgBuilder struct {
	blocks []*Block
	cur    *Block // nil after a terminator: subsequent stmts are dead
	loops  []*loopFrame
	labels map[string]*labelFrame
	gotos  []pendingGoto
	// nextLabel names the label attached to the statement about to be
	// lowered, so for/switch/select can register themselves for labeled
	// break/continue.
	nextLabel string
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.blocks)}
	b.blocks = append(b.blocks, blk)
	return blk
}

// startBlock begins a new current block reached only by explicit edges.
func (b *cfgBuilder) startBlock() *Block {
	blk := b.newBlock()
	b.cur = blk
	return blk
}

func (b *cfgBuilder) append(n ast.Node) {
	if b.cur != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

func (b *cfgBuilder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
}

// jump ends the current block with an edge to target.
func (b *cfgBuilder) jump(target *Block) {
	b.edge(b.cur, target)
	b.cur = nil
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	if b.cur == nil {
		// Dead code after a terminator still gets blocks (a label inside
		// may make it reachable), so start a fresh unreachable block.
		switch s.(type) {
		case *ast.LabeledStmt, *ast.EmptyStmt:
		default:
			b.startBlock()
		}
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s)
	case *ast.RangeStmt:
		b.rangeStmt(s)
	case *ast.SwitchStmt:
		b.switchStmt(s)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s)
	case *ast.SelectStmt:
		b.selectStmt(s)
	case *ast.LabeledStmt:
		b.labeledStmt(s)
	case *ast.BranchStmt:
		b.branchStmt(s)
	case *ast.ReturnStmt:
		b.append(s)
		b.cur = nil
	case *ast.ExprStmt:
		b.append(s)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && terminates(call) {
			b.cur = nil
		}
	case *ast.EmptyStmt:
	default:
		// Assign, Decl, Defer, Go, Send, IncDec, ...: straight-line.
		b.append(s)
	}
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.append(s.Init)
	}
	b.append(s.Cond)
	condBlk := b.cur
	condBlk.Cond = s.Cond

	then := b.startBlock()
	b.edge(condBlk, then)
	b.stmtList(s.Body.List)
	thenEnd := b.cur

	var elseEnd *Block
	var elseBlk *Block
	if s.Else != nil {
		elseBlk = b.startBlock()
		b.edge(condBlk, elseBlk)
		b.stmt(s.Else)
		elseEnd = b.cur
	}

	after := b.newBlock()
	if s.Else == nil {
		b.edge(condBlk, after) // false edge
	} else {
		b.edge(elseEnd, after)
	}
	b.edge(thenEnd, after)
	b.cur = after
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.append(s.Init)
	}
	head := b.newBlock()
	b.jump(head)
	b.cur = head
	after := b.newBlock()
	if s.Cond != nil {
		b.append(s.Cond)
		head.Cond = s.Cond
	}
	body := b.newBlock()
	b.edge(head, body)
	if s.Cond != nil {
		b.edge(head, after)
	}

	post := head
	if s.Post != nil {
		post = b.newBlock()
	}
	frame := &loopFrame{brk: after, cont: post}
	b.pushLoop(frame, label)
	b.cur = body
	b.stmtList(s.Body.List)
	b.jump(post)
	b.popLoop(label)
	if s.Post != nil {
		b.cur = post
		b.append(s.Post)
		b.jump(head)
	}
	b.cur = after
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt) {
	label := b.takeLabel()
	head := b.newBlock()
	b.jump(head)
	b.cur = head
	// The range expression (and per-iteration key/value assignment) is
	// re-evaluated at the head; analyzers see the statement itself.
	b.append(s)
	after := b.newBlock()
	body := b.newBlock()
	b.edge(head, body)
	b.edge(head, after)

	frame := &loopFrame{brk: after, cont: head}
	b.pushLoop(frame, label)
	b.cur = body
	b.stmtList(s.Body.List)
	b.jump(head)
	b.popLoop(label)
	b.cur = after
}

func (b *cfgBuilder) switchStmt(s *ast.SwitchStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.append(s.Init)
	}
	if s.Tag != nil {
		b.append(s.Tag)
	}
	head := b.cur
	after := b.newBlock()
	frame := &loopFrame{brk: after}
	b.pushLoop(frame, label)

	var clauses []*ast.CaseClause
	for _, c := range s.Body.List {
		clauses = append(clauses, c.(*ast.CaseClause))
	}
	bodies := make([]*Block, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		bodies[i] = b.newBlock()
		b.edge(head, bodies[i])
		if c.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(head, after)
	}
	for i, c := range clauses {
		b.cur = bodies[i]
		for _, e := range c.List {
			b.append(e)
		}
		b.stmtList(c.Body)
		if _, ok := fallsThrough(c.Body); ok && i+1 < len(bodies) {
			b.jump(bodies[i+1])
		} else {
			b.jump(after)
		}
	}
	b.popLoop(label)
	b.cur = after
}

func (b *cfgBuilder) typeSwitchStmt(s *ast.TypeSwitchStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.append(s.Init)
	}
	b.append(s.Assign)
	head := b.cur
	after := b.newBlock()
	frame := &loopFrame{brk: after}
	b.pushLoop(frame, label)

	hasDefault := false
	for _, c := range s.Body.List {
		cc := c.(*ast.CaseClause)
		body := b.newBlock()
		b.edge(head, body)
		if cc.List == nil {
			hasDefault = true
		}
		b.cur = body
		b.stmtList(cc.Body)
		b.jump(after)
	}
	if !hasDefault {
		b.edge(head, after)
	}
	b.popLoop(label)
	b.cur = after
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt) {
	label := b.takeLabel()
	head := b.cur
	after := b.newBlock()
	frame := &loopFrame{brk: after}
	b.pushLoop(frame, label)
	for _, c := range s.Body.List {
		cc := c.(*ast.CommClause)
		body := b.newBlock()
		b.edge(head, body)
		b.cur = body
		if cc.Comm != nil {
			b.append(cc.Comm)
		}
		b.stmtList(cc.Body)
		b.jump(after)
	}
	// A select with no cases blocks forever, so after has no predecessor
	// and stays unreachable — exactly the semantics the solver wants.
	b.popLoop(label)
	b.cur = after
}

func (b *cfgBuilder) labeledStmt(s *ast.LabeledStmt) {
	target := b.newBlock()
	b.jump(target)
	b.cur = target
	b.labels[s.Label.Name] = &labelFrame{target: target}
	b.nextLabel = s.Label.Name
	b.stmt(s.Stmt)
	b.nextLabel = ""
}

func (b *cfgBuilder) branchStmt(s *ast.BranchStmt) {
	b.append(s)
	switch s.Tok {
	case token.BREAK:
		if s.Label != nil {
			if lf := b.labels[s.Label.Name]; lf != nil && lf.loop != nil {
				b.jump(lf.loop.brk)
				return
			}
		} else if f := b.innerLoop(); f != nil {
			b.jump(f.brk)
			return
		}
		b.cur = nil
	case token.CONTINUE:
		if s.Label != nil {
			if lf := b.labels[s.Label.Name]; lf != nil && lf.loop != nil && lf.loop.cont != nil {
				b.jump(lf.loop.cont)
				return
			}
		} else if f := b.innerContinueLoop(); f != nil {
			b.jump(f.cont)
			return
		}
		b.cur = nil
	case token.GOTO:
		if s.Label != nil {
			b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: s.Label.Name})
		}
		b.cur = nil
	case token.FALLTHROUGH:
		// Handled structurally by switchStmt via fallsThrough; the
		// statement itself is a no-op here.
	}
}

func (b *cfgBuilder) resolveGotos() {
	for _, g := range b.gotos {
		if lf := b.labels[g.label]; lf != nil {
			b.edge(g.from, lf.target)
		}
	}
}

func (b *cfgBuilder) pushLoop(f *loopFrame, label string) {
	b.loops = append(b.loops, f)
	if label != "" {
		if lf := b.labels[label]; lf != nil {
			lf.loop = f
		}
	}
}

func (b *cfgBuilder) popLoop(string) {
	b.loops = b.loops[:len(b.loops)-1]
}

// innerLoop is the break target: the innermost for/range/switch/select.
func (b *cfgBuilder) innerLoop() *loopFrame {
	if n := len(b.loops); n > 0 {
		return b.loops[n-1]
	}
	return nil
}

// innerContinueLoop is the continue target: the innermost for/range frame
// (switch/select frames have no continue target).
func (b *cfgBuilder) innerContinueLoop() *loopFrame {
	for i := len(b.loops) - 1; i >= 0; i-- {
		if b.loops[i].cont != nil {
			return b.loops[i]
		}
	}
	return nil
}

func (b *cfgBuilder) takeLabel() string {
	l := b.nextLabel
	b.nextLabel = ""
	return l
}

// fallsThrough reports whether a case body ends in a fallthrough
// statement (possibly inside a trailing labeled statement).
func fallsThrough(body []ast.Stmt) (token.Pos, bool) {
	if len(body) == 0 {
		return token.NoPos, false
	}
	last := body[len(body)-1]
	for {
		if ls, ok := last.(*ast.LabeledStmt); ok {
			last = ls.Stmt
			continue
		}
		break
	}
	if bs, ok := last.(*ast.BranchStmt); ok && bs.Tok == token.FALLTHROUGH {
		return bs.Pos(), true
	}
	return token.NoPos, false
}

// terminates reports whether call never returns, judged syntactically: the
// builtin panic, os.Exit, runtime.Goexit, and the log/testing Fatal, Skip,
// and FailNow families. Syntactic matching can misjudge a user-defined
// method that happens to share a name, which errs toward fewer findings
// (paths are cut short), never toward false positives.
func terminates(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		switch fun.Sel.Name {
		case "Fatal", "Fatalf", "Fatalln", "FailNow", "SkipNow", "Skip", "Skipf", "Goexit":
			return true
		case "Exit":
			if id, ok := fun.X.(*ast.Ident); ok && id.Name == "os" {
				return true
			}
		}
	}
	return false
}

// isTerminator reports whether n is a statement that exits the function
// abruptly (panic, os.Exit, a Fatal helper), for analyzers that flag
// "exits while holding a resource".
func isTerminator(n ast.Node) (ast.Node, bool) {
	es, ok := n.(*ast.ExprStmt)
	if !ok {
		return nil, false
	}
	call, ok := ast.Unparen(es.X).(*ast.CallExpr)
	if !ok || !terminates(call) {
		return nil, false
	}
	return es, true
}
