package core

import (
	"errors"
	"math/rand"
	"testing"

	"tempagg/internal/aggregate"
	"tempagg/internal/interval"
	"tempagg/internal/tuple"
)

func TestTumaReadsRelationTwice(t *testing.T) {
	// The defining property of the baseline (§4.1): the relation is scanned
	// once for the constant intervals and again for the aggregate values.
	src := NewSliceSource(relationEmployedTuples(t))
	if _, err := Tuma(src, aggregate.For(aggregate.Count)); err != nil {
		t.Fatal(err)
	}
	if src.Passes() != 2 {
		t.Fatalf("Tuma performed %d passes, want 2", src.Passes())
	}
}

func relationEmployedTuples(t *testing.T) []tuple.Tuple {
	t.Helper()
	return []tuple.Tuple{
		mustTuple(t, "Rich", 40, 18, interval.Forever),
		mustTuple(t, "Karen", 45, 8, 20),
		mustTuple(t, "Nathan", 35, 7, 12),
		mustTuple(t, "Nathan", 37, 18, 21),
	}
}

func TestTumaMatchesOracleAllKinds(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for _, kind := range aggregate.Kinds() {
		f := aggregate.For(kind)
		for trial := 0; trial < 25; trial++ {
			ts := randomTuples(r, r.Intn(70), 400)
			got, err := Tuma(NewSliceSource(ts), f)
			if err != nil {
				t.Fatal(err)
			}
			resultsIdentical(t, "tuma/"+kind.String(), got, Reference(f, ts))
		}
	}
}

func TestTumaEmptyRelation(t *testing.T) {
	res, err := Tuma(NewSliceSource(nil), aggregate.For(aggregate.Count))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0].Interval != interval.Universe() {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestTumaRejectsInvalidTuple(t *testing.T) {
	//tempagglint:ignore intervalbounds the test needs an invalid tuple to exercise rejection
	src := NewSliceSource([]tuple.Tuple{{Name: "x", Valid: interval.Interval{Start: 5, End: 1}}})
	if _, err := Tuma(src, aggregate.For(aggregate.Count)); err == nil {
		t.Fatal("expected error for invalid tuple")
	}
}

// failingSource injects an error mid-stream to exercise error paths.
type failingSource struct {
	tuples []tuple.Tuple
	pos    int
	failAt int
	pass   int
	failOn int // which pass to fail on (1 or 2)
	resets int
}

func (s *failingSource) Next() (tuple.Tuple, bool, error) {
	if s.pass == s.failOn && s.pos == s.failAt {
		return tuple.Tuple{}, false, errors.New("injected read failure")
	}
	if s.pos >= len(s.tuples) {
		return tuple.Tuple{}, false, nil
	}
	t := s.tuples[s.pos]
	s.pos++
	return t, true, nil
}

func (s *failingSource) Reset() error {
	s.pos = 0
	s.pass++
	s.resets++
	return nil
}

func TestTumaPropagatesReadErrors(t *testing.T) {
	ts := relationEmployedTuples(t)
	for _, pass := range []int{1, 2} {
		src := &failingSource{tuples: ts, failAt: 2, pass: 1, failOn: pass}
		if _, err := Tuma(src, aggregate.For(aggregate.Sum)); err == nil {
			t.Errorf("pass %d: expected injected failure to propagate", pass)
		}
	}
}

// mutatingSource yields fewer tuples on the second pass, simulating a
// relation that changed between scans.
type mutatingSource struct {
	tuples []tuple.Tuple
	pos    int
	pass   int
}

func (s *mutatingSource) Next() (tuple.Tuple, bool, error) {
	limit := len(s.tuples)
	if s.pass == 2 {
		limit--
	}
	if s.pos >= limit {
		return tuple.Tuple{}, false, nil
	}
	t := s.tuples[s.pos]
	s.pos++
	return t, true, nil
}

func (s *mutatingSource) Reset() error {
	s.pos = 0
	s.pass = 2
	return nil
}

func TestTumaDetectsChangedRelation(t *testing.T) {
	src := &mutatingSource{tuples: relationEmployedTuples(t), pass: 1}
	if _, err := Tuma(src, aggregate.For(aggregate.Count)); err == nil {
		t.Fatal("expected error when the relation changes between passes")
	}
}
