// Package server exposes a catalog of temporal relations over TCP with a
// line-oriented protocol: the client sends one query per line, the server
// answers with one JSON object per line:
//
//	→ SELECT COUNT(Name) FROM Employed
//	← {"ok":true,"result":{"query":...,"plan":...,"groups":[...]}}
//	→ SELECT BOGUS
//	← {"ok":false,"error":"query: ..."}
//
// Connections are served concurrently; the catalog is read-only while
// serving, and each query streams from its relation file independently.
package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"

	"tempagg/internal/catalog"
	"tempagg/internal/obs"
	"tempagg/internal/query"
	"tempagg/internal/relation"
)

// MaxQueryBytes bounds a single query line.
const MaxQueryBytes = 1 << 16

// Response is the per-query reply envelope.
type Response struct {
	OK     bool               `json:"ok"`
	Error  string             `json:"error,omitempty"`
	Result *query.QueryResult `json:"result,omitempty"`
}

// Server serves queries against one catalog.
type Server struct {
	cat *catalog.Catalog
	obs *obs.Observer

	mu     sync.Mutex
	lis    net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// Option configures a Server at construction.
type Option func(*Server)

// WithObserver attaches an observer: every query the server executes is
// traced and counted on it, and AdminMux can expose it over HTTP.
func WithObserver(o *obs.Observer) Option {
	return func(s *Server) { s.obs = o }
}

// New returns a server over the catalog.
func New(cat *catalog.Catalog, opts ...Option) *Server {
	s := &Server{cat: cat, conns: map[net.Conn]struct{}{}}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Observer returns the attached observer, nil when none.
func (s *Server) Observer() *obs.Observer { return s.obs }

// Serve accepts connections on lis until Close. It returns nil after a
// clean shutdown.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("server: already closed")
	}
	s.lis = lis
	s.mu.Unlock()
	for {
		conn, err := lis.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				s.wg.Wait()
				return nil
			}
			return fmt.Errorf("server: accept: %w", err)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.handle(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// Close stops accepting, closes live connections, and waits for handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	lis := s.lis
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if lis != nil {
		lis.Close()
	}
	s.wg.Wait()
	return nil
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 4096), MaxQueryBytes)
	enc := json.NewEncoder(conn)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.EqualFold(line, "quit") {
			return
		}
		resp := s.execute(line)
		if err := enc.Encode(resp); err != nil {
			return // client went away
		}
	}
}

func (s *Server) execute(sql string) Response {
	// INGEST is a protocol command, not SQL: intercept it before parsing.
	if first, rest, _ := strings.Cut(sql, " "); strings.EqualFold(first, "INGEST") {
		return s.executeIngest(rest)
	}
	qr, err := s.cat.QueryObserved(sql, relation.ScanOptions{}, s.obs)
	if err != nil {
		return Response{OK: false, Error: err.Error()}
	}
	return Response{OK: true, Result: qr}
}

// Client is a minimal synchronous client for the line protocol.
type Client struct {
	conn net.Conn
	sc   *bufio.Scanner
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 4096), 16<<20)
	return &Client{conn: conn, sc: sc}, nil
}

// Query sends one query and decodes the reply. Protocol or I/O failures
// return an error; a server-side query error comes back in Response.Error.
func (c *Client) Query(sql string) (Response, error) {
	if strings.ContainsAny(sql, "\n\r") {
		return Response{}, errors.New("server: query must be a single line")
	}
	if _, err := fmt.Fprintln(c.conn, sql); err != nil {
		return Response{}, fmt.Errorf("server: send: %w", err)
	}
	if !c.sc.Scan() {
		if err := c.sc.Err(); err != nil {
			return Response{}, fmt.Errorf("server: receive: %w", err)
		}
		return Response{}, errors.New("server: connection closed")
	}
	// The result decodes into generic JSON on the client side; callers
	// needing typed access use the Raw field of the decoded envelope.
	var resp rawResponse
	if err := json.Unmarshal(c.sc.Bytes(), &resp); err != nil {
		return Response{}, fmt.Errorf("server: bad reply: %w", err)
	}
	return Response{OK: resp.OK, Error: resp.Error}, nil
}

// QueryRaw sends one query and returns the raw JSON reply line.
func (c *Client) QueryRaw(sql string) ([]byte, error) {
	if strings.ContainsAny(sql, "\n\r") {
		return nil, errors.New("server: query must be a single line")
	}
	if _, err := fmt.Fprintln(c.conn, sql); err != nil {
		return nil, fmt.Errorf("server: send: %w", err)
	}
	if !c.sc.Scan() {
		if err := c.sc.Err(); err != nil {
			return nil, fmt.Errorf("server: receive: %w", err)
		}
		return nil, errors.New("server: connection closed")
	}
	return append([]byte(nil), c.sc.Bytes()...), nil
}

// Close terminates the session.
func (c *Client) Close() error {
	fmt.Fprintln(c.conn, "quit")
	return c.conn.Close()
}

// rawResponse decodes the envelope without re-typing the result.
type rawResponse struct {
	OK    bool            `json:"ok"`
	Error string          `json:"error,omitempty"`
	Raw   json.RawMessage `json:"result,omitempty"`
}
