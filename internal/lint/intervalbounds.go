package lint

import (
	"go/ast"
	"strings"
)

// IntervalBounds flags raw tuple.Tuple and interval.Interval composite
// literals that set fields, outside the defining packages. Every interval
// the evaluators consume must satisfy Start <= End (and Start >= Origin);
// the validating constructors — interval.New, interval.MustNew,
// interval.At, interval.Universe, tuple.New, tuple.MustNew — are the only
// places that invariant is checked, so a literal with explicit fields is a
// hole through which an inverted interval can reach an evaluator and
// corrupt a constant-interval structure. The empty literal (the zero value
// [0,0]) is the conventional "no result" sentinel and stays legal.
var IntervalBounds = &Analyzer{
	Name: "intervalbounds",
	Doc: "flag tuple.Tuple/interval.Interval literals with fields set that " +
		"bypass the validating constructors (start<=end, name width)",
	Run: runIntervalBounds,
}

func runIntervalBounds(pass *Pass) error {
	// The defining packages (and their tests, which must build invalid
	// values on purpose to exercise Validate) are exempt.
	owner := strings.TrimSuffix(pass.Pkg.Path(), "_test")
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok || len(lit.Elts) == 0 {
				return true
			}
			tv, ok := pass.TypesInfo.Types[lit]
			if !ok {
				return true
			}
			switch {
			case isNamed(tv.Type, intervalPkgPath, "Interval") && owner != intervalPkgPath:
				pass.Reportf(lit.Pos(), "raw interval.Interval literal bypasses validation; "+
					"use interval.New, interval.MustNew, or interval.At so Start<=End is checked")
			case isNamed(tv.Type, tuplePkgPath, "Tuple") && owner != tuplePkgPath:
				pass.Reportf(lit.Pos(), "raw tuple.Tuple literal bypasses validation; "+
					"use tuple.New or tuple.MustNew so the interval and name width are checked")
			}
			return true
		})
	}
	return nil
}
