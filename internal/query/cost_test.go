package query

import (
	"strings"
	"testing"

	"tempagg/internal/core"
)

func costPlan(t *testing.T, info RelationInfo, m CostModel) Plan {
	t.Helper()
	q := mustParse(t, planSQL)
	p, err := PlanQueryCosted(q, info, m)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestCostModelMemoryVsIO encodes §6.3's tradeoff: cheap memory keeps the
// evaluation resident — the columnar sweep for decomposable aggregates, the
// aggregation tree for MIN/MAX — while dear memory (relative to disk I/O)
// picks sort+ktree.
func TestCostModelMemoryVsIO(t *testing.T) {
	info := RelationInfo{Tuples: 1 << 16, KBound: -1}

	// CPU is always priced: the linked list's quadratic walk must not look
	// free. With memory nearly free the sweep's smaller CPU term wins over
	// the aggregation tree for COUNT.
	cheapMemory := CostModel{MemoryByte: 1e-9, PageIO: 1, CPUTuple: 1e-6}
	p := costPlan(t, info, cheapMemory)
	if p.Spec.Algorithm != core.SweepEval {
		t.Fatalf("cheap memory: %v", p)
	}

	// MIN is not decomposable, so the sweep alternative is absent and the
	// aggregation tree remains the resident choice.
	q := mustParse(t, "SELECT MIN(Salary) FROM R")
	pMin, err := PlanQueryCosted(q, info, cheapMemory)
	if err != nil {
		t.Fatal(err)
	}
	if pMin.Spec.Algorithm != core.AggregationTree {
		t.Fatalf("cheap memory, MIN: %v", pMin)
	}

	dearMemory := CostModel{MemoryByte: 1, PageIO: 1e-9, CPUTuple: 1e-6}
	p = costPlan(t, info, dearMemory)
	if !p.SortFirst || p.Spec.Algorithm != core.KOrderedTree || p.Spec.K != 1 {
		t.Fatalf("dear memory: %v", p)
	}
	if !strings.Contains(p.Reason, "estimated cost") {
		t.Fatalf("reason lacks estimate: %q", p.Reason)
	}
}

// TestCostModelSortedSkipsSort: a sorted relation pays no sort I/O, so the
// ktree wins even when I/O is expensive.
func TestCostModelSortedSkipsSort(t *testing.T) {
	info := RelationInfo{Tuples: 1 << 16, Sorted: true, KBound: -1}
	m := CostModel{MemoryByte: 1, PageIO: 1000, CPUTuple: 0}
	p := costPlan(t, info, m)
	if p.SortFirst || p.Spec.Algorithm != core.KOrderedTree {
		t.Fatalf("sorted: %v", p)
	}
}

// TestCostModelDeclaredKAvoidsSort: with a declared bound and expensive
// I/O, the unsorted ktree beats sort+ktree.
func TestCostModelDeclaredKAvoidsSort(t *testing.T) {
	info := RelationInfo{Tuples: 1 << 16, KBound: 16}
	m := CostModel{MemoryByte: 1e-6, PageIO: 1000, CPUTuple: 0}
	p := costPlan(t, info, m)
	if p.SortFirst || p.Spec.Algorithm != core.KOrderedTree || p.Spec.K != 16 {
		t.Fatalf("declared k: %v", p)
	}
}

// TestCostModelSampledKAvoidsSort: when the estimator supplied a small
// sampled bound and I/O is dear, the planner gambles on the no-sort
// k-ordered tree and marks the plan for the executor's sort-and-retry.
func TestCostModelSampledKAvoidsSort(t *testing.T) {
	info := RelationInfo{Tuples: 1 << 16, KBound: -1, SampledK: 16}
	m := CostModel{MemoryByte: 1e-6, PageIO: 1000, CPUTuple: 0}
	p := costPlan(t, info, m)
	if p.SortFirst || p.Spec.Algorithm != core.KOrderedTree || p.Spec.K != 16 || !p.SampledK {
		t.Fatalf("sampled k: %v", p)
	}

	// A declared bound is authoritative: with one present the sampled
	// alternative is not generated and the plan carries no retry marker.
	info = RelationInfo{Tuples: 1 << 16, KBound: 8, SampledK: 16}
	p = costPlan(t, info, m)
	if p.Spec.K != 8 || p.SampledK {
		t.Fatalf("declared k must shadow sampled k: %v", p)
	}
}

// TestCostModelFewIntervalsFavoursList: with very few constant intervals
// the linked list's quadratic term collapses and its tiny memory wins.
func TestCostModelFewIntervalsFavoursList(t *testing.T) {
	info := RelationInfo{Tuples: 1 << 16, KBound: -1, ExpectedConstantIntervals: 4}
	m := CostModel{MemoryByte: 1, PageIO: 0.001, CPUTuple: 1e-7}
	p := costPlan(t, info, m)
	if p.Spec.Algorithm != core.LinkedList {
		t.Fatalf("few intervals: %v", p)
	}
}

// TestCostModelQuadraticListPenalty: with many intervals and a real CPU
// price the list never wins.
func TestCostModelQuadraticListPenalty(t *testing.T) {
	info := RelationInfo{Tuples: 1 << 16, KBound: -1}
	m := CostModel{MemoryByte: 1e-9, PageIO: 1e-9, CPUTuple: 1}
	p := costPlan(t, info, m)
	if p.Spec.Algorithm == core.LinkedList {
		t.Fatalf("quadratic list chosen: %v", p)
	}
}

// TestCostModelDisabledFallsBack: the zero model defers to the qualitative
// rules, and USING still overrides everything.
func TestCostModelDisabledFallsBack(t *testing.T) {
	info := RelationInfo{Tuples: 100, Sorted: true, KBound: -1}
	p := costPlan(t, info, CostModel{})
	if p.Spec.Algorithm != core.KOrderedTree || p.Spec.K != 1 {
		t.Fatalf("fallback: %v", p)
	}
	q := mustParse(t, planSQL+" USING LIST")
	p, err := PlanQueryCosted(q, info, CostModel{MemoryByte: 1, PageIO: 1})
	if err != nil {
		t.Fatal(err)
	}
	if p.Spec.Algorithm != core.LinkedList {
		t.Fatalf("USING ignored: %v", p)
	}
}
