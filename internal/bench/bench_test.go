package bench

import (
	"strings"
	"testing"

	"tempagg/internal/obs"
)

// smallOpts keeps experiment self-tests fast; the full sweep runs in
// cmd/benchharness.
func smallOpts() Options {
	return Options{Sizes: []int{1 << 10, 1 << 11}, Seeds: []int64{1}}
}

// TestOptionsSinkReceivesCounters pins the bench↔obs integration: a run
// with a sink attached publishes the same per-algorithm counters a live
// daemon would, so benchmark numbers are scrapeable.
func TestOptionsSinkReceivesCounters(t *testing.T) {
	m := obs.NewMetrics(obs.NewRegistry())
	opts := Options{Sizes: []int{256}, Seeds: []int64{1}, Sink: m}
	if _, err := Figure6(opts); err != nil {
		t.Fatal(err)
	}
	for _, alg := range []string{"linked-list", "aggregation-tree"} {
		got := m.Registry().CounterVec(obs.MetricTuplesProcessed, "", "algorithm").
			With(alg).Value()
		if got == 0 {
			t.Errorf("sink saw no %s tuples", alg)
		}
	}
}

func TestFigure6Shape(t *testing.T) {
	fig, err := Figure6(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 5 {
		t.Fatalf("%d series", len(fig.Series))
	}
	// The tree must beat the list at every measured size (Figure 6's
	// defining relationship).
	list := fig.Series[0]
	tree := fig.Series[2]
	for i := range list.Points {
		if tree.Points[i].Value >= list.Points[i].Value {
			t.Errorf("size %d: tree %.4gs not faster than list %.4gs",
				list.Points[i].Size, tree.Points[i].Value, list.Points[i].Value)
		}
	}
}

func TestFigure7Shape(t *testing.T) {
	fig, err := Figure7(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 6 {
		t.Fatalf("%d series", len(fig.Series))
	}
	byName := map[string]Series{}
	for _, s := range fig.Series {
		byName[s.Name] = s
	}
	// ktree k=1 must beat the linked list and the (sorted-input) tree.
	k1 := byName["ktree sorted k=1"].Points
	list := byName["linked-list"].Points
	tree := byName["aggregation-tree (sorted)"].Points
	last := len(k1) - 1
	if k1[last].Value >= list[last].Value {
		t.Errorf("ktree k=1 (%.4gs) not faster than linked list (%.4gs)",
			k1[last].Value, list[last].Value)
	}
	if k1[last].Value >= tree[last].Value {
		t.Errorf("ktree k=1 (%.4gs) not faster than sorted-input tree (%.4gs)",
			k1[last].Value, tree[last].Value)
	}
}

func TestFigure9MemoryShape(t *testing.T) {
	fig, err := Figure9(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Series{}
	for _, s := range fig.Series {
		byName[s.Name] = s
	}
	last := len(smallOpts().Sizes) - 1
	tree := byName["aggregation-tree"].Points[last].Value
	list := byName["linked-list"].Points[last].Value
	k1 := byName["ktree sorted k=1"].Points[last].Value
	k400 := byName["ktree k=400"].Points[last].Value
	if !(tree > list) {
		t.Errorf("tree memory %.4g not above list %.4g", tree, list)
	}
	if !(list > k400 && k400 > k1) {
		t.Errorf("memory ordering violated: list %.4g, k400 %.4g, k1 %.4g", list, k400, k1)
	}
}

func TestAblationBalancedShape(t *testing.T) {
	fig, err := AblationBalanced(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Series{}
	for _, s := range fig.Series {
		byName[s.Name] = s
	}
	last := len(smallOpts().Sizes) - 1
	unb := byName["aggregation-tree (sorted)"].Points[last].Value
	bal := byName["balanced-tree (sorted)"].Points[last].Value
	if bal >= unb {
		t.Errorf("balanced tree (%.4gs) not faster than unbalanced (%.4gs) on sorted input", bal, unb)
	}
}

func TestAblationPageRandomization(t *testing.T) {
	fig, err := AblationPageRandomization(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 || len(fig.Series[0].Points) != 2 {
		t.Fatalf("unexpected figure shape: %+v", fig)
	}
}

func TestAblationSpan(t *testing.T) {
	fig, err := AblationSpan(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("%d series", len(fig.Series))
	}
}

func TestMemoryLongLived(t *testing.T) {
	fig, err := MemoryLongLived(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Series{}
	for _, s := range fig.Series {
		byName[s.Name] = s
	}
	last := len(smallOpts().Sizes) - 1
	k4 := byName["ktree k=4"].Points[last].Value
	k1 := byName["ktree sorted k=1"].Points[last].Value
	if k4 < 4*k1*0 { // sanity only; detailed assertions live in core tests
		t.Error("impossible")
	}
	if k4 <= 0 || k1 <= 0 {
		t.Fatal("non-positive memory measurements")
	}
}

func TestTable1(t *testing.T) {
	s, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"3 | 18 | 20", "1 | 22 | ∞", "0 | 0 | 6"} {
		if !strings.Contains(s, want) {
			t.Errorf("table 1 missing %q:\n%s", want, s)
		}
	}
}

func TestTable2(t *testing.T) {
	s, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"0.0002", "0.002", "0.05", "0.0505", "sorted"} {
		if !strings.Contains(s, want) {
			t.Errorf("table 2 missing %q:\n%s", want, s)
		}
	}
}

func TestFigureString(t *testing.T) {
	fig := Figure{
		ID: "x", Title: "T", Metric: "bytes",
		Series: []Series{
			{Name: "a", Points: []Point{{Size: 1024, Value: 2048}, {Size: 2048, Value: 3 << 20}}},
			{Name: "bb", Points: []Point{{Size: 1024, Value: 10}}},
		},
	}
	s := fig.String()
	for _, want := range []string{"1K", "2K", "2K\n", "3M", "-", "== x: T (bytes)"} {
		if !strings.Contains(s, want) {
			t.Errorf("figure table missing %q:\n%s", want, s)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if len(o.Sizes) != 7 || len(o.Seeds) != 3 {
		t.Fatalf("defaults = %+v", o)
	}
}

func TestVerifyClaimsAllPass(t *testing.T) {
	claims, err := VerifyClaims(1<<13, 101)
	if err != nil {
		t.Fatal(err)
	}
	if len(claims) < 8 {
		t.Fatalf("only %d claims checked", len(claims))
	}
	for _, c := range claims {
		if !c.Passed {
			t.Errorf("claim failed: %s", c)
		}
	}
	out := FormatClaims(claims)
	if !strings.Contains(out, "claims reproduced") {
		t.Fatalf("summary missing:\n%s", out)
	}
}
