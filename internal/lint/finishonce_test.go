package lint_test

import (
	"testing"

	"tempagg/internal/lint"
	"tempagg/internal/lint/linttest"
)

func TestFinishOnce(t *testing.T) {
	linttest.Run(t, lint.NewFinishOnce(false), "finishonce")
}

func TestFinishOnceStrictStats(t *testing.T) {
	linttest.Run(t, lint.NewFinishOnce(true), "finishonce_strict")
}
