// Optimizer demonstrates the §6.3 query-optimizer strategies: the same
// query planned against different relation metadata picks different
// algorithms, and the measured costs justify each choice.
//
// Run with:
//
//	go run ./examples/optimizer
package main

import (
	"fmt"
	"log"
	"time"

	"tempagg"
)

func main() {
	const n = 16384
	sql := "SELECT COUNT(Name) FROM Synth"

	random, err := tempagg.Generate(tempagg.WorkloadConfig{Tuples: n, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	random.Name = "Synth"
	sorted := random.Clone()
	sorted.Name = "Synth"
	sorted.SortByTime()

	// A retroactively bounded feed: every record within 16 positions of its
	// time-ordered place (§5.3).
	bounded, err := tempagg.Generate(tempagg.WorkloadConfig{
		Tuples: n, Order: tempagg.WorkloadKOrdered, K: 16, KPct: 0.08, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	bounded.Name = "Synth"

	cases := []struct {
		label string
		rel   *tempagg.Relation
		info  tempagg.RelationInfo
	}{
		{"unsorted, plentiful memory", random,
			tempagg.RelationInfo{Tuples: n, KBound: -1}},
		{"unsorted, 64 KiB memory budget", random,
			tempagg.RelationInfo{Tuples: n, KBound: -1, MemoryBudget: 64 << 10}},
		{"sorted", sorted,
			tempagg.RelationInfo{Tuples: n, Sorted: true, KBound: -1}},
		{"declared retroactively bounded (k=16)", bounded,
			tempagg.RelationInfo{Tuples: n, KBound: 16}},
		{"few constant intervals expected", random,
			tempagg.RelationInfo{Tuples: n, KBound: -1, ExpectedConstantIntervals: 10}},
	}

	for _, c := range cases {
		start := time.Now()
		qr, err := tempagg.Query(sql, c.rel, &c.info)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		stats := qr.Groups[0].Stats
		fmt.Printf("%-38s -> %s\n", c.label, qr.Plan)
		fmt.Printf("%38s    %v, peak memory %d bytes, %d rows\n",
			"", elapsed.Round(time.Microsecond), stats.PeakBytes(),
			len(qr.Groups[0].Result.Rows))
	}

	// The decision behind "sort then ktree k=1": run the aggregation tree
	// on sorted input (its worst case) and watch it lose to the k-ordered
	// tree by orders of magnitude.
	fmt.Println("\nwhy sorted input must avoid the plain aggregation tree:")
	for _, using := range []string{"TREE", "KTREE 1"} {
		start := time.Now()
		qr, err := tempagg.Query(sql+" USING "+using, sorted, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  USING %-8s %10v  peak %8d bytes\n",
			using, time.Since(start).Round(time.Microsecond),
			qr.Groups[0].Stats.PeakBytes())
	}
}
