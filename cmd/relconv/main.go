// Command relconv converts relations between the paged binary format
// (.rel) and CSV (.csv), inferring formats from file extensions.
//
// Usage:
//
//	relconv -in data.csv -out data.rel
//	relconv -in data.rel -out data.csv
//	relconv -in data.rel -out sorted.rel -sort -dedup
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"tempagg/internal/relation"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "relconv:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("relconv", flag.ContinueOnError)
	var (
		in       = fs.String("in", "", "input file, .rel or .csv (required)")
		out      = fs.String("out", "", "output file, .rel or .csv (required)")
		doSort   = fs.Bool("sort", false, "sort the relation by time before writing")
		dedup    = fs.Bool("dedup", false, "remove exact duplicate tuples before writing (§7)")
		coalesce = fs.Bool("coalesce", false, "merge value-equivalent adjacent/overlapping tuples before writing")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return fmt.Errorf("-in and -out are required")
	}

	rel, err := load(*in)
	if err != nil {
		return err
	}
	if *dedup {
		removed := rel.DeduplicateInPlace()
		fmt.Printf("removed %d duplicate tuples\n", removed)
	}
	if *coalesce {
		merged := rel.CoalesceInPlace()
		fmt.Printf("coalesced away %d tuples\n", merged)
	}
	if *doSort {
		rel.SortByTime()
	}
	if err := store(*out, rel); err != nil {
		return err
	}
	fmt.Printf("wrote %d tuples to %s\n", rel.Len(), *out)
	return nil
}

func load(path string) (*relation.Relation, error) {
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	switch strings.ToLower(filepath.Ext(path)) {
	case ".rel":
		rel, err := relation.ReadFile(path)
		if err != nil {
			return nil, err
		}
		rel.Name = name
		return rel, nil
	case ".csv":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return relation.ReadCSV(f, name)
	}
	return nil, fmt.Errorf("unknown input format %q (want .rel or .csv)", filepath.Ext(path))
}

func store(path string, rel *relation.Relation) error {
	switch strings.ToLower(filepath.Ext(path)) {
	case ".rel":
		return relation.WriteFile(path, rel)
	case ".csv":
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := relation.WriteCSV(f, rel); err != nil {
			return err
		}
		return f.Close()
	}
	return fmt.Errorf("unknown output format %q (want .rel or .csv)", filepath.Ext(path))
}
