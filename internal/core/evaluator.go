package core

import (
	"fmt"

	"tempagg/internal/aggregate"
	"tempagg/internal/tuple"
)

// noCopy marks a struct as copy-hostile. An evaluator owns live tree state
// — node pools, GC bookkeeping, peak counters — so a by-value copy would
// create two owners of one structure. The type carries pointer-receiver
// Lock/Unlock no-ops, the convention both go vet's copylocks and
// tempagglint's lockcopy analyzer key on, so any copy is reported at build
// time. Include it as a named field (never embed it, which would promote
// Lock into the public method set).
type noCopy struct{}

func (*noCopy) Lock()   {}
func (*noCopy) Unlock() {}

// NodeBytes is the memory cost charged per structure node, matching the
// paper's accounting (§6.2): both tree algorithms and the linked list use
// 16 bytes per node (two pointers or two timestamps, an aggregate value, and
// a split timestamp).
const NodeBytes = 16

// Stats records the work and space an evaluator used, mirroring the
// quantities the paper reports (CPU time is measured by the caller; memory
// follows the 16-bytes-per-node model of §6.2).
type Stats struct {
	// Tuples is the number of tuples absorbed.
	Tuples int
	// LiveNodes is the current number of structure nodes.
	LiveNodes int
	// PeakNodes is the high-water mark of LiveNodes — the paper's
	// main-memory requirement (Figure 9).
	PeakNodes int
	// Collected is the number of nodes reclaimed by garbage collection
	// (k-ordered aggregation tree only).
	Collected int
}

// PeakBytes is the paper's main-memory requirement in bytes.
func (s Stats) PeakBytes() int64 { return int64(s.PeakNodes) * NodeBytes }

// LiveBytes is the current structure size in bytes.
func (s Stats) LiveBytes() int64 { return int64(s.LiveNodes) * NodeBytes }

// Evaluator computes a temporal aggregate grouped by instant from a single
// scan of the relation. Implementations are the linked list, the aggregation
// tree, the k-ordered aggregation tree, and the balanced aggregation tree.
type Evaluator interface {
	// Add absorbs one tuple.
	Add(t tuple.Tuple) error
	// AddBatch absorbs a page of tuples, equivalent to calling Add on each
	// in order but with sink publication amortized over the page (one event
	// per page instead of per tuple). On an invalid tuple it stops and
	// returns the error; tuples before the failing one are absorbed, as they
	// would be under per-tuple Add. Callers feed pages of BatchPage tuples.
	AddBatch(ts []tuple.Tuple) error
	// Finish completes the computation and returns the constant intervals
	// in time order. The evaluator must not be reused afterwards.
	Finish() (*Result, error)
	// Stats reports work and space counters; valid at any point, and safe
	// to call from another goroutine while Add or Finish is in flight (the
	// counters are atomics — a concurrent /metrics scrape never observes a
	// torn value).
	Stats() Stats
}

// Algorithm names an evaluation strategy.
type Algorithm int

const (
	// LinkedList is the naive single-scan list algorithm (§4.2).
	LinkedList Algorithm = iota
	// AggregationTree is the unbalanced tree of constant intervals (§5.1).
	AggregationTree
	// KOrderedTree is the aggregation tree with garbage collection for
	// k-ordered relations (§5.3).
	KOrderedTree
	// BalancedTree is the future-work self-balancing variant (§7).
	BalancedTree
	// SweepEval is the columnar event-sweep evaluator: tuples become
	// timestamped deltas, the event column is radix-sorted, and the constant
	// intervals fall out of one prefix scan (see sweep.go). Exact for all
	// five aggregates; fastest for the decomposable ones (COUNT/SUM/AVG).
	SweepEval
)

// String returns the algorithm's name as used in the paper's figures.
func (a Algorithm) String() string {
	switch a {
	case LinkedList:
		return "linked-list"
	case AggregationTree:
		return "aggregation-tree"
	case KOrderedTree:
		return "k-ordered-tree"
	case BalancedTree:
		return "balanced-tree"
	case SweepEval:
		return "sweep"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// Spec selects and parameterizes an algorithm.
type Spec struct {
	Algorithm Algorithm
	// K is the k-orderedness bound; used by KOrderedTree only. K = 0 demands
	// a totally ordered relation; the paper's headline strategy is K = 1
	// over a sorted relation.
	K int
	// Parallel is the worker count for parallel-capable evaluators — used by
	// SweepEval only (SweepOptions.Parallel). 0 resolves to GOMAXPROCS with
	// a serial fallback on small inputs; 1 forces the serial path.
	Parallel int
}

// New constructs an evaluator for the given spec and aggregate.
func New(spec Spec, f aggregate.Func) (Evaluator, error) {
	switch spec.Algorithm {
	case LinkedList:
		return NewLinkedList(f), nil
	case AggregationTree:
		return NewAggregationTree(f), nil
	case KOrderedTree:
		return NewKOrderedTree(f, spec.K)
	case BalancedTree:
		return NewBalancedTree(f), nil
	case SweepEval:
		return NewSweepOptions(f, SweepOptions{Parallel: spec.Parallel}), nil
	}
	return nil, fmt.Errorf("core: unknown algorithm %v", spec.Algorithm)
}

// Run evaluates tuples through a fresh evaluator built from spec.
func Run(spec Spec, f aggregate.Func, tuples []tuple.Tuple) (*Result, Stats, error) {
	return RunObserved(spec, f, tuples, nil)
}
