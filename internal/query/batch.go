package query

import (
	"fmt"

	"tempagg/internal/aggregate"
	"tempagg/internal/core"
	"tempagg/internal/relation"
	"tempagg/internal/tuple"
)

// batchMember is one query admitted to a shared wave: its index in the
// caller's slice, its plan, and the result indices its aggregates got in the
// wave's SweepGroup.
type batchMember struct {
	idx     int
	plan    Plan
	resIdxs []int
}

// ExecuteBatch executes several parsed queries over one relation, serving
// every sweep-eligible query from shared core.SweepGroup passes: the
// relation is read, filtered, sorted, and scanned once per wave of up to
// MaxGroupQueries aggregates rather than once per query. Each query's WHERE
// conjuncts and VALID window become its registration's tuple filter, so
// per-query results are identical to Execute's. Queries the shared pass
// cannot serve — snapshots, span grouping, attribute grouping, DISTINCT,
// non-decomposable aggregates, or a plan that is not the sweep — fall back
// to individual Execute calls. Results align with qs by index.
func ExecuteBatch(qs []*Query, rel *relation.Relation, info *RelationInfo) ([]*QueryResult, error) {
	results := make([]*QueryResult, len(qs))
	var wave []batchMember
	registered := 0
	for i, q := range qs {
		plan, ok, err := batchPlan(q, rel, info)
		if err != nil {
			return nil, err
		}
		if !ok {
			qr, err := Execute(q, rel, info)
			if err != nil {
				return nil, err
			}
			results[i] = qr
			continue
		}
		if registered+len(q.Aggs) > core.MaxGroupQueries {
			if err := runBatchWave(qs, rel, wave, results); err != nil {
				return nil, err
			}
			wave, registered = wave[:0], 0
		}
		wave = append(wave, batchMember{idx: i, plan: plan})
		registered += len(q.Aggs)
	}
	if err := runBatchWave(qs, rel, wave, results); err != nil {
		return nil, err
	}
	return results, nil
}

// batchPlan plans q and reports whether the shared pass can serve it.
func batchPlan(q *Query, rel *relation.Relation, info *RelationInfo) (Plan, bool, error) {
	if q.Relation != rel.Name {
		return Plan{}, false, fmt.Errorf("query: relation %q not found (have %q)", q.Relation, rel.Name)
	}
	if q.At != nil || q.Temporal == BySpan || q.GroupAttr != nil || len(q.Aggs) == 0 {
		return Plan{}, false, nil
	}
	for _, a := range q.Aggs {
		if !a.Kind.Decomposable() || a.Distinct {
			return Plan{}, false, nil
		}
	}
	meta := RelationInfo{Tuples: rel.Len(), Sorted: rel.IsSorted(), KBound: -1}
	if info != nil {
		meta = *info
	}
	plan, err := PlanQuery(q, meta)
	if err != nil {
		return Plan{}, false, err
	}
	if plan.Spec.Algorithm != core.SweepEval || plan.Tuma || plan.Partitioned || plan.SortFirst {
		// The optimizer preferred another strategy (sorted input, tight
		// memory, explicit USING); sharing must not override its choice.
		return Plan{}, false, nil
	}
	return plan, true, nil
}

// runBatchWave evaluates one wave of admitted queries through a single
// SweepGroup and fans the per-aggregate results back out to results.
func runBatchWave(qs []*Query, rel *relation.Relation, wave []batchMember, results []*QueryResult) error {
	if len(wave) == 0 {
		return nil
	}
	// The wave runs at the widest parallelism any member asked for; 0 keeps
	// the GOMAXPROCS default.
	parallel := 0
	for _, m := range wave {
		if p := m.plan.Spec.Parallel; p > parallel {
			parallel = p
		}
	}
	g := core.NewSweepGroup(core.SweepOptions{Parallel: parallel})
	for w := range wave {
		q := qs[wave[w].idx]
		filter := batchFilter(q)
		for _, a := range q.Aggs {
			idx, err := g.Register(core.GroupQuery{Func: aggregate.For(a.Kind), Filter: filter})
			if err != nil {
				return err
			}
			wave[w].resIdxs = append(wave[w].resIdxs, idx)
		}
	}
	for lo := 0; lo < rel.Len(); lo += core.BatchPage {
		hi := min(lo+core.BatchPage, rel.Len())
		if err := g.AddBatch(rel.Tuples[lo:hi]); err != nil {
			return err
		}
	}
	shared, err := g.Finish()
	if err != nil {
		return err
	}
	stats := g.Stats()
	for _, m := range wave {
		q := qs[m.idx]
		gr := GroupResult{}
		for ai, ri := range m.resIdxs {
			res := shared[ri]
			if q.Window != nil {
				res.Clip(*q.Window)
			}
			gr.Results = append(gr.Results, res)
			// The shared pass's counters are the wave's, not one query's:
			// attach them to each query's first aggregate so per-query
			// consumers see the cost of the pass that produced their rows.
			if ai == 0 {
				gr.AllStats = append(gr.AllStats, stats)
			} else {
				gr.AllStats = append(gr.AllStats, core.Stats{})
			}
		}
		gr.Result = gr.Results[0]
		gr.Stats = gr.AllStats[0]
		plan := m.plan
		plan.Reason += fmt.Sprintf("; shared pass served %d queries", len(wave))
		results[m.idx] = &QueryResult{Query: q, Plan: plan, Groups: []GroupResult{gr}}
	}
	return nil
}

// batchFilter compiles a query's WHERE conjuncts and VALID window into the
// tuple predicate its registrations carry — the same test Execute applies
// before evaluation. Returns nil (no filter) for an unrestricted query.
func batchFilter(q *Query) func(tuple.Tuple) bool {
	if len(q.Where) == 0 && q.Window == nil {
		return nil
	}
	conds, window := q.Where, q.Window
	return func(t tuple.Tuple) bool {
		if window != nil && !t.Valid.Overlaps(*window) {
			return false
		}
		for _, c := range conds {
			if !c.matches(t) {
				return false
			}
		}
		return true
	}
}
