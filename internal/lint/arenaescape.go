package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// ArenaEscape flags arena-allocated values used after the arena released
// them, or stored where they outlive the owning evaluator.
//
// Hazard class: internal/core's slab arena (arena[T]) and column arena
// (colArena) hand out memory that returns to *shared* sync.Pools at
// Finish. A node pointer or column slice that survives release — stored
// in a package-level variable, sent on a channel, or simply read after
// the release call — aliases memory the next evaluator on any goroutine
// is already writing: use-after-recycle, the defining bug class of
// recycled-memory designs (ROADMAP open item 2 makes it concurrent).
//
// The analyzer recognizes the arena contract structurally, so fixtures
// and future arena variants are covered without a hard dependency on the
// core package: a receiver type with an allocation method (alloc or
// acquire) and a release method is an arena; these method names are
// unexported, so every call site resolves within the defining package
// and stdlib types can never match.
//
// Tracked values and transitions, per binding, powerset-joined:
//
//	x.alloc()/x.acquire(...)  → bind result: live, owned by arena key(x)
//	r = x.push(col, v)        → derived rebind, still owned by x
//	r = x.grow(col, n)        → derived rebind, still owned by x
//	x.release()               → every binding owned by x is released
//	x.release(col)/recycle(p) → that binding is released
//	deferred release          → runs at exit: no effect on in-flow uses
//
// Reports: any use of a released binding (use-after-recycle); a tracked
// value assigned to a package-level variable or sent on a channel (the
// store outlives every release).
var ArenaEscape = &Analyzer{
	Name: "arenaescape",
	Doc: "flag arena-allocated nodes/columns used after arena release or " +
		"stored into locations that outlive the evaluator (use-after-recycle)",
	Run: runArenaEscape,
}

const (
	arLive     uint8 = 1 << iota // allocated, arena not yet released
	arReleased                   // the arena took it back
)

type arenaFlow struct {
	pass      *Pass
	reporting bool
	owner     map[string]string    // binding key → arena key
	bindExpr  map[string]string    // binding key → rendered variable
	relSite   map[string]token.Pos // binding key → release position
}

func runArenaEscape(pass *Pass) error {
	funcBodies(pass.Files, func(body *ast.BlockStmt) {
		g := BuildCFG(body)
		fl := &arenaFlow{
			pass:     pass,
			owner:    map[string]string{},
			bindExpr: map[string]string{},
			relSite:  map[string]token.Pos{},
		}
		in := Forward[maskFact](g, fl)
		fl.reporting = true
		WalkFacts[maskFact](g, fl, in, func(ast.Node, maskFact) {})
	})
	return nil
}

func (fl *arenaFlow) Entry() maskFact                                { return maskFact{} }
func (fl *arenaFlow) Join(a, b maskFact) maskFact                    { return joinMasks(a, b) }
func (fl *arenaFlow) Equal(a, b maskFact) bool                       { return equalMasks(a, b) }
func (fl *arenaFlow) Branch(_ ast.Expr, _ bool, f maskFact) maskFact { return f }

func (fl *arenaFlow) Transfer(n ast.Node, f maskFact) maskFact {
	switch n := n.(type) {
	case *ast.AssignStmt:
		return fl.assign(n, f)
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
			if out, handled := fl.arenaCall(call, f); handled {
				return out
			}
		}
		return fl.checkUses(n.X, f)
	case *ast.DeferStmt:
		// A deferred release (direct or in a closure) runs at function
		// exit: it never invalidates uses inside this flow, so it is a
		// no-op here — but the deferred expressions are not "stores".
		return f
	case *ast.SendStmt:
		f = fl.checkUses(n.Chan, f)
		f = fl.checkUses(n.Value, f)
		fl.reportOutlives(n.Value, f, "sent on a channel")
		return f
	case *ast.GoStmt:
		return fl.checkUses(n.Call, f)
	case *ast.ReturnStmt:
		for _, res := range n.Results {
			f = fl.checkUses(res, f)
		}
		return f
	case *ast.RangeStmt:
		return fl.checkUses(n.X, f)
	case *ast.IncDecStmt:
		return fl.checkUses(n.X, f)
	case ast.Expr:
		return fl.checkUses(n, f)
	}
	return f
}

// assign handles arena bindings, derived rebinds, release-by-overwrite,
// and stores into outliving locations.
func (fl *arenaFlow) assign(a *ast.AssignStmt, f maskFact) maskFact {
	rhsFor := func(i int) ast.Expr {
		if len(a.Lhs) == len(a.Rhs) {
			return a.Rhs[i]
		}
		if len(a.Rhs) == 1 && i == 0 {
			return a.Rhs[0]
		}
		return nil
	}
	// Uses on the RHS first.
	for _, rhs := range a.Rhs {
		f = fl.checkUses(rhs, f)
	}
	for i, lhs := range a.Lhs {
		rhs := rhsFor(i)
		if rhs == nil {
			continue
		}
		arenaKey, kind := fl.arenaAllocCall(rhs, f)
		key, isVar := receiverKey(fl.pass, lhs)
		if kind != "" {
			// Binding an arena allocation.
			if !isVar {
				continue
			}
			if isPackageLevel(fl.pass, lhs) {
				fl.reportOutlives(lhs, maskFact{key: arLive}, "stored in a package-level variable")
			}
			out := f.clone()
			out[key] = arLive
			if !fl.reporting {
				fl.owner[key] = arenaKey
				fl.bindExpr[key] = exprString(lhs)
			}
			f = out
			continue
		}
		// Storing a tracked value into a global: the store outlives release.
		if isPackageLevel(fl.pass, lhs) || isPackageLevelSelector(fl.pass, lhs) {
			fl.reportOutlives(rhs, f, "stored in a package-level variable")
		}
		if !isVar {
			continue
		}
		if rootKey, ok := fl.trackedRootKey(rhs, f); ok {
			// Derived rebind (col = ar.push(col, v) is handled above as an
			// alloc; col2 := col[:n] keeps ownership here).
			out := f.clone()
			out[key] = out[rootKey]
			if !fl.reporting {
				fl.owner[key] = fl.owner[rootKey]
				fl.bindExpr[key] = exprString(lhs)
				fl.relSite[key] = fl.relSite[rootKey]
			}
			f = out
			continue
		}
		if _, tracked := f[key]; tracked {
			out := f.clone()
			delete(out, key) // rebound to an unrelated value
			f = out
		}
	}
	return f
}

// arenaCall applies release/recycle effects; handled is false when the
// call is not an arena operation.
func (fl *arenaFlow) arenaCall(call *ast.CallExpr, f maskFact) (maskFact, bool) {
	arenaKey, name, ok := fl.arenaMethod(call)
	if !ok {
		return f, false
	}
	switch name {
	case "release":
		if len(call.Args) == 0 {
			// Arena-wide release: every binding it owns is now recycled.
			out := f.clone()
			for key := range out {
				if fl.owner[key] == arenaKey {
					out[key] = out[key]&^arLive | arReleased
					if !fl.reporting {
						fl.relSite[key] = call.Pos()
					}
				}
			}
			return out, true
		}
		// Per-value release: release(col).
		out := f
		for _, arg := range call.Args {
			if key, ok := fl.trackedRootKey(arg, out); ok {
				out = out.clone()
				out[key] = out[key]&^arLive | arReleased
				if !fl.reporting {
					fl.relSite[key] = call.Pos()
				}
			}
		}
		return out, true
	case "recycle":
		out := f
		for _, arg := range call.Args {
			if key, ok := fl.trackedRootKey(arg, out); ok {
				out = out.clone()
				out[key] = out[key]&^arLive | arReleased
				if !fl.reporting {
					fl.relSite[key] = call.Pos()
				}
			}
		}
		return out, true
	}
	return f, false
}

// checkUses reports reads of released bindings inside expr.
func (fl *arenaFlow) checkUses(expr ast.Node, f maskFact) maskFact {
	if expr == nil || !fl.reporting {
		return f
	}
	ast.Inspect(expr, func(n ast.Node) bool {
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		switch e.(type) {
		case *ast.Ident, *ast.SelectorExpr:
		default:
			return true
		}
		key, ok := receiverKey(fl.pass, e)
		if !ok {
			return true
		}
		if s, tracked := f[key]; tracked && s&arReleased != 0 {
			rel := fl.pass.Fset.Position(fl.relSite[key])
			fl.pass.Reportf(e.Pos(),
				"%s is used after its arena released it at line %d "+
					"(the backing memory may already be recycled by another evaluator)",
				fl.bindExpr[key], rel.Line)
		}
		return true
	})
	return f
}

// reportOutlives flags tracked, still-live values inside expr escaping to
// a location that outlives the arena's release.
func (fl *arenaFlow) reportOutlives(expr ast.Expr, f maskFact, how string) {
	if !fl.reporting || expr == nil {
		return
	}
	var keys []string
	seen := map[string]bool{}
	ast.Inspect(expr, func(n ast.Node) bool {
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		switch e.(type) {
		case *ast.Ident, *ast.SelectorExpr:
		default:
			return true
		}
		if key, ok := receiverKey(fl.pass, e); ok && !seen[key] {
			if _, tracked := f[key]; tracked {
				seen[key] = true
				keys = append(keys, key)
			}
		}
		return true
	})
	sort.Strings(keys)
	for _, key := range keys {
		fl.pass.Reportf(expr.Pos(),
			"arena-allocated %s is %s, which outlives the arena's release "+
				"(use-after-recycle once the slab returns to the shared pool)",
			fl.bindExpr[key], how)
	}
}

// arenaAllocCall reports whether expr is an allocation call on an
// arena-like receiver: alloc(), acquire(n), or the derived push/grow
// forms. Returns the arena key and the method name ("" when not one).
func (fl *arenaFlow) arenaAllocCall(expr ast.Expr, f maskFact) (arenaKey, kind string) {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return "", ""
	}
	key, name, ok := fl.arenaMethod(call)
	if !ok {
		return "", ""
	}
	switch name {
	case "alloc", "acquire", "push", "grow":
		return key, name
	}
	return "", ""
}

// arenaMethod resolves call as a method on an arena-like type: a named
// (possibly generic) type whose method set includes an unexported
// allocation method (alloc or acquire) and an unexported release method.
func (fl *arenaFlow) arenaMethod(call *ast.CallExpr) (arenaKey, name string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn := calleeFunc(fl.pass.TypesInfo, call)
	if fn == nil {
		return "", "", false
	}
	switch fn.Name() {
	case "alloc", "acquire", "release", "recycle", "push", "grow":
	default:
		return "", "", false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return "", "", false
	}
	named := namedType(sig.Recv().Type())
	if named == nil || !isArenaLike(named) {
		return "", "", false
	}
	key, ok := receiverKey(fl.pass, sel.X)
	if !ok {
		return "", "", false
	}
	return key, fn.Name(), true
}

// isArenaLike reports whether a named type carries the arena contract:
// both an allocation method (alloc or acquire) and a release method, all
// unexported — the shape of core's arena[T] and colArena.
func isArenaLike(named *types.Named) bool {
	if named.Obj().Pkg() == nil {
		return false // stdlib/universe types never qualify
	}
	var hasAlloc, hasRelease bool
	// Walk the origin's declared methods (generic instances share them).
	origin := named.Origin()
	for i := 0; i < origin.NumMethods(); i++ {
		switch origin.Method(i).Name() {
		case "alloc", "acquire":
			hasAlloc = true
		case "release":
			hasRelease = true
		}
	}
	return hasAlloc && hasRelease
}

// trackedRootKey unwraps derived *views* (slices, derefs, address-of,
// parens) to a tracked binding. Indexing is deliberately not unwrapped:
// col[0] copies an element out, so the copy does not alias the arena.
func (fl *arenaFlow) trackedRootKey(expr ast.Expr, f maskFact) (string, bool) {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.SliceExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.UnaryExpr:
			if e.Op != token.AND {
				return "", false
			}
			expr = e.X
		case *ast.CallExpr:
			// append(col, v) and len/cap derive from their first argument.
			if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "append" && len(e.Args) > 0 {
				expr = e.Args[0]
				continue
			}
			return "", false
		case *ast.Ident, *ast.SelectorExpr:
			key, ok := receiverKey(fl.pass, e)
			if !ok {
				return "", false
			}
			_, tracked := f[key]
			return key, tracked
		default:
			return "", false
		}
	}
}

// isPackageLevel reports whether expr is an identifier naming a
// package-scope variable.
func isPackageLevel(pass *Pass, expr ast.Expr) bool {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = pass.TypesInfo.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() || v.Pkg() == nil {
		return false
	}
	return v.Parent() == v.Pkg().Scope()
}

// isPackageLevelSelector reports whether expr is a selector rooted at a
// package-scope variable (global.field = ...).
func isPackageLevelSelector(pass *Pass, expr ast.Expr) bool {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	for {
		if inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
			sel = inner
			continue
		}
		break
	}
	return isPackageLevel(pass, sel.X)
}
