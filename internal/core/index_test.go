package core

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"tempagg/internal/aggregate"
	"tempagg/internal/interval"
	"tempagg/internal/obs"
	"tempagg/internal/tuple"
	"tempagg/internal/workload"
)

// windowsFor returns lookup windows at every structurally distinct position
// relative to the relation's event horizon: the full time-line, a prefix, a
// suffix to ∞, interior slices landing on and between event boundaries,
// single instants, and a window entirely past every event.
func windowsFor(horizon int64) []interval.Interval {
	h := interval.Time(horizon)
	return []interval.Interval{
		interval.Universe(),
		interval.MustNew(0, 0),
		interval.MustNew(0, h/2),
		interval.MustNew(h/3, h-1),
		interval.MustNew(h/2, interval.Forever),
		interval.MustNew(h/4+1, h/4+1),
		interval.MustNew(1, h),
		interval.MustNew(2*h, 3*h),
	}
}

// TestIndexRangePositions diffs windowed index lookups against the clipped
// oracle for every aggregate kind, workload shape, and window position —
// the range-restricted complement of the full-timeline "index-lookup"
// differential row.
func TestIndexRangePositions(t *testing.T) {
	const horizon = 400
	r := rand.New(rand.NewSource(7))
	inputs := [][]tuple.Tuple{
		nil,
		randomTuples(r, 1, horizon),
		randomTuples(r, 37, horizon),
		randomTuples(r, 160, horizon),
	}
	for _, ts := range inputs {
		idx, err := NewIntervalIndex(ts)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range aggregate.Kinds() {
			f := aggregate.For(k)
			for _, w := range windowsFor(horizon) {
				got, err := idx.Range(f, w)
				if err != nil {
					t.Fatal(err)
				}
				if err := got.ValidatePartition(w.Start, w.End); err != nil {
					t.Fatalf("n=%d %v %v: %v", len(ts), k, w, err)
				}
				want := Reference(f, ts).Clip(w)
				if !got.Equal(want) {
					t.Fatalf("n=%d %v window %v: index lookup differs from clipped oracle", len(ts), k, w)
				}
			}
		}
	}
}

// TestIndexLiveTailRangePositions is TestIndexRangePositions through the
// live snapshot's mixed index+tail path: sealed segments answered from
// their memoized indexes, the tail swept, windows at every position.
func TestIndexLiveTailRangePositions(t *testing.T) {
	const horizon = 400
	r := rand.New(rand.NewSource(11))
	for _, n := range []int{0, 1, 37, 160} {
		ts := randomTuples(r, n, horizon)
		ev := NewLive(LiveOptions{SegmentSize: 32})
		if err := ev.AddBatch(ts); err != nil {
			t.Fatal(err)
		}
		snap, err := ev.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range aggregate.Kinds() {
			f := aggregate.For(k)
			for _, w := range windowsFor(horizon) {
				got, err := snap.RangeIndexed(f, w)
				if err != nil {
					t.Fatal(err)
				}
				if err := got.ValidatePartition(w.Start, w.End); err != nil {
					t.Fatalf("n=%d %v %v: %v", n, k, w, err)
				}
				want := Reference(f, ts).Clip(w)
				if !got.Equal(want) {
					t.Fatalf("n=%d %v window %v: indexed live range differs from clipped oracle", n, k, w)
				}
				direct, err := snap.Range(f, w)
				if err != nil {
					t.Fatal(err)
				}
				if !got.Equal(direct) {
					t.Fatalf("n=%d %v window %v: RangeIndexed differs from Range", n, k, w)
				}
			}
		}
		closeLive(ev)
	}
}

// TestMetamorphicIntervalSplit pins the decomposability the index exists
// for: for any split point m inside [a, b], the merge of the partial
// lookups over [a, m-1] and [m, b] must equal the direct lookup over
// [a, b] — row-wise (concatenated range results) and partial-wise
// (MergePartials over the two halves' root-path accumulations, round-
// tripped through the canonical encoding).
func TestMetamorphicIntervalSplit(t *testing.T) {
	const horizon = 300
	r := rand.New(rand.NewSource(23))
	for _, cfg := range []workload.Config{
		{Tuples: 120, Lifespan: horizon, Order: workload.Sorted, Seed: 5},
		{Tuples: 120, Lifespan: horizon, Order: workload.Random, Seed: 5},
		{Tuples: 120, Lifespan: horizon, Order: workload.Random, LongLivedPct: 80, Seed: 5},
	} {
		rel, err := workload.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		idx, err := NewIntervalIndex(rel.Tuples)
		if err != nil {
			t.Fatal(err)
		}
		wl := cfg.Order
		for _, k := range aggregate.Kinds() {
			f := aggregate.For(k)
			for trial := 0; trial < 40; trial++ {
				a := interval.Time(r.Int63n(horizon))
				b := a + 1 + interval.Time(r.Int63n(horizon))
				m := a + 1 + interval.Time(r.Int63n(int64(b-a)))
				left, err := idx.Range(f, interval.MustNew(a, m-1))
				if err != nil {
					t.Fatal(err)
				}
				right, err := idx.Range(f, interval.MustNew(m, b))
				if err != nil {
					t.Fatal(err)
				}
				direct, err := idx.Range(f, interval.MustNew(a, b))
				if err != nil {
					t.Fatal(err)
				}
				joined := &Result{Func: f, Rows: append(append([]Row(nil), left.Rows...), right.Rows...)}
				if err := joined.ValidatePartition(a, b); err != nil {
					t.Fatalf("%v %v split at %d: concatenated halves invalid: %v", wl, k, m, err)
				}
				if !joined.Equal(direct) {
					t.Fatalf("%v %v [%d,%d] split at %d: merged halves differ from direct lookup", wl, k, a, b, m)
				}
			}
		}
		// Partial-wise: accumulate each half's rows back into one partial
		// per side via the encoding and merge; COUNT and SUM are linear in
		// elementary-interval contributions, so totals must agree.
		a, m, b := interval.Time(10), interval.Time(137), interval.Time(horizon-5)
		sumHalf := func(w interval.Interval) IndexPartial {
			res, err := idx.Range(aggregate.For(aggregate.Count), w)
			if err != nil {
				t.Fatal(err)
			}
			var p IndexPartial
			for _, row := range res.Rows {
				count, _, _ := row.State.Counters()
				width := int64(row.Interval.End - row.Interval.Start + 1)
				q := IndexPartial{Count: count * width, Sum: count * width, Min: 1, Max: 1}
				if count == 0 {
					q = IndexPartial{}
				} else if q.Count == 1 {
					q.Sum, q.Min, q.Max = 1, 1, 1
				}
				enc := q.AppendBinary(nil)
				dec, n, err := DecodeIndexPartial(enc)
				if err != nil || n != len(enc) {
					t.Fatalf("round-trip of %+v: n=%d err=%v", q, n, err)
				}
				p = MergePartials(p, dec)
			}
			return p
		}
		got := MergePartials(sumHalf(interval.MustNew(a, m-1)), sumHalf(interval.MustNew(m, b)))
		want := sumHalf(interval.MustNew(a, b))
		if got.Count != want.Count || got.Sum != want.Sum {
			t.Fatalf("partial-wise split: merged halves %+v differ from direct %+v", got, want)
		}
	}
}

// TestIndexMarshalRoundTrip serializes an index, reconstructs it, and
// requires byte-identical re-serialization and row-identical lookups.
func TestIndexMarshalRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for _, n := range []int{0, 1, 50, 200} {
		ts := randomTuples(r, n, 500)
		idx, err := NewIntervalIndex(ts)
		if err != nil {
			t.Fatal(err)
		}
		data, err := idx.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		back, err := UnmarshalIntervalIndex(data)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		data2, err := back.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, data2) {
			t.Fatalf("n=%d: re-serialization differs", n)
		}
		for _, k := range aggregate.Kinds() {
			f := aggregate.For(k)
			a, err := idx.Result(f)
			if err != nil {
				t.Fatal(err)
			}
			b, err := back.Result(f)
			if err != nil {
				t.Fatal(err)
			}
			if !a.Equal(b) {
				t.Fatalf("n=%d %v: deserialized index answers differently", n, k)
			}
		}
		// Corrupt: flip the magic.
		if _, err := UnmarshalIntervalIndex(append([]byte("XXIX1"), data[5:]...)); err == nil {
			t.Fatal("bad magic accepted")
		}
		// Corrupt: trailing byte.
		if _, err := UnmarshalIntervalIndex(append(append([]byte(nil), data...), 0)); err == nil {
			t.Fatal("trailing bytes accepted")
		}
	}
}

// TestIndexClosed pins the Close contract: lookups and serialization after
// Close fail with ErrIndexClosed, and Close is idempotent.
func TestIndexClosed(t *testing.T) {
	idx, err := NewIntervalIndex(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.Close(); err != nil {
		t.Fatal(err)
	}
	// The idempotent re-Close and the post-Close probes run in their own
	// closures: finishonce tracks one function body at a time, and these are
	// deliberate contract violations, not bugs to silence with an ignore.
	func() {
		if err := idx.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	func() {
		if _, err := idx.Result(aggregate.For(aggregate.Count)); err != ErrIndexClosed {
			t.Fatalf("Result after Close: %v, want ErrIndexClosed", err)
		}
		if _, err := idx.MarshalBinary(); err != ErrIndexClosed {
			t.Fatalf("MarshalBinary after Close: %v, want ErrIndexClosed", err)
		}
	}()
}

// TestIndexRejectsInvalidTuple pins build-time validation.
func TestIndexRejectsInvalidTuple(t *testing.T) {
	// Assembled field-by-field: an inverted interval can't come from the
	// validating constructors, and the rejection of exactly that hole is
	// what this test pins.
	var bad tuple.Tuple
	bad.Name, bad.Value = "x", 1
	bad.Valid.Start, bad.Valid.End = 9, 3
	if _, err := NewIntervalIndex([]tuple.Tuple{bad}); err == nil {
		t.Fatal("invalid tuple accepted")
	}
}

// TestIndexSinkMetrics attaches a Metrics sink and checks the build gauge
// and the lookup/merge counters surface under the index-lookup label.
func TestIndexSinkMetrics(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	ts := randomTuples(r, 64, 300)
	idx, err := NewIntervalIndex(ts)
	if err != nil {
		t.Fatal(err)
	}
	m := obs.NewMetrics(obs.NewRegistry())
	idx.SetSink(m)
	if _, err := idx.Range(aggregate.For(aggregate.Sum), interval.MustNew(10, 200)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Registry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{obs.MetricIndexNodes, obs.MetricIndexLookups, obs.MetricIndexMerges} {
		if !strings.Contains(out, name+`{algorithm="index-lookup"}`) {
			t.Fatalf("metric %s missing from exposition:\n%s", name, out)
		}
	}
	// nil sink: disabled, not a panic.
	idx2, err := NewIntervalIndex(ts)
	if err != nil {
		t.Fatal(err)
	}
	idx2.SetSink(nil)
	if _, err := idx2.At(aggregate.For(aggregate.Max), 42); err != nil {
		t.Fatal(err)
	}
}
